// Versioned DRAM adjacency cache (ISSUE 6, paper DD4).
//
// PMem Expand is dominated by chasing next_src/next_dst linked chains through
// the persistent relationship table with a full MVTO visibility check per hop.
// This cache materializes, lazily on first Expand, a CSR-style DRAM neighbor
// array per (node, direction): densely packed (rel_id, rel_label, neighbor)
// triples in chain order. Each array is stamped with the begin timestamp of
// the node version whose topology it reflects.
//
// Correctness protocol (see DESIGN.md "DRAM adjacency cache"):
//  * Every topology change write-locks both endpoint nodes and commits a new
//    node version (bts = commit ts). Therefore "node.bts unchanged" implies
//    "adjacency unchanged".
//  * Each entry covers a contiguous bts range [first_stamp, stamp]: it is
//    built against the node version with bts == first_stamp, and every
//    restamp (property-only commit, which by definition leaves topology
//    alone) extends the range to the new bts. A topology commit invalidates
//    the entry instead, so the range never spans a topology change and every
//    node version whose bts falls inside it has the cached adjacency.
//  * A reader may serve a cached array when the bts of the node version its
//    own MVTO read resolved — latest committed (rts bumped, blocking
//    older-ts topology writers exactly like a chain walk would) or an older
//    version from the DRAM chain (whose topology is frozen forever) — falls
//    inside the entry's range. Serving from DRAM is then indistinguishable
//    from walking the chain at the reader's timestamp.
//  * Writers that touched the node and nodes with uncommitted in-flight
//    versions fail that test and fall back to the chain walk; visibility
//    semantics are unchanged.
//  * Commit-time invalidation/restamping (Transaction::CommitImpl) is pure
//    hygiene: a stale entry can never be served because its stamp no longer
//    matches the node's bts, so maintenance may run after durability and
//    races with concurrent builds are benign.
//
// Structure mirrors VersionChains (version_store.h): 16 mutex-protected
// shards keyed by node id, so both directions of one node share a lock.

#ifndef POSEIDON_TX_ADJACENCY_CACHE_H_
#define POSEIDON_TX_ADJACENCY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/types.h"
#include "util/env.h"

namespace poseidon::tx {

/// Direction selector for adjacency walks. The tx layer cannot depend on
/// query::Direction; query and jit map their enums onto this one.
enum class AdjDir : uint8_t { kOut = 0, kIn = 1 };

/// One cached hop. Fixed 24-byte layout: the JIT streams these arrays from
/// generated code (jit/codegen.cc static_asserts the offsets).
struct CachedNeighbor {
  storage::RecordId rel_id;    ///< relationship offset (for Value::Rel)
  storage::RecordId neighbor;  ///< dst for kOut walks, src for kIn walks
  storage::DictCode rel_label;
  uint32_t pad = 0;
};
static_assert(sizeof(CachedNeighbor) == 24);

/// Immutable once published; readers hold it via shared_ptr so eviction and
/// invalidation never free an array out from under a running Expand.
/// `first_stamp`, `stamp` and `last_used` are guarded by the shard mutex.
struct AdjacencyList {
  storage::Timestamp first_stamp = 0;  ///< bts the array was built against
  storage::Timestamp stamp = 0;        ///< latest bts covered (restamps)
  uint64_t last_used = 0;              ///< LRU tick
  std::vector<CachedNeighbor> edges;

  uint64_t Bytes() const {
    return sizeof(AdjacencyList) + edges.capacity() * sizeof(CachedNeighbor);
  }
};

struct AdjacencyCacheOptions {
  bool enabled = true;
  uint64_t max_bytes = 256ull << 20;

  /// POSEIDON_ADJ_CACHE (0 disables, default on) and
  /// POSEIDON_ADJ_CACHE_MAX_MB (DRAM budget, default 256).
  static AdjacencyCacheOptions FromEnv() {
    AdjacencyCacheOptions o;
    o.enabled = util::EnvInt("POSEIDON_ADJ_CACHE", 1) != 0;
    o.max_bytes = util::EnvU64("POSEIDON_ADJ_CACHE_MAX_MB", 256) << 20;
    return o;
  }
};

struct AdjacencyCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t invalidations = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

class AdjacencyCache {
 public:
  explicit AdjacencyCache(AdjacencyCacheOptions options = {})
      : options_(options), enabled_(options.enabled) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Runtime master switch (bench ablations). Disabling drops all entries so
  /// re-enabling starts cold and toggling cannot serve stale state.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
    if (!on) Clear();
  }

  /// Returns the cached array for (node, dir) iff the node-version bts the
  /// caller resolved falls inside the entry's [first_stamp, stamp] range
  /// (see header: the range never spans a topology change, so every version
  /// inside it shares the cached adjacency). Entries behind the caller's
  /// version are provably stale and erased; entries *ahead* of it are left
  /// alone — they are newer topology an old snapshot must not see, but are
  /// still perfectly valid for fresh readers.
  std::shared_ptr<const AdjacencyList> Lookup(storage::RecordId node,
                                              AdjDir dir,
                                              storage::Timestamp stamp) {
    Shard& s = ShardFor(node);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(Key(node, dir));
    if (it == s.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    if (stamp > it->second->stamp) {
      // The caller resolved a node version newer than anything the entry
      // covers: the commit that created it either changed topology (entry
      // stale) or its restamp raced past — drop it and rebuild.
      RemoveLocked(s, it);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    if (stamp < it->second->first_stamp) {
      // Older snapshot than the build: its topology may differ. Keep the
      // entry — it stays servable for current readers.
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    it->second->last_used = tick_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Publishes a freshly built array and returns it (so the builder can
  /// serve its own result). Returns the array unpublished when disabled, or
  /// when the slot already holds a newer-stamped entry: a snapshot reader
  /// that rebuilt old topology must never displace the array current
  /// readers are hitting.
  std::shared_ptr<const AdjacencyList> Insert(
      storage::RecordId node, AdjDir dir, storage::Timestamp stamp,
      std::vector<CachedNeighbor> edges) {
    auto list = std::make_shared<AdjacencyList>();
    list->first_stamp = stamp;
    list->stamp = stamp;
    list->edges = std::move(edges);
    list->edges.shrink_to_fit();
    list->last_used = tick_.fetch_add(1, std::memory_order_relaxed);
    if (!enabled()) return list;
    Shard& s = ShardFor(node);
    {
      std::lock_guard<std::mutex> lock(s.mu);
      auto [it, fresh] = s.map.try_emplace(Key(node, dir));
      if (!fresh && it->second->stamp > stamp) return list;  // no downgrade
      if (!fresh) {
        bytes_.fetch_sub(it->second->Bytes(), std::memory_order_relaxed);
        entries_.fetch_sub(1, std::memory_order_relaxed);
      }
      it->second = list;
      bytes_.fetch_add(list->Bytes(), std::memory_order_relaxed);
      entries_.fetch_add(1, std::memory_order_relaxed);
      inserts_.fetch_add(1, std::memory_order_relaxed);
    }
    MaybeEvict();
    return list;
  }

  /// Drops both directions of `node`. Called post-commit for every node whose
  /// topology the transaction changed (and on node insert/delete for slot-
  /// reuse hygiene). Stale entries are unservable regardless — see header.
  void Invalidate(storage::RecordId node) {
    Shard& s = ShardFor(node);
    std::lock_guard<std::mutex> lock(s.mu);
    for (AdjDir dir : {AdjDir::kOut, AdjDir::kIn}) {
      auto it = s.map.find(Key(node, dir));
      if (it == s.map.end()) continue;
      RemoveLocked(s, it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Property-only node commits bump bts without touching topology: carry
  /// the entry forward by restamping old_stamp -> new_stamp instead of
  /// throwing the array away. `first_stamp` is left alone, so the covered
  /// range grows to [first_stamp, new_stamp] and snapshot readers of any
  /// version inside it keep hitting. No-op if the entry reflects something
  /// else (a racing topology commit already invalidated it).
  void Restamp(storage::RecordId node, storage::Timestamp old_stamp,
               storage::Timestamp new_stamp) {
    Shard& s = ShardFor(node);
    std::lock_guard<std::mutex> lock(s.mu);
    for (AdjDir dir : {AdjDir::kOut, AdjDir::kIn}) {
      auto it = s.map.find(Key(node, dir));
      if (it != s.map.end() && it->second->stamp == old_stamp) {
        it->second->stamp = new_stamp;
      }
    }
  }

  void Clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (auto& [key, list] : s.map) {
        bytes_.fetch_sub(list->Bytes(), std::memory_order_relaxed);
        entries_.fetch_sub(1, std::memory_order_relaxed);
      }
      s.map.clear();
    }
  }

  AdjacencyCacheStats stats() const {
    AdjacencyCacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.inserts = inserts_.load(std::memory_order_relaxed);
    st.invalidations = invalidations_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.entries = entries_.load(std::memory_order_relaxed);
    st.bytes = bytes_.load(std::memory_order_relaxed);
    return st;
  }

  const AdjacencyCacheOptions& options() const { return options_; }

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<AdjacencyList>> map;
  };

  static uint64_t Key(storage::RecordId node, AdjDir dir) {
    return (node << 1) | static_cast<uint64_t>(dir);
  }

  Shard& ShardFor(storage::RecordId node) { return shards_[node % kShards]; }

  template <typename It>
  void RemoveLocked(Shard& s, It it) {
    bytes_.fetch_sub(it->second->Bytes(), std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    s.map.erase(it);
  }

  /// LRU-ish eviction by bytes: while over budget, sweep shards round-robin
  /// and drop the least-recently-used entry of each. Approximate (per-shard
  /// minimum, not global) but lock-cheap and good enough for a cache whose
  /// stale entries are already unservable.
  void MaybeEvict() {
    while (bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
      bool dropped = false;
      for (Shard& s : shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        if (s.map.empty()) continue;
        auto victim = s.map.begin();
        for (auto it = s.map.begin(); it != s.map.end(); ++it) {
          if (it->second->last_used < victim->second->last_used) victim = it;
        }
        RemoveLocked(s, victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        dropped = true;
        if (bytes_.load(std::memory_order_relaxed) <= options_.max_bytes) {
          break;
        }
      }
      if (!dropped) break;  // everything already gone
    }
  }

  const AdjacencyCacheOptions options_;
  std::atomic<bool> enabled_;
  Shard shards_[kShards];
  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace poseidon::tx

#endif  // POSEIDON_TX_ADJACENCY_CACHE_H_
