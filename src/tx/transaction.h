// MVTO transactions over the persistent graph store (paper §5).
//
// Protocol summary (timestamp ordering, snapshot-isolation guarantees):
//   * Every transaction gets a unique timestamp `id` at Begin; it doubles as
//     the commit timestamp (classic MVTO).
//   * Writers lock an object by CAS-ing its persistent txn-id field from 0
//     to `id` (C4: an 8-byte atomic) and abort on conflict — if the object
//     is locked, already read by a newer transaction (rts > id), or
//     overwritten by a newer version (bts > id).
//   * All uncommitted changes (new versions) live in a DRAM write set
//     (DG1/DG2); inserted records are placed in PMem immediately but stay
//     locked and carry bts == 0, making them invisible to everyone else.
//   * Readers pick the version with bts <= id < ets: the PMem record is the
//     latest committed version; older ones come from the DRAM version
//     chains. Readers abort when they hit a foreign lock (paper §5.1) and
//     bump rts with an unflushed CAS-max.
//   * Commit persists all new versions with ONE failure-atomic redo-log
//     transaction (the paper uses PMDK transactions here); each record's
//     txn-id reset is staged last so the object stays locked until its new
//     image is fully durable.
//   * Aborts drop the write set, unlock in place, and free inserted slots.
//   * Transaction-level GC prunes version chains and reclaims PMem property
//     chains / deleted slots once invisible to every active transaction.
//
// Read-path scalability (see DESIGN.md "Read-path scalability"):
//   * Active transactions register in fixed arrays of cache-line-padded
//     atomic slots (TxSlots) instead of a mutex-guarded set; the GC
//     watermark is computed by a lock-free scan in the common case (a
//     mutex-guarded multiset absorbs overflow beyond kTxSlots).
//   * Read-only transactions (BeginReadOnly) share a periodically-published
//     snapshot timestamp S chosen so that no active or future writer has
//     id <= S: they skip the next_ts_ bump, every per-record rts CAS, and
//     the post-bump revalidation (POSEIDON_SNAPSHOT_EPOCH_US, 0 = seed
//     behavior: a fresh timestamp per read transaction).
//   * Read-write readers coalesce rts bumps: when the seqlock-validated
//     copy already shows rts >= id, the CAS and revalidation are skipped
//     (POSEIDON_RTS_COALESCE=0 restores the eager seed path).

#ifndef POSEIDON_TX_TRANSACTION_H_
#define POSEIDON_TX_TRANSACTION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "index/index_manager.h"
#include "storage/graph_store.h"
#include "tx/adjacency_cache.h"
#include "tx/version_store.h"
#include "util/backoff.h"
#include "util/cancel.h"

namespace poseidon::tx {

class TransactionManager;

/// Why a transaction aborted (overload-governance taxonomy; DESIGN.md
/// "Overload governance"). Sheds are a manager-level event — no transaction
/// ever existed — and are counted separately (TxStats::writers_shed).
enum class AbortCause {
  kConflict = 0,  ///< MVTO conflict / lock / validation (seed behavior)
  kDeadline,      ///< cooperative deadline expired (kDeadlineExceeded)
  kCancelled,     ///< explicit cancel via CancelToken (kCancelled)
  kSpace,         ///< pool allocation failed in-tx (kResourceExhausted)
};

/// Result of resolving a record to the version visible to a transaction.
/// When `from_snapshot` is set the properties come from a DRAM snapshot
/// (write set or version chain) held in `snapshot`; otherwise read the PMem
/// chain at rec.props.
template <typename R>
struct Resolved {
  R rec;
  bool from_snapshot = false;
  std::vector<storage::Property> snapshot;
};

class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  storage::Timestamp id() const { return id_; }
  bool finished() const { return finished_; }
  /// Read-only transactions reject every write with kFailedPrecondition.
  bool read_only() const { return read_only_; }
  /// True when this transaction reads at the shared published snapshot
  /// timestamp instead of a freshly allocated one (BeginReadOnly).
  bool snapshot() const { return snapshot_; }
  /// rts CAS-maxes this transaction skipped / elided so far (exact per-tx
  /// attribution for EXPLAIN and ExecStats; totals land in
  /// TransactionManager::Stats() when the transaction finishes).
  uint64_t rts_skipped() const {
    return rts_skipped_.load(std::memory_order_relaxed);
  }
  uint64_t rts_deferred() const {
    return rts_deferred_.load(std::memory_order_relaxed);
  }

  /// Cooperative cancellation: executors poll this token at batch
  /// granularity (scan word / morsel / expand hop); GraphDb::Cancel and the
  /// POSEIDON_QUERY_DEADLINE_MS knob fire it. Never null.
  util::CancelToken* cancel_token() { return &cancel_; }
  const util::CancelToken* cancel_token() const { return &cancel_; }

  /// The cause recorded for an (upcoming or past) abort; defaults to
  /// kConflict, the only cause the seed engine had.
  AbortCause abort_cause() const { return abort_cause_; }
  /// Classifies `s` into the abort taxonomy and records it, so the
  /// follow-up Abort() / failed Commit() is attributed correctly in
  /// TxStats. Statuses outside the taxonomy count as conflicts.
  void RecordAbortCause(const Status& s) { abort_cause_ = CauseFromStatus(s); }
  static AbortCause CauseFromStatus(const Status& s);

  // --- Reads ----------------------------------------------------------

  /// Returns the node version visible to this transaction.
  /// kAborted if the record is locked by another active transaction.
  Result<Resolved<storage::NodeRecord>> GetNode(storage::RecordId id);
  Result<Resolved<storage::RelationshipRecord>> GetRelationship(
      storage::RecordId id);

  /// Property access against the visible version. Null PVal if absent.
  Result<storage::PVal> GetNodeProperty(storage::RecordId id,
                                        storage::DictCode key);
  Result<storage::PVal> GetRelationshipProperty(storage::RecordId id,
                                                storage::DictCode key);
  Result<std::vector<storage::Property>> GetNodeProperties(
      storage::RecordId id);
  Result<std::vector<storage::Property>> GetRelationshipProperties(
      storage::RecordId id);

  /// Visibility-filtered adjacency traversal (ForeachRelationship, §6.1).
  /// `fn` returns false to stop early. Aborts propagate as kAborted.
  Status ForEachOutgoing(
      storage::RecordId node,
      const std::function<bool(storage::RecordId,
                               const storage::RelationshipRecord&)>& fn);
  Status ForEachIncoming(
      storage::RecordId node,
      const std::function<bool(storage::RecordId,
                               const storage::RelationshipRecord&)>& fn);

  /// Topology-only adjacency traversal: `fn(rel_id, rel_label, neighbor)`
  /// where neighbor is rel.dst for kOut and rel.src for kIn. Serves the
  /// versioned DRAM adjacency cache when this transaction's snapshot covers
  /// the cached stamp (see adjacency_cache.h); otherwise falls back to the
  /// chain walk with identical visibility. `fn` returns false to stop early.
  Status ForEachNeighbor(
      storage::RecordId node, AdjDir dir,
      const std::function<bool(storage::RecordId, storage::DictCode,
                               storage::RecordId)>& fn);

  /// Probe-or-build entry into the adjacency cache. Returns the neighbor
  /// array this transaction may legally serve for (node, dir), or null when
  /// it must chain-walk instead: cache disabled, node in this tx's write
  /// set, node/rel reads that need snapshot versions, or visibility errors
  /// (the fallback walk re-raises those). Used directly by the JIT runtime
  /// helper and analytics::Snapshot.
  std::shared_ptr<const AdjacencyList> GetCachedAdjacency(
      storage::RecordId node, AdjDir dir);

  // --- Writes ---------------------------------------------------------

  /// Inserts a node; visible to others only after Commit.
  Result<storage::RecordId> CreateNode(
      storage::DictCode label, const std::vector<storage::Property>& props);

  /// Inserts a directed relationship and links it into both adjacency
  /// lists; write-locks src and dst.
  Result<storage::RecordId> CreateRelationship(
      storage::RecordId src, storage::RecordId dst, storage::DictCode label,
      const std::vector<storage::Property>& props);

  /// Sets (or overwrites) one property; write-locks the record.
  Status SetNodeProperty(storage::RecordId id, storage::DictCode key,
                         storage::PVal value);
  Status SetRelationshipProperty(storage::RecordId id, storage::DictCode key,
                                 storage::PVal value);

  /// Deletes a node; fails (kFailedPrecondition) while relationships are
  /// still attached.
  Status DeleteNode(storage::RecordId id);

  /// Deletes a relationship, unlinking it from both adjacency lists (this
  /// write-locks the endpoints and any predecessor relationships).
  Status DeleteRelationship(storage::RecordId id);

  // --- Outcome -----------------------------------------------------------

  /// Atomically persists the write set; on success the transaction is over.
  /// On failure the transaction has been aborted. Read-only transactions
  /// finish without touching the redo log or the timestamp high-water mark.
  Status Commit();

  /// Discards the write set, unlocking in place.
  void Abort();

  /// Number of objects in the write set (tests/stats).
  size_t write_set_size() const {
    return node_writes_.size() + rel_writes_.size();
  }

  TransactionManager* manager() const { return mgr_; }

 private:
  friend class TransactionManager;

  template <typename R>
  struct Write {
    R rec;  ///< working image (adjacency/props head updated in place)
    std::vector<storage::Property> props;
    bool inserted = false;
    bool deleted = false;
    bool props_changed = false;
    R before;  ///< committed PMem image at lock time (updates only)
    std::vector<storage::Property> props_before;
  };
  using NodeWrite = Write<storage::NodeRecord>;
  using RelWrite = Write<storage::RelationshipRecord>;

  Transaction(TransactionManager* mgr, storage::Timestamp ts);

  /// Seqlock-style stable read of the PMem record: retries while a
  /// concurrent commit is applying; kAborted on a foreign lock.
  template <typename Table, typename R>
  Status ReadStable(const Table& table, storage::RecordId id, R* out);

  /// Write-locks a record and materializes its write-set entry.
  Result<NodeWrite*> LockNode(storage::RecordId id);
  Result<RelWrite*> LockRel(storage::RecordId id);

  template <typename R, typename Table, typename Chains, typename WriteMap>
  Result<Resolved<R>> GetRecord(const Table& table, const Chains& chains,
                                const WriteMap& writes, storage::RecordId id,
                                bool is_node);

  /// CAS-max on the persistent rts field (unflushed; re-initializable).
  template <typename R>
  bool BumpRts(R* rec);

  /// Shared direction-parameterized chain walker behind ForEachOutgoing /
  /// ForEachIncoming / the cache-miss fallback.
  Status ForEachRelChain(
      storage::RecordId node, AdjDir dir,
      const std::function<bool(storage::RecordId,
                               const storage::RelationshipRecord&)>& fn);

  Status CommitImpl();
  void ReleaseLocks();

  TransactionManager* mgr_;
  storage::GraphStore* store_;
  storage::Timestamp id_;
  bool finished_ = false;
  bool read_only_ = false;
  bool snapshot_ = false;
  /// Index into the manager's writer (or reader, when snapshot_) slot
  /// array; -1 = registered in the overflow multiset instead.
  int slot_ = -1;
  /// Per-transaction rts-coalescing tallies. Atomic because morsel-parallel
  /// execution shares one transaction across pool workers; relaxed, and
  /// per-transaction, so unrelated transactions never touch each other's
  /// line — flushing into the manager-wide counters only at Finish keeps
  /// the cross-transaction traffic that coalescing removes out of the read
  /// path.
  std::atomic<uint64_t> rts_skipped_{0};
  std::atomic<uint64_t> rts_deferred_{0};
  util::CancelToken cancel_;
  AbortCause abort_cause_ = AbortCause::kConflict;

  // std::map keeps commit staging deterministic (useful for tests).
  std::map<storage::RecordId, NodeWrite> node_writes_;
  std::map<storage::RecordId, RelWrite> rel_writes_;
};

/// Deferred PMem reclamation (paper §5.3): slots and property chains of
/// superseded/deleted versions are recycled once min-active passes them.
struct GcItem {
  enum class Kind { kPropChain, kNodeSlot, kRelSlot };
  Kind kind;
  storage::Timestamp reclaim_after;
  storage::RecordId id;  ///< chain head (kPropChain) or record slot
};

/// Manager-wide counters, all maintained with relaxed atomics and read as a
/// consistent-enough snapshot for EXPLAIN / bench attribution (before/after
/// deltas around a single query; racy under concurrent queries by design).
struct TxStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  /// Read-path retries: seqlock re-reads + visibility re-checks that had to
  /// back off because a concurrent commit raced the copy.
  uint64_t read_retries = 0;
  /// Reads that exhausted their backoff budget and aborted
  /// (POSEIDON_TX_RETRY_ATTEMPTS, POSEIDON_BACKOFF_*).
  uint64_t retry_exhausted = 0;
  /// Physical drains issued by group-commit leaders (<= commits when
  /// batching is effective).
  uint64_t group_drains = 0;
  /// rts CAS-maxes skipped because the validated copy already carried
  /// rts >= reader id (rts-bump coalescing).
  uint64_t rts_skipped = 0;
  /// rts bumps elided entirely by shared-snapshot readers (no writer can
  /// ever probe below the published snapshot timestamp).
  uint64_t rts_deferred = 0;
  /// Snapshot timestamps published (epoch refreshes that advanced it).
  uint64_t snapshot_refreshes = 0;
  /// Read-only transactions served from the shared snapshot.
  uint64_t snapshot_reads = 0;
  /// Read-only transactions that found the snapshot lagging more than
  /// POSEIDON_SNAPSHOT_MAX_LAG ids behind next_ts_ (a stalled writer
  /// pinning the frontier) and degraded to the seed fresh-ts protocol.
  uint64_t snapshot_fallbacks = 0;
  // --- Overload governance (abort-cause taxonomy) ------------------------
  /// Breakdown of `aborts` by cause: MVTO conflicts (plus anything not
  /// otherwise classified), cooperative deadline expiries, explicit
  /// cancellations, and in-tx pool-space exhaustion unwinds.
  uint64_t aborts_conflict = 0;
  uint64_t aborts_deadline = 0;
  uint64_t aborts_cancelled = 0;
  uint64_t aborts_space = 0;
  /// Writers rejected by the admission gate (POSEIDON_MAX_WRITERS): no
  /// transaction ever existed, so these are NOT included in `aborts`.
  uint64_t writers_shed = 0;
  /// Writers denied because the pool was above its soft space watermark
  /// even after emergency reclamation (POSEIDON_POOL_SOFT_WATERMARK_PCT).
  uint64_t space_denied = 0;
};

class TransactionManager {
 public:
  /// `indexes` may be null (no secondary-index maintenance).
  ///
  /// When the pool runs the parallel commit pipeline, the manager also
  /// activates (a) group commit — concurrent committers elect a leader that
  /// issues one drain for the whole batch (bounded by
  /// POSEIDON_GROUP_COMMIT_WINDOW_US; disable with POSEIDON_GROUP_COMMIT=0)
  /// — and (b) a background epoch thread that runs RunGc() off the commit
  /// path (disable with POSEIDON_BG_GC=0).
  TransactionManager(storage::GraphStore* store,
                     index::IndexManager* indexes);

  /// Stops the background GC thread.
  ~TransactionManager();

  /// Releases in-flight locks left by a crash: uncommitted inserts
  /// (txn-id != 0, bts == 0) are dropped; locked committed records are
  /// unlocked in place. Call once after GraphStore::Open on a crashed pool.
  Status RecoverInFlight();

  std::unique_ptr<Transaction> Begin();

  /// Admission-gated Begin for user-facing writers (overload governance):
  ///   * at most max_writers() read-write transactions in flight (0 =
  ///     unlimited, the default); excess callers wait with a bounded
  ///     util::Backoff (POSEIDON_ADMISSION_ATTEMPTS), then are shed with
  ///     kResourceExhausted instead of piling onto MVTO aborts;
  ///   * a pool above its soft space watermark triggers emergency
  ///     reclamation (RunGc + adjacency-cache drop) and, if still above,
  ///     denies the writer with kResourceExhausted.
  /// The gate is advisory-approximate (counter check and slot claim are not
  /// one atomic step); internal begins — BeginReadOnly's fallback path,
  /// recovery — stay ungated through Begin().
  Result<std::unique_ptr<Transaction>> BeginWrite();

  /// Starts a read-only transaction. With snapshot reuse enabled
  /// (POSEIDON_SNAPSHOT_EPOCH_US > 0, the default) the transaction reads at
  /// the shared published snapshot timestamp: no next_ts_ bump, no rts
  /// CAS-maxes, no post-bump revalidation — the read path mutates no shared
  /// state at all. With the knob at 0 this is Begin() plus the write guard
  /// (the exact seed read protocol).
  std::unique_ptr<Transaction> BeginReadOnly();

  /// Smallest timestamp of any active transaction (the published snapshot
  /// included while snapshot reuse is enabled), or the next timestamp if
  /// none are active. Lock-free unless transactions overflowed the slot
  /// arrays (> kTxSlots concurrently active).
  storage::Timestamp MinActiveTs() const;

  /// Transaction-level GC: prunes version chains and reclaims deferred
  /// PMem space. Invoked automatically as transactions finish.
  void RunGc();

  storage::GraphStore* store() const { return store_; }
  index::IndexManager* indexes() const { return indexes_; }
  VersionChains<storage::NodeRecord>& node_versions() {
    return node_versions_;
  }
  VersionChains<storage::RelationshipRecord>& rel_versions() {
    return rel_versions_;
  }
  AdjacencyCache& adjacency_cache() { return adj_cache_; }

  uint64_t commits() const {
    return commits_.load(std::memory_order_relaxed);
  }
  uint64_t aborts() const { return aborts_.load(std::memory_order_relaxed); }
  /// Full counter snapshot (read retries, group drains, rts coalescing,
  /// snapshot traffic); replaces the per-counter getters.
  TxStats Stats() const;

  bool group_commit_enabled() const { return group_commit_enabled_; }
  bool background_gc_enabled() const { return bg_gc_; }

  /// Snapshot-epoch length in microseconds; 0 disables snapshot reuse
  /// (BeginReadOnly falls back to the seed fresh-timestamp protocol).
  /// Runtime setter for ablation; switch only while no read-only
  /// transaction is being started.
  int64_t snapshot_epoch_us() const {
    return snapshot_epoch_us_.load(std::memory_order_relaxed);
  }
  void set_snapshot_epoch_us(int64_t us) {
    snapshot_epoch_us_.store(us, std::memory_order_relaxed);
  }

  /// Bounded snapshot staleness (POSEIDON_SNAPSHOT_MAX_LAG, ids): when the
  /// published snapshot trails next_ts_ by more than this many drawn ids —
  /// a stalled or preempted writer is pinning the stable frontier —
  /// BeginReadOnly degrades that transaction to the seed fresh-timestamp
  /// protocol instead of handing out a snapshot whose every read of a
  /// recently-updated record falls off the PMem fast path into a version-
  /// chain walk. 0 = unbounded (always use the snapshot).
  uint64_t snapshot_max_lag() const {
    return snapshot_max_lag_.load(std::memory_order_relaxed);
  }
  void set_snapshot_max_lag(uint64_t ids) {
    snapshot_max_lag_.store(ids, std::memory_order_relaxed);
  }

  /// rts-bump coalescing; off restores the eager seed bump on every read.
  bool rts_coalesce() const {
    return rts_coalesce_.load(std::memory_order_relaxed);
  }
  void set_rts_coalesce(bool on) {
    rts_coalesce_.store(on, std::memory_order_relaxed);
  }

  /// Currently published snapshot timestamp (0 = none published yet).
  storage::Timestamp snapshot_ts() const {
    return snapshot_ts_.load(std::memory_order_acquire);
  }

  // --- Overload governance ----------------------------------------------

  /// Max in-flight writers admitted by BeginWrite (POSEIDON_MAX_WRITERS;
  /// 0 = unlimited). Runtime setter for benches/tests.
  int64_t max_writers() const {
    return max_writers_.load(std::memory_order_relaxed);
  }
  void set_max_writers(int64_t n) {
    max_writers_.store(n, std::memory_order_relaxed);
  }

  /// Default per-transaction deadline in ms (POSEIDON_QUERY_DEADLINE_MS;
  /// 0 = none). Armed on every transaction's CancelToken at Begin.
  int64_t default_deadline_ms() const {
    return default_deadline_ms_.load(std::memory_order_relaxed);
  }
  void set_default_deadline_ms(int64_t ms) {
    default_deadline_ms_.store(ms, std::memory_order_relaxed);
  }

  /// Read-write transactions currently in flight (admission-gate input).
  int64_t active_writers() const {
    return active_writers_.load(std::memory_order_acquire);
  }

  // --- Media-fault repair ------------------------------------------------

  /// Produces a replacement image for a corrupt record slot from the newest
  /// retained version in the DRAM version chain: the record rolls back to
  /// its most recent superseded committed state (tx fields normalized to
  /// "latest, unlocked", property chain rewritten from the DRAM snapshot
  /// because the old PMem chain may already be recycled). Returns false
  /// when no version is retained — the slot's content is then lost.
  bool ResurrectNode(storage::RecordId id, storage::NodeRecord* out);
  bool ResurrectRel(storage::RecordId id, storage::RelationshipRecord* out);

 private:
  friend class Transaction;

  /// Fixed-size active-transaction registry: one cache-line-padded atomic
  /// timestamp per slot (0 = free) claimed by CAS from a thread-hashed
  /// start index, with a mutex-guarded multiset absorbing overflow. Two
  /// instances: writers (read-write transactions) and readers (shared-
  /// snapshot pins) — kept separate so the snapshot computation can scan
  /// writers only (a snapshot that included reader pins could never
  /// advance past its own consumers).
  struct TxSlots {
    static constexpr size_t kTxSlots = 64;
    struct alignas(64) Slot {
      std::atomic<storage::Timestamp> ts{0};
    };
    Slot slots[kTxSlots];
    mutable std::mutex overflow_mu;
    std::multiset<storage::Timestamp> overflow;

    /// Claims a free slot and stores `initial` into it (seq_cst, so a
    /// subsequent watermark scan either sees it or runs entirely before
    /// the claim). Returns -1 when every slot is taken.
    int Claim(storage::Timestamp initial) {
      size_t start =
          std::hash<std::thread::id>{}(std::this_thread::get_id()) % kTxSlots;
      for (size_t i = 0; i < kTxSlots; ++i) {
        size_t idx = (start + i) % kTxSlots;
        storage::Timestamp expected = 0;
        if (slots[idx].ts.compare_exchange_strong(
                expected, initial, std::memory_order_seq_cst)) {
          return static_cast<int>(idx);
        }
      }
      return -1;
    }

    void Store(int slot, storage::Timestamp ts) {
      slots[slot].ts.store(ts, std::memory_order_seq_cst);
    }

    void Release(int slot, storage::Timestamp ts) {
      if (slot >= 0) {
        slots[slot].ts.store(0, std::memory_order_release);
      } else {
        std::lock_guard<std::mutex> lock(overflow_mu);
        overflow.erase(overflow.find(ts));
      }
    }

    /// Minimum over `bound`, every claimed slot, and the overflow set. The
    /// caller must load next_ts_ (the bound) BEFORE calling: a transaction
    /// whose slot claim is missed by this scan performed its timestamp
    /// fetch_add after the claim, hence after the bound load in seq_cst
    /// order, so its id is >= bound and the result stays conservative.
    storage::Timestamp Min(storage::Timestamp bound) const {
      storage::Timestamp m = bound;
      for (const Slot& s : slots) {
        storage::Timestamp t = s.ts.load(std::memory_order_seq_cst);
        if (t != 0 && t < m) m = t;
      }
      std::lock_guard<std::mutex> lock(overflow_mu);
      if (!overflow.empty() && *overflow.begin() < m) m = *overflow.begin();
      return m;
    }
  };

  void Finish(Transaction* t, bool committed);
  void Defer(GcItem item);

  /// Publishes (or advances) the shared snapshot timestamp from a full
  /// writer-slot scan. `activate` forces the first publication; after that
  /// the snapshot is kept fresh without this scan by two cheaper paths:
  /// PublishStableIfQuiescent (O(1), every writer retirement) and the scan
  /// folded into RunGc's watermark computation. Staleness is therefore
  /// bounded by the oldest in-flight writer, not the epoch; the epoch knob
  /// is the on/off switch (0 restores the seed protocol exactly).
  void MaybeRefreshSnapshot(bool activate);

  /// O(1) commit-driven snapshot advance: when the retiring writer was the
  /// last one in flight, every timestamp below next_ts_ is stable and the
  /// snapshot can jump to next_ts_ - 1 without scanning the slot array.
  /// Sound because Begin() increments active_writers_ (seq_cst) BEFORE
  /// drawing its id: if the counter reads 0 after our next_ts_ load, no
  /// writer with a smaller id can still be live, and later writers draw
  /// ids >= the loaded bound.
  void PublishStableIfQuiescent();

  /// Leader/follower batched drain used for every commit-phase sfence: the
  /// first committer to arrive becomes leader, waits (bounded) for the other
  /// in-flight committers to reach their drain point, and issues a single
  /// Pool::Drain on behalf of the batch.
  void GroupDrain();

  /// RAII tag for the durable section of a commit; the group-commit leader
  /// only waits for committers that are actually inside it.
  struct CommitSection {
    explicit CommitSection(TransactionManager* m);
    ~CommitSection();
    TransactionManager* mgr;
  };

  storage::GraphStore* store_;
  index::IndexManager* indexes_;
  std::atomic<storage::Timestamp> next_ts_;

  TxSlots writer_slots_;
  TxSlots reader_slots_;

  // --- Shared-snapshot state (BeginReadOnly) ----------------------------
  // snapshot_ts_ stays 0 (and costs nothing) until the first BeginReadOnly
  // publishes it; it is monotonic and always <= the id of every active or
  // future writer. While nonzero and enabled it is part of the GC
  // watermark, closing the claim window between a reader loading it and
  // pinning it in its slot.
  std::atomic<storage::Timestamp> snapshot_ts_{0};
  std::atomic<int64_t> snapshot_epoch_us_;
  std::atomic<uint64_t> snapshot_max_lag_;
  std::atomic<bool> rts_coalesce_;
  std::mutex snapshot_mu_;  // serializes scan-based refreshes (activation)
  // Writers (and seed-mode fresh readers) in flight: incremented in Begin()
  // before the id draw, decremented at Finish. Lets the last writer out
  // publish the stable frontier in O(1) instead of scanning 64 slot lines
  // on every commit.
  std::atomic<int64_t> active_writers_{0};

  VersionChains<storage::NodeRecord> node_versions_;
  VersionChains<storage::RelationshipRecord> rel_versions_;
  AdjacencyCache adj_cache_{AdjacencyCacheOptions::FromEnv()};

  std::mutex gc_mu_;
  std::vector<GcItem> gc_queue_;
  /// Serializes whole RunGc executions (gc_mu_ only covers the queue
  /// partition); see the comment at the top of RunGc. Ordering: gc_run_mu_
  /// is taken before gc_mu_, never the reverse.
  std::mutex gc_run_mu_;

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> read_retries_{0};
  std::atomic<uint64_t> retry_exhausted_{0};
  std::atomic<uint64_t> rts_skipped_{0};
  std::atomic<uint64_t> rts_deferred_{0};
  std::atomic<uint64_t> snapshot_refreshes_{0};
  std::atomic<uint64_t> snapshot_reads_{0};
  std::atomic<uint64_t> snapshot_fallbacks_{0};
  std::atomic<uint64_t> aborts_conflict_{0};
  std::atomic<uint64_t> aborts_deadline_{0};
  std::atomic<uint64_t> aborts_cancelled_{0};
  std::atomic<uint64_t> aborts_space_{0};
  std::atomic<uint64_t> writers_shed_{0};
  std::atomic<uint64_t> space_denied_{0};
  // Admission knobs resolved once at construction (runtime setters above).
  std::atomic<int64_t> max_writers_{0};
  std::atomic<int64_t> default_deadline_ms_{0};
  util::Backoff::Options admission_backoff_;  // gate wait (64 attempts)
  // Gates the scan-based refresh retry during a degraded (lag-capped)
  // phase to every 32nd stale begin; not user-visible.
  std::atomic<uint64_t> fallback_probe_gate_{0};

  // Backoff parameters resolved once at construction (the env is not probed
  // on the read hot path). Both honour POSEIDON_TX_RETRY_ATTEMPTS; the
  // defaults keep the seed engine's per-site budgets.
  util::Backoff::Options read_backoff_;        // seqlock stabilization (1024)
  util::Backoff::Options visibility_backoff_;  // post-rts-bump re-check (64)

  // --- Group commit (pipelined pools only) ------------------------------
  bool group_commit_enabled_ = false;
  uint64_t group_window_us_ = 50;
  std::mutex group_mu_;
  std::condition_variable arrive_cv_;  // wakes a waiting leader
  std::condition_variable done_cv_;    // wakes followers
  uint64_t group_gen_ = 1;       // id of the currently-forming batch
  uint64_t group_done_gen_ = 0;  // highest batch whose drain completed
  uint32_t group_members_ = 0;   // arrivals in the forming batch
  bool leader_active_ = false;
  std::atomic<uint32_t> committers_in_flight_{0};
  std::atomic<uint64_t> group_drains_{0};

  // --- Background version GC (pipelined pools only) ---------------------
  bool bg_gc_ = false;
  std::atomic<bool> gc_stop_{false};
  std::mutex gc_wake_mu_;
  std::condition_variable gc_wake_cv_;
  std::thread gc_thread_;
};

}  // namespace poseidon::tx

#endif  // POSEIDON_TX_TRANSACTION_H_
