// MVTO transactions over the persistent graph store (paper §5).
//
// Protocol summary (timestamp ordering, snapshot-isolation guarantees):
//   * Every transaction gets a unique timestamp `id` at Begin; it doubles as
//     the commit timestamp (classic MVTO).
//   * Writers lock an object by CAS-ing its persistent txn-id field from 0
//     to `id` (C4: an 8-byte atomic) and abort on conflict — if the object
//     is locked, already read by a newer transaction (rts > id), or
//     overwritten by a newer version (bts > id).
//   * All uncommitted changes (new versions) live in a DRAM write set
//     (DG1/DG2); inserted records are placed in PMem immediately but stay
//     locked and carry bts == 0, making them invisible to everyone else.
//   * Readers pick the version with bts <= id < ets: the PMem record is the
//     latest committed version; older ones come from the DRAM version
//     chains. Readers abort when they hit a foreign lock (paper §5.1) and
//     bump rts with an unflushed CAS-max.
//   * Commit persists all new versions with ONE failure-atomic redo-log
//     transaction (the paper uses PMDK transactions here); each record's
//     txn-id reset is staged last so the object stays locked until its new
//     image is fully durable.
//   * Aborts drop the write set, unlock in place, and free inserted slots.
//   * Transaction-level GC prunes version chains and reclaims PMem property
//     chains / deleted slots once invisible to every active transaction.

#ifndef POSEIDON_TX_TRANSACTION_H_
#define POSEIDON_TX_TRANSACTION_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "index/index_manager.h"
#include "storage/graph_store.h"
#include "tx/adjacency_cache.h"
#include "tx/version_store.h"
#include "util/backoff.h"

namespace poseidon::tx {

class TransactionManager;

/// Result of resolving a record to the version visible to a transaction.
/// When `from_snapshot` is set the properties come from a DRAM snapshot
/// (write set or version chain) held in `snapshot`; otherwise read the PMem
/// chain at rec.props.
template <typename R>
struct Resolved {
  R rec;
  bool from_snapshot = false;
  std::vector<storage::Property> snapshot;
};

class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  storage::Timestamp id() const { return id_; }
  bool finished() const { return finished_; }

  // --- Reads ----------------------------------------------------------

  /// Returns the node version visible to this transaction.
  /// kAborted if the record is locked by another active transaction.
  Result<Resolved<storage::NodeRecord>> GetNode(storage::RecordId id);
  Result<Resolved<storage::RelationshipRecord>> GetRelationship(
      storage::RecordId id);

  /// Property access against the visible version. Null PVal if absent.
  Result<storage::PVal> GetNodeProperty(storage::RecordId id,
                                        storage::DictCode key);
  Result<storage::PVal> GetRelationshipProperty(storage::RecordId id,
                                                storage::DictCode key);
  Result<std::vector<storage::Property>> GetNodeProperties(
      storage::RecordId id);
  Result<std::vector<storage::Property>> GetRelationshipProperties(
      storage::RecordId id);

  /// Visibility-filtered adjacency traversal (ForeachRelationship, §6.1).
  /// `fn` returns false to stop early. Aborts propagate as kAborted.
  Status ForEachOutgoing(
      storage::RecordId node,
      const std::function<bool(storage::RecordId,
                               const storage::RelationshipRecord&)>& fn);
  Status ForEachIncoming(
      storage::RecordId node,
      const std::function<bool(storage::RecordId,
                               const storage::RelationshipRecord&)>& fn);

  /// Topology-only adjacency traversal: `fn(rel_id, rel_label, neighbor)`
  /// where neighbor is rel.dst for kOut and rel.src for kIn. Serves the
  /// versioned DRAM adjacency cache when this transaction's snapshot covers
  /// the cached stamp (see adjacency_cache.h); otherwise falls back to the
  /// chain walk with identical visibility. `fn` returns false to stop early.
  Status ForEachNeighbor(
      storage::RecordId node, AdjDir dir,
      const std::function<bool(storage::RecordId, storage::DictCode,
                               storage::RecordId)>& fn);

  /// Probe-or-build entry into the adjacency cache. Returns the neighbor
  /// array this transaction may legally serve for (node, dir), or null when
  /// it must chain-walk instead: cache disabled, node in this tx's write
  /// set, node/rel reads that need snapshot versions, or visibility errors
  /// (the fallback walk re-raises those). Used directly by the JIT runtime
  /// helper and analytics::Snapshot.
  std::shared_ptr<const AdjacencyList> GetCachedAdjacency(
      storage::RecordId node, AdjDir dir);

  // --- Writes ---------------------------------------------------------

  /// Inserts a node; visible to others only after Commit.
  Result<storage::RecordId> CreateNode(
      storage::DictCode label, const std::vector<storage::Property>& props);

  /// Inserts a directed relationship and links it into both adjacency
  /// lists; write-locks src and dst.
  Result<storage::RecordId> CreateRelationship(
      storage::RecordId src, storage::RecordId dst, storage::DictCode label,
      const std::vector<storage::Property>& props);

  /// Sets (or overwrites) one property; write-locks the record.
  Status SetNodeProperty(storage::RecordId id, storage::DictCode key,
                         storage::PVal value);
  Status SetRelationshipProperty(storage::RecordId id, storage::DictCode key,
                                 storage::PVal value);

  /// Deletes a node; fails (kFailedPrecondition) while relationships are
  /// still attached.
  Status DeleteNode(storage::RecordId id);

  /// Deletes a relationship, unlinking it from both adjacency lists (this
  /// write-locks the endpoints and any predecessor relationships).
  Status DeleteRelationship(storage::RecordId id);

  // --- Outcome -----------------------------------------------------------

  /// Atomically persists the write set; on success the transaction is over.
  /// On failure the transaction has been aborted.
  Status Commit();

  /// Discards the write set, unlocking in place.
  void Abort();

  /// Number of objects in the write set (tests/stats).
  size_t write_set_size() const {
    return node_writes_.size() + rel_writes_.size();
  }

  TransactionManager* manager() const { return mgr_; }

 private:
  friend class TransactionManager;

  template <typename R>
  struct Write {
    R rec;  ///< working image (adjacency/props head updated in place)
    std::vector<storage::Property> props;
    bool inserted = false;
    bool deleted = false;
    bool props_changed = false;
    R before;  ///< committed PMem image at lock time (updates only)
    std::vector<storage::Property> props_before;
  };
  using NodeWrite = Write<storage::NodeRecord>;
  using RelWrite = Write<storage::RelationshipRecord>;

  Transaction(TransactionManager* mgr, storage::Timestamp ts);

  /// Seqlock-style stable read of the PMem record: retries while a
  /// concurrent commit is applying; kAborted on a foreign lock.
  template <typename Table, typename R>
  Status ReadStable(const Table& table, storage::RecordId id, R* out);

  /// Write-locks a record and materializes its write-set entry.
  Result<NodeWrite*> LockNode(storage::RecordId id);
  Result<RelWrite*> LockRel(storage::RecordId id);

  template <typename R, typename Table, typename Chains, typename WriteMap>
  Result<Resolved<R>> GetRecord(const Table& table, const Chains& chains,
                                const WriteMap& writes, storage::RecordId id,
                                bool is_node);

  /// CAS-max on the persistent rts field (unflushed; re-initializable).
  template <typename R>
  bool BumpRts(R* rec);

  /// Shared direction-parameterized chain walker behind ForEachOutgoing /
  /// ForEachIncoming / the cache-miss fallback.
  Status ForEachRelChain(
      storage::RecordId node, AdjDir dir,
      const std::function<bool(storage::RecordId,
                               const storage::RelationshipRecord&)>& fn);

  Status CommitImpl();
  void ReleaseLocks();

  TransactionManager* mgr_;
  storage::GraphStore* store_;
  storage::Timestamp id_;
  bool finished_ = false;

  // std::map keeps commit staging deterministic (useful for tests).
  std::map<storage::RecordId, NodeWrite> node_writes_;
  std::map<storage::RecordId, RelWrite> rel_writes_;
};

/// Deferred PMem reclamation (paper §5.3): slots and property chains of
/// superseded/deleted versions are recycled once min-active passes them.
struct GcItem {
  enum class Kind { kPropChain, kNodeSlot, kRelSlot };
  Kind kind;
  storage::Timestamp reclaim_after;
  storage::RecordId id;  ///< chain head (kPropChain) or record slot
};

class TransactionManager {
 public:
  /// `indexes` may be null (no secondary-index maintenance).
  ///
  /// When the pool runs the parallel commit pipeline, the manager also
  /// activates (a) group commit — concurrent committers elect a leader that
  /// issues one drain for the whole batch (bounded by
  /// POSEIDON_GROUP_COMMIT_WINDOW_US; disable with POSEIDON_GROUP_COMMIT=0)
  /// — and (b) a background epoch thread that runs RunGc() off the commit
  /// path (disable with POSEIDON_BG_GC=0).
  TransactionManager(storage::GraphStore* store,
                     index::IndexManager* indexes);

  /// Stops the background GC thread.
  ~TransactionManager();

  /// Releases in-flight locks left by a crash: uncommitted inserts
  /// (txn-id != 0, bts == 0) are dropped; locked committed records are
  /// unlocked in place. Call once after GraphStore::Open on a crashed pool.
  Status RecoverInFlight();

  std::unique_ptr<Transaction> Begin();

  /// Smallest timestamp of any active transaction, or the next timestamp if
  /// none are active.
  storage::Timestamp MinActiveTs() const;

  /// Transaction-level GC: prunes version chains and reclaims deferred
  /// PMem space. Invoked automatically as transactions finish.
  void RunGc();

  storage::GraphStore* store() const { return store_; }
  index::IndexManager* indexes() const { return indexes_; }
  VersionChains<storage::NodeRecord>& node_versions() {
    return node_versions_;
  }
  VersionChains<storage::RelationshipRecord>& rel_versions() {
    return rel_versions_;
  }
  AdjacencyCache& adjacency_cache() { return adj_cache_; }

  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }
  /// Read-path retries: seqlock re-reads + visibility re-checks that had to
  /// back off because a concurrent commit raced the copy.
  uint64_t read_retries() const { return read_retries_; }
  /// Reads that exhausted their backoff budget and aborted
  /// (POSEIDON_TX_RETRY_ATTEMPTS, POSEIDON_BACKOFF_*).
  uint64_t retry_exhausted() const { return retry_exhausted_; }
  /// Physical drains issued by group-commit leaders (<= commits when
  /// batching is effective).
  uint64_t group_drains() const { return group_drains_; }
  bool group_commit_enabled() const { return group_commit_enabled_; }
  bool background_gc_enabled() const { return bg_gc_; }

 private:
  friend class Transaction;

  void Finish(storage::Timestamp ts, bool committed);
  void Defer(GcItem item);

  /// Leader/follower batched drain used for every commit-phase sfence: the
  /// first committer to arrive becomes leader, waits (bounded) for the other
  /// in-flight committers to reach their drain point, and issues a single
  /// Pool::Drain on behalf of the batch.
  void GroupDrain();

  /// RAII tag for the durable section of a commit; the group-commit leader
  /// only waits for committers that are actually inside it.
  struct CommitSection {
    explicit CommitSection(TransactionManager* m);
    ~CommitSection();
    TransactionManager* mgr;
  };

  storage::GraphStore* store_;
  index::IndexManager* indexes_;
  std::atomic<storage::Timestamp> next_ts_;

  mutable std::mutex active_mu_;
  std::set<storage::Timestamp> active_;

  VersionChains<storage::NodeRecord> node_versions_;
  VersionChains<storage::RelationshipRecord> rel_versions_;
  AdjacencyCache adj_cache_{AdjacencyCacheOptions::FromEnv()};

  std::mutex gc_mu_;
  std::vector<GcItem> gc_queue_;

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> read_retries_{0};
  std::atomic<uint64_t> retry_exhausted_{0};

  // Backoff parameters resolved once at construction (the env is not probed
  // on the read hot path). Both honour POSEIDON_TX_RETRY_ATTEMPTS; the
  // defaults keep the seed engine's per-site budgets.
  util::Backoff::Options read_backoff_;        // seqlock stabilization (1024)
  util::Backoff::Options visibility_backoff_;  // post-rts-bump re-check (64)

  // --- Group commit (pipelined pools only) ------------------------------
  bool group_commit_enabled_ = false;
  uint64_t group_window_us_ = 50;
  std::mutex group_mu_;
  std::condition_variable arrive_cv_;  // wakes a waiting leader
  std::condition_variable done_cv_;    // wakes followers
  uint64_t group_gen_ = 1;       // id of the currently-forming batch
  uint64_t group_done_gen_ = 0;  // highest batch whose drain completed
  uint32_t group_members_ = 0;   // arrivals in the forming batch
  bool leader_active_ = false;
  std::atomic<uint32_t> committers_in_flight_{0};
  std::atomic<uint64_t> group_drains_{0};

  // --- Background version GC (pipelined pools only) ---------------------
  bool bg_gc_ = false;
  std::atomic<bool> gc_stop_{false};
  std::mutex gc_wake_mu_;
  std::condition_variable gc_wake_cv_;
  std::thread gc_thread_;
};

}  // namespace poseidon::tx

#endif  // POSEIDON_TX_TRANSACTION_H_
