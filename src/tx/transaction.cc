#include "tx/transaction.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "pmem/pptr.h"
#include "util/backoff.h"
#include "util/env.h"

namespace poseidon::tx {

using storage::DictCode;
using storage::kInfinityTs;
using storage::kNullId;
using storage::kUnlocked;
using storage::NodeRecord;
using storage::Property;
using storage::PVal;
using storage::RecordId;
using storage::RelationshipRecord;
using storage::Timestamp;

namespace {

std::atomic_ref<Timestamp> AtomicTs(Timestamp& field) {
  return std::atomic_ref<Timestamp>(field);
}

/// Replaces or appends `key` in a property list.
void UpsertProp(std::vector<Property>* props, DictCode key, PVal value) {
  for (auto& p : *props) {
    if (p.key == key) {
      p.value = value;
      return;
    }
  }
  props->push_back(Property{key, value});
}

PVal FindProp(const std::vector<Property>& props, DictCode key) {
  for (const auto& p : props) {
    if (p.key == key) return p.value;
  }
  return PVal::Null();
}

using poseidon::util::EnvInt;

}  // namespace

// --- Transaction: lifecycle --------------------------------------------------

Transaction::Transaction(TransactionManager* mgr, Timestamp ts)
    : mgr_(mgr), store_(mgr->store()), id_(ts) {
  // Arm the default cooperative deadline (POSEIDON_QUERY_DEADLINE_MS;
  // 0 = none). Per-query overrides re-arm the token after Begin.
  int64_t deadline_ms = mgr->default_deadline_ms();
  if (deadline_ms > 0) cancel_.SetDeadlineAfterMs(deadline_ms);
}

AbortCause Transaction::CauseFromStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kDeadlineExceeded:
      return AbortCause::kDeadline;
    case StatusCode::kCancelled:
      return AbortCause::kCancelled;
    case StatusCode::kResourceExhausted:
      return AbortCause::kSpace;
    default:
      return AbortCause::kConflict;
  }
}

Transaction::~Transaction() {
  if (!finished_) Abort();
}

// --- Stable reads -------------------------------------------------------------

template <typename Table, typename R>
Status Transaction::ReadStable(const Table& table, RecordId id, R* out) {
  // Bounded exponential backoff instead of the seed's tight 1024-iteration
  // spin: under commit contention the reader yields the cache line instead
  // of ping-ponging it, and exhaustion is an Aborted (retryable by the
  // client) rather than an engine-internal error.
  util::Backoff backoff(mgr_->read_backoff_);
  do {
    R* rec = table.At(id);
    Timestamp txn = AtomicTs(rec->tx.txn_id).load(std::memory_order_acquire);
    if (txn != kUnlocked && txn != id_) {
      if (AtomicTs(rec->tx.bts).load(std::memory_order_acquire) == 0) {
        // A locked record that was never committed is another transaction's
        // in-flight insert: simply invisible, no conflict (paper §5.1).
        return Status::NotFound("record not yet committed");
      }
      // Paper §5.1: a lock held by another transaction aborts the reader.
      return Status::Aborted("record locked by transaction " +
                             std::to_string(txn));
    }
    // Word-atomic copy: a concurrent commit applies with 8-byte atomic
    // stores, so the racing copy is data-race-free; the seqlock check below
    // rejects torn logical content.
    pmem::AtomicLoadCopy(out, rec, sizeof(R));
    std::atomic_thread_fence(std::memory_order_acquire);
    Timestamp txn2 = AtomicTs(rec->tx.txn_id).load(std::memory_order_acquire);
    Timestamp bts2 = AtomicTs(rec->tx.bts).load(std::memory_order_acquire);
    if (txn2 == txn && bts2 == out->tx.bts) return Status::Ok();
    // A concurrent commit raced our copy; retry against the new state.
    mgr_->read_retries_.fetch_add(1, std::memory_order_relaxed);
  } while (backoff.Next());
  mgr_->retry_exhausted_.fetch_add(1, std::memory_order_relaxed);
  return Status::Aborted("record would not stabilize after " +
                         std::to_string(backoff.attempts()) + " attempts");
}

template <typename R>
bool Transaction::BumpRts(R* rec) {
  auto rts = AtomicTs(rec->tx.rts);
  Timestamp cur = rts.load(std::memory_order_relaxed);
  while (cur < id_) {
    // Unflushed on purpose: rts is re-initializable after a crash (§5.1).
    if (rts.compare_exchange_weak(cur, id_, std::memory_order_acq_rel)) break;
  }
  return true;
}

template <typename R, typename Table, typename Chains, typename WriteMap>
Result<Resolved<R>> Transaction::GetRecord(const Table& table,
                                           const Chains& chains,
                                           const WriteMap& writes, RecordId id,
                                           bool is_node) {
  (void)is_node;
  // One named return object shared by every branch: separate locals per
  // branch defeat NRVO, and the resulting Resolved move + vector teardown
  // per read shows up on the snapshot fast path (which does little else).
  Resolved<R> r;
  auto it = writes.find(id);
  if (it != writes.end()) {
    const auto& w = it->second;
    if (w.deleted) return Status::NotFound("record deleted in this tx");
    r.rec = w.rec;
    r.from_snapshot = true;
    r.snapshot = w.props;
    return r;
  }
  if (id == kNullId || !table.IsOccupied(id)) {
    // A tombstoned slot (bitmap cleared by the repair pipeline, line still
    // quarantined) must report loss, not absence.
    if (table.IsQuarantined(id)) {
      return Status::Corruption("record lost to an unrepairable media fault");
    }
    return Status::NotFound("record does not exist");
  }
  if (table.IsQuarantined(id)) {
    return Status::Corruption("record quarantined by media fault");
  }
  util::Backoff backoff(mgr_->visibility_backoff_);
  do {
    R copy;
    POSEIDON_RETURN_IF_ERROR(ReadStable(table, id, &copy));
    if (copy.tx.bts == 0) {
      // Uncommitted insert of another transaction: invisible.
      return Status::NotFound("record not yet committed");
    }
    if (copy.tx.bts <= id_) {
      if (id_ >= copy.tx.ets) {
        return Status::NotFound("record deleted before this tx");
      }
      const bool coalesce =
          mgr_->rts_coalesce_.load(std::memory_order_relaxed);
      if (snapshot_ && coalesce) {
        // Shared-snapshot read: no active or future writer has an id <= our
        // published timestamp (invariant of MaybeRefreshSnapshot), so no
        // writer admission check can ever probe rts against a value below
        // it — the bump, and the revalidation that protects it, are dead
        // weight. Serving the validated copy directly leaves the record's
        // cache line untouched. Counted per transaction (morsel workers
        // share the tx, hence atomic; relaxed) and flushed at Finish: a
        // manager-wide atomic here would concentrate every reader on one
        // counter cache line — hotter than the per-record rts CAS traffic
        // this path exists to avoid.
        rts_deferred_.fetch_add(1, std::memory_order_relaxed);
        r.rec = copy;
        return r;
      }
      if (coalesce && copy.tx.rts >= id_) {
        // Coalesced fast path: the validated copy already carries
        // rts >= id_. rts is a CAS-max (monotone), so every future
        // admission check by a writer older than us sees rts >= id_ and
        // aborts exactly as if we had bumped; a writer that passed its
        // check before our copy either committed first (we saw its bts) or
        // still held the lock during the copy (ReadStable rejected it).
        // Skipping the CAS also skips the revalidation it protects.
        rts_skipped_.fetch_add(1, std::memory_order_relaxed);
        r.rec = copy;
        return r;
      }
      // Latest committed version is visible: bump rts, then re-validate
      // that no writer slipped in between visibility check and rts bump.
      R* rec = table.AtForWrite(id);
      BumpRts(rec);
      Timestamp txn2 =
          AtomicTs(rec->tx.txn_id).load(std::memory_order_acquire);
      Timestamp bts2 = AtomicTs(rec->tx.bts).load(std::memory_order_acquire);
      if (txn2 != kUnlocked || bts2 != copy.tx.bts) {
        // A writer slipped in between visibility check and rts bump.
        mgr_->read_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;  // backs off via the loop condition
      }
      r.rec = copy;
      return r;
    }
    // A newer version is committed; ours (if any) lives in the DRAM chain.
    auto v = chains.FindVisible(id, id_);
    if (!v.has_value()) {
      return Status::NotFound("no version visible at this timestamp");
    }
    r.rec = v->rec;
    r.from_snapshot = true;
    r.snapshot = std::move(v->props);
    return r;
  } while (backoff.Next());
  mgr_->retry_exhausted_.fetch_add(1, std::memory_order_relaxed);
  return Status::Aborted("record visibility would not stabilize after " +
                         std::to_string(backoff.attempts()) + " attempts");
}

Result<Resolved<NodeRecord>> Transaction::GetNode(RecordId id) {
  return GetRecord<NodeRecord>(store_->nodes(), mgr_->node_versions_,
                               node_writes_, id, true);
}

Result<Resolved<RelationshipRecord>> Transaction::GetRelationship(
    RecordId id) {
  return GetRecord<RelationshipRecord>(store_->relationships(),
                                       mgr_->rel_versions_, rel_writes_, id,
                                       false);
}

Result<PVal> Transaction::GetNodeProperty(RecordId id, DictCode key) {
  POSEIDON_ASSIGN_OR_RETURN(auto r, GetNode(id));
  if (r.from_snapshot) return FindProp(r.snapshot, key);
  POSEIDON_RETURN_IF_ERROR(store_->properties().CheckChain(r.rec.props));
  return store_->properties().Get(r.rec.props, key);
}

Result<PVal> Transaction::GetRelationshipProperty(RecordId id, DictCode key) {
  POSEIDON_ASSIGN_OR_RETURN(auto r, GetRelationship(id));
  if (r.from_snapshot) return FindProp(r.snapshot, key);
  POSEIDON_RETURN_IF_ERROR(store_->properties().CheckChain(r.rec.props));
  return store_->properties().Get(r.rec.props, key);
}

Result<std::vector<Property>> Transaction::GetNodeProperties(RecordId id) {
  POSEIDON_ASSIGN_OR_RETURN(auto r, GetNode(id));
  if (r.from_snapshot) return std::move(r.snapshot);
  POSEIDON_RETURN_IF_ERROR(store_->properties().CheckChain(r.rec.props));
  std::vector<Property> props;
  store_->properties().ReadChain(r.rec.props, &props);
  return props;
}

Result<std::vector<Property>> Transaction::GetRelationshipProperties(
    RecordId id) {
  POSEIDON_ASSIGN_OR_RETURN(auto r, GetRelationship(id));
  if (r.from_snapshot) return std::move(r.snapshot);
  POSEIDON_RETURN_IF_ERROR(store_->properties().CheckChain(r.rec.props));
  std::vector<Property> props;
  store_->properties().ReadChain(r.rec.props, &props);
  return props;
}

// --- Traversal ----------------------------------------------------------------

Status Transaction::ForEachRelChain(
    RecordId node, AdjDir dir,
    const std::function<bool(RecordId, const RelationshipRecord&)>& fn) {
  const bool out = dir == AdjDir::kOut;
  POSEIDON_ASSIGN_OR_RETURN(auto n, GetNode(node));
  RecordId cur = out ? n.rec.first_out : n.rec.first_in;
  while (cur != kNullId) {
    auto r = GetRelationship(cur);
    if (!r.ok()) {
      if (!r.status().IsNotFound()) return r.status();
      // Defensive: invisible relationship on our chain (should not happen
      // for a consistent snapshot); follow its raw next pointer.
      RelationshipRecord raw;
      POSEIDON_RETURN_IF_ERROR(
          ReadStable(store_->relationships(), cur, &raw));
      cur = out ? raw.next_src : raw.next_dst;
      continue;
    }
    RecordId next = out ? r->rec.next_src : r->rec.next_dst;
    // Start the fill of the next link before the callback runs, so its PMem
    // read latency overlaps the per-relationship work.
    store_->relationships().Prefetch(next);
    if (!fn(cur, r->rec)) return Status::Ok();
    cur = next;
  }
  return Status::Ok();
}

Status Transaction::ForEachOutgoing(
    RecordId node,
    const std::function<bool(RecordId, const RelationshipRecord&)>& fn) {
  return ForEachRelChain(node, AdjDir::kOut, fn);
}

Status Transaction::ForEachIncoming(
    RecordId node,
    const std::function<bool(RecordId, const RelationshipRecord&)>& fn) {
  return ForEachRelChain(node, AdjDir::kIn, fn);
}

std::shared_ptr<const AdjacencyList> Transaction::GetCachedAdjacency(
    RecordId node, AdjDir dir) {
  AdjacencyCache& cache = mgr_->adj_cache_;
  if (!cache.enabled() || finished_) return nullptr;
  // Our own topology edits live in the write set; the cache only reflects
  // committed state.
  if (node_writes_.count(node) != 0) return nullptr;
  auto n = GetNode(node);
  // Errors (NotFound, foreign lock) fall back so the chain walk re-raises
  // them with full fidelity.
  if (!n.ok()) return nullptr;
  // n->rec is the node version our MVTO read resolved — latest committed
  // (rts bumped, blocking any topology writer older than us) or an older
  // version off the DRAM chain whose topology is frozen forever. Either
  // way a cached array whose [first_stamp, stamp] range covers this bts is
  // exactly the chain we would walk (every adjacency change commits a new
  // node version, so the range never spans one). Epoch-snapshot readers
  // hit here even while property updates restamp the entry forward.
  const Timestamp stamp = n->rec.tx.bts;
  const bool out = dir == AdjDir::kOut;
  if (auto hit = cache.Lookup(node, dir, stamp)) return hit;
  // Miss: build from our own walk. Eligible only if every hop also resolves
  // without reaching into the version chain — then the edges we record are
  // the topology at our read timestamp, which lies inside the visible node
  // version's lifetime, i.e. exactly version `stamp`'s topology. A
  // concurrent topology commit during the build is benign: it bumps the
  // node's bts, so the entry we publish is behind any fresh reader's stamp
  // and Lookup erases it instead of serving it (and Insert refuses to
  // displace a newer-stamped entry).
  std::vector<CachedNeighbor> edges;
  RecordId cur = out ? n->rec.first_out : n->rec.first_in;
  while (cur != kNullId) {
    auto r = GetRelationship(cur);
    if (!r.ok() || r->from_snapshot) return nullptr;
    RecordId next = out ? r->rec.next_src : r->rec.next_dst;
    store_->relationships().Prefetch(next);
    edges.push_back(CachedNeighbor{cur, out ? r->rec.dst : r->rec.src,
                                   r->rec.label, 0});
    cur = next;
  }
  return cache.Insert(node, dir, stamp, std::move(edges));
}

Status Transaction::ForEachNeighbor(
    RecordId node, AdjDir dir,
    const std::function<bool(RecordId, DictCode, RecordId)>& fn) {
  if (auto adj = GetCachedAdjacency(node, dir)) {
    for (const CachedNeighbor& e : adj->edges) {
      if (!fn(e.rel_id, e.rel_label, e.neighbor)) break;
    }
    return Status::Ok();
  }
  const bool out = dir == AdjDir::kOut;
  return ForEachRelChain(
      node, dir, [&](RecordId rel_id, const RelationshipRecord& rel) {
        return fn(rel_id, rel.label, out ? rel.dst : rel.src);
      });
}

// --- Locking -------------------------------------------------------------------

Result<Transaction::NodeWrite*> Transaction::LockNode(RecordId id) {
  auto it = node_writes_.find(id);
  if (it != node_writes_.end()) {
    if (it->second.deleted) {
      return Status::NotFound("node deleted in this tx");
    }
    return &it->second;
  }
  if (id == kNullId || !store_->nodes().IsOccupied(id)) {
    return Status::NotFound("node does not exist");
  }
  NodeRecord* rec = store_->nodes().AtForWrite(id);
  Timestamp expected = kUnlocked;
  if (!AtomicTs(rec->tx.txn_id)
           .compare_exchange_strong(expected, id_,
                                    std::memory_order_acq_rel)) {
    return Status::Aborted("node write-locked by transaction " +
                           std::to_string(expected));
  }
  auto unlock_and = [&](Status s) {
    // psan: volatile lock word, never flushed by design (recovery clears it)
    AtomicTs(rec->tx.txn_id).store(kUnlocked, std::memory_order_release);
    return s;
  };
  if (rec->tx.bts == 0) {
    return unlock_and(Status::NotFound("node not committed"));
  }
  if (rec->tx.ets != kInfinityTs) {
    return unlock_and(Status::NotFound("node already deleted"));
  }
  if (rec->tx.bts > id_) {
    return unlock_and(Status::Aborted("newer node version committed"));
  }
  if (AtomicTs(rec->tx.rts).load(std::memory_order_acquire) > id_) {
    // MVTO write rule: cannot overwrite a version a newer tx already read.
    return unlock_and(Status::Aborted("node read by newer transaction"));
  }
  NodeWrite w;
  // Word-atomic copy: concurrent lockers CAS the txn_id word and readers
  // CAS-max rts while we copy the record we just locked.
  pmem::AtomicLoadCopy(&w.before, rec, sizeof(NodeRecord));
  w.before.tx.txn_id = kUnlocked;
  w.rec = w.before;
  store_->properties().ReadChain(rec->props, &w.props_before);
  w.props = w.props_before;
  auto [pos, inserted] = node_writes_.emplace(id, std::move(w));
  (void)inserted;
  return &pos->second;
}

Result<Transaction::RelWrite*> Transaction::LockRel(RecordId id) {
  auto it = rel_writes_.find(id);
  if (it != rel_writes_.end()) {
    if (it->second.deleted) {
      return Status::NotFound("relationship deleted in this tx");
    }
    return &it->second;
  }
  if (id == kNullId || !store_->relationships().IsOccupied(id)) {
    return Status::NotFound("relationship does not exist");
  }
  RelationshipRecord* rec = store_->relationships().AtForWrite(id);
  Timestamp expected = kUnlocked;
  if (!AtomicTs(rec->tx.txn_id)
           .compare_exchange_strong(expected, id_,
                                    std::memory_order_acq_rel)) {
    return Status::Aborted("relationship write-locked by transaction " +
                           std::to_string(expected));
  }
  auto unlock_and = [&](Status s) {
    // psan: volatile lock word, never flushed by design (recovery clears it)
    AtomicTs(rec->tx.txn_id).store(kUnlocked, std::memory_order_release);
    return s;
  };
  if (rec->tx.bts == 0) {
    return unlock_and(Status::NotFound("relationship not committed"));
  }
  if (rec->tx.ets != kInfinityTs) {
    return unlock_and(Status::NotFound("relationship already deleted"));
  }
  if (rec->tx.bts > id_) {
    return unlock_and(Status::Aborted("newer relationship version"));
  }
  if (AtomicTs(rec->tx.rts).load(std::memory_order_acquire) > id_) {
    return unlock_and(Status::Aborted("relationship read by newer tx"));
  }
  RelWrite w;
  // Word-atomic copy: see LockNode.
  pmem::AtomicLoadCopy(&w.before, rec, sizeof(RelationshipRecord));
  w.before.tx.txn_id = kUnlocked;
  w.rec = w.before;
  store_->properties().ReadChain(rec->props, &w.props_before);
  w.props = w.props_before;
  auto [pos, inserted] = rel_writes_.emplace(id, std::move(w));
  (void)inserted;
  return &pos->second;
}

// --- Writes --------------------------------------------------------------------

Result<RecordId> Transaction::CreateNode(DictCode label,
                                         const std::vector<Property>& props) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  if (read_only_) return Status::FailedPrecondition("read-only transaction");
  NodeRecord rec;
  rec.tx.txn_id = id_;  // locked by us
  rec.tx.bts = 0;       // invisible until commit (paper §5.1 insert rule)
  rec.tx.ets = kInfinityTs;
  rec.label = label;
  POSEIDON_ASSIGN_OR_RETURN(RecordId id, store_->nodes().Insert(rec));
  NodeWrite w;
  w.rec = rec;
  w.props = props;
  w.inserted = true;
  w.props_changed = !props.empty();
  node_writes_.emplace(id, std::move(w));
  return id;
}

Result<RecordId> Transaction::CreateRelationship(
    RecordId src, RecordId dst, DictCode label,
    const std::vector<Property>& props) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  if (read_only_) return Status::FailedPrecondition("read-only transaction");
  POSEIDON_ASSIGN_OR_RETURN(NodeWrite * src_w, LockNode(src));
  POSEIDON_ASSIGN_OR_RETURN(NodeWrite * dst_w, LockNode(dst));

  RelationshipRecord rec;
  rec.tx.txn_id = id_;
  rec.tx.bts = 0;
  rec.tx.ets = kInfinityTs;
  rec.label = label;
  rec.src = src;
  rec.dst = dst;
  // Insert at the head of both adjacency lists (DD4).
  rec.next_src = src_w->rec.first_out;
  rec.next_dst = dst_w->rec.first_in;
  POSEIDON_ASSIGN_OR_RETURN(RecordId id, store_->relationships().Insert(rec));

  src_w->rec.first_out = id;
  dst_w->rec.first_in = id;

  RelWrite w;
  w.rec = rec;
  w.props = props;
  w.inserted = true;
  w.props_changed = !props.empty();
  rel_writes_.emplace(id, std::move(w));
  return id;
}

Status Transaction::SetNodeProperty(RecordId id, DictCode key, PVal value) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  if (read_only_) return Status::FailedPrecondition("read-only transaction");
  POSEIDON_ASSIGN_OR_RETURN(NodeWrite * w, LockNode(id));
  UpsertProp(&w->props, key, value);
  w->props_changed = true;
  return Status::Ok();
}

Status Transaction::SetRelationshipProperty(RecordId id, DictCode key,
                                            PVal value) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  if (read_only_) return Status::FailedPrecondition("read-only transaction");
  POSEIDON_ASSIGN_OR_RETURN(RelWrite * w, LockRel(id));
  UpsertProp(&w->props, key, value);
  w->props_changed = true;
  return Status::Ok();
}

Status Transaction::DeleteNode(RecordId id) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  if (read_only_) return Status::FailedPrecondition("read-only transaction");
  POSEIDON_ASSIGN_OR_RETURN(NodeWrite * w, LockNode(id));
  if (w->rec.first_in != kNullId || w->rec.first_out != kNullId) {
    return Status::FailedPrecondition(
        "node still has relationships; delete them first");
  }
  w->deleted = true;
  return Status::Ok();
}

Status Transaction::DeleteRelationship(RecordId id) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  if (read_only_) return Status::FailedPrecondition("read-only transaction");
  POSEIDON_ASSIGN_OR_RETURN(RelWrite * rw, LockRel(id));
  RecordId src = rw->rec.src;
  RecordId dst = rw->rec.dst;
  POSEIDON_ASSIGN_OR_RETURN(NodeWrite * src_w, LockNode(src));
  POSEIDON_ASSIGN_OR_RETURN(NodeWrite * dst_w, LockNode(dst));

  // Unlink from src's outgoing list (lock-as-you-walk keeps every traversed
  // predecessor consistent under MVTO).
  if (src_w->rec.first_out == id) {
    src_w->rec.first_out = rw->rec.next_src;
  } else {
    RecordId cur = src_w->rec.first_out;
    bool unlinked = false;
    while (cur != kNullId) {
      POSEIDON_ASSIGN_OR_RETURN(RelWrite * pw, LockRel(cur));
      if (pw->rec.next_src == id) {
        pw->rec.next_src = rw->rec.next_src;
        unlinked = true;
        break;
      }
      cur = pw->rec.next_src;
    }
    if (!unlinked) {
      return Status::Corruption("relationship missing from src adjacency");
    }
  }

  // Unlink from dst's incoming list.
  if (dst_w->rec.first_in == id) {
    dst_w->rec.first_in = rw->rec.next_dst;
  } else {
    RecordId cur = dst_w->rec.first_in;
    bool unlinked = false;
    while (cur != kNullId) {
      POSEIDON_ASSIGN_OR_RETURN(RelWrite * pw, LockRel(cur));
      if (pw->rec.next_dst == id) {
        pw->rec.next_dst = rw->rec.next_dst;
        unlinked = true;
        break;
      }
      cur = pw->rec.next_dst;
    }
    if (!unlinked) {
      return Status::Corruption("relationship missing from dst adjacency");
    }
  }

  rw->deleted = true;
  return Status::Ok();
}

// --- Commit / abort -------------------------------------------------------------

Status Transaction::Commit() {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  if (read_only_) {
    // Nothing to persist (the write guards kept the write set empty): no
    // redo transaction, no timestamp high-water-mark bump. Snapshot
    // transactions in particular must not persist their shared (stale)
    // timestamp.
    finished_ = true;
    mgr_->Finish(this, /*committed=*/true);
    return Status::Ok();
  }
  Status s = CommitImpl();
  if (!s.ok()) {
    RecordAbortCause(s);
    Abort();
    return s;
  }
  finished_ = true;
  mgr_->Finish(this, /*committed=*/true);
  return Status::Ok();
}

Status Transaction::CommitImpl() {
  auto* pool = store_->pool();
  // Persist the timestamp high-water mark first so a recovered instance can
  // never hand out a timestamp <= any durable bts.
  store_->PersistTimestamp(id_ + 1);

  struct IndexUpsert {
    RecordId id;
    DictCode label;
    DictCode key;
    PVal old_value;
    PVal new_value;
  };
  std::vector<IndexUpsert> index_ops;
  std::vector<std::pair<RecordId, NodeWrite*>> node_deletes_for_index;
  std::vector<GcItem> gc_items;

  // Property chains created below become reachable only once the redo
  // transaction commits (each record image carrying the head is staged, not
  // applied). If staging fails partway — a later CreateChain hitting pool
  // exhaustion is the canonical case — the chains already built for earlier
  // records are unreachable and must go back to the free lists, or every
  // space-exhaustion abort leaks pool bytes.
  struct ChainUnwind {
    storage::GraphStore* store;
    std::vector<RecordId> heads;
    bool armed = true;
    ~ChainUnwind() {
      if (!armed) return;
      for (RecordId h : heads) (void)store->properties().FreeChain(h);
    }
  } chain_unwind{store_};

  // Announce ourselves to the group-commit leader election for the whole
  // durable section (staging + redo commit): a leader only waits for
  // committers that are actually headed for a drain point.
  TransactionManager::CommitSection in_flight(mgr_);
  pmem::RedoTx redo(pool->redo_log());
  static const Timestamp kZeroTs = kUnlocked;

  // --- Nodes --------------------------------------------------------------
  for (auto& [id, w] : node_writes_) {
    if (w.inserted && w.deleted) continue;  // net no-op; freed post-commit
    NodeRecord img = w.rec;
    char* home = reinterpret_cast<char*>(store_->nodes().AtForWrite(id));
    pmem::Offset off = pool->ToOffset(home);

    if (w.inserted) {
      img.tx.bts = id_;
      img.tx.ets = kInfinityTs;
      img.tx.rts = id_;
      if (!w.props.empty()) {
        POSEIDON_ASSIGN_OR_RETURN(img.props,
                                  store_->properties().CreateChain(id, w.props));
        chain_unwind.heads.push_back(img.props);
      }
      if (mgr_->indexes_ != nullptr) {
        for (const auto& p : w.props) {
          index_ops.push_back(
              IndexUpsert{id, img.label, p.key, PVal::Null(), p.value});
        }
      }
    } else if (w.deleted) {
      // Keep the old image; only the end timestamp changes.
      img = w.before;
      img.tx.ets = id_;
      // Older readers resolve the pre-delete version from the DRAM chain.
      NodeVersion old;
      old.rec = w.before;
      old.rec.tx.ets = id_;
      old.props = w.props_before;
      mgr_->node_versions_.Push(id, std::move(old));
      if (w.before.props != kNullId) {
        gc_items.push_back(GcItem{GcItem::Kind::kPropChain, id_, w.before.props});
      }
      gc_items.push_back(GcItem{GcItem::Kind::kNodeSlot, id_, id});
      node_deletes_for_index.emplace_back(id, &w);
    } else {
      img.tx.bts = id_;
      img.tx.ets = kInfinityTs;
      img.tx.rts = id_;
      if (w.props_changed) {
        POSEIDON_ASSIGN_OR_RETURN(img.props,
                                  store_->properties().CreateChain(id, w.props));
        chain_unwind.heads.push_back(img.props);
        if (w.before.props != kNullId) {
          gc_items.push_back(
              GcItem{GcItem::Kind::kPropChain, id_, w.before.props});
        }
      }
      NodeVersion old;
      old.rec = w.before;
      old.rec.tx.ets = id_;
      old.props = w.props_before;
      mgr_->node_versions_.Push(id, std::move(old));
      if (mgr_->indexes_ != nullptr && w.props_changed) {
        for (const auto& p : w.props) {
          PVal before = FindProp(w.props_before, p.key);
          if (!(before == p.value)) {
            index_ops.push_back(
                IndexUpsert{id, img.label, p.key, before, p.value});
          }
        }
        for (const auto& p : w.props_before) {
          if (FindProp(w.props, p.key).is_null() && !p.value.is_null()) {
            index_ops.push_back(
                IndexUpsert{id, img.label, p.key, p.value, PVal::Null()});
          }
        }
      }
    }
    // Stage everything after txn-id first, then the unlocking txn-id store,
    // so the record stays locked until its new image is fully applied.
    redo.Stage(off + sizeof(Timestamp),
               reinterpret_cast<const char*>(&img) + sizeof(Timestamp),
               sizeof(NodeRecord) - sizeof(Timestamp));
    redo.StageValue(off, kZeroTs);
  }

  // --- Relationships --------------------------------------------------------
  for (auto& [id, w] : rel_writes_) {
    if (w.inserted && w.deleted) continue;
    RelationshipRecord img = w.rec;
    char* home =
        reinterpret_cast<char*>(store_->relationships().AtForWrite(id));
    pmem::Offset off = pool->ToOffset(home);

    if (w.inserted) {
      img.tx.bts = id_;
      img.tx.ets = kInfinityTs;
      img.tx.rts = id_;
      if (!w.props.empty()) {
        POSEIDON_ASSIGN_OR_RETURN(img.props,
                                  store_->properties().CreateChain(id, w.props));
        chain_unwind.heads.push_back(img.props);
      }
    } else if (w.deleted) {
      img = w.before;
      img.tx.ets = id_;
      RelVersion old;
      old.rec = w.before;
      old.rec.tx.ets = id_;
      old.props = w.props_before;
      mgr_->rel_versions_.Push(id, std::move(old));
      if (w.before.props != kNullId) {
        gc_items.push_back(GcItem{GcItem::Kind::kPropChain, id_, w.before.props});
      }
      gc_items.push_back(GcItem{GcItem::Kind::kRelSlot, id_, id});
    } else {
      img.tx.bts = id_;
      img.tx.ets = kInfinityTs;
      img.tx.rts = id_;
      if (w.props_changed) {
        POSEIDON_ASSIGN_OR_RETURN(img.props,
                                  store_->properties().CreateChain(id, w.props));
        chain_unwind.heads.push_back(img.props);
        if (w.before.props != kNullId) {
          gc_items.push_back(
              GcItem{GcItem::Kind::kPropChain, id_, w.before.props});
        }
      }
      RelVersion old;
      old.rec = w.before;
      old.rec.tx.ets = id_;
      old.props = w.props_before;
      mgr_->rel_versions_.Push(id, std::move(old));
    }
    redo.Stage(off + sizeof(Timestamp),
               reinterpret_cast<const char*>(&img) + sizeof(Timestamp),
               sizeof(RelationshipRecord) - sizeof(Timestamp));
    redo.StageValue(off, kZeroTs);
  }

  // The failure-atomic point: either every staged image (and unlock) becomes
  // durable, or none does (paper: PMDK transaction at commit, DG4). The
  // commit timestamp orders crash replay across redo segments; with group
  // commit, every phase drain is batched across concurrent committers.
  pmem::RedoTx::DrainFn drain;
  if (mgr_->group_commit_enabled_) {
    drain = [this] { mgr_->GroupDrain(); };
  }
  POSEIDON_RETURN_IF_ERROR(redo.Commit(id_, drain));
  chain_unwind.armed = false;  // chains are now reachable from durable images

  // --- Post-commit bookkeeping (volatile / secondary) ----------------------
  for (auto& [id, w] : node_writes_) {
    if (w.inserted && w.deleted) (void)store_->nodes().Delete(id);
  }
  for (auto& [id, w] : rel_writes_) {
    if (w.inserted && w.deleted) (void)store_->relationships().Delete(id);
  }
  if (mgr_->indexes_ != nullptr) {
    for (const auto& op : index_ops) {
      mgr_->indexes_->OnNodeUpserted(op.id, op.label, op.key, op.old_value,
                                     op.new_value);
    }
    for (auto& [id, w] : node_deletes_for_index) {
      mgr_->indexes_->OnNodeDeleted(id, w->before.label, w->props_before);
    }
  }
  for (auto& item : gc_items) mgr_->Defer(item);

  // Adjacency-cache maintenance. Safe to run after durability: a stale entry
  // can never be served (its stamp no longer matches the node's bts), so this
  // is hygiene, not correctness. Topology commits invalidate every touched
  // node; pure property updates carry the entry forward by restamping it to
  // the new version timestamp (the arrays hold only immutable topology
  // fields: rel id, rel label, endpoint).
  AdjacencyCache& adj = mgr_->adj_cache_;
  if (adj.enabled() &&
      !(node_writes_.empty() && rel_writes_.empty())) {
    // Endpoints of inserted/deleted relationships: their adjacency changed
    // even when their own first_out/first_in head did not (mid-chain
    // unlinks rewrite a predecessor's next pointer only).
    std::set<RecordId> topo_nodes;
    for (auto& [id, w] : rel_writes_) {
      if (w.inserted == w.deleted) continue;  // updates & net no-ops
      topo_nodes.insert(w.rec.src);
      topo_nodes.insert(w.rec.dst);
    }
    for (auto& [id, w] : node_writes_) {
      if (w.inserted || w.deleted || topo_nodes.count(id) != 0 ||
          w.rec.first_out != w.before.first_out ||
          w.rec.first_in != w.before.first_in) {
        adj.Invalidate(id);
      } else {
        adj.Restamp(id, w.before.tx.bts, id_);
      }
      topo_nodes.erase(id);
    }
    // Endpoints of touched relationships are always write-locked (and thus
    // in node_writes_); invalidate any leftovers defensively.
    for (RecordId id : topo_nodes) adj.Invalidate(id);
  }
  return Status::Ok();
}

void Transaction::ReleaseLocks() {
  for (auto& [id, w] : node_writes_) {
    if (w.inserted) {
      (void)store_->nodes().Delete(id);
    } else {
      NodeRecord* rec = store_->nodes().AtForWrite(id);
      // psan: volatile lock word, never flushed by design
      AtomicTs(rec->tx.txn_id).store(kUnlocked, std::memory_order_release);
    }
  }
  for (auto& [id, w] : rel_writes_) {
    if (w.inserted) {
      (void)store_->relationships().Delete(id);
    } else {
      RelationshipRecord* rec = store_->relationships().AtForWrite(id);
      // psan: volatile lock word, never flushed by design
      AtomicTs(rec->tx.txn_id).store(kUnlocked, std::memory_order_release);
    }
  }
}

void Transaction::Abort() {
  if (finished_) return;
  ReleaseLocks();
  node_writes_.clear();
  rel_writes_.clear();
  finished_ = true;
  mgr_->Finish(this, /*committed=*/false);
}

// --- TransactionManager ---------------------------------------------------------

TransactionManager::TransactionManager(storage::GraphStore* store,
                                       index::IndexManager* indexes)
    : store_(store),
      indexes_(indexes),
      next_ts_(store->persisted_timestamp() + 1) {
  read_backoff_ =
      util::Backoff::FromEnv(EnvInt("POSEIDON_TX_RETRY_ATTEMPTS", 1024));
  visibility_backoff_ =
      util::Backoff::FromEnv(EnvInt("POSEIDON_TX_RETRY_ATTEMPTS", 64));
  // Read-path knobs (DESIGN.md "Read-path scalability"): epoch length of
  // the shared read-only snapshot (0 = fresh timestamp per read tx, the
  // seed protocol) and rts-bump coalescing (0 = eager CAS-max on every
  // visited record, the seed protocol).
  snapshot_epoch_us_.store(EnvInt("POSEIDON_SNAPSHOT_EPOCH_US", 100),
                           std::memory_order_relaxed);
  // Staleness bound: a snapshot more than this many drawn ids behind
  // next_ts_ (a stalled writer pinning the frontier) makes BeginReadOnly
  // degrade to the seed protocol for that transaction (0 = unbounded).
  snapshot_max_lag_.store(
      static_cast<uint64_t>(EnvInt("POSEIDON_SNAPSHOT_MAX_LAG", 64)),
      std::memory_order_relaxed);
  rts_coalesce_.store(EnvInt("POSEIDON_RTS_COALESCE", 1) != 0,
                      std::memory_order_relaxed);
  // Overload-governance knobs (DESIGN.md "Overload governance"): writer
  // admission cap (0 = unlimited, the seed behavior), its bounded gate wait,
  // and the default cooperative deadline armed on every transaction.
  max_writers_.store(EnvInt("POSEIDON_MAX_WRITERS", 0),
                     std::memory_order_relaxed);
  admission_backoff_ =
      util::Backoff::FromEnv(EnvInt("POSEIDON_ADMISSION_ATTEMPTS", 64));
  default_deadline_ms_.store(EnvInt("POSEIDON_QUERY_DEADLINE_MS", 0),
                             std::memory_order_relaxed);
  bool pipelined = store->pool()->pipelined();
  group_commit_enabled_ =
      pipelined && EnvInt("POSEIDON_GROUP_COMMIT", 1) != 0;
  // Default 0: opportunistic batching. The leader drains immediately for
  // the members that have already arrived; committers that show up during
  // the drain form the next batch. A positive window makes the leader sleep
  // for up to that long collecting the in-flight committers — only worth it
  // when the modeled drain cost exceeds the scheduling latency (e.g. a
  // latency override emulating remote PMem fsync-class drains).
  int window = EnvInt("POSEIDON_GROUP_COMMIT_WINDOW_US", 0);
  group_window_us_ = window > 0 ? static_cast<uint64_t>(window) : 0;
  bg_gc_ = pipelined && EnvInt("POSEIDON_BG_GC", 1) != 0;
  if (bg_gc_) {
    gc_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(gc_wake_mu_);
      while (!gc_stop_.load(std::memory_order_acquire)) {
        gc_wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
        if (gc_stop_.load(std::memory_order_acquire)) break;
        RunGc();
      }
    });
  }
}

TransactionManager::~TransactionManager() {
  if (gc_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(gc_wake_mu_);
      gc_stop_.store(true, std::memory_order_release);
    }
    gc_wake_cv_.notify_all();
    gc_thread_.join();
    // Drain what the epoch thread left behind so shutdown matches the
    // inline-GC baseline.
    RunGc();
  }
}

TransactionManager::CommitSection::CommitSection(TransactionManager* m)
    : mgr(m) {
  mgr->committers_in_flight_.fetch_add(1, std::memory_order_acq_rel);
}

TransactionManager::CommitSection::~CommitSection() {
  mgr->committers_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (mgr->group_commit_enabled_) {
    // A leader may be waiting for this committer to reach a drain point;
    // if we left the durable section instead (commit done or aborted),
    // re-evaluate its batch-complete predicate.
    std::lock_guard<std::mutex> lock(mgr->group_mu_);
    mgr->arrive_cv_.notify_all();
  }
}

void TransactionManager::GroupDrain() {
  auto* pool = store_->pool();
  std::unique_lock<std::mutex> lock(group_mu_);
  uint64_t my_batch = group_gen_;
  ++group_members_;
  arrive_cv_.notify_all();  // leader predicate may now hold
  for (;;) {
    if (group_done_gen_ >= my_batch) return;  // a leader drained for us
    if (!leader_active_) {
      leader_active_ = true;
      // Bounded wait (window > 0 only): collect the committers currently
      // inside their durable section. Single-threaded commits sail through
      // without sleeping (members == in-flight == 1); with the default
      // window of 0 the leader never sleeps and batches only the members
      // already queued behind it.
      if (group_window_us_ > 0) {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(group_window_us_);
        arrive_cv_.wait_until(lock, deadline, [&] {
          return group_members_ >=
                 committers_in_flight_.load(std::memory_order_acquire);
        });
      }
      uint64_t batch = group_gen_++;  // close the batch; next arrivals queue
      group_members_ = 0;
      lock.unlock();
      pool->Drain();  // one physical sfence for the whole batch
      group_drains_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      group_done_gen_ = batch;
      leader_active_ = false;
      done_cv_.notify_all();
      return;
    }
    done_cv_.wait(lock, [&] {
      return group_done_gen_ >= my_batch || !leader_active_;
    });
  }
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  // Registration protocol (all seq_cst): claim a slot holding a
  // conservative lower bound (next_ts_ BEFORE our fetch_add), draw the real
  // id, then overwrite the slot with it. A watermark scan that sees the
  // slot uses lb <= id (conservative); one that misses the claim ran its
  // next_ts_ load before our claim, hence before our fetch_add, so its
  // bound already covers our id (see TxSlots::Min).
  // Counted BEFORE the id draw: PublishStableIfQuiescent relies on "counter
  // observed 0 after a next_ts_ load => no live writer below that bound".
  active_writers_.fetch_add(1, std::memory_order_seq_cst);
  int slot = writer_slots_.Claim(next_ts_.load(std::memory_order_seq_cst));
  Timestamp ts;
  if (slot >= 0) {
    ts = next_ts_.fetch_add(1, std::memory_order_seq_cst);
    writer_slots_.Store(slot, ts);
  } else {
    // Slot array exhausted (> kTxSlots concurrent transactions): fall back
    // to the overflow multiset. Drawing the id under the mutex keeps the
    // watermark sound: a scanner either sees the entry (it locks after our
    // insert) or loaded its next_ts_ bound before our fetch_add.
    std::lock_guard<std::mutex> lock(writer_slots_.overflow_mu);
    ts = next_ts_.fetch_add(1, std::memory_order_seq_cst);
    writer_slots_.overflow.insert(ts);
  }
  auto tx = std::unique_ptr<Transaction>(new Transaction(this, ts));
  tx->slot_ = slot;
  return tx;
}

Result<std::unique_ptr<Transaction>> TransactionManager::BeginWrite() {
  int64_t max = max_writers_.load(std::memory_order_relaxed);
  if (max > 0 && active_writers_.load(std::memory_order_acquire) >= max) {
    // Bounded wait: a writer slot usually frees within microseconds; if the
    // backlog persists past the backoff budget, shed instead of queueing —
    // over capacity, every admitted writer only adds MVTO conflict aborts.
    util::Backoff backoff(admission_backoff_);
    while (active_writers_.load(std::memory_order_acquire) >= max) {
      if (!backoff.Next()) {
        writers_shed_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "admission gate: " + std::to_string(max) +
            " writers in flight (POSEIDON_MAX_WRITERS)");
      }
    }
  }
  auto* pool = store_->pool();
  if (pool->AboveSoftWatermark()) {
    // Emergency reclamation before denying: version-chain GC returns
    // deferred property chains and deleted slots to the free lists, and the
    // DRAM adjacency cache is dropped to relieve memory pressure overall.
    RunGc();
    adj_cache_.Clear();
    if (pool->AboveSoftWatermark()) {
      space_denied_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "pool above soft space watermark (" +
          std::to_string(pool->soft_watermark_pct()) + "%): " +
          std::to_string(pool->bytes_used()) + " of " +
          std::to_string(pool->capacity()) + " bytes used");
    }
  }
  return Begin();
}

std::unique_ptr<Transaction> TransactionManager::BeginReadOnly() {
  if (snapshot_epoch_us_.load(std::memory_order_relaxed) > 0) {
    // Refresh is commit-driven: every writer retirement republishes the
    // snapshot (Finish), and the frontier cannot advance between writer
    // retirements. Readers therefore probe only to activate the very first
    // snapshot — afterwards BeginReadOnly stays clock-free and mutex-free.
    if (snapshot_ts_.load(std::memory_order_acquire) == 0) {
      MaybeRefreshSnapshot(/*activate=*/true);
    }
    Timestamp snap = snapshot_ts_.load(std::memory_order_seq_cst);
    uint64_t max_lag = snapshot_max_lag_.load(std::memory_order_relaxed);
    if (snap != 0 && max_lag != 0 &&
        next_ts_.load(std::memory_order_relaxed) - 1 - snap > max_lag) {
      // The frontier is pinned far behind next_ts_ — usually a writer
      // stalled mid-transaction (descheduled, or blocked in a drain). A
      // snapshot that stale turns every read of a recently-updated record
      // into a version-chain walk. Every 32nd stale begin tries a scan
      // refresh (the stall may have cleared while overlapping transactions
      // kept active_writers_ nonzero and the O(1) publish from firing;
      // scanning on every begin would tax the whole degraded phase), then
      // the transaction degrades to the seed fresh-ts protocol if the lag
      // persists: both protocols are individually correct, so the choice
      // can be made per transaction.
      if (fallback_probe_gate_.fetch_add(1, std::memory_order_relaxed) % 32 ==
          0) {
        MaybeRefreshSnapshot(/*activate=*/false);
        snap = snapshot_ts_.load(std::memory_order_seq_cst);
      }
      if (next_ts_.load(std::memory_order_relaxed) - 1 - snap > max_lag) {
        snapshot_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        snap = 0;  // take the seed path below
      }
    }
    if (snap != 0) {
      // Pin the published snapshot in a reader slot. Between loading S and
      // storing it into the slot, GC is held at or below S because
      // snapshot_ts_ itself is part of the watermark; the re-check closes
      // the remaining race (a refresh advancing S after our load computed
      // its watermark without our pin). snapshot_ts_ is monotonic, so a
      // stable re-read means every prune during the window used a
      // watermark <= S.
      Timestamp s = snap;
      int slot = reader_slots_.Claim(s);
      if (slot >= 0) {
        for (;;) {
          reader_slots_.Store(slot, s);
          Timestamp again = snapshot_ts_.load(std::memory_order_seq_cst);
          if (again == s) break;
          s = again;
        }
      } else {
        std::lock_guard<std::mutex> lock(reader_slots_.overflow_mu);
        for (;;) {
          s = snapshot_ts_.load(std::memory_order_seq_cst);
          reader_slots_.overflow.insert(s);
          if (snapshot_ts_.load(std::memory_order_seq_cst) == s) break;
          reader_slots_.overflow.erase(reader_slots_.overflow.find(s));
        }
      }
      snapshot_reads_.fetch_add(1, std::memory_order_relaxed);
      auto tx = std::unique_ptr<Transaction>(new Transaction(this, s));
      tx->slot_ = slot;
      tx->read_only_ = true;
      tx->snapshot_ = true;
      return tx;
    }
    // Nothing committed yet (empty store): no publishable snapshot.
  }
  // Knob off, no snapshot yet, or lag-capped: the seed protocol — a fresh
  // timestamp, registered like any writer — plus the write guard.
  auto tx = Begin();
  tx->read_only_ = true;
  return tx;
}

void TransactionManager::MaybeRefreshSnapshot(bool activate) {
  if (!activate && snapshot_ts_.load(std::memory_order_acquire) == 0) {
    return;  // never activated; keep the seed GC timing untouched
  }
  if (snapshot_epoch_us_.load(std::memory_order_relaxed) <= 0) return;
  std::unique_lock<std::mutex> lock(snapshot_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another thread is refreshing
  // Stable timestamp: one below the smallest id any active or future
  // WRITER can carry (next_ts_ loaded before the slot scan, same argument
  // as MinActiveTs). Reader pins are deliberately excluded — a snapshot
  // that waited for its own consumers could never advance.
  Timestamp bound = next_ts_.load(std::memory_order_seq_cst);
  Timestamp stable = writer_slots_.Min(bound) - 1;
  Timestamp cur = snapshot_ts_.load(std::memory_order_relaxed);
  if (stable > cur) {
    snapshot_ts_.store(stable, std::memory_order_seq_cst);
    snapshot_refreshes_.fetch_add(1, std::memory_order_relaxed);
  }
}

Timestamp TransactionManager::MinActiveTs() const {
  // next_ts_ FIRST, then the slot scans (seq_cst): see TxSlots::Min.
  Timestamp min = next_ts_.load(std::memory_order_seq_cst);
  min = writer_slots_.Min(min);
  min = reader_slots_.Min(min);
  if (snapshot_epoch_us_.load(std::memory_order_relaxed) > 0) {
    // The published snapshot pins the watermark so a reader between
    // loading it and storing its slot pin cannot lose its versions.
    Timestamp snap = snapshot_ts_.load(std::memory_order_seq_cst);
    if (snap != 0 && snap < min) min = snap;
  }
  return min;
}

void TransactionManager::Finish(Transaction* t, bool committed) {
  (t->snapshot_ ? reader_slots_ : writer_slots_).Release(t->slot_, t->id_);
  if (uint64_t n = t->rts_skipped_.load(std::memory_order_relaxed)) {
    rts_skipped_.fetch_add(n, std::memory_order_relaxed);
  }
  if (uint64_t n = t->rts_deferred_.load(std::memory_order_relaxed)) {
    rts_deferred_.fetch_add(n, std::memory_order_relaxed);
  }
  if (committed) {
    commits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    aborts_.fetch_add(1, std::memory_order_relaxed);
    switch (t->abort_cause_) {
      case AbortCause::kDeadline:
        aborts_deadline_.fetch_add(1, std::memory_order_relaxed);
        break;
      case AbortCause::kCancelled:
        aborts_cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      case AbortCause::kSpace:
        aborts_space_.fetch_add(1, std::memory_order_relaxed);
        break;
      case AbortCause::kConflict:
        aborts_conflict_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  // Transaction-level GC (paper §5.3): reclaim at transaction granularity.
  // With the commit pipeline, reclamation runs on the background epoch
  // thread instead, so commit latency no longer pays version pruning.
  // Shared-snapshot readers are exempt from the inline pass: they create no
  // garbage, and the published snapshot — not their slot pin — is what
  // holds the watermark, so their release rarely unlocks reclamation. The
  // next writer Finish (or explicit/background RunGc) picks it up, bounding
  // the deferred backlog to roughly one snapshot epoch of versions.
  if (!t->snapshot_) {
    // Writer (or fresh-timestamp reader) retirement is exactly when the
    // stable frontier can advance: republish the snapshot now so its
    // staleness tracks the oldest in-flight writer (~µs) instead of a GC
    // period. Fresh snapshots keep snapshot reads on the latest committed
    // PMem version rather than falling back to DRAM version chains and
    // adjacency-cache misses. The O(1) quiescent publish covers the common
    // case; overlapping writers are picked up by the scan folded into
    // RunGc (inline here, or on the background GC thread).
    if (active_writers_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      PublishStableIfQuiescent();
    }
    if (!bg_gc_) RunGc();
  }
}

void TransactionManager::PublishStableIfQuiescent() {
  if (snapshot_ts_.load(std::memory_order_acquire) == 0 ||
      snapshot_epoch_us_.load(std::memory_order_relaxed) <= 0) {
    return;
  }
  Timestamp bound = next_ts_.load(std::memory_order_seq_cst);
  if (active_writers_.load(std::memory_order_seq_cst) != 0) {
    return;  // a writer below `bound` may still be live; RunGc will catch up
  }
  Timestamp stable = bound - 1;
  Timestamp cur = snapshot_ts_.load(std::memory_order_relaxed);
  while (stable > cur && !snapshot_ts_.compare_exchange_weak(
                             cur, stable, std::memory_order_seq_cst,
                             std::memory_order_relaxed)) {
  }
  if (stable > cur) {
    snapshot_refreshes_.fetch_add(1, std::memory_order_relaxed);
  }
}

TxStats TransactionManager::Stats() const {
  TxStats s;
  s.commits = commits_.load(std::memory_order_relaxed);
  s.aborts = aborts_.load(std::memory_order_relaxed);
  s.read_retries = read_retries_.load(std::memory_order_relaxed);
  s.retry_exhausted = retry_exhausted_.load(std::memory_order_relaxed);
  s.group_drains = group_drains_.load(std::memory_order_relaxed);
  s.rts_skipped = rts_skipped_.load(std::memory_order_relaxed);
  s.rts_deferred = rts_deferred_.load(std::memory_order_relaxed);
  s.snapshot_refreshes = snapshot_refreshes_.load(std::memory_order_relaxed);
  s.snapshot_reads = snapshot_reads_.load(std::memory_order_relaxed);
  s.snapshot_fallbacks = snapshot_fallbacks_.load(std::memory_order_relaxed);
  s.aborts_conflict = aborts_conflict_.load(std::memory_order_relaxed);
  s.aborts_deadline = aborts_deadline_.load(std::memory_order_relaxed);
  s.aborts_cancelled = aborts_cancelled_.load(std::memory_order_relaxed);
  s.aborts_space = aborts_space_.load(std::memory_order_relaxed);
  s.writers_shed = writers_shed_.load(std::memory_order_relaxed);
  s.space_denied = space_denied_.load(std::memory_order_relaxed);
  return s;
}

void TransactionManager::Defer(GcItem item) {
  std::lock_guard<std::mutex> lock(gc_mu_);
  gc_queue_.push_back(item);
}

void TransactionManager::RunGc() {
  // Serialize whole executions (not just the queue partition below): a
  // caller that raced a concurrent RunGc mid-free-loop would otherwise
  // return while items claimed under an older watermark are still being
  // freed, breaking the contract that RunGc() returning means everything
  // reclaimable at its watermark is gone (the GC tests rely on this, and
  // the destructor's final drain wants it too).
  std::lock_guard<std::mutex> run_lock(gc_run_mu_);
  // One writer-slot scan serves two jobs: republishing the snapshot
  // frontier (commit-driven refresh — Finish calls RunGc right after the
  // retiring writer released its slot, which is exactly when the frontier
  // can advance) and computing the GC watermark. A separate refresh pass
  // would re-walk the same 64 slot cache lines on every commit.
  // next_ts_ FIRST, then the slot scans (seq_cst): see TxSlots::Min.
  Timestamp bound = next_ts_.load(std::memory_order_seq_cst);
  Timestamp writer_min = writer_slots_.Min(bound);
  if (snapshot_ts_.load(std::memory_order_acquire) != 0 &&
      snapshot_epoch_us_.load(std::memory_order_relaxed) > 0) {
    // Lock-free CAS-max: the advance is monotonic, so racing publishers
    // need no mutex — the largest frontier wins and losers retry or bail.
    Timestamp stable = writer_min - 1;
    Timestamp cur = snapshot_ts_.load(std::memory_order_relaxed);
    while (stable > cur && !snapshot_ts_.compare_exchange_weak(
                               cur, stable, std::memory_order_seq_cst,
                               std::memory_order_relaxed)) {
    }
    if (stable > cur) {
      snapshot_refreshes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Timestamp min_active = std::min(writer_min, reader_slots_.Min(bound));
  if (snapshot_epoch_us_.load(std::memory_order_relaxed) > 0) {
    // A reader between loading S and storing its slot pin is covered
    // because snapshot_ts_ itself stays in the watermark (see MinActiveTs).
    Timestamp snap = snapshot_ts_.load(std::memory_order_seq_cst);
    if (snap != 0 && snap < min_active) min_active = snap;
  }
  node_versions_.Prune(min_active);
  rel_versions_.Prune(min_active);

  std::vector<GcItem> ready;
  {
    std::lock_guard<std::mutex> lock(gc_mu_);
    auto keep = std::partition(
        gc_queue_.begin(), gc_queue_.end(),
        [&](const GcItem& g) { return g.reclaim_after >= min_active; });
    ready.assign(keep, gc_queue_.end());
    gc_queue_.erase(keep, gc_queue_.end());
  }
  for (const GcItem& g : ready) {
    switch (g.kind) {
      case GcItem::Kind::kPropChain:
        (void)store_->properties().FreeChain(g.id);
        break;
      case GcItem::Kind::kNodeSlot:
        (void)store_->nodes().Delete(g.id);
        break;
      case GcItem::Kind::kRelSlot:
        (void)store_->relationships().Delete(g.id);
        break;
    }
  }
}

Status TransactionManager::RecoverInFlight() {
  // Uncommitted inserts (locked, bts == 0) vanish; locked committed records
  // are unlocked in place — their durable payload was never touched because
  // updates reach PMem only through the commit redo transaction.
  //
  // Durability note: BOTH branches must persist their cleared state before
  // recovery is declared done, and they must do so the same way. The unlock
  // branch used to Persist (flush + drain) every txn_id individually while
  // the drop branch relied on Delete's internal persist — a crash between
  // the two could resurrect a lock that recovery had already released. Now
  // every cleared field and occupancy bit is flushed as it is written and a
  // single drain at the end makes the whole sweep durable atomically-enough:
  // re-running recovery after a crash mid-sweep redoes the idempotent work.
  auto* pool = store_->pool();
  std::vector<RecordId> drop_nodes, drop_rels;
  store_->nodes().ForEach([&](RecordId id, storage::NodeRecord& rec) {
    if (rec.tx.txn_id == kUnlocked) return;
    if (rec.tx.bts == 0) {
      drop_nodes.push_back(id);
    } else {
      PsanStore(pool, &rec.tx.txn_id, kUnlocked);
      pool->Flush(&rec.tx.txn_id, sizeof(Timestamp));
    }
  });
  store_->relationships().ForEach(
      [&](RecordId id, storage::RelationshipRecord& rec) {
        if (rec.tx.txn_id == kUnlocked) return;
        if (rec.tx.bts == 0) {
          drop_rels.push_back(id);
        } else {
          PsanStore(pool, &rec.tx.txn_id, kUnlocked);
          pool->Flush(&rec.tx.txn_id, sizeof(Timestamp));
        }
      });
  for (RecordId id : drop_nodes) {
    POSEIDON_RETURN_IF_ERROR(store_->nodes().Delete(id));
  }
  for (RecordId id : drop_rels) {
    POSEIDON_RETURN_IF_ERROR(store_->relationships().Delete(id));
  }
  pool->Drain();
  return Status::Ok();
}

namespace {

template <typename R, typename Chains>
bool ResurrectFrom(const Chains& chains, storage::GraphStore* store,
                   RecordId id, R* out) {
  auto v = chains.Newest(id);
  if (!v.has_value()) return false;
  R rec = v->rec;
  // The retained version's PMem property chain may already be recycled by
  // GC: rewrite a fresh chain from the DRAM snapshot.
  auto head = store->properties().CreateChain(id, v->props);
  if (!head.ok()) return false;
  rec.props = *head;
  // Normalize to "latest committed, unlocked": the resurrected image takes
  // over as the record's only version.
  rec.tx.txn_id = kUnlocked;
  rec.tx.ets = kInfinityTs;
  rec.tx.rts = rec.tx.bts;
  *out = rec;
  return true;
}

}  // namespace

bool TransactionManager::ResurrectNode(RecordId id, storage::NodeRecord* out) {
  return ResurrectFrom(node_versions_, store_, id, out);
}

bool TransactionManager::ResurrectRel(RecordId id,
                                      storage::RelationshipRecord* out) {
  return ResurrectFrom(rel_versions_, store_, id, out);
}

}  // namespace poseidon::tx
