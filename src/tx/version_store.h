// DRAM sidecar holding MVTO version chains (paper §5.2 "Version Storage").
//
// The PMem record of an object is always its *latest committed* version.
// Older committed versions (needed by readers with smaller timestamps) and
// their property snapshots live in these volatile chains; they are pushed at
// commit time when a newer version replaces them, and pruned by
// transaction-level GC once no active transaction can see them (§5.3).
//
// The paper embeds a volatile chain pointer in each persistent record; we
// key chains by record id in a sharded hash map instead — behaviourally
// identical after restart (the pointer is garbage either way) and avoids
// writing DRAM addresses into PMem.

#ifndef POSEIDON_TX_VERSION_STORE_H_
#define POSEIDON_TX_VERSION_STORE_H_

#include <algorithm>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/property_store.h"
#include "storage/records.h"

namespace poseidon::tx {

/// A retained committed version: full record image (validity window in
/// rec.tx) plus a property snapshot.
template <typename R>
struct Version {
  R rec;
  std::vector<storage::Property> props;
};

using NodeVersion = Version<storage::NodeRecord>;
using RelVersion = Version<storage::RelationshipRecord>;

template <typename R>
class VersionChains {
 public:
  /// Appends `v` (the most recently superseded version) to `id`'s chain.
  /// Versions of one record are superseded in commit order, so chains stay
  /// sorted by bts ascending: append is O(1) (front-insertion would shift
  /// the whole chain) and FindVisible binary-searches. Both matter when a
  /// burst of updates to a hot record outruns GC and the chain gets long —
  /// shared-snapshot readers pinned behind an in-flight writer walk these
  /// chains on every read of that record.
  void Push(storage::RecordId id, Version<R> v) {
    Shard& s = ShardFor(id);
    std::lock_guard<std::mutex> lock(s.mu);
    s.map[id].push_back(std::move(v));
  }

  /// Returns the version visible at `ts` (bts <= ts < ets), if any.
  /// Validity windows of one record are disjoint, so the last version with
  /// bts <= ts is the only candidate — O(log chain) under the shard mutex.
  std::optional<Version<R>> FindVisible(storage::RecordId id,
                                        storage::Timestamp ts) const {
    const Shard& s = ShardFor(id);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(id);
    if (it == s.map.end()) return std::nullopt;
    const auto& chain = it->second;
    auto pos = std::upper_bound(chain.begin(), chain.end(), ts,
                                [](storage::Timestamp t, const Version<R>& v) {
                                  return t < v.rec.tx.bts;
                                });
    if (pos == chain.begin()) return std::nullopt;  // ts predates the chain
    --pos;
    if (ts < pos->rec.tx.ets) return *pos;
    return std::nullopt;
  }

  /// Returns the newest retained version of `id` (largest bts), if any.
  /// Used by media-fault repair to resurrect a corrupt PMem record from its
  /// most recent superseded image.
  std::optional<Version<R>> Newest(storage::RecordId id) const {
    const Shard& s = ShardFor(id);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(id);
    if (it == s.map.end() || it->second.empty()) return std::nullopt;
    return it->second.back();  // chains are sorted by bts ascending
  }

  /// Drops every version no active transaction can read (ets <= min_active)
  /// and erases emptied chains. Returns the number of versions reclaimed.
  uint64_t Prune(storage::Timestamp min_active) {
    uint64_t reclaimed = 0;
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (auto it = s.map.begin(); it != s.map.end();) {
        auto& chain = it->second;
        auto keep = std::remove_if(chain.begin(), chain.end(),
                                   [&](const Version<R>& v) {
                                     return v.rec.tx.ets <= min_active;
                                   });
        reclaimed += static_cast<uint64_t>(chain.end() - keep);
        chain.erase(keep, chain.end());
        it = chain.empty() ? s.map.erase(it) : std::next(it);
      }
    }
    return reclaimed;
  }

  uint64_t TotalVersions() const {
    uint64_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (const auto& [id, chain] : s.map) n += chain.size();
    }
    return n;
  }

 private:
  // 64 cache-line-padded shards: the sidecar is written on every update
  // commit (Push) and read by every version-chain lookup, so false sharing
  // between shard mutexes costs real read-path scalability.
  static constexpr size_t kShards = 64;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<storage::RecordId, std::vector<Version<R>>> map;
  };

  Shard& ShardFor(storage::RecordId id) { return shards_[id % kShards]; }
  const Shard& ShardFor(storage::RecordId id) const {
    return shards_[id % kShards];
  }

  Shard shards_[kShards];
};

}  // namespace poseidon::tx

#endif  // POSEIDON_TX_VERSION_STORE_H_
