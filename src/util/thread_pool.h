// Fixed-size worker pool used by the morsel-driven query scheduler (§6.1 of
// the paper) and by parallel benchmark drivers.

#ifndef POSEIDON_UTIL_THREAD_POOL_H_
#define POSEIDON_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace poseidon {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not block indefinitely on other tasks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Index of the calling pool worker in [0, num_threads()), or -1 when
  /// called from a non-pool thread. Stable for the pool's lifetime.
  static int current_worker_index();

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace poseidon

#endif  // POSEIDON_UTIL_THREAD_POOL_H_
