#include "util/thread_pool.h"

namespace poseidon {

namespace {
thread_local int t_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

int ThreadPool::current_worker_index() { return t_worker_index; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace poseidon
