// 64-bit hashing utilities used by the dictionary, persistent hash maps, and
// the JIT query-identifier computation.

#ifndef POSEIDON_UTIL_HASH_H_
#define POSEIDON_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace poseidon {

/// FNV-1a over an arbitrary byte range. Deterministic across runs and
/// platforms, which matters because hashes are persisted (dictionary buckets,
/// compiled-query cache keys).
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Finalizer-style integer mix (splitmix64); good avalanche for open
/// addressing over sequential keys.
inline uint64_t HashU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashU64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

}  // namespace poseidon

#endif  // POSEIDON_UTIL_HASH_H_
