// Shared environment-variable parsing. Every engine knob
// (POSEIDON_PMEM_*, POSEIDON_DISK_*, POSEIDON_REDO_SEGMENTS, the backoff
// and fault-injection knobs, ...) goes through these helpers so parsing
// behaviour is uniform: an unset, empty, or unparsable variable yields the
// fallback; values are read fresh on every call (tests mutate the
// environment between pool instances).

#ifndef POSEIDON_UTIL_ENV_H_
#define POSEIDON_UTIL_ENV_H_

#include <cstdint>
#include <cstdlib>

namespace poseidon::util {

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return end == v ? fallback : static_cast<int>(parsed);
}

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return end == v ? fallback : static_cast<uint64_t>(parsed);
}

/// True when the variable is set to a non-empty value.
inline bool EnvSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0';
}

}  // namespace poseidon::util

#endif  // POSEIDON_UTIL_ENV_H_
