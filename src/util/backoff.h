// Bounded exponential backoff shared by every retry loop in the engine:
// the MVTO seqlock read-stabilization loops (tx::Transaction), the
// diskgraph transient-I/O retries (fsync / page read), and any future
// retry-on-contention site. Replaces the ad-hoc fixed-iteration `for`
// spins that predated it.
//
// Semantics: construct, do the attempt, and call Next() after a failed
// attempt. Next() spins for the current delay (exponentially growing,
// capped, optionally jittered) and returns false once the attempt budget is
// exhausted — the caller then gives up with a Status instead of looping
// forever.
//
// Knobs (see EXPERIMENTS.md):
//   POSEIDON_BACKOFF_BASE_NS     first-retry spin (default 64 ns; 0 = no spin)
//   POSEIDON_BACKOFF_MAX_NS      per-retry spin cap (default 8192 ns)
//   POSEIDON_BACKOFF_JITTER_PCT  +/- randomization of each spin, in percent
//                                (default 0 = deterministic; max 100).
//                                De-synchronizes convoys of readers that all
//                                collided with the same commit and would
//                                otherwise retry in lockstep.

#ifndef POSEIDON_UTIL_BACKOFF_H_
#define POSEIDON_UTIL_BACKOFF_H_

#include <cstdint>

#include "util/env.h"
#include "util/spin_timer.h"

namespace poseidon::util {

class Backoff {
 public:
  struct Options {
    int max_attempts = 64;        ///< total attempts (incl. the first)
    uint64_t base_spin_ns = 64;   ///< spin before the first retry
    uint64_t max_spin_ns = 8192;  ///< spin cap (exponential growth stops)
    /// Jitter amplitude in percent of the current spin: each Next() spins
    /// a value uniform in [spin * (100-j)/100, spin * (100+j)/100], still
    /// clamped to max_spin_ns. 0 = exact exponential (seed behavior).
    uint32_t jitter_pct = 0;
    /// Seed for the per-instance deterministic jitter stream (xorshift64).
    /// 0 picks a fixed default; tests pass explicit seeds for reproducible
    /// bounds checks.
    uint64_t jitter_seed = 0;
  };

  /// Default spin parameters honour the POSEIDON_BACKOFF_* environment.
  static Options FromEnv(int max_attempts) {
    Options o;
    o.max_attempts = max_attempts;
    o.base_spin_ns = EnvU64("POSEIDON_BACKOFF_BASE_NS", o.base_spin_ns);
    o.max_spin_ns = EnvU64("POSEIDON_BACKOFF_MAX_NS", o.max_spin_ns);
    uint64_t j = EnvU64("POSEIDON_BACKOFF_JITTER_PCT", 0);
    o.jitter_pct = static_cast<uint32_t>(j > 100 ? 100 : j);
    return o;
  }

  explicit Backoff(const Options& options)
      : options_(options),
        spin_ns_(options.base_spin_ns),
        rng_(options.jitter_seed != 0 ? options.jitter_seed
                                      : 0x9e3779b97f4a7c15ull) {
    if (options_.jitter_pct > 100) options_.jitter_pct = 100;
  }
  explicit Backoff(int max_attempts) : Backoff(FromEnv(max_attempts)) {}

  /// Call after a failed attempt: spins (current delay, then doubles it up
  /// to the cap) and returns true if another attempt is allowed.
  bool Next() {
    ++attempt_;
    if (attempt_ >= options_.max_attempts) return false;
    uint64_t spin = spin_ns_;
    if (options_.jitter_pct != 0 && spin != 0) {
      // Deterministic xorshift64 stream: spin * (100 - j + r) / 100 with
      // r uniform in [0, 2j] — i.e. +/- jitter_pct percent.
      rng_ ^= rng_ << 13;
      rng_ ^= rng_ >> 7;
      rng_ ^= rng_ << 17;
      uint64_t r = rng_ % (2 * options_.jitter_pct + 1);
      spin = spin * (100 - options_.jitter_pct + r) / 100;
      if (spin > options_.max_spin_ns) spin = options_.max_spin_ns;
    }
    last_spin_ns_ = spin;
    SpinWaitNs(spin);
    spin_ns_ = spin_ns_ >= options_.max_spin_ns ? options_.max_spin_ns
                                                : spin_ns_ * 2;
    return true;
  }

  /// Failed attempts so far (== number of Next() calls).
  int attempts() const { return attempt_; }
  bool exhausted() const { return attempt_ >= options_.max_attempts; }
  uint64_t current_spin_ns() const { return spin_ns_; }
  /// The (jittered) spin duration the last Next() actually waited.
  uint64_t last_spin_ns() const { return last_spin_ns_; }

 private:
  Options options_;
  int attempt_ = 0;
  uint64_t spin_ns_;
  uint64_t last_spin_ns_ = 0;
  uint64_t rng_;
};

}  // namespace poseidon::util

#endif  // POSEIDON_UTIL_BACKOFF_H_
