// Calibrated busy-wait used by the PMem latency model and the disk-latency
// model. sleep()/nanosleep() cannot express the tens-of-nanoseconds delays
// that distinguish PMem from DRAM, so we spin on a calibrated TSC/steady
// clock instead.

#ifndef POSEIDON_UTIL_SPIN_TIMER_H_
#define POSEIDON_UTIL_SPIN_TIMER_H_

#include <chrono>
#include <cstdint>

namespace poseidon {

/// Busy-waits for approximately `ns` nanoseconds. Zero is a no-op.
inline void SpinWaitNs(uint64_t ns) {
  if (ns == 0) return;
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

/// Monotonic wall-clock helper for benchmark harnesses.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  double ElapsedUs() const { return static_cast<double>(ElapsedNs()) / 1e3; }
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace poseidon

#endif  // POSEIDON_UTIL_SPIN_TIMER_H_
