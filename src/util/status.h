// Status and Result<T>: exception-free error handling in the style of
// absl::Status / rocksdb::Status. All fallible public APIs in this project
// return Status or Result<T>.

#ifndef POSEIDON_UTIL_STATUS_H_
#define POSEIDON_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace poseidon {

/// Coarse error taxonomy; keep small and stable.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kAborted,        // transaction aborts (MVTO conflicts)
  kCorruption,     // persistent state failed validation
  kIoError,        // file / mmap / fsync failures
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,  // cooperative deadline expired (overload governance)
  kCancelled,         // explicitly cancelled via CancelToken / GraphDb::Cancel
};

/// Returns a stable human-readable name for `code` (e.g. "ABORTED").
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. OK carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a T or a non-OK Status (like absl::StatusOr).
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, so call sites read naturally:
  /// `return value;` / `return Status::NotFound(...)`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  /// Value access; must only be called when ok().
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace poseidon

/// Propagates a non-OK Status to the caller.
#define POSEIDON_RETURN_IF_ERROR(expr)        \
  do {                                        \
    ::poseidon::Status _st = (expr);          \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value or propagating the
/// error: POSEIDON_ASSIGN_OR_RETURN(auto x, Foo());
#define POSEIDON_ASSIGN_OR_RETURN(decl, expr)                       \
  POSEIDON_ASSIGN_OR_RETURN_IMPL(                                   \
      POSEIDON_STATUS_CONCAT(_result_, __LINE__), decl, expr)
#define POSEIDON_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  decl = std::move(tmp).value()
#define POSEIDON_STATUS_CONCAT(a, b) POSEIDON_STATUS_CONCAT_IMPL(a, b)
#define POSEIDON_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // POSEIDON_UTIL_STATUS_H_
