// Deterministic pseudo-random generator for data generation and tests.
// xoshiro256** — fast, seedable, stable across platforms (unlike
// std::mt19937 distributions, whose output is implementation-defined for
// some distribution types).

#ifndef POSEIDON_UTIL_RANDOM_H_
#define POSEIDON_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace poseidon {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // SplitMix64 seeding to fill the state from a single word.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Approximately Zipf-distributed rank in [0, n) with skew `s`; used for
  /// power-law degree distributions in the SNB-like generator.
  uint64_t Zipf(uint64_t n, double s = 1.2) {
    // Inverse-CDF approximation for the bounded Pareto distribution.
    double u = NextDouble();
    double x = std::pow(static_cast<double>(n), 1.0 - s);
    double v = std::pow(1.0 - u * (1.0 - x), 1.0 / (1.0 - s));
    auto r = static_cast<uint64_t>(v) - 1;
    return r >= n ? n - 1 : r;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace poseidon

#endif  // POSEIDON_UTIL_RANDOM_H_
