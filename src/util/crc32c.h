// Software CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
// Used to checksum the pool-header configuration and redo-log segments so
// recovery can tell a torn or bit-flipped segment from a valid one and
// discard exactly the damaged data instead of replaying garbage.
//
// Table-driven, one byte per step — recovery and commit checksums cover a
// few KiB at most, so throughput is irrelevant next to the emulated PMem
// flush latency on the same path.

#ifndef POSEIDON_UTIL_CRC32C_H_
#define POSEIDON_UTIL_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace poseidon::util {

namespace internal {
constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}
inline constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrc32cTable();
}  // namespace internal

/// CRC32C of [data, data+len). Chain multi-range checksums by passing the
/// previous result as `seed` (ranges are folded as if concatenated).
inline uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = internal::kCrc32cTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace poseidon::util

#endif  // POSEIDON_UTIL_CRC32C_H_
