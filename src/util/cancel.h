// Cooperative cancellation for long-running work (overload governance).
//
// A CancelToken carries two independent stop signals:
//   * an explicit cancel flag (GraphDb::Cancel(tx), tests, shutdown), and
//   * an optional absolute deadline (steady-clock ns), armed either from the
//     POSEIDON_QUERY_DEADLINE_MS environment knob or a per-query override.
//
// Workers never block on it — they *poll* Check() at batch granularity
// (occupancy word / morsel / index match / expand hop) and unwind with
// kCancelled / kDeadlineExceeded when it fires. The token is plain atomics so
// a poll on the fast path costs two relaxed loads; the clock is only read
// once a deadline is actually armed.
//
// Knobs (see EXPERIMENTS.md):
//   POSEIDON_QUERY_DEADLINE_MS  default per-query deadline (0 = none)

#ifndef POSEIDON_UTIL_CANCEL_H_
#define POSEIDON_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace poseidon::util {

class CancelToken {
 public:
  CancelToken() = default;

  // Tokens are pinned inside their owning Transaction; copying one would
  // silently fork the stop signal.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests explicit cancellation. Safe from any thread; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms (or re-arms) a deadline `ms` milliseconds from now. Values <= 0
  /// disarm the deadline.
  void SetDeadlineAfterMs(int64_t ms) {
    if (ms <= 0) {
      deadline_ns_.store(0, std::memory_order_release);
      return;
    }
    deadline_ns_.store(NowNs() + ms * 1000000ll, std::memory_order_release);
  }

  /// True once Cancel() was called (deadline expiry does not set this).
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// True when a deadline is armed (regardless of expiry).
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  /// The poll: OK while work may continue, kCancelled / kDeadlineExceeded
  /// once a signal fired. Explicit cancellation wins over deadline expiry.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    uint64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl != 0 && NowNs() >= dl) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::Ok();
  }

  /// Resets both signals (token reuse across transactions in one slot).
  void Reset() {
    cancelled_.store(false, std::memory_order_release);
    deadline_ns_.store(0, std::memory_order_release);
  }

 private:
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = disarmed
};

}  // namespace poseidon::util

#endif  // POSEIDON_UTIL_CANCEL_H_
