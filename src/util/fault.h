// Deterministic fault-injection registry (process-wide).
//
// A *fault site* is a named point in the code that can be made to fail on
// demand: `diskgraph.fsync`, `diskgraph.read`, `jit.compile`, ... Sites
// evaluate FaultRegistry::ShouldFail("name") on their failure-prone path;
// an unarmed site always answers false, so production behaviour is
// unchanged (one mutex-guarded map probe on paths that already pay I/O or
// compilation costs).
//
// Arming is deterministic and counted: Arm(site, after, times) makes the
// site fail on its `after`-th upcoming evaluation and keep failing for
// `times` evaluations, then recover. This lets tests script exact failure
// schedules ("the 3rd fsync fails once") and verify both retry recovery
// and graceful exhaustion.
//
// Environment arming (for driving whole binaries, e.g. benches):
//   POSEIDON_FAULT_<SITE>=<after>[:<times>]
// where <SITE> is the site name uppercased with '.' -> '_'
// (diskgraph.fsync -> POSEIDON_FAULT_DISKGRAPH_FSYNC). times defaults to 1;
// "always" arms after=1, times=unbounded. The variable is read the first
// time the site is evaluated.
//
// Crash-point exploration for the PMem pool lives in
// pmem/fault_injector.h; it shares this header's philosophy but hooks the
// pool's persistence primitives directly.

#ifndef POSEIDON_UTIL_FAULT_H_
#define POSEIDON_UTIL_FAULT_H_

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>

namespace poseidon::util {

class FaultRegistry {
 public:
  static FaultRegistry& Instance() {
    static FaultRegistry* registry = new FaultRegistry();
    return *registry;
  }

  /// Arms `site`: its `after`-th upcoming evaluation (1-based, counted from
  /// now) fails, and so do the following `times - 1`. Replaces any previous
  /// arming of the same site.
  void Arm(const std::string& site, uint64_t after = 1, uint64_t times = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& s = sites_[site];
    s.env_checked = true;  // explicit arming overrides the environment
    s.arm_base = s.hits;
    s.after = after;
    s.times = times;
  }

  void Disarm(const std::string& site) { Arm(site, 0, 0); }

  /// Disarms every site and forgets hit counts. Call between tests.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    sites_.clear();
  }

  /// Evaluated by the fault site itself: counts the hit and reports whether
  /// this evaluation must fail.
  bool ShouldFail(const std::string& site) {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& s = sites_[site];
    if (!s.env_checked) {
      s.env_checked = true;
      ArmFromEnv(site, &s);
    }
    uint64_t hit = ++s.hits - s.arm_base;  // 1-based since arming
    if (s.after == 0 || hit < s.after) return false;
    if (s.times != kUnbounded && hit >= s.after + s.times) return false;
    ++s.fired;
    return true;
  }

  /// Total evaluations of `site` so far.
  uint64_t hits(const std::string& site) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
  }

  /// Evaluations of `site` that were failed by injection.
  uint64_t fired(const std::string& site) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
  }

  static constexpr uint64_t kUnbounded = ~0ull;

 private:
  struct SiteState {
    uint64_t hits = 0;      // total evaluations
    uint64_t arm_base = 0;  // hits value when last armed
    uint64_t after = 0;     // 0 = disarmed
    uint64_t times = 0;
    uint64_t fired = 0;
    bool env_checked = false;
  };

  static void ArmFromEnv(const std::string& site, SiteState* s) {
    std::string var = "POSEIDON_FAULT_";
    for (char c : site) {
      var.push_back(c == '.' ? '_'
                             : static_cast<char>(
                                   std::toupper(static_cast<unsigned char>(c))));
    }
    const char* v = std::getenv(var.c_str());
    if (v == nullptr || *v == '\0') return;
    if (std::string(v) == "always") {
      s->after = 1;
      s->times = kUnbounded;
      return;
    }
    char* end = nullptr;
    unsigned long long after = std::strtoull(v, &end, 10);
    if (end == v || after == 0) return;
    s->after = after;
    s->times = 1;
    if (*end == ':') {
      unsigned long long times = std::strtoull(end + 1, &end, 10);
      if (times > 0) s->times = times;
    }
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
};

}  // namespace poseidon::util

#endif  // POSEIDON_UTIL_FAULT_H_
