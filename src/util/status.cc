#include "util/status.h"

namespace poseidon {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace poseidon
