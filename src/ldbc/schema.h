// LDBC Social Network Benchmark schema (paper §7.2): dictionary codes for
// every label, relationship type, and property key used by the synthetic
// generator and the Interactive Short Read / Update query sets.

#ifndef POSEIDON_LDBC_SCHEMA_H_
#define POSEIDON_LDBC_SCHEMA_H_

#include "storage/dictionary.h"
#include "storage/types.h"
#include "util/status.h"

namespace poseidon::ldbc {

struct SnbSchema {
  // Node labels.
  storage::DictCode person, forum, post, comment, tag, tag_class, city,
      country, continent, university, company;
  // Relationship types.
  storage::DictCode knows, has_creator, likes, has_tag, has_member,
      has_moderator, container_of, reply_of, is_located_in, is_part_of,
      study_at, work_at, has_interest, has_type;
  // Property keys.
  storage::DictCode id, creation_date, first_name, last_name, gender,
      birthday, browser_used, location_ip, content, image_file, length,
      language, name, title, class_year, work_from, join_date;

  /// Interns every schema string in `dict`.
  static Result<SnbSchema> Resolve(storage::Dictionary* dict);
};

}  // namespace poseidon::ldbc

#endif  // POSEIDON_LDBC_SCHEMA_H_
