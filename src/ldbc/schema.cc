#include "ldbc/schema.h"

namespace poseidon::ldbc {

Result<SnbSchema> SnbSchema::Resolve(storage::Dictionary* dict) {
  SnbSchema s;
  struct Entry {
    storage::DictCode* slot;
    const char* name;
  };
  const Entry entries[] = {
      {&s.person, "Person"},
      {&s.forum, "Forum"},
      {&s.post, "Post"},
      {&s.comment, "Comment"},
      {&s.tag, "Tag"},
      {&s.tag_class, "TagClass"},
      {&s.city, "City"},
      {&s.country, "Country"},
      {&s.continent, "Continent"},
      {&s.university, "University"},
      {&s.company, "Company"},
      {&s.knows, "knows"},
      {&s.has_creator, "hasCreator"},
      {&s.likes, "likes"},
      {&s.has_tag, "hasTag"},
      {&s.has_member, "hasMember"},
      {&s.has_moderator, "hasModerator"},
      {&s.container_of, "containerOf"},
      {&s.reply_of, "replyOf"},
      {&s.is_located_in, "isLocatedIn"},
      {&s.is_part_of, "isPartOf"},
      {&s.study_at, "studyAt"},
      {&s.work_at, "workAt"},
      {&s.has_interest, "hasInterest"},
      {&s.has_type, "hasType"},
      {&s.id, "id"},
      {&s.creation_date, "creationDate"},
      {&s.first_name, "firstName"},
      {&s.last_name, "lastName"},
      {&s.gender, "gender"},
      {&s.birthday, "birthday"},
      {&s.browser_used, "browserUsed"},
      {&s.location_ip, "locationIP"},
      {&s.content, "content"},
      {&s.image_file, "imageFile"},
      {&s.length, "length"},
      {&s.language, "language"},
      {&s.name, "name"},
      {&s.title, "title"},
      {&s.class_year, "classYear"},
      {&s.work_from, "workFrom"},
      {&s.join_date, "joinDate"},
  };
  for (const Entry& e : entries) {
    POSEIDON_ASSIGN_OR_RETURN(*e.slot, dict->Encode(e.name));
  }
  return s;
}

}  // namespace poseidon::ldbc
