#include "ldbc/queries.h"

namespace poseidon::ldbc {

using query::CmpOp;
using query::Direction;
using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::Value;
using storage::DictCode;

namespace {

/// Starts a pipeline that resolves one node of `label` by its logical id
/// (parameter 0): IndexScan when indexed, NodeScan + Filter otherwise.
void StartLookup(PlanBuilder& b, DictCode label, DictCode id_key,
                 bool use_index, int param = 0) {
  if (use_index) {
    std::move(b).IndexScan(label, id_key, Expr::Param(param));
  } else {
    std::move(b).NodeScan(label);
    std::move(b).FilterProperty(0, id_key, CmpOp::kEq, Expr::Param(param));
  }
}

/// Build side for IU joins: node of `label` with id == Param(param),
/// projected to [node, const 1] so the probe can join on the constant.
Plan LookupBuildSide(const SnbSchema& s, DictCode label, bool use_index,
                     int param) {
  PlanBuilder b;
  StartLookup(b, label, s.id, use_index, param);
  std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
  return std::move(b).Build();
}

}  // namespace

std::vector<NamedQuery> BuildShortReads(const SnbSchema& s, bool use_index) {
  std::vector<NamedQuery> out;

  // IS1: person profile + city.
  {
    PlanBuilder b;
    StartLookup(b, s.person, s.id, use_index);
    std::move(b).Expand(0, Direction::kOut, s.is_located_in);
    std::move(b).Project({Expr::Property(0, s.first_name),
                          Expr::Property(0, s.last_name),
                          Expr::Property(0, s.birthday),
                          Expr::Property(0, s.location_ip),
                          Expr::Property(0, s.browser_used),
                          Expr::Property(2, s.id),
                          Expr::Property(0, s.gender),
                          Expr::Property(0, s.creation_date)});
    out.push_back({"IS1", std::move(b).Build()});
  }

  // IS2: person's 10 most recent messages (variant by message subclass);
  // the cmt variant additionally resolves the root post and its author.
  {
    PlanBuilder b;
    StartLookup(b, s.person, s.id, use_index);
    std::move(b).Expand(0, Direction::kIn, s.has_creator, s.post);
    std::move(b).Project({Expr::Property(2, s.id),
                          Expr::Property(2, s.content),
                          Expr::Property(2, s.creation_date)});
    std::move(b).OrderBy(2, /*desc=*/true, /*limit=*/10);
    out.push_back({"IS2-post", std::move(b).Build()});
  }
  {
    PlanBuilder b;
    StartLookup(b, s.person, s.id, use_index);
    std::move(b).Expand(0, Direction::kIn, s.has_creator, s.comment);
    std::move(b).ExpandTransitive(2, Direction::kOut, s.reply_of, s.post);
    std::move(b).Expand(3, Direction::kOut, s.has_creator);
    std::move(b).Project({Expr::Property(2, s.id),
                          Expr::Property(2, s.content),
                          Expr::Property(2, s.creation_date),
                          Expr::Property(3, s.id),
                          Expr::Property(5, s.id),
                          Expr::Property(5, s.first_name),
                          Expr::Property(5, s.last_name)});
    std::move(b).OrderBy(2, /*desc=*/true, /*limit=*/10);
    out.push_back({"IS2-cmt", std::move(b).Build()});
  }

  // IS3: friends of a person with friendship dates, newest first.
  {
    PlanBuilder b;
    StartLookup(b, s.person, s.id, use_index);
    std::move(b).Expand(0, Direction::kOut, s.knows);
    std::move(b).Project({Expr::Property(2, s.id),
                          Expr::Property(2, s.first_name),
                          Expr::Property(2, s.last_name),
                          Expr::Property(1, s.creation_date)});
    std::move(b).OrderBy(3, /*desc=*/true);
    out.push_back({"IS3", std::move(b).Build()});
  }

  // IS4: message content + date.
  for (bool is_post : {true, false}) {
    PlanBuilder b;
    StartLookup(b, is_post ? s.post : s.comment, s.id, use_index);
    std::move(b).Project(
        {Expr::Property(0, s.creation_date), Expr::Property(0, s.content)});
    out.push_back({is_post ? "IS4-post" : "IS4-cmt", std::move(b).Build()});
  }

  // IS5: creator of a message.
  for (bool is_post : {true, false}) {
    PlanBuilder b;
    StartLookup(b, is_post ? s.post : s.comment, s.id, use_index);
    std::move(b).Expand(0, Direction::kOut, s.has_creator);
    std::move(b).Project({Expr::Property(2, s.id),
                          Expr::Property(2, s.first_name),
                          Expr::Property(2, s.last_name)});
    out.push_back({is_post ? "IS5-post" : "IS5-cmt", std::move(b).Build()});
  }

  // IS6: forum of a message (replyOf* to the root post, then its forum and
  // the forum's moderator).
  for (bool is_post : {true, false}) {
    PlanBuilder b;
    StartLookup(b, is_post ? s.post : s.comment, s.id, use_index);
    std::move(b).ExpandTransitive(0, Direction::kOut, s.reply_of, s.post);
    std::move(b).Expand(1, Direction::kIn, s.container_of, s.forum);
    std::move(b).Expand(3, Direction::kOut, s.has_moderator);
    std::move(b).Project({Expr::Property(3, s.id),
                          Expr::Property(3, s.title),
                          Expr::Property(5, s.id),
                          Expr::Property(5, s.first_name),
                          Expr::Property(5, s.last_name)});
    out.push_back({is_post ? "IS6-post" : "IS6-cmt", std::move(b).Build()});
  }

  // IS7: replies to a message with their authors, newest first.
  for (bool is_post : {true, false}) {
    PlanBuilder b;
    StartLookup(b, is_post ? s.post : s.comment, s.id, use_index);
    std::move(b).Expand(0, Direction::kIn, s.reply_of, s.comment);
    std::move(b).Expand(2, Direction::kOut, s.has_creator);
    std::move(b).Project({Expr::Property(2, s.id),
                          Expr::Property(2, s.content),
                          Expr::Property(2, s.creation_date),
                          Expr::Property(4, s.id),
                          Expr::Property(4, s.first_name),
                          Expr::Property(4, s.last_name)});
    std::move(b).OrderBy(2, /*desc=*/true);
    out.push_back({is_post ? "IS7-post" : "IS7-cmt", std::move(b).Build()});
  }

  return out;
}

Result<std::vector<NamedQuery>> BuildUpdates(const SnbSchema& s,
                                             storage::Dictionary* dict,
                                             bool use_index) {
  std::vector<NamedQuery> out;
  POSEIDON_ASSIGN_OR_RETURN(DictCode new_fn, dict->Encode("new_first_name"));
  POSEIDON_ASSIGN_OR_RETURN(DictCode new_ln, dict->Encode("new_last_name"));
  POSEIDON_ASSIGN_OR_RETURN(DictCode new_title, dict->Encode("new forum"));
  POSEIDON_ASSIGN_OR_RETURN(DictCode new_content,
                            dict->Encode("freshly inserted content"));
  POSEIDON_ASSIGN_OR_RETURN(DictCode browser, dict->Encode("Chrome"));

  // IU1: add person (params: new person id, city id, creation date).
  {
    PlanBuilder b;
    std::move(b).CreateNode(
        s.person, {s.id, s.first_name, s.last_name, s.browser_used,
                   s.creation_date},
        {Expr::Param(0), Expr::Literal(Value::String(new_fn)),
         Expr::Literal(Value::String(new_ln)),
         Expr::Literal(Value::String(browser)), Expr::Param(2)});
    std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
    std::move(b).HashJoin(LookupBuildSide(s, s.city, use_index, 1), 1, 1);
    std::move(b).CreateRel(0, 2, s.is_located_in, {}, {});
    out.push_back({"IU1", std::move(b).Build()});
  }

  // IU2: person likes a post (params: person id, post id, date).
  {
    PlanBuilder b;
    StartLookup(b, s.person, s.id, use_index, 0);
    std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
    std::move(b).HashJoin(LookupBuildSide(s, s.post, use_index, 1), 1, 1);
    std::move(b).CreateRel(0, 2, s.likes, {s.creation_date},
                           {Expr::Param(2)});
    out.push_back({"IU2", std::move(b).Build()});
  }

  // IU3: person likes a comment.
  {
    PlanBuilder b;
    StartLookup(b, s.person, s.id, use_index, 0);
    std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
    std::move(b).HashJoin(LookupBuildSide(s, s.comment, use_index, 1), 1, 1);
    std::move(b).CreateRel(0, 2, s.likes, {s.creation_date},
                           {Expr::Param(2)});
    out.push_back({"IU3", std::move(b).Build()});
  }

  // IU4: add forum with moderator (params: new forum id, moderator person
  // id, date).
  {
    PlanBuilder b;
    std::move(b).CreateNode(
        s.forum, {s.id, s.title, s.creation_date},
        {Expr::Param(0), Expr::Literal(Value::String(new_title)),
         Expr::Param(2)});
    std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
    std::move(b).HashJoin(LookupBuildSide(s, s.person, use_index, 1), 1, 1);
    std::move(b).CreateRel(0, 2, s.has_moderator, {}, {});
    out.push_back({"IU4", std::move(b).Build()});
  }

  // IU5: forum membership (params: forum id, person id, join date).
  {
    PlanBuilder b;
    StartLookup(b, s.forum, s.id, use_index, 0);
    std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
    std::move(b).HashJoin(LookupBuildSide(s, s.person, use_index, 1), 1, 1);
    std::move(b).CreateRel(0, 2, s.has_member, {s.join_date},
                           {Expr::Param(2)});
    out.push_back({"IU5", std::move(b).Build()});
  }

  // IU6: add post to a forum by an author (params: new post id, forum id,
  // author person id, date).
  {
    PlanBuilder b;
    std::move(b).CreateNode(
        s.post, {s.id, s.content, s.browser_used, s.creation_date},
        {Expr::Param(0), Expr::Literal(Value::String(new_content)),
         Expr::Literal(Value::String(browser)), Expr::Param(3)});
    std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
    std::move(b).HashJoin(LookupBuildSide(s, s.forum, use_index, 1), 1, 1);
    // containerOf points forum -> post.
    std::move(b).CreateRel(2, 0, s.container_of, {}, {});
    std::move(b).HashJoin(LookupBuildSide(s, s.person, use_index, 2), 1, 1);
    std::move(b).CreateRel(0, 5, s.has_creator, {}, {});
    out.push_back({"IU6", std::move(b).Build()});
  }

  // IU7: add comment replying to a post (params: new comment id, parent
  // post id, author person id, date).
  {
    PlanBuilder b;
    std::move(b).CreateNode(
        s.comment, {s.id, s.content, s.browser_used, s.creation_date},
        {Expr::Param(0), Expr::Literal(Value::String(new_content)),
         Expr::Literal(Value::String(browser)), Expr::Param(3)});
    std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
    std::move(b).HashJoin(LookupBuildSide(s, s.post, use_index, 1), 1, 1);
    std::move(b).CreateRel(0, 2, s.reply_of, {}, {});
    std::move(b).HashJoin(LookupBuildSide(s, s.person, use_index, 2), 1, 1);
    std::move(b).CreateRel(0, 5, s.has_creator, {}, {});
    out.push_back({"IU7", std::move(b).Build()});
  }

  // IU8: friendship, both directions (params: person1 id, person2 id,
  // date).
  {
    PlanBuilder b;
    StartLookup(b, s.person, s.id, use_index, 0);
    std::move(b).Project({Expr::Column(0), Expr::Literal(Value::Int(1))});
    std::move(b).HashJoin(LookupBuildSide(s, s.person, use_index, 1), 1, 1);
    std::move(b).CreateRel(0, 2, s.knows, {s.creation_date},
                           {Expr::Param(2)});
    std::move(b).CreateRel(2, 0, s.knows, {s.creation_date},
                           {Expr::Param(2)});
    out.push_back({"IU8", std::move(b).Build()});
  }

  return out;
}

std::vector<Value> DrawShortReadParams(const SnbDataset& ds,
                                       const std::string& name, Rng* rng) {
  bool is_post_variant = name.find("-post") != std::string::npos;
  bool is_person_query =
      name == "IS1" || name.rfind("IS2", 0) == 0 || name == "IS3";
  if (is_person_query) {
    return {Value::Int(
        1 + static_cast<int64_t>(rng->Uniform(
                static_cast<uint64_t>(ds.max_person_id))))};
  }
  const auto& ids = is_post_variant ? ds.post_ids : ds.comment_ids;
  return {Value::Int(ids[rng->Uniform(ids.size())])};
}

std::vector<Value> DrawUpdateParams(SnbDataset* ds, const std::string& name,
                                    Rng* rng) {
  auto person = [&] {
    return Value::Int(1 + static_cast<int64_t>(rng->Uniform(
                              static_cast<uint64_t>(ds->max_person_id))));
  };
  auto post = [&] {
    return Value::Int(ds->post_ids[rng->Uniform(ds->post_ids.size())]);
  };
  auto comment = [&] {
    return Value::Int(ds->comment_ids[rng->Uniform(ds->comment_ids.size())]);
  };
  auto forum = [&] {
    return Value::Int(SnbDataset::kForumIdBase +
                      static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(
                          ds->max_forum_id - SnbDataset::kForumIdBase + 1))));
  };
  Value date = Value::Int(2'000'000'000 + static_cast<int64_t>(
                                              rng->Uniform(1'000'000)));
  if (name == "IU1") return {Value::Int(++ds->max_person_id),
                             Value::Int(20'000'000), date};
  if (name == "IU2") return {person(), post(), date};
  if (name == "IU3") return {person(), comment(), date};
  if (name == "IU4") return {Value::Int(++ds->max_forum_id), person(), date};
  if (name == "IU5") return {forum(), person(), date};
  if (name == "IU6")
    return {Value::Int(++ds->max_message_id), forum(), person(), date};
  if (name == "IU7")
    return {Value::Int(++ds->max_message_id), post(), person(), date};
  if (name == "IU8") {
    Value p1 = person(), p2 = person();
    return {p1, p2, date};
  }
  return {};
}

Status CreateSnbIndexes(index::IndexManager* indexes, const SnbSchema& s,
                        index::Placement placement) {
  for (DictCode label : {s.person, s.post, s.comment, s.forum, s.city}) {
    auto r = indexes->CreateIndex(label, s.id, placement);
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return r.status();
    }
  }
  return Status::Ok();
}

}  // namespace poseidon::ldbc
