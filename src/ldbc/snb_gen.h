// Deterministic synthetic LDBC-SNB-like data generator (paper §7.2).
//
// The paper benchmarks against LDBC-SNB data at SF10. The official generator
// (Hadoop-based) is not available offline, so this module produces a graph
// with the same schema, the same entity/relationship mix, power-law `knows`
// degrees, and dictionary-encoded string properties. Scale is controlled by
// the person count; all other entity counts derive from LDBC-like ratios.

#ifndef POSEIDON_LDBC_SNB_GEN_H_
#define POSEIDON_LDBC_SNB_GEN_H_

#include <vector>

#include "ldbc/schema.h"
#include "tx/transaction.h"

namespace poseidon::ldbc {

struct SnbConfig {
  uint64_t persons = 1000;
  uint64_t seed = 42;
  double avg_friends = 10.0;        ///< mean knows-degree (zipf-skewed)
  uint64_t forums_per_person = 1;   ///< each person moderates one forum
  uint64_t posts_per_forum = 3;
  uint64_t comments_per_post = 2;
  uint64_t likes_per_person = 4;
  uint64_t members_per_forum = 6;
  uint64_t interests_per_person = 3;
  uint64_t tags = 100;
  uint64_t tag_classes = 10;
  uint64_t cities = 50;
  uint64_t countries = 20;
  uint64_t continents = 6;
  uint64_t universities = 30;
  uint64_t companies = 40;
  uint64_t ops_per_tx = 512;  ///< generation batch size
};

struct SnbDataset {
  SnbSchema schema;

  // Physical record ids by entity class (for direct access in tests).
  std::vector<storage::RecordId> persons;
  std::vector<storage::RecordId> forums;
  std::vector<storage::RecordId> posts;
  std::vector<storage::RecordId> comments;
  std::vector<storage::RecordId> tags;
  std::vector<storage::RecordId> cities;

  // Logical-id ranges for parameter generation. Persons get ids
  // [1, persons]; messages share one id space starting at kMessageIdBase.
  static constexpr int64_t kMessageIdBase = 1'000'000;
  static constexpr int64_t kForumIdBase = 10'000'000;
  int64_t max_person_id = 0;
  int64_t max_message_id = 0;  // absolute (>= kMessageIdBase)
  int64_t max_forum_id = 0;    // absolute (>= kForumIdBase)

  // Logical ids of posts / comments (for SR parameter draws).
  std::vector<int64_t> post_ids;
  std::vector<int64_t> comment_ids;

  uint64_t total_nodes = 0;
  uint64_t total_relationships = 0;
};

/// Generates the dataset in batched transactions through `mgr` (so commit
/// and index-maintenance paths are exercised exactly as production inserts).
Result<SnbDataset> GenerateSnb(tx::TransactionManager* mgr,
                               storage::GraphStore* store,
                               const SnbConfig& config);

}  // namespace poseidon::ldbc

#endif  // POSEIDON_LDBC_SNB_GEN_H_
