// LDBC-SNB Interactive Short Read (IS1–IS7) and Interactive Update
// (IU1–IU8) query plans (paper §7.2), expressed in the graph algebra of
// query/plan.h.
//
// Message-centric short reads come in `post`/`cmt` variants (the paper's
// "2-post", "7-cmt", ... series in Figs. 5, 7, 10). Each query exists in a
// non-indexed form (NodeScan + id filter — the configuration of the JIT
// experiments) and an indexed form (IndexScan on the id property — the
// "-i" configurations).

#ifndef POSEIDON_LDBC_QUERIES_H_
#define POSEIDON_LDBC_QUERIES_H_

#include <string>
#include <vector>

#include "index/index_manager.h"
#include "ldbc/snb_gen.h"
#include "query/plan.h"
#include "util/random.h"

namespace poseidon::ldbc {

struct NamedQuery {
  std::string name;  ///< e.g. "IS2-post"
  query::Plan plan;
};

/// The 12 short-read workload entries:
/// IS1, IS2-post, IS2-cmt, IS3, IS4-post, IS4-cmt, IS5-post, IS5-cmt,
/// IS6-post, IS6-cmt, IS7-post, IS7-cmt.
std::vector<NamedQuery> BuildShortReads(const SnbSchema& s, bool use_index);

/// The 8 update workload entries IU1..IU8. `dict` interns literal strings
/// used by the insert payloads.
Result<std::vector<NamedQuery>> BuildUpdates(const SnbSchema& s,
                                             storage::Dictionary* dict,
                                             bool use_index);

/// Draws the parameter vector for a short-read query (person id or message
/// id depending on the query).
std::vector<query::Value> DrawShortReadParams(const SnbDataset& ds,
                                              const std::string& name,
                                              Rng* rng);

/// Draws parameters for an update query. Allocates fresh logical ids by
/// advancing the dataset counters (hence mutable dataset).
std::vector<query::Value> DrawUpdateParams(SnbDataset* ds,
                                           const std::string& name, Rng* rng);

/// Creates the secondary indexes the indexed configurations rely on:
/// (Person|Post|Comment|Forum|City).id with the given placement.
Status CreateSnbIndexes(index::IndexManager* indexes, const SnbSchema& s,
                        index::Placement placement);

}  // namespace poseidon::ldbc

#endif  // POSEIDON_LDBC_QUERIES_H_
