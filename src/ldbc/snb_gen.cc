#include "ldbc/snb_gen.h"

#include <string>

#include "util/random.h"

namespace poseidon::ldbc {

using storage::DictCode;
using storage::Property;
using storage::PVal;
using storage::RecordId;

namespace {

/// Commits every `batch` operations so redo-log transactions stay bounded
/// and the generator exercises the real commit path many times.
class BatchedTx {
 public:
  BatchedTx(tx::TransactionManager* mgr, uint64_t batch)
      : mgr_(mgr), batch_(batch) {}

  tx::Transaction* get() {
    if (tx_ == nullptr) tx_ = mgr_->Begin();
    return tx_.get();
  }

  Status Tick() {
    if (++ops_ < batch_) return Status::Ok();
    return Flush();
  }

  Status Flush() {
    ops_ = 0;
    if (tx_ == nullptr) return Status::Ok();
    Status s = tx_->Commit();
    tx_.reset();
    return s;
  }

 private:
  tx::TransactionManager* mgr_;
  uint64_t batch_;
  uint64_t ops_ = 0;
  std::unique_ptr<tx::Transaction> tx_;
};

}  // namespace

Result<SnbDataset> GenerateSnb(tx::TransactionManager* mgr,
                               storage::GraphStore* store,
                               const SnbConfig& cfg) {
  SnbDataset ds;
  POSEIDON_ASSIGN_OR_RETURN(ds.schema, SnbSchema::Resolve(&store->dict()));
  const SnbSchema& S = ds.schema;
  Rng rng(cfg.seed);
  BatchedTx bt(mgr, cfg.ops_per_tx);

  auto str = [&](const std::string& s) -> Result<PVal> {
    POSEIDON_ASSIGN_OR_RETURN(DictCode c, store->dict().Encode(s));
    return PVal::String(c);
  };
  int64_t date_seq = 1'000'000'000;
  auto next_date = [&] { return PVal::Int(date_seq += 1 + (rng.Next() % 7)); };

  uint64_t rel_count = 0;
  auto rel = [&](RecordId src, RecordId dst, DictCode label,
                 std::vector<Property> props = {}) -> Status {
    POSEIDON_RETURN_IF_ERROR(
        bt.get()->CreateRelationship(src, dst, label, props).status());
    ++rel_count;
    return bt.Tick();
  };

  // --- Places ---------------------------------------------------------------
  std::vector<RecordId> continents, countries;
  for (uint64_t i = 0; i < cfg.continents; ++i) {
    POSEIDON_ASSIGN_OR_RETURN(PVal name, str("Continent_" + std::to_string(i)));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId id, bt.get()->CreateNode(S.continent, {{S.name, name}}));
    continents.push_back(id);
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
  }
  for (uint64_t i = 0; i < cfg.countries; ++i) {
    POSEIDON_ASSIGN_OR_RETURN(PVal name, str("Country_" + std::to_string(i)));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId id, bt.get()->CreateNode(S.country, {{S.name, name}}));
    countries.push_back(id);
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
    POSEIDON_RETURN_IF_ERROR(
        rel(id, continents[i % continents.size()], S.is_part_of));
  }
  for (uint64_t i = 0; i < cfg.cities; ++i) {
    POSEIDON_ASSIGN_OR_RETURN(PVal name, str("City_" + std::to_string(i)));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId id,
        bt.get()->CreateNode(
            S.city, {{S.name, name}, {S.id, PVal::Int(static_cast<int64_t>(
                                                20'000'000 + i))}}));
    ds.cities.push_back(id);
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
    POSEIDON_RETURN_IF_ERROR(
        rel(id, countries[i % countries.size()], S.is_part_of));
  }

  // --- Tags -----------------------------------------------------------------
  std::vector<RecordId> tag_classes;
  for (uint64_t i = 0; i < cfg.tag_classes; ++i) {
    POSEIDON_ASSIGN_OR_RETURN(PVal name, str("TagClass_" + std::to_string(i)));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId id, bt.get()->CreateNode(S.tag_class, {{S.name, name}}));
    tag_classes.push_back(id);
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
  }
  for (uint64_t i = 0; i < cfg.tags; ++i) {
    POSEIDON_ASSIGN_OR_RETURN(PVal name, str("Tag_" + std::to_string(i)));
    POSEIDON_ASSIGN_OR_RETURN(RecordId id,
                              bt.get()->CreateNode(S.tag, {{S.name, name}}));
    ds.tags.push_back(id);
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
    POSEIDON_RETURN_IF_ERROR(
        rel(id, tag_classes[i % tag_classes.size()], S.has_type));
  }

  // --- Organisations ----------------------------------------------------------
  std::vector<RecordId> universities, companies;
  for (uint64_t i = 0; i < cfg.universities; ++i) {
    POSEIDON_ASSIGN_OR_RETURN(PVal name, str("University_" + std::to_string(i)));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId id, bt.get()->CreateNode(S.university, {{S.name, name}}));
    universities.push_back(id);
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
    POSEIDON_RETURN_IF_ERROR(
        rel(id, ds.cities[i % ds.cities.size()], S.is_located_in));
  }
  for (uint64_t i = 0; i < cfg.companies; ++i) {
    POSEIDON_ASSIGN_OR_RETURN(PVal name, str("Company_" + std::to_string(i)));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId id, bt.get()->CreateNode(S.company, {{S.name, name}}));
    companies.push_back(id);
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
    POSEIDON_RETURN_IF_ERROR(
        rel(id, countries[i % countries.size()], S.is_located_in));
  }

  // --- Persons ---------------------------------------------------------------
  const char* genders[] = {"male", "female"};
  const char* browsers[] = {"Firefox", "Chrome", "Safari", "Opera"};
  for (uint64_t i = 0; i < cfg.persons; ++i) {
    int64_t pid = static_cast<int64_t>(i) + 1;
    POSEIDON_ASSIGN_OR_RETURN(
        PVal fn, str("fn_" + std::to_string(rng.Uniform(200))));
    POSEIDON_ASSIGN_OR_RETURN(
        PVal ln, str("ln_" + std::to_string(rng.Uniform(500))));
    POSEIDON_ASSIGN_OR_RETURN(PVal gender, str(genders[rng.Uniform(2)]));
    POSEIDON_ASSIGN_OR_RETURN(PVal browser, str(browsers[rng.Uniform(4)]));
    POSEIDON_ASSIGN_OR_RETURN(
        PVal ip, str("ip_" + std::to_string(rng.Uniform(1 << 20))));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId id,
        bt.get()->CreateNode(
            S.person,
            {{S.id, PVal::Int(pid)},
             {S.first_name, fn},
             {S.last_name, ln},
             {S.gender, gender},
             {S.birthday, PVal::Int(19600101 + static_cast<int64_t>(
                                                   rng.Uniform(40'0000)))},
             {S.browser_used, browser},
             {S.location_ip, ip},
             {S.creation_date, next_date()}}));
    ds.persons.push_back(id);
    ds.max_person_id = pid;
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
    POSEIDON_RETURN_IF_ERROR(
        rel(id, ds.cities[rng.Uniform(ds.cities.size())], S.is_located_in));
    POSEIDON_RETURN_IF_ERROR(
        rel(id, universities[rng.Uniform(universities.size())], S.study_at,
            {{S.class_year, PVal::Int(2000 + static_cast<int64_t>(
                                                 rng.Uniform(20)))}}));
    POSEIDON_RETURN_IF_ERROR(
        rel(id, companies[rng.Uniform(companies.size())], S.work_at,
            {{S.work_from, PVal::Int(2005 + static_cast<int64_t>(
                                                rng.Uniform(15)))}}));
    for (uint64_t k = 0; k < cfg.interests_per_person; ++k) {
      POSEIDON_RETURN_IF_ERROR(
          rel(id, ds.tags[rng.Zipf(ds.tags.size())], S.has_interest));
    }
  }

  // --- knows (power-law degree, both directions like LDBC's undirected) ----
  for (uint64_t i = 0; i < cfg.persons; ++i) {
    uint64_t degree = 1 + rng.Zipf(static_cast<uint64_t>(cfg.avg_friends * 2));
    for (uint64_t k = 0; k < degree; ++k) {
      uint64_t j = rng.Uniform(cfg.persons);
      if (j == i) continue;
      PVal d = next_date();
      POSEIDON_RETURN_IF_ERROR(rel(ds.persons[i], ds.persons[j], S.knows,
                                   {{S.creation_date, d}}));
      POSEIDON_RETURN_IF_ERROR(rel(ds.persons[j], ds.persons[i], S.knows,
                                   {{S.creation_date, d}}));
    }
  }

  // --- Forums -----------------------------------------------------------------
  int64_t forum_id = SnbDataset::kForumIdBase;
  for (uint64_t i = 0; i < cfg.persons * cfg.forums_per_person; ++i) {
    POSEIDON_ASSIGN_OR_RETURN(
        PVal title, str("Forum of person " + std::to_string(i)));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId id,
        bt.get()->CreateNode(S.forum, {{S.id, PVal::Int(forum_id)},
                                       {S.title, title},
                                       {S.creation_date, next_date()}}));
    ds.forums.push_back(id);
    ds.max_forum_id = forum_id++;
    POSEIDON_RETURN_IF_ERROR(bt.Tick());
    RecordId moderator = ds.persons[i % ds.persons.size()];
    POSEIDON_RETURN_IF_ERROR(rel(id, moderator, S.has_moderator));
    POSEIDON_RETURN_IF_ERROR(
        rel(id, ds.tags[rng.Zipf(ds.tags.size())], S.has_tag));
    for (uint64_t m = 0; m < cfg.members_per_forum; ++m) {
      POSEIDON_RETURN_IF_ERROR(
          rel(id, ds.persons[rng.Uniform(ds.persons.size())], S.has_member,
              {{S.join_date, next_date()}}));
    }
  }

  // --- Posts -------------------------------------------------------------------
  int64_t message_id = SnbDataset::kMessageIdBase;
  const char* languages[] = {"en", "de", "fr", "es"};
  for (size_t f = 0; f < ds.forums.size(); ++f) {
    for (uint64_t p = 0; p < cfg.posts_per_forum; ++p) {
      int64_t mid = message_id++;
      POSEIDON_ASSIGN_OR_RETURN(
          PVal content, str("post content " + std::to_string(mid)));
      POSEIDON_ASSIGN_OR_RETURN(PVal lang, str(languages[rng.Uniform(4)]));
      POSEIDON_ASSIGN_OR_RETURN(
          PVal browser, str(browsers[rng.Uniform(4)]));
      POSEIDON_ASSIGN_OR_RETURN(
          RecordId id,
          bt.get()->CreateNode(
              S.post, {{S.id, PVal::Int(mid)},
                       {S.content, content},
                       {S.length, PVal::Int(static_cast<int64_t>(
                                      20 + rng.Uniform(200)))},
                       {S.language, lang},
                       {S.browser_used, browser},
                       {S.creation_date, next_date()}}));
      ds.posts.push_back(id);
      ds.post_ids.push_back(mid);
      ds.max_message_id = mid;
      POSEIDON_RETURN_IF_ERROR(bt.Tick());
      RecordId creator = ds.persons[rng.Zipf(ds.persons.size())];
      POSEIDON_RETURN_IF_ERROR(rel(ds.forums[f], id, S.container_of));
      POSEIDON_RETURN_IF_ERROR(rel(id, creator, S.has_creator));
      POSEIDON_RETURN_IF_ERROR(
          rel(id, countries[rng.Uniform(countries.size())], S.is_located_in));
      POSEIDON_RETURN_IF_ERROR(
          rel(id, ds.tags[rng.Zipf(ds.tags.size())], S.has_tag));

      // --- Comments under this post (possibly nested) -----------------
      RecordId reply_target = id;
      for (uint64_t c = 0; c < cfg.comments_per_post; ++c) {
        int64_t cid = message_id++;
        POSEIDON_ASSIGN_OR_RETURN(
            PVal ccontent, str("comment content " + std::to_string(cid)));
        POSEIDON_ASSIGN_OR_RETURN(
            PVal cbrowser, str(browsers[rng.Uniform(4)]));
        POSEIDON_ASSIGN_OR_RETURN(
            RecordId com,
            bt.get()->CreateNode(
                S.comment, {{S.id, PVal::Int(cid)},
                            {S.content, ccontent},
                            {S.length, PVal::Int(static_cast<int64_t>(
                                           5 + rng.Uniform(100)))},
                            {S.browser_used, cbrowser},
                            {S.creation_date, next_date()}}));
        ds.comments.push_back(com);
        ds.comment_ids.push_back(cid);
        ds.max_message_id = cid;
        POSEIDON_RETURN_IF_ERROR(bt.Tick());
        POSEIDON_RETURN_IF_ERROR(rel(com, reply_target, S.reply_of));
        POSEIDON_RETURN_IF_ERROR(
            rel(com, ds.persons[rng.Zipf(ds.persons.size())], S.has_creator));
        POSEIDON_RETURN_IF_ERROR(rel(
            com, countries[rng.Uniform(countries.size())], S.is_located_in));
        // Alternate between replying to the post and nesting one deeper.
        if (rng.Uniform(2) == 0) reply_target = com;
      }
    }
  }

  // --- Likes -------------------------------------------------------------------
  for (uint64_t i = 0; i < cfg.persons; ++i) {
    for (uint64_t k = 0; k < cfg.likes_per_person; ++k) {
      bool like_post = rng.Uniform(2) == 0 || ds.comments.empty();
      RecordId msg = like_post
                         ? ds.posts[rng.Zipf(ds.posts.size())]
                         : ds.comments[rng.Zipf(ds.comments.size())];
      POSEIDON_RETURN_IF_ERROR(rel(ds.persons[i], msg, S.likes,
                                   {{S.creation_date, next_date()}}));
    }
  }

  POSEIDON_RETURN_IF_ERROR(bt.Flush());
  ds.total_nodes = store->nodes().size();
  ds.total_relationships = store->relationships().size();
  return ds;
}

}  // namespace poseidon::ldbc
