// DISK baseline graph store (paper §7.3): a native disk-resident property
// graph with paged record files, an LRU buffer pool, write-ahead logging
// with fsync on commit, and a DRAM id-index — the architecture class the
// paper compares its PMem engine against ("disk" / "DISK-i" series).
//
// Records deliberately mirror the PMem engine's layout minus the MVTO
// fields (the baseline is single-writer with WAL durability, like classic
// disk graph stores). Strings are dictionary-encoded in DRAM with an
// append-only persistence log.

#ifndef POSEIDON_DISKGRAPH_DISK_GRAPH_H_
#define POSEIDON_DISKGRAPH_DISK_GRAPH_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "diskgraph/page_store.h"
#include "storage/property_store.h"

namespace poseidon::diskgraph {

using storage::DictCode;
using storage::Property;
using storage::PVal;
using storage::RecordId;

/// 32-byte disk node record (no MVCC fields).
struct DiskNode {
  DictCode label = storage::kInvalidCode;
  uint32_t in_use = 0;
  RecordId first_in = storage::kNullId;
  RecordId first_out = storage::kNullId;
  RecordId props = storage::kNullId;
};
static_assert(sizeof(DiskNode) == 32);

/// 48-byte disk relationship record.
struct DiskRel {
  DictCode label = storage::kInvalidCode;
  uint32_t in_use = 0;
  RecordId src = storage::kNullId;
  RecordId dst = storage::kNullId;
  RecordId next_src = storage::kNullId;
  RecordId next_dst = storage::kNullId;
  RecordId props = storage::kNullId;
};
static_assert(sizeof(DiskRel) == 48);

/// 64-byte chained property record (same shape as the PMem engine's).
struct DiskProp {
  RecordId owner = storage::kNullId;
  RecordId next = storage::kNullId;
  storage::PropertyEntry entries[3];
};
static_assert(sizeof(DiskProp) == 64);

struct DiskGraphOptions {
  std::string dir;            ///< directory for the data/WAL files
  size_t buffer_pages = 4096;  ///< pool capacity per file
};

class DiskGraph {
 public:
  /// Opens (or creates) the store in `options.dir`. An existing directory is
  /// recovered: complete WAL batches are replayed into the page files (a
  /// torn tail is discarded), the dictionary log is reloaded, and the record
  /// counts are rebuilt by scanning occupancy — so a crash after Commit()
  /// loses nothing and a crash mid-commit loses only the in-flight batch.
  static Result<std::unique_ptr<DiskGraph>> Create(
      const DiskGraphOptions& options);

  DiskGraph(const DiskGraph&) = delete;
  DiskGraph& operator=(const DiskGraph&) = delete;
  ~DiskGraph();

  // --- Writes (buffered; durable at Commit) -------------------------------

  Result<RecordId> CreateNode(DictCode label,
                              const std::vector<Property>& props);
  Result<RecordId> CreateRelationship(RecordId src, RecordId dst,
                                      DictCode label,
                                      const std::vector<Property>& props);
  Status SetNodeProperty(RecordId id, DictCode key, PVal value);

  /// WAL-append every dirty page and fsync (the disk commit cost the paper
  /// measures in Fig. 6). A POSEIDON_DISK_FSYNC_US floor (default 500 µs,
  /// one SSD fsync) is enforced because the bench filesystem may be tmpfs.
  Status Commit();

  /// Empties every buffer pool so the next accesses run "cold".
  Status DropCaches();

  // --- Reads ------------------------------------------------------------

  Result<DiskNode> GetNode(RecordId id);
  Result<DiskRel> GetRelationship(RecordId id);
  Result<PVal> GetNodeProperty(RecordId id, DictCode key);
  Result<PVal> GetRelationshipProperty(RecordId id, DictCode key);
  Status ForEachOutgoing(
      RecordId node, const std::function<bool(RecordId, const DiskRel&)>& fn);
  Status ForEachIncoming(
      RecordId node, const std::function<bool(RecordId, const DiskRel&)>& fn);

  /// Full node-table scan (non-indexed lookups).
  Status ForEachNode(const std::function<bool(RecordId, const DiskNode&)>& fn);

  // --- Dictionary (DRAM maps + append-only persistence) -----------------

  Result<DictCode> Code(const std::string& s);

  // --- DRAM index on (label, id-property) — the paper's "additional DRAM
  // index" for the disk baseline ------------------------------------------

  void IndexPut(DictCode label, int64_t key, RecordId id);
  Result<RecordId> IndexLookup(DictCode label, int64_t key) const;

  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_relationships() const { return num_rels_; }
  uint64_t buffer_misses() const;
  /// Complete WAL batches applied by recovery at Create().
  uint64_t wal_batches_replayed() const { return wal_batches_replayed_; }
  /// Commit fsyncs that failed transiently and were retried with backoff.
  uint64_t fsync_retries() const { return fsync_retries_; }
  /// Transient page-read retries across the three buffer pools.
  uint64_t read_retries() const;

 private:
  DiskGraph() = default;

  static constexpr uint64_t kNodesPerPage = kPageSize / sizeof(DiskNode);
  static constexpr uint64_t kRelsPerPage = kPageSize / sizeof(DiskRel);
  static constexpr uint64_t kPropsPerPage = kPageSize / sizeof(DiskProp);

  Result<DiskNode*> NodeAt(RecordId id, bool for_write);
  Result<DiskRel*> RelAt(RecordId id, bool for_write);
  Result<DiskProp*> PropAt(RecordId id, bool for_write);
  Result<RecordId> WritePropChain(RecordId owner,
                                  const std::vector<Property>& props);
  Result<PVal> ChainGet(RecordId head, DictCode key);
  Status WalAppend();
  Status SyncWal();

  /// Crash recovery at Create(): applies every marker-terminated WAL batch
  /// directly to the page files, fsyncs them, and truncates the WAL.
  Status ReplayWal(const std::string& wal_path);
  /// Reloads dict.log (truncating a torn tail) and rebuilds the DRAM maps.
  Status RecoverDictionary(const std::string& dict_path);
  /// Rebuilds num_nodes_/num_rels_/num_props_ from the recovered files.
  Status RecoverCounts();

  std::unique_ptr<PageFile> node_file_, rel_file_, prop_file_;
  std::unique_ptr<BufferPool> node_pool_, rel_pool_, prop_pool_;
  int wal_fd_ = -1;

  uint64_t num_nodes_ = 0;
  uint64_t num_rels_ = 0;
  uint64_t num_props_ = 0;
  uint64_t wal_batches_replayed_ = 0;
  uint64_t fsync_retries_ = 0;

  // Dirty page tracking per table for the WAL (page numbers).
  std::vector<std::pair<int, uint64_t>> dirty_pages_;

  std::unordered_map<std::string, DictCode> dict_;
  std::vector<std::string> dict_reverse_;
  int dict_fd_ = -1;

  std::unordered_map<uint64_t, RecordId> index_;  // (label<<40) ^ key
};

}  // namespace poseidon::diskgraph

#endif  // POSEIDON_DISKGRAPH_DISK_GRAPH_H_
