#include "diskgraph/snb_disk.h"

#include <algorithm>

namespace poseidon::diskgraph {

using storage::kNullId;

namespace {

/// Re-encodes a property list from the PMem dictionary into the disk one.
Result<std::vector<Property>> ReencodeProps(
    const std::vector<Property>& props, const storage::Dictionary& src_dict,
    DiskGraph* g) {
  std::vector<Property> out;
  out.reserve(props.size());
  for (const Property& p : props) {
    POSEIDON_ASSIGN_OR_RETURN(std::string_view key_str, src_dict.Decode(p.key));
    POSEIDON_ASSIGN_OR_RETURN(DictCode key, g->Code(std::string(key_str)));
    PVal v = p.value;
    if (v.type == storage::PType::kString) {
      POSEIDON_ASSIGN_OR_RETURN(std::string_view s,
                                src_dict.Decode(v.AsString()));
      POSEIDON_ASSIGN_OR_RETURN(DictCode code, g->Code(std::string(s)));
      v = PVal::String(code);
    }
    out.push_back(Property{key, v});
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<DiskSnb>> LoadDiskSnbFromStore(
    storage::GraphStore* store, tx::TransactionManager* mgr,
    const ldbc::SnbDataset& ds, const DiskGraphOptions& options) {
  auto snb = std::make_unique<DiskSnb>();
  POSEIDON_ASSIGN_OR_RETURN(snb->graph, DiskGraph::Create(options));
  DiskGraph* g = snb->graph.get();
  const auto& src_dict = store->dict();

  // Resolve the schema in the disk dictionary.
  struct NameSlot {
    DictCode* slot;
    DictCode src;
  };
  ldbc::SnbSchema& s = snb->schema;
  const ldbc::SnbSchema& ss = ds.schema;
  const NameSlot slots[] = {
      {&s.person, ss.person},         {&s.forum, ss.forum},
      {&s.post, ss.post},             {&s.comment, ss.comment},
      {&s.tag, ss.tag},               {&s.tag_class, ss.tag_class},
      {&s.city, ss.city},             {&s.country, ss.country},
      {&s.continent, ss.continent},   {&s.university, ss.university},
      {&s.company, ss.company},       {&s.knows, ss.knows},
      {&s.has_creator, ss.has_creator}, {&s.likes, ss.likes},
      {&s.has_tag, ss.has_tag},       {&s.has_member, ss.has_member},
      {&s.has_moderator, ss.has_moderator},
      {&s.container_of, ss.container_of},
      {&s.reply_of, ss.reply_of},     {&s.is_located_in, ss.is_located_in},
      {&s.is_part_of, ss.is_part_of}, {&s.study_at, ss.study_at},
      {&s.work_at, ss.work_at},       {&s.has_interest, ss.has_interest},
      {&s.has_type, ss.has_type},     {&s.id, ss.id},
      {&s.creation_date, ss.creation_date},
      {&s.first_name, ss.first_name}, {&s.last_name, ss.last_name},
      {&s.gender, ss.gender},         {&s.birthday, ss.birthday},
      {&s.browser_used, ss.browser_used},
      {&s.location_ip, ss.location_ip},
      {&s.content, ss.content},       {&s.image_file, ss.image_file},
      {&s.length, ss.length},         {&s.language, ss.language},
      {&s.name, ss.name},             {&s.title, ss.title},
      {&s.class_year, ss.class_year}, {&s.work_from, ss.work_from},
      {&s.join_date, ss.join_date},
  };
  for (const NameSlot& n : slots) {
    POSEIDON_ASSIGN_OR_RETURN(std::string_view str, src_dict.Decode(n.src));
    POSEIDON_ASSIGN_OR_RETURN(*n.slot, g->Code(std::string(str)));
  }

  // Copy nodes (committed snapshot), then relationships.
  auto tx = mgr->Begin();
  std::unordered_map<RecordId, RecordId> node_map;
  Status status = Status::Ok();
  store->nodes().ForEach([&](RecordId id, storage::NodeRecord&) {
    if (!status.ok()) return;
    auto n = tx->GetNode(id);
    if (!n.ok()) return;  // invisible (in-flight)
    auto props = tx->GetNodeProperties(id);
    if (!props.ok()) {
      status = props.status();
      return;
    }
    auto reenc = ReencodeProps(*props, src_dict, g);
    if (!reenc.ok()) {
      status = reenc.status();
      return;
    }
    std::string_view label_str = *src_dict.Decode(n->rec.label);
    auto label = g->Code(std::string(label_str));
    if (!label.ok()) {
      status = label.status();
      return;
    }
    auto new_id = g->CreateNode(*label, *reenc);
    if (!new_id.ok()) {
      status = new_id.status();
      return;
    }
    node_map[id] = *new_id;
    // DRAM index on the id property for the entity classes the queries use.
    for (const Property& p : *reenc) {
      if (p.key == s.id && p.value.type == storage::PType::kInt) {
        g->IndexPut(*label, p.value.AsInt(), *new_id);
      }
    }
  });
  POSEIDON_RETURN_IF_ERROR(status);

  store->relationships().ForEach(
      [&](RecordId id, storage::RelationshipRecord&) {
        if (!status.ok()) return;
        auto r = tx->GetRelationship(id);
        if (!r.ok()) return;
        auto props = tx->GetRelationshipProperties(id);
        if (!props.ok()) {
          status = props.status();
          return;
        }
        auto reenc = ReencodeProps(*props, src_dict, g);
        if (!reenc.ok()) {
          status = reenc.status();
          return;
        }
        std::string_view label_str = *src_dict.Decode(r->rec.label);
        auto label = g->Code(std::string(label_str));
        if (!label.ok()) {
          status = label.status();
          return;
        }
        auto created = g->CreateRelationship(node_map[r->rec.src],
                                             node_map[r->rec.dst], *label,
                                             *reenc);
        if (!created.ok()) status = created.status();
      });
  POSEIDON_RETURN_IF_ERROR(status);
  POSEIDON_RETURN_IF_ERROR(tx->Commit());
  POSEIDON_RETURN_IF_ERROR(g->Commit());

  snb->next_person_id = ds.max_person_id + 1'000'000;
  snb->next_message_id = ds.max_message_id + 1'000'000;
  snb->next_forum_id = ds.max_forum_id + 1'000'000;
  return snb;
}

namespace {

/// Follows replyOf edges until a Post node; returns kNullId on dead ends.
Result<RecordId> RootPost(DiskSnb* snb, RecordId msg) {
  DiskGraph* g = snb->graph.get();
  RecordId cur = msg;
  for (int hop = 0; hop < 4096; ++hop) {
    POSEIDON_ASSIGN_OR_RETURN(DiskNode n, g->GetNode(cur));
    if (n.label == snb->schema.post) return cur;
    RecordId next = kNullId;
    POSEIDON_RETURN_IF_ERROR(g->ForEachOutgoing(
        cur, [&](RecordId, const DiskRel& rel) {
          if (rel.label != snb->schema.reply_of) return true;
          next = rel.dst;
          return false;
        }));
    if (next == kNullId) return kNullId;
    cur = next;
  }
  return Status::Internal("replyOf chain exceeded hop limit");
}

}  // namespace

Result<uint64_t> RunDiskShortRead(DiskSnb* snb, const std::string& name,
                                  int64_t param) {
  DiskGraph* g = snb->graph.get();
  const ldbc::SnbSchema& s = snb->schema;
  bool is_post = name.find("-post") != std::string::npos;
  DictCode msg_label = is_post ? s.post : s.comment;

  if (name == "IS1") {
    POSEIDON_ASSIGN_OR_RETURN(RecordId p, g->IndexLookup(s.person, param));
    for (DictCode key : {s.first_name, s.last_name, s.birthday,
                         s.location_ip, s.browser_used, s.gender,
                         s.creation_date}) {
      POSEIDON_RETURN_IF_ERROR(g->GetNodeProperty(p, key).status());
    }
    uint64_t rows = 0;
    POSEIDON_RETURN_IF_ERROR(
        g->ForEachOutgoing(p, [&](RecordId, const DiskRel& rel) {
          if (rel.label != s.is_located_in) return true;
          (void)g->GetNodeProperty(rel.dst, s.id);
          ++rows;
          return true;
        }));
    return rows;
  }

  if (name.rfind("IS2", 0) == 0) {
    POSEIDON_ASSIGN_OR_RETURN(RecordId p, g->IndexLookup(s.person, param));
    std::vector<std::pair<int64_t, RecordId>> messages;
    POSEIDON_RETURN_IF_ERROR(
        g->ForEachIncoming(p, [&](RecordId, const DiskRel& rel) {
          if (rel.label != s.has_creator) return true;
          auto n = g->GetNode(rel.src);
          if (!n.ok() || n->label != msg_label) return true;
          auto date = g->GetNodeProperty(rel.src, s.creation_date);
          messages.emplace_back(date.ok() ? date->AsInt() : 0, rel.src);
          return true;
        }));
    std::sort(messages.begin(), messages.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (messages.size() > 10) messages.resize(10);
    for (const auto& [date, msg] : messages) {
      (void)g->GetNodeProperty(msg, s.id);
      (void)g->GetNodeProperty(msg, s.content);
      if (!is_post) {
        POSEIDON_ASSIGN_OR_RETURN(RecordId root, RootPost(snb, msg));
        if (root != kNullId) {
          (void)g->GetNodeProperty(root, s.id);
          POSEIDON_RETURN_IF_ERROR(g->ForEachOutgoing(
              root, [&](RecordId, const DiskRel& rel) {
                if (rel.label != s.has_creator) return true;
                (void)g->GetNodeProperty(rel.dst, s.first_name);
                (void)g->GetNodeProperty(rel.dst, s.last_name);
                return false;
              }));
        }
      }
    }
    return messages.size();
  }

  if (name == "IS3") {
    POSEIDON_ASSIGN_OR_RETURN(RecordId p, g->IndexLookup(s.person, param));
    std::vector<std::pair<int64_t, RecordId>> friends;
    POSEIDON_RETURN_IF_ERROR(
        g->ForEachOutgoing(p, [&](RecordId rel_id, const DiskRel& rel) {
          if (rel.label != s.knows) return true;
          auto date = g->GetRelationshipProperty(rel_id, s.creation_date);
          friends.emplace_back(date.ok() ? date->AsInt() : 0, rel.dst);
          return true;
        }));
    std::sort(friends.begin(), friends.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [date, f] : friends) {
      (void)g->GetNodeProperty(f, s.id);
      (void)g->GetNodeProperty(f, s.first_name);
      (void)g->GetNodeProperty(f, s.last_name);
    }
    return friends.size();
  }

  if (name.rfind("IS4", 0) == 0) {
    POSEIDON_ASSIGN_OR_RETURN(RecordId m, g->IndexLookup(msg_label, param));
    POSEIDON_RETURN_IF_ERROR(g->GetNodeProperty(m, s.creation_date).status());
    POSEIDON_RETURN_IF_ERROR(g->GetNodeProperty(m, s.content).status());
    return 1;
  }

  if (name.rfind("IS5", 0) == 0) {
    POSEIDON_ASSIGN_OR_RETURN(RecordId m, g->IndexLookup(msg_label, param));
    uint64_t rows = 0;
    POSEIDON_RETURN_IF_ERROR(
        g->ForEachOutgoing(m, [&](RecordId, const DiskRel& rel) {
          if (rel.label != s.has_creator) return true;
          (void)g->GetNodeProperty(rel.dst, s.id);
          (void)g->GetNodeProperty(rel.dst, s.first_name);
          (void)g->GetNodeProperty(rel.dst, s.last_name);
          ++rows;
          return true;
        }));
    return rows;
  }

  if (name.rfind("IS6", 0) == 0) {
    POSEIDON_ASSIGN_OR_RETURN(RecordId m, g->IndexLookup(msg_label, param));
    POSEIDON_ASSIGN_OR_RETURN(RecordId root, RootPost(snb, m));
    if (root == kNullId) return 0;
    uint64_t rows = 0;
    POSEIDON_RETURN_IF_ERROR(
        g->ForEachIncoming(root, [&](RecordId, const DiskRel& rel) {
          if (rel.label != s.container_of) return true;
          RecordId forum = rel.src;
          (void)g->GetNodeProperty(forum, s.id);
          (void)g->GetNodeProperty(forum, s.title);
          (void)g->ForEachOutgoing(forum, [&](RecordId, const DiskRel& mr) {
            if (mr.label != s.has_moderator) return true;
            (void)g->GetNodeProperty(mr.dst, s.id);
            (void)g->GetNodeProperty(mr.dst, s.first_name);
            (void)g->GetNodeProperty(mr.dst, s.last_name);
            ++rows;
            return true;
          });
          return true;
        }));
    return rows;
  }

  if (name.rfind("IS7", 0) == 0) {
    POSEIDON_ASSIGN_OR_RETURN(RecordId m, g->IndexLookup(msg_label, param));
    std::vector<std::pair<int64_t, RecordId>> replies;
    POSEIDON_RETURN_IF_ERROR(
        g->ForEachIncoming(m, [&](RecordId, const DiskRel& rel) {
          if (rel.label != s.reply_of) return true;
          auto date = g->GetNodeProperty(rel.src, s.creation_date);
          replies.emplace_back(date.ok() ? date->AsInt() : 0, rel.src);
          return true;
        }));
    std::sort(replies.begin(), replies.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    uint64_t rows = 0;
    for (const auto& [date, c] : replies) {
      (void)g->GetNodeProperty(c, s.id);
      (void)g->GetNodeProperty(c, s.content);
      POSEIDON_RETURN_IF_ERROR(
          g->ForEachOutgoing(c, [&](RecordId, const DiskRel& rel) {
            if (rel.label != s.has_creator) return true;
            (void)g->GetNodeProperty(rel.dst, s.id);
            (void)g->GetNodeProperty(rel.dst, s.first_name);
            (void)g->GetNodeProperty(rel.dst, s.last_name);
            ++rows;
            return true;
          }));
    }
    return rows;
  }

  return Status::InvalidArgument("unknown short-read query: " + name);
}

Status RunDiskUpdate(DiskSnb* snb, const std::string& name,
                     const std::vector<int64_t>& params) {
  DiskGraph* g = snb->graph.get();
  const ldbc::SnbSchema& s = snb->schema;

  if (name == "IU1") {
    POSEIDON_ASSIGN_OR_RETURN(RecordId city, g->IndexLookup(s.city, params[1]));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId p,
        g->CreateNode(s.person, {{s.id, PVal::Int(params[0])},
                                 {s.creation_date, PVal::Int(params[2])}}));
    g->IndexPut(s.person, params[0], p);
    return g->CreateRelationship(p, city, s.is_located_in, {}).status();
  }
  if (name == "IU2" || name == "IU3") {
    DictCode msg_label = name == "IU2" ? s.post : s.comment;
    POSEIDON_ASSIGN_OR_RETURN(RecordId p, g->IndexLookup(s.person, params[0]));
    POSEIDON_ASSIGN_OR_RETURN(RecordId m, g->IndexLookup(msg_label, params[1]));
    return g->CreateRelationship(p, m, s.likes,
                                 {{s.creation_date, PVal::Int(params[2])}})
        .status();
  }
  if (name == "IU4") {
    POSEIDON_ASSIGN_OR_RETURN(RecordId mod,
                              g->IndexLookup(s.person, params[1]));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId f,
        g->CreateNode(s.forum, {{s.id, PVal::Int(params[0])},
                                {s.creation_date, PVal::Int(params[2])}}));
    g->IndexPut(s.forum, params[0], f);
    return g->CreateRelationship(f, mod, s.has_moderator, {}).status();
  }
  if (name == "IU5") {
    POSEIDON_ASSIGN_OR_RETURN(RecordId f, g->IndexLookup(s.forum, params[0]));
    POSEIDON_ASSIGN_OR_RETURN(RecordId p, g->IndexLookup(s.person, params[1]));
    return g->CreateRelationship(f, p, s.has_member,
                                 {{s.join_date, PVal::Int(params[2])}})
        .status();
  }
  if (name == "IU6") {
    POSEIDON_ASSIGN_OR_RETURN(RecordId f, g->IndexLookup(s.forum, params[1]));
    POSEIDON_ASSIGN_OR_RETURN(RecordId a, g->IndexLookup(s.person, params[2]));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId post,
        g->CreateNode(s.post, {{s.id, PVal::Int(params[0])},
                               {s.creation_date, PVal::Int(params[3])}}));
    g->IndexPut(s.post, params[0], post);
    POSEIDON_RETURN_IF_ERROR(
        g->CreateRelationship(f, post, s.container_of, {}).status());
    return g->CreateRelationship(post, a, s.has_creator, {}).status();
  }
  if (name == "IU7") {
    POSEIDON_ASSIGN_OR_RETURN(RecordId parent,
                              g->IndexLookup(s.post, params[1]));
    POSEIDON_ASSIGN_OR_RETURN(RecordId a, g->IndexLookup(s.person, params[2]));
    POSEIDON_ASSIGN_OR_RETURN(
        RecordId c,
        g->CreateNode(s.comment, {{s.id, PVal::Int(params[0])},
                                  {s.creation_date, PVal::Int(params[3])}}));
    g->IndexPut(s.comment, params[0], c);
    POSEIDON_RETURN_IF_ERROR(
        g->CreateRelationship(c, parent, s.reply_of, {}).status());
    return g->CreateRelationship(c, a, s.has_creator, {}).status();
  }
  if (name == "IU8") {
    POSEIDON_ASSIGN_OR_RETURN(RecordId p1, g->IndexLookup(s.person, params[0]));
    POSEIDON_ASSIGN_OR_RETURN(RecordId p2, g->IndexLookup(s.person, params[1]));
    POSEIDON_RETURN_IF_ERROR(
        g->CreateRelationship(p1, p2, s.knows,
                              {{s.creation_date, PVal::Int(params[2])}})
            .status());
    return g->CreateRelationship(p2, p1, s.knows,
                                 {{s.creation_date, PVal::Int(params[2])}})
        .status();
  }
  return Status::InvalidArgument("unknown update query: " + name);
}

}  // namespace poseidon::diskgraph
