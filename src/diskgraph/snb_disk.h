// SNB workload support for the DISK baseline: loads a copy of a generated
// PMem graph into the disk store and provides hand-written implementations
// of the LDBC short reads (indexed, "DISK-i") and updates, mirroring the
// semantics of the algebra plans in ldbc/queries.h.

#ifndef POSEIDON_DISKGRAPH_SNB_DISK_H_
#define POSEIDON_DISKGRAPH_SNB_DISK_H_

#include <memory>
#include <string>

#include "diskgraph/disk_graph.h"
#include "ldbc/queries.h"
#include "tx/transaction.h"

namespace poseidon::diskgraph {

struct DiskSnb {
  std::unique_ptr<DiskGraph> graph;
  ldbc::SnbSchema schema;  ///< codes valid in the disk dictionary
  int64_t next_person_id = 0;
  int64_t next_message_id = 0;
  int64_t next_forum_id = 0;
};

/// Copies the committed graph in `store` (as seen by a fresh transaction of
/// `mgr`) into a new disk store under `options.dir`, re-encoding all
/// dictionary strings, and builds the DRAM id-index for persons, posts,
/// comments, forums, and cities.
Result<std::unique_ptr<DiskSnb>> LoadDiskSnbFromStore(
    storage::GraphStore* store, tx::TransactionManager* mgr,
    const ldbc::SnbDataset& ds, const DiskGraphOptions& options);

/// Executes one short-read query (names as in ldbc::BuildShortReads) with
/// the given id parameter. Returns the number of result rows.
Result<uint64_t> RunDiskShortRead(DiskSnb* snb, const std::string& name,
                                  int64_t param);

/// Executes one update query (IU1..IU8). Does NOT commit — call
/// snb->graph->Commit() separately so execute and commit can be timed apart
/// (Fig. 6 reports both).
Status RunDiskUpdate(DiskSnb* snb, const std::string& name,
                     const std::vector<int64_t>& params);

}  // namespace poseidon::diskgraph

#endif  // POSEIDON_DISKGRAPH_SNB_DISK_H_
