#include "diskgraph/page_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/backoff.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/spin_timer.h"

namespace poseidon::diskgraph {

namespace {

// SSD random-read latency paid on buffer misses.
uint64_t MissLatencyUs() { return util::EnvU64("POSEIDON_DISK_MISS_US", 80); }

// Per-page-access cost paid on buffer HITS, modelling the software stack a
// real disk-based graph DBMS puts between the query and a cached page
// (pin/unpin, latching, record deserialization — absent from the PMem
// engine's direct byte-addressable access). Configurable; documented in
// EXPERIMENTS.md.
uint64_t HitLatencyNs() { return util::EnvU64("POSEIDON_DISK_HIT_NS", 2000); }

}  // namespace

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  auto file = std::unique_ptr<PageFile>(new PageFile());
  file->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (file->fd_ < 0) {
    return Status::IoError("open(" + path +
                           ") failed: " + std::string(strerror(errno)));
  }
  off_t size = ::lseek(file->fd_, 0, SEEK_END);
  file->num_pages_ = static_cast<uint64_t>(size) / kPageSize;
  return file;
}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::ReadPage(uint64_t page_no, void* buf) const {
  if (page_no >= num_pages_) {
    std::memset(buf, 0, kPageSize);
    return Status::Ok();
  }
  if (util::FaultRegistry::Instance().ShouldFail("diskgraph.read")) {
    return Status::IoError("pread failed: injected fault (diskgraph.read)");
  }
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(page_no * kPageSize));
  if (n < 0) {
    return Status::IoError("pread failed: " + std::string(strerror(errno)));
  }
  if (static_cast<uint64_t>(n) < kPageSize) {
    std::memset(static_cast<char*>(buf) + n, 0, kPageSize - n);
  }
  return Status::Ok();
}

Status PageFile::WritePage(uint64_t page_no, const void* buf) {
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(page_no * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pwrite failed: " + std::string(strerror(errno)));
  }
  if (page_no >= num_pages_) num_pages_ = page_no + 1;
  return Status::Ok();
}

Status PageFile::Sync() {
  if (util::FaultRegistry::Instance().ShouldFail("diskgraph.fsync")) {
    return Status::IoError(
        "fdatasync failed: injected fault (diskgraph.fsync)");
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IoError("fdatasync failed: " +
                           std::string(strerror(errno)));
  }
  return Status::Ok();
}

BufferPool::BufferPool(PageFile* file, size_t capacity)
    : file_(file),
      capacity_(capacity == 0 ? 1 : capacity),
      miss_latency_us_(MissLatencyUs()),
      hit_latency_ns_(HitLatencyNs()) {}

Result<char*> BufferPool::FetchPage(uint64_t page_no) {
  auto it = map_.find(page_no);
  if (it != map_.end()) {
    ++hits_;
    SpinWaitNs(hit_latency_ns_);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->data.get();
  }
  ++misses_;
  if (lru_.size() >= capacity_) {
    POSEIDON_RETURN_IF_ERROR(Evict());
  }
  Frame frame;
  frame.page_no = page_no;
  frame.data = std::make_unique<char[]>(kPageSize);
  // A transient read failure (injectable; on real hardware a recoverable
  // media error) is retried with bounded backoff before surfacing.
  util::Backoff backoff(util::Backoff::FromEnv(/*max_attempts=*/3));
  for (;;) {
    Status read = file_->ReadPage(page_no, frame.data.get());
    if (read.ok()) break;
    ++read_retries_;
    if (!backoff.Next()) return read;
  }
  // The SSD random-read cost this machine cannot produce natively.
  SpinWaitNs(miss_latency_us_ * 1000);
  lru_.push_front(std::move(frame));
  map_[page_no] = lru_.begin();
  return lru_.begin()->data.get();
}

void BufferPool::MarkDirty(uint64_t page_no) {
  auto it = map_.find(page_no);
  if (it != map_.end()) it->second->dirty = true;
}

Status BufferPool::Evict() {
  auto victim = std::prev(lru_.end());
  if (victim->dirty) {
    POSEIDON_RETURN_IF_ERROR(
        file_->WritePage(victim->page_no, victim->data.get()));
  }
  map_.erase(victim->page_no);
  lru_.erase(victim);
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  for (Frame& f : lru_) {
    if (!f.dirty) continue;
    POSEIDON_RETURN_IF_ERROR(file_->WritePage(f.page_no, f.data.get()));
    f.dirty = false;
  }
  return file_->Sync();
}

Status BufferPool::DropCaches() {
  POSEIDON_RETURN_IF_ERROR(FlushAll());
  lru_.clear();
  map_.clear();
  return Status::Ok();
}

}  // namespace poseidon::diskgraph
