#include "diskgraph/disk_graph.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/backoff.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/spin_timer.h"

namespace poseidon::diskgraph {

namespace {
constexpr int kNodeFile = 0;
constexpr int kRelFile = 1;
constexpr int kPropFile = 2;
}  // namespace

Result<std::unique_ptr<DiskGraph>> DiskGraph::Create(
    const DiskGraphOptions& options) {
  ::mkdir(options.dir.c_str(), 0755);
  auto g = std::unique_ptr<DiskGraph>(new DiskGraph());
  POSEIDON_ASSIGN_OR_RETURN(g->node_file_,
                            PageFile::Open(options.dir + "/nodes.db"));
  POSEIDON_ASSIGN_OR_RETURN(g->rel_file_,
                            PageFile::Open(options.dir + "/rels.db"));
  POSEIDON_ASSIGN_OR_RETURN(g->prop_file_,
                            PageFile::Open(options.dir + "/props.db"));
  // WAL is opened WITHOUT O_TRUNC and replayed before any buffer pool
  // exists: committed batches land in the page files, a torn tail is
  // discarded, and only then is the log reset for this session.
  std::string wal = options.dir + "/wal.log";
  g->wal_fd_ = ::open(wal.c_str(), O_RDWR | O_CREAT, 0644);
  if (g->wal_fd_ < 0) {
    return Status::IoError("open WAL failed: " + std::string(strerror(errno)));
  }
  POSEIDON_RETURN_IF_ERROR(g->ReplayWal(wal));
  g->node_pool_ = std::make_unique<BufferPool>(g->node_file_.get(),
                                               options.buffer_pages);
  g->rel_pool_ =
      std::make_unique<BufferPool>(g->rel_file_.get(), options.buffer_pages);
  g->prop_pool_ = std::make_unique<BufferPool>(g->prop_file_.get(),
                                               options.buffer_pages);
  std::string dict = options.dir + "/dict.log";
  g->dict_fd_ = ::open(dict.c_str(), O_RDWR | O_CREAT, 0644);
  if (g->dict_fd_ < 0) {
    return Status::IoError("open dict log failed: " +
                           std::string(strerror(errno)));
  }
  g->dict_reverse_.push_back("");  // code 0 = invalid
  POSEIDON_RETURN_IF_ERROR(g->RecoverDictionary(dict));
  POSEIDON_RETURN_IF_ERROR(g->RecoverCounts());
  return g;
}

Status DiskGraph::ReplayWal(const std::string& wal_path) {
  off_t size = ::lseek(wal_fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IoError("lseek(" + wal_path +
                           ") failed: " + std::string(strerror(errno)));
  }
  if (size > 0) {
    struct Image {
      uint64_t file;
      uint64_t page;
      std::vector<char> data;
    };
    std::vector<Image> batch;
    bool applied = false;
    off_t pos = 0;
    for (;;) {
      uint64_t header[2];
      if (::pread(wal_fd_, header, sizeof(header), pos) !=
          static_cast<ssize_t>(sizeof(header))) {
        break;  // end of log or torn record header
      }
      pos += static_cast<off_t>(sizeof(header));
      if (header[0] == ~0ull) {
        // Commit marker. A count mismatch means the log itself is damaged;
        // everything from here on is untrustworthy.
        if (header[1] != batch.size()) break;
        for (const Image& img : batch) {
          PageFile* pf = img.file == kNodeFile  ? node_file_.get()
                         : img.file == kRelFile ? rel_file_.get()
                                                : prop_file_.get();
          POSEIDON_RETURN_IF_ERROR(pf->WritePage(img.page, img.data.data()));
        }
        batch.clear();
        ++wal_batches_replayed_;
        applied = true;
        continue;
      }
      if (header[0] > kPropFile) break;  // garbage file tag
      Image img;
      img.file = header[0];
      img.page = header[1];
      img.data.resize(kPageSize);
      if (::pread(wal_fd_, img.data.data(), kPageSize, pos) !=
          static_cast<ssize_t>(kPageSize)) {
        break;  // torn page image
      }
      pos += static_cast<off_t>(kPageSize);
      batch.push_back(std::move(img));
    }
    // An unterminated trailing batch is a crash mid-commit: discarded, as
    // its marker (and hence its durability promise) never hit the disk.
    if (applied) {
      POSEIDON_RETURN_IF_ERROR(node_file_->Sync());
      POSEIDON_RETURN_IF_ERROR(rel_file_->Sync());
      POSEIDON_RETURN_IF_ERROR(prop_file_->Sync());
    }
  }
  // Replayed batches now live in the page files; start this session's log
  // fresh.
  if (::ftruncate(wal_fd_, 0) != 0 || ::lseek(wal_fd_, 0, SEEK_SET) < 0) {
    return Status::IoError("WAL reset failed: " +
                           std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status DiskGraph::RecoverDictionary(const std::string& dict_path) {
  off_t size = ::lseek(dict_fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IoError("lseek(" + dict_path +
                           ") failed: " + std::string(strerror(errno)));
  }
  off_t pos = 0;
  while (pos + static_cast<off_t>(sizeof(uint32_t)) <= size) {
    uint32_t len;
    if (::pread(dict_fd_, &len, sizeof(len), pos) !=
        static_cast<ssize_t>(sizeof(len))) {
      break;
    }
    if (pos + static_cast<off_t>(sizeof(len)) + static_cast<off_t>(len) >
        size) {
      break;  // torn tail: entry length exceeds the file
    }
    std::string s(len, '\0');
    if (len > 0 && ::pread(dict_fd_, s.data(), len,
                           pos + static_cast<off_t>(sizeof(len))) !=
                       static_cast<ssize_t>(len)) {
      break;
    }
    auto code = static_cast<DictCode>(dict_reverse_.size());
    dict_[s] = code;
    dict_reverse_.push_back(std::move(s));
    pos += static_cast<off_t>(sizeof(len)) + static_cast<off_t>(len);
  }
  // Drop a torn tail so this session's appends start at a clean boundary.
  if (pos < size && ::ftruncate(dict_fd_, pos) != 0) {
    return Status::IoError("dict log truncate failed: " +
                           std::string(strerror(errno)));
  }
  if (::lseek(dict_fd_, pos, SEEK_SET) < 0) {
    return Status::IoError("dict log seek failed: " +
                           std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status DiskGraph::RecoverCounts() {
  // Occupancy scan over the recovered page files. Records only reach the
  // files through committed WAL batches (or an eviction of a page later
  // confirmed by a commit marker), so the highest in-use slot bounds the
  // durable id space. Property slots are conservatively bumped past every
  // existing page — recovery may skip a few free slots, never reuse a live
  // one.
  std::vector<char> buf(kPageSize);
  num_nodes_ = 0;
  for (uint64_t page = 0; page < node_file_->num_pages(); ++page) {
    POSEIDON_RETURN_IF_ERROR(node_file_->ReadPage(page, buf.data()));
    const auto* recs = reinterpret_cast<const DiskNode*>(buf.data());
    for (uint64_t i = 0; i < kNodesPerPage; ++i) {
      if (recs[i].in_use != 0) num_nodes_ = page * kNodesPerPage + i + 1;
    }
  }
  num_rels_ = 0;
  for (uint64_t page = 0; page < rel_file_->num_pages(); ++page) {
    POSEIDON_RETURN_IF_ERROR(rel_file_->ReadPage(page, buf.data()));
    const auto* recs = reinterpret_cast<const DiskRel*>(buf.data());
    for (uint64_t i = 0; i < kRelsPerPage; ++i) {
      if (recs[i].in_use != 0) num_rels_ = page * kRelsPerPage + i + 1;
    }
  }
  num_props_ = prop_file_->num_pages() * kPropsPerPage;
  return Status::Ok();
}

DiskGraph::~DiskGraph() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
  if (dict_fd_ >= 0) ::close(dict_fd_);
}

uint64_t DiskGraph::buffer_misses() const {
  return node_pool_->misses() + rel_pool_->misses() + prop_pool_->misses();
}

uint64_t DiskGraph::read_retries() const {
  return node_pool_->read_retries() + rel_pool_->read_retries() +
         prop_pool_->read_retries();
}

Result<DiskNode*> DiskGraph::NodeAt(RecordId id, bool for_write) {
  uint64_t page = id / kNodesPerPage;
  POSEIDON_ASSIGN_OR_RETURN(char* data, node_pool_->FetchPage(page));
  if (for_write) {
    node_pool_->MarkDirty(page);
    dirty_pages_.emplace_back(kNodeFile, page);
  }
  return reinterpret_cast<DiskNode*>(data) + id % kNodesPerPage;
}

Result<DiskRel*> DiskGraph::RelAt(RecordId id, bool for_write) {
  uint64_t page = id / kRelsPerPage;
  POSEIDON_ASSIGN_OR_RETURN(char* data, rel_pool_->FetchPage(page));
  if (for_write) {
    rel_pool_->MarkDirty(page);
    dirty_pages_.emplace_back(kRelFile, page);
  }
  return reinterpret_cast<DiskRel*>(data) + id % kRelsPerPage;
}

Result<DiskProp*> DiskGraph::PropAt(RecordId id, bool for_write) {
  uint64_t page = id / kPropsPerPage;
  POSEIDON_ASSIGN_OR_RETURN(char* data, prop_pool_->FetchPage(page));
  if (for_write) {
    prop_pool_->MarkDirty(page);
    dirty_pages_.emplace_back(kPropFile, page);
  }
  return reinterpret_cast<DiskProp*>(data) + id % kPropsPerPage;
}

Result<RecordId> DiskGraph::WritePropChain(
    RecordId owner, const std::vector<Property>& props) {
  if (props.empty()) return storage::kNullId;
  RecordId next = storage::kNullId;
  size_t remaining = props.size();
  while (remaining > 0) {
    size_t batch = remaining % 3 == 0 ? 3 : remaining % 3;
    RecordId id = num_props_++;
    POSEIDON_ASSIGN_OR_RETURN(DiskProp * rec, PropAt(id, /*for_write=*/true));
    *rec = DiskProp{};
    rec->owner = owner;
    rec->next = next;
    for (size_t i = 0; i < batch; ++i) {
      const Property& p = props[remaining - batch + i];
      rec->entries[i].set(p.key, p.value);
    }
    next = id;
    remaining -= batch;
  }
  return next;
}

Result<RecordId> DiskGraph::CreateNode(DictCode label,
                                       const std::vector<Property>& props) {
  RecordId id = num_nodes_++;
  POSEIDON_ASSIGN_OR_RETURN(RecordId chain, WritePropChain(id, props));
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * rec, NodeAt(id, /*for_write=*/true));
  *rec = DiskNode{};
  rec->label = label;
  rec->in_use = 1;
  rec->props = chain;
  return id;
}

Result<RecordId> DiskGraph::CreateRelationship(
    RecordId src, RecordId dst, DictCode label,
    const std::vector<Property>& props) {
  RecordId id = num_rels_++;
  POSEIDON_ASSIGN_OR_RETURN(RecordId chain, WritePropChain(id, props));
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * src_rec, NodeAt(src, true));
  RecordId src_head = src_rec->first_out;
  src_rec->first_out = id;
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * dst_rec, NodeAt(dst, true));
  RecordId dst_head = dst_rec->first_in;
  dst_rec->first_in = id;
  POSEIDON_ASSIGN_OR_RETURN(DiskRel * rec, RelAt(id, true));
  *rec = DiskRel{};
  rec->label = label;
  rec->in_use = 1;
  rec->src = src;
  rec->dst = dst;
  rec->next_src = src_head;
  rec->next_dst = dst_head;
  rec->props = chain;
  return id;
}

Status DiskGraph::SetNodeProperty(RecordId id, DictCode key, PVal value) {
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * rec, NodeAt(id, true));
  // In-place update within the chain; append a record when absent.
  RecordId cur = rec->props;
  while (cur != storage::kNullId) {
    POSEIDON_ASSIGN_OR_RETURN(DiskProp * p, PropAt(cur, true));
    for (auto& e : p->entries) {
      if (e.key == key) {
        e.set(key, value);
        return Status::Ok();
      }
    }
    cur = p->next;
  }
  POSEIDON_ASSIGN_OR_RETURN(
      RecordId chain, WritePropChain(id, {Property{key, value}}));
  // Re-fetch: the node's frame may have been evicted while the chain pages
  // were pulled in.
  POSEIDON_ASSIGN_OR_RETURN(rec, NodeAt(id, true));
  RecordId old_head = rec->props;
  rec->props = chain;
  POSEIDON_ASSIGN_OR_RETURN(DiskProp * head, PropAt(chain, true));
  head->next = old_head;
  return Status::Ok();
}

Status DiskGraph::WalAppend() {
  // Write-ahead image of every dirty page, then a commit marker.
  std::vector<char> buf(kPageSize);
  for (auto [file, page] : dirty_pages_) {
    BufferPool* pool = file == kNodeFile  ? node_pool_.get()
                       : file == kRelFile ? rel_pool_.get()
                                          : prop_pool_.get();
    POSEIDON_ASSIGN_OR_RETURN(char* data, pool->FetchPage(page));
    uint64_t header[2] = {static_cast<uint64_t>(file), page};
    if (::write(wal_fd_, header, sizeof(header)) !=
            static_cast<ssize_t>(sizeof(header)) ||
        ::write(wal_fd_, data, kPageSize) !=
            static_cast<ssize_t>(kPageSize)) {
      return Status::IoError("WAL write failed");
    }
  }
  uint64_t marker[2] = {~0ull, dirty_pages_.size()};
  if (::write(wal_fd_, marker, sizeof(marker)) !=
      static_cast<ssize_t>(sizeof(marker))) {
    return Status::IoError("WAL marker write failed");
  }
  return SyncWal();
}

Status DiskGraph::SyncWal() {
  // The commit fsync is the one disk operation whose transient failure
  // (injectable via the diskgraph.fsync fault site) is worth riding out:
  // retry with bounded backoff, then surface the error — the batch stays in
  // dirty_pages_, so a later Commit() re-logs it and recovery stays sound.
  util::Backoff backoff(util::Backoff::FromEnv(/*max_attempts=*/3));
  for (;;) {
    bool injected =
        util::FaultRegistry::Instance().ShouldFail("diskgraph.fsync");
    if (!injected && ::fdatasync(wal_fd_) == 0) return Status::Ok();
    ++fsync_retries_;
    if (!backoff.Next()) {
      return Status::IoError(
          injected ? std::string(
                         "WAL fsync failed: injected fault (diskgraph.fsync)")
                   : "WAL fsync failed: " + std::string(strerror(errno)));
    }
  }
}

Status DiskGraph::Commit() {
  if (dirty_pages_.empty()) return Status::Ok();
  StopWatch watch;
  POSEIDON_RETURN_IF_ERROR(WalAppend());
  dirty_pages_.clear();
  // fsync latency floor: the bench filesystem may be tmpfs, where
  // fdatasync is free; a durable SSD commit is not.
  static const uint64_t kFsyncFloorUs =
      util::EnvU64("POSEIDON_DISK_FSYNC_US", 500);
  uint64_t elapsed_us = static_cast<uint64_t>(watch.ElapsedUs());
  if (elapsed_us < kFsyncFloorUs) SpinWaitNs((kFsyncFloorUs - elapsed_us) * 1000);
  return Status::Ok();
}

Status DiskGraph::DropCaches() {
  POSEIDON_RETURN_IF_ERROR(node_pool_->DropCaches());
  POSEIDON_RETURN_IF_ERROR(rel_pool_->DropCaches());
  return prop_pool_->DropCaches();
}

Result<DiskNode> DiskGraph::GetNode(RecordId id) {
  if (id >= num_nodes_) return Status::NotFound("no such node");
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * rec, NodeAt(id, false));
  if (rec->in_use == 0) return Status::NotFound("node not in use");
  return *rec;
}

Result<DiskRel> DiskGraph::GetRelationship(RecordId id) {
  if (id >= num_rels_) return Status::NotFound("no such relationship");
  POSEIDON_ASSIGN_OR_RETURN(DiskRel * rec, RelAt(id, false));
  if (rec->in_use == 0) return Status::NotFound("relationship not in use");
  return *rec;
}

Result<PVal> DiskGraph::ChainGet(RecordId head, DictCode key) {
  RecordId cur = head;
  while (cur != storage::kNullId) {
    POSEIDON_ASSIGN_OR_RETURN(DiskProp * p, PropAt(cur, false));
    for (const auto& e : p->entries) {
      if (e.key == key) return e.val();
    }
    cur = p->next;
  }
  return PVal::Null();
}

Result<PVal> DiskGraph::GetNodeProperty(RecordId id, DictCode key) {
  POSEIDON_ASSIGN_OR_RETURN(DiskNode rec, GetNode(id));
  return ChainGet(rec.props, key);
}

Result<PVal> DiskGraph::GetRelationshipProperty(RecordId id, DictCode key) {
  POSEIDON_ASSIGN_OR_RETURN(DiskRel rec, GetRelationship(id));
  return ChainGet(rec.props, key);
}

Status DiskGraph::ForEachOutgoing(
    RecordId node, const std::function<bool(RecordId, const DiskRel&)>& fn) {
  POSEIDON_ASSIGN_OR_RETURN(DiskNode rec, GetNode(node));
  RecordId cur = rec.first_out;
  while (cur != storage::kNullId) {
    POSEIDON_ASSIGN_OR_RETURN(DiskRel rel, GetRelationship(cur));
    if (!fn(cur, rel)) return Status::Ok();
    cur = rel.next_src;
  }
  return Status::Ok();
}

Status DiskGraph::ForEachIncoming(
    RecordId node, const std::function<bool(RecordId, const DiskRel&)>& fn) {
  POSEIDON_ASSIGN_OR_RETURN(DiskNode rec, GetNode(node));
  RecordId cur = rec.first_in;
  while (cur != storage::kNullId) {
    POSEIDON_ASSIGN_OR_RETURN(DiskRel rel, GetRelationship(cur));
    if (!fn(cur, rel)) return Status::Ok();
    cur = rel.next_dst;
  }
  return Status::Ok();
}

Status DiskGraph::ForEachNode(
    const std::function<bool(RecordId, const DiskNode&)>& fn) {
  for (RecordId id = 0; id < num_nodes_; ++id) {
    POSEIDON_ASSIGN_OR_RETURN(DiskNode * rec, NodeAt(id, false));
    if (rec->in_use == 0) continue;
    if (!fn(id, *rec)) return Status::Ok();
  }
  return Status::Ok();
}

Result<DictCode> DiskGraph::Code(const std::string& s) {
  auto it = dict_.find(s);
  if (it != dict_.end()) return it->second;
  auto code = static_cast<DictCode>(dict_reverse_.size());
  dict_[s] = code;
  dict_reverse_.push_back(s);
  uint32_t len = static_cast<uint32_t>(s.size());
  if (::write(dict_fd_, &len, sizeof(len)) !=
          static_cast<ssize_t>(sizeof(len)) ||
      ::write(dict_fd_, s.data(), s.size()) !=
          static_cast<ssize_t>(s.size())) {
    return Status::IoError("dictionary log write failed");
  }
  return code;
}

void DiskGraph::IndexPut(DictCode label, int64_t key, RecordId id) {
  index_[HashCombine(label, static_cast<uint64_t>(key))] = id;
}

Result<RecordId> DiskGraph::IndexLookup(DictCode label, int64_t key) const {
  auto it = index_.find(HashCombine(label, static_cast<uint64_t>(key)));
  if (it == index_.end()) return Status::NotFound("not in DRAM index");
  return it->second;
}

}  // namespace poseidon::diskgraph
