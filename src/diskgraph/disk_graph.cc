#include "diskgraph/disk_graph.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/hash.h"
#include "util/spin_timer.h"

namespace poseidon::diskgraph {

namespace {
constexpr int kNodeFile = 0;
constexpr int kRelFile = 1;
constexpr int kPropFile = 2;
}  // namespace

Result<std::unique_ptr<DiskGraph>> DiskGraph::Create(
    const DiskGraphOptions& options) {
  ::mkdir(options.dir.c_str(), 0755);
  auto g = std::unique_ptr<DiskGraph>(new DiskGraph());
  POSEIDON_ASSIGN_OR_RETURN(g->node_file_,
                            PageFile::Open(options.dir + "/nodes.db"));
  POSEIDON_ASSIGN_OR_RETURN(g->rel_file_,
                            PageFile::Open(options.dir + "/rels.db"));
  POSEIDON_ASSIGN_OR_RETURN(g->prop_file_,
                            PageFile::Open(options.dir + "/props.db"));
  g->node_pool_ = std::make_unique<BufferPool>(g->node_file_.get(),
                                               options.buffer_pages);
  g->rel_pool_ =
      std::make_unique<BufferPool>(g->rel_file_.get(), options.buffer_pages);
  g->prop_pool_ = std::make_unique<BufferPool>(g->prop_file_.get(),
                                               options.buffer_pages);
  std::string wal = options.dir + "/wal.log";
  g->wal_fd_ = ::open(wal.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (g->wal_fd_ < 0) {
    return Status::IoError("open WAL failed: " + std::string(strerror(errno)));
  }
  std::string dict = options.dir + "/dict.log";
  g->dict_fd_ = ::open(dict.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (g->dict_fd_ < 0) {
    return Status::IoError("open dict log failed: " +
                           std::string(strerror(errno)));
  }
  g->dict_reverse_.push_back("");  // code 0 = invalid
  return g;
}

DiskGraph::~DiskGraph() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
  if (dict_fd_ >= 0) ::close(dict_fd_);
}

uint64_t DiskGraph::buffer_misses() const {
  return node_pool_->misses() + rel_pool_->misses() + prop_pool_->misses();
}

Result<DiskNode*> DiskGraph::NodeAt(RecordId id, bool for_write) {
  uint64_t page = id / kNodesPerPage;
  POSEIDON_ASSIGN_OR_RETURN(char* data, node_pool_->FetchPage(page));
  if (for_write) {
    node_pool_->MarkDirty(page);
    dirty_pages_.emplace_back(kNodeFile, page);
  }
  return reinterpret_cast<DiskNode*>(data) + id % kNodesPerPage;
}

Result<DiskRel*> DiskGraph::RelAt(RecordId id, bool for_write) {
  uint64_t page = id / kRelsPerPage;
  POSEIDON_ASSIGN_OR_RETURN(char* data, rel_pool_->FetchPage(page));
  if (for_write) {
    rel_pool_->MarkDirty(page);
    dirty_pages_.emplace_back(kRelFile, page);
  }
  return reinterpret_cast<DiskRel*>(data) + id % kRelsPerPage;
}

Result<DiskProp*> DiskGraph::PropAt(RecordId id, bool for_write) {
  uint64_t page = id / kPropsPerPage;
  POSEIDON_ASSIGN_OR_RETURN(char* data, prop_pool_->FetchPage(page));
  if (for_write) {
    prop_pool_->MarkDirty(page);
    dirty_pages_.emplace_back(kPropFile, page);
  }
  return reinterpret_cast<DiskProp*>(data) + id % kPropsPerPage;
}

Result<RecordId> DiskGraph::WritePropChain(
    RecordId owner, const std::vector<Property>& props) {
  if (props.empty()) return storage::kNullId;
  RecordId next = storage::kNullId;
  size_t remaining = props.size();
  while (remaining > 0) {
    size_t batch = remaining % 3 == 0 ? 3 : remaining % 3;
    RecordId id = num_props_++;
    POSEIDON_ASSIGN_OR_RETURN(DiskProp * rec, PropAt(id, /*for_write=*/true));
    *rec = DiskProp{};
    rec->owner = owner;
    rec->next = next;
    for (size_t i = 0; i < batch; ++i) {
      const Property& p = props[remaining - batch + i];
      rec->entries[i].set(p.key, p.value);
    }
    next = id;
    remaining -= batch;
  }
  return next;
}

Result<RecordId> DiskGraph::CreateNode(DictCode label,
                                       const std::vector<Property>& props) {
  RecordId id = num_nodes_++;
  POSEIDON_ASSIGN_OR_RETURN(RecordId chain, WritePropChain(id, props));
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * rec, NodeAt(id, /*for_write=*/true));
  *rec = DiskNode{};
  rec->label = label;
  rec->in_use = 1;
  rec->props = chain;
  return id;
}

Result<RecordId> DiskGraph::CreateRelationship(
    RecordId src, RecordId dst, DictCode label,
    const std::vector<Property>& props) {
  RecordId id = num_rels_++;
  POSEIDON_ASSIGN_OR_RETURN(RecordId chain, WritePropChain(id, props));
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * src_rec, NodeAt(src, true));
  RecordId src_head = src_rec->first_out;
  src_rec->first_out = id;
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * dst_rec, NodeAt(dst, true));
  RecordId dst_head = dst_rec->first_in;
  dst_rec->first_in = id;
  POSEIDON_ASSIGN_OR_RETURN(DiskRel * rec, RelAt(id, true));
  *rec = DiskRel{};
  rec->label = label;
  rec->in_use = 1;
  rec->src = src;
  rec->dst = dst;
  rec->next_src = src_head;
  rec->next_dst = dst_head;
  rec->props = chain;
  return id;
}

Status DiskGraph::SetNodeProperty(RecordId id, DictCode key, PVal value) {
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * rec, NodeAt(id, true));
  // In-place update within the chain; append a record when absent.
  RecordId cur = rec->props;
  while (cur != storage::kNullId) {
    POSEIDON_ASSIGN_OR_RETURN(DiskProp * p, PropAt(cur, true));
    for (auto& e : p->entries) {
      if (e.key == key) {
        e.set(key, value);
        return Status::Ok();
      }
    }
    cur = p->next;
  }
  POSEIDON_ASSIGN_OR_RETURN(
      RecordId chain, WritePropChain(id, {Property{key, value}}));
  // Re-fetch: the node's frame may have been evicted while the chain pages
  // were pulled in.
  POSEIDON_ASSIGN_OR_RETURN(rec, NodeAt(id, true));
  RecordId old_head = rec->props;
  rec->props = chain;
  POSEIDON_ASSIGN_OR_RETURN(DiskProp * head, PropAt(chain, true));
  head->next = old_head;
  return Status::Ok();
}

Status DiskGraph::WalAppend() {
  // Write-ahead image of every dirty page, then a commit marker.
  std::vector<char> buf(kPageSize);
  for (auto [file, page] : dirty_pages_) {
    BufferPool* pool = file == kNodeFile  ? node_pool_.get()
                       : file == kRelFile ? rel_pool_.get()
                                          : prop_pool_.get();
    POSEIDON_ASSIGN_OR_RETURN(char* data, pool->FetchPage(page));
    uint64_t header[2] = {static_cast<uint64_t>(file), page};
    if (::write(wal_fd_, header, sizeof(header)) !=
            static_cast<ssize_t>(sizeof(header)) ||
        ::write(wal_fd_, data, kPageSize) !=
            static_cast<ssize_t>(kPageSize)) {
      return Status::IoError("WAL write failed");
    }
  }
  uint64_t marker[2] = {~0ull, dirty_pages_.size()};
  if (::write(wal_fd_, marker, sizeof(marker)) !=
      static_cast<ssize_t>(sizeof(marker))) {
    return Status::IoError("WAL marker write failed");
  }
  if (::fdatasync(wal_fd_) != 0) {
    return Status::IoError("WAL fsync failed");
  }
  return Status::Ok();
}

Status DiskGraph::Commit() {
  if (dirty_pages_.empty()) return Status::Ok();
  StopWatch watch;
  POSEIDON_RETURN_IF_ERROR(WalAppend());
  dirty_pages_.clear();
  // fsync latency floor: the bench filesystem may be tmpfs, where
  // fdatasync is free; a durable SSD commit is not.
  static const uint64_t kFsyncFloorUs = [] {
    const char* v = std::getenv("POSEIDON_DISK_FSYNC_US");
    if (v == nullptr || *v == '\0') return 500ull;
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    return end == v ? 500ull : parsed;
  }();
  uint64_t elapsed_us = static_cast<uint64_t>(watch.ElapsedUs());
  if (elapsed_us < kFsyncFloorUs) SpinWaitNs((kFsyncFloorUs - elapsed_us) * 1000);
  return Status::Ok();
}

Status DiskGraph::DropCaches() {
  POSEIDON_RETURN_IF_ERROR(node_pool_->DropCaches());
  POSEIDON_RETURN_IF_ERROR(rel_pool_->DropCaches());
  return prop_pool_->DropCaches();
}

Result<DiskNode> DiskGraph::GetNode(RecordId id) {
  if (id >= num_nodes_) return Status::NotFound("no such node");
  POSEIDON_ASSIGN_OR_RETURN(DiskNode * rec, NodeAt(id, false));
  if (rec->in_use == 0) return Status::NotFound("node not in use");
  return *rec;
}

Result<DiskRel> DiskGraph::GetRelationship(RecordId id) {
  if (id >= num_rels_) return Status::NotFound("no such relationship");
  POSEIDON_ASSIGN_OR_RETURN(DiskRel * rec, RelAt(id, false));
  if (rec->in_use == 0) return Status::NotFound("relationship not in use");
  return *rec;
}

Result<PVal> DiskGraph::ChainGet(RecordId head, DictCode key) {
  RecordId cur = head;
  while (cur != storage::kNullId) {
    POSEIDON_ASSIGN_OR_RETURN(DiskProp * p, PropAt(cur, false));
    for (const auto& e : p->entries) {
      if (e.key == key) return e.val();
    }
    cur = p->next;
  }
  return PVal::Null();
}

Result<PVal> DiskGraph::GetNodeProperty(RecordId id, DictCode key) {
  POSEIDON_ASSIGN_OR_RETURN(DiskNode rec, GetNode(id));
  return ChainGet(rec.props, key);
}

Result<PVal> DiskGraph::GetRelationshipProperty(RecordId id, DictCode key) {
  POSEIDON_ASSIGN_OR_RETURN(DiskRel rec, GetRelationship(id));
  return ChainGet(rec.props, key);
}

Status DiskGraph::ForEachOutgoing(
    RecordId node, const std::function<bool(RecordId, const DiskRel&)>& fn) {
  POSEIDON_ASSIGN_OR_RETURN(DiskNode rec, GetNode(node));
  RecordId cur = rec.first_out;
  while (cur != storage::kNullId) {
    POSEIDON_ASSIGN_OR_RETURN(DiskRel rel, GetRelationship(cur));
    if (!fn(cur, rel)) return Status::Ok();
    cur = rel.next_src;
  }
  return Status::Ok();
}

Status DiskGraph::ForEachIncoming(
    RecordId node, const std::function<bool(RecordId, const DiskRel&)>& fn) {
  POSEIDON_ASSIGN_OR_RETURN(DiskNode rec, GetNode(node));
  RecordId cur = rec.first_in;
  while (cur != storage::kNullId) {
    POSEIDON_ASSIGN_OR_RETURN(DiskRel rel, GetRelationship(cur));
    if (!fn(cur, rel)) return Status::Ok();
    cur = rel.next_dst;
  }
  return Status::Ok();
}

Status DiskGraph::ForEachNode(
    const std::function<bool(RecordId, const DiskNode&)>& fn) {
  for (RecordId id = 0; id < num_nodes_; ++id) {
    POSEIDON_ASSIGN_OR_RETURN(DiskNode * rec, NodeAt(id, false));
    if (rec->in_use == 0) continue;
    if (!fn(id, *rec)) return Status::Ok();
  }
  return Status::Ok();
}

Result<DictCode> DiskGraph::Code(const std::string& s) {
  auto it = dict_.find(s);
  if (it != dict_.end()) return it->second;
  auto code = static_cast<DictCode>(dict_reverse_.size());
  dict_[s] = code;
  dict_reverse_.push_back(s);
  uint32_t len = static_cast<uint32_t>(s.size());
  if (::write(dict_fd_, &len, sizeof(len)) !=
          static_cast<ssize_t>(sizeof(len)) ||
      ::write(dict_fd_, s.data(), s.size()) !=
          static_cast<ssize_t>(s.size())) {
    return Status::IoError("dictionary log write failed");
  }
  return code;
}

void DiskGraph::IndexPut(DictCode label, int64_t key, RecordId id) {
  index_[HashCombine(label, static_cast<uint64_t>(key))] = id;
}

Result<RecordId> DiskGraph::IndexLookup(DictCode label, int64_t key) const {
  auto it = index_.find(HashCombine(label, static_cast<uint64_t>(key)));
  if (it == index_.end()) return Status::NotFound("not in DRAM index");
  return it->second;
}

}  // namespace poseidon::diskgraph
