// Paged disk storage for the DISK baseline (paper §7.3).
//
// The paper compares against "an open-source native graph database where we
// stored all the primary data on SSD and created an additional DRAM index".
// This module provides the disk substrate for our equivalent baseline: 8 KiB
// page files accessed through an LRU buffer pool. Because this machine has
// no dedicated SSD under test, a configurable per-miss latency
// (POSEIDON_DISK_MISS_US, default 80 µs ≈ one SSD random read) is injected
// on buffer misses; hot pages are served from the pool like any buffer
// manager would.

#ifndef POSEIDON_DISKGRAPH_PAGE_STORE_H_
#define POSEIDON_DISKGRAPH_PAGE_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace poseidon::diskgraph {

inline constexpr uint64_t kPageSize = 8192;

/// A growable file of 8 KiB pages.
class PageFile {
 public:
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path);
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  Status ReadPage(uint64_t page_no, void* buf) const;
  Status WritePage(uint64_t page_no, const void* buf);
  Status Sync();

  uint64_t num_pages() const { return num_pages_; }

 private:
  PageFile() = default;

  int fd_ = -1;
  uint64_t num_pages_ = 0;
};

/// LRU buffer pool over one PageFile with write-back caching.
class BufferPool {
 public:
  /// `capacity` pages are cached; misses pay `miss_latency_us`
  /// (env POSEIDON_DISK_MISS_US overrides).
  BufferPool(PageFile* file, size_t capacity);

  /// Returns a pinned-by-convention pointer to the page image (valid until
  /// the next Fetch). Pages beyond EOF read as zeroes.
  Result<char*> FetchPage(uint64_t page_no);

  /// Marks the (cached) page dirty for write-back.
  void MarkDirty(uint64_t page_no);

  /// Writes back every dirty page and fsyncs the file.
  Status FlushAll();

  /// Drops every clean cached page (dirty ones are written back first);
  /// subsequent fetches pay the miss latency again ("cold" runs).
  Status DropCaches();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Page reads that failed transiently and were retried with backoff.
  uint64_t read_retries() const { return read_retries_; }

 private:
  struct Frame {
    uint64_t page_no;
    bool dirty = false;
    std::unique_ptr<char[]> data;
  };

  Status Evict();

  PageFile* file_;
  size_t capacity_;
  uint64_t miss_latency_us_;
  uint64_t hit_latency_ns_;
  // page_no -> iterator into lru_ (front = most recent).
  std::list<Frame> lru_;
  std::unordered_map<uint64_t, std::list<Frame>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t read_retries_ = 0;
};

}  // namespace poseidon::diskgraph

#endif  // POSEIDON_DISKGRAPH_PAGE_STORE_H_
