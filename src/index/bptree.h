// B+-Tree secondary index with three node-placement policies (paper §4.2
// "Hybrid Indexes" and §7.4 / Fig. 8):
//
//   * kVolatile   — all nodes in DRAM (the paper's DRAM baseline index);
//                   lost on restart, rebuilt from primary data.
//   * kPersistent — all nodes in the PMem pool (every lookup level pays
//                   PMem latency).
//   * kHybrid     — leaves in PMem, inner nodes in DRAM (selective
//                   persistence à la FPTree): at most one PMem node is read
//                   per lookup, and recovery only rebuilds the inner levels
//                   from the persistent leaf chain.
//
// Keys are (int64 primary, uint64 tiebreak) pairs; the tiebreak (usually the
// indexed record id) makes duplicate property values unique. Leaf nodes are
// 1 KiB (a multiple of the 256 B DCPMM block, DG3), cache-line aligned, and
// singly linked for range scans and recovery.
//
// Being a secondary structure, the tree favors simplicity over full crash
// atomicity: leaves are persisted as they change, and the documented
// recovery story is RebuildInner() (hybrid) or a full rebuild from primary
// data (volatile/persistent) — exactly the trade-off §7.4 evaluates.

#ifndef POSEIDON_INDEX_BPTREE_H_
#define POSEIDON_INDEX_BPTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "pmem/pool.h"
#include "storage/types.h"
#include "util/status.h"

namespace poseidon::index {

struct BTreeKey {
  int64_t k = 0;
  uint64_t tie = 0;

  friend bool operator==(const BTreeKey& a, const BTreeKey& b) {
    return a.k == b.k && a.tie == b.tie;
  }
  friend bool operator<(const BTreeKey& a, const BTreeKey& b) {
    if (a.k != b.k) return a.k < b.k;
    return a.tie < b.tie;
  }
};

enum class Placement { kVolatile, kPersistent, kHybrid };

class BPlusTree {
 public:
  /// Leaf layout: 16-byte header + kLeafEntries * 24 B = 1024 bytes.
  static constexpr uint32_t kLeafEntries = 42;
  /// Inner fanout.
  static constexpr uint32_t kInnerEntries = 64;

  /// Creates an empty tree. `pool` is required unless placement is
  /// kVolatile. For persistent/hybrid trees, meta_offset() is the durable
  /// handle for recovery.
  static Result<std::unique_ptr<BPlusTree>> Create(pmem::Pool* pool,
                                                   Placement placement);

  /// Recovers a persistent or hybrid tree from its durable handle:
  /// walks the leaf chain and rebuilds the in-DRAM inner levels.
  static Result<std::unique_ptr<BPlusTree>> Open(pmem::Pool* pool,
                                                 Placement placement,
                                                 pmem::Offset meta_off);

  ~BPlusTree();
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts key -> value. Duplicate exact keys are rejected.
  Status Insert(BTreeKey key, storage::RecordId value);

  /// Exact-key lookup.
  Result<storage::RecordId> Lookup(BTreeKey key) const;

  /// Invokes fn(key, value) for every entry with key.k == k (any tiebreak).
  /// Returns the number of matches.
  template <typename F>
  uint64_t LookupAll(int64_t k, F&& fn) const {
    uint64_t n = 0;
    ScanRange(BTreeKey{k, 0}, BTreeKey{k, ~0ull},
              [&](const BTreeKey& key, storage::RecordId v) {
                ++n;
                fn(key, v);
                return true;
              });
    return n;
  }

  /// Invokes fn(key, value) for entries in [lo, hi] in key order until fn
  /// returns false.
  void ScanRange(BTreeKey lo, BTreeKey hi,
                 const std::function<bool(const BTreeKey&,
                                          storage::RecordId)>& fn) const;

  /// Removes an exact key. NotFound if absent. (No node merging — freed
  /// space is reused by later inserts, matching DG5's reuse-over-dealloc.)
  Status Remove(BTreeKey key);

  uint64_t size() const;
  int height() const { return height_; }
  Placement placement() const { return placement_; }
  pmem::Offset meta_offset() const { return meta_off_; }

  /// Rebuilds the DRAM inner levels from the persistent leaf chain (the
  /// hybrid recovery path measured in Fig. 8). Also usable on persistent
  /// trees to refresh the volatile root pointer cache.
  Status RebuildInner();

  /// True when the 64 B line at `line_off` overlaps one of this tree's
  /// PMem-resident nodes (meta block, leaf chain, and — for kPersistent —
  /// inner nodes). Always false for volatile trees. Used by the media-fault
  /// repair pipeline to attribute corrupt lines to an index.
  bool ContainsPoolOffset(pmem::Offset line_off) const;

 private:
  struct LeafNode;
  struct InnerNode;
  struct Meta;

  BPlusTree() = default;

  // Node references are uint64: pool offsets for PMem-resident nodes,
  // raw pointers for DRAM-resident nodes (distinguished by placement +
  // level, never mixed within one level).
  LeafNode* ResolveLeaf(uint64_t ref) const;
  InnerNode* ResolveInner(uint64_t ref) const;
  uint64_t LeafRef(LeafNode* leaf) const;

  Result<uint64_t> NewLeaf();
  Result<uint64_t> NewInner();
  void FreeInnerRecursive(uint64_t ref, int level);
  void PersistLeaf(LeafNode* leaf, const void* addr, uint64_t len);
  void PersistInner(InnerNode* inner);

  /// Descends to the leaf that owns `key`; records the path when `path` is
  /// non-null (for splits).
  uint64_t FindLeaf(BTreeKey key,
                    std::vector<std::pair<uint64_t, int>>* path) const;

  Status InsertIntoParent(std::vector<std::pair<uint64_t, int>>& path,
                          BTreeKey sep, uint64_t new_child);

  pmem::Pool* pool_ = nullptr;
  Placement placement_ = Placement::kVolatile;
  pmem::Offset meta_off_ = 0;  // persistent Meta (0 for volatile trees)

  uint64_t root_ = 0;  // node ref; a leaf when height_ == 1
  int height_ = 1;
  uint64_t size_ = 0;
  uint64_t first_leaf_ = 0;  // leftmost leaf ref

  mutable std::shared_mutex mu_;
};

}  // namespace poseidon::index

#endif  // POSEIDON_INDEX_BPTREE_H_
