// Index registry: creates, persists, recovers, and maintains the secondary
// B+-Tree indexes over node properties ("An index can be constructed on
// nodes with a given label and for a property", paper §4.2).
//
// A persistent index directory (referenced from GraphRoot::index_dir) records
// every non-volatile index so Open() can recover hybrid indexes by
// rebuilding only their DRAM inner levels; volatile indexes must be fully
// re-created from primary data (the recovery trade-off of Fig. 8).
//
// Index maintenance is post-commit: the transaction layer reports committed
// property changes via OnNodeUpserted/OnNodeDeleted. Indexes are secondary
// structures, so a crash between data commit and index update at worst
// requires an index rebuild, never affects primary-data consistency.

#ifndef POSEIDON_INDEX_INDEX_MANAGER_H_
#define POSEIDON_INDEX_INDEX_MANAGER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "index/bptree.h"
#include "storage/graph_store.h"

namespace poseidon::index {

/// Maps a property value onto the tree's int64 key space. Strings index by
/// dictionary code (equality lookups), doubles by truncation.
int64_t IndexKeyOf(const storage::PVal& v);

class IndexManager {
 public:
  explicit IndexManager(storage::GraphStore* store) : store_(store) {}

  /// Recovers all persistent/hybrid indexes listed in the directory.
  Status LoadPersistent();

  /// Creates an index on nodes labelled `label` for property `key` and
  /// bulk-loads it from the current table contents (committed records).
  Result<BPlusTree*> CreateIndex(storage::DictCode label,
                                 storage::DictCode key, Placement placement);

  /// Returns the index for (label, key) or nullptr.
  BPlusTree* Find(storage::DictCode label, storage::DictCode key) const;

  /// Post-commit hook: property `key` of node `id` (labelled `label`)
  /// changed from `old_value` to `new_value` (either may be null for
  /// insert/removal).
  void OnNodeUpserted(storage::RecordId id, storage::DictCode label,
                      storage::DictCode key, const storage::PVal& old_value,
                      const storage::PVal& new_value);

  /// Post-commit hook: node deleted; removes all its index entries.
  void OnNodeDeleted(storage::RecordId id, storage::DictCode label,
                     const std::vector<storage::Property>& props);

  struct DirEntry;  // persistent directory slot (defined in .cc)

  /// All registered indexes (for tests / stats).
  struct Entry {
    storage::DictCode label;
    storage::DictCode key;
    Placement placement;
    std::unique_ptr<BPlusTree> tree;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Corruption-handler leg for index-owned lines. A corrupt line inside a
  /// persistent/hybrid tree triggers a full rebuild-and-swap from primary
  /// data (indexes are secondary: rebuild is always safe); a corrupt
  /// directory line is rewritten from the DRAM registry. Returns nullopt
  /// when no index structure owns the line.
  std::optional<pmem::Pool::RepairOutcome> RepairLine(pmem::Offset line_off);

 private:
  Status EnsureDirectory();
  Status BulkLoad(BPlusTree* tree, storage::DictCode label,
                  storage::DictCode key);

  storage::GraphStore* store_;
  std::vector<Entry> entries_;
  mutable std::recursive_mutex mu_;
};

}  // namespace poseidon::index

#endif  // POSEIDON_INDEX_INDEX_MANAGER_H_
