#include "index/index_manager.h"

#include <cstring>

#include "pmem/pptr.h"

namespace poseidon::index {

using storage::DictCode;
using storage::PVal;
using storage::RecordId;

namespace {
constexpr uint64_t kDirCapacity = 64;
}

/// Persistent directory: a count followed by kDirCapacity fixed slots.
struct IndexManager::DirEntry {
  uint32_t label;
  uint32_t key;
  uint32_t placement;  // Placement enum value; volatile indexes not listed
  uint32_t pad;
  uint64_t meta;  // BPlusTree durable handle
};

struct Directory {
  uint64_t count;
  IndexManager::DirEntry slots[kDirCapacity];
};

int64_t IndexKeyOf(const PVal& v) {
  switch (v.type) {
    case storage::PType::kInt:
      return v.AsInt();
    case storage::PType::kString:
      return static_cast<int64_t>(v.AsString());
    case storage::PType::kBool:
      return v.AsBool() ? 1 : 0;
    case storage::PType::kDouble:
      return static_cast<int64_t>(v.AsDouble());
    case storage::PType::kNull:
      return 0;
  }
  return 0;
}

Status IndexManager::EnsureDirectory() {
  auto* root = store_->root();
  if (root->index_dir != 0) return Status::Ok();
  POSEIDON_ASSIGN_OR_RETURN(pmem::Offset dir,
                            store_->pool()->AllocateZeroed(sizeof(Directory)));
  PsanPublish(store_->pool(), &root->index_dir, dir, dir, sizeof(Directory));
  store_->pool()->Persist(&root->index_dir, sizeof(pmem::Offset));
  return Status::Ok();
}

Status IndexManager::LoadPersistent() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto* root = store_->root();
  if (root->index_dir == 0) return Status::Ok();
  auto* dir = store_->pool()->ToPtr<Directory>(root->index_dir);
  for (uint64_t i = 0; i < dir->count; ++i) {
    const DirEntry& slot = dir->slots[i];
    auto placement = static_cast<Placement>(slot.placement);
    POSEIDON_ASSIGN_OR_RETURN(
        auto tree, BPlusTree::Open(store_->pool(), placement, slot.meta));
    entries_.push_back(Entry{slot.label, slot.key, placement, std::move(tree)});
  }
  return Status::Ok();
}

Result<BPlusTree*> IndexManager::CreateIndex(DictCode label, DictCode key,
                                             Placement placement) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e.label == label && e.key == key) {
      return Status::AlreadyExists("index already exists");
    }
  }
  pmem::Pool* pool = placement == Placement::kVolatile ? nullptr : store_->pool();
  POSEIDON_ASSIGN_OR_RETURN(auto tree, BPlusTree::Create(pool, placement));
  BPlusTree* raw = tree.get();
  POSEIDON_RETURN_IF_ERROR(BulkLoad(raw, label, key));

  if (placement != Placement::kVolatile) {
    POSEIDON_RETURN_IF_ERROR(EnsureDirectory());
    auto* dir = store_->pool()->ToPtr<Directory>(store_->root()->index_dir);
    if (dir->count >= kDirCapacity) {
      return Status::ResourceExhausted("index directory full");
    }
    DirEntry& slot = dir->slots[dir->count];
    pmem::Pool* ppool = store_->pool();
    PsanStore(ppool, &slot.label, uint32_t{label});
    PsanStore(ppool, &slot.key, uint32_t{key});
    PsanStore(ppool, &slot.placement, static_cast<uint32_t>(placement));
    PsanStore(ppool, &slot.meta, raw->meta_offset());
    ppool->Persist(&slot, sizeof(DirEntry));
    // Bumping the count publishes the slot just written.
    PsanPublish(ppool, &dir->count, dir->count + 1,
                ppool->ToOffset(&slot), sizeof(DirEntry));
    ppool->Persist(&dir->count, sizeof(uint64_t));
  }
  entries_.push_back(Entry{label, key, placement, std::move(tree)});
  return raw;
}

Status IndexManager::BulkLoad(BPlusTree* tree, DictCode label, DictCode key) {
  Status status = Status::Ok();
  store_->nodes().ForEach([&](RecordId id, storage::NodeRecord& rec) {
    if (!status.ok()) return;
    if (rec.label != label) return;
    // Index the latest committed version only; uncommitted inserts
    // (txn_id != 0 with bts == 0) are skipped and will be reported through
    // the post-commit hook.
    if (rec.tx.txn_id != storage::kUnlocked && rec.tx.bts == 0) return;
    if (rec.tx.ets != storage::kInfinityTs) return;  // deleted
    PVal v = store_->properties().Get(rec.props, key);
    if (v.is_null()) return;
    Status s = tree->Insert(BTreeKey{IndexKeyOf(v), id}, id);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) status = s;
  });
  return status;
}

BPlusTree* IndexManager::Find(DictCode label, DictCode key) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e.label == label && e.key == key) return e.tree.get();
  }
  return nullptr;
}

std::optional<pmem::Pool::RepairOutcome> IndexManager::RepairLine(
    pmem::Offset line_off) {
  using Outcome = pmem::Pool::RepairOutcome;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  pmem::Pool* pool = store_->pool();

  // Directory block: fully re-derivable from the DRAM registry.
  pmem::Offset dir_off = store_->root()->index_dir;
  if (dir_off != 0 && dir_off < line_off + pmem::kCacheLineSize &&
      line_off < dir_off + sizeof(Directory)) {
    Directory fresh{};
    for (const auto& e : entries_) {
      if (e.placement == Placement::kVolatile) continue;
      DirEntry& slot = fresh.slots[fresh.count++];
      slot.label = e.label;
      slot.key = e.key;
      slot.placement = static_cast<uint32_t>(e.placement);
      slot.meta = e.tree->meta_offset();
    }
    pool->RepairStore(dir_off, &fresh, sizeof(Directory));
    return Outcome::kRepaired;
  }

  for (auto& e : entries_) {
    if (e.placement == Placement::kVolatile) continue;
    if (!e.tree->ContainsPoolOffset(line_off)) continue;
    // Rebuild-and-swap: indexes are secondary, so a fresh tree bulk-loaded
    // from the (already repaired or quarantined) primary tables is always
    // consistent. The old tree's nodes are leaked rather than freed — some
    // may be the very lines under repair.
    auto rebuilt = BPlusTree::Create(pool, e.placement);
    if (!rebuilt.ok()) return Outcome::kUnrepairable;
    if (!BulkLoad(rebuilt->get(), e.label, e.key).ok()) {
      return Outcome::kUnrepairable;
    }
    auto* dir = pool->ToPtr<Directory>(store_->root()->index_dir);
    for (uint64_t i = 0; i < dir->count; ++i) {
      DirEntry& slot = dir->slots[i];
      if (slot.label == e.label && slot.key == e.key) {
        uint64_t meta = (*rebuilt)->meta_offset();
        pool->RepairStore(pool->ToOffset(&slot.meta), &meta, sizeof(meta));
        break;
      }
    }
    e.tree = std::move(*rebuilt);
    // The corrupt line now belongs to a leaked, unreferenced node; its
    // bytes are dead and the current content can be blessed as-is.
    return Outcome::kAdopted;
  }
  return std::nullopt;
}

void IndexManager::OnNodeUpserted(RecordId id, DictCode label, DictCode key,
                                  const PVal& old_value,
                                  const PVal& new_value) {
  BPlusTree* tree = Find(label, key);
  if (tree == nullptr) return;
  if (!old_value.is_null()) {
    (void)tree->Remove(BTreeKey{IndexKeyOf(old_value), id});
  }
  if (!new_value.is_null()) {
    (void)tree->Insert(BTreeKey{IndexKeyOf(new_value), id}, id);
  }
}

void IndexManager::OnNodeDeleted(RecordId id, DictCode label,
                                 const std::vector<storage::Property>& props) {
  for (const auto& p : props) {
    BPlusTree* tree = Find(label, p.key);
    if (tree == nullptr) continue;
    (void)tree->Remove(BTreeKey{IndexKeyOf(p.value), id});
  }
}

}  // namespace poseidon::index
