#include "index/bptree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "pmem/pptr.h"

namespace poseidon::index {

using storage::RecordId;

struct BPlusTree::LeafNode {
  struct Entry {
    BTreeKey key;
    uint64_t value;
  };

  uint32_t count;
  uint32_t pad;
  uint64_t next;  // ref of the next leaf (0 = end of chain)
  Entry entries[kLeafEntries];

  static void CheckLayout() {
    static_assert(sizeof(LeafNode) == 1024,
                  "leaf must stay a multiple of the 256 B PMem block");
  }
};

struct BPlusTree::InnerNode {
  uint32_t count;  // number of separator keys; children = count + 1
  uint32_t pad;
  BTreeKey keys[kInnerEntries];
  uint64_t children[kInnerEntries + 1];
};

struct BPlusTree::Meta {
  uint64_t first_leaf;
};

namespace {

uint64_t PtrRef(void* p) { return reinterpret_cast<uint64_t>(p); }

}  // namespace

// --- Node resolution ---------------------------------------------------------

BPlusTree::LeafNode* BPlusTree::ResolveLeaf(uint64_t ref) const {
  if (placement_ == Placement::kVolatile) {
    return reinterpret_cast<LeafNode*>(ref);
  }
  // psan: callers mark whole nodes via PersistLeaf
  auto* leaf = pool_->ToPtr<LeafNode>(ref);
  // One 256 B block per visited PMem node approximates the partial node
  // access of a lookup (binary search does not touch the whole 1 KiB).
  pool_->TouchRead(leaf, pmem::kPmemBlockSize);
  return leaf;
}

BPlusTree::InnerNode* BPlusTree::ResolveInner(uint64_t ref) const {
  if (placement_ == Placement::kPersistent) {
    auto* inner = pool_->ToPtr<InnerNode>(ref);
    pool_->TouchRead(inner, pmem::kPmemBlockSize);
    return inner;
  }
  return reinterpret_cast<InnerNode*>(ref);
}

uint64_t BPlusTree::LeafRef(LeafNode* leaf) const {
  if (placement_ == Placement::kVolatile) return PtrRef(leaf);
  return pool_->ToOffset(leaf);
}

Result<uint64_t> BPlusTree::NewLeaf() {
  if (placement_ == Placement::kVolatile) {
    return PtrRef(new LeafNode{});
  }
  POSEIDON_ASSIGN_OR_RETURN(
      pmem::Offset off,
      pool_->AllocateZeroed(sizeof(LeafNode), pmem::kPmemBlockSize));
  return static_cast<uint64_t>(off);
}

Result<uint64_t> BPlusTree::NewInner() {
  if (placement_ == Placement::kPersistent) {
    POSEIDON_ASSIGN_OR_RETURN(
        pmem::Offset off,
        pool_->AllocateZeroed(sizeof(InnerNode), pmem::kPmemBlockSize));
    return static_cast<uint64_t>(off);
  }
  return PtrRef(new InnerNode{});
}

void BPlusTree::PersistLeaf(LeafNode* leaf, const void* addr, uint64_t len) {
  if (placement_ == Placement::kVolatile) return;
  (void)leaf;
  // Leaves mutate in place (memmove/memcpy over entry ranges), so the whole
  // persisted range is marked at once rather than per-field store.
  PsanMarkRange(pool_, addr, len);
  pool_->Persist(addr, len);
}

void BPlusTree::PersistInner(InnerNode* inner) {
  if (placement_ != Placement::kPersistent) return;
  PsanMarkRange(pool_, inner, sizeof(InnerNode));
  pool_->Persist(inner, sizeof(InnerNode));
}

// --- Lifecycle --------------------------------------------------------------

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(pmem::Pool* pool,
                                                     Placement placement) {
  if (placement != Placement::kVolatile && pool == nullptr) {
    return Status::InvalidArgument("pool required for persistent placements");
  }
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree());
  tree->pool_ = pool;
  tree->placement_ = placement;
  POSEIDON_ASSIGN_OR_RETURN(tree->root_, tree->NewLeaf());
  tree->first_leaf_ = tree->root_;
  tree->height_ = 1;
  if (placement != Placement::kVolatile) {
    POSEIDON_ASSIGN_OR_RETURN(tree->meta_off_,
                              pool->AllocateZeroed(sizeof(Meta)));
    auto* meta = pool->ToPtr<Meta>(tree->meta_off_);
    // The handle publishes the first leaf (just AllocateZeroed'd + flushed).
    PsanPublish(pool, &meta->first_leaf, tree->first_leaf_, tree->first_leaf_,
                sizeof(LeafNode));
    pool->Persist(meta, sizeof(Meta));
  }
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(pmem::Pool* pool,
                                                   Placement placement,
                                                   pmem::Offset meta_off) {
  if (placement == Placement::kVolatile) {
    return Status::InvalidArgument("volatile trees cannot be reopened");
  }
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree());
  tree->pool_ = pool;
  tree->placement_ = placement;
  tree->meta_off_ = meta_off;
  const auto* meta = pool->ToPtr<Meta>(meta_off);
  tree->first_leaf_ = meta->first_leaf;
  POSEIDON_RETURN_IF_ERROR(tree->RebuildInner());
  return tree;
}

void BPlusTree::FreeInnerRecursive(uint64_t ref, int level) {
  // level counts down; level == 1 means children are leaves.
  if (placement_ == Placement::kPersistent) return;  // pool nodes stay
  auto* inner = reinterpret_cast<InnerNode*>(ref);
  if (level > 1) {
    for (uint32_t i = 0; i <= inner->count; ++i) {
      FreeInnerRecursive(inner->children[i], level - 1);
    }
  } else if (placement_ == Placement::kVolatile) {
    for (uint32_t i = 0; i <= inner->count; ++i) {
      delete reinterpret_cast<LeafNode*>(inner->children[i]);
    }
  }
  delete inner;
}

BPlusTree::~BPlusTree() {
  if (placement_ == Placement::kPersistent) return;
  if (height_ == 1) {
    if (placement_ == Placement::kVolatile) {
      delete reinterpret_cast<LeafNode*>(root_);
    }
    return;
  }
  FreeInnerRecursive(root_, height_ - 1);
}

// --- Descent -----------------------------------------------------------------

uint64_t BPlusTree::FindLeaf(
    BTreeKey key, std::vector<std::pair<uint64_t, int>>* path) const {
  uint64_t ref = root_;
  for (int level = height_; level > 1; --level) {
    InnerNode* inner = ResolveInner(ref);
    // First separator strictly greater than key -> child index.
    uint32_t lo = 0, hi = inner->count;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (key < inner->keys[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (path != nullptr) path->emplace_back(ref, static_cast<int>(lo));
    ref = inner->children[lo];
  }
  return ref;
}

// --- Insert ------------------------------------------------------------------

Status BPlusTree::Insert(BTreeKey key, RecordId value) {
  std::unique_lock lock(mu_);
  std::vector<std::pair<uint64_t, int>> path;
  uint64_t leaf_ref = FindLeaf(key, &path);
  LeafNode* leaf = ResolveLeaf(leaf_ref);

  auto* begin = leaf->entries;
  auto* end = leaf->entries + leaf->count;
  auto* pos = std::lower_bound(
      begin, end, key,
      [](const LeafNode::Entry& e, const BTreeKey& k) { return e.key < k; });
  if (pos != end && pos->key == key) {
    return Status::AlreadyExists("duplicate index key");
  }

  if (leaf->count < kLeafEntries) {
    std::memmove(pos + 1, pos, (end - pos) * sizeof(LeafNode::Entry));
    pos->key = key;
    pos->value = value;
    ++leaf->count;
    PersistLeaf(leaf, leaf, sizeof(LeafNode));
    ++size_;
    return Status::Ok();
  }

  // Split: upper half moves to a new right sibling.
  POSEIDON_ASSIGN_OR_RETURN(uint64_t new_ref, NewLeaf());
  // psan: whole node marked in PersistLeaf
  LeafNode* right = placement_ == Placement::kVolatile
                        ? reinterpret_cast<LeafNode*>(new_ref)
                        : pool_->ToPtr<LeafNode>(new_ref);
  uint32_t split = kLeafEntries / 2;
  right->count = kLeafEntries - split;
  std::memcpy(right->entries, leaf->entries + split,
              right->count * sizeof(LeafNode::Entry));
  right->next = leaf->next;
  PersistLeaf(right, right, sizeof(LeafNode));
  leaf->count = split;
  leaf->next = new_ref;
  PersistLeaf(leaf, leaf, sizeof(LeafNode));

  // Re-insert into the correct half.
  BTreeKey sep = right->entries[0].key;
  LeafNode* target = key < sep ? leaf : right;
  auto* tbegin = target->entries;
  auto* tend = target->entries + target->count;
  auto* tpos = std::lower_bound(
      tbegin, tend, key,
      [](const LeafNode::Entry& e, const BTreeKey& k) { return e.key < k; });
  std::memmove(tpos + 1, tpos, (tend - tpos) * sizeof(LeafNode::Entry));
  tpos->key = key;
  tpos->value = value;
  ++target->count;
  PersistLeaf(target, target, sizeof(LeafNode));
  ++size_;

  return InsertIntoParent(path, sep, new_ref);
}

Status BPlusTree::InsertIntoParent(
    std::vector<std::pair<uint64_t, int>>& path, BTreeKey sep,
    uint64_t new_child) {
  while (!path.empty()) {
    auto [ref, slot] = path.back();
    path.pop_back();
    InnerNode* inner = ResolveInner(ref);
    if (inner->count < kInnerEntries) {
      std::memmove(&inner->keys[slot + 1], &inner->keys[slot],
                   (inner->count - slot) * sizeof(BTreeKey));
      std::memmove(&inner->children[slot + 2], &inner->children[slot + 1],
                   (inner->count - slot) * sizeof(uint64_t));
      inner->keys[slot] = sep;
      inner->children[slot + 1] = new_child;
      ++inner->count;
      PersistInner(inner);
      return Status::Ok();
    }
    // Split inner node; middle key moves up.
    POSEIDON_ASSIGN_OR_RETURN(uint64_t new_ref, NewInner());
    // psan: whole node marked in PersistInner
    InnerNode* right = placement_ == Placement::kPersistent
                           ? pool_->ToPtr<InnerNode>(new_ref)
                           : reinterpret_cast<InnerNode*>(new_ref);
    uint32_t mid = kInnerEntries / 2;

    // Conceptually insert (sep, new_child) at `slot` into the full node,
    // then split around the middle. Do it via a scratch copy for clarity.
    BTreeKey keys[kInnerEntries + 1];
    uint64_t children[kInnerEntries + 2];
    std::memcpy(keys, inner->keys, slot * sizeof(BTreeKey));
    keys[slot] = sep;
    std::memcpy(keys + slot + 1, inner->keys + slot,
                (kInnerEntries - slot) * sizeof(BTreeKey));
    std::memcpy(children, inner->children, (slot + 1) * sizeof(uint64_t));
    children[slot + 1] = new_child;
    std::memcpy(children + slot + 2, inner->children + slot + 1,
                (kInnerEntries - slot) * sizeof(uint64_t));

    BTreeKey up = keys[mid];
    inner->count = mid;
    std::memcpy(inner->keys, keys, mid * sizeof(BTreeKey));
    std::memcpy(inner->children, children, (mid + 1) * sizeof(uint64_t));
    right->count = kInnerEntries - mid;
    std::memcpy(right->keys, keys + mid + 1,
                right->count * sizeof(BTreeKey));
    std::memcpy(right->children, children + mid + 1,
                (right->count + 1) * sizeof(uint64_t));
    PersistInner(inner);
    PersistInner(right);
    sep = up;
    new_child = new_ref;
  }

  // Root split.
  POSEIDON_ASSIGN_OR_RETURN(uint64_t new_root_ref, NewInner());
  // psan: whole node marked in PersistInner
  InnerNode* new_root = placement_ == Placement::kPersistent
                            ? pool_->ToPtr<InnerNode>(new_root_ref)
                            : reinterpret_cast<InnerNode*>(new_root_ref);
  new_root->count = 1;
  new_root->keys[0] = sep;
  new_root->children[0] = root_;
  new_root->children[1] = new_child;
  PersistInner(new_root);
  root_ = new_root_ref;
  ++height_;
  return Status::Ok();
}

// --- Lookup / scan -----------------------------------------------------------

Result<RecordId> BPlusTree::Lookup(BTreeKey key) const {
  std::shared_lock lock(mu_);
  uint64_t leaf_ref = FindLeaf(key, nullptr);
  const LeafNode* leaf = ResolveLeaf(leaf_ref);
  const auto* end = leaf->entries + leaf->count;
  const auto* pos = std::lower_bound(
      leaf->entries + 0, end, key,
      [](const LeafNode::Entry& e, const BTreeKey& k) { return e.key < k; });
  if (pos == end || !(pos->key == key)) {
    return Status::NotFound("index key not found");
  }
  return static_cast<RecordId>(pos->value);
}

void BPlusTree::ScanRange(
    BTreeKey lo, BTreeKey hi,
    const std::function<bool(const BTreeKey&, RecordId)>& fn) const {
  std::shared_lock lock(mu_);
  uint64_t leaf_ref = FindLeaf(lo, nullptr);
  while (leaf_ref != 0) {
    LeafNode* leaf = ResolveLeaf(leaf_ref);
    for (uint32_t i = 0; i < leaf->count; ++i) {
      const auto& e = leaf->entries[i];
      if (e.key < lo) continue;
      if (hi < e.key) return;
      if (!fn(e.key, e.value)) return;
    }
    leaf_ref = leaf->next;
  }
}

// --- Remove ------------------------------------------------------------------

Status BPlusTree::Remove(BTreeKey key) {
  std::unique_lock lock(mu_);
  uint64_t leaf_ref = FindLeaf(key, nullptr);
  LeafNode* leaf = ResolveLeaf(leaf_ref);
  auto* end = leaf->entries + leaf->count;
  auto* pos = std::lower_bound(
      leaf->entries, end, key,
      [](const LeafNode::Entry& e, const BTreeKey& k) { return e.key < k; });
  if (pos == end || !(pos->key == key)) {
    return Status::NotFound("index key not found");
  }
  std::memmove(pos, pos + 1, (end - pos - 1) * sizeof(LeafNode::Entry));
  --leaf->count;
  PersistLeaf(leaf, leaf, sizeof(LeafNode));
  --size_;
  return Status::Ok();
}

uint64_t BPlusTree::size() const {
  std::shared_lock lock(mu_);
  return size_;
}

// --- Recovery ----------------------------------------------------------------

Status BPlusTree::RebuildInner() {
  std::unique_lock lock(mu_);
  if (placement_ == Placement::kVolatile) {
    return Status::InvalidArgument("volatile trees have no persistent leaves");
  }
  // Drop existing DRAM inner levels (hybrid only).
  if (height_ > 1 && placement_ == Placement::kHybrid) {
    // Inner nodes only; leaves are pool-resident and must survive.
    std::vector<uint64_t> level{root_};
    for (int l = height_; l > 1; --l) {
      std::vector<uint64_t> next_level;
      for (uint64_t ref : level) {
        auto* inner = reinterpret_cast<InnerNode*>(ref);
        if (l > 2) {
          for (uint32_t i = 0; i <= inner->count; ++i) {
            next_level.push_back(inner->children[i]);
          }
        }
        delete inner;
      }
      level = std::move(next_level);
    }
  }

  // Collect (first key, ref) of every non-empty leaf in chain order.
  std::vector<std::pair<BTreeKey, uint64_t>> level;
  size_ = 0;
  uint64_t ref = first_leaf_;
  bool first = true;
  while (ref != 0) {
    LeafNode* leaf = ResolveLeaf(ref);
    size_ += leaf->count;
    if (leaf->count > 0 || first) {
      BTreeKey k = leaf->count > 0 ? leaf->entries[0].key : BTreeKey{};
      level.emplace_back(k, ref);
    }
    first = false;
    ref = leaf->next;
  }
  if (level.size() == 1) {
    root_ = level[0].second;
    height_ = 1;
    return Status::Ok();
  }

  // Bulk-build inner levels bottom-up.
  int h = 1;
  while (level.size() > 1) {
    std::vector<std::pair<BTreeKey, uint64_t>> parents;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = std::min<size_t>(kInnerEntries + 1, level.size() - i);
      if (level.size() - (i + take) == 1) --take;  // avoid a 1-child parent
      POSEIDON_ASSIGN_OR_RETURN(uint64_t iref, NewInner());
      // psan: whole node marked in PersistInner
      InnerNode* inner = placement_ == Placement::kPersistent
                             ? pool_->ToPtr<InnerNode>(iref)
                             : reinterpret_cast<InnerNode*>(iref);
      inner->count = static_cast<uint32_t>(take - 1);
      for (size_t c = 0; c < take; ++c) {
        inner->children[c] = level[i + c].second;
        if (c > 0) inner->keys[c - 1] = level[i + c].first;
      }
      PersistInner(inner);
      parents.emplace_back(level[i].first, iref);
      i += take;
    }
    level = std::move(parents);
    ++h;
  }
  root_ = level[0].second;
  height_ = h;
  return Status::Ok();
}

bool BPlusTree::ContainsPoolOffset(pmem::Offset line_off) const {
  if (placement_ == Placement::kVolatile) return false;
  std::shared_lock lock(mu_);
  pmem::Offset line_end = line_off + pmem::kCacheLineSize;
  auto overlaps = [&](uint64_t base, uint64_t len) {
    return base != 0 && base < line_end && line_off < base + len;
  };
  if (overlaps(meta_off_, sizeof(Meta))) return true;
  // Leaf chain. The ownership test precedes every `next` dereference, so a
  // corrupt line inside the node being examined is claimed without reading
  // through it; a wild `next` (from a second, unrelated fault) just bounds-
  // checks out and ends the walk.
  uint64_t hops = 0;
  uint64_t max_hops = pool_->capacity() / sizeof(LeafNode) + 2;
  for (uint64_t ref = first_leaf_; ref != 0;) {
    if (overlaps(ref, sizeof(LeafNode))) return true;
    if (ref + sizeof(LeafNode) > pool_->capacity() || ++hops > max_hops) break;
    ref = pool_->ToPtr<LeafNode>(ref)->next;
  }
  if (placement_ == Placement::kPersistent && height_ > 1) {
    std::vector<uint64_t> level{root_};
    for (int l = height_; l > 1; --l) {
      std::vector<uint64_t> next_level;
      for (uint64_t ref : level) {
        if (overlaps(ref, sizeof(InnerNode))) return true;
        if (ref + sizeof(InnerNode) > pool_->capacity()) continue;
        // psan: read-only level walk, no stores through this pointer
        const auto* inner = pool_->ToPtr<InnerNode>(ref);
        if (l > 2 && inner->count <= kInnerEntries) {
          for (uint32_t i = 0; i <= inner->count; ++i) {
            next_level.push_back(inner->children[i]);
          }
        }
      }
      level = std::move(next_level);
    }
  }
  return false;
}

}  // namespace poseidon::index
