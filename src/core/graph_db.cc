#include "core/graph_db.h"

#include "pmem/psan.h"
#include "util/env.h"

namespace poseidon::core {

GraphDb::~GraphDb() {
  // Stop the scrubber before anything it can reach through the corruption
  // handler (store, indexes, transaction manager) is torn down.
  if (scrubber_ != nullptr) scrubber_->Stop();
  if (pool_ != nullptr) pool_->SetCorruptionHandler(nullptr);
  if (engine_ != nullptr) engine_->WaitForBackgroundCompiles();
}

Result<std::unique_ptr<GraphDb>> GraphDb::Create(
    const GraphDbOptions& options) {
  return Init(options, /*create=*/true);
}

Result<std::unique_ptr<GraphDb>> GraphDb::Open(const GraphDbOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("volatile databases cannot be reopened");
  }
  return Init(options, /*create=*/false);
}

Result<std::unique_ptr<GraphDb>> GraphDb::Init(const GraphDbOptions& options,
                                               bool create) {
  auto db = std::unique_ptr<GraphDb>(new GraphDb());

  pmem::PoolOptions pool_options;
  pool_options.capacity = options.capacity;
  pool_options.mode =
      options.path.empty() ? pmem::PoolMode::kDram : pmem::PoolMode::kPmem;
  pool_options.crash_shadow = options.crash_shadow;
  pool_options.has_latency_override = options.has_latency_override;
  pool_options.latency_override = options.latency_override;
  pool_options.commit_pipeline = options.commit_pipeline;
  pool_options.redo_segments = options.redo_segments;

  if (create) {
    POSEIDON_ASSIGN_OR_RETURN(db->pool_,
                              pmem::Pool::Create(options.path, pool_options));
    POSEIDON_ASSIGN_OR_RETURN(db->store_,
                              storage::GraphStore::Create(db->pool_.get()));
  } else {
    POSEIDON_ASSIGN_OR_RETURN(db->pool_,
                              pmem::Pool::Open(options.path, pool_options));
    POSEIDON_ASSIGN_OR_RETURN(db->store_,
                              storage::GraphStore::Open(db->pool_.get()));
  }
  db->recovered_ = db->pool_->recovered_from_crash();

  db->indexes_ = std::make_unique<index::IndexManager>(db->store_.get());
  if (!create) {
    // Hybrid/persistent indexes recover by rebuilding DRAM inner levels.
    POSEIDON_RETURN_IF_ERROR(db->indexes_->LoadPersistent());
  }

  db->txm_ = std::make_unique<tx::TransactionManager>(db->store_.get(),
                                                      db->indexes_.get());
  if (db->recovered_) {
    POSEIDON_RETURN_IF_ERROR(db->txm_->RecoverInFlight());
  }

  if (db->pool_->checksums_enabled()) {
    // Read-repair wiring: corrupt lines route storage-first (tables,
    // dictionary, root), then to the index rebuild leg; anything unclaimed
    // falls back to the pool's default (quarantine). Record resurrection
    // rolls a corrupt slot back to its newest retained DRAM version.
    storage::GraphStore* store = db->store_.get();
    index::IndexManager* indexes = db->indexes_.get();
    tx::TransactionManager* txm = db->txm_.get();
    store->SetResurrectors(
        [txm](storage::RecordId id, storage::NodeRecord* out) {
          return txm->ResurrectNode(id, out);
        },
        [txm](storage::RecordId id, storage::RelationshipRecord* out) {
          return txm->ResurrectRel(id, out);
        });
    db->pool_->SetCorruptionHandler(
        [store, indexes](pmem::Offset line_off) {
          if (auto out = store->RepairLine(line_off)) return *out;
          if (auto out = indexes->RepairLine(line_off)) return *out;
          return pmem::Pool::RepairOutcome::kUnrepairable;
        });
    db->scrubber_ = std::make_unique<pmem::Scrubber>(db->pool_.get());
    if (util::EnvU64("POSEIDON_SCRUB", 0) == 1) db->scrubber_->Start();
  }

  if (options.enable_query_cache &&
      db->pool_->mode() == pmem::PoolMode::kPmem) {
    auto* root = db->store_->root();
    if (root->qcache_meta != 0) {
      POSEIDON_ASSIGN_OR_RETURN(
          db->qcache_, jit::QueryCache::Open(db->pool_.get(),
                                             root->qcache_meta));
    } else {
      POSEIDON_ASSIGN_OR_RETURN(db->qcache_,
                                jit::QueryCache::Create(db->pool_.get()));
      root->qcache_meta = db->qcache_->meta_offset();
      db->pool_->Persist(&root->qcache_meta, sizeof(pmem::Offset));
    }
  }

  POSEIDON_ASSIGN_OR_RETURN(
      db->engine_,
      jit::JitQueryEngine::Create(db->store_.get(), db->indexes_.get(),
                                  options.query_threads, db->qcache_.get()));
  db->engine_->set_scan_options(options.scan);
  return db;
}

std::string GraphDb::Explain(const query::Plan& plan) const {
  query::ExplainAnnotation ann;
  ann.threads = engine_->pool()->num_threads();
  ann.morsel = query::QueryEngine::kMorselSize;
  ann.batch = engine_->scan_options().batch_enabled;
  const tx::AdjacencyCacheStats adj = txm_->adjacency_cache().stats();
  ann.adj_cache =
      engine_->adj_cache_enabled() && txm_->adjacency_cache().enabled();
  ann.adj_hits = adj.hits;
  ann.adj_misses = adj.misses;
  ann.adj_invalidations = adj.invalidations;
  ann.adj_evictions = adj.evictions;
  const tx::TxStats txs = txm_->Stats();
  ann.rts_coalesce = txm_->rts_coalesce();
  ann.rts_skipped = txs.rts_skipped;
  ann.rts_deferred = txs.rts_deferred;
  ann.snapshot_reuse = txm_->snapshot_epoch_us() > 0;
  ann.snapshot_ts = txm_->snapshot_ts();
  ann.scrub_on = pool_->checksums_enabled();
  const pmem::Pool::ScrubStats& ss = pool_->scrub_stats();
  ann.scrub_verified = ss.lines_verified.load(std::memory_order_relaxed);
  ann.scrub_repaired = ss.repaired.load(std::memory_order_relaxed);
  ann.scrub_quarantined = pool_->quarantined_lines();
  ann.deadline_ms = txm_->default_deadline_ms();
  ann.max_writers = txm_->max_writers();
  ann.overload = ann.deadline_ms > 0 || ann.max_writers > 0 ||
                 pool_->soft_watermark_pct() > 0;
  ann.active_writers = txm_->active_writers();
  ann.aborts_conflict = txs.aborts_conflict;
  ann.aborts_deadline = txs.aborts_deadline;
  ann.aborts_cancelled = txs.aborts_cancelled;
  ann.aborts_space = txs.aborts_space;
  ann.writers_shed = txs.writers_shed;
  ann.space_denied = txs.space_denied;
  return plan.ToString(&store_->dict(), &ann);
}

GraphDb::HealthReport GraphDb::Health() const {
  HealthReport h;
  h.recovery = pool_->recovery_report();
  const pmem::Pool::ScrubStats& ss = pool_->scrub_stats();
  h.scrub_lines_verified = ss.lines_verified.load(std::memory_order_relaxed);
  h.scrub_mismatches = ss.mismatches.load(std::memory_order_relaxed);
  h.scrub_repaired = ss.repaired.load(std::memory_order_relaxed);
  h.scrub_adopted = ss.adopted.load(std::memory_order_relaxed);
  h.scrub_quarantined = ss.quarantined.load(std::memory_order_relaxed);
  h.scrub_resealed = ss.resealed.load(std::memory_order_relaxed);
  h.quarantined_lines = pool_->quarantined_lines();
  h.checksums_enabled = pool_->checksums_enabled();
  if (scrubber_ != nullptr) {
    h.scrub_passes = scrubber_->passes();
    h.scrubber_running = scrubber_->running();
    h.scrub_rate_mb_s = scrubber_->rate_mb_s();
  }
  h.psan_violations = pmem::PsanTotalViolations();
  const tx::TxStats txs = txm_->Stats();
  h.aborts_conflict = txs.aborts_conflict;
  h.aborts_deadline = txs.aborts_deadline;
  h.aborts_cancelled = txs.aborts_cancelled;
  h.aborts_space = txs.aborts_space;
  h.writers_shed = txs.writers_shed;
  h.space_denied = txs.space_denied;
  h.active_writers = txm_->active_writers();
  h.max_writers = txm_->max_writers();
  h.pool_bytes_used = pool_->bytes_used();
  h.pool_capacity = pool_->capacity();
  h.soft_watermark_pct = pool_->soft_watermark_pct();
  h.above_soft_watermark = pool_->AboveSoftWatermark();
  h.alloc_failures =
      pool_->stats().alloc_failures.load(std::memory_order_relaxed);
  return h;
}

Result<query::QueryResult> GraphDb::Execute(
    const query::Plan& plan, jit::ExecutionMode mode,
    const std::vector<query::Value>& params, jit::ExecStats* stats,
    int64_t deadline_ms) {
  auto tx = Begin();
  if (deadline_ms > 0) {
    tx->cancel_token()->SetDeadlineAfterMs(deadline_ms);  // per-query override
  }
  auto result = ExecuteIn(plan, tx.get(), params, mode, stats);
  if (!result.ok()) {
    // Classify the failure (deadline / cancel / space / conflict) so the
    // manager's abort taxonomy counts it, then unwind the transaction.
    tx->RecordAbortCause(result.status());
    tx->Abort();
    return result.status();
  }
  POSEIDON_RETURN_IF_ERROR(tx->Commit());
  return std::move(*result);
}

Result<query::QueryResult> GraphDb::ExecuteIn(
    const query::Plan& plan, tx::Transaction* tx,
    const std::vector<query::Value>& params, jit::ExecutionMode mode,
    jit::ExecStats* stats, const jit::JitOptions& options) {
  if (stats == nullptr || !pool_->checksums_enabled()) {
    return engine_->Execute(plan, tx, params, mode, stats, options);
  }
  // Attribute scrub activity overlapping this execution (background pass
  // plus any first-touch verification the query itself triggered).
  const pmem::Pool::ScrubStats& ss = pool_->scrub_stats();
  uint64_t v0 = ss.lines_verified.load(std::memory_order_relaxed);
  uint64_t r0 = ss.repaired.load(std::memory_order_relaxed);
  uint64_t q0 = ss.quarantined.load(std::memory_order_relaxed);
  auto result = engine_->Execute(plan, tx, params, mode, stats, options);
  stats->scrub_verified =
      ss.lines_verified.load(std::memory_order_relaxed) - v0;
  stats->scrub_repaired = ss.repaired.load(std::memory_order_relaxed) - r0;
  stats->scrub_quarantined =
      ss.quarantined.load(std::memory_order_relaxed) - q0;
  return result;
}

Status GraphDb::CreateIndex(std::string_view label, std::string_view key,
                            index::Placement placement) {
  POSEIDON_ASSIGN_OR_RETURN(storage::DictCode label_code, Code(label));
  POSEIDON_ASSIGN_OR_RETURN(storage::DictCode key_code, Code(key));
  return indexes_->CreateIndex(label_code, key_code, placement).status();
}

}  // namespace poseidon::core
