// GraphDb: the public entry point of the engine — one object wiring the
// PMem pool, graph storage, MVTO transactions, secondary indexes, and the
// AOT/JIT/adaptive query engines together (the full architecture of the
// paper).
//
// Typical usage:
//
//   core::GraphDbOptions options;
//   options.path = "/mnt/pmem/social.graph";    // "" = pure DRAM mode
//   auto db = core::GraphDb::Create(options);   // or Open() to recover
//   auto tx = (*db)->Begin();
//   auto alice = tx->CreateNode(*(*db)->Code("Person"),
//                               {{*(*db)->Code("name"), PVal::Int(1)}});
//   tx->Commit();
//
//   query::Plan plan = query::PlanBuilder().NodeScan(person).Count().Build();
//   auto result = (*db)->Execute(plan, jit::ExecutionMode::kAdaptive);

#ifndef POSEIDON_CORE_GRAPH_DB_H_
#define POSEIDON_CORE_GRAPH_DB_H_

#include <memory>
#include <string>

#include "jit/jit_query_engine.h"
#include "pmem/scrubber.h"

namespace poseidon::core {

struct GraphDbOptions {
  /// Pool file path. Empty = volatile DRAM mode (the paper's DRAM
  /// baseline: no persistence, no PMem latency emulation).
  std::string path;
  uint64_t capacity = 1ull << 30;
  /// Worker threads for parallel / adaptive execution.
  size_t query_threads = 4;
  /// Persist compiled query code in the pool (pmem mode only).
  bool enable_query_cache = true;
  /// Track flushes so tests can SimulateCrash().
  bool crash_shadow = false;
  /// Override the emulated-PMem latency model (e.g. LatencyModel::Dram()
  /// to measure pure software overhead).
  bool has_latency_override = false;
  pmem::LatencyModel latency_override;
  /// Batched-scan knobs (batch size, prefetch distance, batching on/off)
  /// applied to all executions; defaults honour the POSEIDON_SCAN_* env
  /// variables for ablation sweeps.
  storage::ScanOptions scan = storage::ScanOptions::FromEnv();
  /// Parallel commit pipeline master switch: -1 = POSEIDON_COMMIT_PIPELINE
  /// env (default on). Off reproduces the serialized baseline commit path
  /// for ablations.
  int commit_pipeline = -1;
  /// Redo-log segment count: 0 = POSEIDON_REDO_SEGMENTS env (default 8).
  uint32_t redo_segments = 0;
};

class GraphDb {
 public:
  /// Creates a new database. Fails if a pmem file already exists at path.
  static Result<std::unique_ptr<GraphDb>> Create(const GraphDbOptions& options);

  /// Opens an existing database, running crash recovery when the previous
  /// session did not shut down cleanly: redo-log replay (pool open),
  /// in-flight transaction rollback, and hybrid index inner rebuild.
  static Result<std::unique_ptr<GraphDb>> Open(const GraphDbOptions& options);

  GraphDb(const GraphDb&) = delete;
  GraphDb& operator=(const GraphDb&) = delete;
  ~GraphDb();

  /// Starts an MVTO transaction (snapshot isolation, §5).
  std::unique_ptr<tx::Transaction> Begin() { return txm_->Begin(); }

  /// Starts a writer transaction through the admission gate (overload
  /// governance): sheds with ResourceExhausted when POSEIDON_MAX_WRITERS
  /// writers are already in flight after a bounded backoff wait, or when the
  /// pool sits above its soft space watermark even after emergency GC.
  Result<std::unique_ptr<tx::Transaction>> BeginWrite() {
    return txm_->BeginWrite();
  }

  /// Cooperatively cancels the work running under `tx`: interpreter push
  /// loops, compiled scan/expand loops, morsel workers, and analytics
  /// snapshot builds observe the token at batch granularity and abort with
  /// kCancelled. Safe from any thread.
  static void Cancel(tx::Transaction* tx) { tx->cancel_token()->Cancel(); }

  /// Starts a read-only transaction. With snapshot reuse enabled
  /// (POSEIDON_SNAPSHOT_EPOCH_US > 0, the default) it reads at the shared
  /// published snapshot timestamp and never mutates shared state — no
  /// timestamp allocation, no per-record rts bumps (§5 read path,
  /// DESIGN.md "Read-path scalability").
  std::unique_ptr<tx::Transaction> BeginReadOnly() {
    return txm_->BeginReadOnly();
  }

  /// Interns a label / property-key / string value.
  Result<storage::DictCode> Code(std::string_view s) {
    return store_->Code(s);
  }
  Result<std::string_view> Decode(storage::DictCode code) const {
    return store_->dict().Decode(code);
  }

  /// Executes a plan in its own transaction (committed on success, aborted
  /// with the cause recorded on failure). `deadline_ms` > 0 overrides the
  /// manager-wide POSEIDON_QUERY_DEADLINE_MS default for this query only.
  Result<query::QueryResult> Execute(
      const query::Plan& plan,
      jit::ExecutionMode mode = jit::ExecutionMode::kInterpret,
      const std::vector<query::Value>& params = {},
      jit::ExecStats* stats = nullptr, int64_t deadline_ms = 0);

  /// Executes a plan inside a caller-managed transaction.
  Result<query::QueryResult> ExecuteIn(
      const query::Plan& plan, tx::Transaction* tx,
      const std::vector<query::Value>& params,
      jit::ExecutionMode mode = jit::ExecutionMode::kInterpret,
      jit::ExecStats* stats = nullptr,
      const jit::JitOptions& options = {});

  /// Creates (and bulk-loads) a secondary index on (label, property).
  Status CreateIndex(std::string_view label, std::string_view key,
                     index::Placement placement = index::Placement::kHybrid);

  /// Batched-scan knobs; settable at runtime for ablation.
  const storage::ScanOptions& scan_options() const {
    return engine_->scan_options();
  }
  void set_scan_options(const storage::ScanOptions& o) {
    engine_->set_scan_options(o);
  }

  /// Versioned DRAM adjacency cache; settable at runtime for ablation.
  /// Toggles both the runtime cache (interpreter / JIT helper) and the
  /// compiled-code variant baked into newly generated Expand loops.
  bool adj_cache_enabled() const { return engine_->adj_cache_enabled(); }
  void set_adj_cache_enabled(bool on) {
    engine_->set_adj_cache_enabled(on);
    txm_->adjacency_cache().set_enabled(on);
  }

  /// EXPLAIN: renders `plan` with execution-mode annotations on the
  /// pipeline source (worker threads, morsel size, batching state).
  std::string Explain(const query::Plan& plan) const;

  /// True if Open() had to recover from an unclean shutdown.
  bool recovered_from_crash() const { return recovered_; }

  /// One-stop integrity snapshot: the last recovery's outcome plus the live
  /// scrub / repair / quarantine counters (see DESIGN.md "Online scrubbing
  /// & media faults").
  struct HealthReport {
    pmem::RecoveryReport recovery;  ///< redo-log recovery of the last Open
    uint64_t scrub_lines_verified = 0;
    uint64_t scrub_mismatches = 0;
    uint64_t scrub_repaired = 0;
    uint64_t scrub_adopted = 0;
    uint64_t scrub_quarantined = 0;
    uint64_t scrub_resealed = 0;
    uint64_t scrub_passes = 0;       ///< background full passes completed
    uint64_t quarantined_lines = 0;  ///< currently quarantined 64 B lines
    bool checksums_enabled = false;
    bool scrubber_running = false;
    uint64_t scrub_rate_mb_s = 0;
    uint64_t psan_violations = 0;
    /// Overload governance: abort-cause taxonomy, admission-gate sheds, and
    /// pool space pressure (see DESIGN.md "Overload governance").
    uint64_t aborts_conflict = 0;
    uint64_t aborts_deadline = 0;
    uint64_t aborts_cancelled = 0;
    uint64_t aborts_space = 0;
    uint64_t writers_shed = 0;   ///< BeginWrite denied: too many writers
    uint64_t space_denied = 0;   ///< BeginWrite denied: above soft watermark
    int64_t active_writers = 0;
    int64_t max_writers = 0;     ///< 0 = admission gate off
    uint64_t pool_bytes_used = 0;
    uint64_t pool_capacity = 0;
    uint32_t soft_watermark_pct = 0;  ///< 0 = watermark off
    bool above_soft_watermark = false;
    uint64_t alloc_failures = 0;  ///< pool allocations denied (incl. faults)
  };
  HealthReport Health() const;

  /// Background scrubber (null when the pool maintains no checksums).
  /// Started automatically when POSEIDON_SCRUB=1; tests drive ScrubOnce().
  pmem::Scrubber* scrubber() { return scrubber_.get(); }

  // Component access for benchmarks, tests, and advanced users.
  pmem::Pool* pool() { return pool_.get(); }
  storage::GraphStore* store() { return store_.get(); }
  tx::TransactionManager* txm() { return txm_.get(); }
  index::IndexManager* indexes() { return indexes_.get(); }
  jit::JitQueryEngine* engine() { return engine_.get(); }
  jit::QueryCache* query_cache() { return qcache_.get(); }

 private:
  GraphDb() = default;

  static Result<std::unique_ptr<GraphDb>> Init(const GraphDbOptions& options,
                                               bool create);

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<pmem::Scrubber> scrubber_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<index::IndexManager> indexes_;
  std::unique_ptr<tx::TransactionManager> txm_;
  std::unique_ptr<jit::QueryCache> qcache_;
  std::unique_ptr<jit::JitQueryEngine> engine_;
  bool recovered_ = false;
};

}  // namespace poseidon::core

#endif  // POSEIDON_CORE_GRAPH_DB_H_
