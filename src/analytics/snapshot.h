// Analytical graph snapshots (paper §8 "In our ongoing work, we plan to
// investigate the behavior of complex graph analytics").
//
// Analytics need tight loops over adjacency, not per-record MVTO version
// resolution. Following the semi-asymmetric approach the paper discusses for
// Sage [9], a GraphSnapshot materializes the transaction-consistent
// visible subgraph into a compact DRAM CSR (compressed sparse row) image:
// the persistent tables stay the single source of truth, analytics run at
// DRAM speed on an immutable copy, and transactional updates continue
// concurrently (HTAP).

#ifndef POSEIDON_ANALYTICS_SNAPSHOT_H_
#define POSEIDON_ANALYTICS_SNAPSHOT_H_

#include <vector>

#include "tx/transaction.h"

namespace poseidon::analytics {

struct SnapshotOptions {
  /// Only nodes with this label (0 = all labels).
  storage::DictCode node_label = storage::kInvalidCode;
  /// Only relationships with this label (0 = all).
  storage::DictCode rel_label = storage::kInvalidCode;
  /// Also build the reverse (incoming) adjacency.
  bool with_incoming = false;
};

/// Immutable CSR image of the subgraph visible to one transaction.
/// Vertices are dense ids [0, num_vertices); `record_of` maps back to the
/// storage-level record ids.
class GraphSnapshot {
 public:
  /// Materializes the snapshot; O(V + E) reads through the MVTO read path.
  static Result<GraphSnapshot> Build(tx::Transaction* tx,
                                     storage::GraphStore* store,
                                     const SnapshotOptions& options = {});

  uint32_t num_vertices() const {
    return static_cast<uint32_t>(record_of_.size());
  }
  uint64_t num_edges() const { return targets_.size(); }

  /// Dense vertex id for a record id; UINT32_MAX when not in the snapshot.
  uint32_t VertexOf(storage::RecordId id) const;
  storage::RecordId RecordOf(uint32_t v) const { return record_of_[v]; }

  /// Outgoing neighbors of dense vertex `v`.
  const uint32_t* OutBegin(uint32_t v) const {
    return targets_.data() + offsets_[v];
  }
  const uint32_t* OutEnd(uint32_t v) const {
    return targets_.data() + offsets_[v + 1];
  }
  uint32_t OutDegree(uint32_t v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Incoming neighbors (only when built with_incoming).
  const uint32_t* InBegin(uint32_t v) const {
    return in_targets_.data() + in_offsets_[v];
  }
  const uint32_t* InEnd(uint32_t v) const {
    return in_targets_.data() + in_offsets_[v + 1];
  }
  bool has_incoming() const { return !in_offsets_.empty(); }

 private:
  std::vector<storage::RecordId> record_of_;   // dense -> record id
  std::vector<uint64_t> offsets_;              // CSR row offsets (V+1)
  std::vector<uint32_t> targets_;              // CSR column indices (E)
  std::vector<uint64_t> in_offsets_;
  std::vector<uint32_t> in_targets_;
  // record id -> dense id (sparse map; record ids are table slots).
  std::vector<uint32_t> vertex_of_;
};

}  // namespace poseidon::analytics

#endif  // POSEIDON_ANALYTICS_SNAPSHOT_H_
