#include "analytics/snapshot.h"

namespace poseidon::analytics {

using storage::kInvalidCode;
using storage::RecordId;

uint32_t GraphSnapshot::VertexOf(RecordId id) const {
  if (id >= vertex_of_.size()) return UINT32_MAX;
  return vertex_of_[id];
}

Result<GraphSnapshot> GraphSnapshot::Build(tx::Transaction* tx,
                                           storage::GraphStore* store,
                                           const SnapshotOptions& options) {
  GraphSnapshot snap;
  uint64_t slots = store->nodes().NumSlots();
  snap.vertex_of_.assign(slots, UINT32_MAX);

  // Pass 1: enumerate visible nodes -> dense ids, via the batched scan
  // kernel (whole empty occupancy words skipped, records prefetched ahead
  // of the visibility check).
  storage::ScanOptions scan_opts;
  Status pass1_error;
  store->nodes().ForEachBatchRange(
      0, slots, scan_opts,
      [&](RecordId id, const storage::NodeRecord&) {
        if (!pass1_error.ok()) return;
        // Cancellation poll at batch granularity (overload governance):
        // bounds the latency of abandoning a whole-graph snapshot build.
        if ((id & 1023u) == 0) {
          Status c = tx->cancel_token()->Check();
          if (!c.ok()) {
            pass1_error = c;
            return;
          }
        }
        auto n = tx->GetNode(id);
        if (!n.ok()) {
          if (!n.status().IsNotFound()) pass1_error = n.status();
          return;
        }
        if (options.node_label != kInvalidCode &&
            n->rec.label != options.node_label) {
          return;
        }
        snap.vertex_of_[id] = static_cast<uint32_t>(snap.record_of_.size());
        snap.record_of_.push_back(id);
      });
  POSEIDON_RETURN_IF_ERROR(pass1_error);

  // Pass 2: CSR adjacency over visible relationships between snapshot
  // vertices.
  uint32_t num_v = snap.num_vertices();
  snap.offsets_.assign(num_v + 1, 0);
  std::vector<std::vector<uint32_t>> adj(num_v);
  for (uint32_t v = 0; v < num_v; ++v) {
    if ((v & 1023u) == 0) {
      POSEIDON_RETURN_IF_ERROR(tx->cancel_token()->Check());
    }
    // ForEachNeighbor adopts cached DRAM adjacency arrays wholesale when the
    // snapshot transaction may serve them, so repeated analytics builds skip
    // the PMem chain walk entirely.
    Status s = tx->ForEachNeighbor(
        snap.record_of_[v], tx::AdjDir::kOut,
        [&](RecordId, storage::DictCode rel_label, RecordId dst) {
          if (options.rel_label != kInvalidCode &&
              rel_label != options.rel_label) {
            return true;
          }
          uint32_t t = snap.VertexOf(dst);
          if (t != UINT32_MAX) adj[v].push_back(t);
          return true;
        });
    POSEIDON_RETURN_IF_ERROR(s);
  }
  for (uint32_t v = 0; v < num_v; ++v) {
    snap.offsets_[v + 1] = snap.offsets_[v] + adj[v].size();
  }
  snap.targets_.reserve(snap.offsets_[num_v]);
  for (uint32_t v = 0; v < num_v; ++v) {
    snap.targets_.insert(snap.targets_.end(), adj[v].begin(), adj[v].end());
  }

  if (options.with_incoming) {
    snap.in_offsets_.assign(num_v + 1, 0);
    for (uint32_t t : snap.targets_) snap.in_offsets_[t + 1]++;
    for (uint32_t v = 0; v < num_v; ++v) {
      snap.in_offsets_[v + 1] += snap.in_offsets_[v];
    }
    snap.in_targets_.resize(snap.targets_.size());
    std::vector<uint64_t> cursor(snap.in_offsets_.begin(),
                                 snap.in_offsets_.end() - 1);
    for (uint32_t v = 0; v < num_v; ++v) {
      for (const uint32_t* t = snap.OutBegin(v); t != snap.OutEnd(v); ++t) {
        snap.in_targets_[cursor[*t]++] = v;
      }
    }
  }
  return snap;
}

}  // namespace poseidon::analytics
