// Graph analytics over transaction-consistent snapshots (paper §8 preview):
// the compute-intensive, long-running workloads the paper defers to future
// work, implemented on the CSR snapshot so they coexist with transactional
// updates (HTAP).

#ifndef POSEIDON_ANALYTICS_ALGORITHMS_H_
#define POSEIDON_ANALYTICS_ALGORITHMS_H_

#include <vector>

#include "analytics/snapshot.h"

namespace poseidon::analytics {

inline constexpr uint32_t kUnreachable = UINT32_MAX;

/// Single-source BFS over outgoing edges; returns hop distances per dense
/// vertex (kUnreachable where no path exists).
std::vector<uint32_t> Bfs(const GraphSnapshot& g, uint32_t source);

/// PageRank with uniform teleport; `iterations` synchronous sweeps.
/// Dangling mass is redistributed uniformly. Returns one score per vertex,
/// summing to ~1.
std::vector<double> PageRank(const GraphSnapshot& g, int iterations = 20,
                             double damping = 0.85);

/// Weakly connected components (edges treated as undirected); returns the
/// component id (smallest member's dense id) per vertex and sets
/// *num_components.
std::vector<uint32_t> WeaklyConnectedComponents(const GraphSnapshot& g,
                                                uint32_t* num_components);

/// Counts undirected triangles (each counted once). Edge directions are
/// ignored; multi-edges and self-loops are skipped.
uint64_t CountTriangles(const GraphSnapshot& g);

/// Out-degree histogram: result[d] = number of vertices with out-degree d
/// (the tail is clamped into the last bucket).
std::vector<uint64_t> DegreeHistogram(const GraphSnapshot& g,
                                      uint32_t max_degree = 64);

}  // namespace poseidon::analytics

#endif  // POSEIDON_ANALYTICS_ALGORITHMS_H_
