#include "analytics/algorithms.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <set>

namespace poseidon::analytics {

std::vector<uint32_t> Bfs(const GraphSnapshot& g, uint32_t source) {
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  if (source >= g.num_vertices()) return dist;
  std::deque<uint32_t> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    uint32_t v = frontier.front();
    frontier.pop_front();
    for (const uint32_t* t = g.OutBegin(v); t != g.OutEnd(v); ++t) {
      if (dist[*t] != kUnreachable) continue;
      dist[*t] = dist[v] + 1;
      frontier.push_back(*t);
    }
  }
  return dist;
}

std::vector<double> PageRank(const GraphSnapshot& g, int iterations,
                             double damping) {
  uint32_t n = g.num_vertices();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0;
    std::fill(next.begin(), next.end(), 0.0);
    for (uint32_t v = 0; v < n; ++v) {
      uint32_t deg = g.OutDegree(v);
      if (deg == 0) {
        dangling += rank[v];
        continue;
      }
      double share = rank[v] / deg;
      for (const uint32_t* t = g.OutBegin(v); t != g.OutEnd(v); ++t) {
        next[*t] += share;
      }
    }
    double base = (1.0 - damping) / n + damping * dangling / n;
    for (uint32_t v = 0; v < n; ++v) {
      next[v] = base + damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<uint32_t> WeaklyConnectedComponents(const GraphSnapshot& g,
                                                uint32_t* num_components) {
  uint32_t n = g.num_vertices();
  // Union-find with path halving.
  std::vector<uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (uint32_t v = 0; v < n; ++v) {
    for (const uint32_t* t = g.OutBegin(v); t != g.OutEnd(v); ++t) {
      uint32_t a = find(v), b = find(*t);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<uint32_t> component(n);
  std::set<uint32_t> roots;
  for (uint32_t v = 0; v < n; ++v) {
    component[v] = find(v);
    roots.insert(component[v]);
  }
  if (num_components != nullptr) {
    *num_components = static_cast<uint32_t>(roots.size());
  }
  return component;
}

uint64_t CountTriangles(const GraphSnapshot& g) {
  uint32_t n = g.num_vertices();
  // Undirected neighbor sets, deduplicated, self-loops dropped.
  std::vector<std::vector<uint32_t>> nbr(n);
  for (uint32_t v = 0; v < n; ++v) {
    for (const uint32_t* t = g.OutBegin(v); t != g.OutEnd(v); ++t) {
      if (*t == v) continue;
      nbr[v].push_back(*t);
      nbr[*t].push_back(v);
    }
  }
  for (auto& list : nbr) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  // Count each triangle once via the ordered-triple convention v < a < b.
  uint64_t triangles = 0;
  for (uint32_t v = 0; v < n; ++v) {
    const auto& nv = nbr[v];
    for (uint32_t a : nv) {
      if (a <= v) continue;
      // Intersect nbr[v] and nbr[a] above `a`.
      const auto& na = nbr[a];
      auto it_v = std::upper_bound(nv.begin(), nv.end(), a);
      auto it_a = std::upper_bound(na.begin(), na.end(), a);
      while (it_v != nv.end() && it_a != na.end()) {
        if (*it_v < *it_a) {
          ++it_v;
        } else if (*it_a < *it_v) {
          ++it_a;
        } else {
          ++triangles;
          ++it_v;
          ++it_a;
        }
      }
    }
  }
  return triangles;
}

std::vector<uint64_t> DegreeHistogram(const GraphSnapshot& g,
                                      uint32_t max_degree) {
  std::vector<uint64_t> histogram(max_degree + 1, 0);
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    ++histogram[std::min(g.OutDegree(v), max_degree)];
  }
  return histogram;
}

}  // namespace poseidon::analytics
