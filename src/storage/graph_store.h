// GraphStore: the persistent property-graph storage engine (paper §4).
//
// Owns the node, relationship, and property tables, the dictionary, and the
// persistent root directory inside one pmem::Pool. GraphStore provides
// *physical* primitives only; transactional semantics (MVTO visibility,
// locking, commit) live in tx::Transaction, and declarative access lives in
// the query layer.

#ifndef POSEIDON_STORAGE_GRAPH_STORE_H_
#define POSEIDON_STORAGE_GRAPH_STORE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "pmem/pool.h"
#include "storage/chunked_table.h"
#include "storage/dictionary.h"
#include "storage/property_store.h"
#include "storage/records.h"

namespace poseidon::storage {

using NodeTable = ChunkedTable<NodeRecord, 512>;
using RelationshipTable = ChunkedTable<RelationshipRecord, 512>;

/// Persistent root directory stored at the pool's root offset.
struct GraphRoot {
  pmem::Offset node_meta;
  pmem::Offset rel_meta;
  pmem::Offset prop_meta;
  pmem::Offset dict_meta;
  pmem::Offset qcache_meta;   ///< JIT compiled-query cache (0 until created)
  pmem::Offset index_dir;     ///< index directory (0 until created)
  uint64_t next_timestamp;    ///< persisted transaction-timestamp high water
};

class GraphStore {
 public:
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Creates a fresh graph in `pool` and installs its root directory.
  static Result<std::unique_ptr<GraphStore>> Create(pmem::Pool* pool);

  /// Reopens the graph stored in `pool` (after clean shutdown or crash).
  static Result<std::unique_ptr<GraphStore>> Open(pmem::Pool* pool);

  pmem::Pool* pool() const { return pool_; }
  GraphRoot* root() const { return pool_->ToPtr<GraphRoot>(root_off_); }

  NodeTable& nodes() { return *nodes_; }
  const NodeTable& nodes() const { return *nodes_; }
  RelationshipTable& relationships() { return *rels_; }
  const RelationshipTable& relationships() const { return *rels_; }
  PropertyStore& properties() { return *prop_store_; }
  const PropertyStore& properties() const { return *prop_store_; }
  Dictionary& dict() { return *dict_; }
  const Dictionary& dict() const { return *dict_; }

  /// Persists a new timestamp high-water mark (8-byte atomic store).
  void PersistTimestamp(Timestamp ts);
  Timestamp persisted_timestamp() const { return root()->next_timestamp; }

  // --- Convenience (used by tests/examples; tx layer uses tables directly) --

  /// Encodes a label/key string, inserting into the dictionary if needed.
  Result<DictCode> Code(std::string_view s) { return dict_->Encode(s); }

  // --- Integrity repair (media-fault tolerance) -------------------------

  /// Produces a replacement image for a corrupt record slot, typically by
  /// rolling back to the newest retained version in the DRAM version store.
  /// Returns false when no redundant copy exists.
  using NodeResurrectFn = std::function<bool(RecordId, NodeRecord*)>;
  using RelResurrectFn = std::function<bool(RecordId, RelationshipRecord*)>;

  /// Installs the record resurrectors used by RepairLine (wired by GraphDb
  /// to the transaction manager's version store).
  void SetResurrectors(NodeResurrectFn node_fn, RelResurrectFn rel_fn) {
    node_resurrect_ = std::move(node_fn);
    rel_resurrect_ = std::move(rel_fn);
  }

  /// Corruption-handler leg for storage-owned lines: dispatches the corrupt
  /// line to the owning table or the dictionary and repairs, adopts, or
  /// gives up per the structure's repair matrix. Returns nullopt when no
  /// storage structure owns the line (indexes and the pool default are the
  /// caller's next legs).
  std::optional<pmem::Pool::RepairOutcome> RepairLine(pmem::Offset line_off);

 private:
  GraphStore() = default;

  /// Repairs a record-kind line of one table: free slots are adopted,
  /// occupied slots are resurrected in place or tombstoned.
  template <typename R, uint64_t N, typename Resurrect>
  pmem::Pool::RepairOutcome RepairRecordLine(
      ChunkedTable<R, N>* table, const typename ChunkedTable<R, N>::LineOwner& owner,
      const Resurrect& resurrect);

  pmem::Pool* pool_ = nullptr;
  pmem::Offset root_off_ = 0;
  std::unique_ptr<NodeTable> nodes_;
  std::unique_ptr<RelationshipTable> rels_;
  std::unique_ptr<PropertyTable> prop_table_;
  std::unique_ptr<PropertyStore> prop_store_;
  std::unique_ptr<Dictionary> dict_;
  NodeResurrectFn node_resurrect_;
  RelResurrectFn rel_resurrect_;
};

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_GRAPH_STORE_H_
