// Persistent bidirectional string dictionary (paper §4.2 "Dictionary").
//
// Compresses labels, property keys, and string property values to 4-byte
// codes so records stay fixed-size (DD3) and string comparisons become
// integer comparisons. Two persistent structures provide bi-directional
// translation:
//   * an open-addressing hash table  string -> code,
//   * a code-indexed array           code   -> string offset,
// with string bytes in an append-only persistent arena. Both directions are
// persistent (the paper's default; it notes one side could be DRAM-rebuilt
// as a workload-dependent optimization).
//
// Crash consistency: a new code becomes visible only once `count` is
// persisted, which happens after the string bytes, the code array entry, and
// the hash bucket are durable; a crash mid-insert leaks at most one arena
// string.

#ifndef POSEIDON_STORAGE_DICTIONARY_H_
#define POSEIDON_STORAGE_DICTIONARY_H_

#include <shared_mutex>
#include <string_view>
#include <vector>

#include "pmem/pool.h"
#include "storage/types.h"
#include "util/status.h"

namespace poseidon::storage {

class Dictionary {
 public:
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Creates an empty dictionary in `pool`; meta_offset() is the durable
  /// handle.
  static Result<std::unique_ptr<Dictionary>> Create(pmem::Pool* pool);

  /// Reopens a dictionary at `meta_off`.
  static Result<std::unique_ptr<Dictionary>> Open(pmem::Pool* pool,
                                                  pmem::Offset meta_off);

  pmem::Offset meta_offset() const { return meta_off_; }

  /// Returns the code for `s`, inserting it if absent. Thread-safe.
  Result<DictCode> Encode(std::string_view s);

  /// Returns the code for `s` or NotFound, without inserting.
  Result<DictCode> Lookup(std::string_view s) const;

  /// Returns the string for `code`. The view points into the persistent
  /// arena and stays valid for the pool's lifetime.
  Result<std::string_view> Decode(DictCode code) const;

  /// Enables the hybrid DRAM/PMem dictionary the paper names as future work
  /// (§8: "more hybrid DRAM/PMem approaches such as for dictionaries"):
  /// decode results are cached in a DRAM array, so repeated decodes skip
  /// the PMem code array and string arena entirely. The cache is volatile
  /// and rebuilt lazily after restart.
  void EnableDecodeCache();
  bool decode_cache_enabled() const { return decode_cache_enabled_; }

  /// Number of distinct strings.
  uint64_t size() const;

 private:
  struct Meta;
  struct Bucket;

  Dictionary() = default;

  Meta* meta() const { return pool_->ToPtr<Meta>(meta_off_); }

  /// Lookup under an already-held lock.
  DictCode FindLocked(std::string_view s, uint64_t hash) const;
  Status InsertLocked(std::string_view s, uint64_t hash, DictCode code);
  Status GrowBucketsLocked();
  Status GrowCodesLocked();
  Result<pmem::Offset> AppendStringLocked(std::string_view s);
  std::string_view StringAt(pmem::Offset off) const;

  pmem::Pool* pool_ = nullptr;
  pmem::Offset meta_off_ = 0;
  mutable std::shared_mutex mu_;
  bool decode_cache_enabled_ = false;
  // code -> pointer to the length-prefixed arena string (stable addresses).
  mutable std::vector<const char*> decode_cache_;
};

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_DICTIONARY_H_
