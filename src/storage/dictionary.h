// Persistent bidirectional string dictionary (paper §4.2 "Dictionary").
//
// Compresses labels, property keys, and string property values to 4-byte
// codes so records stay fixed-size (DD3) and string comparisons become
// integer comparisons. Two persistent structures provide bi-directional
// translation:
//   * an open-addressing hash table  string -> code,
//   * a code-indexed array           code   -> string offset,
// with string bytes in an append-only persistent arena. Both directions are
// persistent (the paper's default; it notes one side could be DRAM-rebuilt
// as a workload-dependent optimization).
//
// Crash consistency: a new code becomes visible only once `count` is
// persisted, which happens after the string bytes, the code array entry, and
// the hash bucket are durable; a crash mid-insert leaks at most one arena
// string.

#ifndef POSEIDON_STORAGE_DICTIONARY_H_
#define POSEIDON_STORAGE_DICTIONARY_H_

#include <shared_mutex>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "pmem/pool.h"
#include "storage/types.h"
#include "util/status.h"

namespace poseidon::storage {

class Dictionary {
 public:
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Creates an empty dictionary in `pool`; meta_offset() is the durable
  /// handle.
  static Result<std::unique_ptr<Dictionary>> Create(pmem::Pool* pool);

  /// Reopens a dictionary at `meta_off`.
  static Result<std::unique_ptr<Dictionary>> Open(pmem::Pool* pool,
                                                  pmem::Offset meta_off);

  pmem::Offset meta_offset() const { return meta_off_; }

  /// Returns the code for `s`, inserting it if absent. Thread-safe.
  Result<DictCode> Encode(std::string_view s);

  /// Returns the code for `s` or NotFound, without inserting.
  Result<DictCode> Lookup(std::string_view s) const;

  /// Returns the string for `code`. The view points into the persistent
  /// arena and stays valid for the pool's lifetime.
  Result<std::string_view> Decode(DictCode code) const;

  /// Enables the hybrid DRAM/PMem dictionary the paper names as future work
  /// (§8: "more hybrid DRAM/PMem approaches such as for dictionaries"):
  /// decode results are cached in a DRAM array, so repeated decodes skip
  /// the PMem code array and string arena entirely. The cache is volatile
  /// and rebuilt lazily after restart.
  void EnableDecodeCache();
  bool decode_cache_enabled() const { return decode_cache_enabled_; }

  /// Number of distinct strings.
  uint64_t size() const;

  // --- Integrity repair (media-fault tolerance) -------------------------
  /// True when the 64 B line at `line_off` lies inside one of the
  /// dictionary's *current* persistent structures (meta, bucket array,
  /// code array, active arena block). Orphaned blocks left behind by
  /// growth are not claimed.
  bool OwnsLine(pmem::Offset line_off) const;

  /// Repairs or quarantines a corrupt owned line. The meta block and the
  /// bucket array are fully re-derivable (DRAM mirror / re-hashing every
  /// assigned code) -> kRepaired. Code-array entries and arena string bytes
  /// are the sole authority for code -> string, so the affected codes are
  /// quarantined and Decode on them returns Status::Corruption ->
  /// kUnrepairable.
  pmem::Pool::RepairOutcome RepairLine(pmem::Offset line_off);

  /// Number of codes poisoned by unrepairable media faults.
  uint64_t quarantined_codes() const;

 private:
  struct Meta;
  struct Bucket;

  Dictionary() = default;

  Meta* meta() const { return pool_->ToPtr<Meta>(meta_off_); }

  /// Lookup under an already-held lock.
  DictCode FindLocked(std::string_view s, uint64_t hash) const;
  Status InsertLocked(std::string_view s, uint64_t hash, DictCode code);
  /// Zeroes the bucket array and re-inserts every assigned code by
  /// re-hashing its (intact) arena string; used by RepairLine.
  void RebuildBucketsLocked();
  /// Refreshes the DRAM Meta mirror (media-fault repair source) from the
  /// just-persisted pool copy. Call under the exclusive lock after every
  /// Meta mutation.
  void SyncMetaMirrorLocked();
  Status GrowBucketsLocked();
  Status GrowCodesLocked();
  Result<pmem::Offset> AppendStringLocked(std::string_view s);
  std::string_view StringAt(pmem::Offset off) const;
  /// StringAt that refuses quarantined or implausible string bytes instead
  /// of returning garbage.
  Result<std::string_view> StringAtChecked(pmem::Offset off) const;

  pmem::Pool* pool_ = nullptr;
  pmem::Offset meta_off_ = 0;
  mutable std::shared_mutex mu_;
  bool decode_cache_enabled_ = false;
  // code -> pointer to the length-prefixed arena string (stable addresses).
  mutable std::vector<const char*> decode_cache_;
  // Codes whose string bytes or code-array slot took an unrepairable media
  // fault: Decode on them reports Corruption instead of garbage. Volatile —
  // rebuilt by the scrubber after reopen. Guarded by mu_.
  std::unordered_set<DictCode> quarantined_codes_;
  // DRAM copy of the persistent Meta block (media-fault repair source;
  // sizeof(Meta) == 8 words, asserted in the .cc). Guarded by mu_.
  uint64_t meta_mirror_[8] = {};
};

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_DICTIONARY_H_
