#include "storage/property_store.h"

namespace poseidon::storage {

Result<RecordId> PropertyStore::CreateChain(
    RecordId owner, const std::vector<Property>& props) {
  if (props.empty()) return kNullId;
  // Build back-to-front so each record can point at an already-inserted
  // successor; the head is published last by the caller.
  RecordId next = kNullId;
  size_t remaining = props.size();
  while (remaining > 0) {
    size_t batch = remaining % PropertyRecord::kEntriesPerRecord;
    if (batch == 0) batch = PropertyRecord::kEntriesPerRecord;
    PropertyRecord rec;
    rec.owner = owner;
    rec.next = next;
    for (size_t i = 0; i < batch; ++i) {
      const Property& p = props[remaining - batch + i];
      rec.entries[i].set(p.key, p.value);
    }
    auto inserted = table_->Insert(rec);
    if (!inserted.ok()) {
      // Free the partial tail: the head was never published, so the records
      // built so far are unreachable and would leak their slots (pool
      // exhaustion mid-chain is the canonical trigger).
      if (next != kNullId) (void)FreeChain(next);
      return inserted.status();
    }
    next = std::move(inserted).value();
    remaining -= batch;
  }
  return next;
}

void PropertyStore::ReadChain(RecordId head,
                              std::vector<Property>* out) const {
  for (RecordId cur = head; cur != kNullId;) {
    const PropertyRecord* rec = table_->At(cur);
    for (const PropertyEntry& e : rec->entries) {
      if (!e.empty()) out->push_back(Property{e.key, e.val()});
    }
    cur = rec->next;
  }
}

PVal PropertyStore::Get(RecordId head, DictCode key) const {
  for (RecordId cur = head; cur != kNullId;) {
    const PropertyRecord* rec = table_->At(cur);
    for (const PropertyEntry& e : rec->entries) {
      if (e.key == key) return e.val();
    }
    cur = rec->next;
  }
  return PVal::Null();
}

Status PropertyStore::CheckChain(RecordId head) const {
  pmem::Pool* pool = table_->pool();
  if (pool == nullptr || pool->quarantined_lines() == 0) return Status::Ok();
  // A corrupt `next` could point anywhere, including into a cycle; cap the
  // walk at the table's slot count (a chain can never be longer).
  uint64_t hops = 0;
  uint64_t max_hops = table_->NumSlots() + 1;
  for (RecordId cur = head; cur != kNullId;) {
    if (cur >= table_->NumSlots() || ++hops > max_hops) {
      return Status::Corruption("property chain walk escaped the table");
    }
    const PropertyRecord* rec = table_->At(cur);
    if (rec == nullptr) {
      return Status::Corruption("property chain reaches a freed slot");
    }
    if (pool->IsQuarantinedRange(rec, sizeof(PropertyRecord))) {
      return Status::Corruption("property record quarantined by media fault");
    }
    cur = rec->next;
  }
  return Status::Ok();
}

Status PropertyStore::FreeChain(RecordId head) {
  for (RecordId cur = head; cur != kNullId;) {
    RecordId next = table_->At(cur)->next;
    POSEIDON_RETURN_IF_ERROR(table_->Delete(cur));
    cur = next;
  }
  return Status::Ok();
}

}  // namespace poseidon::storage
