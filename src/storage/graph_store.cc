#include "storage/graph_store.h"

#include <atomic>

#include "pmem/pptr.h"

namespace poseidon::storage {

Result<std::unique_ptr<GraphStore>> GraphStore::Create(pmem::Pool* pool) {
  if (pool->root() != pmem::kNullOffset) {
    return Status::AlreadyExists("pool already contains a graph root");
  }
  auto store = std::unique_ptr<GraphStore>(new GraphStore());
  store->pool_ = pool;
  POSEIDON_ASSIGN_OR_RETURN(store->root_off_,
                            pool->AllocateZeroed(sizeof(GraphRoot)));
  POSEIDON_ASSIGN_OR_RETURN(store->nodes_, NodeTable::Create(pool));
  POSEIDON_ASSIGN_OR_RETURN(store->rels_, RelationshipTable::Create(pool));
  POSEIDON_ASSIGN_OR_RETURN(store->prop_table_, PropertyTable::Create(pool));
  POSEIDON_ASSIGN_OR_RETURN(store->dict_, Dictionary::Create(pool));
  store->prop_store_ = std::make_unique<PropertyStore>(store->prop_table_.get());

  auto* root = store->root();
  PsanStore(pool, &root->node_meta, store->nodes_->meta_offset());
  PsanStore(pool, &root->rel_meta, store->rels_->meta_offset());
  PsanStore(pool, &root->prop_meta, store->prop_table_->meta_offset());
  PsanStore(pool, &root->dict_meta, store->dict_->meta_offset());
  PsanStore(pool, &root->qcache_meta, pmem::Offset{0});
  PsanStore(pool, &root->index_dir, pmem::Offset{0});
  PsanStore(pool, &root->next_timestamp, Timestamp{1});
  pool->Persist(root, sizeof(GraphRoot));
  pool->set_root(store->root_off_);
  return store;
}

Result<std::unique_ptr<GraphStore>> GraphStore::Open(pmem::Pool* pool) {
  if (pool->root() == pmem::kNullOffset) {
    return Status::NotFound("pool has no graph root");
  }
  auto store = std::unique_ptr<GraphStore>(new GraphStore());
  store->pool_ = pool;
  store->root_off_ = pool->root();
  const auto* root = store->root();
  POSEIDON_ASSIGN_OR_RETURN(store->nodes_,
                            NodeTable::Open(pool, root->node_meta));
  POSEIDON_ASSIGN_OR_RETURN(store->rels_,
                            RelationshipTable::Open(pool, root->rel_meta));
  POSEIDON_ASSIGN_OR_RETURN(store->prop_table_,
                            PropertyTable::Open(pool, root->prop_meta));
  POSEIDON_ASSIGN_OR_RETURN(store->dict_,
                            Dictionary::Open(pool, root->dict_meta));
  store->prop_store_ = std::make_unique<PropertyStore>(store->prop_table_.get());
  return store;
}

template <typename R, uint64_t N, typename Resurrect>
pmem::Pool::RepairOutcome GraphStore::RepairRecordLine(
    ChunkedTable<R, N>* table, const typename ChunkedTable<R, N>::LineOwner& owner,
    const Resurrect& resurrect) {
  using Outcome = pmem::Pool::RepairOutcome;
  bool any_lost = false;
  bool any_rewritten = false;
  for (RecordId id = owner.first_id; id <= owner.last_id; ++id) {
    if (!table->IsOccupied(id)) continue;  // free slot: content is dead bytes
    R fresh;
    if (resurrect && resurrect(id, &fresh)) {
      table->RewriteRecord(id, fresh);
      any_rewritten = true;
    } else {
      // No redundant copy: drop the slot from the bitmap but keep it
      // quarantined so point reads degrade to Corruption, not garbage.
      table->Tombstone(id);
      any_lost = true;
    }
  }
  if (any_lost) return Outcome::kUnrepairable;
  return any_rewritten ? Outcome::kRepaired : Outcome::kAdopted;
}

std::optional<pmem::Pool::RepairOutcome> GraphStore::RepairLine(
    pmem::Offset line_off) {
  using Outcome = pmem::Pool::RepairOutcome;

  auto dispatch = [&](auto* table,
                      const auto& resurrect) -> std::optional<Outcome> {
    auto owner = table->OwnerOfLine(line_off);
    using Kind = typename std::decay_t<decltype(*table)>::LineKind;
    switch (owner.kind) {
      case Kind::kNone:
        return std::nullopt;
      case Kind::kMeta:
        // TableMeta is mirrored in DRAM (refreshed at every growth step):
        // rewrite the whole block so the directory pointer and chunk count
        // never dangle.
        table->RepairMetaLine();
        return Outcome::kRepaired;
      case Kind::kDirectory:
        table->RepairDirectoryLine(line_off);
        return Outcome::kRepaired;
      case Kind::kHeader:
        // Only the first header line carries re-derivable fields (next,
        // first_id); the rest is occupancy bitmap, the sole authority on
        // slot liveness, and is adopted as-is.
        table->RepairHeaderLine(owner.chunk);
        return Outcome::kAdopted;
      case Kind::kRecords:
        return RepairRecordLine(table, owner, resurrect);
    }
    return std::nullopt;
  };

  if (auto r = dispatch(nodes_.get(), node_resurrect_)) return r;
  if (auto r = dispatch(rels_.get(), rel_resurrect_)) return r;
  // Property chains are immutable and their old versions are GC'd: no
  // redundant copy exists, so corrupt slots are tombstoned and chain walks
  // degrade via PropertyStore::CheckChain.
  static const std::function<bool(RecordId, PropertyRecord*)> kNoResurrect{};
  if (auto r = dispatch(prop_table_.get(), kNoResurrect)) return r;
  if (dict_->OwnsLine(line_off)) return dict_->RepairLine(line_off);
  if (line_off >= root_off_ && line_off < root_off_ + sizeof(GraphRoot)) {
    // The root directory's qcache/index/timestamp fields have no redundant
    // source.
    return Outcome::kUnrepairable;
  }
  return std::nullopt;
}

void GraphStore::PersistTimestamp(Timestamp ts) {
  // CAS-max: concurrent committers race to advance the high-water mark.
  auto* root = this->root();
  std::atomic_ref<Timestamp> hwm(root->next_timestamp);
  Timestamp cur = hwm.load(std::memory_order_relaxed);
  while (cur < ts) {
    if (hwm.compare_exchange_weak(cur, ts, std::memory_order_acq_rel)) {
      // Pipelined: flush only — the committing transaction's redo drain
      // orders it before the commit marker, so no durable bts can ever
      // exceed a durable next_timestamp. The CAS itself cannot route
      // through PsanStore, so mark the store after the fact.
      PsanMarkRange(pool_, &root->next_timestamp, sizeof(Timestamp));
      pool_->PersistDeferred(&root->next_timestamp, sizeof(Timestamp));
      return;
    }
  }
}

}  // namespace poseidon::storage
