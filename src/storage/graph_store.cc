#include "storage/graph_store.h"

#include <atomic>

#include "pmem/pptr.h"

namespace poseidon::storage {

Result<std::unique_ptr<GraphStore>> GraphStore::Create(pmem::Pool* pool) {
  if (pool->root() != pmem::kNullOffset) {
    return Status::AlreadyExists("pool already contains a graph root");
  }
  auto store = std::unique_ptr<GraphStore>(new GraphStore());
  store->pool_ = pool;
  POSEIDON_ASSIGN_OR_RETURN(store->root_off_,
                            pool->AllocateZeroed(sizeof(GraphRoot)));
  POSEIDON_ASSIGN_OR_RETURN(store->nodes_, NodeTable::Create(pool));
  POSEIDON_ASSIGN_OR_RETURN(store->rels_, RelationshipTable::Create(pool));
  POSEIDON_ASSIGN_OR_RETURN(store->prop_table_, PropertyTable::Create(pool));
  POSEIDON_ASSIGN_OR_RETURN(store->dict_, Dictionary::Create(pool));
  store->prop_store_ = std::make_unique<PropertyStore>(store->prop_table_.get());

  auto* root = store->root();
  PsanStore(pool, &root->node_meta, store->nodes_->meta_offset());
  PsanStore(pool, &root->rel_meta, store->rels_->meta_offset());
  PsanStore(pool, &root->prop_meta, store->prop_table_->meta_offset());
  PsanStore(pool, &root->dict_meta, store->dict_->meta_offset());
  PsanStore(pool, &root->qcache_meta, pmem::Offset{0});
  PsanStore(pool, &root->index_dir, pmem::Offset{0});
  PsanStore(pool, &root->next_timestamp, Timestamp{1});
  pool->Persist(root, sizeof(GraphRoot));
  pool->set_root(store->root_off_);
  return store;
}

Result<std::unique_ptr<GraphStore>> GraphStore::Open(pmem::Pool* pool) {
  if (pool->root() == pmem::kNullOffset) {
    return Status::NotFound("pool has no graph root");
  }
  auto store = std::unique_ptr<GraphStore>(new GraphStore());
  store->pool_ = pool;
  store->root_off_ = pool->root();
  const auto* root = store->root();
  POSEIDON_ASSIGN_OR_RETURN(store->nodes_,
                            NodeTable::Open(pool, root->node_meta));
  POSEIDON_ASSIGN_OR_RETURN(store->rels_,
                            RelationshipTable::Open(pool, root->rel_meta));
  POSEIDON_ASSIGN_OR_RETURN(store->prop_table_,
                            PropertyTable::Open(pool, root->prop_meta));
  POSEIDON_ASSIGN_OR_RETURN(store->dict_,
                            Dictionary::Open(pool, root->dict_meta));
  store->prop_store_ = std::make_unique<PropertyStore>(store->prop_table_.get());
  return store;
}

void GraphStore::PersistTimestamp(Timestamp ts) {
  // CAS-max: concurrent committers race to advance the high-water mark.
  auto* root = this->root();
  std::atomic_ref<Timestamp> hwm(root->next_timestamp);
  Timestamp cur = hwm.load(std::memory_order_relaxed);
  while (cur < ts) {
    if (hwm.compare_exchange_weak(cur, ts, std::memory_order_acq_rel)) {
      // Pipelined: flush only — the committing transaction's redo drain
      // orders it before the commit marker, so no durable bts can ever
      // exceed a durable next_timestamp. The CAS itself cannot route
      // through PsanStore, so mark the store after the fact.
      PsanMarkRange(pool_, &root->next_timestamp, sizeof(Timestamp));
      pool_->PersistDeferred(&root->next_timestamp, sizeof(Timestamp));
      return;
    }
  }
}

}  // namespace poseidon::storage
