// Persistent record layouts for nodes, relationships, and properties
// (paper §4.2, Fig. 1 and Fig. 2).
//
// All records are fixed-size and trivially copyable: fixed size makes them
// addressable by table offset (DD2), trivially copyable lets the MVTO layer
// snapshot them into DRAM dirty-version chains with memcpy (§5.2).
//
// The first 32 bytes of node and relationship records are the four
// persistent MVTO fields (txn-id, bts, ets, rts — Fig. 2). They are plain
// uint64_t so the records stay trivially copyable; concurrent access goes
// through std::atomic_ref in the transaction layer. The paper's additional
// *volatile* dirty-list pointer field is kept in a DRAM sidecar map instead
// of inside the persistent record (see DESIGN.md, deliberate deviations).
//
// The JIT code generator (jit/codegen.cc) emits loads against these layouts
// using the kOffsetOf* constants below; keep them in sync.

#ifndef POSEIDON_STORAGE_RECORDS_H_
#define POSEIDON_STORAGE_RECORDS_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "storage/property_value.h"
#include "storage/types.h"

namespace poseidon::storage {

/// Persistent concurrency-control fields (paper Fig. 2).
struct TxFields {
  Timestamp txn_id = kUnlocked;  ///< write lock: 0 or owner's txn id (CAS'd)
  Timestamp bts = 0;             ///< begin timestamp of this version
  Timestamp ets = kInfinityTs;   ///< end timestamp of this version
  Timestamp rts = 0;             ///< newest transaction that read it
};
static_assert(sizeof(TxFields) == 32);

/// Node record: 64 bytes = exactly one cache line (paper: 56 B; we pay 8 B
/// for uniform 8-byte-aligned timestamps).
struct NodeRecord {
  TxFields tx;
  DictCode label = kInvalidCode;  ///< type descriptor (dictionary code)
  uint32_t reserved = 0;
  RecordId first_in = kNullId;    ///< head of incoming-relationship list
  RecordId first_out = kNullId;   ///< head of outgoing-relationship list
  RecordId props = kNullId;       ///< head of property-record chain
};
static_assert(sizeof(NodeRecord) == 64);
static_assert(std::is_trivially_copyable_v<NodeRecord>);

/// Relationship record: 80 bytes (paper: 72 B, same 8 B alignment delta).
/// Relationships are directed (src -> dst) and doubly threaded through the
/// per-node adjacency lists via next_src / next_dst (DD4).
struct RelationshipRecord {
  TxFields tx;
  DictCode label = kInvalidCode;
  uint32_t reserved = 0;
  RecordId src = kNullId;       ///< source node offset
  RecordId dst = kNullId;       ///< destination node offset
  RecordId next_src = kNullId;  ///< next relationship of src's outgoing list
  RecordId next_dst = kNullId;  ///< next relationship of dst's incoming list
  RecordId props = kNullId;     ///< head of property-record chain
};
static_assert(sizeof(RelationshipRecord) == 80);
static_assert(std::is_trivially_copyable_v<RelationshipRecord>);

/// One key/value slot inside a property record.
struct PropertyEntry {
  DictCode key = kInvalidCode;  ///< property key (dictionary code)
  PType type = PType::kNull;
  uint64_t value = 0;           ///< payload (see PVal)

  PVal val() const { return PVal{type, value}; }
  void set(DictCode k, PVal v) {
    key = k;
    type = v.type;
    value = v.raw;
  }
  bool empty() const { return key == kInvalidCode; }
};
static_assert(sizeof(PropertyEntry) == 16);

/// Property record: 64 bytes = one cache line holding up to three key/value
/// pairs of a single owner, chained via `next` (paper §4.2 "grouped in
/// batches ... to obtain cache-line-sized records").
struct PropertyRecord {
  static constexpr int kEntriesPerRecord = 3;

  RecordId owner = kNullId;  ///< owning node/relationship offset
  RecordId next = kNullId;   ///< next record of the same owner's chain
  PropertyEntry entries[kEntriesPerRecord];
};
static_assert(sizeof(PropertyRecord) == 64);
static_assert(std::is_trivially_copyable_v<PropertyRecord>);

// Field byte offsets consumed by the JIT code generator.
inline constexpr uint64_t kOffsetOfTxnId = 0;
inline constexpr uint64_t kOffsetOfBts = 8;
inline constexpr uint64_t kOffsetOfEts = 16;
inline constexpr uint64_t kOffsetOfRts = 24;
inline constexpr uint64_t kOffsetOfLabel = 32;
inline constexpr uint64_t kOffsetOfNodeFirstIn = 40;
inline constexpr uint64_t kOffsetOfNodeFirstOut = 48;
inline constexpr uint64_t kOffsetOfNodeProps = 56;
inline constexpr uint64_t kOffsetOfRelSrc = 40;
inline constexpr uint64_t kOffsetOfRelDst = 48;
inline constexpr uint64_t kOffsetOfRelNextSrc = 56;
inline constexpr uint64_t kOffsetOfRelNextDst = 64;
inline constexpr uint64_t kOffsetOfRelProps = 72;

static_assert(offsetof(NodeRecord, label) == kOffsetOfLabel);
static_assert(offsetof(NodeRecord, first_in) == kOffsetOfNodeFirstIn);
static_assert(offsetof(NodeRecord, first_out) == kOffsetOfNodeFirstOut);
static_assert(offsetof(NodeRecord, props) == kOffsetOfNodeProps);
static_assert(offsetof(RelationshipRecord, src) == kOffsetOfRelSrc);
static_assert(offsetof(RelationshipRecord, dst) == kOffsetOfRelDst);
static_assert(offsetof(RelationshipRecord, next_src) == kOffsetOfRelNextSrc);
static_assert(offsetof(RelationshipRecord, next_dst) == kOffsetOfRelNextDst);
static_assert(offsetof(RelationshipRecord, props) == kOffsetOfRelProps);

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_RECORDS_H_
