// Chunked persistent record table (paper DD1/DD2, Fig. 1).
//
// A table is a linked list of fixed-size chunks allocated in a pmem::Pool.
// Each chunk stores `kRecordsPerChunk` equally-sized records plus an
// occupancy bitmap, is cache-line aligned, and spans a multiple of 256 bytes
// (DG3). Records are addressed by a global slot id
// (`chunk_index * kRecordsPerChunk + slot`) — the paper's 8-byte "array
// offset" (DD2). A persistent chunk directory (the sparse index of Fig. 1)
// maps chunk index -> chunk location; a DRAM mirror of it makes record
// access a single address computation.
//
// Crash safety of mutations:
//   * Insert persists the record payload BEFORE setting its bitmap bit; the
//     bit flip is an 8-byte-atomic store (C4), so a torn insert is invisible.
//   * Delete clears the bit (8-byte atomic); the slot is recycled through a
//     volatile free list rebuilt on open (DG5 — no deallocation).

#ifndef POSEIDON_STORAGE_CHUNKED_TABLE_H_
#define POSEIDON_STORAGE_CHUNKED_TABLE_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <functional>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "pmem/pool.h"
#include "pmem/pptr.h"
#include "storage/scan_options.h"
#include "storage/types.h"
#include "util/status.h"

namespace poseidon::storage {

/// Persistent per-table metadata, allocated in the pool; its offset is the
/// durable handle to the table.
struct TableMeta {
  uint64_t record_size;
  uint64_t records_per_chunk;
  uint64_t num_chunks;
  uint64_t directory;           ///< offset of the chunk-directory array
  uint64_t directory_capacity;  ///< entries in the directory
  uint64_t head_chunk;          ///< first chunk (scan entry point)
  uint64_t tail_chunk;          ///< last chunk (insert fast path)
};

template <typename R, uint64_t kRecordsPerChunk = 512>
class ChunkedTable {
 public:
  static_assert(kRecordsPerChunk % 64 == 0,
                "records-per-chunk must fill whole bitmap words");

  static constexpr uint64_t kBitmapWords = kRecordsPerChunk / 64;
  /// Chunk header: next link + first record id + occupancy bitmap, padded to
  /// a cache line boundary so record 0 is cache-line aligned.
  static constexpr uint64_t kHeaderBytes =
      ((16 + kBitmapWords * 8) + pmem::kCacheLineSize - 1) &
      ~(pmem::kCacheLineSize - 1);
  /// Whole chunk rounded up to the 256 B DCPMM block size (DG3).
  static constexpr uint64_t kChunkBytes =
      ((kHeaderBytes + kRecordsPerChunk * sizeof(R)) + pmem::kPmemBlockSize -
       1) &
      ~(pmem::kPmemBlockSize - 1);

  struct ChunkHeader {
    uint64_t next;      ///< pool offset of the next chunk (0 = end)
    uint64_t first_id;  ///< record id of slot 0 in this chunk
    uint64_t bitmap[kBitmapWords];
  };

  ChunkedTable() = default;
  ChunkedTable(const ChunkedTable&) = delete;
  ChunkedTable& operator=(const ChunkedTable&) = delete;
  ChunkedTable(ChunkedTable&&) = default;
  ChunkedTable& operator=(ChunkedTable&&) = default;

  /// Creates an empty table in `pool`. The returned table's meta_offset() is
  /// the durable handle for reopening.
  static Result<std::unique_ptr<ChunkedTable>> Create(pmem::Pool* pool) {
    auto table = std::make_unique<ChunkedTable>();
    table->pool_ = pool;
    POSEIDON_ASSIGN_OR_RETURN(pmem::Offset meta_off,
                              pool->AllocateZeroed(sizeof(TableMeta)));
    table->meta_off_ = meta_off;
    auto* meta = table->meta();
    PsanStore(pool, &meta->record_size, sizeof(R));
    PsanStore(pool, &meta->records_per_chunk, kRecordsPerChunk);
    PsanStore(pool, &meta->num_chunks, uint64_t{0});
    PsanStore(pool, &meta->directory_capacity, uint64_t{1024});
    POSEIDON_ASSIGN_OR_RETURN(
        pmem::Offset dir,
        pool->AllocateZeroed(meta->directory_capacity * sizeof(uint64_t)));
    PsanPublish(pool, &meta->directory, dir, dir,
                meta->directory_capacity * sizeof(uint64_t));
    PsanStore(pool, &meta->head_chunk, uint64_t{0});
    PsanStore(pool, &meta->tail_chunk, uint64_t{0});
    pool->Persist(meta, sizeof(TableMeta));
    table->ReserveMirror();
    table->SyncMetaMirror();
    return table;
  }

  /// Reopens a table previously created in `pool` at `meta_off`, rebuilding
  /// the volatile chunk-pointer mirror and free list from persistent state.
  static Result<std::unique_ptr<ChunkedTable>> Open(pmem::Pool* pool,
                                                    pmem::Offset meta_off) {
    auto table = std::make_unique<ChunkedTable>();
    table->pool_ = pool;
    table->meta_off_ = meta_off;
    const auto* meta = table->meta();
    if (meta->record_size != sizeof(R) ||
        meta->records_per_chunk != kRecordsPerChunk) {
      return Status::Corruption("table meta does not match record type");
    }
    table->ReserveMirror();
    const auto* dir = pool->ToPtr<uint64_t>(meta->directory);
    for (uint64_t c = 0; c < meta->num_chunks; ++c) {
      table->chunk_ptrs_[c] = pool->ToPtr<char>(dir[c]);
    }
    table->num_chunks_.store(meta->num_chunks, std::memory_order_release);
    // Rebuild the volatile free-slot shards + live count from the bitmaps.
    // The fresh-slot cursor restarts one past the highest occupied slot, so
    // trailing never-used slots are handed out by the (cheaper) fresh path;
    // only holes below the cursor enter the free shards — every hole is
    // still recycled before any fresh slot is touched (DG5).
    uint64_t records = 0;
    uint64_t hwm = 0;  // one past the highest occupied slot
    for (uint64_t c = 0; c < meta->num_chunks; ++c) {
      auto* h = reinterpret_cast<ChunkHeader*>(table->chunk_ptrs_[c]);
      for (uint64_t w = 0; w < kBitmapWords; ++w) {
        uint64_t bits = h->bitmap[w];
        if (bits == 0) continue;
        records += static_cast<uint64_t>(std::popcount(bits));
        hwm = c * kRecordsPerChunk + w * 64 + (64 - std::countl_zero(bits));
      }
    }
    table->num_records_.store(records, std::memory_order_relaxed);
    table->next_fresh_slot_.store(hwm, std::memory_order_relaxed);
    for (uint64_t id = 0; id < hwm; ++id) {
      uint64_t word = reinterpret_cast<ChunkHeader*>(
                          table->chunk_ptrs_[id / kRecordsPerChunk])
                          ->bitmap[(id % kRecordsPerChunk) / 64];
      if ((word >> (id % 64)) & 1) continue;
      table->free_shards_[id % kFreeShards].slots.push_back(id);
    }
    // Within each shard, lowest ids are recycled first (pops from the back).
    for (FreeShard& s : table->free_shards_) {
      std::sort(s.slots.begin(), s.slots.end(), std::greater<RecordId>());
    }
    // A reopened pool may carry media damage the previous session never
    // saw: verify each chunk against its checksum sidecar on first touch.
    table->EnableVerifyOnFirstTouch();
    table->SyncMetaMirror();
    return table;
  }

  pmem::Offset meta_offset() const { return meta_off_; }
  pmem::Pool* pool() const { return pool_; }

  /// Inserts a copy of `record`, persisting payload before visibility.
  /// Reuses a freed slot when one exists (DG5). Returns the new record id.
  ///
  /// Concurrency: slot assignment hands the caller exclusive ownership of
  /// the slot (a popped free-shard entry or a fetch_add'd fresh id), so the
  /// payload store, its flush, and the occupancy-bit publish all run
  /// without any lock; only chunk growth serializes (grow_mu_).
  Result<RecordId> Insert(const R& record) {
    RecordId id;
    if (!TryPopFree(&id)) {
      uint64_t fresh = next_fresh_slot_.fetch_add(1, std::memory_order_relaxed);
      while (fresh >= NumSlots()) {
        std::lock_guard<std::mutex> lock(grow_mu_);
        if (fresh >= NumSlots()) {
          // On failure the reserved id leaks until the next reopen (Open's
          // high-water-mark rebuild reclaims it) — acceptable for an
          // out-of-space path.
          POSEIDON_RETURN_IF_ERROR(AddChunk());
        }
      }
      id = fresh;
    }
    // Cold-chunk first-touch verification (reopened pools only): catch
    // media damage before a record is written next to it.
    MaybeVerifyChunk(id / kRecordsPerChunk);
    char* slot = SlotPtr(id);
    // Word-atomic store: concurrent stable readers (seqlock-style copies)
    // may race a slot being recycled; record structs are 8-byte multiples
    // (PsanStoreCopy falls back to memcpy for odd sizes/alignments).
    PsanStoreCopy(pool_, slot, &record, sizeof(R));
    // Pipelined pools defer the drain to the inserting transaction's commit:
    // the payload flush is ordered before the occupancy flush below, and
    // both land before the commit marker that makes the record reachable.
    pool_->PersistDeferred(slot, sizeof(R));
    SetBit(id, true);
    num_records_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  /// Raw slot access without occupancy check (the id must have been
  /// obtained from Insert / a scan). Injects PMem read latency.
  R* At(RecordId id) const {
    char* slot = SlotPtr(id);
    pool_->TouchRead(slot, sizeof(R));
    return reinterpret_cast<R*>(slot);
  }

  /// Like At() but without the read-latency injection; used on write paths
  /// that immediately overwrite the record.
  R* AtForWrite(RecordId id) const { return reinterpret_cast<R*>(SlotPtr(id)); }

  bool IsOccupied(RecordId id) const {
    if (id == kNullId) return false;
    uint64_t chunk = id / kRecordsPerChunk;
    if (chunk >= num_chunks_.load(std::memory_order_acquire)) return false;
    uint64_t slot = id % kRecordsPerChunk;
    const auto* h = reinterpret_cast<const ChunkHeader*>(chunk_ptrs_[chunk]);
    uint64_t word = std::atomic_ref<const uint64_t>(h->bitmap[slot / 64])
                        .load(std::memory_order_acquire);
    return (word >> (slot % 64)) & 1;
  }

  /// At() guarded by the occupancy bitmap; nullptr for free slots.
  R* AtOccupied(RecordId id) const {
    if (!IsOccupied(id)) return nullptr;
    return At(id);
  }

  /// True when `id`'s slot bytes overlap a media-fault quarantined line.
  /// Valid for free (e.g. tombstoned) slots too; one relaxed load when the
  /// pool has no quarantined lines.
  bool IsQuarantined(RecordId id) const {
    if (pool_ == nullptr || id == kNullId ||
        id / kRecordsPerChunk >= num_chunks_.load(std::memory_order_acquire)) {
      return false;
    }
    return pool_->IsQuarantinedRange(SlotPtr(id), sizeof(R));
  }

  /// Marks the slot free (8-byte-atomic bitmap clear) and recycles it
  /// through the id-sharded free lists. The atomic fetch_and doubles as the
  /// occupancy test, so two racing Deletes of the same id resolve to one
  /// winner and one NotFound.
  Status Delete(RecordId id) {
    if (id == kNullId ||
        id / kRecordsPerChunk >= num_chunks_.load(std::memory_order_acquire)) {
      return Status::NotFound("record slot not occupied");
    }
    if (!ClearBit(id)) return Status::NotFound("record slot not occupied");
    FreeShard& shard = free_shards_[id % kFreeShards];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.slots.push_back(id);
    }
    num_records_.fetch_sub(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  /// Number of live records.
  uint64_t size() const { return num_records_.load(std::memory_order_relaxed); }

  /// Upper bound of record ids; scans iterate [0, NumSlots()).
  uint64_t NumSlots() const {
    return num_chunks_.load(std::memory_order_acquire) * kRecordsPerChunk;
  }

  uint64_t num_chunks() const {
    return num_chunks_.load(std::memory_order_acquire);
  }

  /// Stable pointer to the DRAM chunk-pointer mirror (pre-sized at
  /// create/open; never reallocated). The JIT runtime hands this to
  /// generated code for direct record addressing.
  char* const* chunk_ptr_array() const { return chunk_ptrs_.data(); }

  /// Invokes f(id, record&) for every occupied slot (single-threaded scan).
  template <typename F>
  void ForEach(F&& f) const {
    uint64_t slots = NumSlots();
    for (RecordId id = 0; id < slots; ++id) {
      if (R* r = AtOccupied(id)) f(id, *r);
    }
  }

  /// Issues a software prefetch for the record slot (hardware prefetch plus
  /// a modeled in-flight PMem fill). Safe on any id below NumSlots();
  /// adjacency walks use it to fetch the next record of an offset chain
  /// while the current one is processed.
  void Prefetch(RecordId id) const {
    if (id == kNullId) return;
    if (id / kRecordsPerChunk >= num_chunks_.load(std::memory_order_acquire))
      return;
    pool_->TouchPrefetch(SlotPtr(id), sizeof(R));
  }

  /// Batched occupancy scan: fills `ids` with up to `cap` occupied slot ids
  /// from [*cursor, min(end, NumSlots())), skipping whole empty 64-bit
  /// occupancy words via countr_zero and prefetching the next chunk header
  /// while the current chunk's bitmap is consumed. Advances *cursor past the
  /// last examined slot; returns the number of ids emitted (0 = range
  /// exhausted). Bitmap words are probed with acquire loads; record payloads
  /// are NOT touched here — consumers pair At() with Prefetch() to overlap
  /// the PMem read latency (see ForEachBatch).
  uint64_t ScanBatch(RecordId* cursor, RecordId end, const ScanOptions& opts,
                     RecordId* ids, uint64_t cap) const {
    uint64_t slots = NumSlots();
    if (end > slots) end = slots;
    RecordId id = *cursor;
    uint64_t count = 0;
    uint64_t cur_chunk = ~0ull;
    while (id < end && count < cap) {
      uint64_t chunk = id / kRecordsPerChunk;
      if (chunk != cur_chunk) {
        cur_chunk = chunk;
        MaybeVerifyChunk(chunk);
        uint64_t next_chunk = chunk + 1;
        if (opts.prefetch_distance != 0 &&
            next_chunk * kRecordsPerChunk < end) {
          // Chunks never shrink, so next_chunk's mirror entry is valid.
          pool_->TouchPrefetch(chunk_ptrs_[next_chunk], kHeaderBytes);
        }
      }
      uint64_t slot = id % kRecordsPerChunk;
      const auto* h = reinterpret_cast<const ChunkHeader*>(chunk_ptrs_[chunk]);
      uint64_t bits = std::atomic_ref<const uint64_t>(h->bitmap[slot / 64])
                          .load(std::memory_order_acquire);
      bits &= ~0ull << (slot % 64);  // drop slots below the cursor
      RecordId word_base = id - (slot % 64);
      if (bits == 0) {  // whole-word skip: 64 slots in one test
        id = word_base + 64;
        continue;
      }
      while (bits != 0) {
        RecordId hit = word_base + std::countr_zero(bits);
        if (hit >= end) {
          bits = 0;
          break;
        }
        ids[count++] = hit;
        bits &= bits - 1;
        if (count == cap) {
          *cursor = hit + 1;
          return count;
        }
      }
      id = word_base + 64;
    }
    *cursor = id < end ? id : end;
    return count;
  }

  /// Invokes f(id, record&) for every occupied slot in [begin, end) using
  /// the batch kernel: gather a batch of ids from the bitmap, then consume
  /// it software-pipelined — prefetch the record `prefetch_distance` ahead,
  /// touch/process the current one — so the modeled PMem fill of slot
  /// i+distance overlaps the processing of slot i.
  template <typename F>
  void ForEachBatchRange(RecordId begin, RecordId end, const ScanOptions& opts,
                         F&& f) const {
    uint64_t cap = opts.batch_size == 0 ? 1 : opts.batch_size;
    std::vector<RecordId> ids(cap);
    RecordId cursor = begin;
    uint64_t d = opts.prefetch_distance;
    for (;;) {
      uint64_t n = ScanBatch(&cursor, end, opts, ids.data(), cap);
      if (n == 0) return;
      for (uint64_t i = 0; i < n; ++i) {
        if (d != 0 && i + d < n) {
          pool_->TouchPrefetch(SlotPtr(ids[i + d]), sizeof(R));
        }
        f(ids[i], *At(ids[i]));
      }
    }
  }

  /// ForEach through the batch kernels (whole table).
  template <typename F>
  void ForEachBatch(F&& f, const ScanOptions& opts = ScanOptions{}) const {
    ForEachBatchRange(0, NumSlots(), opts, std::forward<F>(f));
  }

  // --- Integrity repair (media-fault tolerance) -------------------------
  //
  // GraphStore's corruption handler dispatches a corrupt 64 B line here.
  // Chunk headers and the directory are re-derivable from the DRAM mirror
  // (with the documented exception of occupancy bitmap words, which are
  // adopted as-is); record slots are the caller's problem — it decides
  // between rewrite (version store), adopt (free slot) and tombstone.

  enum class LineKind { kNone, kMeta, kDirectory, kHeader, kRecords };

  struct LineOwner {
    LineKind kind = LineKind::kNone;
    uint64_t chunk = 0;       ///< kHeader / kRecords
    RecordId first_id = 0;    ///< kRecords: slots overlapping the line
    RecordId last_id = 0;     ///< inclusive
  };

  /// Classifies the line starting at pool offset `line_off`.
  LineOwner OwnerOfLine(pmem::Offset line_off) const {
    LineOwner owner;
    if (line_off >= meta_off_ && line_off < meta_off_ + sizeof(TableMeta)) {
      owner.kind = LineKind::kMeta;
      return owner;
    }
    const auto* m = meta();
    if (line_off >= m->directory &&
        line_off < m->directory + m->directory_capacity * sizeof(uint64_t)) {
      owner.kind = LineKind::kDirectory;
      return owner;
    }
    uint64_t n = num_chunks_.load(std::memory_order_acquire);
    for (uint64_t c = 0; c < n; ++c) {
      pmem::Offset chunk_off = pool_->ToOffset(chunk_ptrs_[c]);
      if (line_off < chunk_off || line_off >= chunk_off + kChunkBytes) {
        continue;
      }
      owner.chunk = c;
      if (line_off < chunk_off + kHeaderBytes) {
        owner.kind = LineKind::kHeader;
        return owner;
      }
      uint64_t rel = line_off - chunk_off - kHeaderBytes;
      uint64_t first_slot = rel / sizeof(R);
      uint64_t last_slot = (rel + pmem::kCacheLineSize - 1) / sizeof(R);
      if (first_slot >= kRecordsPerChunk) break;  // tail padding
      last_slot = std::min(last_slot, kRecordsPerChunk - 1);
      owner.kind = LineKind::kRecords;
      owner.first_id = c * kRecordsPerChunk + first_slot;
      owner.last_id = c * kRecordsPerChunk + last_slot;
      return owner;
    }
    return owner;
  }

  /// Rebuilds a corrupt chunk-header line from the DRAM mirror: next link
  /// and first_id are fully re-derivable; occupancy bitmap words are NOT
  /// (they are the only authority on slot liveness) and keep whatever the
  /// durable image holds.
  void RepairHeaderLine(uint64_t chunk) {
    uint64_t n = num_chunks_.load(std::memory_order_acquire);
    uint64_t fields[2];
    fields[0] = chunk + 1 < n ? pool_->ToOffset(chunk_ptrs_[chunk + 1]) : 0;
    fields[1] = chunk * kRecordsPerChunk;
    pool_->RepairStore(pool_->ToOffset(chunk_ptrs_[chunk]), fields,
                       sizeof(fields));
  }

  /// Rewrites the whole table-meta block from the DRAM mirror (refreshed
  /// under grow_mu_ at every growth step — the only time TableMeta changes).
  void RepairMetaLine() {
    std::lock_guard<std::mutex> lock(grow_mu_);
    pool_->RepairStore(meta_off_, &meta_mirror_, sizeof(TableMeta));
  }

  /// Rewrites the directory entries covered by the corrupt line from the
  /// DRAM chunk-pointer mirror.
  void RepairDirectoryLine(pmem::Offset line_off) {
    const auto* m = meta();
    if (m->directory == 0 || line_off < m->directory ||
        m->directory + m->directory_capacity * sizeof(uint64_t) >
            pool_->capacity()) {
      return;  // meta itself is damaged; its own repair must run first
    }
    uint64_t first = (line_off - m->directory) / sizeof(uint64_t);
    uint64_t count = std::min<uint64_t>(
        pmem::kCacheLineSize / sizeof(uint64_t), m->directory_capacity - first);
    uint64_t n = num_chunks_.load(std::memory_order_acquire);
    uint64_t entries[pmem::kCacheLineSize / sizeof(uint64_t)] = {};
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t c = first + i;
      entries[i] = c < n ? pool_->ToOffset(chunk_ptrs_[c]) : 0;
    }
    pool_->RepairStore(m->directory + first * sizeof(uint64_t), entries,
                       count * sizeof(uint64_t));
  }

  /// Rewrites an (occupied) slot in place from a redundant copy.
  void RewriteRecord(RecordId id, const R& record) {
    pool_->RepairStore(pool_->ToOffset(SlotPtr(id)), &record, sizeof(R));
  }

  /// Marks an unrepairable slot dead: clears the occupancy bit (scans skip
  /// it) WITHOUT recycling it through the free shards — the slot stays
  /// quarantined for this session so point reads keep reporting
  /// Status::Corruption instead of serving a recycled stranger. Returns
  /// false when the bit was already clear.
  bool Tombstone(RecordId id) {
    if (id == kNullId ||
        id / kRecordsPerChunk >= num_chunks_.load(std::memory_order_acquire)) {
      return false;
    }
    if (!ClearBit(id)) return false;
    num_records_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Arms cold-chunk first-touch verification (no-op unless the pool
  /// maintains checksums). Open() arms it automatically; Create()d tables
  /// skip it — every line they own was written by this session.
  void EnableVerifyOnFirstTouch() {
    if (pool_ == nullptr || !pool_->checksums_enabled()) return;
    verified_chunks_ =
        std::make_unique<std::atomic<uint8_t>[]>(chunk_ptrs_.size());
    verify_touch_.store(true, std::memory_order_release);
  }

 private:
  /// First touch of a chunk after reopen: verify it against the sidecar
  /// before serving records from it. One-shot per chunk (atomic flag).
  void MaybeVerifyChunk(uint64_t chunk) const {
    if (!verify_touch_.load(std::memory_order_acquire)) return;
    if (chunk >= num_chunks_.load(std::memory_order_acquire)) return;
    if (verified_chunks_[chunk].load(std::memory_order_relaxed) != 0) return;
    if (verified_chunks_[chunk].exchange(1, std::memory_order_acq_rel) != 0) {
      return;
    }
    pool_->VerifyAndRepairRange(pool_->ToOffset(chunk_ptrs_[chunk]),
                                kChunkBytes);
  }
  TableMeta* meta() const { return pool_->ToPtr<TableMeta>(meta_off_); }

  void ReserveMirror() {
    uint64_t max_chunks = pool_->capacity() / kChunkBytes + 2;
    chunk_ptrs_.assign(max_chunks, nullptr);
  }

  char* SlotPtr(RecordId id) const {
    uint64_t chunk = id / kRecordsPerChunk;
    uint64_t slot = id % kRecordsPerChunk;
    return chunk_ptrs_[chunk] + kHeaderBytes + slot * sizeof(R);
  }

  uint64_t& BitmapWord(RecordId id) const {
    auto* h = reinterpret_cast<ChunkHeader*>(chunk_ptrs_[id / kRecordsPerChunk]);
    return h->bitmap[(id % kRecordsPerChunk) / 64];
  }

  /// Atomic read-modify-write bit flips: concurrent inserters/deleters of
  /// different slots share bitmap words, so plain load/store pairs would
  /// lose updates.
  void SetBit(RecordId id, bool value) {
    uint64_t& word = BitmapWord(id);
    uint64_t mask = 1ull << (id % 64);
    if (value) {
      std::atomic_ref<uint64_t>(word).fetch_or(mask, std::memory_order_release);
    } else {
      std::atomic_ref<uint64_t>(word).fetch_and(~mask,
                                                std::memory_order_release);
    }
    PsanMarkRange(pool_, &word, sizeof(word));
    pool_->PersistDeferred(&word, sizeof(word));
  }

  /// Clears the occupancy bit; returns false when it was already clear.
  bool ClearBit(RecordId id) {
    uint64_t& word = BitmapWord(id);
    uint64_t mask = 1ull << (id % 64);
    uint64_t old = std::atomic_ref<uint64_t>(word).fetch_and(
        ~mask, std::memory_order_acq_rel);
    if ((old & mask) == 0) return false;
    PsanMarkRange(pool_, &word, sizeof(word));
    pool_->PersistDeferred(&word, sizeof(word));
    return true;
  }

  /// Pops a recycled slot, preferring the current thread's shard and
  /// stealing round-robin from the others; false when every shard is empty.
  bool TryPopFree(RecordId* out) {
    size_t start =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kFreeShards;
    for (size_t i = 0; i < kFreeShards; ++i) {
      FreeShard& s = free_shards_[(start + i) % kFreeShards];
      std::lock_guard<std::mutex> lock(s.mu);
      if (!s.slots.empty()) {
        *out = s.slots.back();
        s.slots.pop_back();
        return true;
      }
    }
    return false;
  }

  /// Appends a zeroed chunk: chunk persisted first, then directory entry,
  /// then the chunk count (so a crash mid-append just leaks the chunk).
  Status AddChunk() {
    auto* m = meta();
    uint64_t n = m->num_chunks;
    if (n >= m->directory_capacity) {
      POSEIDON_RETURN_IF_ERROR(GrowDirectory());
      m = meta();
    }
    POSEIDON_ASSIGN_OR_RETURN(
        pmem::Offset chunk_off,
        pool_->AllocateZeroed(kChunkBytes, pmem::kPmemBlockSize));
    auto* h = pool_->ToPtr<ChunkHeader>(chunk_off);
    PsanStore(pool_, &h->next, uint64_t{0});
    PsanStore(pool_, &h->first_id, n * kRecordsPerChunk);
    pool_->Persist(h, sizeof(ChunkHeader));

    auto* dir = pool_->ToPtr<uint64_t>(m->directory);
    // Directory entry publishes the chunk: its header must be durable first.
    PsanPublish(pool_, &dir[n], chunk_off, chunk_off, kHeaderBytes);
    pool_->Persist(&dir[n], sizeof(uint64_t));

    if (n == 0) {
      PsanPublish(pool_, &m->head_chunk, chunk_off, chunk_off, kHeaderBytes);
    } else {
      auto* tail = pool_->ToPtr<ChunkHeader>(m->tail_chunk);
      PsanPublish(pool_, &tail->next, chunk_off, chunk_off, kHeaderBytes);
      pool_->Persist(&tail->next, sizeof(uint64_t));
    }
    PsanStore(pool_, &m->tail_chunk, chunk_off);
    PsanPublish(pool_, &m->num_chunks, n + 1, chunk_off, kHeaderBytes);
    pool_->Persist(m, sizeof(TableMeta));

    chunk_ptrs_[n] = pool_->ToPtr<char>(chunk_off);
    num_chunks_.store(n + 1, std::memory_order_release);
    SyncMetaMirror();
    return Status::Ok();
  }

  /// Refreshes the DRAM TableMeta mirror from the (just persisted) pool
  /// copy. Called wherever TableMeta mutates — create/open and chunk/
  /// directory growth, all serialized by grow_mu_ or single-threaded setup.
  void SyncMetaMirror() { std::memcpy(&meta_mirror_, meta(), sizeof(TableMeta)); }

  Status GrowDirectory() {
    auto* m = meta();
    uint64_t new_cap = m->directory_capacity * 2;
    POSEIDON_ASSIGN_OR_RETURN(
        pmem::Offset new_dir, pool_->AllocateZeroed(new_cap * sizeof(uint64_t)));
    std::memcpy(pool_->ToPtr<void>(new_dir), pool_->ToPtr<void>(m->directory),
                m->num_chunks * sizeof(uint64_t));
    PsanMarkRange(pool_, pool_->ToPtr<void>(new_dir),
                  new_cap * sizeof(uint64_t));
    pool_->Persist(pool_->ToPtr<void>(new_dir), new_cap * sizeof(uint64_t));
    // 8-byte atomic switch; the old directory block is recycled.
    pmem::Offset old_dir = m->directory;
    uint64_t old_cap = m->directory_capacity;
    PsanPublish(pool_, &m->directory, new_dir, new_dir,
                new_cap * sizeof(uint64_t));
    pool_->Persist(&m->directory, sizeof(uint64_t));
    PsanStore(pool_, &m->directory_capacity, new_cap);
    pool_->Persist(&m->directory_capacity, sizeof(uint64_t));
    pool_->Free(old_dir, old_cap * sizeof(uint64_t));
    SyncMetaMirror();
    return Status::Ok();
  }

  pmem::Pool* pool_ = nullptr;
  pmem::Offset meta_off_ = 0;
  /// DRAM copy of the persistent TableMeta (media-fault repair source).
  TableMeta meta_mirror_{};

  // Volatile mirror (rebuilt on Open): direct chunk pointers indexed by
  // chunk number, lock-free for readers (slots are published before
  // num_chunks_ is advanced).
  std::vector<char*> chunk_ptrs_;
  std::atomic<uint64_t> num_chunks_{0};

  // Slot assignment is sharded so concurrent inserters/deleters stop
  // funnelling through one table mutex: recycled slots live in
  // id-partitioned free shards (cache-line padded), fresh slots come from
  // an atomic cursor, and only chunk growth takes grow_mu_.
  static constexpr size_t kFreeShards = 8;
  struct alignas(64) FreeShard {
    std::mutex mu;
    std::vector<RecordId> slots;
  };
  FreeShard free_shards_[kFreeShards];
  std::mutex grow_mu_;  // serializes AddChunk / GrowDirectory
  std::atomic<uint64_t> next_fresh_slot_{0};
  std::atomic<uint64_t> num_records_{0};

  // Cold-chunk first-touch verification (armed by Open on checksummed
  // pools): one byte per mirror slot, flipped once per chunk.
  std::atomic<bool> verify_touch_{false};
  mutable std::unique_ptr<std::atomic<uint8_t>[]> verified_chunks_;
};

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_CHUNKED_TABLE_H_
