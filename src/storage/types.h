// Core storage identifiers shared by the storage, transaction, query, and
// JIT layers. The JIT code generator hard-codes these layouts (field byte
// offsets), so any change here must be mirrored in jit/codegen.cc.

#ifndef POSEIDON_STORAGE_TYPES_H_
#define POSEIDON_STORAGE_TYPES_H_

#include <cstdint>

namespace poseidon::storage {

/// Logical record identifier: the slot index within a chunked table (the
/// paper's "array offset", DD2). 8 bytes so stores are failure-atomic and
/// half the size of a persistent pointer.
using RecordId = uint64_t;

/// Slot 0 is valid, so null is all-ones.
inline constexpr RecordId kNullId = ~0ull;

/// Dictionary code for labels, property keys, and string values.
/// Code 0 is reserved as "invalid / none".
using DictCode = uint32_t;
inline constexpr DictCode kInvalidCode = 0;

/// Transaction timestamps (also used as transaction identifiers).
using Timestamp = uint64_t;
inline constexpr Timestamp kInfinityTs = ~0ull;
/// txn-id value meaning "not write-locked".
inline constexpr Timestamp kUnlocked = 0;

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_TYPES_H_
