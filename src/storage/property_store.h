// Property chains over the chunked property table (paper DD3, Fig. 1).
//
// Properties of one node/relationship live in a chain of cache-line-sized
// PropertyRecords. Chains are immutable once published: a property update
// writes a new chain and atomically swaps the owner's `props` head (as part
// of the MVTO commit redo transaction), so concurrent snapshot readers never
// observe a half-rewritten chain. Old chains are recycled by transaction-
// level GC (DG5).

#ifndef POSEIDON_STORAGE_PROPERTY_STORE_H_
#define POSEIDON_STORAGE_PROPERTY_STORE_H_

#include <utility>
#include <vector>

#include "storage/chunked_table.h"
#include "storage/records.h"

namespace poseidon::storage {

/// A decoded (key, value) pair.
struct Property {
  DictCode key = kInvalidCode;
  PVal value;

  friend bool operator==(const Property& a, const Property& b) {
    return a.key == b.key && a.value == b.value;
  }
};

using PropertyTable = ChunkedTable<PropertyRecord, 512>;

class PropertyStore {
 public:
  explicit PropertyStore(PropertyTable* table) : table_(table) {}

  /// Writes an immutable chain holding `props` for `owner`; returns the head
  /// record id (kNullId for an empty list). Records are persisted before the
  /// caller publishes the head, so a crash mid-create only leaks slots.
  Result<RecordId> CreateChain(RecordId owner,
                               const std::vector<Property>& props);

  /// Appends every property of the chain at `head` to `out`.
  void ReadChain(RecordId head, std::vector<Property>* out) const;

  /// Point lookup of `key` within the chain at `head`.
  /// Returns PVal::Null() if the key is absent.
  PVal Get(RecordId head, DictCode key) const;

  /// Releases every record of the chain (bitmap clear + slot recycling).
  /// Caller must guarantee no snapshot reader can still reach the chain.
  Status FreeChain(RecordId head);

  /// Walks the chain at `head` checking each record against the pool's
  /// media-fault quarantine BEFORE dereferencing its `next` pointer, so a
  /// corrupt record degrades to Status::Corruption instead of a wild walk.
  /// One relaxed load when nothing is quarantined (the common case).
  Status CheckChain(RecordId head) const;

  PropertyTable* table() const { return table_; }

 private:
  PropertyTable* table_;
};

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_PROPERTY_STORE_H_
