// Storage-level property values: a (type tag, 8-byte payload) pair that fits
// a fixed-size property entry (DD3). Strings are dictionary codes at this
// level; the query layer decodes them through storage::Dictionary.

#ifndef POSEIDON_STORAGE_PROPERTY_VALUE_H_
#define POSEIDON_STORAGE_PROPERTY_VALUE_H_

#include <cstdint>
#include <cstring>

#include "storage/types.h"

namespace poseidon::storage {

enum class PType : uint32_t {
  kNull = 0,
  kInt = 1,     // int64_t
  kDouble = 2,  // double
  kString = 3,  // DictCode
  kBool = 4,    // 0/1
};

/// Trivially-copyable tagged payload. Encodes every supported property value
/// in 12 bytes (4-byte tag + 8-byte raw), padded to 16 inside PropertyEntry.
struct PVal {
  PType type = PType::kNull;
  uint64_t raw = 0;

  static PVal Null() { return PVal{}; }
  static PVal Int(int64_t v) {
    return PVal{PType::kInt, static_cast<uint64_t>(v)};
  }
  static PVal Double(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return PVal{PType::kDouble, bits};
  }
  static PVal String(DictCode code) {
    return PVal{PType::kString, static_cast<uint64_t>(code)};
  }
  static PVal Bool(bool v) { return PVal{PType::kBool, v ? 1ull : 0ull}; }

  bool is_null() const { return type == PType::kNull; }

  int64_t AsInt() const { return static_cast<int64_t>(raw); }
  double AsDouble() const {
    double v;
    std::memcpy(&v, &raw, sizeof(v));
    return v;
  }
  DictCode AsString() const { return static_cast<DictCode>(raw); }
  bool AsBool() const { return raw != 0; }

  friend bool operator==(const PVal& a, const PVal& b) {
    return a.type == b.type && a.raw == b.raw;
  }
};

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_PROPERTY_VALUE_H_
