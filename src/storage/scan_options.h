// Tuning knobs for the batched scan fast path (ablation surface).
//
// The batched kernels (ChunkedTable::ScanBatch / ForEachBatch, the JIT's
// word-skip scan loop) and the software-prefetch depth are toggled here so
// experiments can isolate each effect: batching off reproduces the seed's
// slot-at-a-time behaviour, prefetch_distance 0 disables latency hiding
// while keeping the word-level skip test.

#ifndef POSEIDON_STORAGE_SCAN_OPTIONS_H_
#define POSEIDON_STORAGE_SCAN_OPTIONS_H_

#include <cstdint>
#include <cstdlib>

namespace poseidon::storage {

struct ScanOptions {
  /// Use the occupancy-word batch kernels instead of slot-at-a-time probing.
  bool batch_enabled = true;
  /// Records gathered per batch before the consumer loop runs. One batch is
  /// the unit of software pipelining; a morsel is split into batches.
  uint32_t batch_size = 256;
  /// How many records ahead of the consumer a prefetch is issued
  /// (0 = no prefetching). Bounded by the latency model's in-flight slots.
  uint32_t prefetch_distance = 4;

  /// Environment overrides for ablation sweeps without recompiling:
  ///   POSEIDON_SCAN_BATCH=0|1, POSEIDON_SCAN_BATCH_SIZE,
  ///   POSEIDON_SCAN_PREFETCH_DIST
  static ScanOptions FromEnv() {
    ScanOptions o;
    if (const char* v = std::getenv("POSEIDON_SCAN_BATCH"); v && *v) {
      o.batch_enabled = std::strtoull(v, nullptr, 10) != 0;
    }
    if (const char* v = std::getenv("POSEIDON_SCAN_BATCH_SIZE"); v && *v) {
      uint64_t n = std::strtoull(v, nullptr, 10);
      if (n >= 1 && n <= 65536) o.batch_size = static_cast<uint32_t>(n);
    }
    if (const char* v = std::getenv("POSEIDON_SCAN_PREFETCH_DIST"); v && *v) {
      uint64_t n = std::strtoull(v, nullptr, 10);
      if (n <= 64) o.prefetch_distance = static_cast<uint32_t>(n);
    }
    return o;
  }
};

}  // namespace poseidon::storage

#endif  // POSEIDON_STORAGE_SCAN_OPTIONS_H_
