#include "storage/dictionary.h"

#include <algorithm>
#include <cstring>

#include "pmem/pptr.h"
#include "util/hash.h"

namespace poseidon::storage {

namespace {
constexpr uint64_t kInitialBuckets = 1024;       // power of two
constexpr uint64_t kInitialCodeCapacity = 1024;  // entries
constexpr uint64_t kInitialArenaBytes = 64 << 10;
}  // namespace

struct Dictionary::Meta {
  uint64_t count;            // highest assigned code (codes are 1-based)
  uint64_t buckets;          // offset of Bucket array
  uint64_t bucket_capacity;  // power of two
  uint64_t codes;            // offset of code -> string-offset array
  uint64_t code_capacity;
  uint64_t arena;      // current arena block (data start)
  uint64_t arena_pos;  // bump cursor within current block
  uint64_t arena_cap;  // size of current block
};

struct Dictionary::Bucket {
  uint64_t hash;
  uint64_t str_off;
  uint64_t code;  // 0 = empty
};

void Dictionary::SyncMetaMirrorLocked() {
  static_assert(sizeof(Meta) == sizeof(meta_mirror_),
                "Meta mirror in dictionary.h sized for 8 words");
  std::memcpy(meta_mirror_, meta(), sizeof(Meta));
}

Result<std::unique_ptr<Dictionary>> Dictionary::Create(pmem::Pool* pool) {
  auto dict = std::unique_ptr<Dictionary>(new Dictionary());
  dict->pool_ = pool;
  POSEIDON_ASSIGN_OR_RETURN(pmem::Offset meta_off,
                            pool->AllocateZeroed(sizeof(Meta)));
  dict->meta_off_ = meta_off;
  auto* m = dict->meta();
  PsanStore(pool, &m->count, uint64_t{0});
  PsanStore(pool, &m->bucket_capacity, kInitialBuckets);
  POSEIDON_ASSIGN_OR_RETURN(
      m->buckets, pool->AllocateZeroed(kInitialBuckets * sizeof(Bucket)));
  PsanStore(pool, &m->code_capacity, kInitialCodeCapacity);
  POSEIDON_ASSIGN_OR_RETURN(
      m->codes, pool->AllocateZeroed(kInitialCodeCapacity * sizeof(uint64_t)));
  PsanStore(pool, &m->arena_cap, kInitialArenaBytes);
  PsanStore(pool, &m->arena_pos, uint64_t{0});
  POSEIDON_ASSIGN_OR_RETURN(m->arena, pool->Allocate(kInitialArenaBytes));
  PsanMarkRange(pool, m, sizeof(Meta));
  pool->Persist(m, sizeof(Meta));
  dict->SyncMetaMirrorLocked();  // single-threaded setup: no lock needed
  return dict;
}

Result<std::unique_ptr<Dictionary>> Dictionary::Open(pmem::Pool* pool,
                                                     pmem::Offset meta_off) {
  auto dict = std::unique_ptr<Dictionary>(new Dictionary());
  dict->pool_ = pool;
  dict->meta_off_ = meta_off;
  const auto* m = dict->meta();
  if (m->bucket_capacity == 0 || (m->bucket_capacity & (m->bucket_capacity - 1)) != 0) {
    return Status::Corruption("dictionary bucket capacity invalid");
  }
  dict->SyncMetaMirrorLocked();  // single-threaded setup: no lock needed
  return dict;
}

uint64_t Dictionary::size() const {
  std::shared_lock lock(mu_);
  return meta()->count;
}

std::string_view Dictionary::StringAt(pmem::Offset off) const {
  const char* p = pool_->ToPtr<char>(off);
  uint32_t len;
  std::memcpy(&len, p, sizeof(len));
  pool_->TouchRead(p, sizeof(len) + len);
  return std::string_view(p + sizeof(len), len);
}

Result<std::string_view> Dictionary::StringAtChecked(pmem::Offset off) const {
  if (off == 0 || off + sizeof(uint32_t) > pool_->capacity()) {
    return Status::Corruption("dictionary string offset out of bounds");
  }
  const char* p = pool_->ToPtr<char>(off);
  if (pool_->IsQuarantinedRange(p, sizeof(uint32_t))) {
    return Status::Corruption("dictionary string quarantined by media fault");
  }
  uint32_t len;
  std::memcpy(&len, p, sizeof(len));
  if (off + sizeof(len) + len > pool_->capacity()) {
    return Status::Corruption("dictionary string length implausible");
  }
  if (pool_->IsQuarantinedRange(p, sizeof(len) + len)) {
    return Status::Corruption("dictionary string quarantined by media fault");
  }
  pool_->TouchRead(p, sizeof(len) + len);
  return std::string_view(p + sizeof(len), len);
}

DictCode Dictionary::FindLocked(std::string_view s, uint64_t hash) const {
  const auto* m = meta();
  const auto* buckets = pool_->ToPtr<Bucket>(m->buckets);
  uint64_t mask = m->bucket_capacity - 1;
  for (uint64_t i = hash & mask;; i = (i + 1) & mask) {
    const Bucket& b = buckets[i];
    if (b.code == 0) return kInvalidCode;
    if (b.hash == hash && StringAt(b.str_off) == s) {
      return static_cast<DictCode>(b.code);
    }
  }
}

Result<DictCode> Dictionary::Lookup(std::string_view s) const {
  std::shared_lock lock(mu_);
  DictCode code = FindLocked(s, HashString(s));
  if (code == kInvalidCode) return Status::NotFound("string not in dictionary");
  return code;
}

Result<DictCode> Dictionary::Encode(std::string_view s) {
  uint64_t hash = HashString(s);
  {
    std::shared_lock lock(mu_);
    DictCode code = FindLocked(s, hash);
    if (code != kInvalidCode) return code;
  }
  std::unique_lock lock(mu_);
  DictCode code = FindLocked(s, hash);
  if (code != kInvalidCode) return code;

  auto* m = meta();
  DictCode new_code = static_cast<DictCode>(m->count + 1);
  if (new_code + 1 >= m->code_capacity) {
    POSEIDON_RETURN_IF_ERROR(GrowCodesLocked());
    m = meta();
  }
  if ((m->count + 1) * 10 >= m->bucket_capacity * 7) {
    POSEIDON_RETURN_IF_ERROR(GrowBucketsLocked());
    m = meta();
  }

  // Durability order: string bytes -> code array -> bucket -> count.
  POSEIDON_ASSIGN_OR_RETURN(pmem::Offset str_off, AppendStringLocked(s));
  auto* codes = pool_->ToPtr<uint64_t>(m->codes);
  // The code array entry publishes the string bytes just appended.
  PsanPublish(pool_, &codes[new_code], str_off, str_off,
              sizeof(uint32_t) + s.size());
  pool_->Persist(&codes[new_code], sizeof(uint64_t));
  POSEIDON_RETURN_IF_ERROR(InsertLocked(s, hash, new_code));
  PsanStore(pool_, &m->count, uint64_t{new_code});
  pool_->Persist(&m->count, sizeof(uint64_t));
  SyncMetaMirrorLocked();
  return new_code;
}

Result<std::string_view> Dictionary::Decode(DictCode code) const {
  {
    std::shared_lock lock(mu_);
    if (!quarantined_codes_.empty() && quarantined_codes_.count(code) != 0) {
      return Status::Corruption("dictionary code lost to media fault");
    }
    if (decode_cache_enabled_ && code < decode_cache_.size() &&
        decode_cache_[code] != nullptr) {
      // Hybrid fast path: the cached arena pointer avoids the PMem code
      // array and the latency-modelled string read.
      const char* p = decode_cache_[code];
      uint32_t len;
      std::memcpy(&len, p, sizeof(len));
      return std::string_view(p + sizeof(len), len);
    }
    const auto* m = meta();
    if (code == kInvalidCode || code > m->count) {
      return Status::NotFound("dictionary code out of range");
    }
    if (!decode_cache_enabled_) {
      const auto* codes = pool_->ToPtr<uint64_t>(m->codes);
      if (pool_->IsQuarantinedRange(&codes[code], sizeof(uint64_t))) {
        return Status::Corruption("dictionary code slot quarantined");
      }
      return StringAtChecked(codes[code]);
    }
  }
  // Cache miss: fill under the exclusive lock.
  std::unique_lock lock(mu_);
  const auto* m = meta();
  if (code == kInvalidCode || code > m->count) {
    return Status::NotFound("dictionary code out of range");
  }
  const auto* codes = pool_->ToPtr<uint64_t>(m->codes);
  if (pool_->IsQuarantinedRange(&codes[code], sizeof(uint64_t))) {
    return Status::Corruption("dictionary code slot quarantined");
  }
  POSEIDON_ASSIGN_OR_RETURN(std::string_view s, StringAtChecked(codes[code]));
  if (decode_cache_.size() <= code) decode_cache_.resize(code + 1, nullptr);
  decode_cache_[code] = pool_->ToPtr<char>(codes[code]);
  return s;
}

void Dictionary::EnableDecodeCache() {
  std::unique_lock lock(mu_);
  decode_cache_enabled_ = true;
  decode_cache_.assign(meta()->count + 1, nullptr);
}

Status Dictionary::InsertLocked(std::string_view s, uint64_t hash,
                                DictCode code) {
  (void)s;
  auto* m = meta();
  auto* buckets = pool_->ToPtr<Bucket>(m->buckets);
  uint64_t mask = m->bucket_capacity - 1;
  const auto* codes = pool_->ToPtr<uint64_t>(m->codes);
  for (uint64_t i = hash & mask;; i = (i + 1) & mask) {
    Bucket& b = buckets[i];
    if (b.code != 0) continue;
    PsanStore(pool_, &b.hash, hash);
    PsanStore(pool_, &b.str_off, codes[code]);
    pool_->Persist(&b, sizeof(Bucket) - sizeof(uint64_t));
    // Publishing the code last keeps partially written buckets invisible.
    PsanPublish(pool_, &b.code, uint64_t{code}, b.str_off,
                sizeof(uint32_t));
    pool_->Persist(&b.code, sizeof(uint64_t));
    return Status::Ok();
  }
}

Status Dictionary::GrowBucketsLocked() {
  auto* m = meta();
  uint64_t new_cap = m->bucket_capacity * 2;
  POSEIDON_ASSIGN_OR_RETURN(pmem::Offset new_off,
                            pool_->AllocateZeroed(new_cap * sizeof(Bucket)));
  // psan: whole array marked after the rehash below
  auto* new_buckets = pool_->ToPtr<Bucket>(new_off);
  const auto* old_buckets = pool_->ToPtr<Bucket>(m->buckets);
  uint64_t mask = new_cap - 1;
  for (uint64_t i = 0; i < m->bucket_capacity; ++i) {
    const Bucket& b = old_buckets[i];
    if (b.code == 0) continue;
    for (uint64_t j = b.hash & mask;; j = (j + 1) & mask) {
      if (new_buckets[j].code == 0) {
        new_buckets[j] = b;
        break;
      }
    }
  }
  PsanMarkRange(pool_, new_buckets, new_cap * sizeof(Bucket));
  pool_->Persist(new_buckets, new_cap * sizeof(Bucket));
  pmem::Offset old_off = m->buckets;
  uint64_t old_cap = m->bucket_capacity;
  PsanPublish(pool_, &m->buckets, new_off, new_off, new_cap * sizeof(Bucket));
  pool_->Persist(&m->buckets, sizeof(uint64_t));
  PsanStore(pool_, &m->bucket_capacity, new_cap);
  pool_->Persist(&m->bucket_capacity, sizeof(uint64_t));
  pool_->Free(old_off, old_cap * sizeof(Bucket));
  SyncMetaMirrorLocked();
  return Status::Ok();
}

Status Dictionary::GrowCodesLocked() {
  auto* m = meta();
  uint64_t new_cap = m->code_capacity * 2;
  POSEIDON_ASSIGN_OR_RETURN(pmem::Offset new_off,
                            pool_->AllocateZeroed(new_cap * sizeof(uint64_t)));
  std::memcpy(pool_->ToPtr<void>(new_off), pool_->ToPtr<void>(m->codes),
              m->code_capacity * sizeof(uint64_t));
  PsanMarkRange(pool_, pool_->ToPtr<void>(new_off), new_cap * sizeof(uint64_t));
  pool_->Persist(pool_->ToPtr<void>(new_off), new_cap * sizeof(uint64_t));
  pmem::Offset old_off = m->codes;
  uint64_t old_cap = m->code_capacity;
  PsanPublish(pool_, &m->codes, new_off, new_off, new_cap * sizeof(uint64_t));
  pool_->Persist(&m->codes, sizeof(uint64_t));
  PsanStore(pool_, &m->code_capacity, new_cap);
  pool_->Persist(&m->code_capacity, sizeof(uint64_t));
  pool_->Free(old_off, old_cap * sizeof(uint64_t));
  SyncMetaMirrorLocked();
  return Status::Ok();
}

Result<pmem::Offset> Dictionary::AppendStringLocked(std::string_view s) {
  auto* m = meta();
  uint64_t need = sizeof(uint32_t) + s.size();
  need = (need + 7) & ~7ull;  // keep 8-byte alignment for length prefixes
  if (m->arena_pos + need > m->arena_cap) {
    uint64_t new_cap = m->arena_cap * 2;
    while (new_cap < need) new_cap *= 2;
    POSEIDON_ASSIGN_OR_RETURN(pmem::Offset block, pool_->Allocate(new_cap));
    PsanStore(pool_, &m->arena, uint64_t{block});
    PsanStore(pool_, &m->arena_cap, new_cap);
    PsanStore(pool_, &m->arena_pos, uint64_t{0});
    PsanMarkRange(pool_, m, sizeof(Meta));
    pool_->Persist(m, sizeof(Meta));
  }
  pmem::Offset off = m->arena + m->arena_pos;
  // psan: string bytes marked as one range after the copy below
  char* p = pool_->ToPtr<char>(off);
  auto len = static_cast<uint32_t>(s.size());
  std::memcpy(p, &len, sizeof(len));
  std::memcpy(p + sizeof(len), s.data(), s.size());
  PsanMarkRange(pool_, p, sizeof(len) + s.size());
  pool_->Persist(p, sizeof(len) + s.size());
  PsanStore(pool_, &m->arena_pos, m->arena_pos + need);
  pool_->Persist(&m->arena_pos, sizeof(uint64_t));
  SyncMetaMirrorLocked();
  return off;
}

bool Dictionary::OwnsLine(pmem::Offset line_off) const {
  std::shared_lock lock(mu_);
  const auto* m = meta();
  pmem::Offset line_end = line_off + pmem::kCacheLineSize;
  auto overlaps = [&](pmem::Offset base, uint64_t len) {
    return base != 0 && base < line_end && line_off < base + len;
  };
  // Orphaned blocks from growth (old bucket/code arrays were freed, old
  // arena blocks leaked) are deliberately not claimed: the free ones may
  // have been reallocated and the arena ones are covered per-string by
  // StringAtChecked's quarantine test.
  return overlaps(meta_off_, sizeof(Meta)) ||
         overlaps(m->buckets, m->bucket_capacity * sizeof(Bucket)) ||
         overlaps(m->codes, m->code_capacity * sizeof(uint64_t)) ||
         overlaps(m->arena, m->arena_cap);
}

void Dictionary::RebuildBucketsLocked() {
  auto* m = meta();
  uint64_t cap = m->bucket_capacity;
  std::vector<Bucket> fresh(cap, Bucket{0, 0, 0});
  const auto* codes = pool_->ToPtr<uint64_t>(m->codes);
  uint64_t mask = cap - 1;
  for (uint64_t code = 1; code <= m->count; ++code) {
    auto sr = StringAtChecked(codes[code]);
    // A code whose string bytes are themselves lost cannot be re-hashed;
    // it stays out of the table (Lookup would never match it anyway).
    if (!sr.ok()) continue;
    uint64_t hash = HashString(*sr);
    for (uint64_t j = hash & mask;; j = (j + 1) & mask) {
      if (fresh[j].code == 0) {
        fresh[j] = Bucket{hash, codes[code], code};
        break;
      }
    }
  }
  pool_->RepairStore(m->buckets, fresh.data(), cap * sizeof(Bucket));
}

pmem::Pool::RepairOutcome Dictionary::RepairLine(pmem::Offset line_off) {
  std::unique_lock lock(mu_);
  pmem::Offset line_end = line_off + pmem::kCacheLineSize;
  auto overlaps = [&](pmem::Offset base, uint64_t len) {
    return base != 0 && base < line_end && line_off < base + len;
  };
  // Meta first: every other branch dereferences its offsets, so a corrupt
  // meta must never be allowed to route the repair to a wild address. The
  // DRAM mirror (refreshed at every mutation, and only consulted with mu_
  // held so no mutation is mid-flight) rewrites the block wholesale.
  if (overlaps(meta_off_, sizeof(Meta))) {
    if (meta_mirror_[2] == 0) {  // bucket_capacity: 0 means never synced
      return pmem::Pool::RepairOutcome::kUnrepairable;
    }
    pool_->RepairStore(meta_off_, meta_mirror_, sizeof(Meta));
    return pmem::Pool::RepairOutcome::kRepaired;
  }
  auto* m = meta();
  // Guard against a *still-corrupt* meta (its own line not yet scrubbed)
  // steering the branches below into out-of-pool reads or writes.
  auto plausible = [&](pmem::Offset base, uint64_t len) {
    return base != 0 && len != 0 && base + len > base &&
           base + len <= pool_->capacity();
  };
  if (overlaps(m->buckets, m->bucket_capacity * sizeof(Bucket))) {
    if (!plausible(m->buckets, m->bucket_capacity * sizeof(Bucket)) ||
        !plausible(m->codes, m->code_capacity * sizeof(uint64_t))) {
      return pmem::Pool::RepairOutcome::kUnrepairable;
    }
    // The hash table is a pure function of the surviving strings: rebuild
    // the whole array (a single corrupt bucket shifts probe chains, so a
    // line-local fix is not possible).
    RebuildBucketsLocked();
    return pmem::Pool::RepairOutcome::kRepaired;
  }
  if (overlaps(m->codes, m->code_capacity * sizeof(uint64_t))) {
    // The code array is the sole authority for code -> string; poison the
    // codes whose slots the line covers so Decode degrades loudly.
    uint64_t first =
        line_off > m->codes ? (line_off - m->codes) / sizeof(uint64_t) : 0;
    uint64_t last = std::min(m->code_capacity, (line_end - m->codes +
                                                sizeof(uint64_t) - 1) /
                                                   sizeof(uint64_t));
    for (uint64_t c = std::max<uint64_t>(first, 1); c < last && c <= m->count;
         ++c) {
      quarantined_codes_.insert(static_cast<DictCode>(c));
    }
    return pmem::Pool::RepairOutcome::kUnrepairable;
  }
  if (overlaps(m->arena, m->arena_cap)) {
    if (!plausible(m->arena, m->arena_cap) ||
        !plausible(m->codes, m->code_capacity * sizeof(uint64_t))) {
      return pmem::Pool::RepairOutcome::kUnrepairable;
    }
    // String bytes have no redundant copy; poison every code whose string
    // overlaps the corrupt line.
    const auto* codes = pool_->ToPtr<uint64_t>(m->codes);
    for (uint64_t c = 1; c <= m->count; ++c) {
      pmem::Offset so = codes[c];
      if (so < m->arena || so >= m->arena + m->arena_cap) continue;
      uint32_t len;
      std::memcpy(&len, pool_->ToPtr<char>(so), sizeof(len));
      uint64_t span =
          sizeof(len) + std::min<uint64_t>(len, m->arena_cap);
      if (so < line_end && line_off < so + span) {
        quarantined_codes_.insert(static_cast<DictCode>(c));
      }
    }
    return pmem::Pool::RepairOutcome::kUnrepairable;
  }
  // Claimed via corrupt meta values that no healthy branch matches.
  return pmem::Pool::RepairOutcome::kUnrepairable;
}

uint64_t Dictionary::quarantined_codes() const {
  std::shared_lock lock(mu_);
  return quarantined_codes_.size();
}

}  // namespace poseidon::storage
