// JIT compilation engine (paper §6.2): LLVM ORC-based compilation of
// generated query IR with the paper's optimization pass cascade, an
// in-process memo table, and an optional persistent compiled-code cache.
//
// Pass cascade (paper list): Promote Memory To Register, Control Flow Graph
// Simplification, Loop Unrolling, Dead Code Elimination, Instruction
// Combining — followed by the standard -O3 pipeline.

#ifndef POSEIDON_JIT_JIT_ENGINE_H_
#define POSEIDON_JIT_JIT_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "jit/codegen.h"
#include "jit/query_cache.h"
#include "query/plan.h"
#include "storage/scan_options.h"

namespace llvm {
class TargetMachine;
namespace orc {
class LLJIT;
}  // namespace orc
}  // namespace llvm

namespace poseidon::jit {

/// A ready-to-run compiled query. The function pointer stays valid for the
/// engine's lifetime.
struct CompiledQuery {
  CompiledQueryFn fn = nullptr;
  int tail_index = -1;
  uint32_t num_handle_slots = 0;
  uint64_t query_id = 0;
  bool from_persistent_cache = false;
  bool from_memo = false;
  /// Wall-clock compilation cost (0 when memoized).
  double codegen_ms = 0;
  double optimize_ms = 0;
  double compile_ms = 0;
};

struct JitOptions {
  /// Run the optimization pass cascade + O3 (paper §6.2). Disable for the
  /// ablation benchmark only.
  bool optimize = true;
  /// Consult/fill the persistent code cache.
  bool use_persistent_cache = true;
  /// Batched-scan knobs baked into the generated scan loop (word-level
  /// skip test, prefetch distance). Part of the cache key: different knob
  /// settings produce different machine code.
  storage::ScanOptions scan;
  /// Bake the DRAM adjacency-cache probe + array loop into kExpand
  /// (poseidon_expand_cached fast path with chain-walk fallback). Part of
  /// the cache key like the scan knobs.
  bool adj_cache = true;
};

class JitEngine {
 public:
  /// `cache` may be null (no persistence of compiled code).
  static Result<std::unique_ptr<JitEngine>> Create(QueryCache* cache);

  ~JitEngine();
  JitEngine(const JitEngine&) = delete;
  JitEngine& operator=(const JitEngine&) = delete;

  /// Compiles `plan` (or fetches it from the memo / persistent cache).
  Result<CompiledQuery> Compile(const query::Plan& plan,
                                const JitOptions& options = {});

  /// Memo-only probe: returns the already-compiled query without doing any
  /// work (the adaptive engine checks this before spawning a background
  /// compilation — §6.2's "lookup ... for already compiled code").
  bool TryGetMemoized(const query::Plan& plan, const JitOptions& options,
                      CompiledQuery* out);

  /// Two-phase compilation for adaptive execution: BeginCompile performs
  /// every plan-dependent step (memo/cache probe + IR generation)
  /// synchronously — afterwards the plan may be destroyed — and
  /// FinishCompile runs the expensive optimization/compilation/linking on
  /// the self-contained pending state (typically on a background thread).
  struct PendingCompile {
    bool done = false;         ///< memo/cache hit: `result` is final
    CompiledQuery result;
    JitOptions options;
    std::string fn_name;
    CodegenResult code;        ///< generated module (plan-independent)
    void* dylib = nullptr;     ///< JITDylib prepared by BeginCompile
  };
  Result<PendingCompile> BeginCompile(const query::Plan& plan,
                                      const JitOptions& options = {});
  Result<CompiledQuery> FinishCompile(PendingCompile pending);

  /// Stable identifier of (plan, options) — the compiled-code cache key.
  static uint64_t QueryIdFor(const query::Plan& plan,
                             const JitOptions& options);

  QueryCache* cache() const { return cache_; }

 private:
  JitEngine() = default;

  std::unique_ptr<llvm::orc::LLJIT> jit_;
  std::unique_ptr<llvm::TargetMachine> tm_;
  QueryCache* cache_ = nullptr;
  std::mutex mu_;
  std::unordered_map<uint64_t, CompiledQuery> memo_;
  uint64_t dylib_counter_ = 0;
};

}  // namespace poseidon::jit

#endif  // POSEIDON_JIT_JIT_ENGINE_H_
