// AOT runtime for JIT-compiled queries (paper §6.2).
//
// The code generator inlines the hot data-path — chunk-table loops, MVTO
// fast-path visibility checks, record field loads by fixed byte offset,
// adjacency traversal, predicate evaluation — directly into LLVM IR. For
// everything that is already well-optimized AOT code or inherently
// state-heavy, the generated code calls the extern "C" helpers declared
// here: version-chain fallbacks, property-chain lookups, pipeline breakers
// (order-by/limit/count), hash-join probes, transactional create/set
// operators, and result emission. This mirrors the paper's requirement (4):
// full compatibility with the AOT execution engine.
//
// Calling convention: the generated function has signature
//   i32 query(i8* state, i64 begin, i64 end)
// and returns 0 (ok), 1 (stop requested, e.g. limit reached) or -1 (error;
// the Status is in JitRuntimeState::error). Record handles are caller-
// allocated stack slots (filled by poseidon_node_ref / poseidon_rel_ref),
// satisfying the paper's IR requirements (1) minimal stack allocation and
// (2) initialization at the function entry point.

#ifndef POSEIDON_JIT_RUNTIME_H_
#define POSEIDON_JIT_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "query/interpreter.h"

namespace poseidon::jit {

/// POD header at the start of JitRuntimeState, read directly by generated
/// code (field offsets are hard-coded in jit/codegen.cc): chunk-table
/// geometry for inline record addressing, the transaction timestamp for the
/// inline MVTO fast-path visibility check, and the PMem latency flag.
struct JitStateHeader {
  char* const* node_chunks = nullptr;
  char* const* rel_chunks = nullptr;
  char* const* prop_chunks = nullptr;
  uint64_t node_num_chunks = 0;
  uint64_t rel_num_chunks = 0;
  uint64_t prop_num_chunks = 0;
  uint64_t ts = 0;             ///< transaction timestamp (id)
  uint64_t read_latency = 0;   ///< nonzero: generated code calls poseidon_touch
  /// Nonzero when the transaction's CancelToken carries a deadline or may be
  /// cancelled (always set today — the token always exists). Generated loops
  /// poll poseidon_should_yield at batch granularity when this is nonzero.
  uint64_t cancellable = 0;
};

/// A resolved record reference living in a stack slot of generated code.
/// `rec` points either at the PMem record (fast path) or at `copy` (version
/// from the DRAM chain / write set). Property snapshots for non-fast-path
/// versions are kept per-slot in JitRuntimeState.
struct JitHandle {
  const void* rec = nullptr;
  storage::RecordId id = storage::kNullId;
  storage::RecordId props = storage::kNullId;  ///< property chain head
  uint32_t thread = 0;        ///< owning worker (snapshot storage index)
  uint32_t slot = 0;          ///< index into JitRuntimeState::snapshots
  uint32_t has_snapshot = 0;  ///< properties come from the snapshot vector
  alignas(8) char copy[sizeof(storage::RelationshipRecord)];
};

/// Per-execution shared state. One instance serves every morsel of a query
/// run (the same breaker states the interpreter morsels feed — the adaptive
/// engine relies on this).
struct JitRuntimeState {
  JitStateHeader header;  ///< MUST stay the first member (read from IR)

  query::ExecContext ctx;
  query::ResultCollector* collector = nullptr;
  query::PipelineExecutor* executor = nullptr;  ///< tail/breaker delegate
  const query::Plan* plan = nullptr;
  std::vector<const query::Op*> ops;  ///< source..sink (interpreter order)

  /// Property snapshots per handle slot, per thread. Indexed
  /// [thread][slot]; sized by Prepare().
  struct ThreadSlots {
    std::vector<std::vector<storage::Property>> snapshots;
    std::vector<storage::RecordId> index_matches;  ///< index-scan buffer
    /// Adjacency arrays pinned by poseidon_expand_cached, indexed by handle
    /// slot: the shared_ptr keeps the DRAM array alive while generated code
    /// streams it, even if the cache evicts or invalidates the entry.
    std::vector<std::shared_ptr<const tx::AdjacencyList>> adj_holds;
    /// Borrowed pointer to the executor's materialized match list (set by
    /// poseidon_index_matches when available). Sharing it keeps compiled
    /// and interpreted morsels in agreement on match ordering and count
    /// (PipelineExecutor::SourceCardinality drives the morsel split).
    const std::vector<storage::RecordId>* shared_matches = nullptr;
  };
  std::vector<std::unique_ptr<ThreadSlots>> threads;

  Status error;  ///< first helper error (guarded by error_mu)
  std::mutex error_mu;

  void SetError(const Status& s) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (error.ok()) error = s;
  }
};

}  // namespace poseidon::jit

extern "C" {

/// Resolves node `id` to the version visible to the transaction.
/// Returns 1 (visible; slot filled), 0 (skip: free slot / invisible), or
/// -1 (error/abort; see state->error). `thread` and `slot` address the
/// snapshot storage.
int32_t poseidon_node_ref(void* state, uint64_t id, void* slot_ptr,
                          uint32_t thread, uint32_t slot);

/// Like poseidon_node_ref for relationships, but on return the slot's `rec`
/// is ALWAYS usable for reading the chain pointers (next_src/next_dst) so
/// traversals can continue past invisible relationships.
int32_t poseidon_rel_ref(void* state, uint64_t id, void* slot_ptr,
                         uint32_t thread, uint32_t slot);

/// Property lookup against a resolved handle. Returns the PType tag and
/// stores the raw payload in *out (0 tag = null/absent).
uint32_t poseidon_get_prop(void* state, void* slot_ptr, uint32_t key,
                           uint64_t* out);

/// Loads query parameter `idx`; returns the Value kind tag.
uint32_t poseidon_param(void* state, uint32_t idx, uint64_t* out);

/// Generic comparison of two (kind, raw) values under CmpOp `cmp`
/// (handles int/double coercion like the interpreter). Returns 0/1.
int32_t poseidon_compare(uint32_t cmp, uint32_t kind_a, uint64_t raw_a,
                         uint32_t kind_b, uint64_t raw_b);

/// Materializes the matches of the index-scan source operator `op_idx`
/// into the thread's buffer; returns the match count.
uint64_t poseidon_index_matches(void* state, uint32_t op_idx,
                                uint32_t thread);

/// i-th buffered index match of this thread.
uint64_t poseidon_index_match_at(void* state, uint32_t thread, uint64_t i);

/// Injects the emulated PMem read latency for [ptr, ptr+len). Generated
/// code calls this only when JitStateHeader::read_latency is nonzero.
void poseidon_touch(void* state, const void* ptr, uint64_t len);

/// Starts the emulated-PMem asynchronous fill for [ptr, ptr+len) without
/// blocking (the hardware prefetch instruction is emitted inline by the
/// generated code). A later poseidon_touch of the same block pays only the
/// residual latency. Called only when JitStateHeader::read_latency is
/// nonzero.
void poseidon_prefetch(void* state, const void* ptr, uint64_t len);

/// Probes (or lazily builds) the versioned DRAM adjacency cache for
/// (node_id, direction). On success returns the base of a CachedNeighbor
/// array (24-byte stride; see tx/adjacency_cache.h) and stores the entry
/// count in *count_out; the array stays pinned in the thread's `slot` until
/// the next probe reuses that slot. Returns null when the cache cannot
/// serve this transaction (disabled, writer tx, old snapshot, in-flight
/// versions) — generated code then falls back to the inline chain walk.
const void* poseidon_expand_cached(void* state, uint64_t node_id,
                                   uint32_t dir_out, uint32_t thread,
                                   uint32_t slot, uint64_t* count_out);

/// Cooperative-cancellation poll for generated loops (overload governance):
/// checks the transaction's CancelToken. Returns 0 (keep going) or nonzero
/// (stop: kCancelled / kDeadlineExceeded recorded in state->error, the
/// generated code branches to its error exit).
int32_t poseidon_should_yield(void* state);

/// Emits a finished tuple. `tail_idx` < 0 sends it to the collector;
/// otherwise the tuple enters the interpreter pipeline at operator
/// `tail_idx` (pipeline breakers, joins, create/set operators — the AOT
/// tail). Returns 0 (ok), 1 (stop producing) or -1 (error).
int32_t poseidon_emit(void* state, int32_t tail_idx, uint32_t n,
                      const uint64_t* vals, const uint8_t* kinds);

}  // extern "C"

#endif  // POSEIDON_JIT_RUNTIME_H_
