#include "jit/codegen.h"

#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/Intrinsics.h>
#include <llvm/IR/Verifier.h>

#include <functional>
#include <map>

#include "jit/runtime.h"
#include "storage/graph_store.h"
#include "storage/records.h"
#include "tx/adjacency_cache.h"

namespace poseidon::jit {

namespace {

using query::Expr;
using query::Op;
using query::OpKind;
using query::Plan;
using query::Value;

constexpr uint64_t kNullId = storage::kNullId;

// Chunk-table geometry baked into generated code. All three tables use 512
// records per chunk, so record ids split as (id >> 9, id & 511).
static_assert(storage::NodeTable::kBitmapWords == 8);
constexpr uint64_t kRpcShift = 9;
constexpr uint64_t kRpcMask = 511;
constexpr uint64_t kNodeHeaderBytes = storage::NodeTable::kHeaderBytes;
constexpr uint64_t kRelHeaderBytes = storage::RelationshipTable::kHeaderBytes;
constexpr uint64_t kPropHeaderBytes = storage::PropertyTable::kHeaderBytes;

// JitHandle field offsets consumed by inline fast-path stores.
static_assert(offsetof(JitHandle, rec) == 0);
static_assert(offsetof(JitHandle, id) == 8);
static_assert(offsetof(JitHandle, props) == 16);
static_assert(offsetof(JitHandle, has_snapshot) == 32);

// JitStateHeader field offsets consumed by the entry block.
static_assert(offsetof(JitStateHeader, node_chunks) == 0);
static_assert(offsetof(JitStateHeader, rel_chunks) == 8);
static_assert(offsetof(JitStateHeader, prop_chunks) == 16);
static_assert(offsetof(JitStateHeader, node_num_chunks) == 24);
static_assert(offsetof(JitStateHeader, rel_num_chunks) == 32);
static_assert(offsetof(JitStateHeader, prop_num_chunks) == 40);
static_assert(offsetof(JitStateHeader, ts) == 48);
static_assert(offsetof(JitStateHeader, read_latency) == 56);
static_assert(offsetof(JitRuntimeState, header) == 0);

// CachedNeighbor layout streamed by the Expand fast path (24-byte stride).
static_assert(sizeof(tx::CachedNeighbor) == 24);
static_assert(offsetof(tx::CachedNeighbor, rel_id) == 0);
static_assert(offsetof(tx::CachedNeighbor, neighbor) == 8);
static_assert(offsetof(tx::CachedNeighbor, rel_label) == 16);

uint8_t KindTag(Value::Kind k) { return static_cast<uint8_t>(k); }

/// Ops the generator inlines; anything else starts the AOT tail.
bool IsInlinable(const Op* op, bool is_source) {
  switch (op->kind) {
    case OpKind::kNodeScan:
    case OpKind::kIndexScan:
    case OpKind::kIndexRangeScan:
      return is_source;
    case OpKind::kFilter:
    case OpKind::kExpand:
    case OpKind::kExpandTransitive:
    case OpKind::kProject:
      return true;
    default:
      return false;
  }
}

class CodeGenerator {
 public:
  CodeGenerator(const Plan& plan, const std::string& fn_name,
                const storage::ScanOptions& scan, bool adj_cache)
      : plan_(plan), fn_name_(fn_name), scan_(scan), adj_cache_(adj_cache) {}

  Result<CodegenResult> Generate();

 private:
  /// One tuple element: raw payload + kind tag (both IR values; the kind is
  /// almost always a constant) and, for node/rel columns, the handle slot
  /// whose `rec` pointer serves field loads.
  struct Col {
    llvm::Value* raw;
    llvm::Value* kind;  // i8
    int handle_slot = -1;
  };

  llvm::IRBuilder<>& b() { return *builder_; }
  llvm::Type* I8() { return builder_->getInt8Ty(); }
  llvm::Type* I32() { return builder_->getInt32Ty(); }
  llvm::Type* I64() { return builder_->getInt64Ty(); }
  llvm::PointerType* PtrTy() { return builder_->getInt8PtrTy(); }
  llvm::Constant* C32(uint32_t v) { return builder_->getInt32(v); }
  llvm::Constant* C64(uint64_t v) { return builder_->getInt64(v); }
  llvm::Constant* CKind(Value::Kind k) { return builder_->getInt8(KindTag(k)); }

  void DeclareHelpers();
  llvm::BasicBlock* NewBlock(const std::string& name) {
    return llvm::BasicBlock::Create(*context_, name, fn_);
  }

  std::pair<llvm::Value*, uint32_t> AllocHandle();

  llvm::Value* LoadRec(llvm::Value* slot_ptr);
  llvm::Value* LoadField64(llvm::Value* rec, uint64_t byte_off);
  llvm::Value* LoadField64Atomic(llvm::Value* rec, uint64_t byte_off);
  llvm::Value* LoadField32(llvm::Value* rec, uint64_t byte_off);
  llvm::Value* LoadLabel(llvm::Value* rec) {
    return LoadField32(rec, storage::kOffsetOfLabel);
  }
  void StoreField64(llvm::Value* rec, uint64_t byte_off, llvm::Value* v);
  void StoreField32(llvm::Value* rec, uint64_t byte_off, llvm::Value* v);

  /// Emits the conditional PMem read-latency injection for [ptr, ptr+len).
  void EmitTouch(llvm::Value* ptr, uint64_t len);

  /// Emits a cooperative-cancellation poll (poseidon_should_yield) gated on
  /// JitStateHeader::cancellable; a fired token branches to ret_err_.
  void EmitCancelPoll(const char* tag);

  /// Emits a software prefetch for [ptr, ptr+len): the hardware prefetch
  /// instruction unconditionally, plus the emulated-PMem asynchronous-fill
  /// helper when the pool charges read latency.
  void EmitPrefetch(llvm::Value* ptr, uint64_t len);

  /// Resolves record `id` into handle `slot_ptr`. Inlines the paper's hot
  /// path: chunk addressing, occupancy bitmap, MVTO fast-path visibility
  /// (unlocked latest committed version, rts bump + revalidation); all
  /// other cases (locked, chain versions, write set) call the AOT helper.
  /// Returns an i1 "visible". For relationships the handle is ALWAYS
  /// readable afterwards (chain pointers of invisible records); for nodes
  /// it is readable only when visible. Errors branch to ret_err_.
  llvm::Value* EmitRecordRef(bool is_node, llvm::Value* id,
                             llvm::Value* slot_ptr, uint32_t slot_idx);

  /// Inline property lookup on a resolved handle: walks the PMem property
  /// chain in IR (snapshot versions fall back to the AOT helper). Returns
  /// the (raw, Value-kind) pair.
  Col EmitPropLoad(llvm::Value* slot_ptr, uint32_t key);

  Result<Col> EvalExpr(const Expr& e);

  Status EmitPipeline(size_t i, llvm::BasicBlock* cont);
  Status EmitFilter(const Op* op, size_t i, llvm::BasicBlock* cont);
  Status EmitExpand(const Op* op, size_t i, llvm::BasicBlock* cont);
  Status EmitExpandTransitive(const Op* op, size_t i, llvm::BasicBlock* cont);
  Status EmitProject(const Op* op, size_t i, llvm::BasicBlock* cont);
  Status EmitTailCall(llvm::BasicBlock* cont);
  Status EmitNodeScanSource();
  Status EmitNodeScanScalar();
  Status EmitNodeScanBatched();
  Status EmitIndexScanSource();
  Status EmitCreateSource();

  const Plan& plan_;
  std::string fn_name_;
  storage::ScanOptions scan_;
  bool adj_cache_ = true;

  std::unique_ptr<llvm::LLVMContext> context_;
  std::unique_ptr<llvm::Module> module_;
  std::unique_ptr<llvm::IRBuilder<>> builder_;
  llvm::Function* fn_ = nullptr;

  std::vector<const Op*> ops_;  // source..sink
  int tail_index_ = -1;

  llvm::Value* arg_state_ = nullptr;
  llvm::Value* arg_begin_ = nullptr;
  llvm::Value* arg_end_ = nullptr;
  llvm::Value* arg_thread_ = nullptr;

  // Header fields hoisted to the entry block.
  llvm::Value* hdr_node_chunks_ = nullptr;
  llvm::Value* hdr_rel_chunks_ = nullptr;
  llvm::Value* hdr_prop_chunks_ = nullptr;
  llvm::Value* hdr_node_nc_ = nullptr;
  llvm::Value* hdr_rel_nc_ = nullptr;
  llvm::Value* hdr_prop_nc_ = nullptr;
  llvm::Value* hdr_ts_ = nullptr;
  llvm::Value* hdr_has_latency_ = nullptr;  // i1
  llvm::Value* hdr_cancellable_ = nullptr;  // i1

  llvm::BasicBlock* entry_ = nullptr;
  llvm::BasicBlock* ret_ok_ = nullptr;
  llvm::BasicBlock* ret_stop_ = nullptr;
  llvm::BasicBlock* ret_err_ = nullptr;
  llvm::Value* tmp_u64_ = nullptr;
  llvm::Value* vals_array_ = nullptr;
  llvm::Value* kinds_array_ = nullptr;
  uint32_t emit_width_ = 0;

  llvm::FunctionCallee h_node_ref_, h_rel_ref_, h_get_prop_, h_param_,
      h_compare_, h_index_matches_, h_index_match_at_, h_emit_, h_touch_,
      h_prefetch_, h_expand_cached_, h_should_yield_;

  std::map<int, Col> params_;
  std::vector<Col> cols_;
  std::vector<llvm::Value*> handle_ptrs_;
  uint32_t num_handle_slots_ = 0;
};

void CodeGenerator::DeclareHelpers() {
  auto* i32 = llvm::Type::getInt32Ty(*context_);
  auto* i64 = llvm::Type::getInt64Ty(*context_);
  auto* ptr = llvm::Type::getInt8PtrTy(*context_);
  auto* i64p = llvm::Type::getInt64PtrTy(*context_);
  auto* void_ty = llvm::Type::getVoidTy(*context_);

  h_node_ref_ = module_->getOrInsertFunction(
      "poseidon_node_ref",
      llvm::FunctionType::get(i32, {ptr, i64, ptr, i32, i32}, false));
  h_rel_ref_ = module_->getOrInsertFunction(
      "poseidon_rel_ref",
      llvm::FunctionType::get(i32, {ptr, i64, ptr, i32, i32}, false));
  h_get_prop_ = module_->getOrInsertFunction(
      "poseidon_get_prop",
      llvm::FunctionType::get(i32, {ptr, ptr, i32, i64p}, false));
  h_param_ = module_->getOrInsertFunction(
      "poseidon_param", llvm::FunctionType::get(i32, {ptr, i32, i64p}, false));
  h_compare_ = module_->getOrInsertFunction(
      "poseidon_compare",
      llvm::FunctionType::get(i32, {i32, i32, i64, i32, i64}, false));
  h_index_matches_ = module_->getOrInsertFunction(
      "poseidon_index_matches",
      llvm::FunctionType::get(i64, {ptr, i32, i32}, false));
  h_index_match_at_ = module_->getOrInsertFunction(
      "poseidon_index_match_at",
      llvm::FunctionType::get(i64, {ptr, i32, i64}, false));
  h_emit_ = module_->getOrInsertFunction(
      "poseidon_emit",
      llvm::FunctionType::get(i32, {ptr, i32, i32, i64p, ptr}, false));
  h_touch_ = module_->getOrInsertFunction(
      "poseidon_touch",
      llvm::FunctionType::get(void_ty, {ptr, ptr, i64}, false));
  h_prefetch_ = module_->getOrInsertFunction(
      "poseidon_prefetch",
      llvm::FunctionType::get(void_ty, {ptr, ptr, i64}, false));
  h_expand_cached_ = module_->getOrInsertFunction(
      "poseidon_expand_cached",
      llvm::FunctionType::get(ptr, {ptr, i64, i32, i32, i32, i64p}, false));
  h_should_yield_ = module_->getOrInsertFunction(
      "poseidon_should_yield", llvm::FunctionType::get(i32, {ptr}, false));
}

/// Emits a cooperative-cancellation poll: when the state is cancellable,
/// calls poseidon_should_yield and branches to the error exit (state->error
/// carries kCancelled / kDeadlineExceeded) on a nonzero answer. Placed at
/// batch granularity — occupancy word, gather batch, expand hop — so
/// compiled queries stay interruptible (paper-survey requirement: compiled
/// loops need explicit interruption points).
void CodeGenerator::EmitCancelPoll(const char* tag) {
  auto* poll = NewBlock(std::string(tag) + ".poll");
  auto* cont = NewBlock(std::string(tag) + ".poll.cont");
  b().CreateCondBr(hdr_cancellable_, poll, cont);
  b().SetInsertPoint(poll);
  auto* ans = b().CreateCall(h_should_yield_, {arg_state_});
  b().CreateCondBr(b().CreateICmpNE(ans, C32(0)), ret_err_, cont);
  b().SetInsertPoint(cont);
}

std::pair<llvm::Value*, uint32_t> CodeGenerator::AllocHandle() {
  llvm::IRBuilder<> eb(entry_, entry_->begin());
  auto* ty = llvm::ArrayType::get(eb.getInt8Ty(), sizeof(JitHandle));
  auto* slot = eb.CreateAlloca(ty, nullptr, "handle");
  slot->setAlignment(llvm::Align(8));
  uint32_t idx = num_handle_slots_++;
  return {builder_->CreateBitCast(slot, PtrTy()), idx};
}

llvm::Value* CodeGenerator::LoadRec(llvm::Value* slot_ptr) {
  auto* pp = b().CreateBitCast(slot_ptr, PtrTy()->getPointerTo());
  return b().CreateLoad(PtrTy(), pp, "rec");
}

llvm::Value* CodeGenerator::LoadField64(llvm::Value* rec, uint64_t byte_off) {
  auto* addr = b().CreateGEP(I8(), rec, C64(byte_off));
  auto* p = b().CreateBitCast(addr, llvm::Type::getInt64PtrTy(*context_));
  return b().CreateLoad(I64(), p);
}

llvm::Value* CodeGenerator::LoadField64Atomic(llvm::Value* rec,
                                              uint64_t byte_off) {
  auto* addr = b().CreateGEP(I8(), rec, C64(byte_off));
  auto* p = b().CreateBitCast(addr, llvm::Type::getInt64PtrTy(*context_));
  auto* load = b().CreateLoad(I64(), p);
  load->setAtomic(llvm::AtomicOrdering::Acquire);
  load->setAlignment(llvm::Align(8));
  return load;
}

llvm::Value* CodeGenerator::LoadField32(llvm::Value* rec, uint64_t byte_off) {
  auto* addr = b().CreateGEP(I8(), rec, C64(byte_off));
  auto* p = b().CreateBitCast(addr, llvm::Type::getInt32PtrTy(*context_));
  return b().CreateLoad(I32(), p);
}

void CodeGenerator::StoreField64(llvm::Value* rec, uint64_t byte_off,
                                 llvm::Value* v) {
  auto* addr = b().CreateGEP(I8(), rec, C64(byte_off));
  auto* p = b().CreateBitCast(addr, llvm::Type::getInt64PtrTy(*context_));
  b().CreateStore(v, p);
}

void CodeGenerator::StoreField32(llvm::Value* rec, uint64_t byte_off,
                                 llvm::Value* v) {
  auto* addr = b().CreateGEP(I8(), rec, C64(byte_off));
  auto* p = b().CreateBitCast(addr, llvm::Type::getInt32PtrTy(*context_));
  b().CreateStore(v, p);
}

void CodeGenerator::EmitTouch(llvm::Value* ptr, uint64_t len) {
  auto* touch_bb = NewBlock("touch");
  auto* cont_bb = NewBlock("touch.cont");
  b().CreateCondBr(hdr_has_latency_, touch_bb, cont_bb);
  b().SetInsertPoint(touch_bb);
  b().CreateCall(h_touch_, {arg_state_, ptr, C64(len)});
  b().CreateBr(cont_bb);
  b().SetInsertPoint(cont_bb);
}

void CodeGenerator::EmitPrefetch(llvm::Value* ptr, uint64_t len) {
  // llvm.prefetch(ptr, rw=read, locality=0 (streaming), cache=data).
  b().CreateIntrinsic(llvm::Intrinsic::prefetch, {PtrTy()},
                      {ptr, C32(0), C32(0), C32(1)});
  auto* pf_bb = NewBlock("prefetch");
  auto* cont_bb = NewBlock("prefetch.cont");
  b().CreateCondBr(hdr_has_latency_, pf_bb, cont_bb);
  b().SetInsertPoint(pf_bb);
  b().CreateCall(h_prefetch_, {arg_state_, ptr, C64(len)});
  b().CreateBr(cont_bb);
  b().SetInsertPoint(cont_bb);
}

llvm::Value* CodeGenerator::EmitRecordRef(bool is_node, llvm::Value* id,
                                          llvm::Value* slot_ptr,
                                          uint32_t slot_idx) {
  llvm::Value* chunks = is_node ? hdr_node_chunks_ : hdr_rel_chunks_;
  llvm::Value* num_chunks = is_node ? hdr_node_nc_ : hdr_rel_nc_;
  uint64_t header_bytes = is_node ? kNodeHeaderBytes : kRelHeaderBytes;
  uint64_t rec_size = is_node ? sizeof(storage::NodeRecord)
                              : sizeof(storage::RelationshipRecord);
  uint64_t props_off =
      is_node ? storage::kOffsetOfNodeProps : storage::kOffsetOfRelProps;
  const char* tag = is_node ? "nref" : "rref";

  auto* addr_bb = NewBlock(std::string(tag) + ".addr");
  auto* occ_bb = NewBlock(std::string(tag) + ".occ");
  auto* fast_bb = NewBlock(std::string(tag) + ".fast");
  auto* fill_bb = NewBlock(std::string(tag) + ".fill");
  auto* slow_bb = NewBlock(std::string(tag) + ".slow");
  auto* slow_ok_bb = NewBlock(std::string(tag) + ".slow_ok");
  auto* merge_bb = NewBlock(std::string(tag) + ".merge");
  llvm::BasicBlock* miss_bb =
      is_node ? NewBlock(std::string(tag) + ".miss") : nullptr;

  // Bounds check: out-of-snapshot ids (own inserts in fresh chunks) take
  // the slow path, which resolves them through the write set.
  auto* chunk = b().CreateLShr(id, C64(kRpcShift), "chunk");
  auto* in_bounds = b().CreateICmpULT(chunk, num_chunks);
  b().CreateCondBr(in_bounds, addr_bb, slow_bb);

  // addr: chunk base + occupancy bitmap test.
  b().SetInsertPoint(addr_bb);
  auto* slotno = b().CreateAnd(id, C64(kRpcMask), "slot");
  auto* chunk_pp = b().CreateGEP(PtrTy(), chunks, chunk);
  auto* base = b().CreateLoad(PtrTy(), chunk_pp, "chunk_base");
  auto* word_index = b().CreateLShr(slotno, C64(6));
  auto* word_addr = b().CreateGEP(
      I8(), base,
      b().CreateAdd(C64(16), b().CreateShl(word_index, C64(3))));
  auto* word = b().CreateLoad(
      I64(), b().CreateBitCast(word_addr,
                               llvm::Type::getInt64PtrTy(*context_)));
  auto* bit = b().CreateAnd(
      b().CreateLShr(word, b().CreateAnd(slotno, C64(63))), C64(1));
  auto* occupied = b().CreateICmpNE(bit, C64(0));
  // Unoccupied node slots are plain invisible (scans skip them without a
  // helper call); unoccupied relationship slots defer to the helper, which
  // also provides the raw chain pointers.
  b().CreateCondBr(occupied, occ_bb, is_node ? miss_bb : slow_bb);

  // occ: record address, latency, MVTO fast-path check.
  b().SetInsertPoint(occ_bb);
  auto* rec = b().CreateGEP(
      I8(), base,
      b().CreateAdd(C64(header_bytes),
                    b().CreateMul(slotno, C64(rec_size))),
      "recptr");
  EmitTouch(rec, rec_size);
  auto* txn = LoadField64Atomic(rec, storage::kOffsetOfTxnId);
  auto* bts = LoadField64(rec, storage::kOffsetOfBts);
  auto* ets = LoadField64(rec, storage::kOffsetOfEts);
  auto* fast = b().CreateAnd(
      b().CreateAnd(b().CreateICmpEQ(txn, C64(0)),
                    b().CreateICmpNE(bts, C64(0))),
      b().CreateAnd(b().CreateICmpULE(bts, hdr_ts_),
                    b().CreateICmpULT(hdr_ts_, ets)));
  b().CreateCondBr(fast, fast_bb, slow_bb);

  // fast: rts bump (atomic umax, unflushed — §5.1) + revalidation.
  b().SetInsertPoint(fast_bb);
  auto* rts_addr = b().CreateBitCast(
      b().CreateGEP(I8(), rec, C64(storage::kOffsetOfRts)),
      llvm::Type::getInt64PtrTy(*context_));
  b().CreateAtomicRMW(llvm::AtomicRMWInst::UMax, rts_addr, hdr_ts_,
                      llvm::MaybeAlign(8),
                      llvm::AtomicOrdering::AcquireRelease);
  auto* txn2 = LoadField64Atomic(rec, storage::kOffsetOfTxnId);
  auto* bts2 = LoadField64(rec, storage::kOffsetOfBts);
  auto* stable = b().CreateAnd(b().CreateICmpEQ(txn2, C64(0)),
                               b().CreateICmpEQ(bts2, bts));
  b().CreateCondBr(stable, fill_bb, slow_bb);

  // fill: handle points at the live PMem record (no copy on the hot path).
  b().SetInsertPoint(fill_bb);
  {
    auto* pp = b().CreateBitCast(slot_ptr, PtrTy()->getPointerTo());
    b().CreateStore(rec, pp);
    StoreField64(slot_ptr, offsetof(JitHandle, id), id);
    StoreField64(slot_ptr, offsetof(JitHandle, props),
                 LoadField64(rec, props_off));
    StoreField32(slot_ptr, offsetof(JitHandle, has_snapshot), C32(0));
  }
  b().CreateBr(merge_bb);

  // slow: write set, version chains, locks, uncommitted inserts.
  b().SetInsertPoint(slow_bb);
  auto* r = b().CreateCall(
      is_node ? h_node_ref_ : h_rel_ref_,
      {arg_state_, id, slot_ptr, arg_thread_, C32(slot_idx)});
  auto* is_err = b().CreateICmpSLT(r, C32(0));
  b().CreateCondBr(is_err, ret_err_, slow_ok_bb);
  b().SetInsertPoint(slow_ok_bb);
  auto* vis_slow = b().CreateICmpEQ(r, C32(1));
  b().CreateBr(merge_bb);

  if (is_node) {
    b().SetInsertPoint(miss_bb);
    b().CreateBr(merge_bb);
  }

  b().SetInsertPoint(merge_bb);
  auto* visible = b().CreatePHI(b().getInt1Ty(), is_node ? 3 : 2, "visible");
  visible->addIncoming(b().getTrue(), fill_bb);
  visible->addIncoming(vis_slow, slow_ok_bb);
  if (is_node) visible->addIncoming(b().getFalse(), miss_bb);
  return visible;
}

CodeGenerator::Col CodeGenerator::EmitPropLoad(llvm::Value* slot_ptr,
                                               uint32_t key) {
  auto* inline_bb = NewBlock("prop.inline");
  auto* loop_bb = NewBlock("prop.loop");
  auto* body_bb = NewBlock("prop.body");
  auto* helper_bb = NewBlock("prop.helper");
  auto* miss_bb = NewBlock("prop.miss");
  auto* merge_bb = NewBlock("prop.merge");

  auto* pre_bb = b().GetInsertBlock();
  auto* has_snap = LoadField32(slot_ptr, offsetof(JitHandle, has_snapshot));
  b().CreateCondBr(b().CreateICmpNE(has_snap, C32(0)), helper_bb, inline_bb);
  (void)pre_bb;

  // inline: walk the PMem property chain directly (DD3 layout: 64 B
  // records, 3 entries of {key u32, type u32, value u64} at offset 16).
  b().SetInsertPoint(inline_bb);
  auto* head = LoadField64(slot_ptr, offsetof(JitHandle, props));
  b().CreateBr(loop_bb);

  b().SetInsertPoint(loop_bb);
  auto* cur = b().CreatePHI(I64(), 2, "prop.cur");
  cur->addIncoming(head, inline_bb);
  auto* at_end = b().CreateICmpEQ(cur, C64(kNullId));
  auto* bounds_bb = NewBlock("prop.bounds");
  b().CreateCondBr(at_end, miss_bb, bounds_bb);

  b().SetInsertPoint(bounds_bb);
  auto* chunk = b().CreateLShr(cur, C64(kRpcShift));
  auto* in_bounds = b().CreateICmpULT(chunk, hdr_prop_nc_);
  b().CreateCondBr(in_bounds, body_bb, miss_bb);

  b().SetInsertPoint(body_bb);
  auto* slotno = b().CreateAnd(cur, C64(kRpcMask));
  auto* base = b().CreateLoad(
      PtrTy(), b().CreateGEP(PtrTy(), hdr_prop_chunks_, chunk));
  auto* rec = b().CreateGEP(
      I8(), base,
      b().CreateAdd(C64(kPropHeaderBytes), b().CreateMul(slotno, C64(64))));
  EmitTouch(rec, 64);

  // Three key comparisons; hits collect (type, value) per entry.
  std::vector<std::pair<llvm::BasicBlock*, std::pair<llvm::Value*,
                                                     llvm::Value*>>>
      hits;
  auto* hit_merge_bb = NewBlock("prop.hit");
  llvm::BasicBlock* cur_bb = b().GetInsertBlock();
  llvm::Value* next = nullptr;
  for (int e = 0; e < storage::PropertyRecord::kEntriesPerRecord; ++e) {
    uint64_t entry_off = 16 + 16 * static_cast<uint64_t>(e);
    auto* k = LoadField32(rec, entry_off);
    auto* match = b().CreateICmpEQ(k, C32(key));
    auto* found_bb = NewBlock("prop.found");
    auto* next_bb = NewBlock("prop.next_entry");
    b().CreateCondBr(match, found_bb, next_bb);
    b().SetInsertPoint(found_bb);
    auto* type = LoadField32(rec, entry_off + 4);
    auto* value = LoadField64(rec, entry_off + 8);
    hits.emplace_back(found_bb, std::make_pair(type, value));
    b().CreateBr(hit_merge_bb);
    b().SetInsertPoint(next_bb);
    cur_bb = next_bb;
  }
  next = LoadField64(rec, 8);  // PropertyRecord::next
  cur->addIncoming(next, cur_bb);
  b().CreateBr(loop_bb);

  // hit: convert the storage PType tag to a query::Value kind.
  b().SetInsertPoint(hit_merge_bb);
  auto* type_phi = b().CreatePHI(I32(), hits.size(), "ptype");
  auto* value_phi = b().CreatePHI(I64(), hits.size(), "praw");
  for (auto& [bb, tv] : hits) {
    type_phi->addIncoming(tv.first, bb);
    value_phi->addIncoming(tv.second, bb);
  }
  // PType {0:null,1:int,2:double,3:string,4:bool}
  //  -> Kind {0:null,2:int,3:double,4:string,1:bool}
  auto* kind_hit = b().CreateSelect(
      b().CreateICmpEQ(type_phi, C32(1)), b().getInt8(2),
      b().CreateSelect(
          b().CreateICmpEQ(type_phi, C32(2)), b().getInt8(3),
          b().CreateSelect(
              b().CreateICmpEQ(type_phi, C32(3)), b().getInt8(4),
              b().CreateSelect(b().CreateICmpEQ(type_phi, C32(4)),
                               b().getInt8(1), b().getInt8(0)))));
  auto* hit_end_bb = b().GetInsertBlock();
  b().CreateBr(merge_bb);

  // helper: DRAM snapshot versions.
  b().SetInsertPoint(helper_bb);
  auto* kind_helper32 = b().CreateCall(
      h_get_prop_,
      {arg_state_, slot_ptr, C32(key),
       b().CreateBitCast(tmp_u64_, llvm::Type::getInt64PtrTy(*context_))});
  auto* raw_helper = b().CreateLoad(I64(), tmp_u64_);
  auto* kind_helper = b().CreateTrunc(kind_helper32, I8());
  auto* helper_end_bb = b().GetInsertBlock();
  b().CreateBr(merge_bb);

  b().SetInsertPoint(miss_bb);
  b().CreateBr(merge_bb);

  b().SetInsertPoint(merge_bb);
  auto* kind = b().CreatePHI(I8(), 3, "prop.kind");
  auto* raw = b().CreatePHI(I64(), 3, "prop.raw");
  kind->addIncoming(kind_hit, hit_end_bb);
  raw->addIncoming(value_phi, hit_end_bb);
  kind->addIncoming(kind_helper, helper_end_bb);
  raw->addIncoming(raw_helper, helper_end_bb);
  kind->addIncoming(b().getInt8(0), miss_bb);
  raw->addIncoming(C64(0), miss_bb);
  return Col{raw, kind, -1};
}

Result<CodeGenerator::Col> CodeGenerator::EvalExpr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return Col{C64(e.literal.raw()), CKind(e.literal.kind()), -1};
    case Expr::Kind::kParam: {
      auto it = params_.find(e.param);
      if (it == params_.end()) {
        return Status::Internal("parameter not preloaded");
      }
      return it->second;
    }
    case Expr::Kind::kColumn:
      if (e.column < 0 || e.column >= static_cast<int>(cols_.size())) {
        return Status::InvalidArgument("codegen: column out of range");
      }
      return cols_[e.column];
    case Expr::Kind::kProperty: {
      if (e.column < 0 || e.column >= static_cast<int>(cols_.size()) ||
          cols_[e.column].handle_slot < 0) {
        return Status::InvalidArgument(
            "codegen: property access needs a record column");
      }
      llvm::Value* slot = handle_ptrs_[cols_[e.column].handle_slot];
      return EmitPropLoad(slot, e.key);
    }
    case Expr::Kind::kRecordId: {
      if (e.column < 0 || e.column >= static_cast<int>(cols_.size())) {
        return Status::InvalidArgument("codegen: column out of range");
      }
      return Col{cols_[e.column].raw, CKind(Value::Kind::kInt), -1};
    }
    case Expr::Kind::kLabel: {
      if (e.column < 0 || e.column >= static_cast<int>(cols_.size()) ||
          cols_[e.column].handle_slot < 0) {
        return Status::InvalidArgument(
            "codegen: label access needs a record column");
      }
      llvm::Value* slot = handle_ptrs_[cols_[e.column].handle_slot];
      auto* rec = LoadRec(slot);
      auto* lbl = b().CreateZExt(LoadLabel(rec), I64());
      return Col{lbl, CKind(Value::Kind::kString), -1};
    }
  }
  return Status::Internal("codegen: unknown expression kind");
}

Status CodeGenerator::EmitFilter(const Op* op, size_t i,
                                 llvm::BasicBlock* cont) {
  llvm::Value* pass = nullptr;
  if (op->label != storage::kInvalidCode) {
    const Col& c = cols_[op->column];
    if (c.handle_slot < 0) {
      return Status::InvalidArgument("codegen: label filter needs a record");
    }
    auto* rec = LoadRec(handle_ptrs_[c.handle_slot]);
    pass = b().CreateICmpEQ(LoadLabel(rec), C32(op->label));
  } else {
    Col lhs;
    if (op->key != storage::kInvalidCode) {
      POSEIDON_ASSIGN_OR_RETURN(
          lhs, EvalExpr(Expr::Property(op->column, op->key)));
    } else {
      lhs = Col{cols_[op->column].raw, CKind(Value::Kind::kInt), -1};
    }
    POSEIDON_ASSIGN_OR_RETURN(Col rhs, EvalExpr(op->value));
    auto* r = b().CreateCall(
        h_compare_,
        {C32(static_cast<uint32_t>(op->cmp)), b().CreateZExt(lhs.kind, I32()),
         lhs.raw, b().CreateZExt(rhs.kind, I32()), rhs.raw});
    pass = b().CreateICmpNE(r, C32(0));
  }
  auto* then = NewBlock("filter.pass");
  b().CreateCondBr(pass, then, cont);
  b().SetInsertPoint(then);
  return EmitPipeline(i + 1, cont);
}

Status CodeGenerator::EmitExpand(const Op* op, size_t i,
                                 llvm::BasicBlock* cont) {
  const Col& c = cols_[op->column];
  if (c.handle_slot < 0) {
    return Status::InvalidArgument("codegen: expand needs a node column");
  }
  bool out = op->dir == query::Direction::kOut;
  // Cancellation poll per expanded tuple: bounds a hub node's neighbor walk
  // (the scan loops provide the per-record cadence upstream).
  EmitCancelPoll("exp");
  auto* rec = LoadRec(handle_ptrs_[c.handle_slot]);
  auto* first = LoadField64(rec, out ? storage::kOffsetOfNodeFirstOut
                                     : storage::kOffsetOfNodeFirstIn);

  llvm::IRBuilder<> eb(entry_, entry_->begin());
  auto* cur_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "exp.cur");
  b().CreateStore(first, cur_addr);

  auto [rel_slot, rel_idx] = AllocHandle();
  auto [node_slot, node_idx] = AllocHandle();

  auto* head = NewBlock("exp.head");
  auto* body = NewBlock("exp.body");
  auto* latch = NewBlock("exp.latch");
  // Both the cached loop and the chain walk converge here with (rel id,
  // neighbor id) so the downstream pipeline is emitted exactly once.
  auto* merge = NewBlock("exp.pair");

  // Adjacency-cache fast path (compiled in unless the cache is off in the
  // query key): probe once per input node; on a hit the loop streams
  // 24-byte CachedNeighbor entries from sequential DRAM — next "pointer",
  // label filter, and neighbor id all come from the array, so the PMem
  // chain is never touched. The probe misses (null) for writer
  // transactions, old snapshots, or a disabled cache; then the original
  // chain walk below runs unchanged.
  llvm::Value* hit = nullptr;         // i1; dominates latch
  llvm::Value* idx_addr = nullptr;
  llvm::BasicBlock* chead = nullptr;
  llvm::BasicBlock* clatch = nullptr;
  llvm::Value* crel = nullptr;        // cached rel id reaching merge
  llvm::Value* cneigh = nullptr;      // cached neighbor id reaching merge
  llvm::BasicBlock* cached_pred = nullptr;
  if (adj_cache_) {
    idx_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "exp.cidx");
    auto* cnt_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "exp.ccnt");
    auto* adj_base = b().CreateCall(
        h_expand_cached_,
        {arg_state_, c.raw, C32(out ? 1 : 0), arg_thread_, C32(rel_idx),
         cnt_addr},
        "adj.base");
    hit = b().CreateICmpNE(adj_base,
                           llvm::ConstantPointerNull::get(PtrTy()),
                           "adj.hit");
    auto* cinit = NewBlock("exp.cinit");
    chead = NewBlock("exp.chead");
    auto* cbody = NewBlock("exp.cbody");
    clatch = NewBlock("exp.clatch");
    b().CreateCondBr(hit, cinit, head);

    b().SetInsertPoint(cinit);
    b().CreateStore(C64(0), idx_addr);
    b().CreateBr(chead);

    b().SetInsertPoint(chead);
    auto* idx = b().CreateLoad(I64(), idx_addr, "adj.idx");
    auto* cnt = b().CreateLoad(I64(), cnt_addr, "adj.cnt");
    b().CreateCondBr(b().CreateICmpULT(idx, cnt), cbody, cont);

    b().SetInsertPoint(cbody);
    auto* eptr = b().CreateGEP(
        I8(), adj_base,
        b().CreateMul(idx, C64(sizeof(tx::CachedNeighbor))), "adj.entry");
    crel = b().CreateLoad(
        I64(), b().CreateBitCast(eptr, I64()->getPointerTo()), "adj.rel");
    cneigh = b().CreateLoad(
        I64(),
        b().CreateBitCast(
            b().CreateGEP(I8(), eptr,
                          C64(offsetof(tx::CachedNeighbor, neighbor))),
            I64()->getPointerTo()),
        "adj.neigh");
    if (op->label != storage::kInvalidCode) {
      auto* lbl = b().CreateLoad(
          I32(),
          b().CreateBitCast(
              b().CreateGEP(I8(), eptr,
                            C64(offsetof(tx::CachedNeighbor, rel_label))),
              I32()->getPointerTo()),
          "adj.label");
      auto* cref = NewBlock("exp.cref");
      b().CreateCondBr(b().CreateICmpEQ(lbl, C32(op->label)), cref, latch);
      b().SetInsertPoint(cref);
    }
    // The emitted relationship handle still resolves through full MVTO
    // visibility (downstream operators may read its properties); the
    // cached stamp guarantees the hop exists, but a foreign lock must
    // abort and an in-flight version must come from the write set.
    auto* cvis = EmitRecordRef(/*is_node=*/false, crel, rel_slot, rel_idx);
    cached_pred = b().GetInsertBlock();
    b().CreateCondBr(cvis, merge, latch);

    b().SetInsertPoint(clatch);
    auto* idx2 = b().CreateLoad(I64(), idx_addr);
    b().CreateStore(b().CreateAdd(idx2, C64(1)), idx_addr);
    b().CreateBr(chead);
  } else {
    b().CreateBr(head);
  }

  b().SetInsertPoint(head);
  auto* cur = b().CreateLoad(I64(), cur_addr, "cur");
  b().CreateCondBr(b().CreateICmpEQ(cur, C64(kNullId)), cont, body);

  b().SetInsertPoint(body);
  auto* visible = EmitRecordRef(/*is_node=*/false, cur, rel_slot, rel_idx);
  auto* relrec = LoadRec(rel_slot);
  auto* next = LoadField64(relrec, out ? storage::kOffsetOfRelNextSrc
                                       : storage::kOffsetOfRelNextDst);
  b().CreateStore(next, cur_addr);
  auto* check_label = NewBlock("exp.check");
  b().CreateCondBr(visible, check_label, latch);

  b().SetInsertPoint(check_label);
  if (op->label != storage::kInvalidCode) {
    auto* match = b().CreateICmpEQ(LoadLabel(relrec), C32(op->label));
    auto* get_neighbor = NewBlock("exp.neigh");
    b().CreateCondBr(match, get_neighbor, latch);
    b().SetInsertPoint(get_neighbor);
  }
  auto* wneigh = LoadField64(relrec, out ? storage::kOffsetOfRelDst
                                         : storage::kOffsetOfRelSrc);
  auto* walk_pred = b().GetInsertBlock();
  b().CreateBr(merge);

  b().SetInsertPoint(merge);
  llvm::Value* rel_v = cur;
  llvm::Value* neighbor = wneigh;
  if (adj_cache_) {
    auto* rel_phi = b().CreatePHI(I64(), 2, "rel.phi");
    rel_phi->addIncoming(crel, cached_pred);
    rel_phi->addIncoming(cur, walk_pred);
    auto* neigh_phi = b().CreatePHI(I64(), 2, "neigh.phi");
    neigh_phi->addIncoming(cneigh, cached_pred);
    neigh_phi->addIncoming(wneigh, walk_pred);
    rel_v = rel_phi;
    neighbor = neigh_phi;
  }
  auto* nvisible =
      EmitRecordRef(/*is_node=*/true, neighbor, node_slot, node_idx);
  auto* have_node = NewBlock("exp.node");
  b().CreateCondBr(nvisible, have_node, latch);
  b().SetInsertPoint(have_node);
  if (op->label2 != storage::kInvalidCode) {
    auto* nrec = LoadRec(node_slot);
    auto* match = b().CreateICmpEQ(LoadLabel(nrec), C32(op->label2));
    auto* body2 = NewBlock("exp.node2");
    b().CreateCondBr(match, body2, latch);
    b().SetInsertPoint(body2);
  }

  size_t base = cols_.size();
  handle_ptrs_[rel_idx] = rel_slot;
  handle_ptrs_[node_idx] = node_slot;
  cols_.push_back(
      Col{rel_v, CKind(Value::Kind::kRel), static_cast<int>(rel_idx)});
  cols_.push_back(
      Col{neighbor, CKind(Value::Kind::kNode), static_cast<int>(node_idx)});
  POSEIDON_RETURN_IF_ERROR(EmitPipeline(i + 1, latch));
  cols_.resize(base);

  b().SetInsertPoint(latch);
  if (adj_cache_) {
    b().CreateCondBr(hit, clatch, head);
  } else {
    b().CreateBr(head);
  }
  return Status::Ok();
}

Status CodeGenerator::EmitExpandTransitive(const Op* op, size_t i,
                                           llvm::BasicBlock* cont) {
  const Col& c = cols_[op->column];
  if (c.handle_slot < 0) {
    return Status::InvalidArgument("codegen: expand needs a node column");
  }
  bool out = op->dir == query::Direction::kOut;

  llvm::IRBuilder<> eb(entry_, entry_->begin());
  auto* cur_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "tr.cur");
  auto* edge_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "tr.edge");
  b().CreateStore(c.raw, cur_addr);

  auto [node_slot, node_idx] = AllocHandle();
  auto [rel_slot, rel_idx] = AllocHandle();

  auto* head = NewBlock("tr.head");
  auto* stop = NewBlock("tr.stop");
  auto* walk = NewBlock("tr.walk");
  auto* fhead = NewBlock("tr.fhead");
  auto* fbody = NewBlock("tr.fbody");
  b().CreateBr(head);

  b().SetInsertPoint(head);
  EmitCancelPoll("tr");  // once per transitive hop
  auto* cur = b().CreateLoad(I64(), cur_addr);
  auto* visible = EmitRecordRef(/*is_node=*/true, cur, node_slot, node_idx);
  auto* have = NewBlock("tr.have");
  b().CreateCondBr(visible, have, cont);
  b().SetInsertPoint(have);
  auto* rec = LoadRec(node_slot);
  auto* is_stop = b().CreateICmpEQ(LoadLabel(rec), C32(op->label2));
  b().CreateCondBr(is_stop, stop, walk);

  b().SetInsertPoint(walk);
  auto* first = LoadField64(rec, out ? storage::kOffsetOfNodeFirstOut
                                     : storage::kOffsetOfNodeFirstIn);
  b().CreateStore(first, edge_addr);
  b().CreateBr(fhead);

  b().SetInsertPoint(fhead);
  auto* edge = b().CreateLoad(I64(), edge_addr);
  b().CreateCondBr(b().CreateICmpEQ(edge, C64(kNullId)), cont, fbody);

  b().SetInsertPoint(fbody);
  auto* evisible = EmitRecordRef(/*is_node=*/false, edge, rel_slot, rel_idx);
  auto* erec = LoadRec(rel_slot);
  auto* enext = LoadField64(erec, out ? storage::kOffsetOfRelNextSrc
                                      : storage::kOffsetOfRelNextDst);
  b().CreateStore(enext, edge_addr);
  auto* echeck = NewBlock("tr.echeck");
  b().CreateCondBr(evisible, echeck, fhead);
  b().SetInsertPoint(echeck);
  if (op->label != storage::kInvalidCode) {
    auto* match = b().CreateICmpEQ(LoadLabel(erec), C32(op->label));
    auto* follow = NewBlock("tr.follow");
    b().CreateCondBr(match, follow, fhead);
    b().SetInsertPoint(follow);
  }
  auto* nextnode = LoadField64(erec, out ? storage::kOffsetOfRelDst
                                         : storage::kOffsetOfRelSrc);
  b().CreateStore(nextnode, cur_addr);
  b().CreateBr(head);

  b().SetInsertPoint(stop);
  size_t base = cols_.size();
  handle_ptrs_[node_idx] = node_slot;
  cols_.push_back(
      Col{cur, CKind(Value::Kind::kNode), static_cast<int>(node_idx)});
  POSEIDON_RETURN_IF_ERROR(EmitPipeline(i + 1, cont));
  cols_.resize(base);
  return Status::Ok();
}

Status CodeGenerator::EmitProject(const Op* op, size_t i,
                                  llvm::BasicBlock* cont) {
  std::vector<Col> out;
  out.reserve(op->exprs.size());
  for (const Expr& e : op->exprs) {
    POSEIDON_ASSIGN_OR_RETURN(Col c, EvalExpr(e));
    out.push_back(c);
  }
  std::vector<Col> saved = std::move(cols_);
  cols_ = std::move(out);
  Status s = EmitPipeline(i + 1, cont);
  cols_ = std::move(saved);
  return s;
}

Status CodeGenerator::EmitTailCall(llvm::BasicBlock* cont) {
  uint32_t n = static_cast<uint32_t>(cols_.size());
  if (n > emit_width_) {
    return Status::Internal("codegen: emit width underestimated");
  }
  for (uint32_t k = 0; k < n; ++k) {
    auto* vslot = b().CreateGEP(
        llvm::ArrayType::get(I64(), emit_width_), vals_array_,
        {C32(0), C32(k)});
    b().CreateStore(cols_[k].raw, vslot);
    auto* kslot = b().CreateGEP(
        llvm::ArrayType::get(I8(), emit_width_), kinds_array_,
        {C32(0), C32(k)});
    b().CreateStore(cols_[k].kind, kslot);
  }
  auto* vptr = b().CreateGEP(llvm::ArrayType::get(I64(), emit_width_),
                             vals_array_, {C32(0), C32(0)});
  auto* kptr = b().CreateGEP(llvm::ArrayType::get(I8(), emit_width_),
                             kinds_array_, {C32(0), C32(0)});
  auto* r = b().CreateCall(
      h_emit_, {arg_state_, C32(static_cast<uint32_t>(tail_index_)), C32(n),
                vptr, kptr});
  auto* sw = b().CreateSwitch(r, cont, 2);
  sw->addCase(b().getInt32(1), ret_stop_);
  sw->addCase(
      llvm::ConstantInt::getSigned(llvm::Type::getInt32Ty(*context_), -1),
      ret_err_);
  return Status::Ok();
}

Status CodeGenerator::EmitPipeline(size_t i, llvm::BasicBlock* cont) {
  if (tail_index_ >= 0 && i >= static_cast<size_t>(tail_index_)) {
    return EmitTailCall(cont);
  }
  if (i >= ops_.size()) {
    return EmitTailCall(cont);  // tail_index_ == -1: straight to collector
  }
  const Op* op = ops_[i];
  switch (op->kind) {
    case OpKind::kFilter:
      return EmitFilter(op, i, cont);
    case OpKind::kExpand:
      return EmitExpand(op, i, cont);
    case OpKind::kExpandTransitive:
      return EmitExpandTransitive(op, i, cont);
    case OpKind::kProject:
      return EmitProject(op, i, cont);
    default:
      return Status::Internal("codegen: unexpected mid-pipeline operator");
  }
}

Status CodeGenerator::EmitNodeScanSource() {
  return scan_.batch_enabled ? EmitNodeScanBatched() : EmitNodeScanScalar();
}

// Batched scan loop (mirrors ChunkedTable::ScanBatch): the outer loop walks
// 64-bit occupancy words — one `bits != 0` test skips 64 empty slots — and
// the inner loop extracts set bits with cttz. Before resolving a record the
// next occupied record of the word is prefetched, and on entering a chunk
// the next chunk's header is, so the emulated PMem fill overlaps the MVTO
// visibility check and downstream operators.
Status CodeGenerator::EmitNodeScanBatched() {
  const Op* src = ops_[0];
  llvm::IRBuilder<> eb(entry_, entry_->begin());
  auto* w_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "scan.w");
  auto* bits_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "scan.bits");
  auto [slot, slot_idx] = AllocHandle();
  handle_ptrs_[slot_idx] = slot;

  // Occupancy words covering [begin, end): w in [begin>>6, (end+63)>>6).
  // Morsel bounds are multiples of 64 in practice; partial first/last words
  // are handled by masking below.
  auto* w_begin = b().CreateLShr(arg_begin_, C64(6), "w.begin");
  auto* w_end_raw = b().CreateLShr(b().CreateAdd(arg_end_, C64(63)), C64(6));
  // Clamp to the allocated chunks (ScanBatch clamps `end` to NumSlots the
  // same way) so the chunk-base load below never reads past the table.
  auto* w_cap = b().CreateShl(hdr_node_nc_, C64(3));  // 8 words per chunk
  auto* w_end = b().CreateSelect(b().CreateICmpULT(w_end_raw, w_cap),
                                 w_end_raw, w_cap, "w.end");
  b().CreateStore(w_begin, w_addr);

  auto* whead = NewBlock("scan.whead");
  auto* wbody = NewBlock("scan.wbody");
  auto* wlatch = NewBlock("scan.wlatch");
  auto* bhead = NewBlock("scan.bhead");
  auto* bbody = NewBlock("scan.bbody");
  auto* blatch = NewBlock("scan.blatch");
  b().CreateBr(whead);

  b().SetInsertPoint(whead);
  auto* w = b().CreateLoad(I64(), w_addr, "w");
  b().CreateCondBr(b().CreateICmpULT(w, w_end), wbody, ret_ok_);

  // wbody: load the word, mask the partial first/last words of the morsel,
  // skip the whole word when nothing survives. Cancellation poll once per
  // occupancy word (64 slots).
  b().SetInsertPoint(wbody);
  EmitCancelPoll("scan");
  auto* chunk = b().CreateLShr(w, C64(3), "chunk");  // 8 words per chunk
  auto* base = b().CreateLoad(
      PtrTy(), b().CreateGEP(PtrTy(), hdr_node_chunks_, chunk), "chunk_base");
  if (scan_.prefetch_distance != 0) {
    // First word of a chunk: prefetch the next chunk's header.
    auto* at_start = b().CreateICmpEQ(b().CreateAnd(w, C64(7)), C64(0));
    auto* next_chunk = b().CreateAdd(chunk, C64(1));
    auto* have_next = b().CreateICmpULT(next_chunk, hdr_node_nc_);
    auto* pf_bb = NewBlock("scan.pfhdr");
    auto* pf_cont = NewBlock("scan.pfhdr.cont");
    b().CreateCondBr(b().CreateAnd(at_start, have_next), pf_bb, pf_cont);
    b().SetInsertPoint(pf_bb);
    auto* next_base = b().CreateLoad(
        PtrTy(), b().CreateGEP(PtrTy(), hdr_node_chunks_, next_chunk));
    EmitPrefetch(next_base, kNodeHeaderBytes);
    b().CreateBr(pf_cont);
    b().SetInsertPoint(pf_cont);
  }
  auto* word_addr = b().CreateGEP(
      I8(), base,
      b().CreateAdd(C64(16), b().CreateShl(b().CreateAnd(w, C64(7)), C64(3))));
  auto* word = b().CreateLoad(
      I64(),
      b().CreateBitCast(word_addr, llvm::Type::getInt64PtrTy(*context_)),
      "occ");
  auto* word_base = b().CreateShl(w, C64(6), "word_base");
  auto* lo_mask = b().CreateSelect(
      b().CreateICmpEQ(w, w_begin),
      b().CreateShl(C64(~0ull), b().CreateAnd(arg_begin_, C64(63))),
      C64(~0ull));
  auto* avail = b().CreateSub(arg_end_, word_base);
  auto* hi_mask = b().CreateSelect(
      b().CreateICmpULT(avail, C64(64)),
      b().CreateSub(b().CreateShl(C64(1), avail), C64(1)), C64(~0ull));
  auto* bits0 = b().CreateAnd(word, b().CreateAnd(lo_mask, hi_mask), "bits");
  b().CreateStore(bits0, bits_addr);
  b().CreateCondBr(b().CreateICmpEQ(bits0, C64(0)), wlatch, bhead);

  b().SetInsertPoint(bhead);
  auto* bits = b().CreateLoad(I64(), bits_addr);
  b().CreateCondBr(b().CreateICmpEQ(bits, C64(0)), wlatch, bbody);

  b().SetInsertPoint(bbody);
  auto* tz = b().CreateIntrinsic(llvm::Intrinsic::cttz, {I64()},
                                 {bits, b().getInt1(true)});
  auto* id = b().CreateOr(word_base, tz, "id");
  auto* rest = b().CreateAnd(bits, b().CreateSub(bits, C64(1)));
  b().CreateStore(rest, bits_addr);
  if (scan_.prefetch_distance != 0) {
    // Prefetch the next occupied record of this word before the current
    // one's (latency-charged) resolution.
    auto* pf_bb = NewBlock("scan.pfrec");
    auto* pf_cont = NewBlock("scan.pfrec.cont");
    b().CreateCondBr(b().CreateICmpNE(rest, C64(0)), pf_bb, pf_cont);
    b().SetInsertPoint(pf_bb);
    auto* ntz = b().CreateIntrinsic(llvm::Intrinsic::cttz, {I64()},
                                    {rest, b().getInt1(true)});
    auto* nslot = b().CreateAnd(b().CreateOr(word_base, ntz), C64(kRpcMask));
    auto* nrec = b().CreateGEP(
        I8(), base,
        b().CreateAdd(C64(kNodeHeaderBytes),
                      b().CreateMul(nslot,
                                    C64(sizeof(storage::NodeRecord)))));
    EmitPrefetch(nrec, sizeof(storage::NodeRecord));
    b().CreateBr(pf_cont);
    b().SetInsertPoint(pf_cont);
  }
  auto* visible = EmitRecordRef(/*is_node=*/true, id, slot, slot_idx);
  auto* check = NewBlock("scan.check");
  b().CreateCondBr(visible, check, blatch);
  b().SetInsertPoint(check);
  if (src->label != storage::kInvalidCode) {
    auto* rec = LoadRec(slot);
    auto* match = b().CreateICmpEQ(LoadLabel(rec), C32(src->label));
    auto* process = NewBlock("scan.process");
    b().CreateCondBr(match, process, blatch);
    b().SetInsertPoint(process);
  }
  cols_.clear();
  cols_.push_back(
      Col{id, CKind(Value::Kind::kNode), static_cast<int>(slot_idx)});
  POSEIDON_RETURN_IF_ERROR(EmitPipeline(1, blatch));

  b().SetInsertPoint(blatch);
  b().CreateBr(bhead);

  b().SetInsertPoint(wlatch);
  auto* wcur = b().CreateLoad(I64(), w_addr);
  b().CreateStore(b().CreateAdd(wcur, C64(1)), w_addr);
  b().CreateBr(whead);
  return Status::Ok();
}

Status CodeGenerator::EmitNodeScanScalar() {
  const Op* src = ops_[0];
  llvm::IRBuilder<> eb(entry_, entry_->begin());
  auto* id_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "scan.id");
  b().CreateStore(arg_begin_, id_addr);
  auto [slot, slot_idx] = AllocHandle();
  handle_ptrs_[slot_idx] = slot;

  auto* head = NewBlock("scan.head");
  auto* body = NewBlock("scan.body");
  auto* latch = NewBlock("scan.latch");
  b().CreateBr(head);

  b().SetInsertPoint(head);
  auto* id = b().CreateLoad(I64(), id_addr, "id");
  b().CreateCondBr(b().CreateICmpULT(id, arg_end_), body, ret_ok_);

  b().SetInsertPoint(body);
  EmitCancelPoll("scan");
  auto* visible = EmitRecordRef(/*is_node=*/true, id, slot, slot_idx);
  auto* check = NewBlock("scan.check");
  b().CreateCondBr(visible, check, latch);
  b().SetInsertPoint(check);
  if (src->label != storage::kInvalidCode) {
    auto* rec = LoadRec(slot);
    auto* match = b().CreateICmpEQ(LoadLabel(rec), C32(src->label));
    auto* process = NewBlock("scan.process");
    b().CreateCondBr(match, process, latch);
    b().SetInsertPoint(process);
  }
  cols_.clear();
  cols_.push_back(
      Col{id, CKind(Value::Kind::kNode), static_cast<int>(slot_idx)});
  POSEIDON_RETURN_IF_ERROR(EmitPipeline(1, latch));

  b().SetInsertPoint(latch);
  auto* cur = b().CreateLoad(I64(), id_addr);
  b().CreateStore(b().CreateAdd(cur, C64(1)), id_addr);
  b().CreateBr(head);
  return Status::Ok();
}

Status CodeGenerator::EmitIndexScanSource() {
  const Op* src = ops_[0];
  auto* count =
      b().CreateCall(h_index_matches_, {arg_state_, C32(0), arg_thread_});
  // Morsel ranges address positions in the materialized match list: iterate
  // [begin, min(end, count)) so parallel workers split the matches.
  auto* limit = b().CreateSelect(b().CreateICmpULT(count, arg_end_), count,
                                 arg_end_, "idx.limit");

  llvm::IRBuilder<> eb(entry_, entry_->begin());
  auto* i_addr = eb.CreateAlloca(eb.getInt64Ty(), nullptr, "idx.i");
  b().CreateStore(arg_begin_, i_addr);
  auto [slot, slot_idx] = AllocHandle();
  handle_ptrs_[slot_idx] = slot;

  auto* head = NewBlock("idx.head");
  auto* body = NewBlock("idx.body");
  auto* latch = NewBlock("idx.latch");
  b().CreateBr(head);

  b().SetInsertPoint(head);
  auto* iv = b().CreateLoad(I64(), i_addr);
  b().CreateCondBr(b().CreateICmpULT(iv, limit), body, ret_ok_);

  b().SetInsertPoint(body);
  EmitCancelPoll("idx");
  auto* id =
      b().CreateCall(h_index_match_at_, {arg_state_, arg_thread_, iv});
  auto* visible = EmitRecordRef(/*is_node=*/true, id, slot, slot_idx);
  auto* check = NewBlock("idx.check");
  b().CreateCondBr(visible, check, latch);
  b().SetInsertPoint(check);
  if (src->label != storage::kInvalidCode) {
    auto* rec = LoadRec(slot);
    auto* match = b().CreateICmpEQ(LoadLabel(rec), C32(src->label));
    auto* next = NewBlock("idx.label_ok");
    b().CreateCondBr(match, next, latch);
    b().SetInsertPoint(next);
  }
  // Snapshot re-validation of the indexed property bounds.
  cols_.clear();
  cols_.push_back(
      Col{id, CKind(Value::Kind::kNode), static_cast<int>(slot_idx)});
  POSEIDON_ASSIGN_OR_RETURN(Col prop, EvalExpr(Expr::Property(0, src->key)));
  POSEIDON_ASSIGN_OR_RETURN(Col lo, EvalExpr(src->value));
  auto* ge = b().CreateCall(
      h_compare_,
      {C32(static_cast<uint32_t>(query::CmpOp::kGe)),
       b().CreateZExt(prop.kind, I32()), prop.raw,
       b().CreateZExt(lo.kind, I32()), lo.raw});
  Col hi = lo;
  if (src->kind == OpKind::kIndexRangeScan) {
    POSEIDON_ASSIGN_OR_RETURN(hi, EvalExpr(src->value2));
  }
  auto* le = b().CreateCall(
      h_compare_,
      {C32(static_cast<uint32_t>(query::CmpOp::kLe)),
       b().CreateZExt(prop.kind, I32()), prop.raw,
       b().CreateZExt(hi.kind, I32()), hi.raw});
  auto* in_range = b().CreateAnd(b().CreateICmpNE(ge, C32(0)),
                                 b().CreateICmpNE(le, C32(0)));
  auto* process = NewBlock("idx.process");
  b().CreateCondBr(in_range, process, latch);
  b().SetInsertPoint(process);
  POSEIDON_RETURN_IF_ERROR(EmitPipeline(1, latch));

  b().SetInsertPoint(latch);
  auto* cur = b().CreateLoad(I64(), i_addr);
  b().CreateStore(b().CreateAdd(cur, C64(1)), i_addr);
  b().CreateBr(head);
  return Status::Ok();
}

Status CodeGenerator::EmitCreateSource() {
  cols_.clear();
  return EmitPipeline(0, ret_ok_);
}

Result<CodegenResult> CodeGenerator::Generate() {
  context_ = std::make_unique<llvm::LLVMContext>();
  module_ = std::make_unique<llvm::Module>("poseidon_query", *context_);
  builder_ = std::make_unique<llvm::IRBuilder<>>(*context_);
  DeclareHelpers();

  for (const Op* op = plan_.root.get(); op != nullptr; op = op->input.get()) {
    ops_.push_back(op);
  }
  std::reverse(ops_.begin(), ops_.end());
  tail_index_ = -1;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (!IsInlinable(ops_[i], i == 0)) {
      tail_index_ = static_cast<int>(i);
      break;
    }
  }

  // Widest tuple that can reach an emit point.
  uint32_t width = 1;
  uint32_t running = 0;
  size_t limit = tail_index_ >= 0 ? static_cast<size_t>(tail_index_)
                                  : ops_.size();
  for (size_t i = 0; i < limit; ++i) {
    switch (ops_[i]->kind) {
      case OpKind::kNodeScan:
      case OpKind::kIndexScan:
      case OpKind::kIndexRangeScan:
        running = 1;
        break;
      case OpKind::kExpand:
        running += 2;
        break;
      case OpKind::kExpandTransitive:
        running += 1;
        break;
      case OpKind::kProject:
        running = static_cast<uint32_t>(ops_[i]->exprs.size());
        break;
      default:
        break;
    }
    width = std::max(width, std::max(running, 1u));
  }
  emit_width_ = std::max(width, 1u);

  auto* fn_ty = llvm::FunctionType::get(
      I32(), {PtrTy(), I64(), I64(), I32()}, false);
  fn_ = llvm::Function::Create(fn_ty, llvm::Function::ExternalLinkage,
                               fn_name_, module_.get());
  arg_state_ = fn_->getArg(0);
  arg_begin_ = fn_->getArg(1);
  arg_end_ = fn_->getArg(2);
  arg_thread_ = fn_->getArg(3);

  entry_ = NewBlock("entry");
  ret_ok_ = NewBlock("ret.ok");
  ret_stop_ = NewBlock("ret.stop");
  ret_err_ = NewBlock("ret.err");
  {
    llvm::IRBuilder<> rb(ret_ok_);
    rb.CreateRet(rb.getInt32(0));
    rb.SetInsertPoint(ret_stop_);
    rb.CreateRet(rb.getInt32(1));
    rb.SetInsertPoint(ret_err_);
    rb.CreateRet(llvm::ConstantInt::getSigned(I32(), -1));
  }

  b().SetInsertPoint(entry_);
  tmp_u64_ = b().CreateAlloca(I64(), nullptr, "tmp");
  vals_array_ = b().CreateAlloca(llvm::ArrayType::get(I64(), emit_width_),
                                 nullptr, "vals");
  kinds_array_ = b().CreateAlloca(llvm::ArrayType::get(I8(), emit_width_),
                                  nullptr, "kinds");

  // Hoist the state header to registers (initializations at the entry
  // point — paper IR requirement 2).
  auto load_hdr_ptr = [&](uint64_t off) {
    auto* addr = b().CreateGEP(I8(), arg_state_, C64(off));
    return b().CreateLoad(
        PtrTy(), b().CreateBitCast(addr, PtrTy()->getPointerTo()));
  };
  auto load_hdr_u64 = [&](uint64_t off) {
    auto* addr = b().CreateGEP(I8(), arg_state_, C64(off));
    return b().CreateLoad(
        I64(), b().CreateBitCast(addr, llvm::Type::getInt64PtrTy(*context_)));
  };
  hdr_node_chunks_ =
      b().CreateBitCast(load_hdr_ptr(0), PtrTy()->getPointerTo());
  hdr_rel_chunks_ =
      b().CreateBitCast(load_hdr_ptr(8), PtrTy()->getPointerTo());
  hdr_prop_chunks_ =
      b().CreateBitCast(load_hdr_ptr(16), PtrTy()->getPointerTo());
  hdr_node_nc_ = load_hdr_u64(24);
  hdr_rel_nc_ = load_hdr_u64(32);
  hdr_prop_nc_ = load_hdr_u64(40);
  hdr_ts_ = load_hdr_u64(48);
  hdr_has_latency_ = b().CreateICmpNE(load_hdr_u64(56), C64(0));
  hdr_cancellable_ = b().CreateICmpNE(load_hdr_u64(64), C64(0));

  std::function<void(const Op*)> collect = [&](const Op* op) {
    if (op == nullptr) return;
    auto add = [&](const Expr& e) {
      if (e.kind == Expr::Kind::kParam) params_[e.param] = Col{};
    };
    add(op->value);
    add(op->value2);
    for (const Expr& e : op->exprs) add(e);
    collect(op->input.get());
    collect(op->right.get());
  };
  collect(plan_.root.get());
  for (auto& [idx, col] : params_) {
    auto* kind = b().CreateCall(
        h_param_,
        {arg_state_, C32(static_cast<uint32_t>(idx)),
         b().CreateBitCast(tmp_u64_, llvm::Type::getInt64PtrTy(*context_))});
    auto* raw = b().CreateLoad(I64(), tmp_u64_);
    col = Col{raw, b().CreateTrunc(kind, I8()), -1};
  }

  handle_ptrs_.assign(64, nullptr);

  Status s;
  switch (ops_[0]->kind) {
    case OpKind::kNodeScan:
      s = EmitNodeScanSource();
      break;
    case OpKind::kIndexScan:
    case OpKind::kIndexRangeScan:
      s = EmitIndexScanSource();
      break;
    case OpKind::kCreateNode:
      if (tail_index_ != 0) {
        return Status::Internal("create source must start the AOT tail");
      }
      s = EmitCreateSource();
      break;
    default:
      return Status::Unimplemented("codegen: unsupported source operator");
  }
  POSEIDON_RETURN_IF_ERROR(s);

  std::string err;
  llvm::raw_string_ostream os(err);
  if (llvm::verifyFunction(*fn_, &os)) {
    return Status::Internal("generated IR failed verification: " + os.str());
  }

  CodegenResult result;
  result.context = std::move(context_);
  result.module = std::move(module_);
  result.function_name = fn_name_;
  result.tail_index = tail_index_;
  result.num_handle_slots = num_handle_slots_;
  return result;
}

}  // namespace

Result<CodegenResult> GenerateQueryIR(const query::Plan& plan,
                                      const std::string& function_name,
                                      const storage::ScanOptions& scan,
                                      bool adj_cache) {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("empty plan");
  }
  CodeGenerator gen(plan, function_name, scan, adj_cache);
  return gen.Generate();
}

}  // namespace poseidon::jit
