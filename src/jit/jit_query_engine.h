// Execution façade unifying the AOT interpreter and the JIT compiler, with
// the paper's adaptive mode (§6.2 "Adaptive Execution"):
//
//   * kInterpret / kInterpretParallel — push-based AOT engine (§6.1).
//   * kJit — compile first (memo / persistent cache / fresh), then execute
//     the compiled function over the morsels.
//   * kAdaptive — execution starts immediately in interpretation mode while
//     a background thread compiles the plan; when compilation finishes, the
//     task function is atomically redirected and the next pulled morsel
//     runs machine code. Short queries may finish entirely in AOT mode —
//     the compiled code still lands in the cache for subsequent runs.
//
// Both execution paths share one PipelineExecutor, so pipeline-breaker
// state (order-by buffers, counters, join tables) and results are identical
// regardless of where the mode switch happens.

#ifndef POSEIDON_JIT_JIT_QUERY_ENGINE_H_
#define POSEIDON_JIT_JIT_QUERY_ENGINE_H_

#include <atomic>
#include <memory>
#include <set>

#include "jit/jit_engine.h"
#include "jit/runtime.h"
#include "query/engine.h"

namespace poseidon::jit {

enum class ExecutionMode {
  kInterpret,
  kInterpretParallel,
  kJit,
  kAdaptive,
};

struct ExecStats {
  double compile_ms = 0;  ///< blocking compile cost (kJit; 0 on memo hits)
  bool used_jit = false;  ///< at least one morsel ran compiled code
  bool cache_hit = false;
  bool memo_hit = false;
  uint64_t jit_morsels = 0;
  uint64_t interpreted_morsels = 0;
  bool jit_fallback = false;  ///< compile failed; query ran interpreted
  /// Adjacency-cache traffic attributed to this execution (hits serve
  /// Expand from DRAM arrays; misses include builds and fallback walks).
  uint64_t adj_cache_hits = 0;
  uint64_t adj_cache_misses = 0;
  /// rts-bump coalescing attributed to this execution: CAS-maxes skipped
  /// because the record already carried rts >= reader id, and bumps elided
  /// entirely by shared-snapshot read-only transactions.
  uint64_t rts_skipped = 0;
  uint64_t rts_deferred = 0;
  /// Integrity-scrub activity overlapping this execution (pool checksums
  /// enabled only): lines verified, repaired in place, and quarantined —
  /// includes cold-chunk first-touch verification the query triggered.
  uint64_t scrub_verified = 0;
  uint64_t scrub_repaired = 0;
  uint64_t scrub_quarantined = 0;
  /// Overload governance (cooperative cancellation): set when this execution
  /// was cut short by the transaction's CancelToken. Exactly one of the two
  /// may be set; the returned Status carries the same code.
  bool deadline_exceeded = false;
  bool cancelled = false;
};

class JitQueryEngine {
 public:
  /// `cache` may be null (no persistent compiled-code cache).
  static Result<std::unique_ptr<JitQueryEngine>> Create(
      storage::GraphStore* store, index::IndexManager* indexes,
      size_t num_threads, QueryCache* cache);

  /// Executes `plan` inside `tx`. The plan only needs to live for the
  /// duration of this call: adaptive background compilation operates on a
  /// self-contained module generated synchronously (JitEngine::BeginCompile).
  Result<query::QueryResult> Execute(const query::Plan& plan,
                                     tx::Transaction* tx,
                                     const std::vector<query::Value>& params,
                                     ExecutionMode mode,
                                     ExecStats* stats = nullptr,
                                     const JitOptions& options = {});

  JitEngine* engine() { return engine_.get(); }
  ThreadPool* pool() { return &pool_; }
  storage::GraphStore* store() const { return store_; }

  /// Batched-scan knobs applied to every execution (ablation surface);
  /// shared by the interpreter context and the JIT codegen options.
  const storage::ScanOptions& scan_options() const { return scan_options_; }
  void set_scan_options(const storage::ScanOptions& o) { scan_options_ = o; }

  /// Whether generated code carries the adjacency-cache fast path (part of
  /// the compiled-code cache key). The runtime switch on the cache itself
  /// lives in tx::AdjacencyCache::set_enabled; GraphDb toggles both.
  bool adj_cache_enabled() const { return adj_cache_enabled_; }
  void set_adj_cache_enabled(bool on) { adj_cache_enabled_ = on; }

  /// Blocks until background (adaptive) compilations are finished; call
  /// before tearing down plans or benchmark scopes.
  void WaitForBackgroundCompiles();

 private:
  JitQueryEngine(storage::GraphStore* store, index::IndexManager* indexes,
                 size_t num_threads);

  /// Drives compiled code over all morsels (single-threaded).
  Status RunCompiledSerial(const CompiledQuery& compiled,
                           JitRuntimeState* state,
                           query::PipelineExecutor* exec, ExecStats* stats);

  storage::GraphStore* store_;
  index::IndexManager* indexes_;
  ThreadPool pool_;
  std::unique_ptr<JitEngine> engine_;
  storage::ScanOptions scan_options_ = storage::ScanOptions::FromEnv();
  bool adj_cache_enabled_ = tx::AdjacencyCacheOptions::FromEnv().enabled;

  std::mutex bg_mu_;
  std::condition_variable bg_done_;
  uint64_t bg_inflight_ = 0;
  std::set<uint64_t> bg_query_ids_;  // dedupe concurrent compilations
};

}  // namespace poseidon::jit

#endif  // POSEIDON_JIT_JIT_QUERY_ENGINE_H_
