// Persistent compiled-query cache (paper §6.2 "our JIT query engine can
// persist already compiled code to PMem"): a persistent, concurrent hash
// map from query identifier (hash of the plan signature) to the compiled
// object-file bytes, stored in the graph's pmem::Pool. On a cache hit the
// engine links the stored object directly and skips IR generation,
// optimization, and compilation entirely — including across restarts.

#ifndef POSEIDON_JIT_QUERY_CACHE_H_
#define POSEIDON_JIT_QUERY_CACHE_H_

#include <mutex>
#include <string>
#include <vector>

#include "pmem/pool.h"
#include "util/status.h"

namespace poseidon::jit {

class QueryCache {
 public:
  /// Creates an empty cache in `pool`; meta_offset() is the durable handle.
  static Result<std::unique_ptr<QueryCache>> Create(pmem::Pool* pool);

  /// Reopens a cache previously created at `meta_off`.
  static Result<std::unique_ptr<QueryCache>> Open(pmem::Pool* pool,
                                                  pmem::Offset meta_off);

  pmem::Offset meta_offset() const { return meta_off_; }

  /// Stores compiled object bytes under `query_id` (no-op if present).
  Status Put(uint64_t query_id, const void* data, uint64_t size);

  /// Copies the stored object bytes out; NotFound on miss.
  Result<std::vector<char>> Get(uint64_t query_id) const;

  bool Contains(uint64_t query_id) const;
  uint64_t size() const;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Meta;
  struct Bucket;

  QueryCache() = default;

  Meta* meta() const { return pool_->ToPtr<Meta>(meta_off_); }
  Status GrowLocked();

  pmem::Pool* pool_ = nullptr;
  pmem::Offset meta_off_ = 0;
  mutable std::mutex mu_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace poseidon::jit

#endif  // POSEIDON_JIT_QUERY_CACHE_H_
