#include "jit/query_cache.h"

#include <cstring>

#include "util/hash.h"

namespace poseidon::jit {

namespace {
constexpr uint64_t kInitialBuckets = 64;  // power of two
}

struct QueryCache::Meta {
  uint64_t count;
  uint64_t buckets;          // offset of Bucket array
  uint64_t bucket_capacity;  // power of two
};

struct QueryCache::Bucket {
  uint64_t query_id;  // 0 = empty (query ids of 0 are remapped to 1)
  uint64_t blob;      // offset of the object bytes
  uint64_t size;
};

Result<std::unique_ptr<QueryCache>> QueryCache::Create(pmem::Pool* pool) {
  auto cache = std::unique_ptr<QueryCache>(new QueryCache());
  cache->pool_ = pool;
  POSEIDON_ASSIGN_OR_RETURN(cache->meta_off_,
                            pool->AllocateZeroed(sizeof(Meta)));
  auto* m = cache->meta();
  m->count = 0;
  m->bucket_capacity = kInitialBuckets;
  POSEIDON_ASSIGN_OR_RETURN(
      m->buckets, pool->AllocateZeroed(kInitialBuckets * sizeof(Bucket)));
  pool->Persist(m, sizeof(Meta));
  return cache;
}

Result<std::unique_ptr<QueryCache>> QueryCache::Open(pmem::Pool* pool,
                                                     pmem::Offset meta_off) {
  auto cache = std::unique_ptr<QueryCache>(new QueryCache());
  cache->pool_ = pool;
  cache->meta_off_ = meta_off;
  const auto* m = cache->meta();
  if (m->bucket_capacity == 0 ||
      (m->bucket_capacity & (m->bucket_capacity - 1)) != 0) {
    return Status::Corruption("query cache bucket capacity invalid");
  }
  return cache;
}

Status QueryCache::Put(uint64_t query_id, const void* data, uint64_t size) {
  if (query_id == 0) query_id = 1;
  std::lock_guard<std::mutex> lock(mu_);
  auto* m = meta();
  if ((m->count + 1) * 10 >= m->bucket_capacity * 7) {
    POSEIDON_RETURN_IF_ERROR(GrowLocked());
    m = meta();
  }
  auto* buckets = pool_->ToPtr<Bucket>(m->buckets);
  uint64_t mask = m->bucket_capacity - 1;
  for (uint64_t i = HashU64(query_id) & mask;; i = (i + 1) & mask) {
    Bucket& bkt = buckets[i];
    if (bkt.query_id == query_id) return Status::Ok();  // already cached
    if (bkt.query_id != 0) continue;
    POSEIDON_ASSIGN_OR_RETURN(pmem::Offset blob, pool_->Allocate(size));
    std::memcpy(pool_->ToPtr<void>(blob), data, size);
    pool_->Persist(pool_->ToPtr<void>(blob), size);
    bkt.blob = blob;
    bkt.size = size;
    pool_->Persist(&bkt.blob, 2 * sizeof(uint64_t));
    // Publish the id last: a torn insert stays invisible (C4).
    bkt.query_id = query_id;
    pool_->Persist(&bkt.query_id, sizeof(uint64_t));
    ++m->count;
    pool_->Persist(&m->count, sizeof(uint64_t));
    return Status::Ok();
  }
}

Result<std::vector<char>> QueryCache::Get(uint64_t query_id) const {
  if (query_id == 0) query_id = 1;
  std::lock_guard<std::mutex> lock(mu_);
  const auto* m = meta();
  const auto* buckets = pool_->ToPtr<Bucket>(m->buckets);
  uint64_t mask = m->bucket_capacity - 1;
  for (uint64_t i = HashU64(query_id) & mask;; i = (i + 1) & mask) {
    const Bucket& bkt = buckets[i];
    if (bkt.query_id == 0) {
      ++misses_;
      return Status::NotFound("query not in compiled-code cache");
    }
    if (bkt.query_id != query_id) continue;
    ++hits_;
    std::vector<char> out(bkt.size);
    const char* blob = pool_->ToPtr<char>(bkt.blob);
    pool_->TouchRead(blob, bkt.size);
    std::memcpy(out.data(), blob, bkt.size);
    return out;
  }
}

bool QueryCache::Contains(uint64_t query_id) const {
  if (query_id == 0) query_id = 1;
  std::lock_guard<std::mutex> lock(mu_);
  const auto* m = meta();
  const auto* buckets = pool_->ToPtr<Bucket>(m->buckets);
  uint64_t mask = m->bucket_capacity - 1;
  for (uint64_t i = HashU64(query_id) & mask;; i = (i + 1) & mask) {
    const Bucket& bkt = buckets[i];
    if (bkt.query_id == 0) return false;
    if (bkt.query_id == query_id) return true;
  }
}

uint64_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return meta()->count;
}

Status QueryCache::GrowLocked() {
  auto* m = meta();
  uint64_t new_cap = m->bucket_capacity * 2;
  POSEIDON_ASSIGN_OR_RETURN(pmem::Offset new_off,
                            pool_->AllocateZeroed(new_cap * sizeof(Bucket)));
  auto* nb = pool_->ToPtr<Bucket>(new_off);
  const auto* ob = pool_->ToPtr<Bucket>(m->buckets);
  uint64_t mask = new_cap - 1;
  for (uint64_t i = 0; i < m->bucket_capacity; ++i) {
    if (ob[i].query_id == 0) continue;
    for (uint64_t j = HashU64(ob[i].query_id) & mask;; j = (j + 1) & mask) {
      if (nb[j].query_id == 0) {
        nb[j] = ob[i];
        break;
      }
    }
  }
  pool_->Persist(nb, new_cap * sizeof(Bucket));
  pmem::Offset old_off = m->buckets;
  uint64_t old_cap = m->bucket_capacity;
  m->buckets = new_off;
  pool_->Persist(&m->buckets, sizeof(uint64_t));
  m->bucket_capacity = new_cap;
  pool_->Persist(&m->bucket_capacity, sizeof(uint64_t));
  pool_->Free(old_off, old_cap * sizeof(Bucket));
  return Status::Ok();
}

}  // namespace poseidon::jit
