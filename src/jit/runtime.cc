#include "jit/runtime.h"

#include <cstring>

namespace poseidon::jit {
namespace {

using query::CmpOp;
using query::PipelineExecutor;
using query::Tuple;
using query::Value;
using storage::PVal;
using storage::Property;
using storage::RecordId;

JitRuntimeState* State(void* p) { return static_cast<JitRuntimeState*>(p); }
JitHandle* Handle(void* p) { return static_cast<JitHandle*>(p); }

/// Fills `h` from a Resolved record version; snapshot properties move into
/// the per-thread per-slot storage so the handle stays POD.
template <typename R>
void FillHandle(JitRuntimeState* s, uint32_t thread, uint32_t slot,
                JitHandle* h, RecordId id, tx::Resolved<R>&& r) {
  h->id = id;
  h->thread = thread;
  h->slot = slot;
  h->props = r.rec.props;
  std::memcpy(h->copy, &r.rec, sizeof(R));
  h->rec = h->copy;
  if (r.from_snapshot) {
    h->has_snapshot = 1;
    s->threads[thread]->snapshots[slot] = std::move(r.snapshot);
  } else {
    h->has_snapshot = 0;
  }
}

}  // namespace
}  // namespace poseidon::jit

using namespace poseidon;         // NOLINT(build/namespaces)
using namespace poseidon::jit;    // NOLINT(build/namespaces)

extern "C" {

int32_t poseidon_node_ref(void* state, uint64_t id, void* slot_ptr,
                          uint32_t thread, uint32_t slot) {
  auto* s = State(state);
  if (!s->ctx.store->nodes().IsOccupied(id)) return 0;
  auto r = s->ctx.tx->GetNode(id);
  if (!r.ok()) {
    if (r.status().IsNotFound()) return 0;
    s->SetError(r.status());
    return -1;
  }
  FillHandle(s, thread, slot, Handle(slot_ptr), id, std::move(*r));
  return 1;
}

int32_t poseidon_rel_ref(void* state, uint64_t id, void* slot_ptr,
                         uint32_t thread, uint32_t slot) {
  auto* s = State(state);
  auto* h = Handle(slot_ptr);
  auto r = s->ctx.tx->GetRelationship(id);
  if (!r.ok()) {
    if (!r.status().IsNotFound()) {
      s->SetError(r.status());
      return -1;
    }
    // Invisible but possibly chained: expose the raw record so the
    // generated traversal loop can still follow next_src/next_dst
    // (mirrors Transaction::ForEachOutgoing's defensive path).
    const auto* raw = s->ctx.store->relationships().At(id);
    std::memcpy(h->copy, raw, sizeof(storage::RelationshipRecord));
    h->rec = h->copy;
    h->id = id;
    h->thread = thread;
    h->slot = slot;
    h->has_snapshot = 0;
    h->props = storage::kNullId;
    return 0;
  }
  FillHandle(s, thread, slot, h, id, std::move(*r));
  return 1;
}

const void* poseidon_expand_cached(void* state, uint64_t node_id,
                                   uint32_t dir_out, uint32_t thread,
                                   uint32_t slot, uint64_t* count_out) {
  auto* s = State(state);
  *count_out = 0;
  auto adj = s->ctx.tx->GetCachedAdjacency(
      node_id, dir_out != 0 ? tx::AdjDir::kOut : tx::AdjDir::kIn);
  if (adj == nullptr) return nullptr;  // fall back to the inline chain walk
  *count_out = adj->edges.size();
  // data() of an empty vector may be null, which generated code reads as a
  // miss; hand back any non-null pointer (the loop bound is zero anyway).
  static const tx::CachedNeighbor kEmpty{};
  const void* base = adj->edges.empty()
                         ? static_cast<const void*>(&kEmpty)
                         : static_cast<const void*>(adj->edges.data());
  auto& holds = s->threads[thread]->adj_holds;
  if (holds.size() <= slot) holds.resize(slot + 1);
  holds[slot] = std::move(adj);  // pinned until this slot is probed again
  return base;
}

uint32_t poseidon_get_prop(void* state, void* slot_ptr, uint32_t key,
                           uint64_t* out) {
  auto* s = State(state);
  auto* h = Handle(slot_ptr);
  // Tags returned here are query::Value kinds (what poseidon_compare and
  // the emitted tuples expect), not storage PType tags.
  if (h->has_snapshot != 0) {
    const auto& props = s->threads[h->thread]->snapshots[h->slot];
    for (const Property& p : props) {
      if (p.key == key) {
        Value v = Value::FromPVal(p.value);
        *out = v.raw();
        return static_cast<uint32_t>(v.kind());
      }
    }
    *out = 0;
    return 0;
  }
  Value v = Value::FromPVal(s->ctx.store->properties().Get(h->props, key));
  *out = v.raw();
  return static_cast<uint32_t>(v.kind());
}

uint32_t poseidon_param(void* state, uint32_t idx, uint64_t* out) {
  auto* s = State(state);
  if (s->ctx.params == nullptr || idx >= s->ctx.params->size()) {
    s->SetError(Status::InvalidArgument("missing query parameter " +
                                        std::to_string(idx)));
    *out = 0;
    return 0;
  }
  const Value& v = (*s->ctx.params)[idx];
  *out = v.raw();
  return static_cast<uint32_t>(v.kind());
}

int32_t poseidon_compare(uint32_t cmp, uint32_t kind_a, uint64_t raw_a,
                         uint32_t kind_b, uint64_t raw_b) {
  Value a = Value::FromRaw(static_cast<uint8_t>(kind_a), raw_a);
  Value b = Value::FromRaw(static_cast<uint8_t>(kind_b), raw_b);
  return PipelineExecutor::Compare(static_cast<CmpOp>(cmp), a, b) ? 1 : 0;
}

uint64_t poseidon_index_matches(void* state, uint32_t op_idx,
                                uint32_t thread) {
  auto* s = State(state);
  auto& slots = *s->threads[thread];
  // Prefer the executor's matches materialized by Prepare(): morsel ranges
  // [begin, end) address positions in that list, so compiled code must see
  // the exact ordering and count SourceCardinality() reported.
  if (op_idx == 0 && s->executor != nullptr) {
    if (const auto* shared = s->executor->SourceMatches()) {
      slots.shared_matches = shared;
      return shared->size();
    }
  }
  slots.shared_matches = nullptr;
  const query::Op* op = s->ops[op_idx];
  auto& buffer = slots.index_matches;
  buffer.clear();
  if (s->ctx.indexes == nullptr) {
    s->SetError(Status::FailedPrecondition("no index manager configured"));
    return 0;
  }
  index::BPlusTree* tree = s->ctx.indexes->Find(op->label, op->key);
  if (tree == nullptr) {
    s->SetError(Status::FailedPrecondition("no index on (label, key)"));
    return 0;
  }
  Tuple empty;
  auto lo = PipelineExecutor::Eval(op->value, empty, &s->ctx);
  if (!lo.ok()) {
    s->SetError(lo.status());
    return 0;
  }
  int64_t lo_key = index::IndexKeyOf(lo->ToPVal());
  int64_t hi_key = lo_key;
  if (op->kind == query::OpKind::kIndexRangeScan) {
    auto hi = PipelineExecutor::Eval(op->value2, empty, &s->ctx);
    if (!hi.ok()) {
      s->SetError(hi.status());
      return 0;
    }
    hi_key = index::IndexKeyOf(hi->ToPVal());
  }
  tree->ScanRange(index::BTreeKey{lo_key, 0}, index::BTreeKey{hi_key, ~0ull},
                  [&](const index::BTreeKey&, RecordId id) {
                    buffer.push_back(id);
                    return true;
                  });
  return buffer.size();
}

uint64_t poseidon_index_match_at(void* state, uint32_t thread, uint64_t i) {
  const auto& slots = *State(state)->threads[thread];
  if (slots.shared_matches != nullptr) return (*slots.shared_matches)[i];
  return slots.index_matches[i];
}

void poseidon_touch(void* state, const void* ptr, uint64_t len) {
  State(state)->ctx.store->pool()->TouchRead(ptr, len);
}

void poseidon_prefetch(void* state, const void* ptr, uint64_t len) {
  State(state)->ctx.store->pool()->TouchPrefetch(ptr, len);
}

int32_t poseidon_should_yield(void* state) {
  auto* s = State(state);
  Status st = s->ctx.tx->cancel_token()->Check();
  if (st.ok()) return 0;
  s->SetError(st);
  return 1;
}

int32_t poseidon_emit(void* state, int32_t tail_idx, uint32_t n,
                      const uint64_t* vals, const uint8_t* kinds) {
  auto* s = State(state);
  Tuple t;
  t.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    t.push_back(Value::FromRaw(kinds[i], vals[i]));
  }
  if (tail_idx < 0) {
    s->collector->Add(t);
    return 0;
  }
  Status st = s->executor->PushFrom(static_cast<size_t>(tail_idx), t);
  if (st.ok()) return 0;
  if (st.code() == StatusCode::kOutOfRange) return 1;  // stop producing
  s->SetError(st);
  return -1;
}

}  // extern "C"
