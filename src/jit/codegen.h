// LLVM IR code generation for graph-algebra plans (paper §6.2).
//
// The generator transforms the complete query pipeline into a single IR
// function (entry/consume-block structure per operator), inlining the hot
// data path:
//   * the chunk-table scan loop over record ids,
//   * record field loads (label, adjacency pointers, src/dst) at the fixed
//     byte offsets of storage/records.h,
//   * adjacency-list traversal loops for ForeachRelationship,
//   * predicate and projection evaluation with tuple elements held in
//     SSA registers (type information fixed at compile time).
// Record-version resolution, property-chain lookups, and everything after
// the first pipeline breaker / transactional operator run through the AOT
// helpers of jit/runtime.h.
//
// IR requirements from the paper are honored: (1) all allocas live in the
// entry block and heap allocation is absent from generated code,
// (2) initializations (parameter loads, handle slots) happen at the entry
// point, (3) tuple element types are fixed at code-generation time,
// (4) the generated pipeline is fully compatible with the AOT engine (it
// can hand tuples to the interpreter at any operator index).

#ifndef POSEIDON_JIT_CODEGEN_H_
#define POSEIDON_JIT_CODEGEN_H_

#include <memory>
#include <string>

#include <llvm/IR/LLVMContext.h>
#include <llvm/IR/Module.h>

#include "query/plan.h"
#include "storage/scan_options.h"
#include "util/status.h"

namespace poseidon::jit {

struct CodegenResult {
  std::unique_ptr<llvm::LLVMContext> context;
  std::unique_ptr<llvm::Module> module;
  std::string function_name;
  /// Interpreter operator index where the AOT tail starts (-1 = the whole
  /// plan was inlined and tuples go straight to the collector).
  int tail_index = -1;
  /// Number of JitHandle stack slots the function uses (the runtime sizes
  /// its per-thread snapshot storage from this).
  uint32_t num_handle_slots = 0;
};

/// Generates the IR module for `plan`. `function_name` must be unique per
/// module (the engine derives it from the plan signature hash). `scan`
/// selects the scan-loop shape baked into the code: with batching enabled
/// the node-scan source iterates occupancy bitmap words (whole-word skip
/// test, cttz bit extraction) and issues software prefetches for the next
/// occupied record and the next chunk header; the knobs are part of the
/// compiled-code cache key.
///
/// `adj_cache` bakes the DRAM adjacency-cache fast path into every kExpand:
/// a per-node poseidon_expand_cached probe plus a DRAM array loop, with the
/// original PMem chain walk as the miss fallback. Like the scan knobs it is
/// part of the compiled-code cache key; with it off the emitted Expand IR is
/// identical to the pre-cache generator.
Result<CodegenResult> GenerateQueryIR(
    const query::Plan& plan, const std::string& function_name,
    const storage::ScanOptions& scan = storage::ScanOptions{},
    bool adj_cache = true);

/// Generated function type: i32(state, begin, end, thread).
using CompiledQueryFn = int32_t (*)(void* state, uint64_t begin, uint64_t end,
                                    uint32_t thread);

}  // namespace poseidon::jit

#endif  // POSEIDON_JIT_CODEGEN_H_
