#include "jit/jit_query_engine.h"

#include <thread>

namespace poseidon::jit {

using query::PipelineExecutor;
using query::QueryEngine;
using query::QueryResult;

namespace {

constexpr uint32_t kMaxHandleSlots = 64;

/// Builds the shared runtime state for one execution.
std::unique_ptr<JitRuntimeState> MakeState(const query::Plan& plan,
                                           query::ExecContext ctx,
                                           query::ResultCollector* collector,
                                           PipelineExecutor* exec,
                                           size_t num_threads) {
  auto state = std::make_unique<JitRuntimeState>();
  const auto& nodes = ctx.store->nodes();
  const auto& rels = ctx.store->relationships();
  const auto& props = *ctx.store->properties().table();
  state->header.node_chunks = nodes.chunk_ptr_array();
  state->header.rel_chunks = rels.chunk_ptr_array();
  state->header.prop_chunks = props.chunk_ptr_array();
  state->header.node_num_chunks = nodes.num_chunks();
  state->header.rel_num_chunks = rels.num_chunks();
  state->header.prop_num_chunks = props.num_chunks();
  state->header.ts = ctx.tx->id();
  state->header.read_latency = ctx.store->pool()->latency().read_block_ns;
  // The token always exists, and an explicit Cancel may arrive at any time,
  // so generated loops always poll. The flag stays in the header so compiled
  // code cached before this field existed remains well-defined (it simply
  // never polls) and future fast paths can gate on it.
  state->header.cancellable = 1;
  state->ctx = ctx;
  state->collector = collector;
  state->executor = exec;
  state->plan = &plan;
  state->ops = exec->ops();
  state->threads.reserve(num_threads + 1);
  for (size_t t = 0; t < num_threads + 1; ++t) {
    auto slots = std::make_unique<JitRuntimeState::ThreadSlots>();
    slots->snapshots.resize(kMaxHandleSlots);
    slots->adj_holds.resize(kMaxHandleSlots);
    state->threads.push_back(std::move(slots));
  }
  return state;
}

Status StatusFromCode(int32_t code, JitRuntimeState* state) {
  if (code >= 0) return Status::Ok();
  std::lock_guard<std::mutex> lock(state->error_mu);
  if (!state->error.ok()) return state->error;
  return Status::Internal("compiled query reported an unknown error");
}

}  // namespace

JitQueryEngine::JitQueryEngine(storage::GraphStore* store,
                               index::IndexManager* indexes,
                               size_t num_threads)
    : store_(store), indexes_(indexes), pool_(num_threads) {}

Result<std::unique_ptr<JitQueryEngine>> JitQueryEngine::Create(
    storage::GraphStore* store, index::IndexManager* indexes,
    size_t num_threads, QueryCache* cache) {
  auto engine = std::unique_ptr<JitQueryEngine>(
      new JitQueryEngine(store, indexes, num_threads));
  POSEIDON_ASSIGN_OR_RETURN(engine->engine_, JitEngine::Create(cache));
  return engine;
}

void JitQueryEngine::WaitForBackgroundCompiles() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  bg_done_.wait(lock, [this] { return bg_inflight_ == 0; });
}

Status JitQueryEngine::RunCompiledSerial(const CompiledQuery& compiled,
                                         JitRuntimeState* state,
                                         PipelineExecutor* exec,
                                         ExecStats* stats) {
  if (compiled.num_handle_slots > kMaxHandleSlots) {
    return Status::Internal("query exceeds the handle-slot budget");
  }
  // NodeScan and index sources are range sources: the compiled function
  // consumes [begin, end) morsels (slot ids / match positions). Create
  // pipelines take a single invocation.
  uint64_t slots = exec->SourceCardinality();
  const query::Op* front = exec->ops().empty() ? nullptr : exec->ops().front();
  bool range_source =
      front != nullptr && (front->kind == query::OpKind::kNodeScan ||
                           front->kind == query::OpKind::kIndexScan ||
                           front->kind == query::OpKind::kIndexRangeScan);
  if (!range_source) {
    int32_t code = compiled.fn(state, 0, 1, 0);
    if (stats != nullptr) ++stats->jit_morsels;
    return StatusFromCode(code, state);
  }
  for (uint64_t begin = 0; begin < slots;
       begin += QueryEngine::kMorselSize) {
    POSEIDON_RETURN_IF_ERROR(state->ctx.tx->cancel_token()->Check());
    uint64_t end = std::min(begin + QueryEngine::kMorselSize, slots);
    int32_t code = compiled.fn(state, begin, end, 0);
    if (stats != nullptr) ++stats->jit_morsels;
    POSEIDON_RETURN_IF_ERROR(StatusFromCode(code, state));
    if (code == 1) break;  // limit satisfied
  }
  return Status::Ok();
}

Result<QueryResult> JitQueryEngine::Execute(
    const query::Plan& plan, tx::Transaction* tx,
    const std::vector<query::Value>& params, ExecutionMode mode,
    ExecStats* stats, const JitOptions& options) {
  ExecStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = ExecStats();

  // Engine-level scan knobs flow into both execution paths: the interpreter
  // reads them from the context, the code generator bakes them into the
  // compiled scan loop (and the compiled-code cache key).
  JitOptions jit_options = options;
  jit_options.scan = scan_options_;
  jit_options.adj_cache = adj_cache_enabled_;

  // Attribute adjacency-cache traffic to this execution as a before/after
  // delta on the manager-wide counters (racy under concurrent queries, but
  // EXPLAIN/bench use it single-query).
  const tx::AdjacencyCacheStats adj_before =
      tx->manager()->adjacency_cache().stats();
  // rts-coalescing tallies live on the transaction itself (plain fields,
  // flushed to the manager at Finish), so this attribution is exact even
  // under concurrent queries.
  const uint64_t rts_skipped_before = tx->rts_skipped();
  const uint64_t rts_deferred_before = tx->rts_deferred();

  query::ResultCollector collector;
  query::ExecContext ctx;
  ctx.tx = tx;
  ctx.store = store_;
  ctx.indexes = indexes_;
  ctx.params = &params;
  ctx.scan = scan_options_;
  PipelineExecutor exec(plan, ctx, &collector);
  POSEIDON_RETURN_IF_ERROR(exec.Prepare());

  // The body runs in an IIFE so a cancellation/deadline abort still flows
  // through the stats classification below before propagating to the caller.
  Status run_status = [&]() -> Status {
  switch (mode) {
    case ExecutionMode::kInterpret: {
      POSEIDON_RETURN_IF_ERROR(exec.Run());
      ++stats->interpreted_morsels;
      break;
    }

    case ExecutionMode::kInterpretParallel: {
      uint64_t slots = exec.SourceCardinality();
      if (slots == 0) {
        POSEIDON_RETURN_IF_ERROR(exec.Run());
        ++stats->interpreted_morsels;
        break;
      }
      std::mutex status_mu;
      Status first_error;
      for (uint64_t begin = 0; begin < slots;
           begin += QueryEngine::kMorselSize) {  // parallel morsels
        // Stop feeding the pool once the token trips; in-flight morsels
        // observe the same token inside RunMorsel's push loops.
        Status admit = tx->cancel_token()->Check();
        if (!admit.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          if (first_error.ok()) first_error = admit;
          break;
        }
        uint64_t end = std::min(begin + QueryEngine::kMorselSize, slots);
        pool_.Submit([&exec, &status_mu, &first_error, begin, end] {
          Status s = exec.RunMorsel(begin, end);
          if (!s.ok()) {
            std::lock_guard<std::mutex> lock(status_mu);
            if (first_error.ok()) first_error = s;
          }
        });
        ++stats->interpreted_morsels;
      }
      pool_.WaitIdle();
      POSEIDON_RETURN_IF_ERROR(first_error);
      POSEIDON_RETURN_IF_ERROR(exec.Finish());
      break;
    }

    case ExecutionMode::kJit: {
      auto compiled = engine_->Compile(plan, jit_options);
      if (!compiled.ok()) {
        // Graceful degradation: a compile failure (injectable via the
        // jit.compile fault site) costs the speedup, not the query — run
        // the same plan through the interpreter instead of surfacing an
        // engine-internal error to the client.
        stats->jit_fallback = true;
        POSEIDON_RETURN_IF_ERROR(exec.Run());
        ++stats->interpreted_morsels;
        break;
      }
      stats->compile_ms = compiled->codegen_ms + compiled->optimize_ms +
                          compiled->compile_ms;
      stats->cache_hit = compiled->from_persistent_cache;
      stats->memo_hit = compiled->from_memo;
      stats->used_jit = true;
      auto state = MakeState(plan, ctx, &collector, &exec, 1);
      POSEIDON_RETURN_IF_ERROR(
          RunCompiledSerial(*compiled, state.get(), &exec, stats));
      POSEIDON_RETURN_IF_ERROR(exec.Finish());
      break;
    }

    case ExecutionMode::kAdaptive: {
      auto state =
          MakeState(plan, ctx, &collector, &exec, pool_.num_threads());
      // The "static task function" of the paper: null = interpret.
      auto compiled_fn = std::make_shared<std::atomic<CompiledQueryFn>>(
          nullptr);

      // The plan-dependent phases (memo/cache probe + IR generation) run
      // synchronously — sub-millisecond — so the caller's plan may be
      // destroyed right after Execute returns; only the expensive
      // optimization/compilation/linking happens in the background
      // (deduplicated: repeated adaptive runs of an in-flight query must
      // not stack up compile threads).
      auto pending = engine_->BeginCompile(plan, jit_options);
      if (pending.ok() && pending->done) {
        // Memo/cache hit (§6.2: "If the code is found, it will be linked
        // with the current database instance").
        if (pending->result.num_handle_slots <= kMaxHandleSlots) {
          compiled_fn->store(pending->result.fn, std::memory_order_release);
          stats->memo_hit = pending->result.from_memo;
          stats->cache_hit = pending->result.from_persistent_cache;
        }
      } else if (pending.ok()) {
        uint64_t qid = pending->result.query_id;
        bool launch;
        {
          std::lock_guard<std::mutex> lock(bg_mu_);
          launch = bg_query_ids_.insert(qid).second;
          if (launch) ++bg_inflight_;
        }
        if (launch) {
          auto shared_pending = std::make_shared<JitEngine::PendingCompile>(
              std::move(*pending));
          std::thread([this, shared_pending, compiled_fn, qid] {
            auto compiled =
                engine_->FinishCompile(std::move(*shared_pending));
            if (compiled.ok() &&
                compiled->num_handle_slots <= kMaxHandleSlots) {
              compiled_fn->store(compiled->fn, std::memory_order_release);
            }
            {
              std::lock_guard<std::mutex> lock(bg_mu_);
              bg_query_ids_.erase(qid);
              --bg_inflight_;
            }
            bg_done_.notify_all();
          }).detach();
        }
      } else {
        // Compile setup failed: all morsels run interpreted.
        stats->jit_fallback = true;
      }

      uint64_t slots = exec.SourceCardinality();
      if (slots == 0) {
        // Non-scan source: a single task; the switch cannot help here
        // (paper: short updates execute entirely in AOT mode).
        POSEIDON_RETURN_IF_ERROR(exec.Run());
        ++stats->interpreted_morsels;
        break;
      }

      // Morsel task pool with worker-slot ids for the JIT handle storage.
      std::mutex status_mu;
      Status first_error;
      std::atomic<uint64_t> jit_morsels{0}, interp_morsels{0};
      std::atomic<bool> stop{false};
      for (uint64_t begin = 0; begin < slots;
           begin += QueryEngine::kMorselSize) {
        Status admit = tx->cancel_token()->Check();
        if (!admit.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          if (first_error.ok()) first_error = admit;
          break;
        }
        uint64_t end = std::min(begin + QueryEngine::kMorselSize, slots);
        pool_.Submit([&, begin, end] {
          if (stop.load(std::memory_order_acquire)) return;
          // Worker slot 0 is reserved for serial execution; pool workers
          // use their stable index + 1 for the JIT handle storage.
          uint32_t worker =
              static_cast<uint32_t>(ThreadPool::current_worker_index() + 1);
          CompiledQueryFn fn = compiled_fn->load(std::memory_order_acquire);
          Status s;
          if (fn != nullptr &&
              worker < static_cast<uint32_t>(state->threads.size())) {
            int32_t code = fn(state.get(), begin, end, worker);
            if (code == 1) stop.store(true, std::memory_order_release);
            s = StatusFromCode(code, state.get());
            jit_morsels.fetch_add(1, std::memory_order_relaxed);
          } else {
            s = exec.RunMorsel(begin, end);
            interp_morsels.fetch_add(1, std::memory_order_relaxed);
          }
          if (!s.ok()) {
            std::lock_guard<std::mutex> lock(status_mu);
            if (first_error.ok()) first_error = s;
          }
        });
      }
      pool_.WaitIdle();
      POSEIDON_RETURN_IF_ERROR(first_error);
      POSEIDON_RETURN_IF_ERROR(exec.Finish());
      stats->jit_morsels = jit_morsels.load();
      stats->interpreted_morsels = interp_morsels.load();
      stats->used_jit = stats->jit_morsels > 0;
      break;
    }
  }
  return Status::Ok();
  }();

  if (!run_status.ok()) {
    stats->deadline_exceeded = run_status.IsDeadlineExceeded();
    stats->cancelled = run_status.IsCancelled();
    return run_status;
  }

  const tx::AdjacencyCacheStats adj_after =
      tx->manager()->adjacency_cache().stats();
  stats->adj_cache_hits = adj_after.hits - adj_before.hits;
  stats->adj_cache_misses = adj_after.misses - adj_before.misses;
  stats->rts_skipped = tx->rts_skipped() - rts_skipped_before;
  stats->rts_deferred = tx->rts_deferred() - rts_deferred_before;

  QueryResult result;
  result.rows = collector.TakeRows();
  return result;
}

}  // namespace poseidon::jit
