#include "jit/jit_engine.h"

#include <llvm/ExecutionEngine/Orc/CompileUtils.h>
#include <llvm/ExecutionEngine/Orc/LLJIT.h>
#include <llvm/IR/LegacyPassManager.h>
#include <llvm/Support/TargetSelect.h>
#include <llvm/Transforms/IPO/PassManagerBuilder.h>
#include <llvm/Transforms/InstCombine/InstCombine.h>
#include <llvm/Transforms/Scalar.h>
#include <llvm/Transforms/Utils.h>

#include <cstring>

#include "jit/runtime.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/spin_timer.h"

namespace poseidon::jit {

namespace {

/// Cached blob layout: header + raw object-file bytes. tail_index and the
/// handle-slot count are codegen outputs that must survive alongside the
/// machine code.
struct BlobHeader {
  uint32_t magic;
  int32_t tail_index;
  uint32_t num_handle_slots;
  uint32_t reserved;
};
constexpr uint32_t kBlobMagic = 0x504a4954;  // "PJIT"

void InitializeLlvmOnce() {
  static bool initialized = [] {
    llvm::InitializeNativeTarget();
    llvm::InitializeNativeTargetAsmPrinter();
    llvm::InitializeNativeTargetAsmParser();
    return true;
  }();
  (void)initialized;
}

/// Registers the AOT helper functions (jit/runtime.h) as absolute symbols
/// so generated code can call them without dynamic symbol export.
llvm::Error RegisterRuntimeSymbols(llvm::orc::LLJIT* jit,
                                   llvm::orc::JITDylib& jd) {
  llvm::orc::SymbolMap symbols;
  auto& es = jit->getExecutionSession();
  auto add = [&](const char* name, auto* fn) {
    symbols[es.intern(name)] = llvm::JITEvaluatedSymbol(
        llvm::pointerToJITTargetAddress(fn), llvm::JITSymbolFlags::Exported);
  };
  add("poseidon_node_ref", &poseidon_node_ref);
  add("poseidon_rel_ref", &poseidon_rel_ref);
  add("poseidon_get_prop", &poseidon_get_prop);
  add("poseidon_param", &poseidon_param);
  add("poseidon_compare", &poseidon_compare);
  add("poseidon_index_matches", &poseidon_index_matches);
  add("poseidon_index_match_at", &poseidon_index_match_at);
  add("poseidon_emit", &poseidon_emit);
  add("poseidon_touch", &poseidon_touch);
  add("poseidon_prefetch", &poseidon_prefetch);
  add("poseidon_expand_cached", &poseidon_expand_cached);
  add("poseidon_should_yield", &poseidon_should_yield);
  return jd.define(llvm::orc::absoluteSymbols(std::move(symbols)));
}

std::string LlvmErrToString(llvm::Error err) {
  std::string out;
  llvm::handleAllErrors(std::move(err), [&](const llvm::ErrorInfoBase& e) {
    out += e.message();
    out += "; ";
  });
  return out;
}

/// The paper's run-time optimization strategy: the explicit cascade
/// followed by the aggressive standard pipeline (-O3).
void OptimizeModule(llvm::Module* module) {
  llvm::legacy::FunctionPassManager fpm(module);
  fpm.add(llvm::createPromoteMemoryToRegisterPass());  // mem2reg
  fpm.add(llvm::createCFGSimplificationPass());
  fpm.add(llvm::createLoopUnrollPass());
  fpm.add(llvm::createDeadCodeEliminationPass());
  fpm.add(llvm::createInstructionCombiningPass());
  fpm.doInitialization();
  for (auto& f : *module) {
    if (!f.isDeclaration()) fpm.run(f);
  }
  fpm.doFinalization();

  llvm::legacy::PassManager mpm;
  llvm::PassManagerBuilder pmb;
  pmb.OptLevel = 3;
  pmb.populateModulePassManager(mpm);
  mpm.run(*module);
}

}  // namespace

JitEngine::~JitEngine() = default;

Result<std::unique_ptr<JitEngine>> JitEngine::Create(QueryCache* cache) {
  InitializeLlvmOnce();
  auto engine = std::unique_ptr<JitEngine>(new JitEngine());
  engine->cache_ = cache;
  auto jit = llvm::orc::LLJITBuilder().create();
  if (!jit) {
    return Status::Internal("LLJIT creation failed: " +
                            LlvmErrToString(jit.takeError()));
  }
  engine->jit_ = std::move(*jit);
  auto tmb = llvm::orc::JITTargetMachineBuilder::detectHost();
  if (!tmb) {
    return Status::Internal("host detection failed: " +
                            LlvmErrToString(tmb.takeError()));
  }
  auto tm = tmb->createTargetMachine();
  if (!tm) {
    return Status::Internal("target machine creation failed: " +
                            LlvmErrToString(tm.takeError()));
  }
  engine->tm_ = std::move(*tm);
  return engine;
}

uint64_t JitEngine::QueryIdFor(const query::Plan& plan,
                               const JitOptions& options) {
  uint64_t id =
      HashCombine(HashString(plan.Signature()), options.optimize ? 1 : 2);
  // The scan knobs are codegen inputs (they change the emitted loop), so
  // they participate in the cache key.
  id = HashCombine(id, options.scan.batch_enabled ? 1 : 2);
  id = HashCombine(id, options.scan.batch_size);
  id = HashCombine(id, options.scan.prefetch_distance);
  // So is the adjacency-cache fast path (dual Expand loop vs chain walk).
  id = HashCombine(id, options.adj_cache ? 1 : 2);
  return id;
}

bool JitEngine::TryGetMemoized(const query::Plan& plan,
                               const JitOptions& options,
                               CompiledQuery* out) {
  uint64_t query_id = QueryIdFor(plan, options);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(query_id);
  if (it == memo_.end()) return false;
  *out = it->second;
  out->from_memo = true;
  out->codegen_ms = out->optimize_ms = out->compile_ms = 0;
  return true;
}

Result<CompiledQuery> JitEngine::Compile(const query::Plan& plan,
                                         const JitOptions& options) {
  POSEIDON_ASSIGN_OR_RETURN(PendingCompile pending,
                            BeginCompile(plan, options));
  return FinishCompile(std::move(pending));
}

Result<JitEngine::PendingCompile> JitEngine::BeginCompile(
    const query::Plan& plan, const JitOptions& options) {
  // Injectable compile failure (jit.compile): lets tests and benches prove
  // the query layer degrades to interpretation instead of failing the query
  // when codegen breaks (OOM in ORC, unsupported plan shape, ...).
  if (util::FaultRegistry::Instance().ShouldFail("jit.compile")) {
    return Status::Internal("JIT compilation failed: injected fault "
                            "(jit.compile)");
  }
  uint64_t query_id = QueryIdFor(plan, options);
  PendingCompile pending;
  pending.options = options;
  pending.result.query_id = query_id;

  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = memo_.find(query_id); it != memo_.end()) {
    pending.result = it->second;
    pending.result.from_memo = true;
    pending.result.codegen_ms = pending.result.optimize_ms =
        pending.result.compile_ms = 0;
    pending.done = true;
    return pending;
  }

  char name_buf[32];
  std::snprintf(name_buf, sizeof(name_buf), "q%016llx",
                static_cast<unsigned long long>(query_id));
  pending.fn_name = name_buf;

  // Each compiled query gets its own JITDylib so symbol names can never
  // collide across plans or cache generations.
  std::string dylib_name =
      pending.fn_name + "_d" + std::to_string(dylib_counter_++);
  auto jd_or = jit_->getExecutionSession().createJITDylib(dylib_name);
  if (!jd_or) {
    return Status::Internal("createJITDylib failed: " +
                            LlvmErrToString(jd_or.takeError()));
  }
  llvm::orc::JITDylib& jd = *jd_or;
  if (auto err = RegisterRuntimeSymbols(jit_.get(), jd)) {
    return Status::Internal("symbol registration failed: " +
                            LlvmErrToString(std::move(err)));
  }
  pending.dylib = &jd;

  // --- Persistent cache probe ------------------------------------------
  if (cache_ != nullptr && options.use_persistent_cache) {
    auto blob = cache_->Get(query_id);
    if (blob.ok() && blob->size() > sizeof(BlobHeader)) {
      BlobHeader header;
      std::memcpy(&header, blob->data(), sizeof(header));
      if (header.magic == kBlobMagic) {
        auto buffer = llvm::MemoryBuffer::getMemBufferCopy(
            llvm::StringRef(blob->data() + sizeof(BlobHeader),
                            blob->size() - sizeof(BlobHeader)),
            pending.fn_name);
        if (auto err = jit_->addObjectFile(jd, std::move(buffer))) {
          return Status::Internal("linking cached object failed: " +
                                  LlvmErrToString(std::move(err)));
        }
        auto sym = jit_->lookup(jd, pending.fn_name);
        if (!sym) {
          return Status::Internal("cached symbol lookup failed: " +
                                  LlvmErrToString(sym.takeError()));
        }
        pending.result.fn =
            reinterpret_cast<CompiledQueryFn>(sym->getAddress());
        pending.result.tail_index = header.tail_index;
        pending.result.num_handle_slots = header.num_handle_slots;
        pending.result.from_persistent_cache = true;
        memo_[query_id] = pending.result;
        pending.done = true;
        return pending;
      }
    }
  }

  // --- IR generation (the only phase that reads the plan) -----------------
  StopWatch watch;
  POSEIDON_ASSIGN_OR_RETURN(
      pending.code, GenerateQueryIR(plan, pending.fn_name, options.scan,
                                    options.adj_cache));
  pending.result.codegen_ms = watch.ElapsedMs();
  pending.result.tail_index = pending.code.tail_index;
  pending.result.num_handle_slots = pending.code.num_handle_slots;
  pending.code.module->setDataLayout(jit_->getDataLayout());
  return pending;
}

Result<CompiledQuery> JitEngine::FinishCompile(PendingCompile pending) {
  if (pending.done) return pending.result;
  // LLVM's legacy pass managers, the shared TargetMachine, and ORC session
  // mutations must not run from two threads at once: an adaptive background
  // compile racing a foreground Compile corrupts the heap or fails with
  // "symbol already defined". One compile at a time; a racer that lost
  // reuses the winner's memoized code instead of re-linking.
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = memo_.find(pending.result.query_id); it != memo_.end()) {
    CompiledQuery hit = it->second;
    hit.from_memo = true;
    hit.codegen_ms = hit.optimize_ms = hit.compile_ms = 0;
    return hit;
  }
  CompiledQuery result = pending.result;

  // --- Optimization ---------------------------------------------------------
  StopWatch watch;
  if (pending.options.optimize) OptimizeModule(pending.code.module.get());
  result.optimize_ms = watch.ElapsedMs();

  // --- Compilation to a relocatable object ---------------------------------
  watch.Reset();
  llvm::orc::SimpleCompiler compiler(*tm_);
  auto object = compiler(*pending.code.module);
  if (!object) {
    return Status::Internal("object compilation failed: " +
                            LlvmErrToString(object.takeError()));
  }
  result.compile_ms = watch.ElapsedMs();

  // --- Persist, link, resolve -----------------------------------------------
  if (cache_ != nullptr && pending.options.use_persistent_cache) {
    BlobHeader header{kBlobMagic, result.tail_index, result.num_handle_slots,
                      0};
    std::vector<char> blob(sizeof(header) + (*object)->getBufferSize());
    std::memcpy(blob.data(), &header, sizeof(header));
    std::memcpy(blob.data() + sizeof(header), (*object)->getBufferStart(),
                (*object)->getBufferSize());
    POSEIDON_RETURN_IF_ERROR(
        cache_->Put(result.query_id, blob.data(), blob.size()));
  }
  auto& jd = *static_cast<llvm::orc::JITDylib*>(pending.dylib);
  if (auto err = jit_->addObjectFile(jd, std::move(*object))) {
    return Status::Internal("linking object failed: " +
                            LlvmErrToString(std::move(err)));
  }
  auto sym = jit_->lookup(jd, pending.fn_name);
  if (!sym) {
    return Status::Internal("symbol lookup failed: " +
                            LlvmErrToString(sym.takeError()));
  }
  result.fn = reinterpret_cast<CompiledQueryFn>(sym->getAddress());
  memo_[result.query_id] = result;
  return result;
}

}  // namespace poseidon::jit
