#include "pmem/scrubber.h"

#include <algorithm>
#include <chrono>

#include "pmem/pool.h"
#include "util/env.h"

namespace poseidon::pmem {

namespace {
/// Lines verified per scheduling quantum: 4096 lines = 256 KiB, small
/// enough that Stop() and rate changes take effect promptly.
constexpr uint64_t kBatchLines = 4096;
}  // namespace

Scrubber::Scrubber(Pool* pool)
    : pool_(pool),
      rate_mb_s_(util::EnvU64("POSEIDON_SCRUB_RATE_MB_S", 64)) {}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start() {
  if (!pool_->checksums_enabled()) return;
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void Scrubber::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

uint64_t Scrubber::ScrubOnce() {
  if (!pool_->checksums_enabled()) return 0;
  // Seal in-flight lines first: anything flushed since the last commit
  // boundary reads as "unsealed" and would silently escape verification.
  pool_->SealPending();
  Offset begin = pool_->data_begin();
  uint64_t end = pool_->bytes_used();
  if (end <= begin) return 0;
  return pool_->VerifyAndRepairRange(begin, end - begin);
}

void Scrubber::Loop() {
  Offset cursor = pool_->data_begin();
  uint64_t epoch = pool_->scrub_epoch();
  while (!stop_.load(std::memory_order_acquire)) {
    uint64_t now_epoch = pool_->scrub_epoch();
    if (now_epoch != epoch) {
      // SimulateCrash reverted the image: restart the pass so the sweep's
      // verification schedule is independent of where the cursor was.
      epoch = now_epoch;
      cursor = pool_->data_begin();
    }
    uint64_t rate = rate_mb_s_.load(std::memory_order_acquire);
    uint64_t end = pool_->bytes_used();
    uint64_t batch_bytes = kBatchLines * kCacheLineSize;
    if (rate == 0) {
      // Paused: idle until Stop or a rate change.
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }
    if (cursor >= end) {
      // Pass complete: seal stragglers, publish, restart.
      pool_->SealPending();
      passes_.fetch_add(1, std::memory_order_acq_rel);
      cursor = pool_->data_begin();
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(10));
      continue;
    }
    uint64_t len = std::min(batch_bytes, end - cursor);
    pool_->VerifyAndRepairRange(cursor, len);
    cursor += len;
    // Rate limiting: a batch of B bytes at R MB/s takes B/R microseconds
    // per MB — sleep the budgeted time instead of scanning flat out.
    uint64_t sleep_us = len / rate;  // (bytes / (MB/s)) == microseconds
    if (sleep_us > 0) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::microseconds(sleep_us));
    }
  }
}

}  // namespace poseidon::pmem
