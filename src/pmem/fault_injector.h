// Crash-point scheduler for the PMem pool (tentpole leg 1 of the
// fault-injection subsystem).
//
// Every persistence primitive the pool executes — each Flush (including
// FlushBatch-coalesced and PersistDeferred flushes) and each Drain — is a
// *numbered injection point*: the injector assigns them 1, 2, 3, ... in
// execution order. Arming point k freezes the crash shadow the moment the
// k-th primitive begins, BEFORE it copies anything durable — i.e. the
// durable image is exactly "everything persisted strictly before point k",
// which is the state a power loss at that instant would leave on media.
//
// The workload keeps running after the freeze (later stores and flushes are
// volatile-only); the test then calls Pool::SimulateCrash() to revert to
// the frozen image and re-runs recovery. Running the same deterministic
// workload with k = 1..points_seen() enumerates every flush/drain ordering
// the commit path can be cut at — the exhaustive crash-state exploration
// that Persistent Memory Transactions-style testing demands.
//
// Determinism caveat: background threads (POSEIDON_BG_GC, group commit)
// interleave their own flushes into the numbering; exhaustive sweeps should
// disable them and drive a single-threaded workload.
//
// The injector is created only when PoolOptions::crash_shadow is set, so
// production pools pay nothing (a null-pointer test on the flush path).
// POSEIDON_CRASH_POINT=<k> arms point k at Create/Open time for driving
// whole binaries (e.g. the recovery bench sweep).

#ifndef POSEIDON_PMEM_FAULT_INJECTOR_H_
#define POSEIDON_PMEM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

namespace poseidon::pmem {

class Pool;

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms the scheduler: the `point`-th persistence primitive from now on
  /// (1-based) freezes the crash shadow. 0 disarms. Counting is NOT reset —
  /// arm before the workload starts.
  void ArmCrashPoint(uint64_t point) {
    armed_.store(point, std::memory_order_release);
  }

  void Disarm() { ArmCrashPoint(0); }

  /// Called by the pool at the top of every Flush/Drain. Assigns the point
  /// number and fires the armed crash, freezing `pool`'s shadow before the
  /// primitive does any durability work.
  void OnPersistPoint(Pool* pool);

  /// Persistence primitives executed so far (== the highest point number
  /// assigned). A dry run of a workload reports how many crash points an
  /// exhaustive sweep must cover.
  uint64_t points_seen() const {
    return counter_.load(std::memory_order_acquire);
  }

  /// Point number the armed crash fired at (0 = has not fired).
  uint64_t crash_fired_at() const {
    return fired_at_.load(std::memory_order_acquire);
  }

  bool crash_fired() const { return crash_fired_at() != 0; }

 private:
  std::atomic<uint64_t> counter_{0};   // points assigned so far
  std::atomic<uint64_t> armed_{0};     // 0 = disarmed
  std::atomic<uint64_t> fired_at_{0};  // 0 = not fired
};

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_FAULT_INJECTOR_H_
