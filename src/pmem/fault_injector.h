// Crash-point scheduler for the PMem pool (tentpole leg 1 of the
// fault-injection subsystem).
//
// Every persistence primitive the pool executes — each Flush (including
// FlushBatch-coalesced and PersistDeferred flushes) and each Drain — is a
// *numbered injection point*: the injector assigns them 1, 2, 3, ... in
// execution order. Arming point k freezes the crash shadow the moment the
// k-th primitive begins, BEFORE it copies anything durable — i.e. the
// durable image is exactly "everything persisted strictly before point k",
// which is the state a power loss at that instant would leave on media.
//
// The workload keeps running after the freeze (later stores and flushes are
// volatile-only); the test then calls Pool::SimulateCrash() to revert to
// the frozen image and re-runs recovery. Running the same deterministic
// workload with k = 1..points_seen() enumerates every flush/drain ordering
// the commit path can be cut at — the exhaustive crash-state exploration
// that Persistent Memory Transactions-style testing demands.
//
// Determinism caveat: background threads (POSEIDON_BG_GC, group commit)
// interleave their own flushes into the numbering; exhaustive sweeps should
// disable them and drive a single-threaded workload.
//
// The injector is created only when PoolOptions::crash_shadow is set, so
// production pools pay nothing (a null-pointer test on the flush path).
// POSEIDON_CRASH_POINT=<k> arms point k at Create/Open time for driving
// whole binaries (e.g. the recovery bench sweep).

#ifndef POSEIDON_PMEM_FAULT_INJECTOR_H_
#define POSEIDON_PMEM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace poseidon::pmem {

class Pool;
using Offset = uint64_t;

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms the scheduler: the `point`-th persistence primitive from now on
  /// (1-based) freezes the crash shadow. 0 disarms. Counting is NOT reset —
  /// arm before the workload starts.
  void ArmCrashPoint(uint64_t point) {
    armed_.store(point, std::memory_order_release);
  }

  void Disarm() { ArmCrashPoint(0); }

  /// Called by the pool at the top of every Flush/Drain. Assigns the point
  /// number and fires the armed crash, freezing `pool`'s shadow before the
  /// primitive does any durability work.
  void OnPersistPoint(Pool* pool);

  /// Persistence primitives executed so far (== the highest point number
  /// assigned). A dry run of a workload reports how many crash points an
  /// exhaustive sweep must cover.
  uint64_t points_seen() const {
    return counter_.load(std::memory_order_acquire);
  }

  /// Point number the armed crash fired at (0 = has not fired).
  uint64_t crash_fired_at() const {
    return fired_at_.load(std::memory_order_acquire);
  }

  bool crash_fired() const { return crash_fired_at() != 0; }

  // --- Media faults (tentpole leg 3 of the scrubbing subsystem) -----------
  //
  // Unlike crash points (which cut the persistence stream), media faults
  // mutate bytes that were already durable: a single-bit flip or a torn
  // 64 B line written into the crash shadow, so SimulateCrash() surfaces
  // damage exactly as decayed media would after a power loss. Without a
  // shadow the live image is corrupted directly.

  /// Flips bit `bit` (0..7) of the durable byte at pool offset `off`.
  void InjectBitFlip(Pool* pool, Offset off, uint32_t bit);

  /// Overwrites the second half of the 64 B durable line containing `off`
  /// with a recognizable pattern — a torn-line write (partial line made it
  /// to media before power loss).
  void InjectTornLine(Pool* pool, Offset off);

  /// Deterministically injects `count` single-bit flips into randomly
  /// chosen *sealed* (checksummed) lines of the pool's data area. Returns
  /// the affected line numbers (offset / 64; deduplicated, sorted). Fewer
  /// than `count` faults land only when the pool has fewer sealed lines.
  std::vector<uint64_t> InjectRandomMediaFaults(Pool* pool, uint64_t count,
                                                uint64_t seed);

  /// Parses POSEIDON_FAULT_MEDIA=<count>[:<seed>] (seed defaults to the
  /// count) and arms that many random bit flips to be applied by the next
  /// SimulateCrash().
  void ArmMediaFaultsFromEnv();
  void ArmMediaFaults(uint64_t count, uint64_t seed);

  /// Called by Pool::SimulateCrash(): applies armed media faults (once).
  void ApplyPendingMediaFaults(Pool* pool);

  /// Lines damaged by this injector so far (deduplicated, sorted).
  std::vector<uint64_t> media_faulted_lines() const;

 private:
  std::atomic<uint64_t> counter_{0};   // points assigned so far
  std::atomic<uint64_t> armed_{0};     // 0 = disarmed
  std::atomic<uint64_t> fired_at_{0};  // 0 = not fired
  std::atomic<uint64_t> media_armed_count_{0};
  std::atomic<uint64_t> media_seed_{0};
  mutable std::mutex media_mu_;
  std::vector<uint64_t> media_lines_;  // lines damaged so far

  void RecordMediaLine(Offset off);
};

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_FAULT_INJECTOR_H_
