// PersistSanitizer (PSAN): a shadow-memory persist-order checker.
//
// The engine's whole durability story is a discipline: store into pool
// memory, flush the cache line, drain, and only then flush anything that
// makes the data reachable. Nothing enforced that discipline — the
// crash-point explorer samples interleavings but cannot say "this store was
// never flushed" or "this pointer was published before its pointee". PSAN
// models durability at cache-line granularity and reports violations with
// the file:line of the offending store (macro capture in pptr.h):
//
//   state machine per 64 B line (tracked lines only — a line enters the
//   machine on its first *instrumented* store or the flush that follows):
//
//       untracked --store--> DIRTY --flush--> FLUSHING --drain--> DURABLE
//                              ^                 |____store____________|
//                              |_________________________store_________|
//
//   violation classes:
//     (a) unflushed-at-boundary: a line still DIRTY when its writing thread
//         finishes a redo commit, or any line still DIRTY at pool close.
//     (b) redundant flush: an un-deduplicated flush of a line that is
//         already FLUSHING/DURABLE with no store since — latency paid for
//         nothing. Reported as a diagnostic counter (it feeds the flush-
//         dedup accounting next to PoolStats::deduped_lines), not a hard
//         violation: PSAN cannot see uninstrumented stores (MVTO lock
//         words are volatile by design), so a "redundant" flush may be
//         covering one of those.
//     (c) fence-before-data: a publish slot (pptr/offset slot, directory
//         entry, header field) is flushed while the data it points to is
//         still DIRTY. In this engine's crash model flushed bytes are
//         durable (drains only order and pay latency — see
//         Pool::FlushAccounted), so the check is "pointee must at least be
//         FLUSHING when the pointer's line is flushed".
//
// Thread model: DIRTY lines are attributed to the storing thread, and the
// commit boundary checks only the committing thread's lines — concurrent
// committers sharing a cache line never see each other's in-flight stores
// as violations. Drains are global (all FLUSHING -> DURABLE), matching the
// group-commit leader draining on behalf of its followers.
//
// Compiled in with -DPOSEIDON_PSAN=ON (CMake option); at runtime the env
// knob POSEIDON_PSAN (default 1 when compiled in) turns it off without a
// rebuild. When not compiled in, the PsanStore/PsanPublish helpers in
// pptr.h reduce to the raw stores and this class is never instantiated;
// PsanTotalViolations() still links and returns 0 so tests can assert on it
// unconditionally.

#ifndef POSEIDON_PMEM_PSAN_H_
#define POSEIDON_PMEM_PSAN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace poseidon::pmem {

/// "file:line" capture for instrumented stores; usable in any TU.
#define POSEIDON_PSAN_STR2(x) #x
#define POSEIDON_PSAN_STR(x) POSEIDON_PSAN_STR2(x)
#define POSEIDON_PSAN_SITE (__FILE__ ":" POSEIDON_PSAN_STR(__LINE__))

/// True when the sanitizer is compiled into this build.
constexpr bool PsanCompiledIn() {
#ifdef POSEIDON_PSAN
  return true;
#else
  return false;
#endif
}

enum class PsanViolationKind {
  kUnflushedAtBoundary,  ///< (a) dirty line at commit end / pool close
  kFenceBeforeData,      ///< (c) pointer flushed before its pointee
};

struct PsanViolation {
  PsanViolationKind kind;
  /// file:line of the store (a) or the publish (c); never null.
  std::string site;
  /// Pool offset of the affected cache line.
  uint64_t line_offset = 0;
  std::string detail;
};

/// Per-pool diagnostics, in the spirit of RecoveryReport: counters plus a
/// bounded list of per-site incident records.
struct PsanReport {
  uint64_t unflushed_at_boundary = 0;
  uint64_t fence_before_data = 0;
  /// Class (b): diagnostic, not a violation (see file comment).
  uint64_t redundant_flush_lines = 0;
  std::vector<PsanViolation> violations;  // capped at kMaxRecorded

  static constexpr size_t kMaxRecorded = 256;

  /// Hard violations only — classes (a) and (c).
  uint64_t total_violations() const {
    return unflushed_at_boundary + fence_before_data;
  }
};

/// Process-wide hard-violation count across every pool, including pools
/// already destroyed (close-boundary findings outlive their pool). Always 0
/// when PSAN is not compiled in or disabled by env.
uint64_t PsanTotalViolations();

class PersistSanitizer {
 public:
  /// `base`/`capacity` delimit the pool mapping; addresses outside it are
  /// ignored (DRAM-placed B+tree nodes share the instrumented call sites).
  PersistSanitizer(const char* base, uint64_t capacity);

  PersistSanitizer(const PersistSanitizer&) = delete;
  PersistSanitizer& operator=(const PersistSanitizer&) = delete;

  /// An instrumented store of [addr, addr+len): lines become DIRTY,
  /// attributed to the calling thread and `site`.
  void OnStore(const void* addr, uint64_t len, const char* site);

  /// A pointer-publishing store: OnStore for the slot plus a pending
  /// fence-order check — when the slot's line is flushed, the pointee
  /// [pool offset target_off, +target_len) must not be DIRTY.
  void OnPublish(const void* slot, uint64_t slot_len, uint64_t target_off,
                 uint64_t target_len, const char* site);

  /// A flush covering cache line number `line` (address / 64). `deduped`
  /// flushes (coalesced by a FlushBatch) transition state but are exempt
  /// from the redundant-flush diagnostic. Returns true when the flush was
  /// counted redundant so the caller can feed the pool's stats counters.
  bool OnFlushLine(uint64_t line, bool deduped);

  /// A drain: every FLUSHING line becomes DURABLE (global, leader-drains-
  /// for-followers semantics).
  void OnDrain();

  /// End of a redo commit on the calling thread: its DIRTY lines are
  /// unflushed-at-boundary violations (reported once, then forgotten).
  void OnCommitBoundary();

  /// Pool close: every DIRTY line, regardless of thread, is a violation.
  void OnClose();

  /// Forgets all tracking state (crash simulation reverted the memory
  /// image). Violation counters survive — they describe the pre-crash run.
  void Reset();

  /// Copy of the per-pool report.
  PsanReport Snapshot() const;

  /// Hard violations recorded by this pool so far.
  uint64_t violation_count() const {
    return violations_.load(std::memory_order_acquire);
  }

 private:
  enum class LineState : uint8_t { kFlushing, kDurable };

  struct DirtyInfo {
    const char* site;
    uint64_t tid;
  };

  struct PublishDep {
    uint64_t target_first;  ///< first pointee line (address / 64)
    uint64_t target_last;
    const char* site;
  };

  void MarkDirtyLocked(uint64_t first, uint64_t last, const char* site);
  void RecordLocked(PsanViolationKind kind, const char* site,
                    uint64_t line, std::string detail);
  uint64_t LineToOffset(uint64_t line) const;
  bool InPool(const void* addr) const {
    return addr >= base_ && addr < base_ + capacity_;
  }

  const char* base_;
  uint64_t capacity_;
  bool log_;  // POSEIDON_VERBOSE: print incidents to stderr as they happen

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, DirtyInfo> dirty_;     // line -> first store
  std::unordered_map<uint64_t, LineState> state_;     // flushed lines
  std::vector<uint64_t> flushing_;                    // drain worklist
  std::unordered_map<uint64_t, std::vector<PublishDep>> publishes_;
  PsanReport report_;
  std::atomic<uint64_t> violations_{0};
};

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_PSAN_H_
