#include "pmem/pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <random>

namespace poseidon::pmem {

namespace {

constexpr uint64_t kMagic = 0x504f534549444f4eull;  // "POSEIDON"
constexpr uint64_t kVersion = 1;
constexpr uint64_t kHeaderReserved = 4096;
constexpr uint64_t kDefaultRedoSize = 8ull << 20;
constexpr uint64_t kMaxSizeClassBytes = 64ull << 10;

uint64_t AlignUp(uint64_t x, uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

}  // namespace

struct Pool::Header {
  uint64_t magic;
  uint64_t version;
  uint64_t capacity;
  uint64_t pool_id;
  uint64_t clean_shutdown;
  uint64_t root;
  uint64_t bump;  // next never-allocated byte
  uint64_t redo_area;
  uint64_t redo_size;
  uint64_t free_lists[kNumSizeClasses];
};

// --- Lifecycle --------------------------------------------------------------

Result<std::unique_ptr<Pool>> Pool::Create(const std::string& path,
                                           const PoolOptions& options) {
  if (options.capacity < kHeaderReserved + kDefaultRedoSize + (1 << 20)) {
    return Status::InvalidArgument("pool capacity too small");
  }
  auto pool = std::unique_ptr<Pool>(new Pool());
  pool->mode_ = options.mode;
  pool->capacity_ = options.capacity;
  POSEIDON_RETURN_IF_ERROR(pool->MapRegion(path, /*create=*/true));
  pool->InitHeader(options);
  if (options.has_latency_override) {
    pool->latency_ = options.latency_override;
  } else {
    pool->latency_ = options.mode == PoolMode::kPmem
                         ? LatencyModel::EmulatedPmem()
                         : LatencyModel::Dram();
  }
  if (options.crash_shadow) {
    pool->shadow_ = std::make_unique<char[]>(pool->capacity_);
    std::memcpy(pool->shadow_.get(), pool->base_, pool->capacity_);
  }
  pool->redo_log_ = std::make_unique<RedoLog>(
      pool.get(), pool->header()->redo_area, pool->header()->redo_size);
  return pool;
}

Result<std::unique_ptr<Pool>> Pool::Open(const std::string& path,
                                         const PoolOptions& options) {
  if (options.mode != PoolMode::kPmem) {
    return Status::InvalidArgument("only pmem pools can be reopened");
  }
  auto pool = std::unique_ptr<Pool>(new Pool());
  pool->mode_ = PoolMode::kPmem;
  POSEIDON_RETURN_IF_ERROR(pool->MapRegion(path, /*create=*/false));
  POSEIDON_RETURN_IF_ERROR(pool->ValidateHeader());
  pool->capacity_ = pool->header()->capacity;
  pool->recovered_from_crash_ = pool->header()->clean_shutdown == 0;
  if (options.has_latency_override) {
    pool->latency_ = options.latency_override;
  } else {
    pool->latency_ = LatencyModel::EmulatedPmem();
  }
  if (options.crash_shadow) {
    pool->shadow_ = std::make_unique<char[]>(pool->capacity_);
    std::memcpy(pool->shadow_.get(), pool->base_, pool->capacity_);
  }
  pool->redo_log_ = std::make_unique<RedoLog>(
      pool.get(), pool->header()->redo_area, pool->header()->redo_size);
  pool->redo_log_->Recover();
  pool->header()->clean_shutdown = 0;
  pool->Persist(&pool->header()->clean_shutdown, sizeof(uint64_t));
  return pool;
}

Result<std::unique_ptr<Pool>> Pool::CreateVolatile(uint64_t capacity) {
  PoolOptions options;
  options.mode = PoolMode::kDram;
  options.capacity = capacity;
  return Create("", options);
}

Pool::~Pool() {
  if (base_ == nullptr) return;
  if (mode_ == PoolMode::kPmem && fd_ >= 0) {
    header()->clean_shutdown = 1;
    Persist(&header()->clean_shutdown, sizeof(uint64_t));
    ::msync(base_, capacity_, MS_SYNC);
  }
  ::munmap(base_, capacity_);
  if (fd_ >= 0) ::close(fd_);
}

Status Pool::MapRegion(const std::string& path, bool create) {
  void* mem = nullptr;
  if (mode_ == PoolMode::kDram) {
    mem = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      return Status::IoError("mmap(anonymous) failed: " +
                             std::string(strerror(errno)));
    }
    base_ = static_cast<char*>(mem);
    return Status::Ok();
  }
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_EXCL;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IoError("open(" + path +
                           ") failed: " + std::string(strerror(errno)));
  }
  if (create) {
    if (::ftruncate(fd_, static_cast<off_t>(capacity_)) != 0) {
      return Status::IoError("ftruncate failed: " +
                             std::string(strerror(errno)));
    }
  } else {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IoError("fstat failed: " + std::string(strerror(errno)));
    }
    capacity_ = static_cast<uint64_t>(st.st_size);
    if (capacity_ < kHeaderReserved) {
      return Status::Corruption("pool file too small");
    }
  }
  mem = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (mem == MAP_FAILED) {
    return Status::IoError("mmap(file) failed: " +
                           std::string(strerror(errno)));
  }
  base_ = static_cast<char*>(mem);
  return Status::Ok();
}

void Pool::InitHeader(const PoolOptions& options) {
  static_assert(sizeof(Header) <= kHeaderReserved,
                "header must fit reserved page");
  auto* h = header();
  std::memset(h, 0, sizeof(Header));
  h->magic = kMagic;
  h->version = kVersion;
  h->capacity = options.capacity;
  std::random_device rd;
  h->pool_id = (static_cast<uint64_t>(rd()) << 32) | rd();
  h->clean_shutdown = 0;
  h->root = kNullOffset;
  h->redo_area = kHeaderReserved;
  h->redo_size = kDefaultRedoSize;
  h->bump = AlignUp(kHeaderReserved + kDefaultRedoSize, kPmemBlockSize);
  // Ensure the redo log starts idle.
  std::memset(base_ + h->redo_area, 0, 16);
  Persist(h, sizeof(Header));
  Persist(base_ + h->redo_area, 16);
}

Status Pool::ValidateHeader() const {
  const auto* h = header();
  if (h->magic != kMagic) return Status::Corruption("bad pool magic");
  if (h->version != kVersion) return Status::Corruption("bad pool version");
  if (h->capacity > capacity_) {
    return Status::Corruption("pool header capacity exceeds file size");
  }
  return Status::Ok();
}

// --- Allocator --------------------------------------------------------------

int Pool::SizeClassFor(uint64_t size) {
  uint64_t c = kCacheLineSize;
  for (int i = 0; i < kNumSizeClasses; ++i, c <<= 1) {
    if (size <= c) return i;
  }
  return -1;  // large allocation
}

uint64_t Pool::SizeClassBytes(int size_class) {
  return kCacheLineSize << size_class;
}

Result<Offset> Pool::Allocate(uint64_t size, uint64_t align) {
  if (size == 0) return Status::InvalidArgument("zero-size allocation");
  if (align < 8 || (align & (align - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two >= 8");
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto* h = header();
  ++stats_.alloc_calls;

  int size_class = SizeClassFor(size);
  if (size_class >= 0 && align <= kCacheLineSize) {
    // Pop from the size-class free list when possible (DG5: reuse blocks).
    Offset head = h->free_lists[size_class];
    if (head != kNullOffset) {
      Offset next;
      std::memcpy(&next, base_ + head, sizeof(next));
      h->free_lists[size_class] = next;
      Persist(&h->free_lists[size_class], sizeof(Offset));
      ++stats_.alloc_from_free_list;
      return head;
    }
    size = SizeClassBytes(size_class);
    align = kCacheLineSize;
  }

  Offset off = AlignUp(h->bump, align);
  if (off + size > capacity_) {
    return Status::ResourceExhausted("pool exhausted");
  }
  h->bump = off + size;
  Persist(&h->bump, sizeof(uint64_t));
  return off;
}

Result<Offset> Pool::AllocateZeroed(uint64_t size, uint64_t align) {
  POSEIDON_ASSIGN_OR_RETURN(Offset off, Allocate(size, align));
  std::memset(base_ + off, 0, size);
  Persist(base_ + off, size);
  return off;
}

void Pool::Free(Offset off, uint64_t size) {
  assert(off != kNullOffset && off < capacity_);
  std::lock_guard<std::mutex> lock(alloc_mu_);
  ++stats_.free_calls;
  int size_class = SizeClassFor(size);
  if (size_class < 0) {
    // Large blocks are not tracked; higher layers arena-manage them.
    return;
  }
  auto* h = header();
  Offset old_head = h->free_lists[size_class];
  std::memcpy(base_ + off, &old_head, sizeof(Offset));
  Persist(base_ + off, sizeof(Offset));
  h->free_lists[size_class] = off;
  Persist(&h->free_lists[size_class], sizeof(Offset));
}

// --- Persistence primitives ---------------------------------------------

void Pool::Flush(const void* addr, uint64_t len) {
  if (len == 0) return;
  auto a = reinterpret_cast<uint64_t>(addr);
  uint64_t first = a / kCacheLineSize;
  uint64_t last = (a + len - 1) / kCacheLineSize;
  uint64_t lines = last - first + 1;
  stats_.flushed_lines += lines;
  if (mode_ == PoolMode::kPmem) latency_.OnFlush(lines);
  if (shadow_ != nullptr) {
    // Crash simulation: flushed bytes become durable. Whole cache lines are
    // flushed, matching clwb semantics.
    uint64_t begin = first * kCacheLineSize;
    uint64_t end = (last + 1) * kCacheLineSize;
    auto base_addr = reinterpret_cast<uint64_t>(base_);
    if (begin < base_addr) begin = base_addr;
    if (end > base_addr + capacity_) end = base_addr + capacity_;
    std::memcpy(shadow_.get() + (begin - base_addr),
                reinterpret_cast<const void*>(begin), end - begin);
  }
}

void Pool::Drain() {
  ++stats_.drains;
  if (mode_ == PoolMode::kPmem) latency_.OnDrain();
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

// --- Root ------------------------------------------------------------------

Offset Pool::root() const { return header()->root; }

void Pool::set_root(Offset off) {
  header()->root = off;
  Persist(&header()->root, sizeof(Offset));
}

// --- Crash simulation -----------------------------------------------------

void Pool::SimulateCrash() {
  assert(shadow_ != nullptr &&
         "SimulateCrash requires PoolOptions::crash_shadow");
  std::memcpy(base_, shadow_.get(), capacity_);
  recovered_from_crash_ = true;
}

// --- Introspection ----------------------------------------------------------

uint64_t Pool::bytes_used() const { return header()->bump; }
uint64_t Pool::pool_id() const { return header()->pool_id; }

// --- RedoLog ---------------------------------------------------------------

// Log area layout:
//   [0]  u64 state       (0 = idle, 1 = committed)
//   [8]  u64 num_entries
//   [16] entries: { u64 target, u64 len, len bytes (padded to 8) } ...

RedoLog::RedoLog(Pool* pool, Offset area, uint64_t area_size)
    : pool_(pool), area_(area), area_size_(area_size) {}

bool RedoLog::Recover() {
  char* log = pool_->base_ + area_;
  uint64_t state;
  std::memcpy(&state, log, sizeof(state));
  if (state != 1) {
    // Crash before the commit marker: the log is ignored; nothing was
    // applied to home locations, so the update atomically never happened.
    if (state != 0) {
      // Arbitrary garbage (e.g. first use): reset to idle.
      state = 0;
      std::memcpy(log, &state, sizeof(state));
      pool_->Persist(log, sizeof(state));
    }
    return false;
  }
  // Crash after the commit marker: re-apply every entry (idempotent).
  uint64_t num_entries;
  std::memcpy(&num_entries, log + 8, sizeof(num_entries));
  uint64_t pos = 16;
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint64_t target, len;
    std::memcpy(&target, log + pos, sizeof(target));
    std::memcpy(&len, log + pos + 8, sizeof(len));
    pos += 16;
    std::memcpy(pool_->base_ + target, log + pos, len);
    pool_->Flush(pool_->base_ + target, len);
    pos += (len + 7) & ~7ull;
  }
  pool_->Drain();
  uint64_t zero = 0;
  std::memcpy(log, &zero, sizeof(zero));
  pool_->Persist(log, sizeof(zero));
  return true;
}

RedoTx::RedoTx(RedoLog* log) : log_(log) { log_->mu_.lock(); }

RedoTx::~RedoTx() { log_->mu_.unlock(); }

void RedoTx::Stage(Offset target, const void* data, uint64_t len) {
  assert(!committed_);
  Entry e;
  e.target = target;
  e.len = len;
  e.data.resize(len);
  std::memcpy(e.data.data(), data, len);
  staged_bytes_ += 16 + ((len + 7) & ~7ull);
  entries_.push_back(std::move(e));
}

Status RedoTx::Commit() {
  assert(!committed_);
  committed_ = true;
  Pool* pool = log_->pool_;
  if (16 + staged_bytes_ > log_->area_size_) {
    return Status::ResourceExhausted("redo log area too small for commit");
  }
  char* log = pool->base_ + log_->area_;

  // Phase 1: write entries and count, then persist them.
  uint64_t pos = 16;
  for (const Entry& e : entries_) {
    std::memcpy(log + pos, &e.target, sizeof(e.target));
    std::memcpy(log + pos + 8, &e.len, sizeof(e.len));
    pos += 16;
    std::memcpy(log + pos, e.data.data(), e.len);
    pos += (e.len + 7) & ~7ull;
  }
  uint64_t num_entries = entries_.size();
  std::memcpy(log + 8, &num_entries, sizeof(num_entries));
  pool->Persist(log + 8, pos - 8);

  // Phase 2: 8-byte atomic commit marker (C4: the only failure-atomic store
  // size). Once durable, the transaction is logically committed.
  uint64_t one = 1;
  std::memcpy(log, &one, sizeof(one));
  pool->Persist(log, sizeof(one));

  // Phase 3: apply to home locations and persist.
  for (const Entry& e : entries_) {
    std::memcpy(pool->base_ + e.target, e.data.data(), e.len);
    pool->Flush(pool->base_ + e.target, e.len);
  }
  pool->Drain();

  // Phase 4: clear the marker.
  uint64_t zero = 0;
  std::memcpy(log, &zero, sizeof(zero));
  pool->Persist(log, sizeof(zero));
  return Status::Ok();
}

}  // namespace poseidon::pmem
