#include "pmem/pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

#include "pmem/fault_injector.h"
#include "pmem/psan.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/fault.h"

// Persist-order sanitizer marking for the pool's own durable stores
// (allocator metadata, redo segments, header fields). Compiled away
// entirely without POSEIDON_PSAN.
#ifdef POSEIDON_PSAN
#define POOL_PSAN_MARK(psan, addr, len)                               \
  do {                                                                \
    ::poseidon::pmem::PersistSanitizer* psan__ = (psan);              \
    if (psan__ != nullptr)                                            \
      psan__->OnStore((addr), (len), POSEIDON_PSAN_SITE);             \
  } while (0)
#define POOL_PSAN_PUBLISH(psan, slot, slot_len, target, target_len)   \
  do {                                                                \
    ::poseidon::pmem::PersistSanitizer* psan__ = (psan);              \
    if (psan__ != nullptr)                                            \
      psan__->OnPublish((slot), (slot_len), (target), (target_len),   \
                        POSEIDON_PSAN_SITE);                          \
  } while (0)
#else
#define POOL_PSAN_MARK(psan, addr, len) ((void)0)
#define POOL_PSAN_PUBLISH(psan, slot, slot_len, target, target_len) ((void)0)
#endif

namespace poseidon::pmem {

namespace {

constexpr uint64_t kMagic = 0x504f534549444f4eull;  // "POSEIDON"
constexpr uint64_t kVersion = 4;  // v4: per-line CRC32C sidecar region
constexpr uint64_t kHeaderReserved = 4096;
constexpr uint64_t kDefaultRedoSize = 8ull << 20;
constexpr uint64_t kMaxSizeClassBytes = 64ull << 10;
constexpr uint32_t kMaxRedoSegments = 64;
constexpr uint64_t kSegmentHeaderBytes = kRedoSegmentHeaderBytes;

uint64_t AlignUp(uint64_t x, uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

/// Sidecar region size for a pool of `capacity` bytes: one 4-byte CRC32C
/// slot per 64 B line of the whole pool, block-aligned. Slots below the
/// data area are simply never used — indexing by absolute line number keeps
/// the hot-path slot lookup a single shift+add.
uint64_t SidecarBytes(uint64_t capacity) {
  return AlignUp(capacity / kCacheLineSize * 4, kPmemBlockSize);
}

using poseidon::util::EnvInt;

/// Checksum of a redo segment: the commit_ts + num_entries words plus the
/// entry bytes [kSegmentHeaderBytes, end_pos). The state word and the crc
/// slot itself are excluded (state flips idle<->committed after the crc is
/// written).
uint64_t SegmentCrc(const char* seg, uint64_t end_pos) {
  uint32_t crc = util::Crc32c(seg + 8, 16);
  if (end_pos > kSegmentHeaderBytes) {
    crc = util::Crc32c(seg + kSegmentHeaderBytes, end_pos - kSegmentHeaderBytes,
                       crc);
  }
  return crc;
}

}  // namespace

void AtomicStoreCopy(void* dst, const void* src, uint64_t len) {
  auto d = reinterpret_cast<uintptr_t>(dst);
  auto s = reinterpret_cast<uintptr_t>(src);
  if (((d | s | len) & 7) != 0) {
    std::memcpy(dst, src, len);
    return;
  }
  auto* dw = reinterpret_cast<uint64_t*>(dst);
  auto* sw = reinterpret_cast<const uint64_t*>(src);
  for (uint64_t i = 0; i < len / 8; ++i) {
    uint64_t v;
    std::memcpy(&v, &sw[i], sizeof(v));
    std::atomic_ref<uint64_t>(dw[i]).store(v, std::memory_order_release);
  }
}

void AtomicLoadCopy(void* dst, const void* src, uint64_t len) {
  auto d = reinterpret_cast<uintptr_t>(dst);
  auto s = reinterpret_cast<uintptr_t>(src);
  if (((d | s | len) & 7) != 0) {
    std::memcpy(dst, src, len);
    return;
  }
  auto* dw = reinterpret_cast<uint64_t*>(dst);
  auto* sw = reinterpret_cast<const uint64_t*>(src);
  for (uint64_t i = 0; i < len / 8; ++i) {
    uint64_t v =
        std::atomic_ref<const uint64_t>(sw[i]).load(std::memory_order_acquire);
    std::memcpy(&dw[i], &v, sizeof(v));
  }
}

struct Pool::Header {
  uint64_t magic;
  uint64_t version;
  uint64_t capacity;
  uint64_t pool_id;
  uint64_t clean_shutdown;
  uint64_t root;
  uint64_t bump;  // next never-allocated byte
  uint64_t redo_area;
  uint64_t redo_size;
  uint64_t redo_segments;
  uint64_t sidecar_area;  // v4: per-line CRC32C region (redo end .. data)
  uint64_t sidecar_size;
  uint64_t free_lists[kNumSizeClasses];
  /// CRC32C of the immutable configuration fields (magic, version,
  /// capacity, pool_id, redo_area, redo_size, redo_segments, sidecar_area,
  /// sidecar_size). Written once at InitHeader; Open refuses a header whose
  /// configuration no longer hashes — a bit flip in, say, redo_segments
  /// would otherwise silently change the segment geometry recovery walks.
  /// Mutable fields (root, bump, free lists, clean_shutdown) are protected
  /// by the redo protocol instead.
  uint64_t config_crc;
  /// 1 while a session maintains the CRC sidecar (unseal-on-flush +
  /// reseal-at-boundary). A session running with checksums off mutates
  /// sealed lines without unsealing them, so a later checksum-enabled
  /// reopen must treat every seal as stale and reseed the sidecar.
  uint64_t checksums_live;
};

namespace {
/// Folds the immutable header fields: magic..pool_id (bytes [0,32)) and
/// redo_area..sidecar_size (bytes [56,96)).
uint64_t HeaderConfigCrc(const void* header_base) {
  const char* h = static_cast<const char*>(header_base);
  uint32_t crc = util::Crc32c(h, 32);
  crc = util::Crc32c(h + 56, 40, crc);
  return crc;
}
}  // namespace

// --- Lifecycle --------------------------------------------------------------

void Pool::Configure(const PoolOptions& options) {
  pipelined_ = options.commit_pipeline >= 0
                   ? options.commit_pipeline != 0
                   : EnvInt("POSEIDON_COMMIT_PIPELINE", 1) != 0;
  if (options.has_latency_override) {
    latency_ = options.latency_override;
  } else {
    latency_ = mode_ == PoolMode::kPmem ? LatencyModel::EmulatedPmem()
                                        : LatencyModel::Dram();
  }
  uint64_t soft = util::EnvU64("POSEIDON_POOL_SOFT_WATERMARK_PCT", 0);
  soft_watermark_pct_.store(static_cast<uint32_t>(soft > 100 ? 100 : soft),
                            std::memory_order_relaxed);
}

Result<std::unique_ptr<Pool>> Pool::Create(const std::string& path,
                                           const PoolOptions& opts_in) {
  PoolOptions options = opts_in;
  // Scrubbing implies the crash shadow: the sidecar CRCs cover the
  // *durable* image, and without a shadow the live mapping is that image —
  // volatile in-record fields (MVTO lock words, rts bumps) would then
  // drift under sealed lines and read as media corruption.
  if (EnvInt("POSEIDON_SCRUB", 0) != 0 ||
      EnvInt("POSEIDON_CHECKSUMS", 0) != 0) {
    options.crash_shadow = true;
  }
  if (options.capacity < kHeaderReserved + kDefaultRedoSize +
                             SidecarBytes(options.capacity) + (1 << 20)) {
    return Status::InvalidArgument("pool capacity too small");
  }
  auto pool = std::unique_ptr<Pool>(new Pool());
  pool->mode_ = options.mode;
  pool->capacity_ = options.capacity;
  POSEIDON_RETURN_IF_ERROR(pool->MapRegion(path, /*create=*/true));
  pool->Configure(options);
#ifdef POSEIDON_PSAN
  if (EnvInt("POSEIDON_PSAN", 1) != 0) {
    pool->psan_ =
        std::make_unique<PersistSanitizer>(pool->base_, pool->capacity_);
  }
#endif
  pool->InitHeader(options);
  if (options.crash_shadow) {
    pool->shadow_ = std::make_unique<char[]>(pool->capacity_);
    std::memcpy(pool->shadow_.get(), pool->base_, pool->capacity_);
    pool->fault_injector_ = std::make_unique<FaultInjector>();
    uint64_t crash_point = util::EnvU64("POSEIDON_CRASH_POINT", 0);
    if (crash_point != 0) pool->fault_injector_->ArmCrashPoint(crash_point);
    pool->fault_injector_->ArmMediaFaultsFromEnv();
  }
  pool->ConfigureChecksums(options);
  pool->header()->checksums_live = pool->checksums_ ? 1 : 0;
  POOL_PSAN_MARK(pool->psan_.get(), &pool->header()->checksums_live,
                 sizeof(uint64_t));
  pool->Persist(&pool->header()->checksums_live, sizeof(uint64_t));
  pool->redo_log_ = std::make_unique<RedoLog>(
      pool.get(), pool->header()->redo_area, pool->header()->redo_size,
      static_cast<uint32_t>(pool->header()->redo_segments));
  return pool;
}

Result<std::unique_ptr<Pool>> Pool::Open(const std::string& path,
                                         const PoolOptions& opts_in) {
  PoolOptions options = opts_in;
  // Same promotion as Create: checksums are only sound over a shadowed
  // durable image, so the scrubbing knobs imply the crash shadow.
  if (EnvInt("POSEIDON_SCRUB", 0) != 0 ||
      EnvInt("POSEIDON_CHECKSUMS", 0) != 0) {
    options.crash_shadow = true;
  }
  if (options.mode != PoolMode::kPmem) {
    return Status::InvalidArgument("only pmem pools can be reopened");
  }
  auto pool = std::unique_ptr<Pool>(new Pool());
  pool->mode_ = PoolMode::kPmem;
  POSEIDON_RETURN_IF_ERROR(pool->MapRegion(path, /*create=*/false));
  POSEIDON_RETURN_IF_ERROR(pool->ValidateHeader());
  pool->capacity_ = pool->header()->capacity;
  pool->recovered_from_crash_ = pool->header()->clean_shutdown == 0;
  pool->Configure(options);
#ifdef POSEIDON_PSAN
  if (EnvInt("POSEIDON_PSAN", 1) != 0) {
    pool->psan_ =
        std::make_unique<PersistSanitizer>(pool->base_, pool->capacity_);
  }
#endif
  if (options.crash_shadow) {
    pool->shadow_ = std::make_unique<char[]>(pool->capacity_);
    std::memcpy(pool->shadow_.get(), pool->base_, pool->capacity_);
    pool->fault_injector_ = std::make_unique<FaultInjector>();
    uint64_t crash_point = util::EnvU64("POSEIDON_CRASH_POINT", 0);
    if (crash_point != 0) pool->fault_injector_->ArmCrashPoint(crash_point);
    pool->fault_injector_->ArmMediaFaultsFromEnv();
  }
  pool->ConfigureChecksums(options);
  // The header's segment count is authoritative: it fixed the segment
  // geometry at creation, and trusting a different env/options value here
  // would make recovery walk segment boundaries that don't match the
  // on-media log. Diagnose the mismatch, then ignore the request.
  uint32_t segments = static_cast<uint32_t>(std::clamp<uint64_t>(
      pool->header()->redo_segments, 1, kMaxRedoSegments));
  uint32_t requested =
      options.redo_segments != 0
          ? options.redo_segments
          : static_cast<uint32_t>(std::clamp(
                EnvInt("POSEIDON_REDO_SEGMENTS", static_cast<int>(segments)),
                1, static_cast<int>(kMaxRedoSegments)));
  if (requested != segments) {
    std::string warning =
        "redo segment-count mismatch: pool header says " +
        std::to_string(segments) + ", reopen requested " +
        std::to_string(requested) + "; header value wins";
    if (EnvInt("POSEIDON_VERBOSE", 0) != 0) {
      std::fprintf(stderr, "poseidon: %s\n", warning.c_str());
    }
    pool->recovery_report_.warnings.push_back(std::move(warning));
  }
  pool->redo_log_ = std::make_unique<RedoLog>(
      pool.get(), pool->header()->redo_area, pool->header()->redo_size,
      segments);
  size_t pre_recovery_warnings = pool->recovery_report_.warnings.size();
  pool->redo_log_->Recover(&pool->recovery_report_);
  // Replayed entries unsealed their lines; recovery end is a commit
  // boundary, so their checksums are valid again now.
  pool->SealPending();
  // A previous session that ran with checksums off mutated sealed lines
  // without unsealing them, so every seal on media is suspect: rebuild
  // the whole sidecar from the recovered image before trusting it.
  if (pool->checksums_ && pool->header()->checksums_live == 0) {
    pool->ReseedSidecar();
  }
  if (pool->header()->checksums_live != (pool->checksums_ ? 1u : 0u)) {
    pool->header()->checksums_live = pool->checksums_ ? 1 : 0;
    POOL_PSAN_MARK(pool->psan_.get(), &pool->header()->checksums_live,
                   sizeof(uint64_t));
    pool->Persist(&pool->header()->checksums_live, sizeof(uint64_t));
  }
  // Degraded-recovery diagnostics live in recovery_report(); stderr echo is
  // opt-in so test and benchmark runs stay quiet by default.
  if (EnvInt("POSEIDON_VERBOSE", 0) != 0) {
    for (size_t i = pre_recovery_warnings;
         i < pool->recovery_report_.warnings.size(); ++i) {
      std::fprintf(stderr, "poseidon: %s\n",
                   pool->recovery_report_.warnings[i].c_str());
    }
  }
  pool->header()->clean_shutdown = 0;
  POOL_PSAN_MARK(pool->psan_.get(), &pool->header()->clean_shutdown,
                 sizeof(uint64_t));
  pool->Persist(&pool->header()->clean_shutdown, sizeof(uint64_t));
  return pool;
}

Result<std::unique_ptr<Pool>> Pool::CreateVolatile(uint64_t capacity) {
  PoolOptions options;
  options.mode = PoolMode::kDram;
  options.capacity = capacity;
  return Create("", options);
}

Pool::~Pool() {
  if (base_ == nullptr) return;
  if (checksums_) SealPending();
  if (mode_ == PoolMode::kPmem && fd_ >= 0) {
    header()->clean_shutdown = 1;
    POOL_PSAN_MARK(psan_.get(), &header()->clean_shutdown, sizeof(uint64_t));
    Persist(&header()->clean_shutdown, sizeof(uint64_t));
    ::msync(base_, capacity_, MS_SYNC);
  }
#ifdef POSEIDON_PSAN
  // Pool-close boundary: anything still dirty now would never reach media.
  if (psan_ != nullptr) psan_->OnClose();
#endif
  ::munmap(base_, capacity_);
  if (fd_ >= 0) ::close(fd_);
}

Status Pool::MapRegion(const std::string& path, bool create) {
  void* mem = nullptr;
  if (mode_ == PoolMode::kDram) {
    mem = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      return Status::IoError("mmap(anonymous) failed: " +
                             std::string(strerror(errno)));
    }
    base_ = static_cast<char*>(mem);
    return Status::Ok();
  }
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_EXCL;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IoError("open(" + path +
                           ") failed: " + std::string(strerror(errno)));
  }
  if (create) {
    if (::ftruncate(fd_, static_cast<off_t>(capacity_)) != 0) {
      return Status::IoError("ftruncate failed: " +
                             std::string(strerror(errno)));
    }
  } else {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IoError("fstat failed: " + std::string(strerror(errno)));
    }
    capacity_ = static_cast<uint64_t>(st.st_size);
    if (capacity_ == 0) {
      return Status::Corruption("pool file " + path +
                                " is empty (zero length)");
    }
    if (capacity_ < kHeaderReserved) {
      return Status::Corruption(
          "pool file " + path + " is truncated: " + std::to_string(capacity_) +
          " bytes, smaller than the " + std::to_string(kHeaderReserved) +
          "-byte header page");
    }
  }
  mem = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (mem == MAP_FAILED) {
    return Status::IoError("mmap(file) failed: " +
                           std::string(strerror(errno)));
  }
  base_ = static_cast<char*>(mem);
  return Status::Ok();
}

void Pool::InitHeader(const PoolOptions& options) {
  static_assert(sizeof(Header) <= kHeaderReserved,
                "header must fit reserved page");
  static_assert(offsetof(Header, pool_id) == 24 &&
                    offsetof(Header, redo_area) == 56 &&
                    offsetof(Header, sidecar_area) == 80 &&
                    offsetof(Header, free_lists) == 96,
                "HeaderConfigCrc hashes bytes [0,32) and [56,96)");
  uint32_t segments = options.redo_segments != 0
                          ? options.redo_segments
                          : static_cast<uint32_t>(std::clamp(
                                EnvInt("POSEIDON_REDO_SEGMENTS", 8), 1,
                                static_cast<int>(kMaxRedoSegments)));
  segments = std::clamp<uint32_t>(segments, 1, kMaxRedoSegments);
  if (!pipelined_) segments = 1;  // serialized baseline: one pool-wide log

  auto* h = header();
  std::memset(h, 0, sizeof(Header));
  h->magic = kMagic;
  h->version = kVersion;
  h->capacity = options.capacity;
  std::random_device rd;
  h->pool_id = (static_cast<uint64_t>(rd()) << 32) | rd();
  h->clean_shutdown = 0;
  h->root = kNullOffset;
  h->redo_area = kHeaderReserved;
  h->redo_size = kDefaultRedoSize;
  h->redo_segments = segments;
  h->sidecar_area = kHeaderReserved + kDefaultRedoSize;
  h->sidecar_size = SidecarBytes(options.capacity);
  h->config_crc = HeaderConfigCrc(h);
  h->bump = AlignUp(h->sidecar_area + h->sidecar_size, kPmemBlockSize);
  // Ensure every redo segment starts idle.
  uint64_t seg_size = (h->redo_size / segments) & ~(kCacheLineSize - 1);
  for (uint32_t i = 0; i < segments; ++i) {
    char* seg = base_ + h->redo_area + static_cast<uint64_t>(i) * seg_size;
    std::memset(seg, 0, kSegmentHeaderBytes);
    POOL_PSAN_MARK(psan_.get(), seg, kSegmentHeaderBytes);
    Persist(seg, kSegmentHeaderBytes);
  }
  POOL_PSAN_MARK(psan_.get(), h, sizeof(Header));
  Persist(h, sizeof(Header));
}

Status Pool::ValidateHeader() const {
  // capacity_ still holds the mapped file size here; Open() adopts the
  // header capacity only after validation passes.
  const auto* h = header();
  if (h->magic != kMagic) {
    return Status::Corruption("bad pool magic (not a poseidon pool file?)");
  }
  if (h->version != kVersion) {
    return Status::Corruption("unsupported pool version " +
                              std::to_string(h->version) + " (engine speaks " +
                              std::to_string(kVersion) + ")");
  }
  if (h->capacity != capacity_) {
    return Status::Corruption(
        "pool header capacity " + std::to_string(h->capacity) +
        " does not match file size " + std::to_string(capacity_) +
        " (truncated or resized pool file)");
  }
  if (h->config_crc != HeaderConfigCrc(h)) {
    return Status::Corruption(
        "pool header configuration checksum mismatch (bit flip or torn "
        "header write)");
  }
  if (h->redo_area < sizeof(Header) || h->redo_size == 0 ||
      h->redo_area + h->redo_size > h->capacity ||
      h->redo_area + h->redo_size < h->redo_area) {
    return Status::Corruption("pool header redo-log area out of bounds");
  }
  if (h->redo_segments < 1 || h->redo_segments > kMaxRedoSegments) {
    return Status::Corruption("pool header redo segment count " +
                              std::to_string(h->redo_segments) +
                              " outside [1, " +
                              std::to_string(kMaxRedoSegments) + "]");
  }
  if (h->sidecar_area < h->redo_area + h->redo_size ||
      h->sidecar_area + h->sidecar_size > h->capacity ||
      h->sidecar_area + h->sidecar_size < h->sidecar_area) {
    return Status::Corruption("pool header checksum sidecar out of bounds");
  }
  if (h->bump > h->capacity || h->root >= h->capacity) {
    return Status::Corruption("pool header allocator state out of bounds");
  }
  return Status::Ok();
}

// --- Allocator --------------------------------------------------------------

int Pool::SizeClassFor(uint64_t size) {
  uint64_t c = kCacheLineSize;
  for (int i = 0; i < kNumSizeClasses; ++i, c <<= 1) {
    if (size <= c) return i;
  }
  return -1;  // large allocation
}

uint64_t Pool::SizeClassBytes(int size_class) {
  return kCacheLineSize << size_class;
}

Result<Offset> Pool::Allocate(uint64_t size, uint64_t align) {
  if (size == 0) return Status::InvalidArgument("zero-size allocation");
  if (align < 8 || (align & (align - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two >= 8");
  }
  // Named fault site: the space-exhaustion sweep arms POSEIDON_FAULT_PMEM_ALLOC
  // to fail the Nth allocation, exercising the transactional unwind path at
  // every allocation call site without needing a genuinely full pool.
  if (util::FaultRegistry::Instance().ShouldFail("pmem.alloc")) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "pool exhausted (injected pmem.alloc fault): requested " +
        std::to_string(size) + " bytes align " + std::to_string(align));
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto* h = header();
  stats_.alloc_calls.fetch_add(1, std::memory_order_relaxed);

  int size_class = SizeClassFor(size);
  if (size_class >= 0 && align <= kCacheLineSize) {
    // Pop from the size-class free list when possible (DG5: reuse blocks).
    Offset head = h->free_lists[size_class];
    if (head != kNullOffset) {
      Offset next;
      std::memcpy(&next, base_ + head, sizeof(next));
      h->free_lists[size_class] = next;
      POOL_PSAN_MARK(psan_.get(), &h->free_lists[size_class], sizeof(Offset));
      PersistDeferred(&h->free_lists[size_class], sizeof(Offset));
      stats_.alloc_from_free_list.fetch_add(1, std::memory_order_relaxed);
      return head;
    }
    size = SizeClassBytes(size_class);
    align = kCacheLineSize;
  }

  Offset off = AlignUp(h->bump, align);
  if (off + size > capacity_) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "pool exhausted: requested " + std::to_string(size) +
        " bytes align " + std::to_string(align) + ", " +
        std::to_string(capacity_ - h->bump) + " of " +
        std::to_string(capacity_) + " bytes free");
  }
  h->bump = off + size;
  POOL_PSAN_MARK(psan_.get(), &h->bump, sizeof(uint64_t));
  PersistDeferred(&h->bump, sizeof(uint64_t));
  return off;
}

Result<Offset> Pool::AllocateZeroed(uint64_t size, uint64_t align) {
  POSEIDON_ASSIGN_OR_RETURN(Offset off, Allocate(size, align));
  std::memset(base_ + off, 0, size);
  POOL_PSAN_MARK(psan_.get(), base_ + off, size);
  PersistDeferred(base_ + off, size);
  return off;
}

void Pool::Free(Offset off, uint64_t size) {
  assert(off != kNullOffset && off < capacity_);
  std::lock_guard<std::mutex> lock(alloc_mu_);
  stats_.free_calls.fetch_add(1, std::memory_order_relaxed);
  int size_class = SizeClassFor(size);
  if (size_class < 0) {
    // Large blocks are not tracked; higher layers arena-manage them.
    return;
  }
  auto* h = header();
  Offset old_head = h->free_lists[size_class];
  std::memcpy(base_ + off, &old_head, sizeof(Offset));
  POOL_PSAN_MARK(psan_.get(), base_ + off, sizeof(Offset));
  PersistDeferred(base_ + off, sizeof(Offset));
  h->free_lists[size_class] = off;
  // Publishing the block as the new head: its next-link must be durable
  // first or a crash replays a free list pointing at garbage.
  POOL_PSAN_PUBLISH(psan_.get(), &h->free_lists[size_class], sizeof(Offset),
                    off, sizeof(Offset));
  PersistDeferred(&h->free_lists[size_class], sizeof(Offset));
}

// --- Persistence primitives ---------------------------------------------

void Pool::CopyToShadow(uint64_t begin, uint64_t end) {
  if (shadow_frozen_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(shadow_mu_);
  auto base_addr = reinterpret_cast<uint64_t>(base_);
  AtomicLoadCopy(shadow_.get() + (begin - base_addr),
                 reinterpret_cast<const void*>(begin), end - begin);
}

void Pool::FlushAccounted(const void* addr, uint64_t len,
                          uint64_t unique_lines) {
  if (len == 0) return;
  // Seals and data flushes over the checksummed area are mutually
  // exclusive: seal_mu_ is held from the unseal below through the shadow
  // copy at the bottom, and SealLine computes+publishes its CRC under the
  // same mutex. Any interleaving of a commit-boundary seal with an
  // in-flight write to the same line would otherwise be able to publish a
  // checksum computed before this call's data lands — invisible
  // in-process (the line stays pending and reseals on touch), but a crash
  // wipes the pending set and recovery would then quarantine a perfectly
  // good committed line. The recursive FlushAccounted for the sidecar
  // slots stays below data_begin_ and skips this lock.
  std::unique_lock<std::mutex> seal_lock;
  if (checksums_) {
    auto a = reinterpret_cast<uint64_t>(addr);
    auto base_addr = reinterpret_cast<uint64_t>(base_);
    uint64_t begin = (a / kCacheLineSize) * kCacheLineSize;
    uint64_t end = ((a + len - 1) / kCacheLineSize + 1) * kCacheLineSize;
    if (begin < base_addr) begin = base_addr;
    if (end > base_addr + capacity_) end = base_addr + capacity_;
    if (begin < end && end - base_addr > data_begin_) {
      seal_lock = std::unique_lock<std::mutex>(seal_mu_);
      // Unseal covered lines BEFORE their data reaches the durable image:
      // a crash between the sidecar flush and the data flush then reads as
      // "unsealed" (unverified), never as a false checksum mismatch.
      UnsealForFlush(begin - base_addr, end - base_addr);
    }
  }
  // Crash-point scheduling: every flush is a numbered injection point, and
  // an armed point freezes the shadow BEFORE this flush copies into it —
  // the simulated power loss hits just as the clwb was about to retire.
  if (fault_injector_ != nullptr) fault_injector_->OnPersistPoint(this);
  stats_.flushed_lines.fetch_add(unique_lines, std::memory_order_relaxed);
  if (mode_ == PoolMode::kPmem && unique_lines > 0) {
    latency_.OnFlush(unique_lines);
  }
  if (shadow_ != nullptr) {
    // Crash simulation: flushed bytes become durable. Whole cache lines are
    // flushed, matching clwb semantics.
    auto a = reinterpret_cast<uint64_t>(addr);
    uint64_t begin = (a / kCacheLineSize) * kCacheLineSize;
    uint64_t end = ((a + len - 1) / kCacheLineSize + 1) * kCacheLineSize;
    auto base_addr = reinterpret_cast<uint64_t>(base_);
    if (begin < base_addr) begin = base_addr;
    if (end > base_addr + capacity_) end = base_addr + capacity_;
    if (begin < end) CopyToShadow(begin, end);
  }
}

void Pool::Flush(const void* addr, uint64_t len) {
  if (len == 0) return;
  auto a = reinterpret_cast<uint64_t>(addr);
  uint64_t first = a / kCacheLineSize;
  uint64_t last = (a + len - 1) / kCacheLineSize;
#ifdef POSEIDON_PSAN
  if (psan_ != nullptr) {
    uint64_t redundant = 0;
    for (uint64_t line = first; line <= last; ++line) {
      if (psan_->OnFlushLine(line, /*deduped=*/false)) ++redundant;
    }
    if (redundant > 0) {
      stats_.psan_redundant_lines.fetch_add(redundant,
                                            std::memory_order_relaxed);
    }
  }
#endif
  FlushAccounted(addr, len, last - first + 1);
}

void Pool::Drain() {
  if (fault_injector_ != nullptr) fault_injector_->OnPersistPoint(this);
  stats_.drains.fetch_add(1, std::memory_order_relaxed);
  if (mode_ == PoolMode::kPmem) latency_.OnDrain();
#ifdef POSEIDON_PSAN
  if (psan_ != nullptr) psan_->OnDrain();
#endif
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

bool FlushBatch::Seen(uint64_t line) {
  // Bounded backward scan: dedup targets the short-range repeats a commit
  // produces (record body + unlock word, marker line across phases); a
  // sliding window keeps huge bulk-load commits O(1) per line.
  size_t begin = lines_.size() > 64 ? lines_.size() - 64 : 0;
  for (size_t i = lines_.size(); i > begin; --i) {
    if (lines_[i - 1] == line) return true;
  }
  lines_.push_back(line);
  return false;
}

void FlushBatch::Flush(const void* addr, uint64_t len) {
  if (len == 0) return;
  auto a = reinterpret_cast<uint64_t>(addr);
  uint64_t first = a / kCacheLineSize;
  uint64_t last = (a + len - 1) / kCacheLineSize;
  uint64_t unique = 0;
#ifdef POSEIDON_PSAN
  uint64_t redundant = 0;
#endif
  for (uint64_t line = first; line <= last; ++line) {
    bool dup = Seen(line);
    if (!dup) ++unique;
#ifdef POSEIDON_PSAN
    // Deduped lines still transition dirty -> flushing (the crash shadow
    // copies the whole range) but are exempt from the redundancy count.
    if (pool_->psan_ != nullptr && pool_->psan_->OnFlushLine(line, dup)) {
      ++redundant;
    }
#endif
  }
#ifdef POSEIDON_PSAN
  if (redundant > 0) {
    pool_->stats_.psan_redundant_lines.fetch_add(redundant,
                                                 std::memory_order_relaxed);
  }
#endif
  pool_->FlushAccounted(addr, len, unique);
  uint64_t total = last - first + 1;
  if (unique < total) {
    pool_->stats_.deduped_lines.fetch_add(total - unique,
                                          std::memory_order_relaxed);
  }
}

// --- Root ------------------------------------------------------------------

Offset Pool::root() const { return header()->root; }

void Pool::set_root(Offset off) {
  header()->root = off;
  // The root makes an object graph reachable: its first line must already
  // be durable (or at least flushed) when this pointer's flush retires.
  POOL_PSAN_PUBLISH(psan_.get(), &header()->root, sizeof(Offset), off,
                    kCacheLineSize);
  Persist(&header()->root, sizeof(Offset));
}

// --- Crash simulation -----------------------------------------------------

void Pool::SimulateCrash() {
  assert(shadow_ != nullptr &&
         "SimulateCrash requires PoolOptions::crash_shadow");
  // Media decay armed via POSEIDON_FAULT_MEDIA lands in the durable image
  // now, so the crash surfaces it exactly like a real power loss would.
  if (fault_injector_ != nullptr) fault_injector_->ApplyPendingMediaFaults(this);
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    std::memcpy(base_, shadow_.get(), capacity_);
    recovered_from_crash_ = true;
#ifdef POSEIDON_PSAN
    // The memory image was reverted: pre-crash tracking no longer describes
    // it. Violation counters survive — they were real before the crash.
    if (psan_ != nullptr) psan_->Reset();
#endif
    // The durable image and the live image coincide again: resume recording.
    shadow_frozen_.store(false, std::memory_order_release);
  }
  // Scrub state describes the pre-crash image: drop the pending-seal set
  // (those lines read as unsealed now, which is the truth) and the
  // quarantine (re-detection after the crash is what keeps crash-point
  // sweeps deterministic), and tell the scrubber to restart its pass.
  {
    std::lock_guard<std::mutex> lock(seal_mu_);
    pending_seal_.clear();
  }
  ClearQuarantine();
  scrub_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void Pool::FreezeShadow() {
  assert(shadow_ != nullptr && "FreezeShadow requires PoolOptions::crash_shadow");
  // Acquire the shadow lock so no in-flight flush straddles the freeze.
  std::lock_guard<std::mutex> lock(shadow_mu_);
  shadow_frozen_.store(true, std::memory_order_release);
}

// --- Integrity: CRC sidecar, scrubbing, quarantine --------------------------

void Pool::ConfigureChecksums(const PoolOptions& options) {
  const auto* h = header();
  data_begin_ = AlignUp(h->sidecar_area + h->sidecar_size, kPmemBlockSize);
  bool want = options.crash_shadow || EnvInt("POSEIDON_SCRUB", 0) != 0;
  checksums_ = EnvInt("POSEIDON_CHECKSUMS", want ? 1 : 0) != 0;
  if (h->sidecar_size == 0) checksums_ = false;
  // Soundness guard: the sidecar CRCs cover the durable image. Without a
  // crash shadow the live mapping *is* that image, and volatile in-record
  // fields (MVTO lock words, rts bumps) are stored without flushes — they
  // would drift under sealed lines and scrub as false media corruption.
  if (shadow_ == nullptr) checksums_ = false;
}

void Pool::ReseedSidecar() {
  auto* h = header();
  std::memset(base_ + h->sidecar_area, 0, h->sidecar_size);
  if (shadow_ != nullptr) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    std::memset(shadow_.get() + h->sidecar_area, 0, h->sidecar_size);
  }
  uint64_t first = data_begin_ / kCacheLineSize;
  uint64_t last = AlignUp(h->bump, kCacheLineSize) / kCacheLineSize;
  for (uint64_t line = first; line < last; ++line) SealLine(line);
}

uint32_t* Pool::SidecarSlot(uint64_t line) const {
  return reinterpret_cast<uint32_t*>(base_ + header()->sidecar_area +
                                     line * 4);
}

uint32_t Pool::DurableSlotValue(uint64_t line) const {
  uint64_t slot_off = header()->sidecar_area + line * 4;
  if (shadow_ != nullptr) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    uint32_t v;
    std::memcpy(&v, shadow_.get() + slot_off, sizeof(v));
    return v;
  }
  return std::atomic_ref<const uint32_t>(
             *reinterpret_cast<const uint32_t*>(base_ + slot_off))
      .load(std::memory_order_acquire);
}

void Pool::ReadDurableLine(uint64_t line, void* buf64) const {
  uint64_t off = line * kCacheLineSize;
  if (shadow_ != nullptr) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    AtomicLoadCopy(buf64, shadow_.get() + off, kCacheLineSize);
    return;
  }
  AtomicLoadCopy(buf64, base_ + off, kCacheLineSize);
}

uint32_t Pool::ComputeDurableLineCrc(uint64_t line) const {
  alignas(kCacheLineSize) char buf[kCacheLineSize];
  ReadDurableLine(line, buf);
  uint32_t crc = util::Crc32c(buf, kCacheLineSize);
  // 0 is the "unsealed" sentinel; bias real checksums away from it.
  return crc == 0 ? 1u : crc;
}

Pool::LineVerify Pool::VerifyLine(uint64_t line) const {
  if (!checksums_ || line < data_begin_ / kCacheLineSize ||
      line >= capacity_ / kCacheLineSize) {
    return LineVerify::kNotCovered;
  }
  uint32_t stored = DurableSlotValue(line);
  if (stored == 0) return LineVerify::kUnsealed;
  return ComputeDurableLineCrc(line) == stored ? LineVerify::kClean
                                               : LineVerify::kMismatch;
}

void Pool::UnsealForFlush(uint64_t begin, uint64_t end) {
  // begin/end are pool-relative, line-aligned and pool-clamped.
  uint64_t first = std::max(begin / kCacheLineSize,
                            data_begin_ / kCacheLineSize);
  uint64_t last_excl = end / kCacheLineSize;
  if (first >= last_excl) return;
  // Caller (FlushAccounted) holds seal_mu_, making the whole
  // unseal-then-copy sequence atomic against SealLine.
  for (uint64_t line = first; line < last_excl; ++line) {
    pending_seal_.insert(line);
  }
  uint64_t flush_lo = 0, flush_hi = 0;
  for (uint64_t line = first; line < last_excl; ++line) {
    uint32_t* slot = SidecarSlot(line);
    if (std::atomic_ref<uint32_t>(*slot).load(std::memory_order_relaxed) ==
        0) {
      continue;  // already unsealed since the last seal
    }
    std::atomic_ref<uint32_t>(*slot).store(0, std::memory_order_release);
    POOL_PSAN_MARK(psan_.get(), slot, sizeof(uint32_t));
    auto s = reinterpret_cast<uint64_t>(slot);
    if (flush_hi == 0) flush_lo = s;
    flush_hi = s + sizeof(uint32_t);
  }
  // One flush over the touched slot range — consecutive data lines share
  // sidecar lines 16:1, so this is almost always a single line. It must
  // reach the durable image BEFORE the caller's data flush does (the whole
  // point of the unseal-first protocol). The recursive FlushAccounted skips
  // this branch: sidecar slots live below data_begin_.
  if (flush_hi != 0) {
    Flush(reinterpret_cast<void*>(flush_lo), flush_hi - flush_lo);
  }
}

void Pool::SealLine(uint64_t line) {
  if (!checksums_ || line < data_begin_ / kCacheLineSize ||
      line >= capacity_ / kCacheLineSize) {
    return;
  }
  // Mutual exclusion with in-flight data flushes (see FlushAccounted): the
  // CRC is computed and published with no concurrent write able to land in
  // the durable image between the two, so a published seal always matches
  // the durable content at publication time.
  std::lock_guard<std::mutex> lock(seal_mu_);
  uint32_t crc = ComputeDurableLineCrc(line);
  uint32_t* slot = SidecarSlot(line);
  std::atomic_ref<uint32_t>(*slot).store(crc, std::memory_order_release);
  POOL_PSAN_MARK(psan_.get(), slot, sizeof(uint32_t));
  Flush(slot, sizeof(uint32_t));
}

void Pool::SealPending() {
  if (!checksums_) return;
  std::unordered_set<uint64_t> pending;
  {
    std::lock_guard<std::mutex> lock(seal_mu_);
    pending.swap(pending_seal_);
  }
  for (uint64_t line : pending) SealLine(line);
}

void Pool::SetCorruptionHandler(CorruptionHandler handler) {
  std::lock_guard<std::recursive_mutex> lock(repair_mu_);
  corruption_handler_ = std::move(handler);
}

Pool::RepairOutcome Pool::HandleCorruptLine(uint64_t line) {
  std::lock_guard<std::recursive_mutex> repair_lock(repair_mu_);
  // A line awaiting its commit-boundary seal can race a concurrent seal
  // into a stale checksum; that is an in-flight line, not corruption —
  // reseal it from the durable image.
  bool was_pending;
  {
    std::lock_guard<std::mutex> lock(seal_mu_);
    was_pending = pending_seal_.erase(line) != 0;
  }
  if (was_pending) {
    SealLine(line);
    scrub_stats_.resealed.fetch_add(1, std::memory_order_relaxed);
    return RepairOutcome::kAdopted;
  }
  if (VerifyLine(line) != LineVerify::kMismatch) {
    return RepairOutcome::kAdopted;
  }
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    if (quarantined_set_.count(line) != 0) {
      return RepairOutcome::kUnrepairable;  // already reported
    }
  }
  scrub_stats_.mismatches.fetch_add(1, std::memory_order_relaxed);
  RepairOutcome out = RepairOutcome::kUnrepairable;
  if (corruption_handler_) {
    out = corruption_handler_(line * kCacheLineSize);
  }
  switch (out) {
    case RepairOutcome::kRepaired:
      // The handler rewrote and persisted the content (RepairStore seals on
      // its own; seal again here in case it used staged redo writes).
      {
        std::lock_guard<std::mutex> lock(seal_mu_);
        pending_seal_.erase(line);
      }
      SealLine(line);
      scrub_stats_.repaired.fetch_add(1, std::memory_order_relaxed);
      break;
    case RepairOutcome::kAdopted:
      // Free slot / structure rebuilt elsewhere: current durable bytes are
      // acceptable, bless them.
      {
        std::lock_guard<std::mutex> lock(seal_mu_);
        pending_seal_.erase(line);
      }
      SealLine(line);
      scrub_stats_.adopted.fetch_add(1, std::memory_order_relaxed);
      break;
    case RepairOutcome::kUnrepairable:
      // Content lost. Keep the mismatched checksum (it is the truth) and
      // quarantine: reads touching this line degrade to Status::Corruption,
      // the verify paths skip it from now on.
      QuarantineLine(line);
      scrub_stats_.quarantined.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return out;
}

uint64_t Pool::VerifyAndRepairRange(Offset off, uint64_t len) {
  if (!checksums_ || len == 0) return 0;
  uint64_t first = std::max(off / kCacheLineSize,
                            data_begin_ / kCacheLineSize);
  uint64_t last = (off + len - 1) / kCacheLineSize;
  uint64_t end_line = capacity_ / kCacheLineSize;
  if (last >= end_line) last = end_line - 1;
  uint64_t mismatches = 0;
  for (uint64_t line = first; line <= last; ++line) {
    if (quarantine_count_.load(std::memory_order_relaxed) != 0) {
      std::lock_guard<std::mutex> lock(quarantine_mu_);
      if (quarantined_set_.count(line) != 0) continue;
    }
    LineVerify v = VerifyLine(line);
    if (v == LineVerify::kClean) {
      scrub_stats_.lines_verified.fetch_add(1, std::memory_order_relaxed);
    } else if (v == LineVerify::kMismatch) {
      ++mismatches;
      HandleCorruptLine(line);
    }
  }
  return mismatches;
}

void Pool::RepairStore(Offset dst, const void* src, uint64_t len) {
  assert(dst + len <= capacity_);
  char* p = base_ + dst;
  AtomicStoreCopy(p, src, len);
  POOL_PSAN_MARK(psan_.get(), p, len);
  Persist(p, len);
  if (!checksums_) return;
  uint64_t first = dst / kCacheLineSize;
  uint64_t last = (dst + len - 1) / kCacheLineSize;
  for (uint64_t line = first; line <= last; ++line) {
    if (line < data_begin_ / kCacheLineSize) continue;
    {
      std::lock_guard<std::mutex> lock(seal_mu_);
      pending_seal_.erase(line);
    }
    SealLine(line);
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    if (quarantined_set_.erase(line) != 0) {
      quarantine_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void Pool::QuarantineLine(uint64_t line) {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  if (quarantined_set_.insert(line).second) {
    quarantine_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Pool::IsQuarantinedRangeSlow(const void* addr, uint64_t len) const {
  auto a = reinterpret_cast<uint64_t>(addr);
  auto base_addr = reinterpret_cast<uint64_t>(base_);
  if (a < base_addr || a >= base_addr + capacity_) return false;
  uint64_t off = a - base_addr;
  uint64_t first = off / kCacheLineSize;
  uint64_t last = (off + (len == 0 ? 1 : len) - 1) / kCacheLineSize;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  for (uint64_t line = first; line <= last; ++line) {
    if (quarantined_set_.count(line) != 0) return true;
  }
  return false;
}

void Pool::ClearQuarantine() {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  quarantined_set_.clear();
  quarantine_count_.store(0, std::memory_order_relaxed);
}

void Pool::CorruptDurable(Offset off, const void* bytes, uint64_t len) {
  assert(off + len <= capacity_);
  if (shadow_ != nullptr) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    std::memcpy(shadow_.get() + off, bytes, len);
    return;
  }
  AtomicStoreCopy(base_ + off, bytes, len);
}

void Pool::FlipDurableBit(Offset off, uint32_t bit) {
  assert(off < capacity_);
  char mask = static_cast<char>(1u << (bit & 7));
  if (shadow_ != nullptr) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow_[off] ^= mask;
    return;
  }
  auto* p = reinterpret_cast<uint8_t*>(base_ + off);
  std::atomic_ref<uint8_t> ref(*p);
  ref.store(ref.load(std::memory_order_relaxed) ^ static_cast<uint8_t>(mask),
            std::memory_order_relaxed);
}

void Pool::CollectSealedLines(std::vector<uint64_t>* out) const {
  if (!checksums_) return;
  uint64_t begin_line = data_begin_ / kCacheLineSize;
  uint64_t end_line = header()->bump / kCacheLineSize;
  uint64_t sidecar = header()->sidecar_area;
  if (shadow_ != nullptr) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    for (uint64_t line = begin_line; line < end_line; ++line) {
      uint32_t v;
      std::memcpy(&v, shadow_.get() + sidecar + line * 4, sizeof(v));
      if (v != 0) out->push_back(line);
    }
    return;
  }
  for (uint64_t line = begin_line; line < end_line; ++line) {
    if (std::atomic_ref<const uint32_t>(
            *reinterpret_cast<const uint32_t*>(base_ + sidecar + line * 4))
            .load(std::memory_order_relaxed) != 0) {
      out->push_back(line);
    }
  }
}

// --- Introspection ----------------------------------------------------------

uint64_t Pool::bytes_used() const { return header()->bump; }
uint64_t Pool::pool_id() const { return header()->pool_id; }

void Pool::ResetStats() {
  stats_.alloc_calls.store(0, std::memory_order_relaxed);
  stats_.alloc_from_free_list.store(0, std::memory_order_relaxed);
  stats_.free_calls.store(0, std::memory_order_relaxed);
  stats_.flushed_lines.store(0, std::memory_order_relaxed);
  stats_.deduped_lines.store(0, std::memory_order_relaxed);
  stats_.drains.store(0, std::memory_order_relaxed);
  stats_.psan_redundant_lines.store(0, std::memory_order_relaxed);
}

// --- RedoLog ---------------------------------------------------------------

RedoLog::RedoLog(Pool* pool, Offset area, uint64_t area_size,
                 uint32_t num_segments)
    : pool_(pool),
      area_(area),
      area_size_(area_size),
      num_segments_(num_segments == 0 ? 1 : num_segments),
      segment_size_((area_size / (num_segments == 0 ? 1 : num_segments)) &
                    ~(kCacheLineSize - 1)) {}

uint32_t RedoLog::AcquireSegment(uint32_t hint) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (uint32_t i = 0; i < num_segments_; ++i) {
      uint32_t idx = (hint + i) % num_segments_;
      if ((busy_ & (1ull << idx)) == 0) {
        busy_ |= 1ull << idx;
        return idx;
      }
    }
    cv_.wait(lock);
  }
}

void RedoLog::ReleaseSegment(uint32_t idx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    busy_ &= ~(1ull << idx);
  }
  cv_.notify_one();
}

namespace {
/// Walks a marked segment's entry list without applying anything. Returns
/// Ok and sets *end_pos to one past the last entry byte when every entry
/// lies inside the segment and targets a range inside the pool; returns the
/// reason otherwise. Validation runs BEFORE the checksum so a garbage
/// num_entries cannot send the CRC (or the replay) out of bounds.
Status WalkSegmentEntries(const char* seg, uint64_t segment_size,
                          uint64_t pool_capacity, uint64_t num_entries,
                          uint64_t* end_pos) {
  if (num_entries > (segment_size - kSegmentHeaderBytes) / 16) {
    return Status::Corruption("entry count " + std::to_string(num_entries) +
                              " cannot fit the segment");
  }
  uint64_t pos = kSegmentHeaderBytes;
  for (uint64_t i = 0; i < num_entries; ++i) {
    if (pos + 16 > segment_size) {
      return Status::Corruption("entry " + std::to_string(i) +
                                " header past segment end");
    }
    uint64_t target, len;
    std::memcpy(&target, seg + pos, sizeof(target));
    std::memcpy(&len, seg + pos + 8, sizeof(len));
    pos += 16;
    uint64_t padded = (len + 7) & ~7ull;
    if (padded < len || pos + padded > segment_size || pos + padded < pos) {
      return Status::Corruption("entry " + std::to_string(i) +
                                " data past segment end");
    }
    if (target + len > pool_capacity || target + len < target) {
      return Status::Corruption("entry " + std::to_string(i) +
                                " targets bytes outside the pool");
    }
    pos += padded;
  }
  *end_pos = pos;
  return Status::Ok();
}
}  // namespace

bool RedoLog::Recover(RecoveryReport* report) {
  // Collect the segments whose commit marker is durable, then replay them in
  // commit-timestamp order: conflicting writes are serialized by record
  // locks, so timestamp order equals commit order and the replay reproduces
  // the pre-crash apply sequence.
  //
  // A marked segment is replayed only if it validates: entry bounds first,
  // then the CRC32C over commit_ts + num_entries + entry bytes. Anything
  // else — a torn entry flush, a bit flip, a garbage count — discards
  // exactly that segment with a Corruption diagnostic in the report. The
  // other segments still replay; the open still succeeds.
  RecoveryReport local;
  if (report == nullptr) report = &local;
  struct Pending {
    uint64_t commit_ts;
    uint32_t segment;
    uint64_t end_pos;
  };
  std::vector<Pending> pending;
  std::vector<uint32_t> discard;  // corrupt or garbage: reset to idle
  for (uint32_t i = 0; i < num_segments_; ++i) {
    ++report->segments_scanned;
    char* seg = pool_->base_ + segment_offset(i);
    uint64_t state;
    std::memcpy(&state, seg, sizeof(state));
    if (state == 0) continue;
    if (state != 1) {
      // Arbitrary garbage (e.g. first use): reset to idle.
      ++report->segments_reset_garbage;
      report->warnings.push_back("redo segment " + std::to_string(i) +
                                 ": garbage state word, reset to idle");
      discard.push_back(i);
      continue;
    }
    uint64_t ts, num_entries, stored_crc;
    std::memcpy(&ts, seg + 8, sizeof(ts));
    std::memcpy(&num_entries, seg + 16, sizeof(num_entries));
    std::memcpy(&stored_crc, seg + 24, sizeof(stored_crc));
    uint64_t end_pos = 0;
    Status valid = WalkSegmentEntries(seg, segment_size_, pool_->capacity_,
                                      num_entries, &end_pos);
    if (valid.ok() && SegmentCrc(seg, end_pos) != stored_crc) {
      valid = Status::Corruption("checksum mismatch (torn or corrupt entry "
                                 "bytes under a durable commit marker)");
    }
    if (!valid.ok()) {
      ++report->segments_discarded_corrupt;
      std::string warning = "redo segment " + std::to_string(i) +
                            " discarded, not replayed: " +
                            std::string(valid.message());
      if (report->status.ok()) report->status = Status::Corruption(warning);
      report->warnings.push_back(std::move(warning));
      discard.push_back(i);
      continue;
    }
    pending.push_back(Pending{ts, i, end_pos});
  }
  // Reset discarded segments to idle so the damage is contained: the next
  // open sees a clean log instead of re-diagnosing (or worse, a later torn
  // write upgrading garbage to a "valid" segment).
  for (uint32_t i : discard) {
    char* seg = pool_->base_ + segment_offset(i);
    uint64_t zero = 0;
    std::memcpy(seg, &zero, sizeof(zero));
    POOL_PSAN_MARK(pool_->psan_.get(), seg, sizeof(zero));
    pool_->Persist(seg, sizeof(zero));
  }
  if (pending.empty()) return false;
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              return a.commit_ts < b.commit_ts;
            });
  for (const Pending& p : pending) {
    char* seg = pool_->base_ + segment_offset(p.segment);
    uint64_t num_entries;
    std::memcpy(&num_entries, seg + 16, sizeof(num_entries));
    uint64_t pos = kSegmentHeaderBytes;
    for (uint64_t i = 0; i < num_entries; ++i) {
      uint64_t target, len;
      std::memcpy(&target, seg + pos, sizeof(target));
      std::memcpy(&len, seg + pos + 8, sizeof(len));
      pos += 16;
      std::memcpy(pool_->base_ + target, seg + pos, len);
      POOL_PSAN_MARK(pool_->psan_.get(), pool_->base_ + target, len);
      pool_->Flush(pool_->base_ + target, len);
      pos += (len + 7) & ~7ull;
      ++report->entries_applied;
    }
    ++report->segments_replayed;
  }
  pool_->Drain();
  for (const Pending& p : pending) {
    char* seg = pool_->base_ + segment_offset(p.segment);
    uint64_t zero = 0;
    std::memcpy(seg, &zero, sizeof(zero));
    POOL_PSAN_MARK(pool_->psan_.get(), seg, sizeof(zero));
    pool_->Flush(seg, sizeof(zero));
  }
  pool_->Drain();
  return true;
}

// --- RedoTx -----------------------------------------------------------------

namespace {
/// Per-thread preferred segment slot: steady-state committers keep reusing
/// the same segment, so the acquisition scan is a single bit test.
uint32_t ThreadSegmentHint() {
  static std::atomic<uint32_t> counter{0};
  thread_local uint32_t hint = counter.fetch_add(1, std::memory_order_relaxed);
  return hint;
}
}  // namespace

RedoTx::RedoTx(RedoLog* log)
    : log_(log), pipelined_(log->pool_->pipelined()) {
  segment_ = log_->AcquireSegment(ThreadSegmentHint() % log_->num_segments());
  seg_ = log_->pool_->base_ + log_->segment_offset(segment_);
}

RedoTx::~RedoTx() { log_->ReleaseSegment(segment_); }

void RedoTx::Stage(Offset target, const void* data, uint64_t len) {
  assert(!committed_);
  uint64_t padded = (len + 7) & ~7ull;
  if (!pipelined_) {
    // Serialized baseline (the seed path): buffer the entry in DRAM; Commit
    // copies it into the log.
    Entry e;
    e.target = target;
    e.len = len;
    e.data.resize(len);
    std::memcpy(e.data.data(), data, len);
    staged_bytes_ += 16 + padded;
    entries_.push_back(std::move(e));
    return;
  }
  // Pipelined: append directly into the exclusively-owned segment. The
  // entry bytes are plain stores — nothing here is durable (or flushed)
  // until Commit's phase 1.
  if (overflow_ || pos_ + 16 + padded > log_->segment_size_) {
    overflow_ = true;
    return;
  }
  std::memcpy(seg_ + pos_, &target, sizeof(target));
  std::memcpy(seg_ + pos_ + 8, &len, sizeof(len));
  std::memcpy(seg_ + pos_ + 16, data, len);
  POOL_PSAN_MARK(log_->pool_->psan_.get(), seg_ + pos_, 16 + padded);
  pos_ += 16 + padded;
  ++num_entries_;
}

Status RedoTx::Commit(uint64_t commit_ts, const DrainFn& drain) {
  assert(!committed_);
  committed_ = true;
  Status status = pipelined_ ? CommitPipelined(commit_ts, drain)
                             : CommitSerialized(commit_ts, drain);
#ifdef POSEIDON_PSAN
  // Commit boundary: every line this thread dirtied must have been flushed
  // by now (phase 4 leaves lines FLUSHING, which is fine — DIRTY is not).
  if (status.ok() && log_->pool_->psan_ != nullptr) {
    log_->pool_->psan_->OnCommitBoundary();
  }
#endif
  return status;
}

Status RedoTx::CommitPipelined(uint64_t commit_ts, const DrainFn& drain) {
  Pool* pool = log_->pool_;
  if (overflow_) {
    return Status::ResourceExhausted("redo log area too small for commit");
  }
  auto do_drain = [&] {
    if (drain) {
      drain();
    } else {
      pool->Drain();
    }
  };
  FlushBatch batch(pool);
  auto* state = reinterpret_cast<uint64_t*>(seg_);

  // Phase 1: commit record (timestamp + count) and entries, one coalesced
  // flush, one drain. The flush range starts inside the segment's first
  // cache line, so the line holding the still-idle marker is durable too —
  // a reused segment can never pair a stale marker with fresh entries.
  std::memcpy(seg_ + 8, &commit_ts, sizeof(commit_ts));
  std::memcpy(seg_ + 16, &num_entries_, sizeof(num_entries_));
  uint64_t crc = SegmentCrc(seg_, pos_);
  std::memcpy(seg_ + 24, &crc, sizeof(crc));
  POOL_PSAN_MARK(pool->psan_.get(), seg_ + 8, 24);
  batch.Flush(seg_ + 8, pos_ - 8);
  do_drain();

  // Phase 2: 8-byte atomic commit marker (C4: the only failure-atomic store
  // size). Once durable, the transaction is logically committed. The
  // marker's line was already flushed in phase 1, so coalescing makes this
  // flush latency-free; the drain is what publishes it.
  std::atomic_ref<uint64_t>(*state).store(1, std::memory_order_release);
  // The marker publishes the entry bytes: they must not be dirty when its
  // line's flush retires (phase 1 made them FLUSHING/DURABLE already).
  POOL_PSAN_PUBLISH(pool->psan_.get(), seg_, sizeof(uint64_t),
                    log_->segment_offset(segment_) + 8, pos_ - 8);
  batch.Flush(seg_, sizeof(uint64_t));
  do_drain();

  // Phase 3: apply to home locations with 8-byte atomic word stores (readers
  // run seqlock-style validated copies concurrently) and coalesced flushes —
  // a record staged as body + unlock word shares lines between the two
  // entries and is flushed once.
  uint64_t pos = kSegmentHeaderBytes;
  for (uint64_t i = 0; i < num_entries_; ++i) {
    uint64_t target, len;
    std::memcpy(&target, seg_ + pos, sizeof(target));
    std::memcpy(&len, seg_ + pos + 8, sizeof(len));
    pos += 16;
    AtomicStoreCopy(pool->base_ + target, seg_ + pos, len);
    POOL_PSAN_MARK(pool->psan_.get(), pool->base_ + target, len);
    batch.Flush(pool->base_ + target, len);
    pos += (len + 7) & ~7ull;
  }
  do_drain();

  // Phase 4: clear the marker — flushed but NOT drained. Replay is
  // idempotent, so a crash that loses the clear just re-applies this commit;
  // the next commit in this segment drains the line in its phase 1 before
  // writing a new marker.
  std::atomic_ref<uint64_t>(*state).store(0, std::memory_order_release);
  POOL_PSAN_MARK(pool->psan_.get(), seg_, sizeof(uint64_t));
  batch.Flush(seg_, sizeof(uint64_t));

  // Commit boundary: every covered line this commit flushed is durable
  // again — recompute and store its sidecar checksum. Piggybacks on the
  // FlushBatch dedup set's work (the pending set holds exactly the unique
  // lines), so checksum upkeep costs no extra pool walks.
  pool->SealPending();
  return Status::Ok();
}

Status RedoTx::CommitSerialized(uint64_t commit_ts, const DrainFn& drain) {
  (void)drain;  // group commit is part of the pipeline; baseline drains solo
  Pool* pool = log_->pool_;
  if (kSegmentHeaderBytes + staged_bytes_ > log_->segment_size_) {
    return Status::ResourceExhausted("redo log area too small for commit");
  }
  char* log = seg_;

  // Phase 1: write entries and count, then persist them.
  uint64_t pos = kSegmentHeaderBytes;
  for (const Entry& e : entries_) {
    std::memcpy(log + pos, &e.target, sizeof(e.target));
    std::memcpy(log + pos + 8, &e.len, sizeof(e.len));
    pos += 16;
    std::memcpy(log + pos, e.data.data(), e.len);
    pos += (e.len + 7) & ~7ull;
  }
  std::memcpy(log + 8, &commit_ts, sizeof(commit_ts));
  uint64_t num_entries = entries_.size();
  std::memcpy(log + 16, &num_entries, sizeof(num_entries));
  uint64_t crc = SegmentCrc(log, pos);
  std::memcpy(log + 24, &crc, sizeof(crc));
  POOL_PSAN_MARK(pool->psan_.get(), log + 8, pos - 8);
  pool->Persist(log + 8, pos - 8);

  // Phase 2: 8-byte atomic commit marker.
  uint64_t one = 1;
  std::memcpy(log, &one, sizeof(one));
  POOL_PSAN_PUBLISH(pool->psan_.get(), log, sizeof(one),
                    log_->segment_offset(segment_) + 8, pos - 8);
  pool->Persist(log, sizeof(one));

  // Phase 3: apply to home locations and persist.
  for (const Entry& e : entries_) {
    AtomicStoreCopy(pool->base_ + e.target, e.data.data(), e.len);
    POOL_PSAN_MARK(pool->psan_.get(), pool->base_ + e.target, e.len);
    pool->Flush(pool->base_ + e.target, e.len);
  }
  pool->Drain();

  // Phase 4: clear the marker.
  uint64_t zero = 0;
  std::memcpy(log, &zero, sizeof(zero));
  POOL_PSAN_MARK(pool->psan_.get(), log, sizeof(zero));
  pool->Persist(log, sizeof(zero));

  // Commit boundary: reseal the lines this commit unsealed.
  pool->SealPending();
  return Status::Ok();
}

}  // namespace poseidon::pmem
