// Background integrity scrubber (tentpole leg 2 of the scrubbing
// subsystem).
//
// Walks the pool's checksummed data area at a bounded rate
// (POSEIDON_SCRUB_RATE_MB_S, default 64 MB/s) verifying each 64 B line
// against its CRC32C sidecar slot; mismatches are routed through
// Pool::HandleCorruptLine, which repairs re-derivable structures in place
// and quarantines the rest. The cursor restarts whenever
// Pool::scrub_epoch() changes (SimulateCrash bumps it), so crash-point
// sweeps stay deterministic with the scrubber enabled.
//
// GraphDb owns one Scrubber per pool and starts it when POSEIDON_SCRUB=1;
// tests drive ScrubOnce() for a synchronous full pass.

#ifndef POSEIDON_PMEM_SCRUBBER_H_
#define POSEIDON_PMEM_SCRUBBER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace poseidon::pmem {

class Pool;

class Scrubber {
 public:
  explicit Scrubber(Pool* pool);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Spawns the background thread (no-op when already running or when the
  /// pool maintains no checksums).
  void Start();

  /// Stops and joins the background thread (no-op when not running).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Scan-rate budget in MB/s; 0 pauses the background thread without
  /// stopping it.
  void SetRate(uint64_t mb_s) {
    rate_mb_s_.store(mb_s, std::memory_order_release);
  }
  uint64_t rate_mb_s() const {
    return rate_mb_s_.load(std::memory_order_acquire);
  }

  /// Synchronous full pass over the allocated data area: seals in-flight
  /// lines, then verifies everything. Returns the number of mismatches
  /// detected (all of them routed through the repair pipeline). Safe to
  /// call with the background thread running (verification is idempotent).
  uint64_t ScrubOnce();

  /// Full passes the background thread has completed.
  uint64_t passes() const { return passes_.load(std::memory_order_acquire); }

 private:
  void Loop();

  Pool* pool_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> rate_mb_s_;
  std::atomic<uint64_t> passes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_SCRUBBER_H_
