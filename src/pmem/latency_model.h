// Emulated PMem timing model.
//
// This reproduction runs on DRAM; real Optane DCPMMs are not available. To
// preserve the performance *shape* the paper reports (C1: ~3x higher read
// latency and lower bandwidth than DRAM; C2: asymmetrically slower writes;
// C3: 256-byte internal block granularity), the pool injects calibrated
// busy-waits at the same points where a real DCPMM pays its costs:
//
//   * on reads, per 256-byte block touched (TouchRead),
//   * on cache-line flushes (clwb emulation, per dirty line),
//   * on store fences (sfence emulation).
//
// Defaults approximate published Optane measurements (DRAM random read
// ~85 ns vs PMem ~300 ns; flush ~90 ns/line; fence ~100 ns) and can be
// overridden via environment variables for calibration sweeps:
//   POSEIDON_PMEM_READ_NS, POSEIDON_PMEM_FLUSH_NS, POSEIDON_PMEM_DRAIN_NS

#ifndef POSEIDON_PMEM_LATENCY_MODEL_H_
#define POSEIDON_PMEM_LATENCY_MODEL_H_

#include <cstdint>

#include "util/spin_timer.h"

namespace poseidon::pmem {

/// Size of the internal DCPMM write-combining block (C3).
inline constexpr uint64_t kPmemBlockSize = 256;
inline constexpr uint64_t kCacheLineSize = 64;

struct LatencyModel {
  /// Extra nanoseconds per 256-byte block on a read access (0 = disabled).
  uint64_t read_block_ns = 0;
  /// Extra nanoseconds per flushed cache line (clwb).
  uint64_t flush_line_ns = 0;
  /// Extra nanoseconds per drain barrier (sfence).
  uint64_t drain_ns = 0;

  /// No injected latency: behaves like DRAM.
  static LatencyModel Dram() { return LatencyModel{}; }

  /// Default emulated-Optane model; env vars override individual knobs.
  static LatencyModel EmulatedPmem();

  bool enabled() const {
    return read_block_ns != 0 || flush_line_ns != 0 || drain_ns != 0;
  }

  /// Models a read of [addr, addr+len): one delay per touched 256 B block,
  /// except for blocks still in the DCPMM's internal buffer. The buffer is
  /// modeled as the most recently accessed block per thread — consecutive
  /// accesses within one block (sequential scans over 64 B records, chained
  /// property records in the same block) are served buffer-hot, which is
  /// what gives PMem its near-sequential-bandwidth behaviour (C3).
  void OnRead(const void* addr, uint64_t len) const {
    if (read_block_ns == 0 || len == 0) return;
    thread_local uint64_t last_block = ~0ull;
    auto a = reinterpret_cast<uint64_t>(addr);
    uint64_t first = a / kPmemBlockSize;
    uint64_t last = (a + len - 1) / kPmemBlockSize;
    uint64_t charged = 0;
    for (uint64_t b = first; b <= last; ++b) {
      if (b != last_block) ++charged;
    }
    last_block = last;
    if (charged != 0) SpinWaitNs(read_block_ns * charged);
  }

  /// Models flushing `lines` dirty cache lines.
  void OnFlush(uint64_t lines) const {
    if (flush_line_ns != 0 && lines != 0) SpinWaitNs(flush_line_ns * lines);
  }

  /// Models a store fence.
  void OnDrain() const {
    if (drain_ns != 0) SpinWaitNs(drain_ns);
  }
};

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_LATENCY_MODEL_H_
