// Emulated PMem timing model.
//
// This reproduction runs on DRAM; real Optane DCPMMs are not available. To
// preserve the performance *shape* the paper reports (C1: ~3x higher read
// latency and lower bandwidth than DRAM; C2: asymmetrically slower writes;
// C3: 256-byte internal block granularity), the pool injects calibrated
// busy-waits at the same points where a real DCPMM pays its costs:
//
//   * on reads, per 256-byte block touched (TouchRead),
//   * on cache-line flushes (clwb emulation, per dirty line),
//   * on store fences (sfence emulation).
//
// Defaults approximate published Optane measurements (DRAM random read
// ~85 ns vs PMem ~300 ns; flush ~90 ns/line; fence ~100 ns) and can be
// overridden via environment variables for calibration sweeps:
//   POSEIDON_PMEM_READ_NS, POSEIDON_PMEM_FLUSH_NS, POSEIDON_PMEM_DRAIN_NS

#ifndef POSEIDON_PMEM_LATENCY_MODEL_H_
#define POSEIDON_PMEM_LATENCY_MODEL_H_

#include <chrono>
#include <cstdint>

#include "util/spin_timer.h"

namespace poseidon::pmem {

/// Size of the internal DCPMM write-combining block (C3).
inline constexpr uint64_t kPmemBlockSize = 256;
inline constexpr uint64_t kCacheLineSize = 64;

/// Number of in-flight software prefetches the model tracks per thread,
/// mirroring the small number of fill buffers a core can keep outstanding
/// against the DIMM. Prefetches beyond this evict the oldest entry.
inline constexpr uint32_t kPrefetchSlots = 8;

struct LatencyModel {
  /// Extra nanoseconds per 256-byte block on a read access (0 = disabled).
  uint64_t read_block_ns = 0;
  /// Extra nanoseconds per flushed cache line (clwb).
  uint64_t flush_line_ns = 0;
  /// Extra nanoseconds per drain barrier (sfence).
  uint64_t drain_ns = 0;

  /// No injected latency: behaves like DRAM.
  static LatencyModel Dram() { return LatencyModel{}; }

  /// Default emulated-Optane model; env vars override individual knobs.
  static LatencyModel EmulatedPmem();

  bool enabled() const {
    return read_block_ns != 0 || flush_line_ns != 0 || drain_ns != 0;
  }

  /// Models a read of [addr, addr+len): one delay per touched 256 B block,
  /// except for blocks still in the DCPMM's internal buffer. The buffer is
  /// modeled as the most recently accessed block per thread — consecutive
  /// accesses within one block (sequential scans over 64 B records, chained
  /// property records in the same block) are served buffer-hot, which is
  /// what gives PMem its near-sequential-bandwidth behaviour (C3).
  ///
  /// Blocks announced via OnPrefetch earlier only pay the *remaining* time
  /// until the in-flight fill completes (possibly zero), so software
  /// prefetching overlaps PMem latency with real work — exactly the effect a
  /// hardware `prefetchnta` has against a DCPMM.
  void OnRead(const void* addr, uint64_t len) const {
    if (read_block_ns == 0 || len == 0) return;
    PrefetchRing& ring = TlsRing();
    auto a = reinterpret_cast<uint64_t>(addr);
    uint64_t first = a / kPmemBlockSize;
    uint64_t last = (a + len - 1) / kPmemBlockSize;
    uint64_t wait_ns = 0;
    uint64_t now = 0;  // fetched lazily; steady_clock reads are not free
    for (uint64_t b = first; b <= last; ++b) {
      if (b == ring.last_block) continue;
      if (uint64_t* ready_at = ring.Find(b)) {
        if (now == 0) now = NowNs();
        if (*ready_at > now) wait_ns += *ready_at - now;
        continue;  // fill already in flight; pay only the residual
      }
      wait_ns += read_block_ns;
    }
    ring.last_block = last;
    if (wait_ns != 0) SpinWaitNs(wait_ns);
  }

  /// Announces an upcoming read of [addr, addr+len): starts a modeled fill
  /// that completes `read_block_ns` from now for each touched block. Pair
  /// with __builtin_prefetch so the DRAM emulation machine also warms its
  /// real caches. A later OnRead of the same block spins only for whatever
  /// portion of the fill has not yet elapsed.
  void OnPrefetch(const void* addr, uint64_t len) const {
    if (read_block_ns == 0 || len == 0) return;
    PrefetchRing& ring = TlsRing();
    auto a = reinterpret_cast<uint64_t>(addr);
    uint64_t first = a / kPmemBlockSize;
    uint64_t last = (a + len - 1) / kPmemBlockSize;
    uint64_t now = NowNs();
    for (uint64_t b = first; b <= last; ++b) {
      if (b == ring.last_block || ring.Find(b) != nullptr) continue;
      ring.Insert(b, now + read_block_ns);
    }
  }

  /// Models flushing `lines` dirty cache lines.
  void OnFlush(uint64_t lines) const {
    if (flush_line_ns != 0 && lines != 0) SpinWaitNs(flush_line_ns * lines);
  }

  /// Models a store fence.
  void OnDrain() const {
    if (drain_ns != 0) SpinWaitNs(drain_ns);
  }

 private:
  /// Per-thread view of the DIMM's buffering: the most recently accessed
  /// block (served hot) plus up to kPrefetchSlots fills in flight.
  struct PrefetchRing {
    uint64_t last_block = ~0ull;
    uint64_t blocks[kPrefetchSlots];
    uint64_t ready_at_ns[kPrefetchSlots] = {};
    uint32_t next = 0;

    PrefetchRing() {
      for (uint64_t& b : blocks) b = ~0ull;
    }

    uint64_t* Find(uint64_t block) {
      for (uint32_t i = 0; i < kPrefetchSlots; ++i) {
        if (blocks[i] == block) return &ready_at_ns[i];
      }
      return nullptr;
    }

    void Insert(uint64_t block, uint64_t ready_at) {
      blocks[next] = block;
      ready_at_ns[next] = ready_at;
      next = (next + 1) % kPrefetchSlots;
    }
  };

  static PrefetchRing& TlsRing() {
    thread_local PrefetchRing ring;
    return ring;
  }

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_LATENCY_MODEL_H_
