// PMDK-like persistent memory pool.
//
// A Pool is a fixed-capacity region backed either by a file mmap ("pmem"
// mode, the emulated-Optane configuration) or anonymous memory ("dram" mode,
// the paper's pure-volatile baseline). It provides:
//
//   * offset-based addressing (8-byte offsets instead of 16-byte persistent
//     pointers on hot paths — design goal DG6 / decision DD2),
//   * a block allocator with persistent size-class free lists so freed
//     records are reused instead of deallocated (DG5 / C5),
//   * persistence primitives Flush/Drain/Persist emulating clwb + sfence
//     with the LatencyModel applied (DG4 / C4),
//   * a redo log for failure-atomic multi-word updates (the role PMDK
//     transactions play in the paper's commit path, §5.1),
//   * optional crash simulation: with `crash_shadow` enabled, only bytes
//     that were explicitly flushed survive SimulateCrash(), which lets tests
//     verify failure atomicity without real power loss.

#ifndef POSEIDON_PMEM_POOL_H_
#define POSEIDON_PMEM_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pmem/latency_model.h"
#include "util/status.h"

namespace poseidon::pmem {

/// Byte offset within a pool. Offset 0 addresses the pool header and is
/// never handed out by the allocator, so 0 doubles as the null offset.
using Offset = uint64_t;
inline constexpr Offset kNullOffset = 0;

enum class PoolMode {
  kPmem,  ///< file-backed, persisted, latency model applied
  kDram,  ///< anonymous memory, volatile, no latency injection
};

struct PoolOptions {
  PoolMode mode = PoolMode::kPmem;
  /// Total region size. Fixed at creation.
  uint64_t capacity = 256ull << 20;
  /// If set, overrides the mode-default latency model.
  bool has_latency_override = false;
  LatencyModel latency_override;
  /// Maintain a shadow copy so SimulateCrash() can drop unflushed stores.
  bool crash_shadow = false;
};

/// Number of allocator size classes: 64, 128, 256, 512, 1 KiB ... 64 KiB.
inline constexpr int kNumSizeClasses = 11;

/// Statistics counters (volatile; informational).
struct PoolStats {
  uint64_t alloc_calls = 0;
  uint64_t alloc_from_free_list = 0;
  uint64_t free_calls = 0;
  uint64_t flushed_lines = 0;
  uint64_t drains = 0;
};

class RedoLog;

class Pool {
 public:
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Creates a new pool file at `path` (pmem mode) or an anonymous region
  /// (dram mode; `path` ignored). Fails if a pmem file already exists.
  static Result<std::unique_ptr<Pool>> Create(const std::string& path,
                                              const PoolOptions& options);

  /// Opens an existing pmem pool file and runs redo-log recovery.
  static Result<std::unique_ptr<Pool>> Open(const std::string& path,
                                            const PoolOptions& options);

  /// Convenience: volatile pool for the DRAM baseline.
  static Result<std::unique_ptr<Pool>> CreateVolatile(uint64_t capacity);

  /// Marks clean shutdown (pmem mode) and unmaps.
  ~Pool();

  // --- Addressing -----------------------------------------------------

  template <typename T = void>
  T* ToPtr(Offset off) const {
    assert(off < capacity_);
    return reinterpret_cast<T*>(base_ + off);
  }

  Offset ToOffset(const void* p) const {
    auto d = static_cast<const char*>(p) - base_;
    assert(d >= 0 && static_cast<uint64_t>(d) < capacity_);
    return static_cast<Offset>(d);
  }

  bool Contains(const void* p) const {
    return p >= base_ && p < base_ + capacity_;
  }

  // --- Allocation (DG5) -------------------------------------------------

  /// Allocates `size` bytes aligned to `align` (power of two, >= 8).
  /// Reuses freed blocks of the matching size class when available.
  Result<Offset> Allocate(uint64_t size, uint64_t align = kCacheLineSize);

  /// Returns a block to its size-class free list (no real deallocation —
  /// free space is recycled, matching DG5).
  void Free(Offset off, uint64_t size);

  /// Allocates and zero-fills.
  Result<Offset> AllocateZeroed(uint64_t size,
                                uint64_t align = kCacheLineSize);

  // --- Persistence primitives (DG4) ------------------------------------

  /// Emulated clwb over [addr, addr+len): pays the flush latency per dirty
  /// cache line and, under crash_shadow, marks those bytes as durable.
  void Flush(const void* addr, uint64_t len);

  /// Emulated sfence.
  void Drain();

  /// Flush + Drain.
  void Persist(const void* addr, uint64_t len) {
    Flush(addr, len);
    Drain();
  }

  /// Injects the PMem read latency for a read of [addr, addr+len).
  /// Storage-layer record accessors call this on their PMem-resident data.
  void TouchRead(const void* addr, uint64_t len) const {
    latency_.OnRead(addr, len);
  }

  /// Starts a modeled asynchronous fill of [addr, addr+len) and issues a
  /// hardware prefetch. A later TouchRead of the same 256 B block pays only
  /// the portion of the PMem latency that has not yet elapsed, so scan
  /// kernels can hide read latency behind useful work (software prefetch).
  void TouchPrefetch(const void* addr, uint64_t len) const {
    __builtin_prefetch(addr, /*rw=*/0, /*locality=*/0);
    latency_.OnPrefetch(addr, len);
  }

  // --- Root object -------------------------------------------------------

  /// The root offset is the application's entry point into the pool
  /// (the GraphStore directory lives there). Persisted atomically.
  Offset root() const;
  void set_root(Offset off);

  // --- Failure-atomic multi-word updates --------------------------------

  /// The pool-wide redo log (see RedoLog). Commits are serialized.
  RedoLog* redo_log() { return redo_log_.get(); }

  // --- Crash simulation ---------------------------------------------------

  /// Reverts every byte that was stored but not flushed since the last
  /// Flush() covering it, emulating power loss. Requires crash_shadow.
  /// After this call the pool content equals what a post-crash Open() of the
  /// file would observe; callers then re-run recovery paths against it.
  void SimulateCrash();

  /// True if the previous session did not close this pool cleanly.
  bool recovered_from_crash() const { return recovered_from_crash_; }

  // --- Introspection ------------------------------------------------------

  PoolMode mode() const { return mode_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t bytes_used() const;
  uint64_t pool_id() const;
  const LatencyModel& latency() const { return latency_; }
  const PoolStats& stats() const { return stats_; }
  /// Resets volatile statistics counters.
  void ResetStats() { stats_ = PoolStats{}; }

 private:
  friend class RedoLog;
  friend class RedoTx;

  Pool() = default;

  struct Header;
  Header* header() const { return reinterpret_cast<Header*>(base_); }

  Status MapRegion(const std::string& path, bool create);
  void InitHeader(const PoolOptions& options);
  Status ValidateHeader() const;
  static int SizeClassFor(uint64_t size);
  static uint64_t SizeClassBytes(int size_class);

  char* base_ = nullptr;
  uint64_t capacity_ = 0;
  int fd_ = -1;
  PoolMode mode_ = PoolMode::kPmem;
  LatencyModel latency_;
  bool recovered_from_crash_ = false;

  // Crash simulation shadow: bytes flushed so far (i.e. durable content).
  std::unique_ptr<char[]> shadow_;

  std::unique_ptr<RedoLog> redo_log_;
  mutable std::mutex alloc_mu_;
  mutable PoolStats stats_;
};

/// Failure-atomic multi-word update via redo logging (the mechanism behind
/// the paper's PMDK-based atomic commit, §5.1). Usage:
///
///   RedoTx tx(pool->redo_log());
///   tx.Stage(offset_a, &a, sizeof(a));
///   tx.Stage(offset_b, &b, sizeof(b));
///   tx.Commit();   // all-or-nothing after a crash
///
/// Commit persists the staged entries, atomically sets a commit marker,
/// applies the entries to their home locations, persists them, and clears
/// the marker. Open() replays a marked log (crash after marker) and discards
/// an unmarked one (crash before marker).
class RedoLog {
 public:
  explicit RedoLog(Pool* pool, Offset area, uint64_t area_size);

  /// Applies a committed-but-unapplied log if present. Called by Pool::Open.
  /// Returns true if a replay happened.
  bool Recover();

  Offset area() const { return area_; }
  uint64_t area_size() const { return area_size_; }

 private:
  friend class RedoTx;

  Pool* pool_;
  Offset area_;
  uint64_t area_size_;
  std::mutex mu_;
};

class RedoTx {
 public:
  /// Acquires the pool-wide redo log; commits are serialized.
  explicit RedoTx(RedoLog* log);

  /// Releases the log. A destructed-but-uncommitted tx has no effect.
  ~RedoTx();

  RedoTx(const RedoTx&) = delete;
  RedoTx& operator=(const RedoTx&) = delete;

  /// Stages `len` bytes to be written to pool offset `target` at commit.
  void Stage(Offset target, const void* data, uint64_t len);

  /// Convenience for single values.
  template <typename T>
  void StageValue(Offset target, const T& value) {
    Stage(target, &value, sizeof(T));
  }

  /// Atomically applies all staged writes. Fails (without applying) if the
  /// staged data exceeds the log area.
  Status Commit();

 private:
  struct Entry {
    Offset target;
    uint64_t len;
    std::vector<char> data;
  };

  RedoLog* log_;
  std::vector<Entry> entries_;
  uint64_t staged_bytes_ = 0;
  bool committed_ = false;
};

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_POOL_H_
