// PMDK-like persistent memory pool.
//
// A Pool is a fixed-capacity region backed either by a file mmap ("pmem"
// mode, the emulated-Optane configuration) or anonymous memory ("dram" mode,
// the paper's pure-volatile baseline). It provides:
//
//   * offset-based addressing (8-byte offsets instead of 16-byte persistent
//     pointers on hot paths — design goal DG6 / decision DD2),
//   * a block allocator with persistent size-class free lists so freed
//     records are reused instead of deallocated (DG5 / C5),
//   * persistence primitives Flush/Drain/Persist emulating clwb + sfence
//     with the LatencyModel applied (DG4 / C4),
//   * a segmented redo log for failure-atomic multi-word updates (the role
//     PMDK transactions play in the paper's commit path, §5.1); concurrent
//     committers append to independent segments and recovery replays all
//     marked segments in commit-timestamp order,
//   * optional crash simulation: with `crash_shadow` enabled, only bytes
//     that were explicitly flushed survive SimulateCrash(), which lets tests
//     verify failure atomicity without real power loss.

#ifndef POSEIDON_PMEM_POOL_H_
#define POSEIDON_PMEM_POOL_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "pmem/latency_model.h"
#include "util/status.h"

namespace poseidon::pmem {

/// Byte offset within a pool. Offset 0 addresses the pool header and is
/// never handed out by the allocator, so 0 doubles as the null offset.
using Offset = uint64_t;
inline constexpr Offset kNullOffset = 0;

enum class PoolMode {
  kPmem,  ///< file-backed, persisted, latency model applied
  kDram,  ///< anonymous memory, volatile, no latency injection
};

struct PoolOptions {
  PoolMode mode = PoolMode::kPmem;
  /// Total region size. Fixed at creation.
  uint64_t capacity = 256ull << 20;
  /// If set, overrides the mode-default latency model.
  bool has_latency_override = false;
  LatencyModel latency_override;
  /// Maintain a shadow copy so SimulateCrash() can drop unflushed stores.
  bool crash_shadow = false;
  /// Commit-pipeline master switch: -1 = env POSEIDON_COMMIT_PIPELINE
  /// (default on). Off reproduces the serialized baseline commit path:
  /// strict Persist (flush+drain) on every metadata store, DRAM-staged redo
  /// entries, a 4th drain clearing the commit marker, and no cache-line
  /// flush coalescing.
  int commit_pipeline = -1;
  /// Redo-log segment count: 0 = env POSEIDON_REDO_SEGMENTS (default 8,
  /// clamped to [1, 64]). Forced to 1 when the commit pipeline is off.
  uint32_t redo_segments = 0;
};

/// Number of allocator size classes: 64, 128, 256, 512, 1 KiB ... 64 KiB.
inline constexpr int kNumSizeClasses = 11;

/// Redo-log segment header: state + commit_ts + num_entries + crc.
/// Entries start at this offset within a segment (see RedoLog).
inline constexpr uint64_t kRedoSegmentHeaderBytes = 32;

/// What Pool::Open's redo-log recovery did, segment by segment. Corrupt
/// segments (torn writes, bit flips — anything failing the CRC32C or bounds
/// validation) are discarded, never replayed; `status` carries the first
/// Status::Corruption diagnostic and `warnings` one line per incident, so
/// callers can distinguish a clean recovery from a degraded one.
struct RecoveryReport {
  uint64_t segments_scanned = 0;
  uint64_t segments_replayed = 0;
  /// Committed-marked segments whose checksum or entry bounds were invalid;
  /// reset to idle without applying anything.
  uint64_t segments_discarded_corrupt = 0;
  /// Segments whose state word held garbage (neither idle nor committed).
  uint64_t segments_reset_garbage = 0;
  uint64_t entries_applied = 0;
  std::vector<std::string> warnings;
  /// Ok when every marked segment replayed cleanly; Corruption otherwise
  /// (the pool still opens — recovery degrades gracefully by discarding
  /// exactly the damaged segments).
  Status status;
};

/// Statistics counters (volatile; informational). Fields are atomics so
/// concurrent committers can bump them race-free; read them like plain
/// integers.
struct PoolStats {
  std::atomic<uint64_t> alloc_calls{0};
  std::atomic<uint64_t> alloc_from_free_list{0};
  std::atomic<uint64_t> free_calls{0};
  /// Cache lines whose flush latency was actually paid.
  std::atomic<uint64_t> flushed_lines{0};
  /// Cache lines a FlushBatch skipped because the same line was already
  /// flushed earlier in the same commit (flush coalescing).
  std::atomic<uint64_t> deduped_lines{0};
  std::atomic<uint64_t> drains{0};
  /// Full-latency flushes of lines that were already durable with no store
  /// since (PersistSanitizer class-(b) diagnostic; only advances when PSAN
  /// is compiled in and enabled). These are the flushes the dedup machinery
  /// did NOT absorb but a flush-pruning optimisation could.
  std::atomic<uint64_t> psan_redundant_lines{0};
  /// Allocations denied for lack of space — bump exhaustion or an injected
  /// `pmem.alloc` fault (overload governance).
  std::atomic<uint64_t> alloc_failures{0};
};

/// Copies `len` bytes with 8-byte atomic word accesses (release stores /
/// acquire loads) when everything is 8-aligned, falling back to memcpy
/// otherwise. Commit appliers and seqlock-style readers both use it so a
/// record image can be copied concurrently with an in-place apply without a
/// data race; MVTO validation handles the logical interleavings.
void AtomicStoreCopy(void* dst, const void* src, uint64_t len);
void AtomicLoadCopy(void* dst, const void* src, uint64_t len);

class RedoLog;
class FlushBatch;
class FaultInjector;
class PersistSanitizer;

class Pool {
 public:
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Creates a new pool file at `path` (pmem mode) or an anonymous region
  /// (dram mode; `path` ignored). Fails if a pmem file already exists.
  static Result<std::unique_ptr<Pool>> Create(const std::string& path,
                                              const PoolOptions& options);

  /// Opens an existing pmem pool file and runs redo-log recovery.
  static Result<std::unique_ptr<Pool>> Open(const std::string& path,
                                            const PoolOptions& options);

  /// Convenience: volatile pool for the DRAM baseline.
  static Result<std::unique_ptr<Pool>> CreateVolatile(uint64_t capacity);

  /// Marks clean shutdown (pmem mode) and unmaps.
  ~Pool();

  // --- Addressing -----------------------------------------------------

  template <typename T = void>
  T* ToPtr(Offset off) const {
    assert(off < capacity_);
    return reinterpret_cast<T*>(base_ + off);
  }

  Offset ToOffset(const void* p) const {
    auto d = static_cast<const char*>(p) - base_;
    assert(d >= 0 && static_cast<uint64_t>(d) < capacity_);
    return static_cast<Offset>(d);
  }

  bool Contains(const void* p) const {
    return p >= base_ && p < base_ + capacity_;
  }

  // --- Allocation (DG5) -------------------------------------------------

  /// Allocates `size` bytes aligned to `align` (power of two, >= 8).
  /// Reuses freed blocks of the matching size class when available.
  Result<Offset> Allocate(uint64_t size, uint64_t align = kCacheLineSize);

  /// Returns a block to its size-class free list (no real deallocation —
  /// free space is recycled, matching DG5).
  void Free(Offset off, uint64_t size);

  /// Allocates and zero-fills.
  Result<Offset> AllocateZeroed(uint64_t size,
                                uint64_t align = kCacheLineSize);

  // --- Persistence primitives (DG4) ------------------------------------

  /// Emulated clwb over [addr, addr+len): pays the flush latency per dirty
  /// cache line and, under crash_shadow, marks those bytes as durable.
  void Flush(const void* addr, uint64_t len);

  /// Emulated sfence.
  void Drain();

  /// Flush + Drain.
  void Persist(const void* addr, uint64_t len) {
    Flush(addr, len);
    Drain();
  }

  /// Flush-or-Persist depending on the commit-pipeline mode. Pipelined:
  /// metadata stores (allocator heads, occupancy bits, the timestamp
  /// high-water mark) are only *flushed* here; the next commit's redo drain
  /// makes them durable before anything that depends on them. Serialized
  /// baseline: full Persist, as the seed engine did.
  void PersistDeferred(const void* addr, uint64_t len) {
    if (pipelined_) {
      Flush(addr, len);
    } else {
      Persist(addr, len);
    }
  }

  /// Injects the PMem read latency for a read of [addr, addr+len).
  /// Storage-layer record accessors call this on their PMem-resident data.
  void TouchRead(const void* addr, uint64_t len) const {
    latency_.OnRead(addr, len);
  }

  /// Starts a modeled asynchronous fill of [addr, addr+len) and issues a
  /// hardware prefetch. A later TouchRead of the same 256 B block pays only
  /// the portion of the PMem latency that has not yet elapsed, so scan
  /// kernels can hide read latency behind useful work (software prefetch).
  void TouchPrefetch(const void* addr, uint64_t len) const {
    __builtin_prefetch(addr, /*rw=*/0, /*locality=*/0);
    latency_.OnPrefetch(addr, len);
  }

  // --- Root object -------------------------------------------------------

  /// The root offset is the application's entry point into the pool
  /// (the GraphStore directory lives there). Persisted atomically.
  Offset root() const;
  void set_root(Offset off);

  // --- Failure-atomic multi-word updates --------------------------------

  /// The pool's segmented redo log (see RedoLog). Concurrent commits use
  /// independent segments; the serialized baseline (commit pipeline off)
  /// runs with a single segment.
  RedoLog* redo_log() { return redo_log_.get(); }

  /// True when the parallel commit pipeline is active (deferred metadata
  /// drains, flush coalescing, 3-drain redo commits).
  bool pipelined() const { return pipelined_; }

  // --- Crash simulation ---------------------------------------------------

  /// Reverts every byte that was stored but not flushed since the last
  /// Flush() covering it, emulating power loss. Requires crash_shadow.
  /// After this call the pool content equals what a post-crash Open() of the
  /// file would observe; callers then re-run recovery paths against it.
  /// Not thread-safe: quiesce writers first (see FreezeShadow).
  void SimulateCrash();

  /// Freezes the durable image at this instant: subsequent flushes no longer
  /// reach the crash shadow, so concurrent writers may keep running and a
  /// later SimulateCrash() restores the state as of the freeze — a crash at
  /// an arbitrary point under full concurrency. SimulateCrash() unfreezes.
  void FreezeShadow();

  /// True if the previous session did not close this pool cleanly.
  bool recovered_from_crash() const { return recovered_from_crash_; }

  /// Crash-point scheduler (see pmem/fault_injector.h). Non-null only when
  /// the pool was built with crash_shadow; every Flush/Drain reports to it.
  FaultInjector* fault_injector() const { return fault_injector_.get(); }

  /// What redo-log recovery replayed/discarded at Open() (empty report for
  /// Create()). See RecoveryReport.
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  /// Persist-order sanitizer (see pmem/psan.h). Non-null only when the
  /// build has POSEIDON_PSAN and the POSEIDON_PSAN env knob is not 0; every
  /// instrumented store and every Flush/Drain reports to it.
  PersistSanitizer* psan() const { return psan_.get(); }

  // --- Integrity: per-line CRC32C sidecar, scrubbing, quarantine ----------
  //
  // Pool layout v4 reserves a sidecar region between the redo log and the
  // data area: one 4-byte CRC32C slot per 64 B cache line. A slot value of
  // 0 means "unsealed": the line has been flushed since the last commit
  // boundary and its checksum is not currently valid (computed CRCs of 0
  // are biased to 1 so 0 stays reserved). FlushAccounted unseals covered
  // lines *before* the data flush, so a crash between the two degrades to
  // "unverified", never to a false mismatch; SealPending() — called at the
  // end of every redo commit, at recovery, at close, and by the scrubber —
  // seals them again with the CRC of the *durable* image (the crash shadow
  // when present, live memory otherwise: the shadow is the media).

  /// Verdict for a single 64 B line.
  enum class LineVerify {
    kNotCovered,  ///< below the data area (header/redo/sidecar), or off
    kUnsealed,    ///< slot is 0 — flushed since last seal, not judged
    kClean,       ///< stored CRC matches the durable content
    kMismatch,    ///< stored CRC does not match — media corruption
  };

  /// What a corruption handler (or HandleCorruptLine itself) decided about
  /// a mismatched line.
  enum class RepairOutcome {
    kUnrepairable,  ///< content lost — line quarantined, reads degrade
    kRepaired,      ///< content rewritten in place from a redundant source
    kAdopted,       ///< current content acceptable as-is (free slot,
                    ///< structure rebuilt elsewhere) — line resealed
  };

  using CorruptionHandler = std::function<RepairOutcome(Offset line_off)>;

  /// True when line checksums are maintained. On for crash-shadow pools and
  /// whenever POSEIDON_SCRUB=1; POSEIDON_CHECKSUMS=0/1 overrides both.
  bool checksums_enabled() const { return checksums_; }

  /// First byte of the checksummed data area (everything from here up to
  /// capacity is covered by the sidecar).
  Offset data_begin() const { return data_begin_; }

  /// Verifies one line (`line` = pool offset / kCacheLineSize) against its
  /// sidecar slot.
  LineVerify VerifyLine(uint64_t line) const;

  /// Verifies every line overlapping [off, off+len); mismatches are routed
  /// through HandleCorruptLine. Returns the number of mismatches found.
  /// Cold-structure first-touch hooks and the scrubber both land here.
  uint64_t VerifyAndRepairRange(Offset off, uint64_t len);

  /// Seals every line unsealed since the last call: recomputes the CRC of
  /// the durable image and stores it in the sidecar. Runs automatically at
  /// redo-commit boundaries, recovery end, and pool close.
  void SealPending();

  /// Installs the repair dispatcher (GraphDb wires this to the storage and
  /// index layers). Invoked with the pool offset of a corrupt line; runs
  /// without pool-internal locks held.
  void SetCorruptionHandler(CorruptionHandler handler);

  /// Detect→repair→quarantine pipeline for one mismatched line:
  /// re-verifies (a pending-seal line is just resealed), invokes the
  /// corruption handler, seals repaired/adopted lines, quarantines
  /// unrepairable ones.
  RepairOutcome HandleCorruptLine(uint64_t line);

  /// Sanctioned repair write: atomically stores [src, src+len) at `dst`,
  /// marks it for the persist sanitizer, persists it, and reseals + clears
  /// quarantine on the covered lines. Storage-layer repair code uses this
  /// instead of raw stores (recognised by tools/lint_pptr_stores.py).
  void RepairStore(Offset dst, const void* src, uint64_t len);

  /// True when any line overlapping [addr, addr+len) is quarantined.
  /// Fast path: one relaxed load when nothing is quarantined (the common
  /// case on every record read).
  bool IsQuarantinedRange(const void* addr, uint64_t len) const {
    if (quarantine_count_.load(std::memory_order_relaxed) == 0) return false;
    return IsQuarantinedRangeSlow(addr, len);
  }

  void QuarantineLine(uint64_t line);
  uint64_t quarantined_lines() const {
    return quarantine_count_.load(std::memory_order_relaxed);
  }
  void ClearQuarantine();

  /// Monotonic epoch bumped by SimulateCrash(); the scrubber re-reads it
  /// between batches and resets its cursor on change, keeping crash-point
  /// sweeps deterministic under POSEIDON_SCRUB=1.
  uint64_t scrub_epoch() const {
    return scrub_epoch_.load(std::memory_order_acquire);
  }

  struct ScrubStats {
    std::atomic<uint64_t> lines_verified{0};  ///< sealed lines checked clean
    std::atomic<uint64_t> mismatches{0};      ///< CRC mismatches detected
    std::atomic<uint64_t> repaired{0};        ///< lines rebuilt in place
    std::atomic<uint64_t> adopted{0};         ///< resealed as-is (free slot)
    std::atomic<uint64_t> quarantined{0};     ///< unrepairable, reads degrade
    std::atomic<uint64_t> resealed{0};        ///< pending lines sealed late
  };
  const ScrubStats& scrub_stats() const { return scrub_stats_; }

  // --- Media-fault injection (FaultInjector / tests) ----------------------

  /// Overwrites `len` bytes at `off` in the *durable image only* (the crash
  /// shadow when present, live memory otherwise) without flush accounting —
  /// emulating media decay. SimulateCrash() surfaces the damage.
  void CorruptDurable(Offset off, const void* bytes, uint64_t len);

  /// Flips one bit of the durable image (byte `off`, bit index 0..7).
  void FlipDurableBit(Offset off, uint32_t bit);

  /// Appends the line numbers of every currently sealed covered line — the
  /// candidate set for randomized media-fault injection.
  void CollectSealedLines(std::vector<uint64_t>* out) const;

  // --- Introspection ------------------------------------------------------

  PoolMode mode() const { return mode_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t bytes_used() const;

  // --- Space watermarks (overload governance) -----------------------------

  /// Soft-watermark threshold in percent of capacity (bump allocator high-
  /// water mark). 0 disables the watermark (seed behavior). Configured from
  /// POSEIDON_POOL_SOFT_WATERMARK_PCT at Create/Open; tests may override.
  uint32_t soft_watermark_pct() const {
    return soft_watermark_pct_.load(std::memory_order_relaxed);
  }
  void set_soft_watermark_pct(uint32_t pct) {
    soft_watermark_pct_.store(pct > 100 ? 100 : pct,
                              std::memory_order_relaxed);
  }
  /// True when the bump high-water mark crossed the soft watermark. The
  /// admission gate denies new writers above it and kicks emergency GC +
  /// adjacency-cache shrink; readers are unaffected.
  bool AboveSoftWatermark() const {
    uint32_t pct = soft_watermark_pct();
    if (pct == 0) return false;
    return bytes_used() * 100 >= capacity() * pct;
  }
  uint64_t pool_id() const;
  const LatencyModel& latency() const { return latency_; }
  const PoolStats& stats() const { return stats_; }
  /// Resets volatile statistics counters.
  void ResetStats();

 private:
  friend class RedoLog;
  friend class RedoTx;
  friend class FlushBatch;

  Pool() = default;

  struct Header;
  Header* header() const { return reinterpret_cast<Header*>(base_); }

  Status MapRegion(const std::string& path, bool create);
  void InitHeader(const PoolOptions& options);
  Status ValidateHeader() const;
  void Configure(const PoolOptions& options);
  /// Derives data_begin_ from the (validated) header and decides whether
  /// line checksums are maintained. Runs after the crash shadow exists.
  void ConfigureChecksums(const PoolOptions& options);
  static int SizeClassFor(uint64_t size);
  static uint64_t SizeClassBytes(int size_class);

  /// Pays flush latency for `lines` cache lines and copies the (line-
  /// aligned, pool-clamped) range into the crash shadow. Shared by Flush and
  /// FlushBatch, which passes the deduplicated line count.
  void FlushAccounted(const void* addr, uint64_t len, uint64_t unique_lines);
  void CopyToShadow(uint64_t begin_addr, uint64_t end_addr);

  // Integrity internals. Lines are pool offsets / kCacheLineSize; only
  // lines at or above data_begin_ have sidecar slots.
  uint32_t* SidecarSlot(uint64_t line) const;
  uint32_t DurableSlotValue(uint64_t line) const;
  void ReadDurableLine(uint64_t line, void* buf64) const;
  uint32_t ComputeDurableLineCrc(uint64_t line) const;
  /// Unseals covered lines in [begin_addr, end_addr) before their data
  /// flush and records them for the next SealPending().
  void UnsealForFlush(uint64_t begin_addr, uint64_t end_addr);
  void SealLine(uint64_t line);
  /// Zeroes the sidecar and recomputes every allocated line's CRC from the
  /// durable image. Used on reopen when a prior session ran with checksums
  /// off (header checksums_live == 0) and left the on-media seals stale.
  void ReseedSidecar();
  bool IsQuarantinedRangeSlow(const void* addr, uint64_t len) const;

  char* base_ = nullptr;
  uint64_t capacity_ = 0;
  int fd_ = -1;
  PoolMode mode_ = PoolMode::kPmem;
  LatencyModel latency_;
  bool recovered_from_crash_ = false;
  bool pipelined_ = true;
  /// Soft-watermark percent of capacity; 0 = disabled (seed behavior).
  std::atomic<uint32_t> soft_watermark_pct_{0};

  // Crash simulation shadow: bytes flushed so far (i.e. durable content).
  // shadow_mu_ serializes shadow writes from concurrent flushers; the
  // source bytes are read with 8-byte atomic loads so a flush racing a
  // commit apply on a neighbouring record in the same line is benign.
  std::unique_ptr<char[]> shadow_;
  mutable std::mutex shadow_mu_;
  std::atomic<bool> shadow_frozen_{false};

  std::unique_ptr<RedoLog> redo_log_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<PersistSanitizer> psan_;
  RecoveryReport recovery_report_;
  mutable std::mutex alloc_mu_;
  mutable PoolStats stats_;

  // Integrity layer (header v4 sidecar). data_begin_ is also the initial
  // bump pointer: header | redo | sidecar | data.
  bool checksums_ = false;
  Offset data_begin_ = 0;
  std::mutex seal_mu_;
  std::unordered_set<uint64_t> pending_seal_;
  mutable std::mutex quarantine_mu_;
  std::unordered_set<uint64_t> quarantined_set_;
  std::atomic<uint64_t> quarantine_count_{0};
  std::atomic<uint64_t> scrub_epoch_{0};
  // Serializes HandleCorruptLine pipelines. Recursive because a repair
  // handler may rebuild a structure whose rebuild scan first-touch-verifies
  // other chunks and finds further corruption on the same thread.
  std::recursive_mutex repair_mu_;
  CorruptionHandler corruption_handler_;
  mutable ScrubStats scrub_stats_;
};

/// Per-commit cache-line flush coalescing (Götze et al.: flush dedup at
/// cache-line granularity dominates PMem write-path cost). A FlushBatch
/// remembers which lines it already flushed; re-flushing a line within the
/// same batch still updates the crash shadow (the bytes are durable) but
/// pays no additional flush_line_ns and is counted in
/// PoolStats::deduped_lines.
class FlushBatch {
 public:
  explicit FlushBatch(Pool* pool) : pool_(pool) { lines_.reserve(16); }

  void Flush(const void* addr, uint64_t len);

  /// Forgets the seen-line set (start of a new coalescing scope).
  void Clear() { lines_.clear(); }

  Pool* pool() const { return pool_; }

 private:
  bool Seen(uint64_t line);

  Pool* pool_;
  std::vector<uint64_t> lines_;  // line numbers already flushed this batch
};

/// Failure-atomic multi-word update via redo logging (the mechanism behind
/// the paper's PMDK-based atomic commit, §5.1). Usage:
///
///   RedoTx tx(pool->redo_log());
///   tx.Stage(offset_a, &a, sizeof(a));
///   tx.Stage(offset_b, &b, sizeof(b));
///   tx.Commit(commit_ts);   // all-or-nothing after a crash
///
/// Commit persists the staged entries, atomically sets a commit marker,
/// applies the entries to their home locations, persists them, and clears
/// the marker. Open() replays marked segments (crash after marker) in
/// commit-timestamp order and discards unmarked ones (crash before marker).
///
/// Segment layout (each of area_size/num_segments bytes):
///   [0]  u64 state       (0 = idle, 1 = committed)
///   [8]  u64 commit_ts   (replay order key)
///   [16] u64 num_entries
///   [24] u64 crc         (CRC32C of bytes [8,24) + the entry bytes)
///   [32] entries: { u64 target, u64 len, len bytes (padded to 8) } ...
///
/// The checksum makes a committed marker self-validating: recovery replays
/// a marked segment only when its entry bytes hash to the stored CRC, so a
/// torn entry flush or media bit flip is detected and the segment discarded
/// instead of replaying garbage.
class RedoLog {
 public:
  RedoLog(Pool* pool, Offset area, uint64_t area_size, uint32_t num_segments);

  /// Applies committed-but-unapplied segments in commit-timestamp order,
  /// discarding any segment that fails checksum or bounds validation.
  /// Called by Pool::Open. Returns true if any replay happened; fills
  /// `report` (may be null) with per-segment accounting.
  bool Recover(RecoveryReport* report = nullptr);

  Offset area() const { return area_; }
  uint64_t area_size() const { return area_size_; }
  uint32_t num_segments() const { return num_segments_; }
  uint64_t segment_size() const { return segment_size_; }
  Offset segment_offset(uint32_t i) const {
    return area_ + static_cast<uint64_t>(i) * segment_size_;
  }

 private:
  friend class RedoTx;

  /// Blocks until a segment is free; prefers `hint` (a per-thread slot) so
  /// steady-state committers keep reusing "their" segment.
  uint32_t AcquireSegment(uint32_t hint);
  void ReleaseSegment(uint32_t idx);

  Pool* pool_;
  Offset area_;
  uint64_t area_size_;
  uint32_t num_segments_;
  uint64_t segment_size_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t busy_ = 0;  // bitmask, one bit per segment
};

class RedoTx {
 public:
  /// Drain hook for the commit phases: group commit passes a leader/follower
  /// batched drain; empty = Pool::Drain.
  using DrainFn = std::function<void()>;

  /// Acquires a free redo-log segment (per-thread preferred slot). With one
  /// segment this degenerates to the serialized pool-wide log.
  explicit RedoTx(RedoLog* log);

  /// Releases the segment. A destructed-but-uncommitted tx has no effect.
  ~RedoTx();

  RedoTx(const RedoTx&) = delete;
  RedoTx& operator=(const RedoTx&) = delete;

  /// Stages `len` bytes to be written to pool offset `target` at commit.
  /// Pipelined mode appends straight into the owned segment (no DRAM copy).
  void Stage(Offset target, const void* data, uint64_t len);

  /// Convenience for single values.
  template <typename T>
  void StageValue(Offset target, const T& value) {
    Stage(target, &value, sizeof(T));
  }

  /// Atomically applies all staged writes. Fails (without applying) if the
  /// staged data exceeds the segment. `commit_ts` orders crash replay across
  /// segments; `drain` replaces Pool::Drain in every commit phase.
  Status Commit(uint64_t commit_ts = 0, const DrainFn& drain = {});

  uint32_t segment() const { return segment_; }

 private:
  Status CommitPipelined(uint64_t commit_ts, const DrainFn& drain);
  Status CommitSerialized(uint64_t commit_ts, const DrainFn& drain);

  // Serialized-baseline staging (the seed path): entries buffered in DRAM
  // and copied into the log at commit.
  struct Entry {
    Offset target;
    uint64_t len;
    std::vector<char> data;
  };

  RedoLog* log_;
  uint32_t segment_ = 0;
  char* seg_ = nullptr;       // segment base pointer
  uint64_t pos_ = kRedoSegmentHeaderBytes;  // append cursor (pipelined)
  uint64_t num_entries_ = 0;
  bool overflow_ = false;
  bool committed_ = false;
  bool pipelined_ = true;
  std::vector<Entry> entries_;  // serialized-baseline staging only
  uint64_t staged_bytes_ = 0;
};

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_POOL_H_
