// 16-byte persistent pointer (PMDK-style): {pool_id, offset}.
//
// The paper (C6/DG6) recommends persistent pointers only for initialization
// paths because every dereference pays a pool-registry lookup and defeats
// compiler optimizations. This project follows that advice: hot paths use
// raw 8-byte offsets (pmem::Offset); PPtr exists for cross-pool references,
// for the chunk linkage the paper mentions, and so the DG6 microbenchmark
// (bench_pmem_micro) can quantify the dereference overhead.

#ifndef POSEIDON_PMEM_PPTR_H_
#define POSEIDON_PMEM_PPTR_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "pmem/pool.h"

namespace poseidon::pmem {

/// Process-wide registry mapping pool ids to open pools; the analogue of
/// PMDK's pool lookup by UUID during persistent-pointer dereference.
class PoolRegistry {
 public:
  static PoolRegistry& Instance() {
    static auto* instance = new PoolRegistry();
    return *instance;
  }

  void Register(Pool* pool) {
    std::lock_guard<std::mutex> lock(mu_);
    pools_[pool->pool_id()] = pool;
  }

  void Unregister(uint64_t pool_id) {
    std::lock_guard<std::mutex> lock(mu_);
    pools_.erase(pool_id);
  }

  /// Returns nullptr if the pool is not open.
  Pool* Lookup(uint64_t pool_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(pool_id);
    return it == pools_.end() ? nullptr : it->second;
  }

 private:
  PoolRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Pool*> pools_;
};

template <typename T>
class PPtr {
 public:
  PPtr() : pool_id_(0), offset_(kNullOffset) {}
  PPtr(uint64_t pool_id, Offset offset)
      : pool_id_(pool_id), offset_(offset) {}

  static PPtr FromPtr(Pool* pool, const T* ptr) {
    return PPtr(pool->pool_id(), pool->ToOffset(ptr));
  }

  bool IsNull() const { return offset_ == kNullOffset; }

  /// Dereference through the registry — deliberately the expensive path
  /// that DG6 tells systems to avoid on hot code.
  T* get() const {
    if (IsNull()) return nullptr;
    Pool* pool = PoolRegistry::Instance().Lookup(pool_id_);
    if (pool == nullptr) return nullptr;
    return pool->ToPtr<T>(offset_);
  }

  T* operator->() const { return get(); }
  T& operator*() const { return *get(); }

  uint64_t pool_id() const { return pool_id_; }
  Offset offset() const { return offset_; }

 private:
  uint64_t pool_id_;
  Offset offset_;
};

static_assert(sizeof(PPtr<int>) == 16, "persistent pointers are 16 bytes");

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_PPTR_H_
