// 16-byte persistent pointer (PMDK-style): {pool_id, offset}.
//
// The paper (C6/DG6) recommends persistent pointers only for initialization
// paths because every dereference pays a pool-registry lookup and defeats
// compiler optimizations. This project follows that advice: hot paths use
// raw 8-byte offsets (pmem::Offset); PPtr exists for cross-pool references,
// for the chunk linkage the paper mentions, and so the DG6 microbenchmark
// (bench_pmem_micro) can quantify the dereference overhead.

#ifndef POSEIDON_PMEM_PPTR_H_
#define POSEIDON_PMEM_PPTR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "pmem/pool.h"
#include "pmem/psan.h"

namespace poseidon::pmem {

// --- Sanctioned pool-store helpers (persist-order sanitizer entry points) ---
//
// Every store into pool memory from the storage/index/tx layers goes through
// one of these helpers (the lint in tools/lint_pptr_stores.py enforces it).
// With POSEIDON_PSAN compiled in they report the store to the pool's
// PersistSanitizer together with the call site ("file:line"); without it
// they reduce to exactly the raw store — zero cost, nothing else emitted.
//
//   PsanStoreAt       plain typed store          *dst = value
//   PsanAtomicStoreAt release-ordered store      atomic_ref(*dst).store(v)
//   PsanStoreCopyAt   bulk copy                  AtomicStoreCopy(dst, src, n)
//   PsanMarkRangeAt   mark only — for writes already performed in place
//                     (memset/rebuild loops, CAS results)
//   PsanPublishAt     pointer-publishing store: the value makes pool offset
//                     `target_off` reachable, so PSAN additionally checks
//                     that the pointee is no longer dirty when the slot's
//                     cache line is flushed (fence-before-data).
//
// The *At functions take the pool explicitly; the unsuffixed macros below
// capture __FILE__:__LINE__ and are what call sites use.

template <typename T>
inline void PsanStoreAt(Pool* pool, T* dst, const T& value, const char* site) {
  *dst = value;
#ifdef POSEIDON_PSAN
  if (pool != nullptr && pool->psan() != nullptr) {
    pool->psan()->OnStore(dst, sizeof(T), site);
  }
#else
  (void)pool;
  (void)site;
#endif
}

template <typename T>
inline void PsanAtomicStoreAt(Pool* pool, T* dst, T value, const char* site) {
  std::atomic_ref<T>(*dst).store(value, std::memory_order_release);
#ifdef POSEIDON_PSAN
  if (pool != nullptr && pool->psan() != nullptr) {
    pool->psan()->OnStore(dst, sizeof(T), site);
  }
#else
  (void)pool;
  (void)site;
#endif
}

inline void PsanStoreCopyAt(Pool* pool, void* dst, const void* src,
                            uint64_t len, const char* site) {
  AtomicStoreCopy(dst, src, len);
#ifdef POSEIDON_PSAN
  if (pool != nullptr && pool->psan() != nullptr) {
    pool->psan()->OnStore(dst, len, site);
  }
#else
  (void)pool;
  (void)site;
#endif
}

inline void PsanMarkRangeAt(Pool* pool, const void* addr, uint64_t len,
                            const char* site) {
#ifdef POSEIDON_PSAN
  if (pool != nullptr && pool->psan() != nullptr) {
    pool->psan()->OnStore(addr, len, site);
  }
#else
  (void)pool;
  (void)addr;
  (void)len;
  (void)site;
#endif
}

template <typename T>
inline void PsanPublishAt(Pool* pool, T* slot, T value, Offset target_off,
                          uint64_t target_len, const char* site) {
  std::atomic_ref<T>(*slot).store(value, std::memory_order_release);
#ifdef POSEIDON_PSAN
  if (pool != nullptr && pool->psan() != nullptr) {
    pool->psan()->OnPublish(slot, sizeof(T), target_off, target_len, site);
  }
#else
  (void)pool;
  (void)target_off;
  (void)target_len;
  (void)site;
#endif
}

/// Call-site macros: same arguments minus the trailing site.
#define PsanStore(pool, dst, value) \
  ::poseidon::pmem::PsanStoreAt((pool), (dst), (value), POSEIDON_PSAN_SITE)
#define PsanAtomicStore(pool, dst, value)                    \
  ::poseidon::pmem::PsanAtomicStoreAt((pool), (dst), (value), \
                                      POSEIDON_PSAN_SITE)
#define PsanStoreCopy(pool, dst, src, len)                       \
  ::poseidon::pmem::PsanStoreCopyAt((pool), (dst), (src), (len), \
                                    POSEIDON_PSAN_SITE)
#define PsanMarkRange(pool, addr, len) \
  ::poseidon::pmem::PsanMarkRangeAt((pool), (addr), (len), POSEIDON_PSAN_SITE)
#define PsanPublish(pool, slot, value, target_off, target_len)       \
  ::poseidon::pmem::PsanPublishAt((pool), (slot), (value), (target_off), \
                                  (target_len), POSEIDON_PSAN_SITE)

/// Process-wide registry mapping pool ids to open pools; the analogue of
/// PMDK's pool lookup by UUID during persistent-pointer dereference.
class PoolRegistry {
 public:
  static PoolRegistry& Instance() {
    static auto* instance = new PoolRegistry();
    return *instance;
  }

  void Register(Pool* pool) {
    std::lock_guard<std::mutex> lock(mu_);
    pools_[pool->pool_id()] = pool;
  }

  void Unregister(uint64_t pool_id) {
    std::lock_guard<std::mutex> lock(mu_);
    pools_.erase(pool_id);
  }

  /// Returns nullptr if the pool is not open.
  Pool* Lookup(uint64_t pool_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(pool_id);
    return it == pools_.end() ? nullptr : it->second;
  }

 private:
  PoolRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Pool*> pools_;
};

template <typename T>
class PPtr {
 public:
  PPtr() : pool_id_(0), offset_(kNullOffset) {}
  PPtr(uint64_t pool_id, Offset offset)
      : pool_id_(pool_id), offset_(offset) {}

  static PPtr FromPtr(Pool* pool, const T* ptr) {
    return PPtr(pool->pool_id(), pool->ToOffset(ptr));
  }

  bool IsNull() const { return offset_ == kNullOffset; }

  /// Dereference through the registry — deliberately the expensive path
  /// that DG6 tells systems to avoid on hot code.
  T* get() const {
    if (IsNull()) return nullptr;
    Pool* pool = PoolRegistry::Instance().Lookup(pool_id_);
    if (pool == nullptr) return nullptr;
    return pool->ToPtr<T>(offset_);
  }

  T* operator->() const { return get(); }
  T& operator*() const { return *get(); }

  uint64_t pool_id() const { return pool_id_; }
  Offset offset() const { return offset_; }

 private:
  uint64_t pool_id_;
  Offset offset_;
};

static_assert(sizeof(PPtr<int>) == 16, "persistent pointers are 16 bytes");

}  // namespace poseidon::pmem

#endif  // POSEIDON_PMEM_PPTR_H_
