#include "pmem/fault_injector.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <random>

#include "pmem/pool.h"

namespace poseidon::pmem {

void FaultInjector::OnPersistPoint(Pool* pool) {
  uint64_t point = counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t armed = armed_.load(std::memory_order_acquire);
  if (armed == 0 || point != armed) return;
  // Fire exactly once: freeze the durable image before this primitive runs,
  // so the simulated crash cuts the persistence stream at this point.
  armed_.store(0, std::memory_order_release);
  pool->FreezeShadow();
  fired_at_.store(point, std::memory_order_release);
}

void FaultInjector::RecordMediaLine(Offset off) {
  std::lock_guard<std::mutex> lock(media_mu_);
  media_lines_.push_back(off / kCacheLineSize);
}

void FaultInjector::InjectBitFlip(Pool* pool, Offset off, uint32_t bit) {
  pool->FlipDurableBit(off, bit);
  RecordMediaLine(off);
}

void FaultInjector::InjectTornLine(Pool* pool, Offset off) {
  // A torn line: the first half of the 64 B write retired, the second half
  // never reached media — emulated by stomping the tail with a pattern.
  Offset line_off = off & ~(kCacheLineSize - 1);
  char torn[kCacheLineSize / 2];
  std::memset(torn, 0x5a, sizeof(torn));
  pool->CorruptDurable(line_off + kCacheLineSize / 2, torn, sizeof(torn));
  RecordMediaLine(off);
}

std::vector<uint64_t> FaultInjector::InjectRandomMediaFaults(Pool* pool,
                                                             uint64_t count,
                                                             uint64_t seed) {
  std::vector<uint64_t> sealed;
  pool->CollectSealedLines(&sealed);
  std::vector<uint64_t> hit;
  if (sealed.empty() || count == 0) return hit;
  std::mt19937_64 rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t line = sealed[rng() % sealed.size()];
    uint64_t byte = rng() % kCacheLineSize;
    uint32_t bit = static_cast<uint32_t>(rng() % 8);
    InjectBitFlip(pool, line * kCacheLineSize + byte, bit);
    hit.push_back(line);
  }
  std::sort(hit.begin(), hit.end());
  hit.erase(std::unique(hit.begin(), hit.end()), hit.end());
  return hit;
}

void FaultInjector::ArmMediaFaults(uint64_t count, uint64_t seed) {
  media_seed_.store(seed, std::memory_order_release);
  media_armed_count_.store(count, std::memory_order_release);
}

void FaultInjector::ArmMediaFaultsFromEnv() {
  const char* v = std::getenv("POSEIDON_FAULT_MEDIA");
  if (v == nullptr || *v == '\0') return;
  char* end = nullptr;
  uint64_t count = std::strtoull(v, &end, 10);
  if (end == v || count == 0) return;
  uint64_t seed = count;
  if (*end == ':') {
    const char* s = end + 1;
    uint64_t parsed = std::strtoull(s, &end, 10);
    if (end != s) seed = parsed;
  }
  ArmMediaFaults(count, seed);
}

void FaultInjector::ApplyPendingMediaFaults(Pool* pool) {
  uint64_t count = media_armed_count_.exchange(0, std::memory_order_acq_rel);
  if (count == 0) return;
  InjectRandomMediaFaults(pool, count,
                          media_seed_.load(std::memory_order_acquire));
}

std::vector<uint64_t> FaultInjector::media_faulted_lines() const {
  std::lock_guard<std::mutex> lock(media_mu_);
  std::vector<uint64_t> lines = media_lines_;
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  return lines;
}

}  // namespace poseidon::pmem
