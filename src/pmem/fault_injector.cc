#include "pmem/fault_injector.h"

#include "pmem/pool.h"

namespace poseidon::pmem {

void FaultInjector::OnPersistPoint(Pool* pool) {
  uint64_t point = counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t armed = armed_.load(std::memory_order_acquire);
  if (armed == 0 || point != armed) return;
  // Fire exactly once: freeze the durable image before this primitive runs,
  // so the simulated crash cuts the persistence stream at this point.
  armed_.store(0, std::memory_order_release);
  pool->FreezeShadow();
  fired_at_.store(point, std::memory_order_release);
}

}  // namespace poseidon::pmem
