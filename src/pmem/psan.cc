#include "pmem/psan.h"

#include <cstdio>

#include "pmem/latency_model.h"
#include "util/env.h"

namespace poseidon::pmem {

namespace {

/// Process-wide hard-violation count; survives pool destruction so tests
/// can assert "this whole run was clean" after every pool is gone.
std::atomic<uint64_t> g_total_violations{0};

/// Small dense thread ids for dirty-line attribution (std::thread::id is
/// not ordered or compact).
uint64_t ThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* KindName(PsanViolationKind kind) {
  switch (kind) {
    case PsanViolationKind::kUnflushedAtBoundary:
      return "unflushed-at-boundary";
    case PsanViolationKind::kFenceBeforeData:
      return "fence-before-data";
  }
  return "unknown";
}

/// Bound on the pointee lines a single publish dependency checks; beyond
/// this (bulk targets like a whole table chunk) only the leading bytes are
/// verified, which is where the linkage fields live anyway.
constexpr uint64_t kMaxTargetLines = 64;

}  // namespace

uint64_t PsanTotalViolations() {
  return g_total_violations.load(std::memory_order_acquire);
}

PersistSanitizer::PersistSanitizer(const char* base, uint64_t capacity)
    : base_(base),
      capacity_(capacity),
      log_(util::EnvInt("POSEIDON_VERBOSE", 0) != 0) {}

uint64_t PersistSanitizer::LineToOffset(uint64_t line) const {
  return line * kCacheLineSize - reinterpret_cast<uint64_t>(base_);
}

void PersistSanitizer::RecordLocked(PsanViolationKind kind, const char* site,
                                    uint64_t line, std::string detail) {
  switch (kind) {
    case PsanViolationKind::kUnflushedAtBoundary:
      ++report_.unflushed_at_boundary;
      break;
    case PsanViolationKind::kFenceBeforeData:
      ++report_.fence_before_data;
      break;
  }
  violations_.fetch_add(1, std::memory_order_acq_rel);
  g_total_violations.fetch_add(1, std::memory_order_acq_rel);
  if (site == nullptr) site = "<unknown site>";
  if (log_) {
    std::fprintf(stderr, "poseidon: psan %s at %s (pool offset %llu): %s\n",
                 KindName(kind), site,
                 static_cast<unsigned long long>(LineToOffset(line)),
                 detail.c_str());
  }
  if (report_.violations.size() < PsanReport::kMaxRecorded) {
    report_.violations.push_back(
        PsanViolation{kind, site, LineToOffset(line), std::move(detail)});
  }
}

void PersistSanitizer::MarkDirtyLocked(uint64_t first, uint64_t last,
                                       const char* site) {
  uint64_t tid = ThreadId();
  for (uint64_t line = first; line <= last; ++line) {
    state_.erase(line);
    dirty_[line] = DirtyInfo{site, tid};
  }
}

void PersistSanitizer::OnStore(const void* addr, uint64_t len,
                               const char* site) {
  if (len == 0 || !InPool(addr)) return;
  auto a = reinterpret_cast<uint64_t>(addr);
  std::lock_guard<std::mutex> lock(mu_);
  MarkDirtyLocked(a / kCacheLineSize, (a + len - 1) / kCacheLineSize, site);
}

void PersistSanitizer::OnPublish(const void* slot, uint64_t slot_len,
                                 uint64_t target_off, uint64_t target_len,
                                 const char* site) {
  if (slot_len == 0 || !InPool(slot)) return;
  auto a = reinterpret_cast<uint64_t>(slot);
  uint64_t first = a / kCacheLineSize;
  uint64_t last = (a + slot_len - 1) / kCacheLineSize;
  std::lock_guard<std::mutex> lock(mu_);
  MarkDirtyLocked(first, last, site);
  // A null publish (clearing a pointer) has no pointee to order against.
  if (target_off == 0 || target_off >= capacity_) return;
  if (target_len == 0) target_len = 1;
  auto t = reinterpret_cast<uint64_t>(base_) + target_off;
  uint64_t tfirst = t / kCacheLineSize;
  uint64_t tlast = (t + target_len - 1) / kCacheLineSize;
  if (tlast - tfirst + 1 > kMaxTargetLines) {
    tlast = tfirst + kMaxTargetLines - 1;
  }
  for (uint64_t line = first; line <= last; ++line) {
    publishes_[line].push_back(PublishDep{tfirst, tlast, site});
  }
}

bool PersistSanitizer::OnFlushLine(uint64_t line, bool deduped) {
  std::lock_guard<std::mutex> lock(mu_);
  auto dirty_it = dirty_.find(line);
  if (dirty_it != dirty_.end()) {
    dirty_.erase(dirty_it);
    state_[line] = LineState::kFlushing;
    flushing_.push_back(line);
    // Fence-order check: flushing this line makes any pointer stored in it
    // durable (the crash shadow copies at flush time), so every pointee a
    // publish registered here must already have left the DIRTY state.
    auto pub_it = publishes_.find(line);
    if (pub_it != publishes_.end()) {
      for (const PublishDep& dep : pub_it->second) {
        for (uint64_t t = dep.target_first; t <= dep.target_last; ++t) {
          auto target_dirty = dirty_.find(t);
          if (target_dirty == dirty_.end()) continue;
          const char* store_site = target_dirty->second.site;
          RecordLocked(
              PsanViolationKind::kFenceBeforeData, dep.site, t,
              std::string("pointer flushed before pointee; pointee line "
                          "still dirty from store at ") +
                  (store_site != nullptr ? store_site : "<unknown site>"));
          break;  // one report per dependency, not per dirty line
        }
      }
      publishes_.erase(pub_it);
    }
    return false;
  }
  if (deduped) return false;  // batch coalescing already absorbed it
  auto state_it = state_.find(line);
  if (state_it == state_.end()) return false;  // untracked: not judged
  if (state_it->second != LineState::kDurable) return false;
  // A full-latency flush of a line that is already durable and has seen no
  // instrumented store since: the diagnostic the flush-pruning work needs.
  ++report_.redundant_flush_lines;
  return true;
}

void PersistSanitizer::OnDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t line : flushing_) {
    auto it = state_.find(line);
    if (it != state_.end() && it->second == LineState::kFlushing) {
      it->second = LineState::kDurable;
    }
  }
  flushing_.clear();
}

void PersistSanitizer::OnCommitBoundary() {
  uint64_t tid = ThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> mine;
  for (const auto& [line, info] : dirty_) {
    if (info.tid == tid) mine.push_back(line);
  }
  for (uint64_t line : mine) {
    const char* site = dirty_[line].site;
    dirty_.erase(line);
    publishes_.erase(line);
    RecordLocked(PsanViolationKind::kUnflushedAtBoundary, site, line,
                 "store still dirty when its transaction's redo commit "
                 "finished");
  }
}

void PersistSanitizer::OnClose() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> lines;
  lines.reserve(dirty_.size());
  for (const auto& [line, info] : dirty_) lines.push_back(line);
  for (uint64_t line : lines) {
    const char* site = dirty_[line].site;
    dirty_.erase(line);
    RecordLocked(PsanViolationKind::kUnflushedAtBoundary, site, line,
                 "store still dirty at pool close");
  }
  publishes_.clear();
}

void PersistSanitizer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  dirty_.clear();
  state_.clear();
  flushing_.clear();
  publishes_.clear();
}

PsanReport PersistSanitizer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

}  // namespace poseidon::pmem
