#include "pmem/latency_model.h"

#include <cstdlib>

namespace poseidon::pmem {

namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<uint64_t>(parsed);
}

}  // namespace

LatencyModel LatencyModel::EmulatedPmem() {
  LatencyModel m;
  // DRAM random access is ~85 ns on commodity servers; Optane adds roughly
  // 200+ ns on an uncached block read, giving the ~3x factor in C1.
  m.read_block_ns = EnvOr("POSEIDON_PMEM_READ_NS", 200);
  m.flush_line_ns = EnvOr("POSEIDON_PMEM_FLUSH_NS", 90);
  m.drain_ns = EnvOr("POSEIDON_PMEM_DRAIN_NS", 100);
  return m;
}

}  // namespace poseidon::pmem
