#include "pmem/latency_model.h"

#include "util/env.h"

namespace poseidon::pmem {

LatencyModel LatencyModel::EmulatedPmem() {
  LatencyModel m;
  // DRAM random access is ~85 ns on commodity servers; Optane adds roughly
  // 200+ ns on an uncached block read, giving the ~3x factor in C1.
  m.read_block_ns = util::EnvU64("POSEIDON_PMEM_READ_NS", 200);
  m.flush_line_ns = util::EnvU64("POSEIDON_PMEM_FLUSH_NS", 90);
  m.drain_ns = util::EnvU64("POSEIDON_PMEM_DRAIN_NS", 100);
  return m;
}

}  // namespace poseidon::pmem
