#include "query/engine.h"

namespace poseidon::query {

QueryEngine::QueryEngine(storage::GraphStore* store,
                         index::IndexManager* indexes, size_t num_threads)
    : store_(store), indexes_(indexes), pool_(num_threads) {}

Result<QueryResult> QueryEngine::Execute(const Plan& plan,
                                         tx::Transaction* tx,
                                         const std::vector<Value>& params,
                                         bool parallel) {
  ResultCollector out;
  ExecContext ctx;
  ctx.tx = tx;
  ctx.store = store_;
  ctx.indexes = indexes_;
  ctx.params = &params;
  ctx.scan = scan_options_;
  PipelineExecutor exec(plan, ctx, &out);
  POSEIDON_RETURN_IF_ERROR(exec.Prepare());

  uint64_t slots = exec.SourceCardinality();
  if (!parallel || slots == 0) {
    POSEIDON_RETURN_IF_ERROR(exec.Run());
  } else {
    std::mutex status_mu;
    Status first_error;
    for (uint64_t begin = 0; begin < slots; begin += kMorselSize) {
      uint64_t end = std::min(begin + kMorselSize, slots);
      pool_.Submit([&exec, &status_mu, &first_error, begin, end] {
        Status s = exec.RunMorsel(begin, end);
        if (!s.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          if (first_error.ok()) first_error = s;
        }
      });
    }
    pool_.WaitIdle();
    POSEIDON_RETURN_IF_ERROR(first_error);
    POSEIDON_RETURN_IF_ERROR(exec.Finish());
  }
  QueryResult result;
  result.rows = out.TakeRows();
  return result;
}

}  // namespace poseidon::query
