// QueryEngine: executes graph-algebra plans against a transaction, either
// single-threaded or with morsel-driven parallelism (paper §6.1): the scan
// range is split into fixed-size morsels, each pinned to a task executed by
// a worker pool; all post-scan operators run inside the same task until a
// pipeline breaker.
//
// Parallel execution is for read-only plans: MVTO write sets are
// transaction-private and not synchronized across worker threads.

#ifndef POSEIDON_QUERY_ENGINE_H_
#define POSEIDON_QUERY_ENGINE_H_

#include <memory>

#include "query/interpreter.h"
#include "util/thread_pool.h"

namespace poseidon::query {

struct QueryResult {
  std::vector<Tuple> rows;
};

class QueryEngine {
 public:
  /// Records per morsel (paper-style granularity).
  static constexpr uint64_t kMorselSize = 2048;

  QueryEngine(storage::GraphStore* store, index::IndexManager* indexes,
              size_t num_threads);

  /// Executes `plan` inside `tx`. With `parallel` set and a splittable
  /// source (NodeScan table slots, index-scan match positions), morsels run
  /// on the worker pool.
  Result<QueryResult> Execute(const Plan& plan, tx::Transaction* tx,
                              const std::vector<Value>& params,
                              bool parallel = false);

  storage::GraphStore* store() const { return store_; }
  index::IndexManager* indexes() const { return indexes_; }
  ThreadPool* pool() { return &pool_; }

  /// Batched-scan knobs applied to every execution (ablation surface).
  const storage::ScanOptions& scan_options() const { return scan_options_; }
  void set_scan_options(const storage::ScanOptions& o) { scan_options_ = o; }

 private:
  storage::GraphStore* store_;
  index::IndexManager* indexes_;
  ThreadPool pool_;
  storage::ScanOptions scan_options_ = storage::ScanOptions::FromEnv();
};

}  // namespace poseidon::query

#endif  // POSEIDON_QUERY_ENGINE_H_
