// Push-based AOT query interpreter (paper §6.1).
//
// A PipelineExecutor walks the operator chain source -> sink, pushing tuples
// through ahead-of-time-compiled operator implementations. The same instance
// serves all morsels of a parallel scan: operator state that must be shared
// (order-by buffers, counters, limits, join hash tables) is synchronized,
// everything else is tuple-local.
//
// The interpreter is also the fallback/first execution mode of the adaptive
// JIT engine (§6.2): it starts executing immediately while the compiler
// works in the background.

#ifndef POSEIDON_QUERY_INTERPRETER_H_
#define POSEIDON_QUERY_INTERPRETER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "index/index_manager.h"
#include "query/plan.h"
#include "query/value.h"
#include "storage/scan_options.h"
#include "tx/transaction.h"

namespace poseidon::query {

/// Everything an operator needs at runtime.
struct ExecContext {
  tx::Transaction* tx = nullptr;
  storage::GraphStore* store = nullptr;
  index::IndexManager* indexes = nullptr;       // may be null
  const std::vector<Value>* params = nullptr;   // may be null
  storage::ScanOptions scan;                    // batched-scan knobs
};

/// Thread-safe sink receiving final tuples.
class ResultCollector {
 public:
  void Add(const Tuple& t) {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(t);
  }

  /// Merges a per-worker tuple buffer under a single lock acquisition
  /// (morsel workers buffer locally and flush here once per morsel).
  void AddBatch(std::vector<Tuple>&& batch) {
    if (batch.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (rows_.empty()) {
      rows_ = std::move(batch);
    } else {
      rows_.insert(rows_.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
    }
  }

  uint64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
  }

  std::vector<Tuple> TakeRows() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(rows_);
  }

 private:
  mutable std::mutex mu_;
  std::vector<Tuple> rows_;
};

class PipelineExecutor {
 public:
  /// `plan` and `collector` must outlive the executor.
  PipelineExecutor(const Plan& plan, ExecContext ctx,
                   ResultCollector* collector);

  /// Executes a sub-pipeline rooted at `root` (hash-join build sides).
  PipelineExecutor(const Op* root, ExecContext ctx,
                   ResultCollector* collector);

  /// One-time setup: flattens the chain, executes hash-join build sides.
  Status Prepare();

  /// Runs the whole query single-threaded (source + Finish).
  Status Run();

  /// Runs the scan source over record ids [begin, end) — one morsel.
  /// Only valid when SourceCardinality() > 0.
  Status RunMorsel(uint64_t begin, uint64_t end);

  /// Flushes pipeline breakers (order-by buffers, count). Call exactly once
  /// after all morsels completed.
  Status Finish();

  /// Number of source units for morsel splitting: table slots for NodeScan,
  /// materialized index matches for IndexScan/IndexRangeScan (after
  /// Prepare), 0 when the source cannot be split (create pipelines).
  uint64_t SourceCardinality() const;

  /// Materialized index-source matches (record ids in index order) when the
  /// pipeline source is an IndexScan/IndexRangeScan; nullptr otherwise.
  /// Morsel ranges for index sources address positions in this vector. The
  /// JIT runtime shares it so compiled and interpreted morsels agree.
  const std::vector<storage::RecordId>* SourceMatches() const {
    return source_matches_valid_ ? &source_matches_ : nullptr;
  }

  /// Evaluates `e` against `t` in `ctx` (shared with the JIT runtime).
  static Result<Value> Eval(const Expr& e, const Tuple& t, ExecContext* ctx);

  /// True when `cmp` holds between a and b.
  static bool Compare(CmpOp cmp, const Value& a, const Value& b);

  /// Entry point for the JIT runtime: feeds a tuple into the pipeline at
  /// operator index `op_index` (the AOT tail after the compiled prefix).
  /// kOutOfRange means "stop producing".
  Status PushFrom(size_t op_index, Tuple& t) { return Push(op_index, t); }

  /// Operators in source..sink order (valid after Prepare).
  const std::vector<const Op*>& ops() const { return ops_; }

 private:
  struct AggState {
    Value group;
    uint64_t count = 0;
    double sum = 0;
    bool any_double = false;
    Value min, max;
    bool has_minmax = false;
  };

  struct OpState {
    // kOrderBy
    std::mutex buffer_mu;
    std::vector<Tuple> buffer;
    // kGroupBy: key = (kind, raw) of the group value
    std::map<std::pair<uint8_t, uint64_t>, AggState> groups;
    // kCount
    std::atomic<uint64_t> count{0};
    // kLimit
    std::atomic<uint64_t> taken{0};
    // kHashJoin: materialized build side
    std::vector<Tuple> build_rows;
    std::unordered_map<uint64_t, std::vector<size_t>> build_index;
  };

  /// Pushes `t` into ops_[i]; kOutOfRange signals "stop producing".
  Status Push(size_t i, Tuple& t);

  Status RunSourceRange(uint64_t begin, uint64_t end);
  Status RunNonScanSource();
  /// Collects + bounds-stamps the index matches for an index-source
  /// pipeline (called from Prepare).
  Status MaterializeIndexMatches();
  /// Snapshot re-validation + push for one index match.
  Status PushIndexMatch(const Op* src, storage::RecordId id, Tuple& t);

  const Op* root_;
  ExecContext ctx_;
  ResultCollector* collector_;

  std::vector<const Op*> ops_;  // source .. sink order
  std::vector<std::unique_ptr<OpState>> states_;
  // Index-source morsel support (filled by Prepare).
  std::vector<storage::RecordId> source_matches_;
  int64_t source_lo_key_ = 0;
  int64_t source_hi_key_ = 0;
  bool source_matches_valid_ = false;
  bool prepared_ = false;
};

}  // namespace poseidon::query

#endif  // POSEIDON_QUERY_INTERPRETER_H_
