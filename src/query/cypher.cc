#include "query/cypher.h"

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace poseidon::query {

namespace {

// --- Tokenizer ---------------------------------------------------------------

enum class Tok {
  kEnd,
  kIdent,    // identifiers and keywords
  kInt,      // integer literal
  kString,   // 'quoted'
  kParam,    // $N
  kLParen,   // (
  kRParen,   // )
  kLBrace,   // {
  kRBrace,   // }
  kLBracket, // [
  kRBracket, // ]
  kColon,    // :
  kComma,    // ,
  kDot,      // .
  kDash,     // -
  kArrowR,   // ->
  kArrowL,   // <-
  kStar,     // *
  kEq,       // =
  kNe,       // <>
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // kIdent / kString
  int64_t number = 0; // kInt / kParam
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Token& peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  Status error() const { return error_; }

 private:
  void Fail(const std::string& message) {
    if (error_.ok()) {
      error_ = Status::InvalidArgument("cypher: " + message + " at offset " +
                                       std::to_string(pos_));
    }
    current_ = Token{};
  }

  void Advance() {
    if (!error_.ok()) return;
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = Token{};
      return;
    }
    char c = text_[pos_];
    auto one = [&](Tok k) {
      ++pos_;
      current_ = Token{k, {}, 0};
    };
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_ = Token{Tok::kIdent,
                       std::string(text_.substr(start, pos_ - start)), 0};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      current_ = Token{
          Tok::kInt, {},
          std::stoll(std::string(text_.substr(start, pos_ - start)))};
      return;
    }
    switch (c) {
      case '\'': {
        ++pos_;
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
        if (pos_ >= text_.size()) return Fail("unterminated string");
        current_ = Token{Tok::kString,
                         std::string(text_.substr(start, pos_ - start)), 0};
        ++pos_;
        return;
      }
      case '$': {
        ++pos_;
        size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        if (start == pos_) return Fail("expected parameter index after $");
        current_ = Token{
            Tok::kParam, {},
            std::stoll(std::string(text_.substr(start, pos_ - start)))};
        return;
      }
      case '(': return one(Tok::kLParen);
      case ')': return one(Tok::kRParen);
      case '{': return one(Tok::kLBrace);
      case '}': return one(Tok::kRBrace);
      case '[': return one(Tok::kLBracket);
      case ']': return one(Tok::kRBracket);
      case ':': return one(Tok::kColon);
      case ',': return one(Tok::kComma);
      case '.': return one(Tok::kDot);
      case '*': return one(Tok::kStar);
      case '=': return one(Tok::kEq);
      case '-':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          pos_ += 2;
          current_ = Token{Tok::kArrowR, {}, 0};
          return;
        }
        return one(Tok::kDash);
      case '<':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          pos_ += 2;
          current_ = Token{Tok::kArrowL, {}, 0};
          return;
        }
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          pos_ += 2;
          current_ = Token{Tok::kNe, {}, 0};
          return;
        }
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          pos_ += 2;
          current_ = Token{Tok::kLe, {}, 0};
          return;
        }
        return one(Tok::kLt);
      case '>':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          pos_ += 2;
          current_ = Token{Tok::kGe, {}, 0};
          return;
        }
        return one(Tok::kGt);
      default:
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  Token current_;
  Status error_ = Status::Ok();
};

bool KeywordIs(const Token& t, std::string_view kw) {
  if (t.kind != Tok::kIdent || t.text.size() != kw.size()) return false;
  for (size_t i = 0; i < kw.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(t.text[i])) != kw[i]) {
      return false;
    }
  }
  return true;
}

// --- Parser -----------------------------------------------------------------

class Parser {
 public:
  Parser(std::string_view text, storage::Dictionary* dict)
      : lexer_(text), dict_(dict) {}

  Result<Plan> Parse();

 private:
  Status Expect(Tok kind, const char* what) {
    if (lexer_.peek().kind != kind) {
      return Status::InvalidArgument(std::string("cypher: expected ") + what);
    }
    lexer_.Take();
    return Status::Ok();
  }

  Result<storage::DictCode> Intern(const std::string& s) {
    return dict_->Encode(s);
  }

  /// Parses a literal / parameter into an Expr.
  Result<Expr> ParseValue() {
    Token t = lexer_.Take();
    switch (t.kind) {
      case Tok::kInt:
        return Expr::Literal(Value::Int(t.number));
      case Tok::kString: {
        POSEIDON_ASSIGN_OR_RETURN(storage::DictCode code, Intern(t.text));
        return Expr::Literal(Value::String(code));
      }
      case Tok::kParam:
        return Expr::Param(static_cast<int>(t.number));
      default:
        return Status::InvalidArgument("cypher: expected a value");
    }
  }

  /// node := '(' var [':' Label] [props] ')'. Returns the variable name and
  /// label; records pending property-equality filters for the node column.
  struct NodeSpec {
    std::string var;
    storage::DictCode label = storage::kInvalidCode;
    std::vector<std::pair<storage::DictCode, Expr>> prop_filters;
  };

  Result<NodeSpec> ParseNode() {
    NodeSpec spec;
    POSEIDON_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    if (lexer_.peek().kind == Tok::kIdent) {
      spec.var = lexer_.Take().text;
    }
    if (lexer_.peek().kind == Tok::kColon) {
      lexer_.Take();
      if (lexer_.peek().kind != Tok::kIdent) {
        return Status::InvalidArgument("cypher: expected label");
      }
      POSEIDON_ASSIGN_OR_RETURN(spec.label, Intern(lexer_.Take().text));
    }
    if (lexer_.peek().kind == Tok::kLBrace) {
      lexer_.Take();
      while (lexer_.peek().kind != Tok::kRBrace) {
        if (lexer_.peek().kind != Tok::kIdent) {
          return Status::InvalidArgument("cypher: expected property key");
        }
        POSEIDON_ASSIGN_OR_RETURN(storage::DictCode key,
                                  Intern(lexer_.Take().text));
        POSEIDON_RETURN_IF_ERROR(Expect(Tok::kColon, "':'"));
        POSEIDON_ASSIGN_OR_RETURN(Expr value, ParseValue());
        spec.prop_filters.emplace_back(key, value);
        if (lexer_.peek().kind == Tok::kComma) lexer_.Take();
      }
      POSEIDON_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}'"));
    }
    POSEIDON_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    return spec;
  }

  /// Resolves `var` to its tuple column.
  Result<int> ColumnOf(const std::string& var) {
    auto it = columns_.find(var);
    if (it == columns_.end()) {
      return Status::InvalidArgument("cypher: unknown variable '" + var +
                                     "'");
    }
    return it->second;
  }

  /// operand := var | var '.' key | id(var) | label(var)
  Result<Expr> ParseOperand() {
    if (lexer_.peek().kind != Tok::kIdent) {
      return Status::InvalidArgument("cypher: expected identifier");
    }
    Token head = lexer_.Take();
    if ((KeywordIs(head, "ID") || KeywordIs(head, "LABEL")) &&
        lexer_.peek().kind == Tok::kLParen) {
      lexer_.Take();
      if (lexer_.peek().kind != Tok::kIdent) {
        return Status::InvalidArgument("cypher: expected variable");
      }
      std::string var = lexer_.Take().text;
      POSEIDON_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      POSEIDON_ASSIGN_OR_RETURN(int col, ColumnOf(var));
      return KeywordIs(head, "ID") ? Expr::RecordId(col) : Expr::Label(col);
    }
    POSEIDON_ASSIGN_OR_RETURN(int col, ColumnOf(head.text));
    if (lexer_.peek().kind == Tok::kDot) {
      lexer_.Take();
      if (lexer_.peek().kind != Tok::kIdent) {
        return Status::InvalidArgument("cypher: expected property key");
      }
      POSEIDON_ASSIGN_OR_RETURN(storage::DictCode key,
                                Intern(lexer_.Take().text));
      return Expr::Property(col, key);
    }
    return Expr::Column(col);
  }

  Result<CmpOp> ParseCmp() {
    switch (lexer_.Take().kind) {
      case Tok::kEq: return CmpOp::kEq;
      case Tok::kNe: return CmpOp::kNe;
      case Tok::kLt: return CmpOp::kLt;
      case Tok::kLe: return CmpOp::kLe;
      case Tok::kGt: return CmpOp::kGt;
      case Tok::kGe: return CmpOp::kGe;
      default:
        return Status::InvalidArgument("cypher: expected comparison");
    }
  }

  Lexer lexer_;
  storage::Dictionary* dict_;
  PlanBuilder builder_;
  std::map<std::string, int> columns_;
  int width_ = 0;
};

Result<Plan> Parser::Parse() {
  if (!KeywordIs(lexer_.peek(), "MATCH")) {
    return Status::InvalidArgument("cypher: query must start with MATCH");
  }
  lexer_.Take();

  // --- pattern ------------------------------------------------------------
  POSEIDON_ASSIGN_OR_RETURN(NodeSpec first, ParseNode());
  std::move(builder_).NodeScan(first.label);
  if (!first.var.empty()) columns_[first.var] = 0;
  width_ = 1;
  for (auto& [key, value] : first.prop_filters) {
    std::move(builder_).FilterProperty(0, key, CmpOp::kEq, value);
  }

  while (lexer_.peek().kind == Tok::kDash ||
         lexer_.peek().kind == Tok::kArrowL) {
    bool outgoing = lexer_.Take().kind == Tok::kDash;  // kArrowL = incoming
    std::string rel_var;
    storage::DictCode rel_label = storage::kInvalidCode;
    if (lexer_.peek().kind == Tok::kLBracket) {
      lexer_.Take();
      if (lexer_.peek().kind == Tok::kIdent) rel_var = lexer_.Take().text;
      if (lexer_.peek().kind == Tok::kColon) {
        lexer_.Take();
        if (lexer_.peek().kind != Tok::kIdent) {
          return Status::InvalidArgument("cypher: expected relationship type");
        }
        POSEIDON_ASSIGN_OR_RETURN(rel_label, Intern(lexer_.Take().text));
      }
      POSEIDON_RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
    }
    if (outgoing) {
      POSEIDON_RETURN_IF_ERROR(Expect(Tok::kArrowR, "'->'"));
    } else {
      POSEIDON_RETURN_IF_ERROR(Expect(Tok::kDash, "'-'"));
    }
    int src_col = width_ - 1;  // the most recent node column
    POSEIDON_ASSIGN_OR_RETURN(NodeSpec node, ParseNode());
    std::move(builder_).Expand(src_col,
                               outgoing ? Direction::kOut : Direction::kIn,
                               rel_label, node.label);
    int rel_col = width_;
    int node_col = width_ + 1;
    width_ += 2;
    if (!rel_var.empty()) columns_[rel_var] = rel_col;
    if (!node.var.empty()) columns_[node.var] = node_col;
    for (auto& [key, value] : node.prop_filters) {
      std::move(builder_).FilterProperty(node_col, key, CmpOp::kEq, value);
    }
  }

  // --- WHERE ---------------------------------------------------------------
  if (KeywordIs(lexer_.peek(), "WHERE")) {
    lexer_.Take();
    for (;;) {
      POSEIDON_ASSIGN_OR_RETURN(Expr lhs, ParseOperand());
      POSEIDON_ASSIGN_OR_RETURN(CmpOp cmp, ParseCmp());
      POSEIDON_ASSIGN_OR_RETURN(Expr rhs, ParseValue());
      switch (lhs.kind) {
        case Expr::Kind::kProperty:
          std::move(builder_).FilterProperty(lhs.column, lhs.key, cmp, rhs);
          break;
        case Expr::Kind::kRecordId: {
          if (cmp != CmpOp::kEq) {
            return Status::Unimplemented(
                "cypher: id() predicates support '=' only");
          }
          std::move(builder_).FilterRecordId(lhs.column, rhs);
          break;
        }
        default:
          return Status::Unimplemented(
              "cypher: unsupported WHERE operand");
      }
      if (!KeywordIs(lexer_.peek(), "AND")) break;
      lexer_.Take();
    }
  }

  // --- RETURN ----------------------------------------------------------------
  if (!KeywordIs(lexer_.peek(), "RETURN")) {
    return Status::InvalidArgument("cypher: expected RETURN");
  }
  lexer_.Take();

  if (KeywordIs(lexer_.peek(), "COUNT")) {
    lexer_.Take();
    POSEIDON_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    POSEIDON_RETURN_IF_ERROR(Expect(Tok::kStar, "'*'"));
    POSEIDON_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    std::move(builder_).Count();
    if (lexer_.peek().kind != Tok::kEnd) {
      return Status::InvalidArgument("cypher: COUNT(*) must end the query");
    }
    POSEIDON_RETURN_IF_ERROR(lexer_.error());
    return std::move(builder_).Build();
  }

  std::vector<Expr> items;
  std::vector<std::string> item_texts;  // for ORDER BY matching
  for (;;) {
    size_t before = items.size();
    (void)before;
    std::string text;
    if (lexer_.peek().kind == Tok::kIdent) text = lexer_.peek().text;
    POSEIDON_ASSIGN_OR_RETURN(Expr item, ParseOperand());
    // Rebuild the canonical item text "var.key" for ORDER BY matching.
    if (item.kind == Expr::Kind::kProperty) {
      auto name = dict_->Decode(item.key);
      text += ".";
      text += name.ok() ? std::string(*name) : "?";
    }
    items.push_back(item);
    item_texts.push_back(text);
    if (lexer_.peek().kind != Tok::kComma) break;
    lexer_.Take();
  }
  std::move(builder_).Project(items);

  // --- ORDER BY / LIMIT -----------------------------------------------------
  bool have_order = false;
  int order_col = -1;
  bool desc = false;
  if (KeywordIs(lexer_.peek(), "ORDER")) {
    lexer_.Take();
    if (!KeywordIs(lexer_.peek(), "BY")) {
      return Status::InvalidArgument("cypher: expected BY after ORDER");
    }
    lexer_.Take();
    // The sort key must be one of the returned items.
    std::string text;
    if (lexer_.peek().kind != Tok::kIdent) {
      return Status::InvalidArgument("cypher: expected ORDER BY item");
    }
    text = lexer_.Take().text;
    if (lexer_.peek().kind == Tok::kDot) {
      lexer_.Take();
      if (lexer_.peek().kind != Tok::kIdent) {
        return Status::InvalidArgument("cypher: expected property key");
      }
      text += "." + lexer_.Take().text;
    }
    for (size_t i = 0; i < item_texts.size(); ++i) {
      if (item_texts[i] == text) order_col = static_cast<int>(i);
    }
    if (order_col < 0) {
      return Status::InvalidArgument(
          "cypher: ORDER BY key must appear in RETURN");
    }
    if (KeywordIs(lexer_.peek(), "DESC")) {
      desc = true;
      lexer_.Take();
    } else if (KeywordIs(lexer_.peek(), "ASC")) {
      lexer_.Take();
    }
    have_order = true;
  }
  uint64_t limit = 0;
  if (KeywordIs(lexer_.peek(), "LIMIT")) {
    lexer_.Take();
    if (lexer_.peek().kind != Tok::kInt) {
      return Status::InvalidArgument("cypher: expected LIMIT count");
    }
    limit = static_cast<uint64_t>(lexer_.Take().number);
  }
  if (have_order) {
    std::move(builder_).OrderBy(order_col, desc, limit);
  } else if (limit > 0) {
    std::move(builder_).Limit(limit);
  }

  if (lexer_.peek().kind != Tok::kEnd) {
    return Status::InvalidArgument("cypher: trailing tokens after query");
  }
  POSEIDON_RETURN_IF_ERROR(lexer_.error());
  return std::move(builder_).Build();
}

}  // namespace

Result<Plan> ParseCypher(std::string_view text, storage::Dictionary* dict) {
  if (dict == nullptr) {
    return Status::InvalidArgument("cypher: dictionary required");
  }
  Parser parser(text, dict);
  return parser.Parse();
}

}  // namespace poseidon::query
