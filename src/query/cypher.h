// Cypher-like query frontend (paper §1: "we support Cypher-like
// navigational queries"). Parses a navigational subset of Cypher into the
// graph algebra of plan.h; the plan then runs on any execution mode
// (interpreted, JIT, adaptive).
//
// Supported grammar (keywords case-insensitive):
//
//   query    := MATCH pattern
//               [WHERE pred (AND pred)*]
//               RETURN items
//               [ORDER BY item [DESC|ASC]] [LIMIT n]
//   pattern  := node (edge node)*
//   node     := '(' var [':' Label] [ '{' key ':' value (',' ...)* '}' ] ')'
//   edge     := '-[' [var] [':' TYPE] ']->'  |  '<-[' [var] [':' TYPE] ']-'
//   pred     := operand cmp value            cmp := = <> < <= > >=
//   operand  := var '.' key | id(var)
//   items    := item (',' item)*  |  count(*)
//   item     := var | var '.' key | id(var) | label(var)
//   value    := integer | 'string' | $N (parameter)
//
// Example:
//   MATCH (p:Person {id: $0})-[k:knows]->(f:Person)
//   WHERE f.age >= 30
//   RETURN f.firstName, k.creationDate
//   ORDER BY k.creationDate DESC LIMIT 10

#ifndef POSEIDON_QUERY_CYPHER_H_
#define POSEIDON_QUERY_CYPHER_H_

#include <string_view>

#include "query/plan.h"
#include "storage/dictionary.h"

namespace poseidon::query {

/// Parses `text` into an executable plan. Labels, relationship types, and
/// property keys are interned in `dict` (so a first-seen label simply
/// matches nothing rather than failing). String literals are dictionary-
/// encoded for comparison against stored values.
Result<Plan> ParseCypher(std::string_view text, storage::Dictionary* dict);

}  // namespace poseidon::query

#endif  // POSEIDON_QUERY_CYPHER_H_
