// Runtime values flowing through query pipelines. A Value is one tuple
// element: a primitive, a dictionary-coded string, or a reference to a node
// or relationship record.

#ifndef POSEIDON_QUERY_VALUE_H_
#define POSEIDON_QUERY_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/dictionary.h"
#include "storage/property_value.h"
#include "storage/types.h"

namespace poseidon::query {

class Value {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kDouble,
    kString,  ///< dictionary code
    kNode,    ///< node record id
    kRel,     ///< relationship record id
  };

  Value() : kind_(Kind::kNull), raw_(0) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Kind::kBool, b ? 1 : 0); }
  static Value Int(int64_t i) {
    return Value(Kind::kInt, static_cast<uint64_t>(i));
  }
  static Value Double(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return Value(Kind::kDouble, bits);
  }
  static Value String(storage::DictCode code) {
    return Value(Kind::kString, code);
  }
  static Value Node(storage::RecordId id) { return Value(Kind::kNode, id); }
  static Value Rel(storage::RecordId id) { return Value(Kind::kRel, id); }

  /// Reconstructs a Value from its kind tag and raw payload (JIT runtime).
  static Value FromRaw(uint8_t kind, uint64_t raw) {
    return Value(static_cast<Kind>(kind), raw);
  }

  /// Lifts a storage-level property value.
  static Value FromPVal(const storage::PVal& v) {
    switch (v.type) {
      case storage::PType::kNull:
        return Null();
      case storage::PType::kInt:
        return Int(v.AsInt());
      case storage::PType::kDouble:
        return Double(v.AsDouble());
      case storage::PType::kString:
        return String(v.AsString());
      case storage::PType::kBool:
        return Bool(v.AsBool());
    }
    return Null();
  }

  /// Lowers to a storage-level property value (for Create/Set operators).
  storage::PVal ToPVal() const {
    switch (kind_) {
      case Kind::kNull:
        return storage::PVal::Null();
      case Kind::kBool:
        return storage::PVal::Bool(AsBool());
      case Kind::kInt:
        return storage::PVal::Int(AsInt());
      case Kind::kDouble:
        return storage::PVal::Double(AsDouble());
      case Kind::kString:
        return storage::PVal::String(AsString());
      case Kind::kNode:
      case Kind::kRel:
        return storage::PVal::Int(static_cast<int64_t>(raw_));
    }
    return storage::PVal::Null();
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const { return raw_ != 0; }
  int64_t AsInt() const { return static_cast<int64_t>(raw_); }
  double AsDouble() const {
    double d;
    std::memcpy(&d, &raw_, sizeof(d));
    return d;
  }
  storage::DictCode AsString() const {
    return static_cast<storage::DictCode>(raw_);
  }
  storage::RecordId AsRecordId() const { return raw_; }
  uint64_t raw() const { return raw_; }

  /// Three-way comparison for homogeneous kinds; numeric kinds compare
  /// numerically across int/double. Returns <0, 0, >0.
  int Compare(const Value& other) const {
    if ((kind_ == Kind::kInt || kind_ == Kind::kDouble) &&
        (other.kind_ == Kind::kInt || other.kind_ == Kind::kDouble)) {
      double a = kind_ == Kind::kInt ? static_cast<double>(AsInt())
                                     : AsDouble();
      double b = other.kind_ == Kind::kInt
                     ? static_cast<double>(other.AsInt())
                     : other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    if (kind_ != other.kind_) {
      return kind_ < other.kind_ ? -1 : 1;
    }
    return raw_ < other.raw_ ? -1 : (raw_ > other.raw_ ? 1 : 0);
  }

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0 && a.is_null() == b.is_null();
  }

  /// Human-readable rendering; decodes strings through `dict` when given.
  std::string ToString(const storage::Dictionary* dict = nullptr) const {
    switch (kind_) {
      case Kind::kNull:
        return "null";
      case Kind::kBool:
        return AsBool() ? "true" : "false";
      case Kind::kInt:
        return std::to_string(AsInt());
      case Kind::kDouble:
        return std::to_string(AsDouble());
      case Kind::kString: {
        if (dict != nullptr) {
          auto s = dict->Decode(AsString());
          if (s.ok()) return std::string(*s);
        }
        return "str#" + std::to_string(AsString());
      }
      case Kind::kNode:
        return "node(" + std::to_string(raw_) + ")";
      case Kind::kRel:
        return "rel(" + std::to_string(raw_) + ")";
    }
    return "?";
  }

 private:
  Value(Kind kind, uint64_t raw) : kind_(kind), raw_(raw) {}

  Kind kind_;
  uint64_t raw_;
};

using Tuple = std::vector<Value>;

}  // namespace poseidon::query

#endif  // POSEIDON_QUERY_VALUE_H_
