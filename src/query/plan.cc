#include "query/plan.h"

#include <functional>

namespace poseidon::query {

namespace {

void AppendExprSignature(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      out->append("lit:");
      out->append(std::to_string(static_cast<int>(e.literal.kind())));
      out->append(":");
      out->append(std::to_string(e.literal.raw()));
      break;
    case Expr::Kind::kParam:
      out->append("p");
      out->append(std::to_string(e.param));
      break;
    case Expr::Kind::kColumn:
      out->append("c");
      out->append(std::to_string(e.column));
      break;
    case Expr::Kind::kProperty:
      out->append("prop(c");
      out->append(std::to_string(e.column));
      out->append(",k");
      out->append(std::to_string(e.key));
      out->append(")");
      break;
    case Expr::Kind::kRecordId:
      out->append("id(c");
      out->append(std::to_string(e.column));
      out->append(")");
      break;
    case Expr::Kind::kLabel:
      out->append("label(c");
      out->append(std::to_string(e.column));
      out->append(")");
      break;
  }
}

void AppendOpSignature(const Op* op, std::string* out) {
  if (op == nullptr) return;
  AppendOpSignature(op->input.get(), out);
  out->append("|");
  out->append(std::to_string(static_cast<int>(op->kind)));
  out->append(",l");
  out->append(std::to_string(op->label));
  out->append(",l2:");
  out->append(std::to_string(op->label2));
  out->append(",d");
  out->append(std::to_string(static_cast<int>(op->dir)));
  out->append(",c");
  out->append(std::to_string(op->column));
  out->append(",k");
  out->append(std::to_string(op->key));
  out->append(",cmp");
  out->append(std::to_string(static_cast<int>(op->cmp)));
  out->append(",v[");
  AppendExprSignature(op->value, out);
  out->append("],v2[");
  AppendExprSignature(op->value2, out);
  out->append("],lim");
  out->append(std::to_string(op->limit));
  out->append(op->desc ? ",desc" : ",asc");
  out->append(op->on_node ? ",n" : ",r");
  out->append(",agg");
  out->append(std::to_string(static_cast<int>(op->agg)));
  for (auto k : op->keys) {
    out->append(",pk");
    out->append(std::to_string(k));
  }
  for (const auto& e : op->exprs) {
    out->append(",e[");
    AppendExprSignature(e, out);
    out->append("]");
  }
  if (op->right != nullptr) {
    out->append(",build{");
    AppendOpSignature(op->right.get(), out);
    out->append("}jk");
    out->append(std::to_string(op->left_key_col));
    out->append(":");
    out->append(std::to_string(op->right_key_col));
  }
}

int CountOpsRec(const Op* op) {
  if (op == nullptr) return 0;
  return 1 + CountOpsRec(op->input.get()) + CountOpsRec(op->right.get());
}

}  // namespace

int Plan::CountOps() const { return CountOpsRec(root.get()); }

std::string Plan::Signature() const {
  std::string s;
  AppendOpSignature(root.get(), &s);
  return s;
}

namespace {

std::string CodeName(storage::DictCode code,
                     const storage::Dictionary* dict) {
  if (code == storage::kInvalidCode) return "*";
  if (dict != nullptr) {
    auto s = dict->Decode(code);
    if (s.ok()) return std::string(*s);
  }
  return "#" + std::to_string(code);
}

std::string ExprName(const Expr& e, const storage::Dictionary* dict) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal.ToString(dict);
    case Expr::Kind::kParam:
      return "$" + std::to_string(e.param);
    case Expr::Kind::kColumn:
      return "c" + std::to_string(e.column);
    case Expr::Kind::kProperty:
      return "c" + std::to_string(e.column) + "." + CodeName(e.key, dict);
    case Expr::Kind::kRecordId:
      return "id(c" + std::to_string(e.column) + ")";
    case Expr::Kind::kLabel:
      return "label(c" + std::to_string(e.column) + ")";
  }
  return "?";
}

const char* CmpName(CmpOp cmp) {
  switch (cmp) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

const char* AggName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "?";
}

/// Execution-mode suffix attached to pipeline sources in EXPLAIN output.
std::string AnnotationSuffix(const ExplainAnnotation* ann) {
  if (ann == nullptr) return "";
  std::string out = " [parallel=" + std::to_string(ann->threads) +
                    ", morsel=" + std::to_string(ann->morsel) +
                    ", batch=" + (ann->batch ? "on" : "off");
  out += std::string(", rts=") + (ann->rts_coalesce ? "coalesced" : "eager") +
         " skip=" + std::to_string(ann->rts_skipped) +
         " defer=" + std::to_string(ann->rts_deferred);
  if (ann->snapshot_reuse) {
    out += " snapshot=" + std::to_string(ann->snapshot_ts);
  }
  if (ann->scrub_on) {
    out += " scrub=" + std::to_string(ann->scrub_verified) + "/" +
           std::to_string(ann->scrub_repaired) + "/" +
           std::to_string(ann->scrub_quarantined);
  }
  if (ann->overload) {
    out += " deadline=" + std::to_string(ann->deadline_ms) + "ms writers=" +
           std::to_string(ann->active_writers) + "/" +
           std::to_string(ann->max_writers) +
           " aborts=" + std::to_string(ann->aborts_conflict) + "/" +
           std::to_string(ann->aborts_deadline) + "/" +
           std::to_string(ann->aborts_cancelled) + "/" +
           std::to_string(ann->aborts_space) +
           " shed=" + std::to_string(ann->writers_shed) + "+" +
           std::to_string(ann->space_denied);
  }
  return out + "]";
}

/// Adjacency-cache suffix attached to Expand operators in EXPLAIN output.
std::string ExpandAnnotationSuffix(const ExplainAnnotation* ann) {
  if (ann == nullptr) return "";
  if (!ann->adj_cache) return " [adjcache=off]";
  return " [adjcache=on hits=" + std::to_string(ann->adj_hits) +
         " misses=" + std::to_string(ann->adj_misses) +
         " inval=" + std::to_string(ann->adj_invalidations) +
         " evict=" + std::to_string(ann->adj_evictions) + "]";
}

void PrintOp(const Op* op, const storage::Dictionary* dict,
             const ExplainAnnotation* ann, int indent, std::string* out) {
  if (op == nullptr) return;
  PrintOp(op->input.get(), dict, ann, indent, out);
  out->append(indent * 2, ' ');
  switch (op->kind) {
    case OpKind::kNodeScan:
      out->append("NodeScan(" + CodeName(op->label, dict) + ")" +
                  AnnotationSuffix(ann));
      break;
    case OpKind::kIndexScan:
      out->append("IndexScan(" + CodeName(op->label, dict) + "." +
                  CodeName(op->key, dict) + " = " +
                  ExprName(op->value, dict) + ")" + AnnotationSuffix(ann));
      break;
    case OpKind::kIndexRangeScan:
      out->append("IndexRangeScan(" + CodeName(op->label, dict) + "." +
                  CodeName(op->key, dict) + " in [" +
                  ExprName(op->value, dict) + ", " +
                  ExprName(op->value2, dict) + "])" + AnnotationSuffix(ann));
      break;
    case OpKind::kExpand:
      out->append("ForeachRelationship(c" + std::to_string(op->column) +
                  (op->dir == Direction::kOut ? " -[" : " <-[") +
                  CodeName(op->label, dict) + "]" +
                  (op->dir == Direction::kOut ? "-> " : "- ") +
                  CodeName(op->label2, dict) + ")" +
                  ExpandAnnotationSuffix(ann));
      break;
    case OpKind::kExpandTransitive:
      out->append("ExpandTransitive(c" + std::to_string(op->column) + " (" +
                  CodeName(op->label, dict) + ")* until " +
                  CodeName(op->label2, dict) + ")" +
                  ExpandAnnotationSuffix(ann));
      break;
    case OpKind::kFilter:
      if (op->label != storage::kInvalidCode) {
        out->append("Filter(label(c" + std::to_string(op->column) + ") = " +
                    CodeName(op->label, dict) + ")");
      } else if (op->key != storage::kInvalidCode) {
        out->append("Filter(c" + std::to_string(op->column) + "." +
                    CodeName(op->key, dict) + " " + CmpName(op->cmp) + " " +
                    ExprName(op->value, dict) + ")");
      } else {
        out->append("Filter(id(c" + std::to_string(op->column) + ") " +
                    CmpName(op->cmp) + " " + ExprName(op->value, dict) + ")");
      }
      break;
    case OpKind::kProject: {
      out->append("Project(");
      for (size_t i = 0; i < op->exprs.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(ExprName(op->exprs[i], dict));
      }
      out->append(")");
      break;
    }
    case OpKind::kOrderBy:
      out->append("OrderBy(c" + std::to_string(op->column) +
                  (op->desc ? " desc" : " asc") +
                  (op->limit > 0 ? ", limit " + std::to_string(op->limit)
                                 : "") +
                  ")");
      break;
    case OpKind::kLimit:
      out->append("Limit(" + std::to_string(op->limit) + ")");
      break;
    case OpKind::kCount:
      out->append("Count()");
      break;
    case OpKind::kGroupBy:
      out->append(std::string("GroupBy(") + ExprName(op->exprs[0], dict) +
                  ", " + AggName(op->agg) + "(" +
                  ExprName(op->exprs[1], dict) + "))");
      break;
    case OpKind::kHashJoin:
      out->append("HashJoin(c" + std::to_string(op->left_key_col) + " = c" +
                  std::to_string(op->right_key_col) + ") build:\n");
      // Build sides are materialized serially; no source annotation.
      PrintOp(op->right.get(), dict, nullptr, indent + 2, out);
      out->erase(out->find_last_not_of('\n') + 1);
      break;
    case OpKind::kCreateNode:
      out->append("CreateNode(" + CodeName(op->label, dict) + ")");
      break;
    case OpKind::kCreateRel:
      out->append("CreateRelationship(c" + std::to_string(op->column) +
                  " -[" + CodeName(op->label, dict) + "]-> c" +
                  std::to_string(op->left_key_col) + ")");
      break;
    case OpKind::kSetProperty:
      out->append("SetProperty(c" + std::to_string(op->column) + "." +
                  CodeName(op->key, dict) + " := " +
                  ExprName(op->value, dict) + ")");
      break;
  }
  out->append("\n");
}

}  // namespace

std::string Plan::ToString(const storage::Dictionary* dict,
                           const ExplainAnnotation* ann) const {
  std::string out;
  PrintOp(root.get(), dict, ann, 0, &out);
  return out;
}

const Op* Plan::Source() const {
  const Op* op = root.get();
  while (op != nullptr && op->input != nullptr) op = op->input.get();
  return op;
}

PlanBuilder&& PlanBuilder::Push(std::unique_ptr<Op> op) && {
  op->input = std::move(chain_);
  chain_ = std::move(op);
  return std::move(*this);
}

PlanBuilder&& PlanBuilder::NodeScan(storage::DictCode label) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kNodeScan;
  op->label = label;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::IndexScan(storage::DictCode label,
                                     storage::DictCode key, Expr value) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kIndexScan;
  op->label = label;
  op->key = key;
  op->value = value;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::IndexRangeScan(storage::DictCode label,
                                          storage::DictCode key, Expr lo,
                                          Expr hi) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kIndexRangeScan;
  op->label = label;
  op->key = key;
  op->value = lo;
  op->value2 = hi;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::Expand(int column, Direction dir,
                                  storage::DictCode rel_label,
                                  storage::DictCode node_label) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kExpand;
  op->column = column;
  op->dir = dir;
  op->label = rel_label;
  op->label2 = node_label;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::ExpandTransitive(int column, Direction dir,
                                            storage::DictCode rel_label,
                                            storage::DictCode stop_label) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kExpandTransitive;
  op->column = column;
  op->dir = dir;
  op->label = rel_label;
  op->label2 = stop_label;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::FilterProperty(int column, storage::DictCode key,
                                          CmpOp cmp, Expr value) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kFilter;
  op->column = column;
  op->key = key;
  op->cmp = cmp;
  op->value = value;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::FilterLabel(int column,
                                       storage::DictCode label) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kFilter;
  op->column = column;
  op->label = label;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::FilterRecordId(int column, Expr value) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kFilter;
  op->column = column;
  op->cmp = CmpOp::kEq;
  // Neither label nor key set: the interpreter dispatches this as a
  // record-id comparison.
  op->value = value;
  op->key = storage::kInvalidCode;
  op->label = storage::kInvalidCode;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::Project(std::vector<Expr> exprs) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kProject;
  op->exprs = std::move(exprs);
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::OrderBy(int column, bool desc, uint64_t limit) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kOrderBy;
  op->column = column;
  op->desc = desc;
  op->limit = limit;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::Limit(uint64_t n) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kLimit;
  op->limit = n;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::Count() && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kCount;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::GroupBy(Expr group, AggFn fn, Expr value) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kGroupBy;
  op->agg = fn;
  op->exprs = {group, value};
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::HashJoin(Plan build_side, int left_key_col,
                                    int right_key_col) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kHashJoin;
  op->right = std::move(build_side.root);
  op->left_key_col = left_key_col;
  op->right_key_col = right_key_col;
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::CreateNode(storage::DictCode label,
                                      std::vector<storage::DictCode> keys,
                                      std::vector<Expr> values) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kCreateNode;
  op->label = label;
  op->keys = std::move(keys);
  op->exprs = std::move(values);
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::CreateRel(int src_column, int dst_column,
                                     storage::DictCode label,
                                     std::vector<storage::DictCode> keys,
                                     std::vector<Expr> values) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kCreateRel;
  op->column = src_column;
  op->left_key_col = dst_column;  // reuse: dst column
  op->label = label;
  op->keys = std::move(keys);
  op->exprs = std::move(values);
  return std::move(*this).Push(std::move(op));
}

PlanBuilder&& PlanBuilder::SetProperty(int column, storage::DictCode key,
                                       Expr value, bool is_node) && {
  auto op = std::make_unique<Op>();
  op->kind = OpKind::kSetProperty;
  op->column = column;
  op->key = key;
  op->value = value;
  op->on_node = is_node;
  return std::move(*this).Push(std::move(op));
}

Plan PlanBuilder::Build() && {
  Plan p;
  p.root = std::move(chain_);
  return p;
}

}  // namespace poseidon::query
