// Graph algebra (paper §6.1): the declarative plan representation consumed
// by both the AOT interpreter and the JIT code generator.
//
// A plan is a chain (or tree, with joins) of operators. Execution is
// push-based: the source operator (deepest input) produces tuples and pushes
// them through the chain. Tuples are columnar-by-position: each operator
// appends/replaces columns as documented on its kind.

#ifndef POSEIDON_QUERY_PLAN_H_
#define POSEIDON_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/value.h"
#include "storage/types.h"

namespace poseidon::query {

enum class OpKind : uint8_t {
  kNodeScan,         ///< source; emits [node] for each visible node (label opt)
  kIndexScan,        ///< source; B+-Tree point lookup -> [node]
  kIndexRangeScan,   ///< source; B+-Tree range scan -> [node]
  kExpand,           ///< appends [rel, neighbor] via adjacency traversal
  kExpandTransitive, ///< follows dir/label edges until a label2 node; appends [node]
  kFilter,           ///< predicate on a column ((property|label|id) cmp expr)
  kProject,          ///< replaces the tuple with evaluated expressions
  kOrderBy,          ///< pipeline breaker: sort by column, optional limit
  kLimit,            ///< stops the pipeline after N tuples
  kCount,            ///< sink aggregate: emits a single [count]
  kGroupBy,          ///< breaker: groups by exprs[0], aggregates exprs[1]
  kHashJoin,         ///< materializes right child, probes with left tuples
  kCreateNode,       ///< appends [node]; transactional insert
  kCreateRel,        ///< appends [rel]; transactional insert
  kSetProperty,      ///< transactional property update on a column
};

enum class Direction : uint8_t { kOut, kIn };
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class AggFn : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// Scalar expression evaluated against a tuple (used by Filter rhs, Project,
/// property values of Create/Set).
struct Expr {
  enum class Kind : uint8_t {
    kLiteral,   ///< constant value
    kParam,     ///< runtime parameter by index
    kColumn,    ///< tuple column as-is
    kProperty,  ///< property `key` of the node/rel in `column`
    kRecordId,  ///< physical record id of the node/rel in `column`
    kLabel,     ///< label code of the node/rel in `column`
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  int param = -1;
  int column = -1;
  storage::DictCode key = storage::kInvalidCode;

  static Expr Literal(Value v) {
    Expr e;
    e.kind = Kind::kLiteral;
    e.literal = v;
    return e;
  }
  static Expr Param(int index) {
    Expr e;
    e.kind = Kind::kParam;
    e.param = index;
    return e;
  }
  static Expr Column(int column) {
    Expr e;
    e.kind = Kind::kColumn;
    e.column = column;
    return e;
  }
  static Expr Property(int column, storage::DictCode key) {
    Expr e;
    e.kind = Kind::kProperty;
    e.column = column;
    e.key = key;
    return e;
  }
  static Expr RecordId(int column) {
    Expr e;
    e.kind = Kind::kRecordId;
    e.column = column;
    return e;
  }
  static Expr Label(int column) {
    Expr e;
    e.kind = Kind::kLabel;
    e.column = column;
    return e;
  }
};

struct Op {
  OpKind kind;
  std::unique_ptr<Op> input;  ///< upstream operator (null for sources)
  std::unique_ptr<Op> right;  ///< hash-join build side

  // Operator parameters; which fields apply depends on `kind`.
  storage::DictCode label = storage::kInvalidCode;   ///< scan/expand rel label
  storage::DictCode label2 = storage::kInvalidCode;  ///< neighbor/stop label
  Direction dir = Direction::kOut;
  int column = -1;                                   ///< operand column
  storage::DictCode key = storage::kInvalidCode;     ///< property key
  CmpOp cmp = CmpOp::kEq;
  Expr value;         ///< filter rhs / index key / set-property value
  Expr value2;        ///< range scan upper bound
  std::vector<storage::DictCode> keys;  ///< create: property keys
  std::vector<Expr> exprs;              ///< project list / create prop values
  uint64_t limit = 0;
  bool desc = false;
  bool on_node = true;     ///< set-property target kind (node vs rel)
  AggFn agg = AggFn::kCount;  ///< group-by aggregate function
  int left_key_col = -1;   ///< hash join probe column
  int right_key_col = -1;  ///< hash join build column
};

/// Execution-mode annotation for EXPLAIN output: how the engine would run
/// the pipeline source (worker threads, morsel granularity, batched-scan
/// kernels).
struct ExplainAnnotation {
  size_t threads = 0;
  uint64_t morsel = 0;
  bool batch = false;
  /// DRAM adjacency cache state, rendered on Expand operators:
  /// `[adjcache=on hits=... misses=... inval=... evict=...]`. The counters
  /// are the engine-lifetime totals at EXPLAIN time.
  bool adj_cache = false;
  uint64_t adj_hits = 0;
  uint64_t adj_misses = 0;
  uint64_t adj_invalidations = 0;
  uint64_t adj_evictions = 0;
  /// Read-path concurrency state, rendered on pipeline sources:
  /// `[... rts=coalesced skip=N defer=N snapshot=S]`. Counters are
  /// engine-lifetime totals at EXPLAIN time; S is the currently published
  /// shared read-only snapshot timestamp (0 = none yet).
  bool rts_coalesce = false;
  uint64_t rts_skipped = 0;
  uint64_t rts_deferred = 0;
  bool snapshot_reuse = false;
  uint64_t snapshot_ts = 0;
  /// Online integrity scrubbing, rendered on pipeline sources when the pool
  /// maintains checksums: `[scrub=verified/repaired/quarantined]`.
  /// verified/repaired are pool-lifetime totals at EXPLAIN time;
  /// quarantined is the number of currently quarantined lines.
  bool scrub_on = false;
  uint64_t scrub_verified = 0;
  uint64_t scrub_repaired = 0;
  uint64_t scrub_quarantined = 0;
  /// Overload governance, rendered on pipeline sources:
  /// `[... deadline=<ms> writers=<active>/<max>
  ///    aborts=conflict/deadline/cancel/space shed=N+M]`.
  /// The deadline is the manager-wide default (0 = none); the abort
  /// taxonomy and shed counters are engine-lifetime totals at EXPLAIN time
  /// (shed = admission-gate sheds + soft-watermark space denials).
  bool overload = false;  ///< gate or deadline configured: render the block
  int64_t deadline_ms = 0;
  int64_t active_writers = 0;
  int64_t max_writers = 0;
  uint64_t aborts_conflict = 0;
  uint64_t aborts_deadline = 0;
  uint64_t aborts_cancelled = 0;
  uint64_t aborts_space = 0;
  uint64_t writers_shed = 0;
  uint64_t space_denied = 0;
};

/// A complete query plan. `root` is the sink-most operator.
struct Plan {
  std::unique_ptr<Op> root;

  /// Number of operators in the chain (tree).
  int CountOps() const;

  /// Structural identifier used as the compiled-code cache key (§6.2
  /// "unique query identifier that comprises the operators' identifiers").
  /// Parameters contribute their index, not their value, so one compiled
  /// query serves all parameter bindings.
  std::string Signature() const;

  /// The source operator of the main (left-most) pipeline.
  const Op* Source() const;

  /// Human-readable plan rendering (EXPLAIN). Labels and property keys are
  /// decoded through `dict` when provided, otherwise shown as codes. With
  /// `ann`, pipeline sources carry an execution-mode suffix:
  ///   `[parallel=<n threads>, morsel=<size>, batch=<on|off>]`.
  std::string ToString(const storage::Dictionary* dict = nullptr,
                       const ExplainAnnotation* ann = nullptr) const;
};

/// Fluent construction of linear plans (joins attach via HashJoin(build)).
///
///   Plan p = PlanBuilder()
///                .NodeScan(person)
///                .FilterProperty(0, id_key, CmpOp::kEq, Expr::Param(0))
///                .Expand(0, Direction::kOut, knows)
///                .Project({Expr::Property(2, name_key)})
///                .Build();
class PlanBuilder {
 public:
  PlanBuilder() = default;

  PlanBuilder&& NodeScan(storage::DictCode label = storage::kInvalidCode) &&;
  PlanBuilder&& IndexScan(storage::DictCode label, storage::DictCode key,
                          Expr value) &&;
  PlanBuilder&& IndexRangeScan(storage::DictCode label, storage::DictCode key,
                               Expr lo, Expr hi) &&;
  PlanBuilder&& Expand(int column, Direction dir,
                       storage::DictCode rel_label = storage::kInvalidCode,
                       storage::DictCode node_label =
                           storage::kInvalidCode) &&;
  PlanBuilder&& ExpandTransitive(int column, Direction dir,
                                 storage::DictCode rel_label,
                                 storage::DictCode stop_label) &&;
  PlanBuilder&& FilterProperty(int column, storage::DictCode key, CmpOp cmp,
                               Expr value) &&;
  PlanBuilder&& FilterLabel(int column, storage::DictCode label) &&;
  PlanBuilder&& FilterRecordId(int column, Expr value) &&;
  PlanBuilder&& Project(std::vector<Expr> exprs) &&;
  PlanBuilder&& OrderBy(int column, bool desc, uint64_t limit = 0) &&;
  PlanBuilder&& Limit(uint64_t n) &&;
  PlanBuilder&& Count() &&;
  /// Groups tuples by `group`, aggregating `value` with `fn`; emits
  /// [group, aggregate] rows (a pipeline breaker).
  PlanBuilder&& GroupBy(Expr group, AggFn fn, Expr value) &&;
  PlanBuilder&& HashJoin(Plan build_side, int left_key_col,
                         int right_key_col) &&;
  PlanBuilder&& CreateNode(storage::DictCode label,
                           std::vector<storage::DictCode> keys,
                           std::vector<Expr> values) &&;
  PlanBuilder&& CreateRel(int src_column, int dst_column,
                          storage::DictCode label,
                          std::vector<storage::DictCode> keys,
                          std::vector<Expr> values) &&;
  PlanBuilder&& SetProperty(int column, storage::DictCode key, Expr value,
                            bool is_node = true) &&;

  Plan Build() &&;

 private:
  PlanBuilder&& Push(std::unique_ptr<Op> op) &&;

  std::unique_ptr<Op> chain_;
};

}  // namespace poseidon::query

#endif  // POSEIDON_QUERY_PLAN_H_
