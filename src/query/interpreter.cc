#include "query/interpreter.h"

#include <algorithm>

#include "util/hash.h"

namespace poseidon::query {

using storage::kInvalidCode;
using storage::kNullId;
using storage::Property;
using storage::PVal;
using storage::RecordId;

namespace {

/// Internal sentinel: the pipeline consumed enough tuples (limit reached).
Status StopProducing() { return Status::OutOfRange("pipeline done"); }

bool IsStop(const Status& s) {
  return s.code() == StatusCode::kOutOfRange;
}

uint64_t JoinKeyHash(const Value& v) {
  return HashCombine(static_cast<uint64_t>(v.kind()), v.raw());
}

bool IsIndexSource(const Op* op) {
  return op != nullptr && (op->kind == OpKind::kIndexScan ||
                           op->kind == OpKind::kIndexRangeScan);
}

// Per-worker tuple sink: while set, terminal pushes append here instead of
// taking the collector lock; RunMorsel flushes the buffer once per morsel.
thread_local std::vector<Tuple>* tl_sink = nullptr;

struct ScopedSink {
  explicit ScopedSink(std::vector<Tuple>* sink) : prev_(tl_sink) {
    tl_sink = sink;
  }
  ~ScopedSink() { tl_sink = prev_; }
  std::vector<Tuple>* prev_;
};

}  // namespace

PipelineExecutor::PipelineExecutor(const Plan& plan, ExecContext ctx,
                                   ResultCollector* collector)
    : root_(plan.root.get()), ctx_(ctx), collector_(collector) {}

PipelineExecutor::PipelineExecutor(const Op* root, ExecContext ctx,
                                   ResultCollector* collector)
    : root_(root), ctx_(ctx), collector_(collector) {}

Result<Value> PipelineExecutor::Eval(const Expr& e, const Tuple& t,
                                     ExecContext* ctx) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kParam: {
      if (ctx->params == nullptr ||
          e.param >= static_cast<int>(ctx->params->size())) {
        return Status::InvalidArgument("missing query parameter " +
                                       std::to_string(e.param));
      }
      return (*ctx->params)[e.param];
    }
    case Expr::Kind::kColumn:
      if (e.column < 0 || e.column >= static_cast<int>(t.size())) {
        return Status::InvalidArgument("column out of range");
      }
      return t[e.column];
    case Expr::Kind::kProperty: {
      if (e.column < 0 || e.column >= static_cast<int>(t.size())) {
        return Status::InvalidArgument("column out of range");
      }
      const Value& v = t[e.column];
      if (v.kind() == Value::Kind::kNode) {
        POSEIDON_ASSIGN_OR_RETURN(
            PVal p, ctx->tx->GetNodeProperty(v.AsRecordId(), e.key));
        return Value::FromPVal(p);
      }
      if (v.kind() == Value::Kind::kRel) {
        POSEIDON_ASSIGN_OR_RETURN(
            PVal p, ctx->tx->GetRelationshipProperty(v.AsRecordId(), e.key));
        return Value::FromPVal(p);
      }
      return Status::InvalidArgument("property access on non-record value");
    }
    case Expr::Kind::kRecordId: {
      const Value& v = t[e.column];
      return Value::Int(static_cast<int64_t>(v.AsRecordId()));
    }
    case Expr::Kind::kLabel: {
      const Value& v = t[e.column];
      if (v.kind() == Value::Kind::kNode) {
        POSEIDON_ASSIGN_OR_RETURN(auto n, ctx->tx->GetNode(v.AsRecordId()));
        return Value::String(n.rec.label);
      }
      if (v.kind() == Value::Kind::kRel) {
        POSEIDON_ASSIGN_OR_RETURN(auto r,
                                  ctx->tx->GetRelationship(v.AsRecordId()));
        return Value::String(r.rec.label);
      }
      return Status::InvalidArgument("label access on non-record value");
    }
  }
  return Status::Internal("unknown expression kind");
}

bool PipelineExecutor::Compare(CmpOp cmp, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    // SQL-ish: null compares equal only under kEq when both are null.
    if (cmp == CmpOp::kEq) return a.is_null() && b.is_null();
    if (cmp == CmpOp::kNe) return a.is_null() != b.is_null();
    return false;
  }
  int c = a.Compare(b);
  switch (cmp) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

Status PipelineExecutor::Prepare() {
  ops_.clear();
  states_.clear();
  for (const Op* op = root_; op != nullptr; op = op->input.get()) {
    ops_.push_back(op);
  }
  std::reverse(ops_.begin(), ops_.end());  // source .. sink
  states_.resize(ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    states_[i] = std::make_unique<OpState>();
    if (ops_[i]->kind == OpKind::kHashJoin) {
      // Materialize the build side (the paper's "right sub-pipeline ...
      // will be materialized", §6.2) with a nested executor.
      ResultCollector build_sink;
      {
        PipelineExecutor build_exec(ops_[i]->right.get(), ctx_, &build_sink);
        POSEIDON_RETURN_IF_ERROR(build_exec.Prepare());
        POSEIDON_RETURN_IF_ERROR(build_exec.Run());
      }
      states_[i]->build_rows = build_sink.TakeRows();
      int key_col = ops_[i]->right_key_col;
      for (size_t r = 0; r < states_[i]->build_rows.size(); ++r) {
        const Tuple& row = states_[i]->build_rows[r];
        if (key_col < 0 || key_col >= static_cast<int>(row.size())) {
          return Status::InvalidArgument("join build key column invalid");
        }
        states_[i]->build_index[JoinKeyHash(row[key_col])].push_back(r);
      }
    }
  }
  if (IsIndexSource(ops_.empty() ? nullptr : ops_.front())) {
    POSEIDON_RETURN_IF_ERROR(MaterializeIndexMatches());
  }
  prepared_ = true;
  return Status::Ok();
}

Status PipelineExecutor::MaterializeIndexMatches() {
  const Op* src = ops_.front();
  if (ctx_.indexes == nullptr) {
    return Status::FailedPrecondition("no index manager configured");
  }
  index::BPlusTree* tree = ctx_.indexes->Find(src->label, src->key);
  if (tree == nullptr) {
    return Status::FailedPrecondition("no index on (label, key)");
  }
  Tuple t;
  POSEIDON_ASSIGN_OR_RETURN(Value lo, Eval(src->value, t, &ctx_));
  source_lo_key_ = index::IndexKeyOf(lo.ToPVal());
  source_hi_key_ = source_lo_key_;
  if (src->kind == OpKind::kIndexRangeScan) {
    POSEIDON_ASSIGN_OR_RETURN(Value hi, Eval(src->value2, t, &ctx_));
    source_hi_key_ = index::IndexKeyOf(hi.ToPVal());
  }
  source_matches_.clear();
  tree->ScanRange(index::BTreeKey{source_lo_key_, 0},
                  index::BTreeKey{source_hi_key_, ~0ull},
                  [&](const index::BTreeKey&, RecordId id) {
                    source_matches_.push_back(id);
                    return true;
                  });
  source_matches_valid_ = true;
  return Status::Ok();
}

uint64_t PipelineExecutor::SourceCardinality() const {
  const Op* src = ops_.empty() ? nullptr : ops_.front();
  if (src == nullptr) return 0;
  if (src->kind == OpKind::kNodeScan) return ctx_.store->nodes().NumSlots();
  if (IsIndexSource(src) && source_matches_valid_) {
    return source_matches_.size();
  }
  return 0;
}

Status PipelineExecutor::Run() {
  if (!prepared_) POSEIDON_RETURN_IF_ERROR(Prepare());
  const Op* src = ops_.empty() ? nullptr : ops_.front();
  if (src != nullptr && (src->kind == OpKind::kNodeScan ||
                         IsIndexSource(src))) {
    // Scannable source; an empty table / empty match set is a valid
    // zero-unit scan.
    Status s = RunSourceRange(0, SourceCardinality());
    if (!s.ok() && !IsStop(s)) return s;
  } else {
    Status s = RunNonScanSource();
    if (!s.ok() && !IsStop(s)) return s;
  }
  return Finish();
}

Status PipelineExecutor::RunMorsel(uint64_t begin, uint64_t end) {
  // Buffer terminal tuples locally; one collector lock per morsel.
  std::vector<Tuple> local;
  Status s;
  {
    ScopedSink sink(&local);
    s = RunSourceRange(begin, end);
  }
  collector_->AddBatch(std::move(local));
  if (IsStop(s)) return Status::Ok();
  return s;
}

Status PipelineExecutor::PushIndexMatch(const Op* src, RecordId id,
                                        Tuple& t) {
  // Re-validate against the snapshot: the index is a secondary structure
  // maintained post-commit.
  auto n = ctx_.tx->GetNode(id);
  if (!n.ok()) {
    if (n.status().IsNotFound()) return Status::Ok();
    return n.status();
  }
  if (src->label != kInvalidCode && n->rec.label != src->label) {
    return Status::Ok();
  }
  PVal p = n->from_snapshot
               ? [&] {
                   for (const auto& pr : n->snapshot) {
                     if (pr.key == src->key) return pr.value;
                   }
                   return PVal::Null();
                 }()
               : ctx_.store->properties().Get(n->rec.props, src->key);
  int64_t k = index::IndexKeyOf(p);
  if (p.is_null() || k < source_lo_key_ || k > source_hi_key_) {
    return Status::Ok();
  }
  t.clear();
  t.push_back(Value::Node(id));
  return Push(1, t);
}

Status PipelineExecutor::RunSourceRange(uint64_t begin, uint64_t end) {
  const Op* src = ops_.front();
  const storage::ScanOptions& opts = ctx_.scan;
  Tuple t;
  switch (src->kind) {
    case OpKind::kNodeScan: {
      auto& table = ctx_.store->nodes();
      uint64_t slots = table.NumSlots();
      if (end > slots) end = slots;
      if (!opts.batch_enabled) {
        // Seed behaviour: slot-at-a-time occupancy probing, no prefetch.
        for (uint64_t id = begin; id < end; ++id) {
          if ((id & 63u) == 0) {
            POSEIDON_RETURN_IF_ERROR(ctx_.tx->cancel_token()->Check());
          }
          if (!table.IsOccupied(id)) continue;
          auto n = ctx_.tx->GetNode(id);
          if (!n.ok()) {
            if (n.status().IsNotFound()) continue;  // invisible to snapshot
            return n.status();
          }
          if (src->label != kInvalidCode && n->rec.label != src->label) {
            continue;
          }
          t.clear();
          t.push_back(Value::Node(id));
          Status s = Push(1, t);
          if (!s.ok()) return s;
        }
        return Status::Ok();
      }
      // Batched fast path: gather occupied ids from the occupancy words
      // (whole empty words skipped), then consume software-pipelined —
      // the record `prefetch_distance` ahead is filling while the current
      // one goes through the pipeline.
      uint64_t cap = opts.batch_size == 0 ? 1 : opts.batch_size;
      std::vector<RecordId> ids(cap);
      uint64_t d = opts.prefetch_distance;
      RecordId cursor = begin;
      for (;;) {
        // Cancellation poll per gathered batch (<= batch_size records).
        POSEIDON_RETURN_IF_ERROR(ctx_.tx->cancel_token()->Check());
        uint64_t count = table.ScanBatch(&cursor, end, opts, ids.data(), cap);
        if (count == 0) return Status::Ok();
        for (uint64_t i = 0; i < count; ++i) {
          if (d != 0 && i + d < count) table.Prefetch(ids[i + d]);
          RecordId id = ids[i];
          auto n = ctx_.tx->GetNode(id);
          if (!n.ok()) {
            if (n.status().IsNotFound()) continue;  // invisible to snapshot
            return n.status();
          }
          if (src->label != kInvalidCode && n->rec.label != src->label) {
            continue;
          }
          t.clear();
          t.push_back(Value::Node(id));
          Status s = Push(1, t);
          if (!s.ok()) return s;
        }
      }
    }

    case OpKind::kIndexScan:
    case OpKind::kIndexRangeScan: {
      // Morsels address positions in the materialized match vector.
      if (!source_matches_valid_) {
        return Status::Internal("index matches not materialized");
      }
      uint64_t n = source_matches_.size();
      if (end > n) end = n;
      uint64_t d = opts.batch_enabled ? opts.prefetch_distance : 0;
      auto& table = ctx_.store->nodes();
      for (uint64_t i = begin; i < end; ++i) {
        if ((i & 63u) == 0) {
          POSEIDON_RETURN_IF_ERROR(ctx_.tx->cancel_token()->Check());
        }
        if (d != 0 && i + d < end) table.Prefetch(source_matches_[i + d]);
        Status s = PushIndexMatch(src, source_matches_[i], t);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }

    default:
      return Status::Internal("morsel execution requires a scannable source");
  }
}

Status PipelineExecutor::RunNonScanSource() {
  const Op* src = ops_.front();
  Tuple t;
  switch (src->kind) {
    case OpKind::kCreateNode: {
      // Create as an access path (paper §6.2: NodeScan and Create are the
      // two access paths): one empty input tuple.
      t.clear();
      return Push(0, t);
    }
    default:
      return Status::Unimplemented("unsupported source operator");
  }
}

Status PipelineExecutor::Push(size_t i, Tuple& t) {
  if (i >= ops_.size()) {
    if (tl_sink != nullptr) {
      tl_sink->push_back(t);
    } else {
      collector_->Add(t);
    }
    return Status::Ok();
  }
  const Op* op = ops_[i];
  OpState& state = *states_[i];
  switch (op->kind) {
    case OpKind::kNodeScan:
    case OpKind::kIndexScan:
    case OpKind::kIndexRangeScan:
      return Status::Internal("source operator mid-pipeline");

    case OpKind::kFilter: {
      if (op->label != kInvalidCode) {
        const Value& v = t[op->column];
        storage::DictCode label;
        if (v.kind() == Value::Kind::kNode) {
          POSEIDON_ASSIGN_OR_RETURN(auto n, ctx_.tx->GetNode(v.AsRecordId()));
          label = n.rec.label;
        } else {
          POSEIDON_ASSIGN_OR_RETURN(auto r,
                                    ctx_.tx->GetRelationship(v.AsRecordId()));
          label = r.rec.label;
        }
        if (label != op->label) return Status::Ok();
        return Push(i + 1, t);
      }
      if (op->key != kInvalidCode) {
        Expr prop = Expr::Property(op->column, op->key);
        POSEIDON_ASSIGN_OR_RETURN(Value lhs, Eval(prop, t, &ctx_));
        POSEIDON_ASSIGN_OR_RETURN(Value rhs, Eval(op->value, t, &ctx_));
        if (!Compare(op->cmp, lhs, rhs)) return Status::Ok();
        return Push(i + 1, t);
      }
      // Record-id comparison.
      POSEIDON_ASSIGN_OR_RETURN(Value rhs, Eval(op->value, t, &ctx_));
      Value lhs = Value::Int(static_cast<int64_t>(t[op->column].AsRecordId()));
      if (!Compare(op->cmp, lhs, rhs)) return Status::Ok();
      return Push(i + 1, t);
    }

    case OpKind::kExpand: {
      const Value& v = t[op->column];
      if (v.kind() != Value::Kind::kNode) {
        return Status::InvalidArgument("Expand requires a node column");
      }
      // Cancellation poll per expanded tuple (the scan loops cover the
      // per-record cadence; this bounds a hub node's full neighbor walk).
      POSEIDON_RETURN_IF_ERROR(ctx_.tx->cancel_token()->Check());
      Status inner = Status::Ok();
      auto visit = [&](RecordId rel_id, storage::DictCode rel_label,
                       RecordId neighbor) {
        if (op->label != kInvalidCode && rel_label != op->label) return true;
        if (op->label2 != kInvalidCode) {
          auto n = ctx_.tx->GetNode(neighbor);
          if (!n.ok()) {
            if (n.status().IsNotFound()) return true;
            inner = n.status();
            return false;
          }
          if (n->rec.label != op->label2) return true;
        }
        t.push_back(Value::Rel(rel_id));
        t.push_back(Value::Node(neighbor));
        Status s = Push(i + 1, t);
        t.resize(t.size() - 2);
        if (!s.ok()) {
          inner = s;
          return false;
        }
        return true;
      };
      // ForEachNeighbor serves the DRAM adjacency cache when eligible and
      // chain-walks otherwise; either way the visibility is this tx's.
      Status s = ctx_.tx->ForEachNeighbor(
          v.AsRecordId(),
          op->dir == Direction::kOut ? tx::AdjDir::kOut : tx::AdjDir::kIn,
          visit);
      if (!s.ok()) return s;
      return inner;
    }

    case OpKind::kExpandTransitive: {
      const Value& v = t[op->column];
      if (v.kind() != Value::Kind::kNode) {
        return Status::InvalidArgument("ExpandTransitive requires a node");
      }
      RecordId cur = v.AsRecordId();
      // Follow the first matching relationship per hop until a node with
      // the stop label is reached (e.g. replyOf* up to the root Post).
      for (int hop = 0; hop < 4096; ++hop) {
        POSEIDON_RETURN_IF_ERROR(ctx_.tx->cancel_token()->Check());
        POSEIDON_ASSIGN_OR_RETURN(auto n, ctx_.tx->GetNode(cur));
        if (n.rec.label == op->label2) {
          t.push_back(Value::Node(cur));
          Status s = Push(i + 1, t);
          t.pop_back();
          return s;
        }
        RecordId next = kNullId;
        Status s = ctx_.tx->ForEachNeighbor(
            cur,
            op->dir == Direction::kOut ? tx::AdjDir::kOut : tx::AdjDir::kIn,
            [&](RecordId, storage::DictCode rel_label, RecordId neighbor) {
              if (op->label != kInvalidCode && rel_label != op->label) {
                return true;
              }
              next = neighbor;
              return false;
            });
        if (!s.ok()) return s;
        if (next == kNullId) return Status::Ok();  // dead end: no emit
        cur = next;
      }
      return Status::Internal("transitive expansion exceeded hop limit");
    }

    case OpKind::kProject: {
      Tuple out;
      out.reserve(op->exprs.size());
      for (const Expr& e : op->exprs) {
        POSEIDON_ASSIGN_OR_RETURN(Value v, Eval(e, t, &ctx_));
        out.push_back(v);
      }
      return Push(i + 1, out);
    }

    case OpKind::kOrderBy: {
      std::lock_guard<std::mutex> lock(state.buffer_mu);
      state.buffer.push_back(t);
      return Status::Ok();
    }

    case OpKind::kLimit: {
      uint64_t seen = state.taken.fetch_add(1, std::memory_order_acq_rel);
      if (seen >= op->limit) return StopProducing();
      Status s = Push(i + 1, t);
      if (!s.ok()) return s;
      if (seen + 1 >= op->limit) return StopProducing();
      return Status::Ok();
    }

    case OpKind::kCount: {
      state.count.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }

    case OpKind::kGroupBy: {
      POSEIDON_ASSIGN_OR_RETURN(Value group, Eval(op->exprs[0], t, &ctx_));
      POSEIDON_ASSIGN_OR_RETURN(Value v, Eval(op->exprs[1], t, &ctx_));
      std::lock_guard<std::mutex> lock(state.buffer_mu);
      auto key = std::make_pair(static_cast<uint8_t>(group.kind()),
                                group.raw());
      AggState& agg = state.groups[key];
      agg.group = group;
      ++agg.count;
      if (!v.is_null()) {
        if (v.kind() == Value::Kind::kDouble) {
          agg.sum += v.AsDouble();
          agg.any_double = true;
        } else {
          agg.sum += static_cast<double>(v.AsInt());
        }
        if (!agg.has_minmax) {
          agg.min = agg.max = v;
          agg.has_minmax = true;
        } else {
          if (v.Compare(agg.min) < 0) agg.min = v;
          if (v.Compare(agg.max) > 0) agg.max = v;
        }
      }
      return Status::Ok();
    }

    case OpKind::kHashJoin: {
      const Value& key = t[op->left_key_col];
      auto it = state.build_index.find(JoinKeyHash(key));
      if (it == state.build_index.end()) return Status::Ok();
      size_t base = t.size();
      for (size_t r : it->second) {
        const Tuple& row = state.build_rows[r];
        if (!(row[op->right_key_col] == key)) continue;  // hash collision
        t.insert(t.end(), row.begin(), row.end());
        Status s = Push(i + 1, t);
        t.resize(base);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }

    case OpKind::kCreateNode: {
      std::vector<Property> props;
      props.reserve(op->keys.size());
      for (size_t k = 0; k < op->keys.size(); ++k) {
        POSEIDON_ASSIGN_OR_RETURN(Value v, Eval(op->exprs[k], t, &ctx_));
        if (v.is_null()) continue;
        props.push_back(Property{op->keys[k], v.ToPVal()});
      }
      POSEIDON_ASSIGN_OR_RETURN(RecordId id,
                                ctx_.tx->CreateNode(op->label, props));
      t.push_back(Value::Node(id));
      Status s = Push(i + 1, t);
      t.pop_back();
      return s;
    }

    case OpKind::kCreateRel: {
      const Value& src = t[op->column];
      const Value& dst = t[op->left_key_col];
      if (src.kind() != Value::Kind::kNode ||
          dst.kind() != Value::Kind::kNode) {
        return Status::InvalidArgument("CreateRel requires node columns");
      }
      std::vector<Property> props;
      props.reserve(op->keys.size());
      for (size_t k = 0; k < op->keys.size(); ++k) {
        POSEIDON_ASSIGN_OR_RETURN(Value v, Eval(op->exprs[k], t, &ctx_));
        if (v.is_null()) continue;
        props.push_back(Property{op->keys[k], v.ToPVal()});
      }
      POSEIDON_ASSIGN_OR_RETURN(
          RecordId id, ctx_.tx->CreateRelationship(src.AsRecordId(),
                                                   dst.AsRecordId(),
                                                   op->label, props));
      t.push_back(Value::Rel(id));
      Status s = Push(i + 1, t);
      t.pop_back();
      return s;
    }

    case OpKind::kSetProperty: {
      const Value& target = t[op->column];
      POSEIDON_ASSIGN_OR_RETURN(Value v, Eval(op->value, t, &ctx_));
      if (op->on_node) {
        POSEIDON_RETURN_IF_ERROR(ctx_.tx->SetNodeProperty(
            target.AsRecordId(), op->key, v.ToPVal()));
      } else {
        POSEIDON_RETURN_IF_ERROR(ctx_.tx->SetRelationshipProperty(
            target.AsRecordId(), op->key, v.ToPVal()));
      }
      return Push(i + 1, t);
    }
  }
  return Status::Internal("unknown operator kind");
}

Status PipelineExecutor::Finish() {
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op* op = ops_[i];
    OpState& state = *states_[i];
    if (op->kind == OpKind::kOrderBy) {
      std::vector<Tuple> rows;
      {
        std::lock_guard<std::mutex> lock(state.buffer_mu);
        rows = std::move(state.buffer);
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Tuple& a, const Tuple& b) {
                         int c = a[op->column].Compare(b[op->column]);
                         return op->desc ? c > 0 : c < 0;
                       });
      if (op->limit > 0 && rows.size() > op->limit) rows.resize(op->limit);
      for (Tuple& row : rows) {
        Status s = Push(i + 1, row);
        if (!s.ok() && !IsStop(s)) return s;
        if (IsStop(s)) break;
      }
    } else if (op->kind == OpKind::kCount) {
      Tuple t{Value::Int(
          static_cast<int64_t>(state.count.load(std::memory_order_relaxed)))};
      Status s = Push(i + 1, t);
      if (!s.ok() && !IsStop(s)) return s;
    } else if (op->kind == OpKind::kGroupBy) {
      std::map<std::pair<uint8_t, uint64_t>, AggState> groups;
      {
        std::lock_guard<std::mutex> lock(state.buffer_mu);
        groups = std::move(state.groups);
      }
      for (auto& [key, agg] : groups) {
        Value out;
        switch (op->agg) {
          case AggFn::kCount:
            out = Value::Int(static_cast<int64_t>(agg.count));
            break;
          case AggFn::kSum:
            out = agg.any_double ? Value::Double(agg.sum)
                                 : Value::Int(static_cast<int64_t>(agg.sum));
            break;
          case AggFn::kMin:
            out = agg.has_minmax ? agg.min : Value::Null();
            break;
          case AggFn::kMax:
            out = agg.has_minmax ? agg.max : Value::Null();
            break;
          case AggFn::kAvg:
            out = agg.count == 0
                      ? Value::Null()
                      : Value::Double(agg.sum /
                                      static_cast<double>(agg.count));
            break;
        }
        Tuple t{agg.group, out};
        Status s = Push(i + 1, t);
        if (!s.ok() && !IsStop(s)) return s;
        if (IsStop(s)) break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace poseidon::query
