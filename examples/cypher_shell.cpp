// Interactive Cypher shell over a Poseidon database.
//
//   ./examples/cypher_shell [pool-file]
//
// Commands:
//   MATCH ...            run a query (executed with the adaptive engine)
//   :explain MATCH ...   show the compiled plan instead of running it
//   :mode aot|jit|adaptive   switch the execution mode
//   :seed N              generate an SNB-like dataset with N persons
//   :stats               storage statistics
//   :quit
//
// When invoked with input on stdin (non-interactive), reads one command per
// line, which makes the shell scriptable:
//   echo 'MATCH (p:Person) RETURN COUNT(*)' | ./examples/cypher_shell

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/graph_db.h"
#include "ldbc/snb_gen.h"
#include "query/cypher.h"
#include "util/spin_timer.h"

using namespace poseidon;  // NOLINT(build/namespaces) — example code

int main(int argc, char** argv) {
  core::GraphDbOptions options;
  options.capacity = 2ull << 30;
  if (argc > 1) options.path = argv[1];

  Result<std::unique_ptr<core::GraphDb>> db_or = Status::Ok();
  if (!options.path.empty() && std::ifstream(options.path).good()) {
    db_or = core::GraphDb::Open(options);
  } else {
    db_or = core::GraphDb::Create(options);
  }
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  core::GraphDb* db = db_or->get();
  jit::ExecutionMode mode = jit::ExecutionMode::kAdaptive;

  std::printf("poseidon shell — %s mode, %llu nodes, %llu relationships\n",
              options.path.empty() ? "DRAM" : "PMem",
              static_cast<unsigned long long>(db->store()->nodes().size()),
              static_cast<unsigned long long>(
                  db->store()->relationships().size()));
  std::printf("type a MATCH query, :explain <q>, :mode, :seed N, :stats or "
              ":quit\n");

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;

    if (line.rfind(":mode", 0) == 0) {
      if (line.find("aot") != std::string::npos) {
        mode = jit::ExecutionMode::kInterpret;
      } else if (line.find("adaptive") != std::string::npos) {
        mode = jit::ExecutionMode::kAdaptive;
      } else if (line.find("jit") != std::string::npos) {
        mode = jit::ExecutionMode::kJit;
      }
      std::printf("mode set\n");
      continue;
    }
    if (line.rfind(":seed", 0) == 0) {
      ldbc::SnbConfig cfg;
      cfg.persons = std::strtoull(line.c_str() + 5, nullptr, 10);
      if (cfg.persons == 0) cfg.persons = 500;
      StopWatch w;
      auto ds = ldbc::GenerateSnb(db->txm(), db->store(), cfg);
      if (!ds.ok()) {
        std::printf("error: %s\n", ds.status().ToString().c_str());
        continue;
      }
      std::printf("generated %llu nodes, %llu relationships in %.0f ms\n",
                  static_cast<unsigned long long>(ds->total_nodes),
                  static_cast<unsigned long long>(ds->total_relationships),
                  w.ElapsedMs());
      continue;
    }
    if (line == ":stats") {
      std::printf("nodes=%llu relationships=%llu properties=%llu "
                  "dictionary=%llu pool=%llu MiB used\n",
                  static_cast<unsigned long long>(db->store()->nodes().size()),
                  static_cast<unsigned long long>(
                      db->store()->relationships().size()),
                  static_cast<unsigned long long>(
                      db->store()->properties().table()->size()),
                  static_cast<unsigned long long>(db->store()->dict().size()),
                  static_cast<unsigned long long>(
                      db->pool()->bytes_used() >> 20));
      continue;
    }

    bool explain = line.rfind(":explain", 0) == 0;
    std::string text = explain ? line.substr(8) : line;
    auto plan = query::ParseCypher(text, &db->store()->dict());
    if (!plan.ok()) {
      std::printf("parse error: %s\n", plan.status().ToString().c_str());
      continue;
    }
    if (explain) {
      std::printf("%s", db->Explain(*plan).c_str());
      continue;
    }
    StopWatch w;
    jit::ExecStats stats;
    auto result = db->Execute(*plan, mode, {}, &stats);
    double ms = w.ElapsedMs();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    size_t shown = 0;
    for (const auto& row : result->rows) {
      if (++shown > 25) {
        std::printf("  ... (%zu more rows)\n", result->rows.size() - 25);
        break;
      }
      std::string rendered;
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) rendered += " | ";
        rendered += row[c].ToString(&db->store()->dict());
      }
      std::printf("  %s\n", rendered.c_str());
    }
    std::printf("%zu row(s) in %.2f ms%s\n", result->rows.size(), ms,
                stats.used_jit ? " (jit)" : "");
  }
  db->engine()->WaitForBackgroundCompiles();
  std::printf("bye.\n");
  return 0;
}
