// Crash-recovery walkthrough: demonstrates the PMem durability story end to
// end — failure-atomic commits (redo log), invisibility of in-flight
// transactions after a crash, near-instant recovery (lock release + hybrid
// index inner rebuild), and the persistent JIT code cache surviving
// restarts.
//
// The "crash" uses the pool's shadow mode: every store that was not
// explicitly flushed is discarded, exactly as a power failure would.
//
//   ./examples/recovery_demo

#include <cstdio>

#include "core/graph_db.h"
#include "util/spin_timer.h"

using namespace poseidon;  // NOLINT(build/namespaces) — example code
using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::Value;
using storage::PVal;

int main() {
  std::string path = "/tmp/poseidon_recovery_demo.pmem";
  std::remove(path.c_str());

  core::GraphDbOptions options;
  options.path = path;
  options.capacity = 256ull << 20;

  storage::DictCode account, balance;
  // --- Session 1: commit data, then crash mid-transaction ---------------
  {
    auto db_or = core::GraphDb::Create(options);
    if (!db_or.ok()) return 1;
    core::GraphDb* db = db_or->get();
    account = *db->Code("Account");
    balance = *db->Code("balance");

    {
      auto tx = db->Begin();
      for (int i = 0; i < 1000; ++i) {
        (void)*tx->CreateNode(account, {{balance, PVal::Int(100)}});
      }
      if (!tx->Commit().ok()) return 1;
      std::printf("session 1: committed 1000 accounts (balance 100 each)\n");
    }
    if (!db->CreateIndex("Account", "balance").ok()) return 1;

    // Warm the JIT cache so session 2 can demonstrate reuse.
    Plan count = PlanBuilder().NodeScan(account).Count().Build();
    (void)db->Execute(count, jit::ExecutionMode::kJit);
    std::printf("session 1: compiled + persisted one query (cache size %llu)\n",
                static_cast<unsigned long long>(db->query_cache()->size()));

    // An in-flight transfer that will never commit:
    auto tx = db->Begin();
    (void)tx->SetNodeProperty(0, balance, PVal::Int(0));
    (void)tx->SetNodeProperty(1, balance, PVal::Int(200));
    (void)*tx->CreateNode(account, {{balance, PVal::Int(777)}});
    std::printf("session 1: transfer in flight (NOT committed)... ");
    // Hard crash: leak the transaction and the database object so no
    // destructor writes a clean-shutdown marker.
    (void)tx.release();
    (void)db_or->release();
    std::printf("CRASH\n");
  }

  // --- Session 2: open + recover -----------------------------------------
  {
    StopWatch w;
    auto db_or = core::GraphDb::Open(options);
    if (!db_or.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   db_or.status().ToString().c_str());
      return 1;
    }
    core::GraphDb* db = db_or->get();
    std::printf("session 2: opened in %.2f ms (recovered_from_crash=%d)\n",
                w.ElapsedMs(), db->recovered_from_crash() ? 1 : 0);

    auto tx = db->Begin();
    auto b0 = tx->GetNodeProperty(0, balance);
    auto b1 = tx->GetNodeProperty(1, balance);
    std::printf("  balances after recovery: acct0=%lld acct1=%lld "
                "(both must be 100)\n",
                static_cast<long long>(b0->AsInt()),
                static_cast<long long>(b1->AsInt()));
    std::printf("  accounts: %llu (the in-flight insert is gone)\n",
                static_cast<unsigned long long>(db->store()->nodes().size()));

    // The record is writable again — the crashed transaction's lock was
    // released during recovery.
    if (Status s = tx->SetNodeProperty(0, balance, PVal::Int(150)); !s.ok()) {
      std::fprintf(stderr, "  unexpected: %s\n", s.ToString().c_str());
      return 1;
    }
    if (!tx->Commit().ok()) return 1;
    std::printf("  re-locked and updated acct0 successfully\n");

    // JIT cache survived the crash: the query links instantly.
    Plan count = PlanBuilder().NodeScan(account).Count().Build();
    jit::ExecStats stats;
    auto r = db->Execute(count, jit::ExecutionMode::kJit, {}, &stats);
    if (!r.ok()) return 1;
    std::printf("  JIT cache hit after crash: %s (count=%lld, "
                "compile_ms=%.2f)\n",
                stats.cache_hit ? "yes" : "no",
                static_cast<long long>(r->rows[0][0].AsInt()),
                stats.compile_ms);
  }
  std::remove(path.c_str());
  std::printf("done.\n");
  return 0;
}
