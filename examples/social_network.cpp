// Social-network workload demo: generates an LDBC-SNB-like graph, runs the
// Interactive Short Read set in all three execution modes (interpreted,
// JIT, adaptive), and a mixed read/update session — the scenario the
// paper's evaluation is built around.
//
//   ./examples/social_network [persons]

#include <cstdio>

#include "core/graph_db.h"
#include "ldbc/queries.h"
#include "util/spin_timer.h"

using namespace poseidon;  // NOLINT(build/namespaces) — example code

int main(int argc, char** argv) {
  uint64_t persons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  std::string path = "/tmp/poseidon_social.pmem";
  std::remove(path.c_str());

  core::GraphDbOptions options;
  options.path = path;
  options.capacity = 2ull << 30;
  auto db_or = core::GraphDb::Create(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "%s\n", db_or.status().ToString().c_str());
    return 1;
  }
  core::GraphDb* db = db_or->get();

  std::printf("generating SNB-like social network (%llu persons)...\n",
              static_cast<unsigned long long>(persons));
  ldbc::SnbConfig cfg;
  cfg.persons = persons;
  StopWatch gen;
  auto ds = ldbc::GenerateSnb(db->txm(), db->store(), cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("  %llu nodes, %llu relationships in %.1f ms\n",
              static_cast<unsigned long long>(ds->total_nodes),
              static_cast<unsigned long long>(ds->total_relationships),
              gen.ElapsedMs());

  if (Status s = ldbc::CreateSnbIndexes(db->indexes(), ds->schema,
                                        index::Placement::kHybrid);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // --- Short reads in all execution modes ------------------------------
  auto queries = ldbc::BuildShortReads(ds->schema, /*use_index=*/true);
  Rng rng(17);
  std::printf("\n%-9s %12s %12s %12s (us, one run each)\n", "query",
              "interpret", "jit", "adaptive");
  for (const auto& q : queries) {
    auto params = ldbc::DrawShortReadParams(*ds, q.name, &rng);
    double times[3];
    jit::ExecutionMode modes[3] = {jit::ExecutionMode::kInterpret,
                                   jit::ExecutionMode::kJit,
                                   jit::ExecutionMode::kAdaptive};
    for (int m = 0; m < 3; ++m) {
      StopWatch w;
      auto r = db->Execute(q.plan, modes[m], params);
      if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      times[m] = w.ElapsedUs();
    }
    std::printf("%-9s %12.1f %12.1f %12.1f\n", q.name.c_str(), times[0],
                times[1], times[2]);
  }
  db->engine()->WaitForBackgroundCompiles();

  // --- A mixed interactive session -------------------------------------
  auto updates = ldbc::BuildUpdates(ds->schema, &db->store()->dict(), true);
  if (!updates.ok()) return 1;
  std::printf("\nmixed session: 100 short reads + 20 updates...\n");
  uint64_t commits = 0, rows = 0;
  StopWatch session;
  for (int i = 0; i < 100; ++i) {
    const auto& q = queries[rng.Uniform(queries.size())];
    auto params = ldbc::DrawShortReadParams(*ds, q.name, &rng);
    auto r = db->Execute(q.plan, jit::ExecutionMode::kJit, params);
    if (r.ok()) rows += r->rows.size();
    if (i % 5 == 0 && i / 5 < 40) {
      const auto& u = (*updates)[rng.Uniform(updates->size())];
      auto uparams = ldbc::DrawUpdateParams(&*ds, u.name, &rng);
      auto tx = db->Begin();
      auto ur = db->ExecuteIn(u.plan, tx.get(), uparams);
      if (ur.ok() && tx->Commit().ok()) ++commits;
    }
  }
  std::printf("  %llu result rows, %llu update commits in %.1f ms "
              "(%llu aborts across session)\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(commits), session.ElapsedMs(),
              static_cast<unsigned long long>(db->txm()->aborts()));

  std::remove(path.c_str());
  std::printf("done.\n");
  return 0;
}
