// Quickstart: create a persistent graph, run transactions, query it with
// the interpreter and the JIT, reopen it, and observe durability.
//
//   ./examples/quickstart [pool-file]

#include <cstdio>

#include "core/graph_db.h"
#include "query/cypher.h"

using poseidon::core::GraphDb;
using poseidon::core::GraphDbOptions;
using poseidon::jit::ExecutionMode;
using poseidon::query::CmpOp;
using poseidon::query::Expr;
using poseidon::query::Plan;
using poseidon::query::PlanBuilder;
using poseidon::query::Value;
using poseidon::storage::PVal;

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/poseidon_quickstart.pmem";
  std::remove(path.c_str());

  GraphDbOptions options;
  options.path = path;  // "" would run in pure DRAM mode
  options.capacity = 256ull << 20;

  auto db_or = GraphDb::Create(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  GraphDb* db = db_or->get();

  // --- Schema strings are dictionary-encoded once ----------------------
  auto person = *db->Code("Person");
  auto name = *db->Code("name");
  auto age = *db->Code("age");
  auto knows = *db->Code("knows");

  // --- Transactional writes (MVTO, snapshot isolation) -----------------
  poseidon::storage::RecordId alice, bob;
  {
    auto tx = db->Begin();
    alice = *tx->CreateNode(
        person, {{name, PVal::String(*db->Code("Alice"))},
                 {age, PVal::Int(34)}});
    bob = *tx->CreateNode(person, {{name, PVal::String(*db->Code("Bob"))},
                                   {age, PVal::Int(29)}});
    auto carol = *tx->CreateNode(
        person, {{name, PVal::String(*db->Code("Carol"))},
                 {age, PVal::Int(41)}});
    (void)*tx->CreateRelationship(alice, bob, knows, {});
    (void)*tx->CreateRelationship(alice, carol, knows, {});
    (void)*tx->CreateRelationship(bob, carol, knows, {});
    if (poseidon::Status s = tx->Commit(); !s.ok()) {
      std::fprintf(stderr, "commit failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("inserted 3 persons, 3 relationships\n");

  // --- Declarative queries ----------------------------------------------
  // MATCH (p:Person)-[:knows]->(f) WHERE p.age > 30 RETURN f.name
  Plan q = PlanBuilder()
               .NodeScan(person)
               .FilterProperty(0, age, CmpOp::kGt,
                               Expr::Literal(Value::Int(30)))
               .Expand(0, poseidon::query::Direction::kOut, knows)
               .Project({Expr::Property(0, name), Expr::Property(2, name)})
               .Build();

  for (auto mode : {ExecutionMode::kInterpret, ExecutionMode::kJit}) {
    auto r = db->Execute(q, mode);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%s results:\n",
                mode == ExecutionMode::kInterpret ? "interpreted" : "JIT");
    for (const auto& row : r->rows) {
      std::printf("  %s knows %s\n",
                  row[0].ToString(&db->store()->dict()).c_str(),
                  row[1].ToString(&db->store()->dict()).c_str());
    }
  }

  // --- The same query, written in Cypher ---------------------------------
  auto cypher = poseidon::query::ParseCypher(
      "MATCH (p:Person)-[:knows]->(f:Person) WHERE p.age > 30 "
      "RETURN p.name, f.name",
      &db->store()->dict());
  if (cypher.ok()) {
    auto r = db->Execute(*cypher, ExecutionMode::kJit);
    std::printf("cypher results (%zu rows), plan:\n%s", r->rows.size(),
                cypher->ToString(&db->store()->dict()).c_str());
  }

  // --- Durability: reopen and read back ---------------------------------
  db_or->reset();
  auto reopened = GraphDb::Open(options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto tx = (*reopened)->Begin();
  auto v = tx->GetNodeProperty(alice, name);
  std::printf("after reopen, node %llu name = %s\n",
              static_cast<unsigned long long>(alice),
              poseidon::query::Value::FromPVal(*v)
                  .ToString(&(*reopened)->store()->dict())
                  .c_str());
  std::remove(path.c_str());
  std::printf("done.\n");
  return 0;
}
