// Fraud-ring detection demo: a financial graph (accounts, devices,
// transfers) where rings of mule accounts share devices. Shows the engine
// on a non-social domain: multi-hop traversals, hash joins, aggregation,
// and concurrent writers racing on hot accounts (MVTO aborts).
//
//   ./examples/fraud_ring

#include <cstdio>
#include <thread>

#include "core/graph_db.h"
#include "util/random.h"

using namespace poseidon;  // NOLINT(build/namespaces) — example code
using query::CmpOp;
using query::Direction;
using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::Value;
using storage::PVal;
using storage::RecordId;

int main() {
  core::GraphDbOptions options;  // DRAM mode: quick demo
  options.capacity = 512ull << 20;
  auto db_or = core::GraphDb::Create(options);
  if (!db_or.ok()) return 1;
  core::GraphDb* db = db_or->get();

  auto account = *db->Code("Account");
  auto device = *db->Code("Device");
  auto transfer = *db->Code("TRANSFER");
  auto uses = *db->Code("USES");
  auto acct_id = *db->Code("id");
  auto amount = *db->Code("amount");
  auto risk = *db->Code("risk");

  // --- Build: 2000 accounts, 300 devices, transfers; plant 5 rings ------
  Rng rng(2024);
  std::vector<RecordId> accounts, devices;
  {
    auto tx = db->Begin();
    for (int i = 0; i < 2000; ++i) {
      accounts.push_back(*tx->CreateNode(
          account, {{acct_id, PVal::Int(i)},
                    {risk, PVal::Int(static_cast<int64_t>(rng.Uniform(10)))}}));
    }
    for (int i = 0; i < 300; ++i) {
      devices.push_back(*tx->CreateNode(device, {{acct_id, PVal::Int(i)}}));
    }
    // Normal traffic: random transfers and device usage.
    for (int i = 0; i < 6000; ++i) {
      RecordId a = accounts[rng.Uniform(accounts.size())];
      RecordId b = accounts[rng.Uniform(accounts.size())];
      if (a == b) continue;
      (void)*tx->CreateRelationship(
          a, b, transfer,
          {{amount, PVal::Int(10 + static_cast<int64_t>(rng.Uniform(990)))}});
    }
    for (RecordId a : accounts) {
      (void)*tx->CreateRelationship(a, devices[rng.Uniform(devices.size())],
                                    uses, {});
    }
    // Fraud rings: cycles of 4 accounts moving big amounts, sharing one
    // device.
    for (int ring = 0; ring < 5; ++ring) {
      RecordId shared = devices[ring];
      RecordId members[4];
      for (auto& m : members) m = accounts[rng.Uniform(accounts.size())];
      for (int k = 0; k < 4; ++k) {
        (void)*tx->CreateRelationship(members[k], members[(k + 1) % 4],
                                      transfer,
                                      {{amount, PVal::Int(9500)}});
        (void)*tx->CreateRelationship(members[k], shared, uses, {});
      }
    }
    if (!tx->Commit().ok()) return 1;
  }
  std::printf("graph: %llu nodes, %llu relationships\n",
              static_cast<unsigned long long>(db->store()->nodes().size()),
              static_cast<unsigned long long>(
                  db->store()->relationships().size()));

  // --- Query 1: large-transfer pairs (scan + filter on rel property) ----
  Plan big = PlanBuilder()
                 .NodeScan(account)
                 .Expand(0, Direction::kOut, transfer)
                 .FilterProperty(1, amount, CmpOp::kGe,
                                 Expr::Literal(Value::Int(9000)))
                 .Count()
                 .Build();
  auto r1 = db->Execute(big, jit::ExecutionMode::kJit);
  if (!r1.ok()) return 1;
  std::printf("high-value transfers (>= 9000): %lld\n",
              static_cast<long long>(r1->rows[0][0].AsInt()));

  // --- Query 2: device-sharing suspects via hash join --------------------
  // Accounts that made a big transfer AND use the same device as another
  // big-transfer account: join big-transfer senders on their device.
  Plan build_side = PlanBuilder()
                        .NodeScan(account)
                        .Expand(0, Direction::kOut, transfer)
                        .FilterProperty(1, amount, CmpOp::kGe,
                                        Expr::Literal(Value::Int(9000)))
                        .Expand(0, Direction::kOut, uses)
                        .Project({Expr::Column(0), Expr::Column(4)})
                        .Build();
  Plan suspects = PlanBuilder()
                      .NodeScan(account)
                      .Expand(0, Direction::kOut, transfer)
                      .FilterProperty(1, amount, CmpOp::kGe,
                                      Expr::Literal(Value::Int(9000)))
                      .Expand(0, Direction::kOut, uses)
                      .Project({Expr::Column(0), Expr::Column(4)})
                      .HashJoin(std::move(build_side), 1, 1)
                      .Count()
                      .Build();
  auto r2 = db->Execute(suspects);
  if (!r2.ok()) {
    std::fprintf(stderr, "%s\n", r2.status().ToString().c_str());
    return 1;
  }
  std::printf("device-sharing suspect pairs: %lld\n",
              static_cast<long long>(r2->rows[0][0].AsInt()));

  // --- Concurrent writers on a hot account: MVTO conflict handling ------
  std::printf("4 writers x 200 updates on one hot account...\n");
  RecordId hot = accounts[0];
  std::atomic<int> committed{0}, aborted{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i) {
        auto tx = db->Begin();
        Status s = tx->SetNodeProperty(hot, risk, PVal::Int(w * 1000 + i));
        if (s.ok()) s = tx->Commit();
        if (s.ok()) {
          ++committed;
        } else {
          ++aborted;  // MVTO conflict: first-locker wins, others abort
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  std::printf("  committed=%d aborted=%d (aborts are expected under "
              "write-write conflicts)\n",
              committed.load(), aborted.load());

  auto check = db->Begin();
  auto final_risk = check->GetNodeProperty(hot, risk);
  std::printf("  final risk value: %lld\n",
              static_cast<long long>(final_risk->AsInt()));
  std::printf("done.\n");
  return 0;
}
