#!/usr/bin/env python3
"""Lint: raw stores through pool-derived pointers.

Every store into pmem::Pool memory from the storage/tx/index layers must go
through the sanctioned helpers in src/pmem/pptr.h (PsanStore, PsanAtomicStore,
PsanStoreCopy, PsanMarkRange, PsanPublish) so the persist-order sanitizer can
track it.  Pool::RepairStore is sanctioned too: it is the media-fault repair
write (atomic copy + PSAN mark + persist + reseal in one call).  This lint flags assignments, atomic stores, and bulk copies whose
destination is a variable initialized from one of the pool raw-pointer
producers:

    pool->ToPtr<T>(off)        table.AtForWrite(id)      SlotPtr(id)
    meta()                     dict->meta()

Suppressions:
  * a ``psan`` mention on the flagged line or the line directly above it
    (e.g. ``// psan: volatile lock word``) silences that site;
  * a ``psan`` mention on the line that *initializes* a tracked variable
    (or the line above it) exempts the variable entirely — used for B+tree
    nodes whose whole range is marked in PersistLeaf/PersistInner;
  * calls to the Psan* helpers themselves are never flagged.

Exit status: 0 when clean, 1 when any finding is reported.

Optionally runs clang-tidy over src/pmem and src/tx when --clang-tidy is
passed and the binary exists (the repo container does not ship clang-tidy;
the CMake `lint` target only adds it when found).
"""

import argparse
import os
import re
import subprocess
import sys

SCAN_DIRS = ("src/storage", "src/tx", "src/index")
CPP_EXT = (".cc", ".h")

# Raw-pointer producers whose results alias pool memory.
PRODUCER_RE = re.compile(
    r"\b(?:ToPtr\s*<|AtForWrite\s*\(|SlotPtr\s*\(|meta\s*\(\s*\))"
)

# `Type* var = ... producer ...;` or `auto* var = ... producer ...;`
# (possibly split over continuation lines that we join first).
DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:[A-Za-z_][\w:<>]*\s*\*|auto\s*\*)\s*"
    r"(?P<var>[A-Za-z_]\w*)\s*=\s*(?P<init>.*)$"
)

SANCTIONED_RE = re.compile(
    r"\bPsan(?:Store|AtomicStore|StoreCopy|MarkRange|Publish)|\bRepairStore\b"
)

SUPPRESS_RE = re.compile(r"psan", re.IGNORECASE)


def join_statements(lines):
    """Yields (first_lineno, statement) with multi-line statements joined.

    A statement ends at ';' or '{' or '}' at paren depth zero.  Good enough
    for lint purposes; strings/comments are stripped before joining.
    """
    buf = []
    start = None
    depth = 0
    for lineno, line in enumerate(lines, 1):
        code = strip_comments(line)
        if start is None:
            if not code.strip():
                continue
            start = lineno
        buf.append(code)
        depth += code.count("(") - code.count(")")
        if depth <= 0 and re.search(r"[;{}]\s*$", code.strip()):
            yield start, " ".join(s.strip() for s in buf)
            buf, start, depth = [], None, 0
    if buf:
        yield start, " ".join(s.strip() for s in buf)


def strip_comments(line):
    line = re.sub(r"//.*$", "", line)
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)


def find_tracked_vars(lines):
    """Variables initialized from a pool raw-pointer producer, minus the
    ones exempted by a psan annotation on/above their declaration."""
    tracked = {}
    for lineno, stmt in join_statements(lines):
        m = DECL_RE.match(stmt)
        if m is None or not PRODUCER_RE.search(m.group("init")):
            continue
        var = m.group("var")
        window = lines[max(0, lineno - 2) : lineno]
        if any(SUPPRESS_RE.search(w) for w in window):
            tracked.pop(var, None)  # annotated redeclaration wins
            continue
        tracked[var] = lineno
    return tracked


def store_patterns(var):
    v = re.escape(var)
    return [
        # var->field = ..., var[i] = ..., (*var).field = ...  (not ==)
        re.compile(
            r"(?:\b" + v + r"\s*->\s*[\w.\[\]]+|\b" + v +
            r"\s*\[[^\]]*\]|\(\s*\*\s*" + v + r"\s*\)\s*\.\s*[\w.\[\]]+)"
            r"\s*(?:\+|-|\||&|\^)?=(?!=)"
        ),
        # memcpy/memmove/memset/AtomicStoreCopy with var-derived destination
        re.compile(
            r"\b(?:memcpy|memmove|memset|AtomicStoreCopy)\s*\(\s*"
            r"(?:[\w:&.\s]*\b" + v + r"\b)"
        ),
        # atomic_ref(...var...).store( / AtomicTs(var->...).store(
        re.compile(r"\b" + v + r"\b[^;]*\.\s*store\s*\("),
    ]


def lint_file(path):
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()
    tracked = find_tracked_vars(raw_lines)
    if not tracked:
        return []
    findings = []
    pats = {var: store_patterns(var) for var in tracked}
    for lineno, stmt in join_statements(raw_lines):
        if SANCTIONED_RE.search(stmt):
            continue
        window = raw_lines[max(0, lineno - 2) : lineno]
        if any(SUPPRESS_RE.search(w) for w in window):
            continue
        for var, patterns in pats.items():
            if tracked[var] == lineno:
                continue  # the declaration itself
            if any(p.search(stmt) for p in patterns):
                findings.append(
                    (path, lineno,
                     f"raw store through pool-derived pointer '{var}' "
                     f"(declared at line {tracked[var]}); use PsanStore/"
                     f"PsanPublish or annotate with // psan: <reason>")
                )
                break
    return findings


def run_clang_tidy(binary, compile_commands):
    """Best-effort clang-tidy pass over src/pmem and src/tx."""
    files = []
    for d in ("src/pmem", "src/tx"):
        for name in sorted(os.listdir(d)):
            if name.endswith(".cc"):
                files.append(os.path.join(d, name))
    cmd = [binary, "-p", os.path.dirname(compile_commands), "--quiet"] + files
    proc = subprocess.run(cmd, capture_output=True, text=True)
    output = (proc.stdout or "") + (proc.stderr or "")
    errors = [ln for ln in output.splitlines() if ": error:" in ln or ": warning:" in ln]
    for ln in errors:
        print(ln)
    return 1 if errors else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", default="",
                        help="path to clang-tidy (optional)")
    parser.add_argument("--compile-commands", default="",
                        help="path to compile_commands.json (for clang-tidy)")
    args = parser.parse_args()

    findings = []
    for root_dir in SCAN_DIRS:
        for dirpath, _, names in os.walk(root_dir):
            for name in sorted(names):
                if name.endswith(CPP_EXT):
                    findings.extend(lint_file(os.path.join(dirpath, name)))

    for path, lineno, msg in findings:
        print(f"{path}:{lineno}: {msg}")

    rc = 1 if findings else 0
    if not findings:
        print("lint_pptr_stores: clean")

    if args.clang_tidy and os.path.exists(args.clang_tidy):
        if args.compile_commands and os.path.exists(args.compile_commands):
            rc |= run_clang_tidy(args.clang_tidy, args.compile_commands)
        else:
            print("lint_pptr_stores: skipping clang-tidy "
                  "(no compile_commands.json; configure with CMake first)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
