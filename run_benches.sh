#!/bin/bash
export POSEIDON_BENCH_PERSONS=${POSEIDON_BENCH_PERSONS:-1000}
export POSEIDON_BENCH_RUNS=${POSEIDON_BENCH_RUNS:-50}
export POSEIDON_BENCH_THREADS=${POSEIDON_BENCH_THREADS:-2}
out=${1:-/root/repo/bench_output.txt}
: > "$out"
for b in /root/repo/build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $(basename $b) =====" | tee -a "$out"
  timeout 1200 "$b" >> "$out" 2>&1 || echo "FAILED: $b" | tee -a "$out"
  echo >> "$out"
done
echo "ALL BENCHES DONE"
