#!/bin/bash
# Runs every bench binary. Human-readable output accumulates in
# bench_output.txt; machine-readable results land next to it as
# BENCH_<name>.json:
#   * figure benches (fig5/fig6/fig7/fig8/fig9/fig10) write flat
#     {query -> median ns} maps through bench_common.h's BenchJson
#     (driven by POSEIDON_BENCH_JSON_DIR),
#   * bench_pmem_micro writes google-benchmark's JSON schema via
#     --benchmark_out (includes the batched-scan prefetch on/off entries).
#
# `run_benches.sh --check` instead runs the static lint, builds the
# sanitizer configurations, and runs the sensitive test subsets:
#   * tools/lint_pptr_stores.py: raw stores through pool-derived pointers
#     outside the sanctioned Psan* helpers (plus clang-tidy when installed);
#   * build-tsan/ (POSEIDON_TSAN): the race-sensitive suites (ctest -L tsan)
#     — MVTO, commit pipeline, concurrency — plus the read-path scalability
#     suite (ctest -L readpath): snapshot publication, rts coalescing and
#     sharded tx-slot registration under concurrent readers and writers, and
#     the overload-governance suite (ctest -L overload): cross-thread
#     cancellation, admission-gate sheds and watermark denials race-checked;
#   * build-asan/ (POSEIDON_ASAN, ASan+UBSan): the fault-injection suites
#     (ctest -L fault) — crash-point exploration, corrupt-segment recovery,
#     diskgraph fault paths — where a missed bounds check on crafted-garbage
#     input becomes a memory error — plus the online-scrubbing suite
#     (ctest -L scrub): randomized media faults, repair and quarantine,
#     where repairs that dereference corrupt offsets become wild accesses;
#   * build-psan/ (POSEIDON_PSAN): the persist-order sanitizer suites
#     (ctest -L psan) — seeded-bug detection plus the commit pipeline and
#     crash explorer re-run with durability-ordering checks armed.
# Every stage fails the check on violations (set -e).

if [ "${1:-}" = "--check" ]; then
  set -e
  (cd /root/repo && python3 tools/lint_pptr_stores.py)
  echo "LINT CHECK DONE"
  cmake -B /root/repo/build-tsan -S /root/repo -DPOSEIDON_TSAN=ON
  cmake --build /root/repo/build-tsan -j"$(nproc)" --target \
      concurrency_test mvto_test commit_pipeline_test tx_edge_test \
      adjacency_cache_test readpath_scaling_test overload_test
  ctest --test-dir /root/repo/build-tsan -L tsan --output-on-failure
  ctest --test-dir /root/repo/build-tsan -L readpath --output-on-failure
  ctest --test-dir /root/repo/build-tsan -L overload --output-on-failure
  echo "TSAN CHECK DONE"
  # fig11 smoke: a ~2 s closed-loop run of the throughput bench on the
  # regular build. Catches read-path regressions (snapshot publication
  # stalls, fallback storms) that unit tests are too short to surface;
  # PSAN violation accounting is asserted inside the bench itself.
  cmake --build /root/repo/build -j"$(nproc)" --target bench_fig11_throughput
  POSEIDON_BENCH_FIG11_MS=100 POSEIDON_BENCH_FIG11_ABLATE_MS=150 \
  POSEIDON_BENCH_FIG11_THREADS=1,4 POSEIDON_BENCH_FIG11_ABLATE_THREADS=4 \
  POSEIDON_BENCH_FIG11_MODES=aot POSEIDON_BENCH_JSON_DIR="" \
      timeout 120 /root/repo/build/bench/bench_fig11_throughput
  echo "FIG11 SMOKE DONE"
  cmake -B /root/repo/build-asan -S /root/repo -DPOSEIDON_ASAN=ON
  cmake --build /root/repo/build-asan -j"$(nproc)" --target \
      crash_explorer_test fault_injection_test crash_property_test \
      media_fault_test overload_test
  ctest --test-dir /root/repo/build-asan -L fault --output-on-failure
  ctest --test-dir /root/repo/build-asan -L scrub --output-on-failure
  ctest --test-dir /root/repo/build-asan -L overload --output-on-failure
  echo "ASAN FAULT CHECK DONE"
  cmake -B /root/repo/build-psan -S /root/repo -DPOSEIDON_PSAN=ON
  cmake --build /root/repo/build-psan -j"$(nproc)" --target \
      psan_test latency_model_test commit_pipeline_test crash_explorer_test
  ctest --test-dir /root/repo/build-psan -L psan --output-on-failure
  echo "PSAN CHECK DONE"
  exit 0
fi

export POSEIDON_BENCH_PERSONS=${POSEIDON_BENCH_PERSONS:-1000}
export POSEIDON_BENCH_RUNS=${POSEIDON_BENCH_RUNS:-50}
export POSEIDON_BENCH_THREADS=${POSEIDON_BENCH_THREADS:-2}
out=${1:-/root/repo/bench_output.txt}
json_dir=${2:-$(dirname "$out")}
export POSEIDON_BENCH_JSON_DIR="$json_dir"
: > "$out"
for b in /root/repo/build/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "===== $name =====" | tee -a "$out"
  if [ "$name" = bench_pmem_micro ]; then
    timeout 1200 "$b" --benchmark_out_format=json \
        --benchmark_out="$json_dir/BENCH_pmem_micro.json" >> "$out" 2>&1 \
        || echo "FAILED: $b" | tee -a "$out"
  else
    timeout 1200 "$b" >> "$out" 2>&1 || echo "FAILED: $b" | tee -a "$out"
  fi
  echo >> "$out"
done
echo "ALL BENCHES DONE"
