// Reproduces Fig. 6 (paper §7.3): LDBC-SNB Interactive Update execution +
// commit times with index support, for PMem-i, DRAM-i, and DISK-i, on hot
// data (avg of N runs) and cold data (first run after cache drop / fresh
// caches).
//
// Expected shape (paper): the PMem engine performs inserts/updates at
// near-DRAM latency and beats the disk baseline by an order of magnitude
// (the disk commit pays WAL fsync); PMem cold ~= hot while DISK cold blows
// up by the miss latency.

#include "bench/bench_common.h"
#include "diskgraph/snb_disk.h"

namespace poseidon::bench {
namespace {

using jit::ExecutionMode;

struct Timing {
  double execute_us = 0;
  double commit_us = 0;
};

int Main() {
  uint64_t runs = BenchRuns();
  std::printf("=== Fig. 6: Interactive Updates, execute + commit (us) ===\n");
  std::printf("scale: %llu persons, %llu hot runs\n\n",
              static_cast<unsigned long long>(BenchPersons()),
              static_cast<unsigned long long>(runs));

  BENCH_ASSIGN(auto pmem_env, MakeEnv(true, "fig6", true));
  BENCH_ASSIGN(auto dram_env, MakeEnv(false, "fig6d", true));
  diskgraph::DiskGraphOptions disk_options;
  disk_options.dir = "/tmp/poseidon_bench_fig6_disk";
  std::filesystem::remove_all(disk_options.dir);
  BENCH_ASSIGN(auto disk,
               diskgraph::LoadDiskSnbFromStore(pmem_env->db->store(),
                                               pmem_env->db->txm(),
                                               pmem_env->ds, disk_options));
  // The disk baseline draws parameters from its own dataset copy so the
  // PMem/DRAM runs' fresh-id counters cannot leak ids the disk store never
  // created.
  ldbc::SnbDataset disk_ds = pmem_env->ds;

  BENCH_ASSIGN(auto pmem_queries,
               ldbc::BuildUpdates(pmem_env->ds.schema,
                                  &pmem_env->db->store()->dict(), true));
  BENCH_ASSIGN(auto dram_queries,
               ldbc::BuildUpdates(dram_env->ds.schema,
                                  &dram_env->db->store()->dict(), true));

  std::printf("%-5s | %9s %9s | %9s %9s | %9s %9s | %12s %12s\n", "query",
              "PMem-ex", "PMem-cm", "DRAM-ex", "DRAM-cm", "DISK-ex",
              "DISK-cm", "PMem-cold", "DISK-cold");

  Rng rng(777);
  for (size_t q = 0; q < pmem_queries.size(); ++q) {
    const std::string& name = pmem_queries[q].name;

    auto run_engine = [&](BenchEnv* env, const query::Plan& plan,
                          uint64_t n, Timing* out) {
      double exec_total = 0, commit_total = 0;
      for (uint64_t i = 0; i < n; ++i) {
        auto params = ldbc::DrawUpdateParams(&env->ds, name, &rng);
        auto tx = env->db->Begin();
        StopWatch w;
        auto r = env->db->ExecuteIn(plan, tx.get(), params,
                                    ExecutionMode::kInterpret);
        exec_total += w.ElapsedUs();
        if (!r.ok()) Die(r.status(), name.c_str());
        w.Reset();
        BENCH_CHECK(tx->Commit());
        commit_total += w.ElapsedUs();
      }
      out->execute_us = exec_total / static_cast<double>(n);
      out->commit_us = commit_total / static_cast<double>(n);
    };

    auto run_disk = [&](uint64_t n, Timing* out) {
      double exec_total = 0, commit_total = 0;
      for (uint64_t i = 0; i < n; ++i) {
        // Fresh ids come from disk_ds's own counters, so every id the
        // draws can later reference exists in the disk store.
        auto params = ldbc::DrawUpdateParams(&disk_ds, name, &rng);
        std::vector<int64_t> raw;
        for (const auto& v : params) raw.push_back(v.AsInt());
        StopWatch w;
        BENCH_CHECK(diskgraph::RunDiskUpdate(disk.get(), name, raw));
        exec_total += w.ElapsedUs();
        w.Reset();
        BENCH_CHECK(disk->graph->Commit());
        commit_total += w.ElapsedUs();
      }
      out->execute_us = exec_total / static_cast<double>(n);
      out->commit_us = commit_total / static_cast<double>(n);
    };

    // Cold: PMem = first run on a freshly opened engine state (our latency
    // model is cache-oblivious, so cold ~= hot by construction — the
    // paper's "constant answer times both for cold and hot data"); DISK =
    // first run after dropping the buffer pools.
    Timing pmem_cold;
    run_engine(pmem_env.get(), pmem_queries[q].plan, 1, &pmem_cold);
    BENCH_CHECK(disk->graph->DropCaches());
    Timing disk_cold;
    run_disk(1, &disk_cold);

    Timing pmem_hot, dram_hot, disk_hot;
    run_engine(pmem_env.get(), pmem_queries[q].plan, runs, &pmem_hot);
    run_engine(dram_env.get(), dram_queries[q].plan, runs, &dram_hot);
    run_disk(runs, &disk_hot);

    std::printf(
        "%-5s | %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f | %12.1f %12.1f\n",
        name.c_str(), pmem_hot.execute_us, pmem_hot.commit_us,
        dram_hot.execute_us, dram_hot.commit_us, disk_hot.execute_us,
        disk_hot.commit_us, pmem_cold.execute_us + pmem_cold.commit_us,
        disk_cold.execute_us + disk_cold.commit_us);
  }

  std::printf(
      "\nexpected shape: PMem ~ DRAM (marginal MVTO/persist overhead); DISK "
      "commit >> PMem commit (WAL fsync); DISK-cold >> PMem-cold.\n");
  std::filesystem::remove_all(disk_options.dir);
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
