// Reproduces Fig. 6 (paper §7.3): LDBC-SNB Interactive Update execution +
// commit times with index support, for PMem-i, DRAM-i, and DISK-i, on hot
// data (avg of N runs) and cold data (first run after cache drop / fresh
// caches).
//
// Expected shape (paper): the PMem engine performs inserts/updates at
// near-DRAM latency and beats the disk baseline by an order of magnitude
// (the disk commit pays WAL fsync); PMem cold ~= hot while DISK cold blows
// up by the miss latency.

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "diskgraph/snb_disk.h"

namespace poseidon::bench {
namespace {

using jit::ExecutionMode;
using storage::DictCode;
using storage::PVal;
using storage::RecordId;

struct Timing {
  double execute_us = 0;
  double commit_us = 0;
};

// --- Writer-thread scaling + commit-pipeline ablation ----------------------
//
// IU-style update transactions (insert a person-like node with properties
// plus a knows-like edge) on emulated PMem, swept over writer threads
// (1/2/4/8) with the parallel commit pipeline (segments + flush coalescing +
// group commit + background GC) on vs the serialized seed baseline off.
// Emits per-commit wall-clock ns per configuration into the fig6 JSON.

struct ScalingResult {
  double per_commit_ns = 0;
  double commits_per_sec = 0;
};

ScalingResult RunUpdateScaling(bool pipeline_on, int writers,
                               uint64_t total_txs) {
  core::GraphDbOptions options;
  options.capacity = 1ull << 30;
  options.path = "/tmp/poseidon_bench_fig6_scale_" +
                 std::to_string(::getpid()) + "_" +
                 (pipeline_on ? std::string("on") : std::string("off")) + "_" +
                 std::to_string(writers) + ".pmem";
  std::filesystem::remove(options.path);
  options.enable_query_cache = false;
  options.commit_pipeline = pipeline_on ? 1 : 0;
  BENCH_ASSIGN(auto db, core::GraphDb::Create(options));
  auto* txm = db->txm();
  auto* store = db->store();
  BENCH_ASSIGN(DictCode post, store->Code("Post"));
  BENCH_ASSIGN(DictCode has_creator, store->Code("hasCreator"));
  BENCH_ASSIGN(DictCode reply_of, store->Code("replyOf"));
  BENCH_ASSIGN(DictCode content_key, store->Code("content"));
  BENCH_ASSIGN(DictCode date_key, store->Code("creationDate"));
  BENCH_ASSIGN(DictCode ip_key, store->Code("locationIP"));

  // One anchor node per writer: every edge insert locks only thread-local
  // records, so the sweep measures commit-path cost, not MVTO conflicts.
  std::vector<RecordId> anchors(writers);
  {
    auto tx = txm->Begin();
    for (int t = 0; t < writers; ++t) {
      auto id = tx->CreateNode(post, {{content_key, PVal::Int(t)}});
      if (!id.ok()) Die(id.status(), "anchor");
      anchors[t] = *id;
    }
    BENCH_CHECK(tx->Commit());
  }

  uint64_t per_writer = std::max<uint64_t>(1, total_txs / writers);
  uint64_t trials = std::max<uint64_t>(1, EnvU64("POSEIDON_BENCH_TRIALS", 3));
  std::vector<double> per_commit_samples;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    std::atomic<bool> go{false};
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < writers; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        // IU6/IU7-style: add a post (three properties) linked to its
        // creator (anchor) and to the writer's previous post.
        RecordId prev = anchors[t];
        for (uint64_t i = 0; i < per_writer; ++i) {
          auto tx = txm->Begin();
          auto id = tx->CreateNode(
              post, {{content_key, PVal::Int(static_cast<int64_t>(i))},
                     {date_key, PVal::Int(static_cast<int64_t>(i) * 86400)},
                     {ip_key, PVal::Int(static_cast<int64_t>(t))}});
          bool ok =
              id.ok() &&
              tx->CreateRelationship(*id, anchors[t], has_creator, {}).ok() &&
              tx->CreateRelationship(*id, prev, reply_of, {}).ok() &&
              tx->Commit().ok();
          if (!ok) {
            failures.fetch_add(1, std::memory_order_relaxed);
          } else {
            prev = *id;
          }
        }
      });
    }
    StopWatch w;
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    double elapsed_ns = w.ElapsedNs();
    if (failures.load() != 0) {
      Die(Status::Internal(std::to_string(failures.load()) +
                           " commits failed"),
          "update scaling");
    }
    uint64_t commits = per_writer * static_cast<uint64_t>(writers);
    per_commit_samples.push_back(elapsed_ns / static_cast<double>(commits));
  }
  std::sort(per_commit_samples.begin(), per_commit_samples.end());
  ScalingResult out;
  out.per_commit_ns = per_commit_samples[per_commit_samples.size() / 2];
  out.commits_per_sec = 1e9 / out.per_commit_ns;
  db.reset();
  std::filesystem::remove(options.path);
  return out;
}

void RunScalingAblation(BenchJson* json) {
  std::printf(
      "\n=== IU commit scaling: pipeline (segments+coalescing+group commit"
      "+bg GC) vs serialized baseline ===\n");
  uint64_t total_txs = EnvU64("POSEIDON_BENCH_UPDATE_TXS", 4000);
  std::printf("%-8s | %14s %14s | %14s %14s | %7s\n", "writers",
              "on commits/s", "on ns/commit", "off commits/s", "off ns/commit",
              "speedup");
  for (int writers : {1, 2, 4, 8}) {
    ScalingResult on = RunUpdateScaling(true, writers, total_txs);
    ScalingResult off = RunUpdateScaling(false, writers, total_txs);
    double speedup = off.per_commit_ns / on.per_commit_ns;
    std::printf("%-8d | %14.0f %14.1f | %14.0f %14.1f | %6.2fx\n", writers,
                on.commits_per_sec, on.per_commit_ns, off.commits_per_sec,
                off.per_commit_ns, speedup);
    std::string tag = "iu_commit_w" + std::to_string(writers);
    json->Add(tag + "_pipeline_on", on.per_commit_ns);
    json->Add(tag + "_pipeline_off", off.per_commit_ns);
  }
  std::printf(
      "expected shape: >= 1.5x at 4 writers — the serialized baseline "
      "flatlines while segments + group commit keep scaling.\n");
}

int Main() {
  uint64_t runs = BenchRuns();
  std::printf("=== Fig. 6: Interactive Updates, execute + commit (us) ===\n");
  std::printf("scale: %llu persons, %llu hot runs\n\n",
              static_cast<unsigned long long>(BenchPersons()),
              static_cast<unsigned long long>(runs));

  BENCH_ASSIGN(auto pmem_env, MakeEnv(true, "fig6", true));
  BENCH_ASSIGN(auto dram_env, MakeEnv(false, "fig6d", true));
  diskgraph::DiskGraphOptions disk_options;
  disk_options.dir = "/tmp/poseidon_bench_fig6_disk";
  std::filesystem::remove_all(disk_options.dir);
  BENCH_ASSIGN(auto disk,
               diskgraph::LoadDiskSnbFromStore(pmem_env->db->store(),
                                               pmem_env->db->txm(),
                                               pmem_env->ds, disk_options));
  // The disk baseline draws parameters from its own dataset copy so the
  // PMem/DRAM runs' fresh-id counters cannot leak ids the disk store never
  // created.
  ldbc::SnbDataset disk_ds = pmem_env->ds;

  BENCH_ASSIGN(auto pmem_queries,
               ldbc::BuildUpdates(pmem_env->ds.schema,
                                  &pmem_env->db->store()->dict(), true));
  BENCH_ASSIGN(auto dram_queries,
               ldbc::BuildUpdates(dram_env->ds.schema,
                                  &dram_env->db->store()->dict(), true));

  std::printf("%-5s | %9s %9s | %9s %9s | %9s %9s | %12s %12s\n", "query",
              "PMem-ex", "PMem-cm", "DRAM-ex", "DRAM-cm", "DISK-ex",
              "DISK-cm", "PMem-cold", "DISK-cold");

  Rng rng(777);
  for (size_t q = 0; q < pmem_queries.size(); ++q) {
    const std::string& name = pmem_queries[q].name;

    auto run_engine = [&](BenchEnv* env, const query::Plan& plan,
                          uint64_t n, Timing* out) {
      double exec_total = 0, commit_total = 0;
      for (uint64_t i = 0; i < n; ++i) {
        auto params = ldbc::DrawUpdateParams(&env->ds, name, &rng);
        auto tx = env->db->Begin();
        StopWatch w;
        auto r = env->db->ExecuteIn(plan, tx.get(), params,
                                    ExecutionMode::kInterpret);
        exec_total += w.ElapsedUs();
        if (!r.ok()) Die(r.status(), name.c_str());
        w.Reset();
        BENCH_CHECK(tx->Commit());
        commit_total += w.ElapsedUs();
      }
      out->execute_us = exec_total / static_cast<double>(n);
      out->commit_us = commit_total / static_cast<double>(n);
    };

    auto run_disk = [&](uint64_t n, Timing* out) {
      double exec_total = 0, commit_total = 0;
      for (uint64_t i = 0; i < n; ++i) {
        // Fresh ids come from disk_ds's own counters, so every id the
        // draws can later reference exists in the disk store.
        auto params = ldbc::DrawUpdateParams(&disk_ds, name, &rng);
        std::vector<int64_t> raw;
        for (const auto& v : params) raw.push_back(v.AsInt());
        StopWatch w;
        BENCH_CHECK(diskgraph::RunDiskUpdate(disk.get(), name, raw));
        exec_total += w.ElapsedUs();
        w.Reset();
        BENCH_CHECK(disk->graph->Commit());
        commit_total += w.ElapsedUs();
      }
      out->execute_us = exec_total / static_cast<double>(n);
      out->commit_us = commit_total / static_cast<double>(n);
    };

    // Cold: PMem = first run on a freshly opened engine state (our latency
    // model is cache-oblivious, so cold ~= hot by construction — the
    // paper's "constant answer times both for cold and hot data"); DISK =
    // first run after dropping the buffer pools.
    Timing pmem_cold;
    run_engine(pmem_env.get(), pmem_queries[q].plan, 1, &pmem_cold);
    BENCH_CHECK(disk->graph->DropCaches());
    Timing disk_cold;
    run_disk(1, &disk_cold);

    Timing pmem_hot, dram_hot, disk_hot;
    run_engine(pmem_env.get(), pmem_queries[q].plan, runs, &pmem_hot);
    run_engine(dram_env.get(), dram_queries[q].plan, runs, &dram_hot);
    run_disk(runs, &disk_hot);

    std::printf(
        "%-5s | %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f | %12.1f %12.1f\n",
        name.c_str(), pmem_hot.execute_us, pmem_hot.commit_us,
        dram_hot.execute_us, dram_hot.commit_us, disk_hot.execute_us,
        disk_hot.commit_us, pmem_cold.execute_us + pmem_cold.commit_us,
        disk_cold.execute_us + disk_cold.commit_us);
  }

  std::printf(
      "\nexpected shape: PMem ~ DRAM (marginal MVTO/persist overhead); DISK "
      "commit >> PMem commit (WAL fsync); DISK-cold >> PMem-cold.\n");
  std::filesystem::remove_all(disk_options.dir);

  BenchJson json("fig6_updates");
  RunScalingAblation(&json);
  json.Write();
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
