// Microbenchmarks backing §3 of the paper (characteristics C1–C3, C5, C6):
// measured on the emulated-PMem substrate so the injected model's shape can
// be validated against the published Optane numbers:
//   C1  PMem random/sequential reads ~3x slower, lower bandwidth than DRAM
//   C2  persistent writes slower than DRAM writes (flush + fence)
//   C3  reads at 256 B block granularity beat sub-block random access
//   C5  pool allocations cost more than DRAM malloc
//   C6  dereferencing 16-byte persistent pointers costs more than using
//       8-byte offsets (registry lookup per dereference)

#include <benchmark/benchmark.h>

#include <cstring>

#include "pmem/pool.h"
#include "pmem/pptr.h"
#include "storage/chunked_table.h"
#include "tx/transaction.h"
#include "util/random.h"

namespace {

using poseidon::Rng;
using poseidon::pmem::kPmemBlockSize;
using poseidon::pmem::LatencyModel;
using poseidon::pmem::Offset;
using poseidon::pmem::Pool;
using poseidon::pmem::PoolOptions;
using poseidon::pmem::PoolRegistry;
using poseidon::pmem::PPtr;
using poseidon::storage::ChunkedTable;
using poseidon::storage::RecordId;
using poseidon::storage::ScanOptions;

constexpr uint64_t kRegionBytes = 64ull << 20;

std::unique_ptr<Pool> MakeLatencyPool(bool emulate_pmem) {
  PoolOptions options;
  options.mode = emulate_pmem ? poseidon::pmem::PoolMode::kPmem
                              : poseidon::pmem::PoolMode::kDram;
  options.capacity = kRegionBytes + (16ull << 20);
  options.has_latency_override = true;
  options.latency_override =
      emulate_pmem ? LatencyModel::EmulatedPmem() : LatencyModel::Dram();
  static int counter = 0;
  std::string path = "/tmp/poseidon_micro_" + std::to_string(::getpid()) +
                     "_" + std::to_string(counter++) + ".pmem";
  std::remove(path.c_str());
  auto pool = emulate_pmem ? Pool::Create(path, options)
                           : Pool::CreateVolatile(options.capacity);
  if (!pool.ok()) std::abort();
  if (emulate_pmem) std::remove(path.c_str());  // unlink; mapping stays
  return std::move(*pool);
}

// --- C1: random record reads ------------------------------------------------

void BM_RandomRead(benchmark::State& state, bool pmem) {
  auto pool = MakeLatencyPool(pmem);
  auto region = pool->Allocate(kRegionBytes, 256);
  char* base = pool->ToPtr<char>(*region);
  std::memset(base, 1, kRegionBytes);
  Rng rng(7);
  uint64_t records = kRegionBytes / 64;
  uint64_t sink = 0;
  for (auto _ : state) {
    char* p = base + rng.Uniform(records) * 64;
    pool->TouchRead(p, 64);
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    sink += v;
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(int64_t(state.iterations()) * 64);
}
BENCHMARK_CAPTURE(BM_RandomRead, dram, false);
BENCHMARK_CAPTURE(BM_RandomRead, pmem, true);

// --- C3: sub-block vs whole-block access --------------------------------

void BM_BlockRead(benchmark::State& state, uint64_t chunk) {
  auto pool = MakeLatencyPool(true);
  auto region = pool->Allocate(kRegionBytes, 256);
  char* base = pool->ToPtr<char>(*region);
  std::memset(base, 1, kRegionBytes);
  Rng rng(9);
  uint64_t blocks = kRegionBytes / kPmemBlockSize;
  char buf[512];
  for (auto _ : state) {
    // Read two 256 B blocks in `chunk`-byte pieces, INTERLEAVED, so the
    // DCPMM block buffer cannot coalesce the sub-block accesses: small
    // chunks then pay the full block latency repeatedly (C3), while
    // block-sized accesses pay it once per block.
    char* block_a = base + rng.Uniform(blocks) * kPmemBlockSize;
    char* block_b = base + rng.Uniform(blocks) * kPmemBlockSize;
    for (uint64_t off = 0; off < kPmemBlockSize; off += chunk) {
      pool->TouchRead(block_a + off, chunk);
      std::memcpy(buf + off, block_a + off, chunk);
      pool->TouchRead(block_b + off, chunk);
      std::memcpy(buf + 256 + off, block_b + off, chunk);
    }
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * 2 * kPmemBlockSize);
}
BENCHMARK_CAPTURE(BM_BlockRead, whole_256B, 256);
BENCHMARK_CAPTURE(BM_BlockRead, pieces_64B, 64);

// --- Batched table scan: occupancy-word skip + software prefetch ----------
// Scan throughput of the chunked record table on emulated PMem:
//   foreach           — classic per-slot loop (occupancy probe + read)
//   batch_noprefetch  — ScanBatch kernel, word-level skip, no prefetch
//   batch_prefetch    — ScanBatch + prefetch-ahead (distance 4): the modeled
//                       block fill overlaps record processing
// The dense variant fills every slot; the sparse variant occupies every
// 64th slot so whole-word skipping dominates.

struct ScanRecord {
  uint64_t payload[8];  // 64 B: four records per 256 B PMem block
};

void BM_TableScan(benchmark::State& state, int mode, bool sparse) {
  auto pool = MakeLatencyPool(true);
  auto table_r = ChunkedTable<ScanRecord>::Create(pool.get());
  if (!table_r.ok()) std::abort();
  auto table = std::move(*table_r);
  const uint64_t kSlots = 32 << 10;
  ScanRecord rec{};
  uint64_t live = 0;
  for (uint64_t i = 0; i < kSlots; ++i) {
    rec.payload[0] = i;
    auto id = table->Insert(rec);
    if (!id.ok()) std::abort();
    ++live;
  }
  if (sparse) {  // keep every 64th record: bitmap words with a single bit
    for (uint64_t i = 0; i < kSlots; ++i) {
      if (i % 64 == 0) continue;
      if (!table->Delete(i).ok()) std::abort();
      --live;
    }
  }
  ScanOptions opts;
  opts.prefetch_distance = mode == 2 ? 4 : 0;
  uint64_t sink = 0;
  for (auto _ : state) {
    auto consume = [&](RecordId, const ScanRecord& r) {
      sink += r.payload[0];
    };
    if (mode == 0) {
      table->ForEach(consume);
    } else {
      table->ForEachBatch(consume, opts);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(live));
}
BENCHMARK_CAPTURE(BM_TableScan, dense_foreach, 0, false);
BENCHMARK_CAPTURE(BM_TableScan, dense_batch_noprefetch, 1, false);
BENCHMARK_CAPTURE(BM_TableScan, dense_batch_prefetch, 2, false);
BENCHMARK_CAPTURE(BM_TableScan, sparse_foreach, 0, true);
BENCHMARK_CAPTURE(BM_TableScan, sparse_batch_prefetch, 2, true);

// --- C2: persistent writes vs DRAM writes -----------------------------------

void BM_Write64B(benchmark::State& state, bool pmem, bool persist) {
  auto pool = MakeLatencyPool(pmem);
  auto region = pool->Allocate(kRegionBytes, 256);
  char* base = pool->ToPtr<char>(*region);
  Rng rng(11);
  uint64_t records = kRegionBytes / 64;
  char payload[64];
  std::memset(payload, 7, sizeof(payload));
  for (auto _ : state) {
    char* p = base + rng.Uniform(records) * 64;
    std::memcpy(p, payload, 64);
    if (persist) pool->Persist(p, 64);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * 64);
}
BENCHMARK_CAPTURE(BM_Write64B, dram, false, false);
BENCHMARK_CAPTURE(BM_Write64B, pmem_persist, true, true);

// --- C5: allocation cost ----------------------------------------------------

void BM_Allocate(benchmark::State& state, bool pool_alloc) {
  auto pool = MakeLatencyPool(true);
  std::vector<Offset> offsets;
  std::vector<void*> ptrs;
  for (auto _ : state) {
    if (pool_alloc) {
      auto r = pool->Allocate(64);
      if (!r.ok()) std::abort();
      offsets.push_back(*r);
      if (offsets.size() >= 4096) {
        for (Offset o : offsets) pool->Free(o, 64);
        offsets.clear();
      }
    } else {
      ptrs.push_back(::malloc(64));
      if (ptrs.size() >= 4096) {
        for (void* p : ptrs) ::free(p);
        ptrs.clear();
      }
    }
  }
  for (Offset o : offsets) pool->Free(o, 64);
  for (void* p : ptrs) ::free(p);
}
BENCHMARK_CAPTURE(BM_Allocate, malloc_dram, false);
BENCHMARK_CAPTURE(BM_Allocate, pool_pmem, true);

// --- C6/DG6: persistent-pointer dereference vs offsets --------------------

void BM_Dereference(benchmark::State& state, bool use_pptr) {
  auto pool = MakeLatencyPool(false);  // isolate software cost
  PoolRegistry::Instance().Register(pool.get());
  auto region = pool->Allocate(1 << 20, 256);
  auto* values = pool->ToPtr<uint64_t>(*region);
  for (int i = 0; i < 1024; ++i) values[i] = i;
  std::vector<PPtr<uint64_t>> pptrs;
  std::vector<Offset> offsets;
  for (int i = 0; i < 1024; ++i) {
    offsets.push_back(*region + i * 8);
    pptrs.emplace_back(pool->pool_id(), offsets.back());
  }
  uint64_t sink = 0;
  size_t i = 0;
  for (auto _ : state) {
    if (use_pptr) {
      sink += *pptrs[i++ & 1023].get();  // registry lookup each time (C6)
    } else {
      sink += *pool->ToPtr<uint64_t>(offsets[i++ & 1023]);
    }
  }
  benchmark::DoNotOptimize(sink);
  PoolRegistry::Instance().Unregister(pool->pool_id());
}
BENCHMARK_CAPTURE(BM_Dereference, offset_8B, false);
BENCHMARK_CAPTURE(BM_Dereference, pptr_16B, true);

// --- Expand: relationship-chain walk vs DRAM adjacency cache --------------
//
// One Expand over a 64-degree node: the chain walk dereferences 64
// pointer-chased relationship records (PMem random reads), the cached
// variant streams the same neighbors from a sequential DRAM array built on
// first touch. The gap is the Fig. 5 PMem-i vs PMem-i-nocache ablation in
// isolation (the scan variants are NodeScan-bound and dilute it).

void BM_Expand(benchmark::State& state, bool pmem, bool cached) {
  constexpr uint64_t kNodes = 256;
  constexpr uint64_t kDegree = 64;
  auto pool = MakeLatencyPool(pmem);
  auto store = poseidon::storage::GraphStore::Create(pool.get());
  if (!store.ok()) std::abort();
  poseidon::tx::TransactionManager mgr(store->get(), nullptr);
  auto person = *(*store)->Code("Person");
  auto knows = *(*store)->Code("knows");
  std::vector<RecordId> ids;
  {
    auto tx = mgr.Begin();
    for (uint64_t i = 0; i < kNodes; ++i) {
      auto id = tx->CreateNode(person, {});
      if (!id.ok()) std::abort();
      ids.push_back(*id);
    }
    if (!tx->Commit().ok()) std::abort();
  }
  // One commit per source node: a 64-rel write set fits the redo log area.
  Rng rng(99);
  for (uint64_t i = 0; i < kNodes; ++i) {
    auto tx = mgr.Begin();
    for (uint64_t d = 0; d < kDegree; ++d) {
      auto r =
          tx->CreateRelationship(ids[i], ids[rng.Uniform(kNodes)], knows, {});
      if (!r.ok()) std::abort();
    }
    if (!tx->Commit().ok()) std::abort();
  }
  mgr.adjacency_cache().set_enabled(cached);
  if (cached) {
    // Warm pass: materialize every node's array so the loop measures hits.
    auto tx = mgr.Begin();
    for (uint64_t i = 0; i < kNodes; ++i) {
      (void)tx->ForEachNeighbor(ids[i], poseidon::tx::AdjDir::kOut,
                                [](RecordId, poseidon::storage::DictCode,
                                   RecordId) { return true; });
    }
    (void)tx->Commit();
  }
  uint64_t sink = 0;
  size_t i = 0;
  for (auto _ : state) {
    auto tx = mgr.Begin();
    uint64_t degree = 0;
    (void)tx->ForEachNeighbor(
        ids[i++ % kNodes], poseidon::tx::AdjDir::kOut,
        [&](RecordId, poseidon::storage::DictCode, RecordId neighbor) {
          degree += 1;
          sink += neighbor;
          return true;
        });
    (void)tx->Commit();
    if (degree != kDegree) std::abort();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(int64_t(state.iterations()) * kDegree);
}
BENCHMARK_CAPTURE(BM_Expand, dram_chain, false, false);
BENCHMARK_CAPTURE(BM_Expand, dram_adjcache, false, true);
BENCHMARK_CAPTURE(BM_Expand, pmem_chain, true, false);
BENCHMARK_CAPTURE(BM_Expand, pmem_adjcache, true, true);

}  // namespace

BENCHMARK_MAIN();
