// Shared infrastructure for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table/figure of the paper (see
// DESIGN.md, per-experiment index). Environment knobs:
//   POSEIDON_BENCH_PERSONS  SNB scale (default 1000 persons)
//   POSEIDON_BENCH_RUNS     hot-run repetitions per query (default 50,
//                           as in the paper)
//   POSEIDON_PMEM_*         emulated PMem latency model (see latency_model.h)
//   POSEIDON_DISK_MISS_US   SSD miss latency for the DISK baseline
//   POSEIDON_DISK_HIT_NS    buffer-manager per-page overhead (see below)
//   POSEIDON_DISK_FSYNC_US  commit fsync latency floor

#ifndef POSEIDON_BENCH_BENCH_COMMON_H_
#define POSEIDON_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/graph_db.h"
#include "ldbc/queries.h"
#include "util/spin_timer.h"

namespace poseidon::bench {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return end == v ? fallback : static_cast<uint64_t>(parsed);
}

inline uint64_t BenchPersons() { return EnvU64("POSEIDON_BENCH_PERSONS", 1000); }
inline uint64_t BenchRuns() { return EnvU64("POSEIDON_BENCH_RUNS", 50); }

struct BenchEnv {
  std::unique_ptr<core::GraphDb> db;
  ldbc::SnbDataset ds;
  std::string path;  // pool file (pmem mode), removed on destruction

  ~BenchEnv() {
    db.reset();
    if (!path.empty()) std::filesystem::remove(path);
  }
};

/// Builds a database + SNB dataset. `pmem_mode` selects the emulated-PMem
/// configuration vs the pure-DRAM baseline (paper §7.3).
inline Result<std::unique_ptr<BenchEnv>> MakeEnv(bool pmem_mode,
                                                 const std::string& tag,
                                                 bool with_indexes) {
  auto env = std::make_unique<BenchEnv>();
  core::GraphDbOptions options;
  options.capacity = 4ull << 30;
  options.query_threads = EnvU64("POSEIDON_BENCH_THREADS", 4);
  if (pmem_mode) {
    env->path = "/tmp/poseidon_bench_" + tag + "_" +
                std::to_string(::getpid()) + ".pmem";
    std::filesystem::remove(env->path);
    options.path = env->path;
  }
  POSEIDON_ASSIGN_OR_RETURN(env->db, core::GraphDb::Create(options));

  ldbc::SnbConfig cfg;
  cfg.persons = BenchPersons();
  POSEIDON_ASSIGN_OR_RETURN(
      env->ds, ldbc::GenerateSnb(env->db->txm(), env->db->store(), cfg));
  if (with_indexes) {
    POSEIDON_RETURN_IF_ERROR(ldbc::CreateSnbIndexes(
        env->db->indexes(), env->ds.schema,
        pmem_mode ? index::Placement::kHybrid : index::Placement::kVolatile));
  }
  return env;
}

/// One measured configuration: the mean (printed, matches the paper's
/// "avg of N hot runs" figures) and the median (written to BENCH_*.json —
/// robust against scheduler outliers).
struct BenchSample {
  double mean_us = 0;
  double median_ns = 0;
};

/// Times `runs` invocations of `fn` after one untimed warm-up.
template <typename F>
BenchSample Measure(uint64_t runs, F&& fn) {
  fn();
  std::vector<double> samples;  // nanoseconds
  samples.reserve(runs);
  for (uint64_t i = 0; i < runs; ++i) {
    StopWatch w;
    fn();
    samples.push_back(w.ElapsedNs());
  }
  std::sort(samples.begin(), samples.end());
  BenchSample out;
  for (double s : samples) out.mean_us += s;
  out.mean_us /= static_cast<double>(samples.size()) * 1000.0;
  size_t n = samples.size();
  out.median_ns = (n % 2 != 0)
                      ? samples[n / 2]
                      : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  return out;
}

/// Mean over `runs` timed invocations of `fn` (microseconds). `fn` is also
/// invoked once untimed as warm-up.
template <typename F>
double MeanUs(uint64_t runs, F&& fn) {
  return Measure(runs, std::forward<F>(fn)).mean_us;
}

/// Machine-readable results: collects (name -> median ns) pairs and writes
/// them as flat JSON to $POSEIDON_BENCH_JSON_DIR/BENCH_<bench>.json (set by
/// run_benches.sh; nothing is written when the variable is absent).
class BenchJson {
 public:
  /// `unit` labels the values in the emitted JSON; latency benches keep the
  /// default "ns", throughput benches pass "ops_per_sec".
  explicit BenchJson(std::string bench, std::string unit = "ns")
      : bench_(std::move(bench)), unit_(std::move(unit)) {}

  void Add(const std::string& name, double median_ns) {
    entries_.emplace_back(name, median_ns);
  }

  void Write() const {
    const char* dir = std::getenv("POSEIDON_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') return;
    std::string path = std::string(dir) + "/BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARN: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"unit\": \"%s\",\n"
                 "  \"results\": {\n", bench_.c_str(), unit_.c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.1f%s\n", entries_[i].first.c_str(),
                   entries_[i].second,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries_.size());
  }

 private:
  std::string bench_;
  std::string unit_;
  std::vector<std::pair<std::string, double>> entries_;
};

inline void Die(const Status& s, const char* what) {
  std::fprintf(stderr, "FATAL (%s): %s\n", what, s.ToString().c_str());
  std::exit(1);
}

#define BENCH_CHECK(expr)                          \
  do {                                             \
    ::poseidon::Status _st = (expr);               \
    if (!_st.ok()) ::poseidon::bench::Die(_st, #expr); \
  } while (0)

#define BENCH_ASSIGN(decl, expr) \
  BENCH_ASSIGN_IMPL(POSEIDON_STATUS_CONCAT(_bench_res_, __LINE__), decl, expr)
#define BENCH_ASSIGN_IMPL(tmp, decl, expr)          \
  auto tmp = (expr);                                \
  if (!tmp.ok()) ::poseidon::bench::Die(tmp.status(), #expr); \
  decl = std::move(tmp).value()

}  // namespace poseidon::bench

#endif  // POSEIDON_BENCH_BENCH_COMMON_H_
