// Reproduces Fig. 10 (paper §7.5): adaptive query execution (interpret
// while compiling in the background, then switch) vs multi-threaded
// AOT-compiled execution, for the Short Read set on DRAM and emulated PMem.
//
// Expected shape (paper): adaptive execution is at least as fast as
// multi-threaded AOT on every query and wins more on PMem (the higher
// memory latency makes morsels slower, so the compiled code kicks in
// earlier relative to the total work) and on complex queries (IS7-*).

#include "bench/bench_common.h"

namespace poseidon::bench {
namespace {

using jit::ExecutionMode;

int Main() {
  uint64_t runs = BenchRuns();
  std::printf("=== Fig. 10: adaptive vs multi-threaded AOT "
              "(no indexes, avg of %llu runs, us) ===\n\n",
              static_cast<unsigned long long>(runs));
  BENCH_ASSIGN(auto pmem_env, MakeEnv(true, "fig10", false));
  BENCH_ASSIGN(auto dram_env, MakeEnv(false, "fig10d", false));
  auto pmem_queries = ldbc::BuildShortReads(pmem_env->ds.schema, false);
  auto dram_queries = ldbc::BuildShortReads(dram_env->ds.schema, false);

  BenchJson json("fig10_adaptive");

  std::printf("%-9s | %12s %12s | %12s %12s\n", "query", "PMem-AOTmt",
              "PMem-adapt", "DRAM-AOTmt", "DRAM-adapt");

  for (size_t q = 0; q < pmem_queries.size(); ++q) {
    const std::string& name = pmem_queries[q].name;
    Rng rng(900 + q);
    std::vector<std::vector<query::Value>> params;
    for (uint64_t i = 0; i < runs + 1; ++i) {
      params.push_back(
          ldbc::DrawShortReadParams(pmem_env->ds, name, &rng));
    }
    auto run = [&](BenchEnv* env, const query::Plan& plan,
                   ExecutionMode mode) {
      size_t i = 0;
      auto once = [&] {
        auto tx = env->db->Begin();
        auto r = env->db->ExecuteIn(plan, tx.get(),
                                    params[i++ % params.size()], mode);
        if (!r.ok()) Die(r.status(), name.c_str());
        BENCH_CHECK(tx->Commit());
      };
      // Warm-up triggers the background compilation once; hot runs then
      // measure the steady state the paper's 50-run averages converge to.
      once();
      env->db->engine()->WaitForBackgroundCompiles();
      double us = MeanUs(runs, once);
      env->db->engine()->WaitForBackgroundCompiles();
      return us;
    };

    double pm_aot = run(pmem_env.get(), pmem_queries[q].plan,
                        ExecutionMode::kInterpretParallel);
    double pm_adp = run(pmem_env.get(), pmem_queries[q].plan,
                        ExecutionMode::kAdaptive);
    double dr_aot = run(dram_env.get(), dram_queries[q].plan,
                        ExecutionMode::kInterpretParallel);
    double dr_adp = run(dram_env.get(), dram_queries[q].plan,
                        ExecutionMode::kAdaptive);
    std::printf("%-9s | %12.1f %12.1f | %12.1f %12.1f\n", name.c_str(),
                pm_aot, pm_adp, dr_aot, dr_adp);
    json.Add(name + "/PMem-AOTmt", pm_aot * 1000.0);
    json.Add(name + "/PMem-adaptive", pm_adp * 1000.0);
    json.Add(name + "/DRAM-AOTmt", dr_aot * 1000.0);
    json.Add(name + "/DRAM-adaptive", dr_adp * 1000.0);
  }
  json.Write();
  std::printf(
      "\nexpected shape: adaptive <= AOT-mt everywhere; the gap is larger "
      "on PMem and on the complex IS7 variants.\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
