// Reproduces Fig. 8 and the recovery numbers of §7.4: average B+-Tree
// lookup time for the volatile (DRAM), persistent (PMem), and hybrid
// (leaves in PMem, inner in DRAM) index variants — measured over Person-id
// lookups as in the paper — plus the recovery trade-off:
//   hybrid recovery   = rebuild DRAM inner levels from the persistent leaves
//   volatile recovery = full rebuild from primary data
//
// Expected shape (paper): Hybrid ~2x faster lookups than the fully
// persistent tree (one PMem node per lookup instead of every level), and
// hybrid recovery is orders of magnitude cheaper than a full volatile
// rebuild (8 ms vs 671 ms at the paper's scale).
//
// A third column sweeps the crash-point scheduler: the durable image is
// frozen at 25/50/75/100% of a fixed update workload's flush sequence and
// redo recovery + store reopen is timed from each frozen image, showing how
// recovery cost scales with the amount of committed-but-unapplied work.

#include "bench/bench_common.h"
#include "pmem/fault_injector.h"
#include "tx/transaction.h"

namespace poseidon::bench {
namespace {

pmem::PoolOptions SweepPoolOptions() {
  pmem::PoolOptions o;
  o.mode = pmem::PoolMode::kDram;
  o.capacity = 48ull << 20;
  o.crash_shadow = true;
  return o;
}

/// Runs the fixed crash-sweep workload (node creates + property updates,
/// one transaction each) against `pool`, arming the crash-point scheduler
/// `arm_after` persistence primitives into the workload (0 = never). Returns
/// the number of crash points the workload exposed.
uint64_t CrashSweepRun(pmem::Pool* pool, uint64_t arm_after) {
  BENCH_ASSIGN(auto store, storage::GraphStore::Create(pool));
  tx::TransactionManager mgr(store.get(), nullptr);
  BENCH_ASSIGN(auto person, store->Code("Person"));
  BENCH_ASSIGN(auto key, store->Code("k"));
  pmem::FaultInjector* inj = pool->fault_injector();
  uint64_t before = inj->points_seen();
  if (arm_after != 0) inj->ArmCrashPoint(before + arm_after);
  std::vector<storage::RecordId> ids;
  for (int64_t i = 0; i < 128; ++i) {
    auto tx = mgr.Begin();
    BENCH_ASSIGN(storage::RecordId id,
                 tx->CreateNode(person, {{key, storage::PVal::Int(i)}}));
    ids.push_back(id);
    BENCH_CHECK(tx->Commit());
  }
  for (int64_t i = 0; i < 128; i += 4) {
    auto tx = mgr.Begin();
    BENCH_CHECK(tx->SetNodeProperty(ids[static_cast<size_t>(i)], key,
                                    storage::PVal::Int(i + 1000)));
    BENCH_CHECK(tx->Commit());
  }
  return inj->points_seen() - before;
}

int Main() {
  std::printf("=== Fig. 8: index lookup latency + recovery (§7.4) ===\n\n");
  BENCH_ASSIGN(auto env, MakeEnv(true, "fig8", false));
  auto* db = env->db.get();
  const auto& s = env->ds.schema;

  // Build one index per placement over Person.id.
  BENCH_ASSIGN(auto* dram_tree, db->indexes()->CreateIndex(
                                    s.person, s.id,
                                    index::Placement::kVolatile));
  BENCH_ASSIGN(auto* pmem_tree, db->indexes()->CreateIndex(
                                    s.person, s.creation_date,
                                    index::Placement::kPersistent));
  BENCH_ASSIGN(auto* hybrid_tree, db->indexes()->CreateIndex(
                                      s.person, s.birthday,
                                      index::Placement::kHybrid));
  // The three trees above index different keys only because the manager
  // enforces one index per (label,key); rebuild them over the same key
  // distribution for a fair comparison:
  auto build = [&](index::BPlusTree* tree) {
    uint64_t n = 0;
    for (storage::RecordId id : env->ds.persons) {
      auto tx = db->Begin();
      auto v = tx->GetNodeProperty(id, s.id);
      BENCH_CHECK(v.status());
      BENCH_CHECK(tx->Commit());
      (void)tree->Remove(index::BTreeKey{v->AsInt(), id});
      BENCH_CHECK(tree->Insert(index::BTreeKey{v->AsInt(), id}, id));
      ++n;
    }
    return n;
  };
  build(pmem_tree);
  build(hybrid_tree);

  uint64_t lookups = env->ds.persons.size();
  Rng rng(5);
  std::vector<int64_t> keys;
  for (uint64_t i = 0; i < lookups; ++i) {
    keys.push_back(1 + static_cast<int64_t>(
                           rng.Uniform(static_cast<uint64_t>(
                               env->ds.max_person_id))));
  }

  auto measure = [&](index::BPlusTree* tree) {
    // Warm up, then time individual lookups.
    for (int64_t k : keys) (void)tree->Lookup(index::BTreeKey{k, 0});
    StopWatch w;
    uint64_t found = 0;
    for (int64_t k : keys) {
      uint64_t n = tree->LookupAll(k, [](const index::BTreeKey&,
                                         storage::RecordId) {});
      found += n;
    }
    (void)found;
    return w.ElapsedNs() / static_cast<double>(keys.size());
  };

  double dram_ns = measure(dram_tree);
  double pmem_ns = measure(pmem_tree);
  double hybrid_ns = measure(hybrid_tree);

  std::printf("%-28s %12s\n", "index variant", "lookup (ns)");
  std::printf("%-28s %12.0f\n", "DRAM (volatile)", dram_ns);
  std::printf("%-28s %12.0f\n", "PMem (persistent)", pmem_ns);
  std::printf("%-28s %12.0f\n", "Hybrid (leaves PMem)", hybrid_ns);
  std::printf("  PMem/Hybrid speedup: %.2fx (paper: ~2x)\n\n",
              pmem_ns / hybrid_ns);

  // --- Recovery -----------------------------------------------------------
  // Hybrid: rebuild the DRAM inner levels from the persistent leaf chain.
  StopWatch w;
  BENCH_CHECK(hybrid_tree->RebuildInner());
  double hybrid_recovery_ms = w.ElapsedMs();

  // Volatile: full rebuild from primary data (scan + insert every entry).
  w.Reset();
  BENCH_ASSIGN(auto rebuilt,
               index::BPlusTree::Create(nullptr, index::Placement::kVolatile));
  {
    auto tx = db->Begin();
    env->db->store()->nodes().ForEach(
        [&](storage::RecordId id, storage::NodeRecord& rec) {
          if (rec.label != s.person) return;
          auto v = tx->GetNodeProperty(id, s.id);
          if (!v.ok() || v->is_null()) return;
          BENCH_CHECK(rebuilt->Insert(index::BTreeKey{v->AsInt(), id}, id));
        });
    BENCH_CHECK(tx->Commit());
  }
  double volatile_rebuild_ms = w.ElapsedMs();

  std::printf("%-28s %12s\n", "recovery path", "time (ms)");
  std::printf("%-28s %12.2f\n", "Hybrid inner rebuild", hybrid_recovery_ms);
  std::printf("%-28s %12.2f\n", "Volatile full rebuild",
              volatile_rebuild_ms);
  std::printf("  rebuild/recovery ratio: %.0fx (paper: 671 ms vs 8 ms "
              "~ 84x)\n",
              volatile_rebuild_ms / std::max(hybrid_recovery_ms, 0.001));

  // --- Crash-point sweep --------------------------------------------------
  // Recovery cost as a function of WHERE the power fails: freeze the durable
  // image at sampled fractions of the workload's flush sequence, then time
  // redo recovery + store reopen from each frozen image. Background flush
  // sources are disabled so the point numbering is deterministic.
  setenv("POSEIDON_BG_GC", "0", 1);
  setenv("POSEIDON_GROUP_COMMIT", "0", 1);

  BenchJson json("fig8_index_recovery");
  json.Add("lookup_dram_ns", dram_ns);
  json.Add("lookup_pmem_ns", pmem_ns);
  json.Add("lookup_hybrid_ns", hybrid_ns);
  json.Add("hybrid_inner_rebuild_ns", hybrid_recovery_ms * 1e6);
  json.Add("volatile_full_rebuild_ns", volatile_rebuild_ms * 1e6);

  uint64_t total_points = 0;
  {
    BENCH_ASSIGN(auto pool, pmem::Pool::Create("", SweepPoolOptions()));
    total_points = CrashSweepRun(pool.get(), 0);
  }
  std::printf("\n--- crash-point sweep (%llu flush/drain points) ---\n",
              static_cast<unsigned long long>(total_points));
  std::printf("%-12s %14s %10s %10s\n", "crash at", "recover (us)",
              "segments", "nodes");
  for (int pct : {25, 50, 75, 100}) {
    uint64_t k = std::max<uint64_t>(1, total_points * pct / 100);
    BENCH_ASSIGN(auto pool, pmem::Pool::Create("", SweepPoolOptions()));
    CrashSweepRun(pool.get(), k);
    pool->SimulateCrash();

    StopWatch rw;
    pmem::RecoveryReport report;
    pool->redo_log()->Recover(&report);
    BENCH_ASSIGN(auto store, storage::GraphStore::Open(pool.get()));
    tx::TransactionManager mgr(store.get(), nullptr);
    BENCH_CHECK(mgr.RecoverInFlight());
    double recover_ns = rw.ElapsedNs();
    BENCH_CHECK(report.status);

    uint64_t survivors = 0;
    {
      auto tx = mgr.Begin();
      store->nodes().ForEach([&](storage::RecordId id, storage::NodeRecord&) {
        if (tx->GetNode(id).ok()) ++survivors;
      });
      BENCH_CHECK(tx->Commit());
    }

    std::printf("%10d%% %14.1f %10llu %10llu\n", pct, recover_ns / 1000.0,
                static_cast<unsigned long long>(report.segments_replayed),
                static_cast<unsigned long long>(survivors));
    std::string tag = "crash_p" + std::to_string(pct);
    json.Add(tag + "_recover_ns", recover_ns);
    json.Add(tag + "_segments_replayed",
             static_cast<double>(report.segments_replayed));
    json.Add(tag + "_nodes_recovered", static_cast<double>(survivors));
  }

  // --- Scrub overhead -----------------------------------------------------
  // Read throughput with the background integrity scrubber off and at two
  // verification-rate caps (DESIGN.md "Online scrubbing & media faults"):
  // the scrubber shares the memory bus and takes per-batch locks, so this
  // column quantifies what continuous verification costs the read path.
  {
    core::GraphDbOptions so;
    so.path = "";
    so.capacity = 96ull << 20;
    so.crash_shadow = true;  // line checksums + scrubber available
    so.query_threads = 2;
    BENCH_ASSIGN(auto sdb, core::GraphDb::Create(so));
    BENCH_ASSIGN(auto sperson, sdb->Code("Person"));
    BENCH_ASSIGN(auto skey, sdb->Code("id"));
    std::vector<storage::RecordId> sids;
    {
      auto tx = sdb->Begin();
      for (int64_t i = 0; i < 4096; ++i) {
        BENCH_ASSIGN(auto id, tx->CreateNode(
                                  sperson, {{skey, storage::PVal::Int(i)}}));
        sids.push_back(id);
      }
      BENCH_CHECK(tx->Commit());
    }
    auto read_mops = [&]() {
      StopWatch sw;
      uint64_t reads = 0;
      auto tx = sdb->BeginReadOnly();
      for (int rep = 0; rep < 8; ++rep) {
        for (storage::RecordId id : sids) {
          BENCH_CHECK(tx->GetNodeProperty(id, skey).status());
          ++reads;
        }
      }
      return static_cast<double>(reads) * 1e3 / sw.ElapsedNs();  // Mops/s
    };
    auto* scrubber = sdb->scrubber();
    BENCH_CHECK(scrubber != nullptr
                    ? Status::Ok()
                    : Status::FailedPrecondition(
                          "scrubber missing on shadow pool"));
    double off_mops = read_mops();
    scrubber->SetRate(16);
    scrubber->Start();
    double mb16_mops = read_mops();
    scrubber->SetRate(64);
    double mb64_mops = read_mops();
    scrubber->Stop();

    std::printf("\n%-28s %12s\n", "scrubber state", "reads (Mops/s)");
    std::printf("%-28s %12.2f\n", "off", off_mops);
    std::printf("%-28s %12.2f\n", "16 MB/s", mb16_mops);
    std::printf("%-28s %12.2f\n", "64 MB/s", mb64_mops);
    std::printf("  64 MB/s overhead: %.1f%%\n",
                100.0 * (1.0 - mb64_mops / std::max(off_mops, 1e-9)));
    json.Add("read_mops_scrub_off", off_mops);
    json.Add("read_mops_scrub_16mb_s", mb16_mops);
    json.Add("read_mops_scrub_64mb_s", mb64_mops);
  }
  json.Write();

  std::printf("\nexpected shape: DRAM < Hybrid < PMem lookups; hybrid "
              "recovery << volatile rebuild; crash recovery cost grows "
              "with the crashed-at fraction.\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
