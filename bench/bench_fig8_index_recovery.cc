// Reproduces Fig. 8 and the recovery numbers of §7.4: average B+-Tree
// lookup time for the volatile (DRAM), persistent (PMem), and hybrid
// (leaves in PMem, inner in DRAM) index variants — measured over Person-id
// lookups as in the paper — plus the recovery trade-off:
//   hybrid recovery   = rebuild DRAM inner levels from the persistent leaves
//   volatile recovery = full rebuild from primary data
//
// Expected shape (paper): Hybrid ~2x faster lookups than the fully
// persistent tree (one PMem node per lookup instead of every level), and
// hybrid recovery is orders of magnitude cheaper than a full volatile
// rebuild (8 ms vs 671 ms at the paper's scale).

#include "bench/bench_common.h"

namespace poseidon::bench {
namespace {

int Main() {
  std::printf("=== Fig. 8: index lookup latency + recovery (§7.4) ===\n\n");
  BENCH_ASSIGN(auto env, MakeEnv(true, "fig8", false));
  auto* db = env->db.get();
  const auto& s = env->ds.schema;

  // Build one index per placement over Person.id.
  BENCH_ASSIGN(auto* dram_tree, db->indexes()->CreateIndex(
                                    s.person, s.id,
                                    index::Placement::kVolatile));
  BENCH_ASSIGN(auto* pmem_tree, db->indexes()->CreateIndex(
                                    s.person, s.creation_date,
                                    index::Placement::kPersistent));
  BENCH_ASSIGN(auto* hybrid_tree, db->indexes()->CreateIndex(
                                      s.person, s.birthday,
                                      index::Placement::kHybrid));
  // The three trees above index different keys only because the manager
  // enforces one index per (label,key); rebuild them over the same key
  // distribution for a fair comparison:
  auto build = [&](index::BPlusTree* tree) {
    uint64_t n = 0;
    for (storage::RecordId id : env->ds.persons) {
      auto tx = db->Begin();
      auto v = tx->GetNodeProperty(id, s.id);
      BENCH_CHECK(v.status());
      BENCH_CHECK(tx->Commit());
      (void)tree->Remove(index::BTreeKey{v->AsInt(), id});
      BENCH_CHECK(tree->Insert(index::BTreeKey{v->AsInt(), id}, id));
      ++n;
    }
    return n;
  };
  build(pmem_tree);
  build(hybrid_tree);

  uint64_t lookups = env->ds.persons.size();
  Rng rng(5);
  std::vector<int64_t> keys;
  for (uint64_t i = 0; i < lookups; ++i) {
    keys.push_back(1 + static_cast<int64_t>(
                           rng.Uniform(static_cast<uint64_t>(
                               env->ds.max_person_id))));
  }

  auto measure = [&](index::BPlusTree* tree) {
    // Warm up, then time individual lookups.
    for (int64_t k : keys) (void)tree->Lookup(index::BTreeKey{k, 0});
    StopWatch w;
    uint64_t found = 0;
    for (int64_t k : keys) {
      uint64_t n = tree->LookupAll(k, [](const index::BTreeKey&,
                                         storage::RecordId) {});
      found += n;
    }
    (void)found;
    return w.ElapsedNs() / static_cast<double>(keys.size());
  };

  double dram_ns = measure(dram_tree);
  double pmem_ns = measure(pmem_tree);
  double hybrid_ns = measure(hybrid_tree);

  std::printf("%-28s %12s\n", "index variant", "lookup (ns)");
  std::printf("%-28s %12.0f\n", "DRAM (volatile)", dram_ns);
  std::printf("%-28s %12.0f\n", "PMem (persistent)", pmem_ns);
  std::printf("%-28s %12.0f\n", "Hybrid (leaves PMem)", hybrid_ns);
  std::printf("  PMem/Hybrid speedup: %.2fx (paper: ~2x)\n\n",
              pmem_ns / hybrid_ns);

  // --- Recovery -----------------------------------------------------------
  // Hybrid: rebuild the DRAM inner levels from the persistent leaf chain.
  StopWatch w;
  BENCH_CHECK(hybrid_tree->RebuildInner());
  double hybrid_recovery_ms = w.ElapsedMs();

  // Volatile: full rebuild from primary data (scan + insert every entry).
  w.Reset();
  BENCH_ASSIGN(auto rebuilt,
               index::BPlusTree::Create(nullptr, index::Placement::kVolatile));
  {
    auto tx = db->Begin();
    env->db->store()->nodes().ForEach(
        [&](storage::RecordId id, storage::NodeRecord& rec) {
          if (rec.label != s.person) return;
          auto v = tx->GetNodeProperty(id, s.id);
          if (!v.ok() || v->is_null()) return;
          BENCH_CHECK(rebuilt->Insert(index::BTreeKey{v->AsInt(), id}, id));
        });
    BENCH_CHECK(tx->Commit());
  }
  double volatile_rebuild_ms = w.ElapsedMs();

  std::printf("%-28s %12s\n", "recovery path", "time (ms)");
  std::printf("%-28s %12.2f\n", "Hybrid inner rebuild", hybrid_recovery_ms);
  std::printf("%-28s %12.2f\n", "Volatile full rebuild",
              volatile_rebuild_ms);
  std::printf("  rebuild/recovery ratio: %.0fx (paper: 671 ms vs 8 ms "
              "~ 84x)\n",
              volatile_rebuild_ms / std::max(hybrid_recovery_ms, 0.001));
  std::printf("\nexpected shape: DRAM < Hybrid < PMem lookups; hybrid "
              "recovery << volatile rebuild.\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
