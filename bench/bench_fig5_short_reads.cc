// Reproduces Fig. 5 (paper §7.3): LDBC-SNB Interactive Short Read execution
// times, averaged over hot runs with varying input ids, for:
//   PMem-s / PMem-p / PMem-i  — this engine on emulated PMem
//                               (single-threaded, parallel, indexed)
//   DRAM-s / DRAM-p / DRAM-i  — the same engine in pure volatile mode
//   DISK-i                    — the disk baseline with a DRAM index
//
// Expected shape (paper): indexes dominate; PMem is close to DRAM
// (the PMem-conscious design bridges most of the latency gap); both beat
// DISK-i on every query.

#include "bench/bench_common.h"
#include "diskgraph/snb_disk.h"

namespace poseidon::bench {
namespace {

using jit::ExecutionMode;

int Main() {
  uint64_t runs = BenchRuns();
  std::printf("=== Fig. 5: Interactive Short Reads (avg of %llu hot runs, us)"
              " ===\n",
              static_cast<unsigned long long>(runs));
  std::printf("scale: %llu persons\n\n",
              static_cast<unsigned long long>(BenchPersons()));

  BENCH_ASSIGN(auto pmem_env, MakeEnv(/*pmem_mode=*/true, "fig5", true));
  BENCH_ASSIGN(auto dram_env, MakeEnv(/*pmem_mode=*/false, "fig5d", true));

  // DISK baseline: copy of the PMem graph + DRAM index.
  diskgraph::DiskGraphOptions disk_options;
  disk_options.dir = "/tmp/poseidon_bench_fig5_disk";
  std::filesystem::remove_all(disk_options.dir);
  BENCH_ASSIGN(auto disk,
               diskgraph::LoadDiskSnbFromStore(pmem_env->db->store(),
                                               pmem_env->db->txm(),
                                               pmem_env->ds, disk_options));

  auto scan_queries = ldbc::BuildShortReads(pmem_env->ds.schema, false);
  auto index_queries = ldbc::BuildShortReads(pmem_env->ds.schema, true);

  // Ablation configuration: batched scan kernels + prefetch disabled
  // (PMem-s0). The default PMem-s runs with batching on.
  storage::ScanOptions batch_on = pmem_env->db->scan_options();
  storage::ScanOptions batch_off;
  batch_off.batch_enabled = false;
  batch_off.prefetch_distance = 0;

  BenchJson json("fig5_short_reads");

  std::printf("%-9s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s\n",
              "query", "PMem-s", "PMem-s0", "PMem-sNC", "PMem-p", "PMem-i",
              "PMem-iNC", "DRAM-s", "DRAM-p", "DRAM-i", "DISK-i");

  // Per-query parameter sequences, shared by every configuration so all
  // columns see identical inputs.
  std::vector<std::vector<std::vector<query::Value>>> all_params;
  for (size_t q = 0; q < scan_queries.size(); ++q) {
    Rng rng(1234 + q);
    all_params.emplace_back();
    for (uint64_t i = 0; i < runs + 1; ++i) {
      all_params.back().push_back(
          ldbc::DrawShortReadParams(pmem_env->ds, scan_queries[q].name, &rng));
    }
  }

  auto run_engine = [&](BenchEnv* env, size_t q, const query::Plan& plan,
                        ExecutionMode mode) {
    auto& params = all_params[q];
    auto once = [&](size_t i) {
      auto tx = env->db->Begin();
      auto r =
          env->db->ExecuteIn(plan, tx.get(), params[i % params.size()], mode);
      if (!r.ok()) Die(r.status(), scan_queries[q].name.c_str());
      BENCH_CHECK(tx->Commit());
    };
    // Untimed sweep over the full parameter sequence: hot-run steady state
    // for every input id (warm code cache, warm adjacency arrays), applied
    // identically to every configuration.
    for (size_t i = 0; i < params.size(); ++i) once(i);
    size_t i = 0;
    return Measure(runs, [&] { once(i++); });
  };

  // Ablation pre-pass: DRAM adjacency cache off — Expand pays the full PMem
  // chain walk (batching stays on, isolating the cache contribution). Runs
  // before the cached pass so the cache-on columns measure the steady state
  // with arrays accumulated across queries, like every other hot-run column
  // (the JIT code cache and indexes persist across queries the same way).
  std::vector<BenchSample> pmem_snc_all(scan_queries.size());
  std::vector<BenchSample> pmem_inc_all(index_queries.size());
  pmem_env->db->set_adj_cache_enabled(false);
  for (size_t q = 0; q < scan_queries.size(); ++q) {
    pmem_snc_all[q] = run_engine(pmem_env.get(), q, scan_queries[q].plan,
                                 ExecutionMode::kInterpret);
    pmem_inc_all[q] = run_engine(pmem_env.get(), q, index_queries[q].plan,
                                 ExecutionMode::kInterpret);
  }
  pmem_env->db->set_adj_cache_enabled(true);

  for (size_t q = 0; q < scan_queries.size(); ++q) {
    const std::string& name = scan_queries[q].name;

    BenchSample pmem_s = run_engine(pmem_env.get(), q, scan_queries[q].plan,
                                    ExecutionMode::kInterpret);
    pmem_env->db->set_scan_options(batch_off);
    BenchSample pmem_s0 = run_engine(pmem_env.get(), q, scan_queries[q].plan,
                                     ExecutionMode::kInterpret);
    pmem_env->db->set_scan_options(batch_on);
    BenchSample pmem_snc = pmem_snc_all[q];
    BenchSample pmem_p = run_engine(pmem_env.get(), q, scan_queries[q].plan,
                                    ExecutionMode::kInterpretParallel);
    BenchSample pmem_i = run_engine(pmem_env.get(), q, index_queries[q].plan,
                                    ExecutionMode::kInterpret);
    BenchSample pmem_inc = pmem_inc_all[q];
    BenchSample dram_s = run_engine(dram_env.get(), q, scan_queries[q].plan,
                                    ExecutionMode::kInterpret);
    BenchSample dram_p = run_engine(dram_env.get(), q, scan_queries[q].plan,
                                    ExecutionMode::kInterpretParallel);
    BenchSample dram_i = run_engine(dram_env.get(), q, index_queries[q].plan,
                                    ExecutionMode::kInterpret);

    size_t i = 0;
    BenchSample disk_i = Measure(runs, [&] {
      auto rows = diskgraph::RunDiskShortRead(
          disk.get(), name, all_params[q][i++ % all_params[q].size()][0].AsInt());
      if (!rows.ok()) Die(rows.status(), name.c_str());
    });

    std::printf(
        "%-9s %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f "
        "%10.1f %10.1f\n",
        name.c_str(), pmem_s.mean_us, pmem_s0.mean_us, pmem_snc.mean_us,
        pmem_p.mean_us, pmem_i.mean_us, pmem_inc.mean_us, dram_s.mean_us,
        dram_p.mean_us, dram_i.mean_us, disk_i.mean_us);

    json.Add(name + "/PMem-s", pmem_s.median_ns);
    json.Add(name + "/PMem-s-nobatch", pmem_s0.median_ns);
    json.Add(name + "/PMem-s-nocache", pmem_snc.median_ns);
    json.Add(name + "/PMem-p", pmem_p.median_ns);
    json.Add(name + "/PMem-i", pmem_i.median_ns);
    json.Add(name + "/PMem-i-nocache", pmem_inc.median_ns);
    json.Add(name + "/DRAM-s", dram_s.median_ns);
    json.Add(name + "/DRAM-p", dram_p.median_ns);
    json.Add(name + "/DRAM-i", dram_i.median_ns);
    json.Add(name + "/DISK-i", disk_i.median_ns);
  }
  json.Write();

  std::printf(
      "\nexpected shape: *-i << *-s; PMem-i close to DRAM-i; DISK-i "
      "slowest per query.\n");
  std::filesystem::remove_all(disk_options.dir);
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
