// Reproduces Fig. 5 (paper §7.3): LDBC-SNB Interactive Short Read execution
// times, averaged over hot runs with varying input ids, for:
//   PMem-s / PMem-p / PMem-i  — this engine on emulated PMem
//                               (single-threaded, parallel, indexed)
//   DRAM-s / DRAM-p / DRAM-i  — the same engine in pure volatile mode
//   DISK-i                    — the disk baseline with a DRAM index
//
// Expected shape (paper): indexes dominate; PMem is close to DRAM
// (the PMem-conscious design bridges most of the latency gap); both beat
// DISK-i on every query.

#include "bench/bench_common.h"
#include "diskgraph/snb_disk.h"

namespace poseidon::bench {
namespace {

using jit::ExecutionMode;

int Main() {
  uint64_t runs = BenchRuns();
  std::printf("=== Fig. 5: Interactive Short Reads (avg of %llu hot runs, us)"
              " ===\n",
              static_cast<unsigned long long>(runs));
  std::printf("scale: %llu persons\n\n",
              static_cast<unsigned long long>(BenchPersons()));

  BENCH_ASSIGN(auto pmem_env, MakeEnv(/*pmem_mode=*/true, "fig5", true));
  BENCH_ASSIGN(auto dram_env, MakeEnv(/*pmem_mode=*/false, "fig5d", true));

  // DISK baseline: copy of the PMem graph + DRAM index.
  diskgraph::DiskGraphOptions disk_options;
  disk_options.dir = "/tmp/poseidon_bench_fig5_disk";
  std::filesystem::remove_all(disk_options.dir);
  BENCH_ASSIGN(auto disk,
               diskgraph::LoadDiskSnbFromStore(pmem_env->db->store(),
                                               pmem_env->db->txm(),
                                               pmem_env->ds, disk_options));

  auto scan_queries = ldbc::BuildShortReads(pmem_env->ds.schema, false);
  auto index_queries = ldbc::BuildShortReads(pmem_env->ds.schema, true);

  // Ablation configuration: batched scan kernels + prefetch disabled
  // (PMem-s0). The default PMem-s runs with batching on.
  storage::ScanOptions batch_on = pmem_env->db->scan_options();
  storage::ScanOptions batch_off;
  batch_off.batch_enabled = false;
  batch_off.prefetch_distance = 0;

  BenchJson json("fig5_short_reads");

  std::printf("%-9s %10s %10s %10s %10s %10s %10s %10s %10s\n", "query",
              "PMem-s", "PMem-s0", "PMem-p", "PMem-i", "DRAM-s", "DRAM-p",
              "DRAM-i", "DISK-i");

  for (size_t q = 0; q < scan_queries.size(); ++q) {
    const std::string& name = scan_queries[q].name;
    Rng rng(1234 + q);
    // One parameter sequence shared by all configurations.
    std::vector<std::vector<query::Value>> params;
    for (uint64_t i = 0; i < runs + 1; ++i) {
      params.push_back(ldbc::DrawShortReadParams(pmem_env->ds, name, &rng));
    }

    auto run_engine = [&](BenchEnv* env, const query::Plan& plan,
                          ExecutionMode mode) {
      size_t i = 0;
      return Measure(runs, [&] {
        auto tx = env->db->Begin();
        auto r = env->db->ExecuteIn(plan, tx.get(),
                                    params[i++ % params.size()], mode);
        if (!r.ok()) Die(r.status(), name.c_str());
        BENCH_CHECK(tx->Commit());
      });
    };

    BenchSample pmem_s = run_engine(pmem_env.get(), scan_queries[q].plan,
                                    ExecutionMode::kInterpret);
    pmem_env->db->set_scan_options(batch_off);
    BenchSample pmem_s0 = run_engine(pmem_env.get(), scan_queries[q].plan,
                                     ExecutionMode::kInterpret);
    pmem_env->db->set_scan_options(batch_on);
    BenchSample pmem_p = run_engine(pmem_env.get(), scan_queries[q].plan,
                                    ExecutionMode::kInterpretParallel);
    BenchSample pmem_i = run_engine(pmem_env.get(), index_queries[q].plan,
                                    ExecutionMode::kInterpret);
    BenchSample dram_s = run_engine(dram_env.get(), scan_queries[q].plan,
                                    ExecutionMode::kInterpret);
    BenchSample dram_p = run_engine(dram_env.get(), scan_queries[q].plan,
                                    ExecutionMode::kInterpretParallel);
    BenchSample dram_i = run_engine(dram_env.get(), index_queries[q].plan,
                                    ExecutionMode::kInterpret);

    size_t i = 0;
    BenchSample disk_i = Measure(runs, [&] {
      auto rows = diskgraph::RunDiskShortRead(
          disk.get(), name, params[i++ % params.size()][0].AsInt());
      if (!rows.ok()) Die(rows.status(), name.c_str());
    });

    std::printf(
        "%-9s %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
        name.c_str(), pmem_s.mean_us, pmem_s0.mean_us, pmem_p.mean_us,
        pmem_i.mean_us, dram_s.mean_us, dram_p.mean_us, dram_i.mean_us,
        disk_i.mean_us);

    json.Add(name + "/PMem-s", pmem_s.median_ns);
    json.Add(name + "/PMem-s-nobatch", pmem_s0.median_ns);
    json.Add(name + "/PMem-p", pmem_p.median_ns);
    json.Add(name + "/PMem-i", pmem_i.median_ns);
    json.Add(name + "/DRAM-s", dram_s.median_ns);
    json.Add(name + "/DRAM-p", dram_p.median_ns);
    json.Add(name + "/DRAM-i", dram_i.median_ns);
    json.Add(name + "/DISK-i", disk_i.median_ns);
  }
  json.Write();

  std::printf(
      "\nexpected shape: *-i << *-s; PMem-i close to DRAM-i; DISK-i "
      "slowest per query.\n");
  std::filesystem::remove_all(disk_options.dir);
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
