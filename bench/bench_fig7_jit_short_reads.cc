// Reproduces Fig. 7 (paper §7.5): Interactive Short Reads executed with the
// JIT query engine — single-threaded, without indexes — on DRAM and
// emulated PMem:
//   AOT          interpreted execution (the baseline)
//   JIT          compiled execution, compilation excluded (hot code)
//   JIT+compile  compiled execution including the one-off compilation
//
// Expected shape (paper): JIT-compiled code is always faster than AOT, and
// is usually faster even when the few-ms compilation time is included;
// complex queries (IS7-*) benefit most.

#include "bench/bench_common.h"

namespace poseidon::bench {
namespace {

using jit::ExecStats;
using jit::ExecutionMode;

struct Row {
  double aot_us;
  double jit_us;
  double compile_ms;
};

Row RunOne(BenchEnv* env, const ldbc::NamedQuery& q, uint64_t runs,
           Rng* rng) {
  std::vector<std::vector<query::Value>> params;
  for (uint64_t i = 0; i < runs + 1; ++i) {
    params.push_back(ldbc::DrawShortReadParams(env->ds, q.name, rng));
  }
  Row row{};
  size_t i = 0;
  row.aot_us = MeanUs(runs, [&] {
    auto tx = env->db->Begin();
    auto r = env->db->ExecuteIn(q.plan, tx.get(),
                                params[i++ % params.size()],
                                ExecutionMode::kInterpret);
    if (!r.ok()) Die(r.status(), q.name.c_str());
    BENCH_CHECK(tx->Commit());
  });
  // First JIT run records the compile time; subsequent runs are hot.
  {
    auto tx = env->db->Begin();
    ExecStats stats;
    auto r = env->db->ExecuteIn(q.plan, tx.get(), params[0],
                                ExecutionMode::kJit, &stats);
    if (!r.ok()) Die(r.status(), q.name.c_str());
    BENCH_CHECK(tx->Commit());
    row.compile_ms = stats.compile_ms;
  }
  i = 0;
  row.jit_us = MeanUs(runs, [&] {
    auto tx = env->db->Begin();
    auto r = env->db->ExecuteIn(q.plan, tx.get(),
                                params[i++ % params.size()],
                                ExecutionMode::kJit);
    if (!r.ok()) Die(r.status(), q.name.c_str());
    BENCH_CHECK(tx->Commit());
  });
  return row;
}

int Main() {
  uint64_t runs = BenchRuns();
  std::printf("=== Fig. 7: Short Reads via JIT (single-threaded, no indexes,"
              " avg of %llu runs) ===\n\n",
              static_cast<unsigned long long>(runs));

  BENCH_ASSIGN(auto pmem_env, MakeEnv(true, "fig7", false));
  BENCH_ASSIGN(auto dram_env, MakeEnv(false, "fig7d", false));
  auto pmem_queries = ldbc::BuildShortReads(pmem_env->ds.schema, false);
  auto dram_queries = ldbc::BuildShortReads(dram_env->ds.schema, false);

  BenchJson json("fig7_jit_short_reads");

  std::printf("%-9s | %10s %10s %12s | %10s %10s %12s\n", "query",
              "PMem-AOT", "PMem-JIT", "PMem-JIT+c", "DRAM-AOT", "DRAM-JIT",
              "DRAM-JIT+c");
  for (size_t q = 0; q < pmem_queries.size(); ++q) {
    Rng rng(42 + q);
    const std::string& name = pmem_queries[q].name;
    Row pmem = RunOne(pmem_env.get(), pmem_queries[q], runs, &rng);
    Row dram = RunOne(dram_env.get(), dram_queries[q], runs, &rng);
    std::printf("%-9s | %10.1f %10.1f %12.1f | %10.1f %10.1f %12.1f\n",
                name.c_str(), pmem.aot_us, pmem.jit_us,
                pmem.jit_us + pmem.compile_ms * 1000.0, dram.aot_us,
                dram.jit_us, dram.jit_us + dram.compile_ms * 1000.0);
    json.Add(name + "/PMem-AOT", pmem.aot_us * 1000.0);
    json.Add(name + "/PMem-JIT", pmem.jit_us * 1000.0);
    json.Add(name + "/PMem-JIT+c",
             (pmem.jit_us + pmem.compile_ms * 1000.0) * 1000.0);
    json.Add(name + "/DRAM-AOT", dram.aot_us * 1000.0);
    json.Add(name + "/DRAM-JIT", dram.jit_us * 1000.0);
    json.Add(name + "/DRAM-JIT+c",
             (dram.jit_us + dram.compile_ms * 1000.0) * 1000.0);
  }
  json.Write();
  std::printf(
      "\n(JIT+c adds the one-off compilation; compile time is a few ms and "
      "grows mildly with operator count.)\n"
      "expected shape: JIT < AOT on every query; JIT+c < AOT for the "
      "scan-heavy queries.\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
