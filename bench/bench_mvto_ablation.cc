// Ablation of the MVTO design decisions of §5 (DESIGN.md experiment E9):
//   1. DRAM dirty versions (the paper's hybrid design, DG1/DG2) vs a
//      PMem-dirty-versions strawman that persists every dirty version write
//      to PMem immediately — quantifying what keeping uncommitted state
//      volatile saves;
//   2. commit cost as a function of write-set size (the redo-log
//      transaction the engine pays at commit);
//   3. version-chain GC effectiveness under update pressure.

#include "bench/bench_common.h"

namespace poseidon::bench {
namespace {

int Main() {
  std::printf("=== MVTO ablation (E9) ===\n\n");
  BENCH_ASSIGN(auto env, MakeEnv(true, "mvto", false));
  auto* db = env->db.get();
  const auto& s = env->ds.schema;
  uint64_t runs = BenchRuns();

  // --- 1. DRAM dirty versions vs PMem strawman ---------------------------
  // The strawman adds, per uncommitted write, a persist of the dirty
  // version image (record + a property record) to a PMem scratch area —
  // exactly the traffic the hybrid design avoids until commit.
  BENCH_ASSIGN(pmem::Offset scratch,
               db->pool()->Allocate(1 << 20, 256));
  char* scratch_ptr = db->pool()->ToPtr<char>(scratch);
  Rng rng(3);
  auto update_tx = [&](int writes_per_tx, bool strawman) {
    auto tx = db->Begin();
    for (int i = 0; i < writes_per_tx; ++i) {
      storage::RecordId node =
          env->ds.persons[rng.Uniform(env->ds.persons.size())];
      Status st = tx->SetNodeProperty(node, s.creation_date,
                                      storage::PVal::Int(i));
      if (st.IsAborted()) continue;  // self-conflict on duplicate draw
      BENCH_CHECK(st);
      if (strawman) {
        // Dirty version written through to PMem (64 B record + 64 B
        // property record), as a PMem-only design would do.
        std::memset(scratch_ptr + (i % 4096) * 128, i, 128);
        db->pool()->Persist(scratch_ptr + (i % 4096) * 128, 128);
      }
    }
    BENCH_CHECK(tx->Commit());
  };
  std::printf("dirty-version placement (tx of 16 updates, avg of %llu):\n",
              static_cast<unsigned long long>(runs));
  double hybrid_us = MeanUs(runs, [&] { update_tx(16, false); });
  double strawman_us = MeanUs(runs, [&] { update_tx(16, true); });
  std::printf("  %-34s %10.1f us\n", "DRAM dirty versions (paper design)",
              hybrid_us);
  std::printf("  %-34s %10.1f us\n", "PMem dirty versions (strawman)",
              strawman_us);
  std::printf("  overhead avoided: %.1f%%\n\n",
              100.0 * (strawman_us - hybrid_us) / strawman_us);

  // --- 2. commit cost vs write-set size -----------------------------------
  std::printf("commit cost vs write-set size (execute | commit, us):\n");
  std::printf("  %-8s %12s %12s\n", "writes", "execute", "commit");
  for (int n : {1, 4, 16, 64, 256}) {
    double exec_total = 0, commit_total = 0;
    uint64_t reps = std::max<uint64_t>(runs / 4, 5);
    for (uint64_t r = 0; r < reps; ++r) {
      auto tx = db->Begin();
      StopWatch w;
      for (int i = 0; i < n; ++i) {
        storage::RecordId node =
            env->ds.persons[rng.Uniform(env->ds.persons.size())];
        Status st = tx->SetNodeProperty(node, s.creation_date,
                                        storage::PVal::Int(i));
        if (!st.ok() && !st.IsAborted()) Die(st, "set");
      }
      exec_total += w.ElapsedUs();
      w.Reset();
      BENCH_CHECK(tx->Commit());
      commit_total += w.ElapsedUs();
    }
    std::printf("  %-8d %12.1f %12.1f\n", n,
                exec_total / static_cast<double>(reps),
                commit_total / static_cast<double>(reps));
  }

  // --- 3. GC effectiveness --------------------------------------------------
  std::printf("\ntransaction-level GC under update pressure:\n");
  storage::RecordId hot = env->ds.persons[0];
  for (int i = 0; i < 1000; ++i) {
    auto tx = db->Begin();
    BENCH_CHECK(tx->SetNodeProperty(hot, s.creation_date,
                                    storage::PVal::Int(i)));
    BENCH_CHECK(tx->Commit());
  }
  uint64_t live_versions = db->txm()->node_versions().TotalVersions();
  std::printf("  1000 updates of one node -> %llu retained DRAM versions "
              "(no active readers)\n",
              static_cast<unsigned long long>(live_versions));
  {
    auto reader = db->Begin();
    auto v = reader->GetNode(hot);
    BENCH_CHECK(v.status());
    for (int i = 0; i < 100; ++i) {
      auto tx = db->Begin();
      BENCH_CHECK(tx->SetNodeProperty(hot, s.creation_date,
                                      storage::PVal::Int(i)));
      BENCH_CHECK(tx->Commit());
    }
    std::printf("  100 more updates with one active reader -> %llu retained "
                "versions\n",
                static_cast<unsigned long long>(
                    db->txm()->node_versions().TotalVersions()));
    BENCH_CHECK(reader->Commit());
  }
  db->txm()->RunGc();
  std::printf("  after the reader finishes + GC -> %llu retained versions\n",
              static_cast<unsigned long long>(
                  db->txm()->node_versions().TotalVersions()));
  std::printf("\nexpected shape: hybrid design noticeably cheaper than the "
              "PMem-dirty strawman; commit cost scales ~linearly with the "
              "write set; GC keeps chains near zero without readers.\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
