// E10 (paper §8 preview): graph analytics on transaction-consistent
// snapshots — the long-running HTAP workloads the paper defers to ongoing
// work. Compares snapshot construction + algorithm runtimes on emulated
// PMem vs pure DRAM, mirroring the Sage-style semi-asymmetric design the
// paper discusses (read-only analytical copy + concurrent updates).

#include "bench/bench_common.h"

#include "analytics/algorithms.h"

namespace poseidon::bench {
namespace {

int Main() {
  std::printf("=== Analytics preview (E10, §8): snapshot + algorithms ===\n");
  std::printf("scale: %llu persons\n\n",
              static_cast<unsigned long long>(BenchPersons()));
  BENCH_ASSIGN(auto pmem_env, MakeEnv(true, "ana", false));
  BENCH_ASSIGN(auto dram_env, MakeEnv(false, "anad", false));

  std::printf("%-28s %12s %12s\n", "step", "PMem (ms)", "DRAM (ms)");
  auto bench_env = [&](BenchEnv* env, double out[6]) {
    auto tx = env->db->Begin();
    analytics::SnapshotOptions options;
    options.rel_label = env->ds.schema.knows;
    options.node_label = env->ds.schema.person;
    StopWatch w;
    auto snap = analytics::GraphSnapshot::Build(tx.get(), env->db->store(),
                                                options);
    if (!snap.ok()) Die(snap.status(), "snapshot");
    out[0] = w.ElapsedMs();

    w.Reset();
    auto dist = analytics::Bfs(*snap, 0);
    out[1] = w.ElapsedMs();

    w.Reset();
    auto pr = analytics::PageRank(*snap, 20);
    out[2] = w.ElapsedMs();

    w.Reset();
    uint32_t components = 0;
    auto comp = analytics::WeaklyConnectedComponents(*snap, &components);
    out[3] = w.ElapsedMs();

    w.Reset();
    uint64_t triangles = analytics::CountTriangles(*snap);
    out[4] = w.ElapsedMs();
    out[5] = static_cast<double>(triangles);

    uint32_t reachable = 0;
    for (uint32_t d : dist) reachable += d != analytics::kUnreachable;
    std::printf("  [graph: %u persons, %llu knows-edges; bfs reaches %u; "
                "%u components; %llu triangles]\n",
                snap->num_vertices(),
                static_cast<unsigned long long>(snap->num_edges()),
                reachable, components,
                static_cast<unsigned long long>(triangles));
    BENCH_CHECK(tx->Commit());
    (void)pr;
    (void)comp;
  };

  double pmem[6], dram[6];
  bench_env(pmem_env.get(), pmem);
  bench_env(dram_env.get(), dram);

  const char* steps[] = {"snapshot build (CSR)", "BFS", "PageRank (20 it)",
                         "connected components", "triangle count"};
  for (int i = 0; i < 5; ++i) {
    std::printf("%-28s %12.2f %12.2f\n", steps[i], pmem[i], dram[i]);
  }
  std::printf(
      "\nexpected shape: snapshot construction pays the PMem read latency "
      "once; the algorithms themselves run at identical DRAM speed on both "
      "(the semi-asymmetric pay-off).\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
