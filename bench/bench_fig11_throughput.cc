// Fig. 11 (repo extension, EXPERIMENTS.md E8): multi-client transaction
// throughput of the read path. A closed-loop driver runs N client threads
// against one DRAM-resident SNB instance; each client loops
//   think -> draw op -> execute -> commit
// with a ~90% / 10% mix of LDBC interactive short reads (IS1..IS7, executed
// as plans in read-only transactions) and IU-style person-property updates
// (read-write transactions, retried on MVTO aborts).
//
// Two tables:
//   * Scaling: ops/sec for 1/2/4/8/16 clients x all four execution modes,
//     with per-client think time (POSEIDON_BENCH_FIG11_THINK_US). On a
//     single-core host the think-time model is what makes the closed loop
//     meaningful: clients mostly sleep, so added clients raise offered load
//     until the core saturates, and read-path serialization (timestamp
//     allocation, registry mutexes, rts CAS traffic in the seed design)
//     shows up as an early plateau.
//   * Ablation: think=0 (saturated) clients on a tx-API read-mostly
//     micro-workload, toggling snapshot reuse (POSEIDON_SNAPSHOT_EPOCH_US)
//     and rts coalescing (POSEIDON_RTS_COALESCE) at runtime. The micro
//     workload deliberately bypasses the query engine: plan interpretation
//     cost is identical across knob settings and would otherwise bury the
//     per-record read-path deltas the ablation is measuring.
//
// Extra knobs (defaults in parentheses):
//   POSEIDON_BENCH_FIG11_MS        wall-clock per scaling cell (400)
//   POSEIDON_BENCH_FIG11_ABLATE_MS wall-clock per ablation cell (500)
//   POSEIDON_BENCH_FIG11_THINK_US  per-op client think time (300)
//   POSEIDON_BENCH_FIG11_THREADS   comma list ("1,2,4,8,16")
//   POSEIDON_BENCH_FIG11_ABLATE_THREADS  comma list ("4,8")
//   POSEIDON_BENCH_FIG11_MODES     comma list ("aot,par,jit,adaptive")
//   POSEIDON_BENCH_FIG11_UPDATE_PCT  update share of the mix (10)

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "bench/bench_common.h"
#include "pmem/psan.h"
#include "util/random.h"

namespace poseidon::bench {
namespace {

using jit::ExecutionMode;
using Clock = std::chrono::steady_clock;

struct ModeSpec {
  const char* name;
  ExecutionMode mode;
};

constexpr ModeSpec kModes[] = {
    {"aot", ExecutionMode::kInterpret},
    {"par", ExecutionMode::kInterpretParallel},
    {"jit", ExecutionMode::kJit},
    {"adaptive", ExecutionMode::kAdaptive},
};

std::vector<uint64_t> EnvList(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  std::stringstream ss(v != nullptr && *v != '\0' ? v : fallback);
  std::vector<uint64_t> out;
  for (std::string tok; std::getline(ss, tok, ',');) {
    if (!tok.empty()) out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<ModeSpec> EnvModes() {
  const char* v = std::getenv("POSEIDON_BENCH_FIG11_MODES");
  std::stringstream ss(v != nullptr && *v != '\0' ? v : "aot,par,jit,adaptive");
  std::vector<ModeSpec> out;
  for (std::string tok; std::getline(ss, tok, ',');) {
    for (const ModeSpec& m : kModes) {
      if (tok == m.name) out.push_back(m);
    }
  }
  return out;
}

/// One committed-op counter per closed-loop run.
struct RunResult {
  uint64_t ops = 0;
  uint64_t aborts = 0;
  double ops_per_sec = 0;
};

/// Drives `threads` closed-loop clients for `wall_ms`, each executing
/// `client(rng, thread_index)` per iteration (returns true when the op
/// committed) with `think_us` of sleep in front.
template <typename ClientOp>
RunResult RunClosedLoop(int threads, uint64_t wall_ms, uint64_t think_us,
                        ClientOp&& client) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> aborts{0};
  std::vector<std::thread> clients;
  auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(0x5eedull * (t + 1));
      while (!stop.load(std::memory_order_relaxed)) {
        if (think_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(think_us));
        }
        if (client(&rng, t)) {
          ops.fetch_add(1, std::memory_order_relaxed);
        } else {
          aborts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(wall_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& c : clients) c.join();
  double secs = std::chrono::duration<double>(Clock::now() - start).count();
  RunResult r;
  r.ops = ops.load();
  r.aborts = aborts.load();
  r.ops_per_sec = static_cast<double>(r.ops) / secs;
  return r;
}

/// The scaling-table client op: draw from the IS/IU mix and run it through
/// the full query stack in the given execution mode.
class MixedWorkload {
 public:
  MixedWorkload(BenchEnv* env, uint64_t update_pct)
      : env_(env), update_pct_(update_pct),
        queries_(ldbc::BuildShortReads(env->ds.schema, /*use_index=*/true)) {}

  /// Compiles every plan once (memo+cache) so jit/adaptive cells measure
  /// hot code, not one-off compilations.
  void Warmup(ExecutionMode mode) {
    Rng rng(7);
    for (const auto& q : queries_) {
      auto tx = env_->db->BeginReadOnly();
      auto params = ldbc::DrawShortReadParams(env_->ds, q.name, &rng);
      auto r = env_->db->ExecuteIn(q.plan, tx.get(), params, mode);
      if (!r.ok() && !r.status().IsAborted()) Die(r.status(), q.name.c_str());
      BENCH_CHECK(tx->Commit());
    }
    env_->db->engine()->WaitForBackgroundCompiles();
  }

  bool operator()(Rng* rng, ExecutionMode mode) {
    if (rng->Uniform(100) < update_pct_) {
      // IU-style update: overwrite one property of a random person. (The
      // IU plan parameter draws mutate the dataset's id counters and are
      // not thread-safe; the tx-level equivalent exercises the identical
      // write path: lock, redo-log commit, version push.)
      storage::RecordId person =
          env_->ds.persons[rng->Uniform(env_->ds.persons.size())];
      auto tx = env_->db->Begin();
      Status s = tx->SetNodeProperty(
          person, env_->ds.schema.browser_used,
          storage::PVal::Int(static_cast<int64_t>(rng->Uniform(1 << 20))));
      if (s.ok()) s = tx->Commit();
      if (!s.ok()) {
        tx->Abort();
        return false;
      }
      return true;
    }
    const auto& q = queries_[rng->Uniform(queries_.size())];
    auto params = ldbc::DrawShortReadParams(env_->ds, q.name, rng);
    auto tx = env_->db->BeginReadOnly();
    auto r = env_->db->ExecuteIn(q.plan, tx.get(), params, mode);
    if (!r.ok()) {
      if (!r.status().IsAborted()) Die(r.status(), q.name.c_str());
      tx->Abort();
      return false;
    }
    return tx->Commit().ok();
  }

 private:
  BenchEnv* env_;
  uint64_t update_pct_;
  std::vector<ldbc::NamedQuery> queries_;
};

/// The ablation client op: tx-API reads (1-hop friend walk + property
/// reads, the IS2 access pattern) with the same update share.
bool MicroOp(BenchEnv* env, Rng* rng, uint64_t update_pct) {
  storage::RecordId person =
      env->ds.persons[rng->Uniform(env->ds.persons.size())];
  if (rng->Uniform(100) < update_pct) {
    auto tx = env->db->Begin();
    Status s = tx->SetNodeProperty(
        person, env->ds.schema.browser_used,
        storage::PVal::Int(static_cast<int64_t>(rng->Uniform(1 << 20))));
    if (s.ok()) s = tx->Commit();
    if (!s.ok()) tx->Abort();
    return s.ok();
  }
  auto tx = env->db->BeginReadOnly();
  auto first = tx->GetNodeProperty(person, env->ds.schema.first_name);
  if (!first.ok()) {
    tx->Abort();
    return false;
  }
  int fanout = 0;
  Status s = tx->ForEachNeighbor(
      person, tx::AdjDir::kOut,
      [&](storage::RecordId, storage::DictCode, storage::RecordId nbr) {
        auto p = tx->GetNodeProperty(nbr, env->ds.schema.last_name);
        (void)p;
        return ++fanout < 16;
      });
  if (!s.ok()) {
    tx->Abort();
    return false;
  }
  return tx->Commit().ok();
}

int Main() {
  uint64_t wall_ms = EnvU64("POSEIDON_BENCH_FIG11_MS", 400);
  uint64_t ablate_ms = EnvU64("POSEIDON_BENCH_FIG11_ABLATE_MS", 500);
  uint64_t think_us = EnvU64("POSEIDON_BENCH_FIG11_THINK_US", 300);
  uint64_t update_pct = EnvU64("POSEIDON_BENCH_FIG11_UPDATE_PCT", 10);
  auto thread_counts = EnvList("POSEIDON_BENCH_FIG11_THREADS", "1,2,4,8,16");
  auto ablate_threads = EnvList("POSEIDON_BENCH_FIG11_ABLATE_THREADS", "4,8");
  auto modes = EnvModes();

  std::printf("=== Fig. 11: closed-loop read-mostly throughput (DRAM, "
              "%llu%% updates, think %llu us, %llu ms/cell) ===\n\n",
              static_cast<unsigned long long>(update_pct),
              static_cast<unsigned long long>(think_us),
              static_cast<unsigned long long>(wall_ms));

  BENCH_ASSIGN(auto env, MakeEnv(false, "fig11", true));
  BenchJson json("fig11_throughput", "ops_per_sec");
  MixedWorkload workload(env.get(), update_pct);

  std::printf("%-9s |", "clients");
  for (const auto& m : modes) std::printf(" %12s", m.name);
  std::printf("\n");
  for (uint64_t threads : thread_counts) {
    std::printf("%-9llu |", static_cast<unsigned long long>(threads));
    for (const auto& m : modes) {
      workload.Warmup(m.mode);
      RunResult r = RunClosedLoop(
          static_cast<int>(threads), wall_ms, think_us,
          [&](Rng* rng, int) { return workload(rng, m.mode); });
      std::printf(" %12.0f", r.ops_per_sec);
      std::fflush(stdout);
      json.Add("dram_" + std::string(m.name) + "_t" + std::to_string(threads),
               r.ops_per_sec);
    }
    std::printf("\n");
  }

  // --- Ablation: saturated clients, read-path knobs toggled at runtime ---
  struct Combo {
    const char* name;
    int64_t epoch_us;  // 0 disables snapshot reuse (seed read-only path)
    bool coalesce;
  };
  const Combo combos[] = {
      {"full", 100, true},
      {"snap_off", 0, true},
      {"coalesce_off", 100, false},
      {"both_off", 0, false},
  };
  uint64_t rounds = EnvU64("POSEIDON_BENCH_FIG11_ABLATE_ROUNDS", 3);
  std::printf("\n--- ablation (tx-API micro-workload, think=0, %llu ms/cell,"
              " median of %llu rotated rounds, ops/sec) ---\n%-9s |",
              static_cast<unsigned long long>(ablate_ms),
              static_cast<unsigned long long>(rounds), "clients");
  for (const auto& c : combos) std::printf(" %12s", c.name);
  std::printf("\n");
  tx::TransactionManager* txm = env->db->txm();
  constexpr size_t kCombos = sizeof(combos) / sizeof(combos[0]);
  for (uint64_t threads : ablate_threads) {
    // Throughput on a shared single-core host drifts over seconds, so one
    // pass per combo confounds knob effects with run order. Each round
    // visits the combos in a rotated order; the median per combo cancels
    // the drift. Every cell gets a short untimed warm-up at its own knob
    // setting so the previous cell's GC/backlog state doesn't leak in.
    std::vector<std::vector<double>> samples(kCombos);
    for (uint64_t round = 0; round < rounds; ++round) {
      for (size_t i = 0; i < kCombos; ++i) {
        const Combo& c = combos[(i + round) % kCombos];
        txm->set_snapshot_epoch_us(c.epoch_us);
        txm->set_rts_coalesce(c.coalesce);
        auto run = [&](uint64_t ms) {
          return RunClosedLoop(
              static_cast<int>(threads), ms, /*think_us=*/0,
              [&](Rng* rng, int) { return MicroOp(env.get(), rng, update_pct); });
        };
        run(std::max<uint64_t>(ablate_ms / 4, 50));  // warm-up, untimed
        tx::TxStats before = txm->Stats();
        RunResult res = run(ablate_ms);
        samples[(i + round) % kCombos].push_back(res.ops_per_sec);
        if (EnvU64("POSEIDON_BENCH_FIG11_DEBUG", 0) != 0) {
          tx::TxStats after = txm->Stats();
          std::printf(
              "[debug] %-12s t%llu: %.0f ops/s, op_aborts=%llu, "
              "mgr_aborts=%llu, retries=%llu, deferred=%llu, skipped=%llu, "
              "snap_reads=%llu, refreshes=%llu\n",
              c.name, static_cast<unsigned long long>(threads),
              res.ops_per_sec,
              static_cast<unsigned long long>(res.aborts),
              static_cast<unsigned long long>(after.aborts - before.aborts),
              static_cast<unsigned long long>(after.read_retries -
                                              before.read_retries),
              static_cast<unsigned long long>(after.rts_deferred -
                                              before.rts_deferred),
              static_cast<unsigned long long>(after.rts_skipped -
                                              before.rts_skipped),
              static_cast<unsigned long long>(after.snapshot_reads -
                                              before.snapshot_reads),
              static_cast<unsigned long long>(after.snapshot_refreshes -
                                              before.snapshot_refreshes));
        }
      }
    }
    std::printf("%-9llu |", static_cast<unsigned long long>(threads));
    for (size_t i = 0; i < kCombos; ++i) {
      std::sort(samples[i].begin(), samples[i].end());
      double median = samples[i][samples[i].size() / 2];
      std::printf(" %12.0f", median);
      json.Add("ablate_t" + std::to_string(threads) + "_" + combos[i].name,
               median);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  txm->set_snapshot_epoch_us(100);
  txm->set_rts_coalesce(true);

  // --- Overload: offered load > capacity, admission gate off vs on -------
  //
  // Saturated (think=0) write-only clients — far more offered work than one
  // core serves — with the writer admission gate off (seed behavior: every
  // client queues on the MVTO commit path) and on (POSEIDON_MAX_WRITERS=2:
  // excess writers are shed with ResourceExhausted after a bounded wait).
  // Reported per cell: committed ops/sec, shed rate, and the p99 latency of
  // committed operations — the governed run trades sheds for a bounded tail.
  {
    uint64_t overload_ms = EnvU64("POSEIDON_BENCH_FIG11_OVERLOAD_MS", 500);
    int overload_clients = static_cast<int>(
        EnvU64("POSEIDON_BENCH_FIG11_OVERLOAD_CLIENTS", 8));
    struct OverloadCell {
      double ops_per_sec = 0;
      double shed_per_sec = 0;
      double p99_ms = 0;
    };
    auto run_cell = [&](int64_t max_writers) {
      txm->set_max_writers(max_writers);
      uint64_t shed_before = txm->Stats().writers_shed;
      std::atomic<bool> stop{false};
      std::atomic<uint64_t> ops{0};
      std::mutex lat_mu;
      std::vector<double> latencies_ms;
      std::vector<std::thread> clients;
      auto start = Clock::now();
      for (int t = 0; t < overload_clients; ++t) {
        clients.emplace_back([&, t] {
          Rng rng(0x0ff10adull * (t + 1));
          std::vector<double> local;
          while (!stop.load(std::memory_order_relaxed)) {
            auto t0 = Clock::now();
            auto admitted = env->db->BeginWrite();
            if (!admitted.ok()) continue;  // shed: counted via TxStats delta
            auto tx = std::move(*admitted);
            storage::RecordId person =
                env->ds.persons[rng.Uniform(env->ds.persons.size())];
            Status s = tx->SetNodeProperty(
                person, env->ds.schema.browser_used,
                storage::PVal::Int(
                    static_cast<int64_t>(rng.Uniform(1 << 20))));
            if (s.ok()) s = tx->Commit();
            if (!s.ok()) {
              tx->Abort();
              continue;
            }
            ops.fetch_add(1, std::memory_order_relaxed);
            local.push_back(std::chrono::duration<double, std::milli>(
                                Clock::now() - t0)
                                .count());
          }
          std::lock_guard<std::mutex> lock(lat_mu);
          latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(overload_ms));
      stop.store(true, std::memory_order_relaxed);
      for (auto& c : clients) c.join();
      double secs =
          std::chrono::duration<double>(Clock::now() - start).count();
      OverloadCell cell;
      cell.ops_per_sec = static_cast<double>(ops.load()) / secs;
      cell.shed_per_sec =
          static_cast<double>(txm->Stats().writers_shed - shed_before) / secs;
      if (!latencies_ms.empty()) {
        std::sort(latencies_ms.begin(), latencies_ms.end());
        cell.p99_ms = latencies_ms[std::min(latencies_ms.size() - 1,
                                            latencies_ms.size() * 99 / 100)];
      }
      return cell;
    };
    std::printf("\n--- overload (%d saturated write clients, %llu ms/cell, "
                "admission gate off vs POSEIDON_MAX_WRITERS=2) ---\n"
                "%-14s | %12s %12s %12s\n",
                overload_clients,
                static_cast<unsigned long long>(overload_ms), "admission",
                "ops/sec", "shed/sec", "p99 ms");
    for (int64_t max_writers : {int64_t{0}, int64_t{2}}) {
      OverloadCell cell = run_cell(max_writers);
      const char* name = max_writers == 0 ? "off" : "on";
      std::printf("%-14s | %12.0f %12.0f %12.3f\n", name, cell.ops_per_sec,
                  cell.shed_per_sec, cell.p99_ms);
      std::fflush(stdout);
      std::string prefix = "overload_admission_" + std::string(name);
      json.Add(prefix + "_ops", cell.ops_per_sec);
      json.Add(prefix + "_shed_per_sec", cell.shed_per_sec);
      json.Add(prefix + "_p99_ms", cell.p99_ms);
    }
    txm->set_max_writers(0);
  }

  json.Write();
  std::printf(
      "\nexpected shape: near-linear client scaling until the core "
      "saturates (think-time model); full > snap_off and full > "
      "coalesce_off at >= 4 saturated clients.\n");
  // In a PSAN build the whole closed-loop run doubles as a persist-order
  // check; a no-PSAN build links the stub that always returns 0.
  if (uint64_t v = pmem::PsanTotalViolations()) {
    std::fprintf(stderr, "PSAN: %llu persist-order violations\n",
                 static_cast<unsigned long long>(v));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
