// Reproduces Fig. 9 (paper §7.5): Interactive Updates executed with the JIT
// query engine (indexed lookups), comparing
//   AOT       interpreted execution
//   JIT-hot   compiled execution with warm code (memo/cache hit)
//   JIT-cold  first execution including compilation
// on DRAM and emulated PMem.
//
// Expected shape (paper): these queries are too short for run-time code
// generation to pay off within one execution — JIT-cold is dominated by the
// compilation time, while JIT-hot is comparable to AOT (the pipelines are
// create/join-heavy, which run through AOT transaction code either way).

#include "bench/bench_common.h"

namespace poseidon::bench {
namespace {

using jit::ExecStats;
using jit::ExecutionMode;

int Main() {
  uint64_t runs = BenchRuns();
  std::printf("=== Fig. 9: Updates via JIT (indexed, avg of %llu runs, us)"
              " ===\n\n",
              static_cast<unsigned long long>(runs));
  BENCH_ASSIGN(auto pmem_env, MakeEnv(true, "fig9", true));
  BENCH_ASSIGN(auto dram_env, MakeEnv(false, "fig9d", true));
  BENCH_ASSIGN(auto pmem_queries,
               ldbc::BuildUpdates(pmem_env->ds.schema,
                                  &pmem_env->db->store()->dict(), true));
  BENCH_ASSIGN(auto dram_queries,
               ldbc::BuildUpdates(dram_env->ds.schema,
                                  &dram_env->db->store()->dict(), true));

  BenchJson json("fig9_jit_updates");

  std::printf("%-5s | %9s %9s %11s | %9s %9s %11s\n", "query", "PM-AOT",
              "PM-JIT", "PM-JITcold", "DR-AOT", "DR-JIT", "DR-JITcold");

  Rng rng(4242);
  for (size_t q = 0; q < pmem_queries.size(); ++q) {
    const std::string& name = pmem_queries[q].name;
    auto run = [&](BenchEnv* env, const query::Plan& plan,
                   ExecutionMode mode, uint64_t n, double* cold_us) {
      double total = 0;
      for (uint64_t i = 0; i < n; ++i) {
        auto params = ldbc::DrawUpdateParams(&env->ds, name, &rng);
        auto tx = env->db->Begin();
        StopWatch w;
        ExecStats stats;
        auto r = env->db->ExecuteIn(plan, tx.get(), params, mode, &stats);
        double us = w.ElapsedUs();
        if (!r.ok()) Die(r.status(), name.c_str());
        BENCH_CHECK(tx->Commit());
        if (i == 0 && cold_us != nullptr) *cold_us = us;
        total += us;
      }
      return total / static_cast<double>(n);
    };

    double pm_cold = 0, dr_cold = 0;
    // Cold first (includes compilation), then hot average.
    run(pmem_env.get(), pmem_queries[q].plan, ExecutionMode::kJit, 1,
        &pm_cold);
    run(dram_env.get(), dram_queries[q].plan, ExecutionMode::kJit, 1,
        &dr_cold);
    double pm_jit = run(pmem_env.get(), pmem_queries[q].plan,
                        ExecutionMode::kJit, runs, nullptr);
    double dr_jit = run(dram_env.get(), dram_queries[q].plan,
                        ExecutionMode::kJit, runs, nullptr);
    double pm_aot = run(pmem_env.get(), pmem_queries[q].plan,
                        ExecutionMode::kInterpret, runs, nullptr);
    double dr_aot = run(dram_env.get(), dram_queries[q].plan,
                        ExecutionMode::kInterpret, runs, nullptr);

    std::printf("%-5s | %9.1f %9.1f %11.1f | %9.1f %9.1f %11.1f\n",
                name.c_str(), pm_aot, pm_jit, pm_cold, dr_aot, dr_jit,
                dr_cold);
    json.Add(name + "/PMem-AOT", pm_aot * 1000.0);
    json.Add(name + "/PMem-JIT", pm_jit * 1000.0);
    json.Add(name + "/PMem-JIT-cold", pm_cold * 1000.0);
    json.Add(name + "/DRAM-AOT", dr_aot * 1000.0);
    json.Add(name + "/DRAM-JIT", dr_jit * 1000.0);
    json.Add(name + "/DRAM-JIT-cold", dr_cold * 1000.0);
  }
  json.Write();
  std::printf(
      "\nexpected shape: JIT-hot ~ AOT (short transactional pipelines); "
      "JIT-cold >> AOT (compilation dominates).\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
