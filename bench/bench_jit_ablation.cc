// Ablation of the JIT design decisions of §6.2 (DESIGN.md experiment E8):
//   1. the optimization pass cascade: unoptimized vs cascade+O3 code,
//      execution and compile-time cost per query;
//   2. compile-time scaling with operator count (the paper: "as the number
//      of operators increases, the compilation time increases by only a few
//      milliseconds");
//   3. the persistent compiled-code cache: fresh compile vs cache-hit link
//      time (including across engine restarts).

#include "bench/bench_common.h"

namespace poseidon::bench {
namespace {

using jit::ExecStats;
using jit::ExecutionMode;
using jit::JitOptions;

int Main() {
  uint64_t runs = BenchRuns();
  std::printf("=== JIT ablation (E8): pass cascade, compile scaling, "
              "code cache ===\n\n");
  BENCH_ASSIGN(auto env, MakeEnv(true, "jitabl", false));
  auto queries = ldbc::BuildShortReads(env->ds.schema, false);

  // --- 1. optimization cascade on/off -----------------------------------
  std::printf("%-9s | %10s %10s | %12s %12s | %6s\n", "query", "opt(us)",
              "noopt(us)", "opt-comp(ms)", "noopt-c(ms)", "ops");
  for (const auto& q : queries) {
    Rng rng(5);
    auto params = ldbc::DrawShortReadParams(env->ds, q.name, &rng);
    double compile_opt = 0, compile_noopt = 0;
    auto run_mode = [&](bool optimize, double* compile_ms) {
      JitOptions options;
      options.optimize = optimize;
      options.use_persistent_cache = false;
      {
        auto tx = env->db->Begin();
        ExecStats stats;
        auto r = env->db->ExecuteIn(q.plan, tx.get(), params,
                                    ExecutionMode::kJit, &stats, options);
        if (!r.ok()) Die(r.status(), q.name.c_str());
        BENCH_CHECK(tx->Commit());
        if (stats.compile_ms > 0) *compile_ms = stats.compile_ms;
      }
      return MeanUs(runs, [&] {
        auto tx = env->db->Begin();
        auto r = env->db->ExecuteIn(q.plan, tx.get(), params,
                                    ExecutionMode::kJit, nullptr, options);
        if (!r.ok()) Die(r.status(), q.name.c_str());
        BENCH_CHECK(tx->Commit());
      });
    };
    double opt_us = run_mode(true, &compile_opt);
    double noopt_us = run_mode(false, &compile_noopt);
    std::printf("%-9s | %10.1f %10.1f | %12.2f %12.2f | %6d\n",
                q.name.c_str(), opt_us, noopt_us, compile_opt, compile_noopt,
                q.plan.CountOps());
  }

  // --- 2. compile time vs operator count (synthetic chains) --------------
  std::printf("\ncompile-time scaling (filter chains):\n%-6s %12s\n", "ops",
              "compile(ms)");
  auto age = env->ds.schema.creation_date;
  for (int n_filters : {1, 4, 8, 16, 32}) {
    query::PlanBuilder b;
    std::move(b).NodeScan(env->ds.schema.person);
    for (int i = 0; i < n_filters; ++i) {
      std::move(b).FilterProperty(
          0, age, query::CmpOp::kGe,
          query::Expr::Literal(query::Value::Int(i)));
    }
    std::move(b).Count();
    query::Plan plan = std::move(b).Build();
    JitOptions options;
    options.use_persistent_cache = false;
    auto tx = env->db->Begin();
    ExecStats stats;
    auto r = env->db->ExecuteIn(plan, tx.get(), {}, ExecutionMode::kJit,
                                &stats, options);
    if (!r.ok()) Die(r.status(), "filter chain");
    BENCH_CHECK(tx->Commit());
    std::printf("%-6d %12.2f\n", plan.CountOps(), stats.compile_ms);
  }

  // --- 3. persistent code cache: compile vs link-from-cache ---------------
  std::printf("\npersistent code cache (fresh engine per row):\n");
  std::printf("%-26s %12s\n", "path", "latency(ms)");
  {
    // A plan no earlier section compiled: the first run is a genuine
    // compile that also populates the persistent cache (earlier sections
    // ran with the cache disabled).
    query::PlanBuilder cb;
    std::move(cb).NodeScan(env->ds.schema.comment);
    std::move(cb).Expand(0, query::Direction::kOut, env->ds.schema.reply_of);
    std::move(cb).Expand(2, query::Direction::kOut,
                         env->ds.schema.has_creator);
    std::move(cb).Project({query::Expr::Property(4, env->ds.schema.id)});
    std::move(cb).Limit(3);
    query::Plan probe = std::move(cb).Build();
    std::vector<query::Value> params;
    StopWatch w;
    {
      auto tx = env->db->Begin();
      ExecStats stats;
      auto r = env->db->ExecuteIn(probe, tx.get(), params,
                                  ExecutionMode::kJit, &stats);
      if (!r.ok()) Die(r.status(), "cache-probe");
      BENCH_CHECK(tx->Commit());
      std::printf("%-26s %12.2f\n", "compile (fresh plan)",
                  stats.compile_ms);
    }
    BENCH_ASSIGN(auto engine2,
                 jit::JitQueryEngine::Create(env->db->store(),
                                             env->db->indexes(), 2,
                                             env->db->query_cache()));
    w.Reset();
    {
      auto tx = env->db->Begin();
      ExecStats stats;
      auto r = engine2->Execute(probe, tx.get(), params,
                                ExecutionMode::kJit, &stats);
      if (!r.ok()) Die(r.status(), "cache-probe");
      BENCH_CHECK(tx->Commit());
      std::printf("%-26s %12.2f  (cache_hit=%d)\n",
                  "link from persistent cache", w.ElapsedMs(),
                  stats.cache_hit ? 1 : 0);
    }
  }
  std::printf("\nexpected shape: cascade+O3 beats unoptimized code; compile "
              "time grows by ~ms per operator; cache hits skip compilation "
              "entirely.\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
