// E11 (paper §8): hybrid DRAM/PMem dictionary ablation. The paper names
// "more hybrid DRAM/PMem approaches such as for dictionaries" as a further
// performance opportunity; this bench quantifies it: decode throughput of
// the fully persistent dictionary vs the hybrid one (DRAM decode cache),
// plus the encode path and the recovery trade-off (the cache is volatile
// and refills lazily — recovery cost is zero, the first decode per code
// pays one PMem read).

#include "bench/bench_common.h"

namespace poseidon::bench {
namespace {

int Main() {
  std::printf("=== Hybrid dictionary ablation (E11, §8) ===\n\n");
  pmem::PoolOptions options;
  options.capacity = 1ull << 30;
  options.mode = pmem::PoolMode::kDram;  // RAM-backed; latency injected
  options.has_latency_override = true;
  options.latency_override = pmem::LatencyModel::EmulatedPmem();
  auto pool = pmem::Pool::Create("", options);
  if (!pool.ok()) Die(pool.status(), "pool");
  auto dict = storage::Dictionary::Create(pool->get());
  if (!dict.ok()) Die(dict.status(), "dict");

  constexpr int kStrings = 50000;
  StopWatch w;
  std::vector<storage::DictCode> codes;
  codes.reserve(kStrings);
  for (int i = 0; i < kStrings; ++i) {
    auto c = (*dict)->Encode("dictionary_entry_" + std::to_string(i));
    if (!c.ok()) Die(c.status(), "encode");
    codes.push_back(*c);
  }
  std::printf("%-34s %10.1f ms (%d strings)\n", "encode (persistent tables)",
              w.ElapsedMs(), kStrings);

  Rng rng(1);
  auto decode_pass = [&](uint64_t n) {
    StopWatch timer;
    for (uint64_t i = 0; i < n; ++i) {
      auto s = (*dict)->Decode(codes[rng.Uniform(codes.size())]);
      if (!s.ok()) Die(s.status(), "decode");
    }
    return timer.ElapsedMs();
  };

  constexpr uint64_t kDecodes = 200000;
  double persistent_ms = decode_pass(kDecodes);
  std::printf("%-34s %10.1f ms (%.0f ns/op)\n", "decode, persistent-only",
              persistent_ms, persistent_ms * 1e6 / kDecodes);

  (*dict)->EnableDecodeCache();
  StopWatch fill;
  for (auto c : codes) (void)(*dict)->Decode(c);
  double fill_ms = fill.ElapsedMs();
  double hybrid_ms = decode_pass(kDecodes);
  std::printf("%-34s %10.1f ms (%.0f ns/op)\n", "decode, hybrid (DRAM cache)",
              hybrid_ms, hybrid_ms * 1e6 / kDecodes);
  std::printf("%-34s %10.1f ms (lazy; zero at recovery)\n",
              "cache warm-up (all codes once)", fill_ms);
  std::printf("\nhybrid speedup: %.1fx", persistent_ms / hybrid_ms);
  std::printf(
      "\nexpected shape: the DRAM-cached decode path removes the PMem "
      "string-arena reads entirely, at zero recovery cost (the cache "
      "refills on demand).\n");
  return 0;
}

}  // namespace
}  // namespace poseidon::bench

int main() { return poseidon::bench::Main(); }
