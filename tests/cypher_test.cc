#include "query/cypher.h"

#include <gtest/gtest.h>

#include "jit/jit_query_engine.h"
#include "query/engine.h"

namespace poseidon::query {
namespace {

using storage::PVal;
using storage::RecordId;

class CypherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    mgr_ = std::make_unique<tx::TransactionManager>(store_.get(), nullptr);
    engine_ = std::make_unique<QueryEngine>(store_.get(), nullptr, 2);

    auto person = *store_->Code("Person");
    auto city = *store_->Code("City");
    auto knows = *store_->Code("knows");
    auto lives_in = *store_->Code("livesIn");
    auto id = *store_->Code("id");
    auto name = *store_->Code("name");
    auto age = *store_->Code("age");
    auto since = *store_->Code("since");

    auto tx = mgr_->Begin();
    RecordId c = *tx->CreateNode(
        city, {{id, PVal::Int(100)},
               {name, PVal::String(*store_->Code("Ilmenau"))}});
    RecordId persons[4];
    const char* names[] = {"ann", "bob", "cat", "dan"};
    for (int i = 0; i < 4; ++i) {
      persons[i] = *tx->CreateNode(
          person, {{id, PVal::Int(i)},
                   {name, PVal::String(*store_->Code(names[i]))},
                   {age, PVal::Int(20 + 10 * i)}});
      ASSERT_TRUE(tx->CreateRelationship(persons[i], c, lives_in, {}).ok());
    }
    for (int i = 0; i + 1 < 4; ++i) {
      ASSERT_TRUE(tx->CreateRelationship(persons[i], persons[i + 1], knows,
                                         {{since, PVal::Int(2000 + i)}})
                      .ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }

  Result<QueryResult> Run(std::string_view text,
                          std::vector<Value> params = {}) {
    auto plan = ParseCypher(text, &store_->dict());
    if (!plan.ok()) return plan.status();
    auto tx = mgr_->Begin();
    auto r = engine_->Execute(*plan, tx.get(), params);
    if (r.ok()) EXPECT_TRUE(tx->Commit().ok());
    return r;
  }

  std::string Decode(const Value& v) {
    return v.ToString(&store_->dict());
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<tx::TransactionManager> mgr_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(CypherTest, CountAllOfLabel) {
  auto r = Run("MATCH (p:Person) RETURN COUNT(*)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 4);
}

TEST_F(CypherTest, PropertyMapFilter) {
  auto r = Run("MATCH (p:Person {id: 2}) RETURN p.name, p.age");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(Decode(r->rows[0][0]), "cat");
  EXPECT_EQ(r->rows[0][1].AsInt(), 40);
}

TEST_F(CypherTest, ParameterBinding) {
  auto r = Run("MATCH (p:Person {id: $0}) RETURN p.age", {Value::Int(3)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 50);
}

TEST_F(CypherTest, StringLiteralFilter) {
  auto r = Run("MATCH (p:Person) WHERE p.name = 'bob' RETURN p.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST_F(CypherTest, OutgoingTraversalWithRelProperty) {
  auto r = Run(
      "MATCH (p:Person {id: 0})-[k:knows]->(f:Person) "
      "RETURN f.name, k.since");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(Decode(r->rows[0][0]), "bob");
  EXPECT_EQ(r->rows[0][1].AsInt(), 2000);
}

TEST_F(CypherTest, IncomingTraversal) {
  auto r = Run(
      "MATCH (c:City {id: 100})<-[:livesIn]-(p:Person) RETURN COUNT(*)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 4);
}

TEST_F(CypherTest, TwoHopPattern) {
  auto r = Run(
      "MATCH (a:Person {id: 0})-[:knows]->(b:Person)-[:knows]->(c:Person) "
      "RETURN c.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(Decode(r->rows[0][0]), "cat");
}

TEST_F(CypherTest, WhereWithAndOrderLimit) {
  auto r = Run(
      "MATCH (p:Person) WHERE p.age >= 30 AND p.age <= 50 "
      "RETURN p.name, p.age ORDER BY p.age DESC LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][1].AsInt(), 50);
  EXPECT_EQ(r->rows[1][1].AsInt(), 40);
}

TEST_F(CypherTest, IdFunctionAndBareVariable) {
  auto r = Run("MATCH (p:Person {id: 1}) RETURN id(p), p");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].kind(), Value::Kind::kInt);
  EXPECT_EQ(r->rows[0][1].kind(), Value::Kind::kNode);
}

TEST_F(CypherTest, LimitWithoutOrder) {
  auto r = Run("MATCH (p:Person) RETURN p.id LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(CypherTest, CaseInsensitiveKeywords) {
  auto r = Run("match (p:Person) where p.age > 35 return count(*)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 2);
}

TEST_F(CypherTest, UnknownLabelMatchesNothing) {
  auto r = Run("MATCH (x:Martian) RETURN COUNT(*)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
}

TEST_F(CypherTest, ParsedPlanRunsUnderJit) {
  auto plan = ParseCypher(
      "MATCH (p:Person)-[k:knows]->(f:Person) WHERE f.age > 25 "
      "RETURN f.name, k.since",
      &store_->dict());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto jit_engine = poseidon::jit::JitQueryEngine::Create(store_.get(),
                                                          nullptr, 2, nullptr);
  ASSERT_TRUE(jit_engine.ok());
  auto tx = mgr_->Begin();
  auto aot = (*jit_engine)->Execute(*plan, tx.get(), {},
                                    poseidon::jit::ExecutionMode::kInterpret);
  auto compiled = (*jit_engine)->Execute(
      *plan, tx.get(), {}, poseidon::jit::ExecutionMode::kJit);
  ASSERT_TRUE(aot.ok() && compiled.ok())
      << aot.status().ToString() << " / " << compiled.status().ToString();
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(aot->rows.size(), compiled->rows.size());
  EXPECT_EQ(compiled->rows.size(), 3u);
}

// --- Parse errors -------------------------------------------------------

TEST_F(CypherTest, ErrorsAreDiagnosed) {
  const char* bad[] = {
      "",                                         // empty
      "RETURN 1",                                 // no MATCH
      "MATCH (p:Person)",                         // no RETURN
      "MATCH (p:Person RETURN p.id",              // unbalanced paren
      "MATCH (p:Person) RETURN q.id",             // unknown variable
      "MATCH (p:Person) WHERE p.age >",           // missing value
      "MATCH (p:Person) RETURN p.id ORDER BY p.age",  // key not returned
      "MATCH (p:Person) RETURN p.name 'extra'",   // trailing tokens
      "MATCH (p:Person {name 'x'}) RETURN p.id",  // missing colon
  };
  for (const char* text : bad) {
    auto plan = ParseCypher(text, &store_->dict());
    EXPECT_FALSE(plan.ok()) << "should fail: " << text;
  }
}

TEST_F(CypherTest, UnterminatedStringFails) {
  auto plan = ParseCypher("MATCH (p:Person) WHERE p.name = 'oops RETURN p",
                          &store_->dict());
  EXPECT_FALSE(plan.ok());
}

}  // namespace
}  // namespace poseidon::query
