#include "pmem/pool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace poseidon::pmem {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/pool_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".pmem";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  PoolOptions FastOptions() {
    PoolOptions o;
    o.capacity = 64ull << 20;
    o.has_latency_override = true;
    o.latency_override = LatencyModel::Dram();  // tests skip the spin waits
    return o;
  }

  std::string path_;
};

TEST_F(PoolTest, CreateRejectsTinyCapacity) {
  PoolOptions o = FastOptions();
  o.capacity = 1024;
  auto r = Pool::Create(path_, o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PoolTest, CreateOpenRoundTrip) {
  uint64_t root_off = 0;
  {
    auto pool = Pool::Create(path_, FastOptions());
    ASSERT_TRUE(pool.ok()) << pool.status().ToString();
    auto alloc = (*pool)->Allocate(128);
    ASSERT_TRUE(alloc.ok());
    root_off = *alloc;
    auto* p = (*pool)->ToPtr<uint64_t>(root_off);
    *p = 0xdeadbeefcafef00dull;
    (*pool)->Persist(p, 8);
    (*pool)->set_root(root_off);
  }
  auto pool = Pool::Open(path_, FastOptions());
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_FALSE((*pool)->recovered_from_crash());  // clean shutdown
  EXPECT_EQ((*pool)->root(), root_off);
  EXPECT_EQ(*(*pool)->ToPtr<uint64_t>(root_off), 0xdeadbeefcafef00dull);
}

TEST_F(PoolTest, CreateFailsIfFileExists) {
  { auto pool = Pool::Create(path_, FastOptions()); ASSERT_TRUE(pool.ok()); }
  auto again = Pool::Create(path_, FastOptions());
  EXPECT_FALSE(again.ok());
}

TEST_F(PoolTest, VolatilePoolAllocates) {
  auto pool = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->mode(), PoolMode::kDram);
  auto a = (*pool)->Allocate(64);
  ASSERT_TRUE(a.ok());
  EXPECT_NE(*a, kNullOffset);
}

TEST_F(PoolTest, AllocationsAreAligned) {
  auto pool = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool.ok());
  for (uint64_t align : {8ull, 64ull, 256ull, 4096ull}) {
    auto a = (*pool)->Allocate(100, align);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a % align, 0u) << "align=" << align;
  }
}

TEST_F(PoolTest, FreeListReusesBlocks) {
  auto pool = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool.ok());
  auto a = (*pool)->Allocate(64);
  ASSERT_TRUE(a.ok());
  (*pool)->Free(*a, 64);
  auto b = (*pool)->Allocate(64);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b) << "freed block should be recycled (DG5)";
  EXPECT_EQ((*pool)->stats().alloc_from_free_list, 1u);
}

TEST_F(PoolTest, SizeClassesDoNotAlias) {
  auto pool = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool.ok());
  auto small = (*pool)->Allocate(64);
  auto big = (*pool)->Allocate(4096);
  ASSERT_TRUE(small.ok() && big.ok());
  (*pool)->Free(*small, 64);
  auto big2 = (*pool)->Allocate(4096);
  ASSERT_TRUE(big2.ok());
  EXPECT_NE(*big2, *small) << "a 4 KiB alloc must not reuse a 64 B block";
}

TEST_F(PoolTest, PoolExhaustionReported) {
  PoolOptions o = FastOptions();
  o.capacity = 16ull << 20;
  auto pool = Pool::Create(path_, o);
  ASSERT_TRUE(pool.ok());
  // The pool reserves ~8 MiB header+log; ask for more than the rest.
  auto a = (*pool)->Allocate(32ull << 20);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(PoolTest, RedoCommitAppliesAtomically) {
  auto pool_r = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(64);
  auto b = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok() && b.ok());

  RedoTx tx(pool->redo_log());
  uint64_t va = 11, vb = 22;
  tx.StageValue(*a, va);
  tx.StageValue(*b, vb);
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 11u);
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*b), 22u);
}

TEST_F(PoolTest, RedoRejectsOversizedTransaction) {
  auto pool_r = Pool::CreateVolatile(64ull << 20);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(16ull << 20);
  ASSERT_TRUE(a.ok());
  std::vector<char> big(9ull << 20, 1);  // exceeds the 8 MiB redo area
  RedoTx tx(pool->redo_log());
  tx.Stage(*a, big.data(), big.size());
  Status s = tx.Commit();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

// --- Crash simulation ----------------------------------------------------

TEST_F(PoolTest, UnflushedStoresVanishOnCrash) {
  PoolOptions o = FastOptions();
  o.crash_shadow = true;
  auto pool_r = Pool::Create(path_, o);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok());
  auto* p = pool->ToPtr<uint64_t>(*a);
  p[0] = 42;
  pool->Persist(&p[0], 8);  // durable
  p[1] = 43;                // NOT flushed
  pool->SimulateCrash();
  EXPECT_EQ(p[0], 42u) << "flushed store must survive";
  EXPECT_EQ(p[1], 0u) << "unflushed store must vanish";
  EXPECT_TRUE(pool->recovered_from_crash());
}

TEST_F(PoolTest, CrashBeforeRedoMarkerDiscardsLog) {
  PoolOptions o = FastOptions();
  o.crash_shadow = true;
  auto pool_r = Pool::Create(path_, o);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok());

  // Simulate "crash just before the marker": stage + persist entries by
  // hand, never set the marker.
  {
    RedoTx tx(pool->redo_log());
    uint64_t v = 99;
    tx.StageValue(*a, v);
    // No Commit() — as if we crashed before phase 2.
  }
  pool->SimulateCrash();
  EXPECT_FALSE(pool->redo_log()->Recover());
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 0u);
}

TEST_F(PoolTest, CrashAfterRedoCommitIsReplayed) {
  // Commit fully (marker durable + applied); then crash. Recovery must be
  // idempotent and the values durable.
  PoolOptions o = FastOptions();
  o.crash_shadow = true;
  auto pool_r = Pool::Create(path_, o);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok());
  {
    RedoTx tx(pool->redo_log());
    uint64_t v = 7;
    tx.StageValue(*a, v);
    ASSERT_TRUE(tx.Commit().ok());
  }
  pool->SimulateCrash();
  pool->redo_log()->Recover();
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 7u);
}

TEST_F(PoolTest, DirtyShutdownDetectedOnOpen) {
  {
    auto pool = Pool::Create(path_, FastOptions());
    ASSERT_TRUE(pool.ok());
    // Leak the mapping state by not calling the destructor properly:
    // emulate by reopening the file while "crashed" is recorded. Instead,
    // force: write clean_shutdown=0 happens at create; destructor sets 1.
    // To simulate a hard kill we copy the file before destruction.
    std::filesystem::copy_file(path_, path_ + ".crashed");
  }
  auto crashed = Pool::Open(path_ + ".crashed", FastOptions());
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
  EXPECT_TRUE((*crashed)->recovered_from_crash());
  std::filesystem::remove(path_ + ".crashed");
}

TEST_F(PoolTest, OpenRejectsZeroLengthFile) {
  { std::ofstream f(path_); }  // touch: 0 bytes
  auto r = Pool::Open(path_, FastOptions());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("empty"), std::string::npos)
      << r.status().ToString();
}

TEST_F(PoolTest, OpenRejectsFileSmallerThanHeaderPage) {
  {
    std::ofstream f(path_, std::ios::binary);
    std::string junk(512, 'x');
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  auto r = Pool::Open(path_, FastOptions());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos)
      << r.status().ToString();
}

TEST_F(PoolTest, OpenRejectsTruncatedPoolFile) {
  { auto pool = Pool::Create(path_, FastOptions()); ASSERT_TRUE(pool.ok()); }
  std::filesystem::resize_file(path_, 8ull << 20);  // chop off 56 MiB
  auto r = Pool::Open(path_, FastOptions());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("does not match file size"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(PoolTest, OpenRejectsGarbageHeader) {
  {
    std::ofstream f(path_, std::ios::binary);
    std::string junk(1ull << 20, '\x5a');
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  auto r = Pool::Open(path_, FastOptions());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos)
      << r.status().ToString();
}

TEST_F(PoolTest, HeaderSegmentCountWinsOverMismatchedEnvironment) {
  // The segment count is pool-creation configuration: reopening under a
  // different POSEIDON_REDO_SEGMENTS (or options) must keep the on-media
  // value — segment boundaries are derived from it — and surface the
  // mismatch as a recovery warning instead of silently reinterpreting the
  // log layout.
  PoolOptions o = FastOptions();
  o.redo_segments = 8;
  { auto pool = Pool::Create(path_, o); ASSERT_TRUE(pool.ok()); }

  PoolOptions reopen = FastOptions();
  reopen.redo_segments = 2;
  auto pool = Pool::Open(path_, reopen);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_EQ((*pool)->redo_log()->num_segments(), 8u);
  bool warned = false;
  for (const auto& w : (*pool)->recovery_report().warnings) {
    if (w.find("segment") != std::string::npos &&
        w.find("header") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned) << "the mismatch must be reported";
}

TEST_F(PoolTest, PPtrSizeIsSixteenBytes) {
  // C6: persistent pointers are twice the size of offsets.
  EXPECT_EQ(sizeof(Offset), 8u);
}

}  // namespace
}  // namespace poseidon::pmem
