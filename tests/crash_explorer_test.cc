// Exhaustive crash-point exploration (fault-injection tentpole, leg 1).
//
// The pool's FaultInjector numbers every persistence primitive (Flush/Drain,
// including PersistDeferred and coalesced FlushBatch flushes) 1, 2, 3, ... in
// execution order. This test runs one fixed LDBC-style update workload —
// person creates with properties, "knows" relationships, property updates,
// relationship + node deletes — once per crash point k: the durable image is
// frozen the instant primitive k begins, the workload finishes volatile-only,
// the pool "loses power", and recovery must yield EXACTLY the state after
// some committed prefix of the workload (boundary transactions are
// all-or-nothing), with the secondary index rebuildable and consistent with
// the surviving table contents.
//
// Determinism: background GC and group commit are disabled (their threads
// would interleave nondeterministic flushes into the point numbering) and
// the workload is single-threaded, so run k is byte-identical to the dry run
// up to point k.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "index/index_manager.h"
#include "pmem/fault_injector.h"
#include "pmem/psan.h"
#include "tx/transaction.h"

namespace poseidon::tx {
namespace {

using storage::DictCode;
using storage::PVal;
using storage::RecordId;

pmem::PoolOptions ExplorerPoolOptions() {
  pmem::PoolOptions o;
  o.mode = pmem::PoolMode::kDram;
  o.capacity = 48ull << 20;
  o.crash_shadow = true;
  return o;
}

/// Logical graph content, keyed by the unique "tag" property so it can be
/// compared across runs without relying on record ids.
struct Model {
  std::map<int64_t, int64_t> nodes;             // tag -> "v" property
  std::set<std::pair<int64_t, int64_t>> edges;  // (src tag, dst tag)

  bool operator==(const Model& o) const {
    return nodes == o.nodes && edges == o.edges;
  }
};

struct Workload {
  DictCode person, knows, tag_key, v_key;
  std::map<int64_t, RecordId> node_ids;                        // by tag
  std::map<std::pair<int64_t, int64_t>, RecordId> rel_ids;     // by tag pair
};

/// Runs the fixed update workload: one committed transaction per step,
/// appending the after-state to `snapshots` (whose front is the empty
/// pre-workload model). Every operation must succeed — crashes only freeze
/// the durable image, they never make the in-DRAM run fail.
void RunWorkload(TransactionManager* mgr, Workload* w,
                 std::vector<Model>* snapshots) {
  Model m = snapshots->back();
  auto commit = [&](std::unique_ptr<Transaction> tx) {
    ASSERT_TRUE(tx->Commit().ok());
    snapshots->push_back(m);
  };

  // Six persons, one per transaction (insert + property writes).
  for (int64_t t = 1; t <= 6; ++t) {
    auto tx = mgr->Begin();
    auto id = tx->CreateNode(
        w->person, {{w->tag_key, PVal::Int(t)}, {w->v_key, PVal::Int(t * 10)}});
    ASSERT_TRUE(id.ok());
    w->node_ids[t] = *id;
    m.nodes[t] = t * 10;
    commit(std::move(tx));
  }

  // knows edges: a chain 1->2->3->4, then (4,5) and (5,6) in one tx.
  auto link = [&](Transaction* tx, int64_t a, int64_t b) {
    auto id = tx->CreateRelationship(w->node_ids[a], w->node_ids[b], w->knows,
                                     {});
    ASSERT_TRUE(id.ok());
    w->rel_ids[{a, b}] = *id;
    m.edges.insert({a, b});
  };
  for (int64_t a = 1; a <= 3; ++a) {
    auto tx = mgr->Begin();
    link(tx.get(), a, a + 1);
    commit(std::move(tx));
  }
  {
    auto tx = mgr->Begin();
    link(tx.get(), 4, 5);
    link(tx.get(), 5, 6);
    commit(std::move(tx));
  }

  // Property updates on persons 1, 3, 5.
  for (int64_t t : {1, 3, 5}) {
    auto tx = mgr->Begin();
    ASSERT_TRUE(
        tx->SetNodeProperty(w->node_ids[t], w->v_key, PVal::Int(t + 1000))
            .ok());
    m.nodes[t] = t + 1000;
    commit(std::move(tx));
  }

  // Unfriend 2->3, then detach and delete person 6.
  {
    auto tx = mgr->Begin();
    ASSERT_TRUE(tx->DeleteRelationship(w->rel_ids[{2, 3}]).ok());
    m.edges.erase({2, 3});
    commit(std::move(tx));
  }
  {
    auto tx = mgr->Begin();
    ASSERT_TRUE(tx->DeleteRelationship(w->rel_ids[{5, 6}]).ok());
    m.edges.erase({5, 6});
    commit(std::move(tx));
  }
  {
    auto tx = mgr->Begin();
    ASSERT_TRUE(tx->DeleteNode(w->node_ids[6]).ok());
    m.nodes.erase(6);
    commit(std::move(tx));
  }

  // A mixed transaction: new person 7 plus an edge and an update.
  {
    auto tx = mgr->Begin();
    auto id = tx->CreateNode(
        w->person, {{w->tag_key, PVal::Int(7)}, {w->v_key, PVal::Int(70)}});
    ASSERT_TRUE(id.ok());
    w->node_ids[7] = *id;
    m.nodes[7] = 70;
    link(tx.get(), 7, 1);
    ASSERT_TRUE(
        tx->SetNodeProperty(w->node_ids[2], w->v_key, PVal::Int(2002)).ok());
    m.nodes[2] = 2002;
    commit(std::move(tx));
  }
}

/// Reads the recovered graph back into a Model and checks table/index
/// consistency: every surviving node has both properties, adjacency resolves
/// to surviving endpoints, and a freshly built index finds each node exactly
/// once by tag.
void ExtractRecovered(storage::GraphStore* store, TransactionManager* mgr,
                      DictCode person, DictCode tag_key, DictCode v_key,
                      Model* out) {
  std::map<RecordId, int64_t> tag_of;
  auto tx = mgr->Begin();
  store->nodes().ForEach([&](RecordId id, storage::NodeRecord& rec) {
    EXPECT_EQ(rec.tx.txn_id, storage::kUnlocked)
        << "node " << id << " kept a lock across recovery";
    // A committed delete leaves a tombstoned version in the table until GC
    // reclaims the slot; such records are invisible, not corrupt.
    auto visible = tx->GetNode(id);
    if (!visible.ok()) {
      EXPECT_EQ(visible.status().code(), StatusCode::kNotFound)
          << "node " << id << ": " << visible.status().ToString();
      return;
    }
    auto tag = tx->GetNodeProperty(id, tag_key);
    auto v = tx->GetNodeProperty(id, v_key);
    ASSERT_TRUE(tag.ok()) << "node " << id << ": "
                          << tag.status().ToString();
    ASSERT_TRUE(v.ok()) << "node " << id << ": " << v.status().ToString();
    ASSERT_FALSE(tag->is_null()) << "node " << id << " lost its tag";
    ASSERT_FALSE(v->is_null()) << "node " << id << " lost its value";
    tag_of[id] = tag->AsInt();
    out->nodes[tag->AsInt()] = v->AsInt();
  });
  for (const auto& [id, tag] : tag_of) {
    ASSERT_TRUE(
        tx->ForEachOutgoing(
              id,
              [&](RecordId, const storage::RelationshipRecord& rel) {
                auto dst = tag_of.find(rel.dst);
                EXPECT_NE(dst, tag_of.end())
                    << "edge from tag " << tag << " points at a dead node";
                if (dst != tag_of.end()) out->edges.insert({tag, dst->second});
                return true;
              })
            .ok());
  }

  // Index consistency: a rebuild over the recovered table must find every
  // node exactly once by its unique tag.
  index::IndexManager indexes(store);
  auto tree = indexes.CreateIndex(person, tag_key, index::Placement::kVolatile);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  for (const auto& [tag, v] : out->nodes) {
    std::vector<RecordId> found;
    (*tree)->LookupAll(tag, [&](const index::BTreeKey&, RecordId id) {
      found.push_back(id);
    });
    ASSERT_EQ(found.size(), 1u) << "index lookup for tag " << tag;
    EXPECT_EQ(tag_of[found[0]], tag);
  }
}

TEST(CrashExplorerTest, EveryCrashPointRecoversACommittedPrefix) {
  // Deterministic point numbering: no background flush sources.
  setenv("POSEIDON_BG_GC", "0", 1);
  setenv("POSEIDON_GROUP_COMMIT", "0", 1);

  // --- Dry run: count the crash points the sweep must cover. -------------
  std::vector<Model> snapshots{Model{}};
  uint64_t num_points = 0;
  {
    auto pool = pmem::Pool::Create("", ExplorerPoolOptions());
    ASSERT_TRUE(pool.ok());
    auto store = storage::GraphStore::Create(pool->get());
    ASSERT_TRUE(store.ok());
    TransactionManager mgr(store->get(), nullptr);
    Workload w;
    w.person = *(*store)->Code("Person");
    w.knows = *(*store)->Code("KNOWS");
    w.tag_key = *(*store)->Code("tag");
    w.v_key = *(*store)->Code("v");

    pmem::FaultInjector* inj = (*pool)->fault_injector();
    ASSERT_NE(inj, nullptr) << "crash_shadow pools must carry an injector";
    uint64_t before = inj->points_seen();
    RunWorkload(&mgr, &w, &snapshots);
    num_points = inj->points_seen() - before;
  }
  ASSERT_GE(num_points, 50u)
      << "the workload must expose a meaningful crash surface";

  // --- The sweep: crash at every point, recover, match a prefix. ---------
  size_t last_prefix = 0;
  for (uint64_t k = 1; k <= num_points; ++k) {
    auto pool = pmem::Pool::Create("", ExplorerPoolOptions());
    ASSERT_TRUE(pool.ok());
    DictCode person, tag_key, v_key;
    {
      auto store = storage::GraphStore::Create(pool->get());
      ASSERT_TRUE(store.ok());
      auto mgr =
          std::make_unique<TransactionManager>(store->get(), nullptr);
      Workload w;
      w.person = person = *(*store)->Code("Person");
      w.knows = *(*store)->Code("KNOWS");
      w.tag_key = tag_key = *(*store)->Code("tag");
      w.v_key = v_key = *(*store)->Code("v");

      pmem::FaultInjector* inj = (*pool)->fault_injector();
      inj->ArmCrashPoint(inj->points_seen() + k);
      std::vector<Model> rerun{Model{}};
      RunWorkload(mgr.get(), &w, &rerun);
      ASSERT_TRUE(inj->crash_fired()) << "point " << k << " never executed";
      ASSERT_EQ(rerun.size(), snapshots.size())
          << "the workload must be deterministic";
      // DRAM state (manager, store maps) dies with the crash.
    }

    (*pool)->SimulateCrash();
    (*pool)->redo_log()->Recover();
    auto store = storage::GraphStore::Open(pool->get());
    ASSERT_TRUE(store.ok())
        << "crash point " << k << ": " << store.status().ToString();
    TransactionManager mgr(store->get(), nullptr);
    ASSERT_TRUE(mgr.RecoverInFlight().ok()) << "crash point " << k;

    Model recovered;
    ExtractRecovered(store->get(), &mgr, person, tag_key, v_key, &recovered);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "consistency violation at crash point " << k;
    }

    size_t match = snapshots.size();
    for (size_t j = 0; j < snapshots.size(); ++j) {
      if (snapshots[j] == recovered) {
        match = j;
        break;
      }
    }
    ASSERT_LT(match, snapshots.size())
        << "crash point " << k << " recovered a state that is NOT any "
        << "committed prefix (" << recovered.nodes.size() << " nodes, "
        << recovered.edges.size() << " edges)";
    EXPECT_GE(match, last_prefix)
        << "crash point " << k << " lost transactions an earlier crash "
        << "point had already made durable";
    last_prefix = std::max(last_prefix, match);
  }
  EXPECT_EQ(last_prefix, snapshots.size() - 1)
      << "the final crash points must recover the complete workload";
  // The whole crash sweep — every crash point, every recovery — ran under
  // the persist-order sanitizer when this is a POSEIDON_PSAN build; the
  // production write paths must never trip it. Always 0 in plain builds.
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u)
      << "crash exploration surfaced a persist-ordering violation";
}

TEST(CrashExplorerTest, EnvVariableArmsCrashPoint) {
  // POSEIDON_CRASH_POINT drives whole-binary sweeps (the recovery bench):
  // the pool arms itself at Create.
  setenv("POSEIDON_BG_GC", "0", 1);
  setenv("POSEIDON_GROUP_COMMIT", "0", 1);
  setenv("POSEIDON_CRASH_POINT", "5", 1);
  auto pool = pmem::Pool::Create("", ExplorerPoolOptions());
  unsetenv("POSEIDON_CRASH_POINT");
  ASSERT_TRUE(pool.ok());
  pmem::FaultInjector* inj = (*pool)->fault_injector();
  ASSERT_NE(inj, nullptr);
  auto store = storage::GraphStore::Create(pool->get());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(inj->crash_fired());
  EXPECT_EQ(inj->crash_fired_at(), 5u);
}

}  // namespace
}  // namespace poseidon::tx
