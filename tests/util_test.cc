#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "util/backoff.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/spin_timer.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace poseidon {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusTest, OverloadGovernanceCodes) {
  Status d = Status::DeadlineExceeded("query deadline exceeded");
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.IsDeadlineExceeded());
  EXPECT_FALSE(d.IsCancelled());
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DEADLINE_EXCEEDED: query deadline exceeded");

  Status c = Status::Cancelled("user abort");
  EXPECT_TRUE(c.IsCancelled());
  EXPECT_FALSE(c.IsDeadlineExceeded());
  EXPECT_EQ(c.ToString(), "CANCELLED: user abort");

  Status r = Status::ResourceExhausted("pool full");
  EXPECT_TRUE(r.IsResourceExhausted());
}

// --- CancelToken -------------------------------------------------------------

TEST(CancelTokenTest, DefaultPassesChecks) {
  util::CancelToken t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.has_deadline());
  EXPECT_TRUE(t.Check().ok());
}

TEST(CancelTokenTest, ExplicitCancelWinsOverDeadline) {
  util::CancelToken t;
  t.SetDeadlineAfterMs(60'000);  // far future: deadline alone passes
  EXPECT_TRUE(t.Check().ok());
  t.Cancel();
  Status s = t.Check();
  EXPECT_TRUE(s.IsCancelled());
  t.Reset();
  EXPECT_TRUE(t.Check().ok());
}

TEST(CancelTokenTest, ExpiredDeadlineReportsDeadlineExceeded) {
  util::CancelToken t;
  t.SetDeadlineAfterMs(1);
  // Busy-wait past the deadline (steady clock; 1 ms).
  while (t.Check().ok()) {
  }
  EXPECT_TRUE(t.Check().IsDeadlineExceeded());
  t.SetDeadlineAfterMs(0);  // disarm
  EXPECT_TRUE(t.Check().ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Aborted("conflict");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  POSEIDON_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainedMacro(int x) {
  POSEIDON_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagateErrors) {
  auto ok = ChainedMacro(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  auto err = ChainedMacro(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

// --- Hashing -----------------------------------------------------------------

TEST(HashTest, DeterministicAcrossCalls) {
  EXPECT_EQ(HashString("poseidon"), HashString("poseidon"));
  EXPECT_NE(HashString("poseidon"), HashString("poseidoN"));
  EXPECT_EQ(HashU64(12345), HashU64(12345));
}

TEST(HashTest, SequentialKeysSpread) {
  // Open-addressing quality: consecutive ids must not cluster.
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 1024; ++i) buckets.insert(HashU64(i) % 4096);
  EXPECT_GT(buckets.size(), 800u);
}

TEST(HashTest, CombineIsOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng a2(7);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ZipfIsBoundedAndSkewed) {
  Rng rng(5);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t v = rng.Zipf(1000);
    ASSERT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // A zipf(1.2) distribution concentrates mass on small ranks.
  EXPECT_GT(low, total / 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- SpinWait / StopWatch ---------------------------------------------------

TEST(SpinTimerTest, WaitsApproximatelyRequestedTime) {
  StopWatch w;
  SpinWaitNs(200000);  // 200 us
  uint64_t elapsed = w.ElapsedNs();
  EXPECT_GE(elapsed, 190000u);
  EXPECT_LT(elapsed, 5000000u);  // generous upper bound for busy CI boxes
}

TEST(SpinTimerTest, ZeroIsNoop) {
  StopWatch w;
  for (int i = 0; i < 1000; ++i) SpinWaitNs(0);
  EXPECT_LT(w.ElapsedUs(), 10000.0);
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, WorkerIndexStableAndBounded) {
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::current_worker_index(), -1)
      << "non-pool threads have no index";
  std::mutex mu;
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      int idx = ThreadPool::current_worker_index();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(idx);
    });
  }
  pool.WaitIdle();
  for (int idx : seen) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
  }
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      int now = active.fetch_add(1) + 1;
      int prev = max_active.load();
      while (now > prev && !max_active.compare_exchange_weak(prev, now)) {
      }
      SpinWaitNs(1000000);
      active.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GE(max_active.load(), 2);
}

// --- FaultRegistry env-spec parsing -----------------------------------------

// Each test uses a unique site name: ShouldFail latches the environment on
// the site's first evaluation, and Reset() forgets the latch but a previous
// test's unsetenv would otherwise race with reuse.

class FaultEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv(var_.c_str());
    util::FaultRegistry::Instance().Reset();
  }

  /// Sets POSEIDON_FAULT_<SITE> for `site` (dots -> underscores, uppercase).
  void SetSpec(const std::string& site, const char* spec) {
    var_ = "POSEIDON_FAULT_";
    for (char c : site) {
      var_.push_back(c == '.' ? '_' : static_cast<char>(std::toupper(
                                          static_cast<unsigned char>(c))));
    }
    setenv(var_.c_str(), spec, 1);
  }

  std::string var_ = "POSEIDON_FAULT_UTIL_TEST_UNUSED";
};

TEST_F(FaultEnvTest, PlainCountArmsOnceAtThatHit) {
  SetSpec("env.plain", "3");
  auto& reg = util::FaultRegistry::Instance();
  EXPECT_FALSE(reg.ShouldFail("env.plain"));
  EXPECT_FALSE(reg.ShouldFail("env.plain"));
  EXPECT_TRUE(reg.ShouldFail("env.plain"));   // 3rd evaluation fires
  EXPECT_FALSE(reg.ShouldFail("env.plain"));  // times defaults to 1
  EXPECT_EQ(reg.fired("env.plain"), 1u);
}

TEST_F(FaultEnvTest, TimesSuffixKeepsFiring) {
  SetSpec("env.times", "2:3");
  auto& reg = util::FaultRegistry::Instance();
  EXPECT_FALSE(reg.ShouldFail("env.times"));
  EXPECT_TRUE(reg.ShouldFail("env.times"));
  EXPECT_TRUE(reg.ShouldFail("env.times"));
  EXPECT_TRUE(reg.ShouldFail("env.times"));
  EXPECT_FALSE(reg.ShouldFail("env.times"));  // recovered after 3 failures
  EXPECT_EQ(reg.fired("env.times"), 3u);
}

TEST_F(FaultEnvTest, AlwaysNeverRecovers) {
  SetSpec("env.always", "always");
  auto& reg = util::FaultRegistry::Instance();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(reg.ShouldFail("env.always"));
  }
  EXPECT_EQ(reg.fired("env.always"), 50u);
}

TEST_F(FaultEnvTest, MalformedSpecsLeaveSiteDisarmed) {
  const char* bad[] = {"abc", "0", ":", "", ":4", "-3"};
  int n = 0;
  for (const char* spec : bad) {
    std::string site = "env.bad" + std::to_string(n++);
    SetSpec(site, spec);
    auto& reg = util::FaultRegistry::Instance();
    for (int i = 0; i < 5; ++i) {
      EXPECT_FALSE(reg.ShouldFail(site)) << "spec '" << spec << "'";
    }
    unsetenv(var_.c_str());
  }
}

TEST_F(FaultEnvTest, MalformedTimesSuffixFallsBackToOne) {
  SetSpec("env.badtimes", "2:zzz");
  auto& reg = util::FaultRegistry::Instance();
  EXPECT_FALSE(reg.ShouldFail("env.badtimes"));
  EXPECT_TRUE(reg.ShouldFail("env.badtimes"));
  EXPECT_FALSE(reg.ShouldFail("env.badtimes"));  // times stayed at 1
}

TEST_F(FaultEnvTest, UnknownSiteNamesAreInertAndCounted) {
  // Nothing ever arms a site nobody set a variable for: evaluations count
  // but never fail, and fired() of a never-evaluated name is zero.
  auto& reg = util::FaultRegistry::Instance();
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(reg.ShouldFail("no.such.site"));
  }
  EXPECT_EQ(reg.hits("no.such.site"), 10u);
  EXPECT_EQ(reg.fired("no.such.site"), 0u);
  EXPECT_EQ(reg.hits("never.evaluated"), 0u);
}

TEST_F(FaultEnvTest, ExplicitArmOverridesEnvironment) {
  SetSpec("env.override", "always");
  auto& reg = util::FaultRegistry::Instance();
  reg.Arm("env.override", 1, 1);  // arming first marks env as consumed
  EXPECT_TRUE(reg.ShouldFail("env.override"));
  EXPECT_FALSE(reg.ShouldFail("env.override"));  // "always" never kicked in
}

// --- Backoff jitter ----------------------------------------------------------

TEST(BackoffTest, ZeroJitterIsExactExponential) {
  util::Backoff::Options o;
  o.max_attempts = 16;
  o.base_spin_ns = 4;
  o.max_spin_ns = 64;
  util::Backoff b(o);
  uint64_t expected = 4;
  while (b.Next()) {
    EXPECT_EQ(b.last_spin_ns(), expected);
    expected = expected >= 64 ? 64 : expected * 2;
  }
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.attempts(), 16);
}

TEST(BackoffTest, JitterStaysWithinPctBounds) {
  util::Backoff::Options o;
  o.max_attempts = 64;
  o.base_spin_ns = 100;
  o.max_spin_ns = 100000;
  o.jitter_pct = 25;
  o.jitter_seed = 42;
  util::Backoff b(o);
  uint64_t nominal = 100;
  bool saw_deviation = false;
  while (b.Next()) {
    // last_spin_ns must lie in nominal * [0.75, 1.25], clamped to the cap.
    uint64_t lo = nominal * 75 / 100;
    uint64_t hi = nominal * 125 / 100;
    if (hi > o.max_spin_ns) hi = o.max_spin_ns;
    EXPECT_GE(b.last_spin_ns(), lo);
    EXPECT_LE(b.last_spin_ns(), hi);
    saw_deviation |= b.last_spin_ns() != nominal;
    nominal = nominal >= o.max_spin_ns ? o.max_spin_ns : nominal * 2;
  }
  EXPECT_TRUE(saw_deviation) << "25% jitter never moved the spin";
}

TEST(BackoffTest, JitterNeverExceedsMaxSpin) {
  util::Backoff::Options o;
  o.max_attempts = 64;
  o.base_spin_ns = 4096;
  o.max_spin_ns = 8192;
  o.jitter_pct = 100;
  o.jitter_seed = 7;
  util::Backoff b(o);
  while (b.Next()) {
    EXPECT_LE(b.last_spin_ns(), o.max_spin_ns);
  }
}

TEST(BackoffTest, JitterStreamIsDeterministicPerSeed) {
  util::Backoff::Options o;
  o.max_attempts = 32;
  o.base_spin_ns = 1;  // tiny spins keep the test instant
  o.max_spin_ns = 8192;
  o.jitter_pct = 50;
  o.jitter_seed = 1234;
  std::vector<uint64_t> a, bvals;
  {
    util::Backoff b(o);
    while (b.Next()) a.push_back(b.last_spin_ns());
  }
  {
    util::Backoff b(o);
    while (b.Next()) bvals.push_back(b.last_spin_ns());
  }
  EXPECT_EQ(a, bvals);
}

TEST(BackoffTest, FromEnvReadsJitterPct) {
  setenv("POSEIDON_BACKOFF_JITTER_PCT", "30", 1);
  util::Backoff::Options o = util::Backoff::FromEnv(8);
  EXPECT_EQ(o.jitter_pct, 30u);
  setenv("POSEIDON_BACKOFF_JITTER_PCT", "250", 1);
  o = util::Backoff::FromEnv(8);
  EXPECT_EQ(o.jitter_pct, 100u) << "jitter percent clamps to 100";
  unsetenv("POSEIDON_BACKOFF_JITTER_PCT");
  o = util::Backoff::FromEnv(8);
  EXPECT_EQ(o.jitter_pct, 0u);
}

}  // namespace
}  // namespace poseidon
