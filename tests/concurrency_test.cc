// Multi-threaded MVTO stress tests: snapshot-isolation invariants under
// concurrent readers and writers (paper §5's claim of "higher concurrency"
// with consistent snapshots).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "query/engine.h"
#include "tx/transaction.h"
#include "util/random.h"

namespace poseidon::tx {
namespace {

using storage::DictCode;
using storage::PVal;
using storage::RecordId;

// ThreadSanitizer serializes atomics and instruments every access (10-20x);
// the stress loops shrink so `ctest -L tsan` stays tractable — race coverage
// comes from the interleavings, not the iteration count.
#if defined(__SANITIZE_THREAD__)
constexpr int kStressScale = 8;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kStressScale = 8;
#else
constexpr int kStressScale = 1;
#endif
#else
constexpr int kStressScale = 1;
#endif

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(512ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    mgr_ = std::make_unique<TransactionManager>(store_.get(), nullptr);
    account_ = *store_->Code("Account");
    balance_ = *store_->Code("balance");
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<TransactionManager> mgr_;
  DictCode account_, balance_;
};

TEST_F(ConcurrencyTest, DisjointWritersAllCommit) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto tx = mgr_->Begin();
        auto id = tx->CreateNode(
            account_, {{balance_, PVal::Int(t * 100000 + i)}});
        if (!id.ok() || !tx->Commit().ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0) << "disjoint inserts must never conflict";
  EXPECT_EQ(store_->nodes().size(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(mgr_->commits(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(ConcurrencyTest, HotKeyWritersSerializeViaAborts) {
  RecordId hot;
  {
    auto tx = mgr_->Begin();
    hot = *tx->CreateNode(account_, {{balance_, PVal::Int(0)}});
    ASSERT_TRUE(tx->Commit().ok());
  }
  constexpr int kThreads = 4;
  constexpr int kAttempts = 300;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttempts; ++i) {
        auto tx = mgr_->Begin();
        Status s = tx->SetNodeProperty(hot, balance_, PVal::Int(i));
        if (s.ok()) s = tx->Commit();
        if (s.ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(committed.load(), 0);
  EXPECT_EQ(mgr_->commits(), static_cast<uint64_t>(committed.load() + 1));
  // The record must remain readable and consistent afterwards.
  auto check = mgr_->Begin();
  EXPECT_TRUE(check->GetNodeProperty(hot, balance_).ok());
}

TEST_F(ConcurrencyTest, SnapshotSumInvariantUnderTransfers) {
  // The classic bank test: concurrent transfers move money between
  // accounts; snapshot readers must always observe the invariant total.
  constexpr int kAccounts = 10;
  constexpr int64_t kInitial = 1000;
  std::vector<RecordId> accounts;
  {
    auto tx = mgr_->Begin();
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(
          *tx->CreateNode(account_, {{balance_, PVal::Int(kInitial)}}));
    }
    ASSERT_TRUE(tx->Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> transfers{0};
  std::atomic<int> bad_snapshots{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(100 + w);
      while (!stop.load(std::memory_order_acquire)) {
        RecordId from = accounts[rng.Uniform(kAccounts)];
        RecordId to = accounts[rng.Uniform(kAccounts)];
        if (from == to) continue;
        int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(50));
        auto tx = mgr_->Begin();
        auto from_bal = tx->GetNodeProperty(from, balance_);
        if (!from_bal.ok()) continue;  // aborted: retry
        auto to_bal = tx->GetNodeProperty(to, balance_);
        if (!to_bal.ok()) continue;
        if (!tx->SetNodeProperty(from, balance_,
                                 PVal::Int(from_bal->AsInt() - amount))
                 .ok()) {
          continue;
        }
        if (!tx->SetNodeProperty(to, balance_,
                                 PVal::Int(to_bal->AsInt() + amount))
                 .ok()) {
          continue;
        }
        if (tx->Commit().ok()) transfers.fetch_add(1);
      }
    });
  }

  std::thread reader([&] {
    int reads = 0;
    while (reads < 300) {
      auto tx = mgr_->Begin();
      int64_t sum = 0;
      bool clean = true;
      for (RecordId id : accounts) {
        auto v = tx->GetNodeProperty(id, balance_);
        if (!v.ok()) {
          clean = false;  // reader aborted on a write lock: retry
          break;
        }
        sum += v->AsInt();
      }
      if (!clean) continue;
      ++reads;
      if (sum != kAccounts * kInitial) bad_snapshots.fetch_add(1);
    }
    stop.store(true, std::memory_order_release);
  });

  reader.join();
  for (auto& w : writers) w.join();

  EXPECT_EQ(bad_snapshots.load(), 0)
      << "snapshot isolation violated: reader saw a partial transfer";
  EXPECT_GT(transfers.load(), 0) << "writers must make progress";

  // Final ground truth.
  auto tx = mgr_->Begin();
  int64_t total = 0;
  for (RecordId id : accounts) {
    total += tx->GetNodeProperty(id, balance_)->AsInt();
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_F(ConcurrencyTest, ConcurrentInsertsAndScans) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      auto tx = mgr_->Begin();
      (void)tx->CreateNode(account_, {{balance_, PVal::Int(i)}});
      (void)tx->Commit();
    }
    stop.store(true, std::memory_order_release);
  });
  uint64_t last_count = 0;
  while (!stop.load(std::memory_order_acquire)) {
    auto tx = mgr_->Begin();
    uint64_t count = 0;
    uint64_t slots = store_->nodes().NumSlots();
    bool clean = true;
    for (uint64_t id = 0; id < slots && clean; ++id) {
      if (!store_->nodes().IsOccupied(id)) continue;
      auto n = tx->GetNode(id);
      if (n.ok()) {
        ++count;
      } else if (!n.status().IsNotFound()) {
        clean = false;  // locked: abandon this snapshot
      }
    }
    if (!clean) continue;
    EXPECT_GE(count, last_count) << "commit visibility must be monotonic";
    last_count = count;
  }
  writer.join();
  EXPECT_EQ(store_->nodes().size(), 2000u);
}

TEST_F(ConcurrencyTest, ConcurrentAdjacencyInsertsOnDistinctNodes) {
  constexpr int kNodes = 8;
  std::vector<RecordId> hubs;
  DictCode follows = *store_->Code("follows");
  {
    auto tx = mgr_->Begin();
    for (int i = 0; i < kNodes; ++i) {
      hubs.push_back(*tx->CreateNode(account_, {}));
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  // One thread per hub: no cross-thread conflicts, every edge must land.
  std::vector<std::thread> threads;
  constexpr int kEdges = 100;
  for (int t = 0; t < kNodes; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEdges; ++i) {
        auto tx = mgr_->Begin();
        auto spoke = tx->CreateNode(account_, {});
        ASSERT_TRUE(spoke.ok());
        ASSERT_TRUE(
            tx->CreateRelationship(hubs[t], *spoke, follows, {}).ok());
        ASSERT_TRUE(tx->Commit().ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  auto tx = mgr_->Begin();
  for (int t = 0; t < kNodes; ++t) {
    int degree = 0;
    ASSERT_TRUE(tx->ForEachOutgoing(hubs[t], [&](RecordId, const auto&) {
                      ++degree;
                      return true;
                    }).ok());
    EXPECT_EQ(degree, kEdges) << "hub " << t;
  }
}

TEST_F(ConcurrencyTest, MorselParallelScanNeverSeesUncommittedVersions) {
  // Morsel-parallel batched scans race writers that insert "poison" nodes
  // (balance < 0) and abort, interleaved with committed inserts
  // (balance >= 0). MVTO visibility must hold on every worker: a parallel
  // scan may never surface an uncommitted or aborted version.
  constexpr int kSeed = 600;  // spans multiple occupancy words + morsels
  const int kReads = 150 / kStressScale;
  {
    auto tx = mgr_->Begin();
    for (int i = 0; i < kSeed; ++i) {
      ASSERT_TRUE(tx->CreateNode(account_, {{balance_, PVal::Int(i)}}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }

  query::QueryEngine engine(store_.get(), nullptr, 4);
  using query::CmpOp;
  using query::Expr;
  using query::PlanBuilder;
  using query::Value;
  query::Plan poison_count = PlanBuilder()
                                 .NodeScan(account_)
                                 .FilterProperty(0, balance_, CmpOp::kLt,
                                                 Expr::Literal(Value::Int(0)))
                                 .Count()
                                 .Build();
  query::Plan committed_count =
      PlanBuilder()
          .NodeScan(account_)
          .FilterProperty(0, balance_, CmpOp::kGe,
                          Expr::Literal(Value::Int(0)))
          .Count()
          .Build();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        {  // poison insert, always rolled back
          auto tx = mgr_->Begin();
          (void)tx->CreateNode(account_, {{balance_, PVal::Int(-1)}});
          tx->Abort();
        }
        {  // committed insert
          auto tx = mgr_->Begin();
          (void)tx->CreateNode(account_, {{balance_, PVal::Int(1)}});
          (void)tx->Commit();
        }
      }
    });
  }

  int poison_seen = 0;
  int64_t last_committed = kSeed;
  for (int reads = 0; reads < kReads;) {
    auto tx = mgr_->Begin();
    auto poison = engine.Execute(poison_count, tx.get(), {},
                                 /*parallel=*/true);
    auto committed = engine.Execute(committed_count, tx.get(), {},
                                    /*parallel=*/true);
    if (!poison.ok() || !committed.ok()) continue;  // writer lock: retry
    ++reads;
    if (poison->rows[0][0].AsInt() != 0) ++poison_seen;
    int64_t now_committed = committed->rows[0][0].AsInt();
    EXPECT_GE(now_committed, last_committed)
        << "commit visibility must be monotonic across parallel scans";
    last_committed = now_committed;
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();

  EXPECT_EQ(poison_seen, 0)
      << "morsel-parallel scan surfaced uncommitted/aborted versions";
  EXPECT_GT(last_committed, kSeed) << "writers must make progress";
}

TEST_F(ConcurrencyTest, AdjacencyCacheInvalidationRaceStaysSnapshotExact) {
  // Multiple writers churn the topology of shared hub nodes (insert a spoke
  // edge, commit, delete it, commit) while readers run Expand through the
  // DRAM adjacency cache. Invalidation is asynchronous hygiene, so the cache
  // may hold stale arrays at any moment — but a reader must never be SERVED
  // one: within a single snapshot the cached walk has to agree exactly with
  // the raw chain walk, and every served edge must resolve to a visible
  // relationship with matching endpoints. Foreign-lock aborts are expected.
  constexpr int kHubs = 3;
  const int kWriterIters = 120 / kStressScale;
  const int kReaderIters = 200 / kStressScale;
  DictCode follows = *store_->Code("follows");
  std::vector<RecordId> hubs, spokes;
  {
    auto tx = mgr_->Begin();
    for (int i = 0; i < kHubs; ++i) hubs.push_back(*tx->CreateNode(account_, {}));
    for (int i = 0; i < 12; ++i) spokes.push_back(*tx->CreateNode(account_, {}));
    for (int i = 0; i < kHubs; ++i) {
      ASSERT_TRUE(tx->CreateRelationship(hubs[i], spokes[i], follows, {}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }

  std::atomic<uint64_t> commits{0};
  std::atomic<int> mismatches{0};
  auto writer = [&](int seed) {
    Rng rng(seed);
    for (int i = 0; i < kWriterIters; ++i) {
      RecordId hub = hubs[rng.Uniform(kHubs)];
      RecordId spoke = spokes[rng.Uniform(spokes.size())];
      auto tx = mgr_->Begin();
      auto rel = tx->CreateRelationship(hub, spoke, follows, {});
      if (!rel.ok() || !tx->Commit().ok()) continue;
      commits.fetch_add(1, std::memory_order_relaxed);
      auto tx2 = mgr_->Begin();
      if (tx2->DeleteRelationship(*rel).ok() && tx2->Commit().ok()) {
        commits.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  auto reader = [&](int seed) {
    Rng rng(seed);
    for (int i = 0; i < kReaderIters; ++i) {
      RecordId hub = hubs[rng.Uniform(kHubs)];
      auto tx = mgr_->Begin();
      std::vector<std::pair<RecordId, RecordId>> cached, chain;
      auto cs = tx->ForEachNeighbor(
          hub, AdjDir::kOut, [&](RecordId rel, DictCode, RecordId neighbor) {
            cached.emplace_back(rel, neighbor);
            return true;
          });
      if (!cs.ok()) {
        tx->Abort();
        continue;  // foreign write lock
      }
      auto ws = tx->ForEachOutgoing(
          hub, [&](RecordId rel, const storage::RelationshipRecord& rec) {
            chain.emplace_back(rel, rec.dst);
            return true;
          });
      if (ws.ok() && cached != chain) mismatches.fetch_add(1);
      for (auto& [rel, neighbor] : cached) {
        auto rr = tx->GetRelationship(rel);
        if (!rr.ok()) continue;  // locked by a writer mid-read
        if (rr->rec.src != hub || rr->rec.dst != neighbor) {
          mismatches.fetch_add(1);
        }
      }
      tx->Abort();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer, 11);
  threads.emplace_back(writer, 12);
  threads.emplace_back(writer, 13);
  threads.emplace_back(reader, 21);
  threads.emplace_back(reader, 22);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "adjacency cache served a topology outside the reader's snapshot";
  EXPECT_GT(commits.load(), 0u);
}

}  // namespace
}  // namespace poseidon::tx
