// Read-path scalability suite (DESIGN.md "Read-path scalability"):
// shared-snapshot read-only transactions, rts-bump coalescing, and the
// sharded active-transaction registry, exercised under concurrency (run
// under TSAN via `ctest -L readpath` in run_benches.sh --check).
//
// The invariants proved in DESIGN.md are asserted directly:
//   (a) snapshot readers never observe uncommitted or torn state — every
//       multi-field invariant written transactionally holds on every read;
//   (b) GC never reclaims a version a live shared snapshot can still see;
//   (c) rts coalescing admits exactly the writes the eager seed bump
//       admits (deterministic cross-check against the serialized path).

#include "tx/transaction.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "pmem/psan.h"

namespace poseidon::tx {
namespace {

using storage::DictCode;
using storage::Property;
using storage::PVal;
using storage::RecordId;
using storage::Timestamp;

class ReadPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    mgr_ = std::make_unique<TransactionManager>(store_.get(), nullptr);
    label_ = *store_->Code("Person");
    a_ = *store_->Code("a");
    b_ = *store_->Code("b");
    knows_ = *store_->Code("knows");
  }

  RecordId MakeNode(int64_t a, int64_t b) {
    auto tx = mgr_->Begin();
    auto id = tx->CreateNode(label_, {{a_, PVal::Int(a)}, {b_, PVal::Int(b)}});
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(tx->Commit().ok());
    return *id;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<TransactionManager> mgr_;
  DictCode label_, a_, b_, knows_;
};

TEST_F(ReadPathTest, ReadOnlyTransactionRejectsWrites) {
  RecordId id = MakeNode(1, 2);
  auto ro = mgr_->BeginReadOnly();
  EXPECT_TRUE(ro->read_only());
  EXPECT_TRUE(ro->snapshot());  // default knobs: shared snapshot active
  EXPECT_EQ(ro->SetNodeProperty(id, a_, PVal::Int(9)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ro->CreateNode(label_, {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ro->DeleteNode(id).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ro->CreateRelationship(id, id, knows_, {}).status().code(),
            StatusCode::kFailedPrecondition);
  auto v = ro->GetNodeProperty(id, a_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 1);
  EXPECT_TRUE(ro->Commit().ok());
}

TEST_F(ReadPathTest, SnapshotEpochZeroRestoresSeedProtocol) {
  mgr_->set_snapshot_epoch_us(0);
  MakeNode(1, 2);
  Timestamp before = mgr_->MinActiveTs();
  auto ro = mgr_->BeginReadOnly();
  EXPECT_TRUE(ro->read_only());
  EXPECT_FALSE(ro->snapshot());
  // Seed protocol: a fresh timestamp was allocated and registered.
  EXPECT_EQ(ro->id(), before);
  EXPECT_EQ(mgr_->MinActiveTs(), ro->id());
  EXPECT_TRUE(ro->Commit().ok());
  EXPECT_GT(mgr_->MinActiveTs(), before);
}

// (a) N snapshot readers over a hot node set concurrent with writers that
// maintain `b == 2a` transactionally: every read-only transaction must see
// the invariant hold (torn or uncommitted state would break it), and
// re-reads within one transaction must be repeatable.
TEST_F(ReadPathTest, SnapshotReadsNeverObserveTornOrUncommittedState) {
  constexpr int kHot = 8;
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kCommitsPerWriter = 150;
  std::vector<RecordId> hot;
  for (int i = 0; i < kHot; ++i) hot.push_back(MakeNode(0, 0));

  std::atomic<bool> done{false};
  std::atomic<uint64_t> consistent_reads{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      uint64_t rng = 88172645463325252ull + w;
      for (int i = 0; i < kCommitsPerWriter;) {
        rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17;
        RecordId id = hot[rng % kHot];
        int64_t x = static_cast<int64_t>(rng % 100000);
        auto tx = mgr_->Begin();
        if (!tx->SetNodeProperty(id, a_, PVal::Int(x)).ok()) continue;
        if (!tx->SetNodeProperty(id, b_, PVal::Int(2 * x)).ok()) continue;
        if (tx->Commit().ok()) ++i;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      uint64_t rng = 0x9e3779b97f4a7c15ull + r;
      while (!done.load(std::memory_order_acquire)) {
        rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17;
        RecordId id = hot[rng % kHot];
        auto tx = mgr_->BeginReadOnly();
        auto va = tx->GetNodeProperty(id, a_);
        if (!va.ok()) {
          ASSERT_TRUE(va.status().IsAborted()) << va.status().ToString();
          continue;  // foreign lock: retryable, never torn
        }
        auto vb = tx->GetNodeProperty(id, b_);
        if (!vb.ok()) {
          ASSERT_TRUE(vb.status().IsAborted()) << vb.status().ToString();
          continue;
        }
        ASSERT_EQ(vb->AsInt(), 2 * va->AsInt())
            << "snapshot read observed a torn/uncommitted pair";
        auto va2 = tx->GetNodeProperty(id, a_);
        if (va2.ok()) {
          ASSERT_EQ(va2->AsInt(), va->AsInt()) << "non-repeatable read";
        }
        ASSERT_TRUE(tx->Commit().ok());
        consistent_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_GT(consistent_reads.load(), 0u);
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

// (b) A live shared snapshot pins the GC watermark: versions it can see
// survive any number of newer commits and explicit GC runs.
TEST_F(ReadPathTest, GcNeverReclaimsVersionsVisibleToLiveSnapshot) {
  mgr_->set_snapshot_epoch_us(1);  // republish freely; no time-gating flakes
  RecordId id = MakeNode(1, 2);
  auto ro = mgr_->BeginReadOnly();
  ASSERT_TRUE(ro->snapshot());
  auto v0 = ro->GetNodeProperty(id, a_);
  ASSERT_TRUE(v0.ok());
  ASSERT_EQ(v0->AsInt(), 1);

  for (int i = 2; i <= 50; ++i) {
    auto w = mgr_->Begin();
    ASSERT_TRUE(w->SetNodeProperty(id, a_, PVal::Int(i)).ok());
    ASSERT_TRUE(w->Commit().ok());
    mgr_->RunGc();
  }
  EXPECT_GT(mgr_->node_versions().TotalVersions(), 0u)
      << "the snapshot's version chain was reclaimed";

  // The reader still resolves its version — same value as at begin.
  auto v1 = ro->GetNodeProperty(id, a_);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1->AsInt(), 1);
  ASSERT_TRUE(ro->Commit().ok());

  // Once released (and the snapshot re-published past the updates), GC
  // reclaims the chain.
  auto refresh = mgr_->BeginReadOnly();
  ASSERT_TRUE(refresh->Commit().ok());
  mgr_->RunGc();
  EXPECT_EQ(mgr_->node_versions().TotalVersions(), 0u);
}

// (c) Coalescing never changes writer admission: a deterministic
// interleaving driven once with eager rts bumps (the serialized seed path)
// and once coalesced must produce identical commit/abort outcomes.
TEST_F(ReadPathTest, CoalescingMatchesEagerWriterAdmission) {
  struct Outcome {
    bool old_writer_aborted;
    bool new_writer_committed;
    uint64_t rts_skipped;
  };
  auto drive = [&](bool coalesce) -> Outcome {
    mgr_->set_rts_coalesce(coalesce);
    RecordId x = MakeNode(coalesce ? 100 : 200, 0);
    uint64_t skipped_before = mgr_->Stats().rts_skipped;

    auto w_old = mgr_->Begin();   // oldest timestamp
    auto r_low = mgr_->Begin();   // reader, lower ts than r_high
    auto r_high = mgr_->Begin();  // reader, highest ts
    // r_high reads first: its eager bump raises rts above r_low's id, so
    // r_low's subsequent read takes the coalesced fast path (rts >= id)
    // when enabled and a no-op CAS-max when not.
    EXPECT_TRUE(r_high->GetNodeProperty(x, a_).ok());
    EXPECT_TRUE(r_low->GetNodeProperty(x, a_).ok());

    // MVTO admission: the old writer must abort either way — a newer
    // transaction read this version (rts > writer id).
    Status s = w_old->SetNodeProperty(x, a_, PVal::Int(-1));
    Outcome out;
    out.old_writer_aborted = s.IsAborted();
    w_old->Abort();
    EXPECT_TRUE(r_low->Commit().ok());
    EXPECT_TRUE(r_high->Commit().ok());

    // A writer younger than every reader is admitted either way.
    auto w_new = mgr_->Begin();
    EXPECT_TRUE(w_new->SetNodeProperty(x, a_, PVal::Int(7)).ok());
    out.new_writer_committed = w_new->Commit().ok();
    out.rts_skipped = mgr_->Stats().rts_skipped - skipped_before;
    return out;
  };

  Outcome eager = drive(/*coalesce=*/false);
  Outcome coalesced = drive(/*coalesce=*/true);
  EXPECT_TRUE(eager.old_writer_aborted);
  EXPECT_TRUE(coalesced.old_writer_aborted);
  EXPECT_TRUE(eager.new_writer_committed);
  EXPECT_TRUE(coalesced.new_writer_committed);
  EXPECT_EQ(eager.rts_skipped, 0u);
  EXPECT_GT(coalesced.rts_skipped, 0u);

  // Snapshot readers elide the bump entirely; writer admission (always
  // younger than the published snapshot) is unaffected in either config.
  mgr_->set_snapshot_epoch_us(1);  // republish freely; no time-gating flakes
  for (bool coalesce : {false, true}) {
    mgr_->set_rts_coalesce(coalesce);
    RecordId y = MakeNode(5, 0);
    auto ro = mgr_->BeginReadOnly();
    ASSERT_TRUE(ro->snapshot());
    EXPECT_TRUE(ro->GetNodeProperty(y, a_).ok());
    auto w = mgr_->Begin();
    EXPECT_TRUE(w->SetNodeProperty(y, a_, PVal::Int(6)).ok());
    EXPECT_TRUE(w->Commit().ok());
    EXPECT_TRUE(ro->Commit().ok());
  }
}

// Bounded staleness: a stalled writer pins the stable frontier, so the
// published snapshot trails next_ts_; past POSEIDON_SNAPSHOT_MAX_LAG drawn
// ids, read-only transactions degrade to the seed fresh-ts protocol (both
// protocols are individually correct) and recover the moment the stall
// clears and the retiring writer republishes.
TEST_F(ReadPathTest, LagCapDegradesToSeedProtocolAndRecovers) {
  RecordId id = MakeNode(1, 2);
  mgr_->set_snapshot_max_lag(8);
  {
    auto ro = mgr_->BeginReadOnly();  // activate the snapshot
    ASSERT_TRUE(ro->snapshot());
    ASSERT_TRUE(ro->Commit().ok());
  }
  // Stall one writer, then draw ids past the cap. The frontier cannot pass
  // the stalled id no matter how often publication runs, so the outcome is
  // deterministic even with the background GC thread publishing.
  auto stalled = mgr_->Begin();
  for (int i = 0; i < 20; ++i) {
    auto w = mgr_->Begin();
    ASSERT_TRUE(w->SetNodeProperty(id, a_, PVal::Int(i)).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  uint64_t fb_before = mgr_->Stats().snapshot_fallbacks;
  auto ro = mgr_->BeginReadOnly();
  EXPECT_FALSE(ro->snapshot()) << "stale snapshot was handed out";
  EXPECT_TRUE(ro->read_only());
  auto v = ro->GetNodeProperty(id, a_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 19);  // seed protocol: fresh ts sees every commit
  ASSERT_TRUE(ro->Commit().ok());
  EXPECT_GT(mgr_->Stats().snapshot_fallbacks, fb_before);

  // Stall clears: the retiring transaction republishes (last writer out)
  // and the next read-only transaction is a snapshot again.
  stalled->Abort();
  auto ro2 = mgr_->BeginReadOnly();
  EXPECT_TRUE(ro2->snapshot());
  auto v2 = ro2->GetNodeProperty(id, a_);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->AsInt(), 19);
  ASSERT_TRUE(ro2->Commit().ok());
}

// The fixed slot arrays overflow gracefully past kTxSlots concurrently
// active transactions, and the watermark stays exact throughout.
TEST_F(ReadPathTest, SlotOverflowKeepsWatermarkSound) {
  RecordId id = MakeNode(1, 2);
  constexpr size_t kMany = 100;  // > kTxSlots = 64
  std::vector<std::unique_ptr<Transaction>> txs;
  std::set<Timestamp> ids;
  for (size_t i = 0; i < kMany; ++i) {
    txs.push_back(mgr_->Begin());
    ids.insert(txs.back()->id());
  }
  EXPECT_EQ(ids.size(), kMany) << "duplicate timestamps handed out";
  EXPECT_EQ(mgr_->MinActiveTs(), *ids.begin());

  // A pile of snapshot readers on top (shared id, reader slots + overflow).
  // The 100 open writers hold the frontier far behind next_ts_, which
  // would trip the staleness cap and degrade the readers to the seed
  // path — disable it so this test keeps covering the reader slot array.
  mgr_->set_snapshot_max_lag(0);
  std::vector<std::unique_ptr<Transaction>> readers;
  for (size_t i = 0; i < 80; ++i) {
    readers.push_back(mgr_->BeginReadOnly());
    EXPECT_TRUE(readers.back()->snapshot());
    EXPECT_TRUE(readers.back()->GetNodeProperty(id, a_).ok());
  }
  EXPECT_LE(mgr_->MinActiveTs(), readers.front()->id());

  // Release in mixed order; the watermark advances to the true minimum.
  for (size_t i = 0; i < kMany; i += 2) txs[i]->Abort();
  Timestamp min_left = kMany + 1;
  for (size_t i = 1; i < kMany; i += 2) {
    min_left = std::min(min_left, txs[i]->id());
  }
  for (auto& r : readers) ASSERT_TRUE(r->Commit().ok());
  EXPECT_LE(mgr_->MinActiveTs(), min_left);
  for (size_t i = 1; i < kMany; i += 2) txs[i]->Abort();
  // The published snapshot is a standing GC pin while the epoch is active;
  // disabling it at runtime must release the pin rather than hold the
  // watermark at the last published value forever.
  mgr_->set_snapshot_epoch_us(0);
  EXPECT_GT(mgr_->MinActiveTs(), *ids.rbegin());
}

// Mixed stress: writers, snapshot readers, fresh-ts readers, and a GC
// thread all running concurrently; ends with zero persist-order violations
// (meaningful under -DPOSEIDON_PSAN=ON, links as 0 otherwise).
TEST_F(ReadPathTest, MixedStressEndsWithZeroPsanViolations) {
  constexpr int kHot = 8;
  std::vector<RecordId> hot;
  for (int i = 0; i < kHot; ++i) hot.push_back(MakeNode(i, 2 * i));

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // writer: updates + rel churn
    uint64_t rng = 1;
    for (int i = 0; i < 200;) {
      rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17;
      auto tx = mgr_->Begin();
      RecordId src = hot[rng % kHot], dst = hot[(rng >> 8) % kHot];
      if (rng % 4 == 0 && src != dst) {
        auto rel = tx->CreateRelationship(src, dst, knows_, {});
        if (rel.ok() && tx->Commit().ok()) ++i;
      } else {
        if (tx->SetNodeProperty(src, a_, PVal::Int(static_cast<int64_t>(i)))
                .ok() &&
            tx->Commit().ok()) {
          ++i;
        }
      }
    }
  });
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      uint64_t rng = 7 + r;
      while (!done.load(std::memory_order_acquire)) {
        rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17;
        auto tx = (r == 0) ? mgr_->Begin() : mgr_->BeginReadOnly();
        RecordId id = hot[rng % kHot];
        (void)tx->GetNodeProperty(id, a_);
        (void)tx->ForEachNeighbor(
            id, AdjDir::kOut,
            [](RecordId, DictCode, RecordId) { return true; });
        (void)tx->Commit();
      }
    });
  }
  threads.emplace_back([&] {  // GC / watermark churn
    while (!done.load(std::memory_order_acquire)) {
      mgr_->RunGc();
      (void)mgr_->MinActiveTs();
      std::this_thread::yield();
    }
  });
  threads[0].join();
  done.store(true, std::memory_order_release);
  for (size_t t = 1; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

}  // namespace
}  // namespace poseidon::tx
