// JIT code-generation edge cases and property sweeps, complementing
// jit_test.cc's end-to-end equivalence checks.

#include <gtest/gtest.h>

#include "jit/jit_query_engine.h"

namespace poseidon::jit {
namespace {

using query::CmpOp;
using query::Direction;
using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::QueryResult;
using query::Value;
using storage::PVal;
using storage::RecordId;

class JitCodegenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(512ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    indexes_ = std::make_unique<index::IndexManager>(store_.get());
    mgr_ = std::make_unique<tx::TransactionManager>(store_.get(),
                                                    indexes_.get());
    auto engine = JitQueryEngine::Create(store_.get(), indexes_.get(), 2,
                                         nullptr);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(*engine);
    thing_ = *store_->Code("Thing");
    v_ = *store_->Code("v");
    s_ = *store_->Code("s");
    edge_ = *store_->Code("edge");
  }

  Result<QueryResult> RunBoth(const Plan& plan, std::vector<Value> params,
                              bool* equal) {
    auto tx = mgr_->Begin();
    auto aot = engine_->Execute(plan, tx.get(), params,
                                ExecutionMode::kInterpret);
    auto jit = engine_->Execute(plan, tx.get(), params, ExecutionMode::kJit);
    EXPECT_TRUE(tx->Commit().ok());
    if (!aot.ok()) return aot;
    if (!jit.ok()) return jit;
    auto key = [](const query::Tuple& t) {
      std::string k;
      for (const auto& val : t) {
        k += std::to_string(static_cast<int>(val.kind())) + ":" +
             std::to_string(val.raw()) + "|";
      }
      return k;
    };
    std::vector<std::string> ka, kb;
    for (const auto& t : aot->rows) ka.push_back(key(t));
    for (const auto& t : jit->rows) kb.push_back(key(t));
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    *equal = ka == kb;
    return jit;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<index::IndexManager> indexes_;
  std::unique_ptr<tx::TransactionManager> mgr_;
  std::unique_ptr<JitQueryEngine> engine_;
  storage::DictCode thing_, v_, s_, edge_;
};

TEST_F(JitCodegenTest, EmptyTableProducesNoRows) {
  Plan p = PlanBuilder().NodeScan(thing_).Project({Expr::RecordId(0)}).Build();
  bool equal = false;
  auto r = RunBoth(p, {}, &equal);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(equal);
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(JitCodegenTest, ScanSkipsDeletedSlots) {
  RecordId doomed;
  {
    auto tx = mgr_->Begin();
    for (int i = 0; i < 10; ++i) {
      auto id = tx->CreateNode(thing_, {{v_, PVal::Int(i)}});
      ASSERT_TRUE(id.ok());
      if (i == 5) doomed = *id;
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->DeleteNode(doomed).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder().NodeScan(thing_).Count().Build();
  bool equal = false;
  auto r = RunBoth(p, {}, &equal);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal);
  EXPECT_EQ(r->rows[0][0].AsInt(), 9);
}

TEST_F(JitCodegenTest, ExpandWithEmptyAdjacency) {
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateNode(thing_, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(thing_)
               .Expand(0, Direction::kOut, edge_)
               .Count()
               .Build();
  bool equal = false;
  auto r = RunBoth(p, {}, &equal);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal);
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
}

TEST_F(JitCodegenTest, MissingPropertyComparesAsNull) {
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateNode(thing_, {{v_, PVal::Int(1)}}).ok());
    ASSERT_TRUE(tx->CreateNode(thing_, {}).ok());  // no `v` property
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(thing_)
               .FilterProperty(0, v_, CmpOp::kGe,
                               Expr::Literal(Value::Int(0)))
               .Count()
               .Build();
  bool equal = false;
  auto r = RunBoth(p, {}, &equal);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1) << "null never satisfies >=";
}

TEST_F(JitCodegenTest, PropertyChainLongerThanOneRecord) {
  // 8 properties -> 3 chained 64 B records; the inline chain walk must
  // find keys in every record.
  std::vector<storage::Property> props;
  std::vector<storage::DictCode> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back(*store_->Code("k" + std::to_string(i)));
    props.push_back({keys.back(), PVal::Int(i * 11)});
  }
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateNode(thing_, props).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  for (int i = 0; i < 8; ++i) {
    Plan p = PlanBuilder()
                 .NodeScan(thing_)
                 .Project({Expr::Property(0, keys[i])})
                 .Build();
    bool equal = false;
    auto r = RunBoth(p, {}, &equal);
    ASSERT_TRUE(r.ok()) << "k" << i;
    EXPECT_TRUE(equal) << "k" << i;
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].AsInt(), i * 11) << "k" << i;
  }
}

TEST_F(JitCodegenTest, StringAndDoubleAndBoolProperties) {
  auto code = *store_->Code("hello");
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateNode(thing_, {{s_, PVal::String(code)},
                                        {v_, PVal::Double(2.5)},
                                        {edge_, PVal::Bool(true)}})
                    .ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(thing_)
               .Project({Expr::Property(0, s_), Expr::Property(0, v_),
                         Expr::Property(0, edge_)})
               .Build();
  bool equal = false;
  auto r = RunBoth(p, {}, &equal);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal);
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].kind(), Value::Kind::kString);
  EXPECT_EQ(r->rows[0][0].AsString(), code);
  EXPECT_EQ(r->rows[0][1].kind(), Value::Kind::kDouble);
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 2.5);
  EXPECT_EQ(r->rows[0][2].kind(), Value::Kind::kBool);
  EXPECT_TRUE(r->rows[0][2].AsBool());
}

TEST_F(JitCodegenTest, LimitThroughTailStopsScan) {
  {
    auto tx = mgr_->Begin();
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(tx->CreateNode(thing_, {}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder().NodeScan(thing_).Limit(7).Build();
  auto tx = mgr_->Begin();
  auto r = engine_->Execute(p, tx.get(), {}, ExecutionMode::kJit);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(r->rows.size(), 7u);
}

TEST_F(JitCodegenTest, JitReadsSnapshotVersionsThroughHelper) {
  // Old snapshot must see pre-update values even via compiled code (the
  // slow-path helper resolves DRAM version chains).
  RecordId id;
  {
    auto tx = mgr_->Begin();
    id = *tx->CreateNode(thing_, {{v_, PVal::Int(1)}});
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto old_reader = mgr_->Begin();
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->SetNodeProperty(id, v_, PVal::Int(2)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(thing_)
               .Project({Expr::Property(0, v_)})
               .Build();
  auto old_result = engine_->Execute(p, old_reader.get(), {},
                                     ExecutionMode::kJit);
  ASSERT_TRUE(old_result.ok()) << old_result.status().ToString();
  ASSERT_EQ(old_result->rows.size(), 1u);
  EXPECT_EQ(old_result->rows[0][0].AsInt(), 1)
      << "snapshot isolation through compiled code";
  ASSERT_TRUE(old_reader->Commit().ok());

  auto fresh = mgr_->Begin();
  auto new_result = engine_->Execute(p, fresh.get(), {}, ExecutionMode::kJit);
  ASSERT_TRUE(new_result.ok());
  EXPECT_EQ(new_result->rows[0][0].AsInt(), 2);
}

/// Property sweep: filter-chain depth. JIT and AOT must agree for any
/// pipeline length (exercises nested block generation + emit widths).
class JitChainDepthTest : public JitCodegenTest,
                          public ::testing::WithParamInterface<int> {};

// Non-fixture parameterized wrapper (gtest requires a single fixture).
TEST_F(JitCodegenTest, FilterChainDepthSweep) {
  {
    auto tx = mgr_->Begin();
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(tx->CreateNode(thing_, {{v_, PVal::Int(i)}}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  for (int depth : {1, 2, 4, 8, 16}) {
    query::PlanBuilder b;
    std::move(b).NodeScan(thing_);
    for (int i = 0; i < depth; ++i) {
      std::move(b).FilterProperty(0, v_, CmpOp::kGe,
                                  Expr::Literal(Value::Int(i * 10)));
    }
    std::move(b).Count();
    Plan p = std::move(b).Build();
    bool equal = false;
    auto r = RunBoth(p, {}, &equal);
    ASSERT_TRUE(r.ok()) << "depth " << depth;
    EXPECT_TRUE(equal) << "depth " << depth;
    EXPECT_EQ(r->rows[0][0].AsInt(), 500 - (depth - 1) * 10)
        << "depth " << depth;
  }
}

TEST_F(JitCodegenTest, TwoHopExpandChain) {
  // a -> b -> c: two chained expands, three handle scopes live at once.
  {
    auto tx = mgr_->Begin();
    auto a = *tx->CreateNode(thing_, {{v_, PVal::Int(1)}});
    auto b = *tx->CreateNode(thing_, {{v_, PVal::Int(2)}});
    auto c = *tx->CreateNode(thing_, {{v_, PVal::Int(3)}});
    ASSERT_TRUE(tx->CreateRelationship(a, b, edge_, {}).ok());
    ASSERT_TRUE(tx->CreateRelationship(b, c, edge_, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(thing_)
               .Expand(0, Direction::kOut, edge_)
               .Expand(2, Direction::kOut, edge_)
               .Project({Expr::Property(0, v_), Expr::Property(2, v_),
                         Expr::Property(4, v_)})
               .Build();
  bool equal = false;
  auto r = RunBoth(p, {}, &equal);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(equal);
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
  EXPECT_EQ(r->rows[0][1].AsInt(), 2);
  EXPECT_EQ(r->rows[0][2].AsInt(), 3);
}

TEST_F(JitCodegenTest, GroupByRunsInAotTailUnderJit) {
  {
    auto tx = mgr_->Begin();
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(tx->CreateNode(thing_, {{s_, PVal::Int(i % 3)},
                                          {v_, PVal::Int(i)}})
                      .ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(thing_)
               .GroupBy(Expr::Property(0, s_), query::AggFn::kSum,
                        Expr::Property(0, v_))
               .Build();
  bool equal = false;
  auto r = RunBoth(p, {}, &equal);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(equal);
  ASSERT_EQ(r->rows.size(), 3u);
}

TEST_F(JitCodegenTest, CompileFailsGracefullyOnUnsupportedSource) {
  // A plan whose source the code generator does not support must surface a
  // clean error, not crash.
  Plan p = PlanBuilder()
               .CreateNode(thing_, {v_}, {Expr::Param(0)})
               .FilterProperty(0, v_, CmpOp::kEq, Expr::Param(0))
               .Build();
  // CreateNode source with a non-tail op after it is still fine (tail
  // starts at op 0); this must execute, not crash.
  auto tx = mgr_->Begin();
  auto r = engine_->Execute(p, tx.get(), {Value::Int(5)},
                            ExecutionMode::kJit);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  tx->Abort();
}

}  // namespace
}  // namespace poseidon::jit
